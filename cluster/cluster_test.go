package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mvdb"
)

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Sites=0 accepted")
	}
}

func TestUpdateViewRoundTrip(t *testing.T) {
	c, err := Open(Options{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Update(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if err := tx.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// All ten writes landed atomically; BeginReadOnlyAtHome anywhere must
	// see either all of this transaction or none — anchor at each site.
	for home := 0; home < 3; home++ {
		tx, err := c.BeginReadOnlyAtHome(home)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		if err := tx.Scan("k", func(string, []byte) bool { seen++; return true }); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		if seen != 0 && seen != 10 {
			t.Fatalf("home %d: torn cross-site commit: saw %d of 10", home, seen)
		}
	}

	// A view anchored at a site the transaction touched sees everything.
	anyKeySite := c.SiteOf("k0")
	tx, _ := c.BeginReadOnlyAtHome(anyKeySite)
	n := 0
	tx.Scan("k", func(string, []byte) bool { n++; return true })
	tx.Commit()
	if n != 10 {
		t.Fatalf("anchored view saw %d of 10", n)
	}
}

func TestViewErrorPropagates(t *testing.T) {
	c, _ := Open(Options{Sites: 2})
	defer c.Close()
	sentinel := errors.New("nope")
	if err := c.View(func(*Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestBootstrapAndStats(t *testing.T) {
	c, _ := Open(Options{Sites: 2})
	defer c.Close()
	if err := c.Bootstrap(map[string][]byte{"a": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := c.View(func(tx *Tx) error {
		v, err := tx.Get("a")
		if err != nil || string(v) != "1" {
			return fmt.Errorf("got (%q,%v)", v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st["commits.ro"] != 1 {
		t.Fatalf("stats = %v", st)
	}
	if st["bus.messages"] == 0 {
		t.Fatal("no bus messages counted")
	}
}

func TestConcurrentUpdatesConserve(t *testing.T) {
	c, _ := Open(Options{Sites: 3})
	defer c.Close()
	const n = 10
	boot := map[string][]byte{}
	for i := 0; i < n; i++ {
		boot[fmt.Sprintf("acct%d", i)] = []byte{100}
	}
	c.Bootstrap(boot)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				from := fmt.Sprintf("acct%d", (w+i)%n)
				to := fmt.Sprintf("acct%d", (w+i+1)%n)
				err := c.Update(func(tx *Tx) error {
					fv, err := tx.Get(from)
					if err != nil {
						return err
					}
					if fv[0] == 0 {
						return nil
					}
					tv, err := tx.Get(to)
					if err != nil {
						return err
					}
					if err := tx.Put(from, []byte{fv[0] - 1}); err != nil {
						return err
					}
					return tx.Put(to, []byte{tv[0] + 1})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	c.View(func(tx *Tx) error {
		return tx.Scan("acct", func(_ string, v []byte) bool {
			total += int(v[0])
			return true
		})
	})
	if total != n*100 {
		t.Fatalf("total = %d, want %d", total, n*100)
	}
}

func TestScanRequiresReadOnly(t *testing.T) {
	c, _ := Open(Options{Sites: 1})
	defer c.Close()
	tx, _ := c.Begin()
	err := tx.Scan("x", func(string, []byte) bool { return true })
	if !errors.Is(err, mvdb.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	tx.Abort()
}

func TestDurableClusterCrashRecovery(t *testing.T) {
	c, err := Open(Options{Sites: 2, WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Update(func(tx *Tx) error { return tx.Put("k", []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	site := c.SiteOf("k")
	if err := c.CrashSite(site); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverSite(site); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := c.View(func(tx *Tx) error {
		v, err := tx.Get("k")
		got = string(v)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Fatalf("got %q", got)
	}
}
