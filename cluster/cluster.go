// Package cluster is the distributed variant of mvdb: multiple sites,
// each with its own version-control counters and queue (paper Section 6),
// partitioned keys, two-phase commit with max-vote transaction numbers
// for read-write transactions, and single-start-number read-only
// transactions that are globally one-copy serializable without knowing
// their read sites in advance.
//
//	c, err := cluster.Open(cluster.Options{Sites: 3})
//	...
//	err = c.Update(func(tx *cluster.Tx) error { ... })   // 2PC underneath
//	err = c.View(func(tx *cluster.Tx) error { ... })     // global snapshot
package cluster

import (
	"fmt"
	"time"

	"mvdb"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
)

// Options configures Open.
type Options struct {
	// Sites is the number of sites (required).
	Sites int
	// Latency simulates one-way message latency between the coordinator
	// and a site.
	Latency time.Duration
	// LockTimeout bounds per-site lock waits; distributed deadlocks are
	// resolved by timeout (default 50ms).
	LockTimeout time.Duration
	// Partition overrides the key→site mapping (default: hash).
	Partition func(key string) int
	// WALDir makes every site durable (one commit log per site under
	// this directory): Open resumes from existing logs, and
	// CrashSite/RecoverSite model fail-stop site failures.
	WALDir string
	// MaxUpdateRetries bounds Update's automatic retries (default 100).
	MaxUpdateRetries int
}

// Cluster is an open distributed database.
type Cluster struct {
	c       *dist.Cluster
	retries int
}

// Open creates a cluster.
func Open(opts Options) (*Cluster, error) {
	c, err := dist.New(dist.Options{
		Sites:       opts.Sites,
		Latency:     opts.Latency,
		LockTimeout: opts.LockTimeout,
		Partition:   opts.Partition,
		WALDir:      opts.WALDir,
	})
	if err != nil {
		return nil, err
	}
	retries := opts.MaxUpdateRetries
	if retries <= 0 {
		retries = 100
	}
	return &Cluster{c: c, retries: retries}, nil
}

// Close shuts the cluster down.
func (c *Cluster) Close() error { return c.c.Close() }

// Bootstrap loads initial data (version 0) into the owning sites; it must
// precede the first transaction.
func (c *Cluster) Bootstrap(data map[string][]byte) error { return c.c.Bootstrap(data) }

// SiteOf returns the site index owning key (for workload placement).
func (c *Cluster) SiteOf(key string) int { return c.c.SiteFor(key).ID() }

// Stats returns cluster counters, including "bus.messages" (simulated
// exchanges), "ro.waits" and "ro.fillers" (read-only visibility catch-up
// events).
func (c *Cluster) Stats() map[string]int64 { return c.c.Stats() }

// CrashSite destroys one site's volatile state (fail-stop model;
// requires Options.WALDir). No transaction may be in flight at the site.
func (c *Cluster) CrashSite(site int) error { return c.c.CrashSite(site) }

// RecoverSite rebuilds a crashed site from its commit log.
func (c *Cluster) RecoverSite(site int) error { return c.c.RecoverSite(site) }

// Begin starts a distributed read-write transaction (two-phase locking at
// each touched site; two-phase commit at Commit).
func (c *Cluster) Begin() (*Tx, error) {
	t, err := c.c.Begin(engine.ReadWrite)
	if err != nil {
		return nil, err
	}
	return &Tx{t: t}, nil
}

// BeginReadOnly starts a global read-only snapshot at the cluster's
// committed high-water mark: it observes every transaction committed
// before the call, waiting (only where needed) for lagging sites'
// visibility to catch up. For the cheapest possible snapshot — no
// waiting anywhere, possibly stale — use BeginReadOnlyAtHome.
func (c *Cluster) BeginReadOnly() (*Tx, error) {
	t, err := c.c.Begin(engine.ReadOnly)
	if err != nil {
		return nil, err
	}
	return &Tx{t: t}, nil
}

// BeginReadOnlyAtHome anchors the snapshot at a specific site: the start
// number is that site's visibility horizon. Anchor where you expect to
// read for the freshest snapshot.
func (c *Cluster) BeginReadOnlyAtHome(site int) (*Tx, error) {
	t, err := c.c.BeginReadOnlyAtHome(site)
	if err != nil {
		return nil, err
	}
	return &Tx{t: t}, nil
}

// View runs fn in a global read-only transaction.
func (c *Cluster) View(fn func(*Tx) error) error {
	tx, err := c.BeginReadOnly()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Update runs fn in a distributed read-write transaction, retrying
// retryable aborts (lock timeouts standing in for distributed deadlock
// resolution).
func (c *Cluster) Update(fn func(*Tx) error) error {
	var last error
	for attempt := 0; attempt < c.retries; attempt++ {
		tx, err := c.Begin()
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			if mvdb.IsRetryable(err) {
				last = err
				continue
			}
			return err
		}
		err = tx.Commit()
		if err == nil {
			return nil
		}
		if !mvdb.IsRetryable(err) {
			return err
		}
		last = err
	}
	return fmt.Errorf("cluster: update retries exhausted: %w", last)
}

// Tx is a distributed transaction handle.
type Tx struct {
	t engine.Tx
}

// Get returns the value of key from its owning site.
func (tx *Tx) Get(key string) ([]byte, error) { return tx.t.Get(key) }

// Put writes key at its owning site.
func (tx *Tx) Put(key string, value []byte) error { return tx.t.Put(key, value) }

// Delete tombstones key.
func (tx *Tx) Delete(key string) error { return tx.t.Delete(key) }

// Commit finishes the transaction (two-phase commit for read-write).
func (tx *Tx) Commit() error { return tx.t.Commit() }

// Abort discards the transaction.
func (tx *Tx) Abort() { tx.t.Abort() }

// Scan iterates all live keys with prefix across every site in ascending
// order at the transaction's global snapshot (read-only only).
func (tx *Tx) Scan(prefix string, fn func(key string, value []byte) bool) error {
	if s, ok := tx.t.(engine.Scanner); ok {
		return s.Scan(prefix, fn)
	}
	return fmt.Errorf("%w: Scan requires a read-only transaction", mvdb.ErrReadOnly)
}

// TN returns the transaction's global serialization position (see
// mvdb.Tx.TN).
func (tx *Tx) TN() (uint64, bool) { return tx.t.SN() }
