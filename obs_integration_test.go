package mvdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"mvdb/internal/obs"
)

// TestNoObservabilityWithoutOptIn is the zero-cost guard: a default
// Options{} database must start no HTTP listener and allocate no
// tracer — observability counters are always on, but tracing and the
// debug endpoint are strictly opt-in.
func TestNoObservabilityWithoutOptIn(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.tracer != nil {
		t.Fatal("Options{} allocated a tracer")
	}
	if db.dbg != nil {
		t.Fatal("Options{} started a debug server")
	}
	if db.DebugAddr() != "" {
		t.Fatalf("DebugAddr = %q, want empty", db.DebugAddr())
	}
	if db.Trace() != nil {
		t.Fatal("Trace() should be nil when tracing is off")
	}
}

// TestVisibilityGaugesInvariant checks the paper's Section 6 invariants
// through the new gauges, under a mixed workload on every protocol:
// VTNC < TNC in every snapshot, and once all read-write transactions
// complete, vtnc converges to tnc-1 (zero visibility lag).
func TestVisibilityGaugesInvariant(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			db, err := Open(Options{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			stop := make(chan struct{})
			violated := make(chan string, 1)
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					st := db.Stats()
					if st.VTNC >= st.TNC {
						select {
						case violated <- fmt.Sprintf("vtnc %d >= tnc %d", st.VTNC, st.TNC):
						default:
						}
						return
					}
					if st.CommitsRW > st.BeginsRW || st.CommitsRO > st.BeginsRO {
						select {
						case violated <- fmt.Sprintf("commits exceed begins: %+v", st):
						default:
						}
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 150; i++ {
						key := fmt.Sprintf("k%d", (w*31+i)%16)
						db.Update(func(tx *Tx) error { return tx.PutString(key, "v") })
						db.View(func(tx *Tx) error { tx.Get(key); return nil })
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			select {
			case msg := <-violated:
				t.Fatal(msg)
			default:
			}

			// All read-write transactions are complete: visibility must
			// have converged (vtnc == tnc-1, zero lag) — the delayed
			// visibility of Section 6 is transient, never permanent.
			st := db.Stats()
			if st.VisibilityLag != 0 {
				t.Fatalf("lag = %d after quiescence (tnc=%d vtnc=%d)", st.VisibilityLag, st.TNC, st.VTNC)
			}
			if st.VTNC != st.TNC-1 {
				t.Fatalf("vtnc %d != tnc-1 %d after quiescence", st.VTNC, st.TNC-1)
			}
			if st.CommitsRW == 0 || st.CommitsRO == 0 {
				t.Fatalf("workload did not run: %+v", st)
			}
		})
	}
}

// TestDebugEndpoint opens a database with a debug address and checks the
// live endpoint end to end: stats reflect committed work and the trace
// carries typed events.
func TestDebugEndpoint(t *testing.T) {
	db, err := Open(Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.tracer == nil {
		t.Fatal("DebugAddr should enable tracing")
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("no bound debug address")
	}

	if err := db.Update(func(tx *Tx) error { return tx.PutString("k", "v") }); err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error { _, err := tx.Get("k"); return err })

	resp, err := http.Get("http://" + addr + "/debug/mvdb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p obs.Payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Stats.CommitsRW != 1 || p.Stats.CommitsRO != 1 {
		t.Fatalf("endpoint stats = %+v", p.Stats)
	}
	if p.Stats.Protocol != "vc+2pl" {
		t.Fatalf("protocol = %q", p.Stats.Protocol)
	}
	var sawCommit bool
	for _, ev := range p.Trace {
		if ev.Type == obs.EvCommit {
			sawCommit = true
		}
	}
	if !sawCommit {
		t.Fatalf("trace has no commit event: %+v", p.Trace)
	}
	// The in-process dump agrees with the endpoint's trace.
	if len(db.Trace()) == 0 {
		t.Fatal("db.Trace() empty with tracing enabled")
	}
}

// TestTraceEventsWithoutEndpoint: tracing alone (no HTTP server).
func TestTraceEventsWithoutEndpoint(t *testing.T) {
	db, err := Open(Options{TraceEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.dbg != nil {
		t.Fatal("TraceEvents alone must not start a server")
	}
	db.Update(func(tx *Tx) error { return tx.PutString("a", "1") })
	evs := db.Trace()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	want := map[obs.EventType]bool{obs.EvBegin: false, obs.EvWrite: false, obs.EvCommit: false}
	for _, ev := range evs {
		if _, ok := want[ev.Type]; ok {
			want[ev.Type] = true
		}
	}
	for ty, seen := range want {
		if !seen {
			t.Errorf("no %s event in trace", ty)
		}
	}
}

// TestStatsSubstrateCounters checks WAL and GC counters flow into the
// same snapshot.
func TestStatsSubstrateCounters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{WALPath: dir + "/commit.log"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		db.Update(func(tx *Tx) error { return tx.PutString("k", fmt.Sprint(i)) })
	}
	db.CollectGarbage()
	st := db.Stats()
	if st.WALAppends != 5 || st.WALBytes == 0 {
		t.Fatalf("wal counters = appends=%d bytes=%d", st.WALAppends, st.WALBytes)
	}
	if st.GCPasses != 1 {
		t.Fatalf("gc passes = %d, want 1", st.GCPasses)
	}
	if st.Keys != 1 || st.Versions < 1 || st.MaxVersionChain < 1 {
		t.Fatalf("storage gauges = %+v", st)
	}
}
