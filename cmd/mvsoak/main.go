// Command mvsoak is the long-horizon soak driver: it runs a steady
// mixed workload against a durable engine for hours (or a CI-sized
// smoke window), with the windowed health timeline as its pass/fail
// oracle. Where mvtorture asks "does the engine survive crashes",
// mvsoak asks "does the engine stay healthy over time" — no paging SLO
// breach, no audit alarm, and no unbounded drift in heap, version
// chains, or retained versions across the run.
//
// Usage:
//
//	mvsoak [-duration 60s] [-protocol 2pl|to|occ|adaptive|all] [-vc strict|epoch|all]
//	       [-clients N] [-keys N] [-zipf S] [-ro F] [-rmw] [-group]
//	       [-checkpoint 10s] [-gc 200ms] [-interval 1s] [-hotspots]
//	       [-dir D] [-json out.json] [-v]
//
// Each selected protocol × visibility-mode pair gets an equal share of
// the time budget and a fresh durable store. The health timeline is
// always written next to the store (health-<config>.json); on failure a
// flight-recorder postmortem bundle is written too (render with
// mvinspect -bundle). The timeline's visibility-lag SLO is part of the
// oracle in both modes: under the epoch watermark a stall in watermark
// advance shows up as sustained visibility lag and pages, exactly like
// a stuck strict drain would. Exit status is 0 only if every
// configuration passes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mvdb"
	"mvdb/internal/health"
	"mvdb/internal/hotspot"
	"mvdb/internal/workload"
)

// verdict is the -json output document.
type verdict struct {
	Schema  string           `json:"schema"`
	Seed    int64            `json:"seed"`
	Elapsed time.Duration    `json:"elapsed_ns"`
	Passed  bool             `json:"passed"`
	Configs []protocolResult `json:"configs"`
}

type protocolResult struct {
	Protocol   string   `json:"protocol"`
	Visibility string   `json:"visibility"`
	Pass       bool     `json:"pass"`
	Reasons    []string `json:"reasons,omitempty"`

	CommitsRW   int64  `json:"commits_rw"`
	CommitsRO   int64  `json:"commits_ro"`
	Aborts      int64  `json:"aborts"`
	Retries     int64  `json:"retries"`
	AlarmsWarn  int64  `json:"alarms_warn"`
	AlarmsPage  int64  `json:"alarms_page"`
	AuditAlarms uint64 `json:"audit_alarms"`
	Points      int64  `json:"points"`

	Drift    []health.DriftResult `json:"drift,omitempty"`
	Timeline string               `json:"timeline,omitempty"`
	Bundle   string               `json:"bundle,omitempty"`

	// With -hotspots: the profiler's ranked hot keys (writes, then reads
	// when no writes were sampled) and any adaptive knob actions taken.
	TopKeys     []hotspot.HotKey `json:"top_keys,omitempty"`
	KnobActions int64            `json:"knob_actions,omitempty"`
}

// driftChecks are the soak oracle's "no monotonic creep" bounds:
// generous enough for CI jitter (GC timing, allocator noise), tight
// enough that a real leak — heap, version chains, or retained
// versions growing without bound — fails the run.
var driftChecks = []health.DriftCheck{
	{Metric: "heap_bytes", MaxRatio: 3.0, Slack: 64 << 20},
	{Metric: "max_version_chain", MaxRatio: 4.0, Slack: 64},
	{Metric: "versions", MaxRatio: 4.0, Slack: 20000},
}

func main() {
	var (
		duration   = flag.Duration("duration", 60*time.Second, "total wall-clock budget, split across protocols")
		protocol   = flag.String("protocol", "all", "2pl, to, occ, adaptive (AdaptiveCC + knob controller), or all")
		vcFlag     = flag.String("vc", "all", "visibility mode: strict, epoch, or all (both)")
		clients    = flag.Int("clients", 4, "concurrent workload clients per protocol")
		keys       = flag.Int("keys", 512, "key-space size")
		zipf       = flag.Float64("zipf", 0, "Zipf skew parameter (> 1; 0 = uniform)")
		ro         = flag.Float64("ro", 0.5, "read-only transaction fraction")
		rmw        = flag.Bool("rmw", false, "read-modify-write transaction shape (most conflict-prone)")
		group      = flag.Bool("group", true, "group commit (false = fsync every commit)")
		checkpoint = flag.Duration("checkpoint", 10*time.Second, "online checkpoint period (0 disables)")
		gcEvery    = flag.Duration("gc", 200*time.Millisecond, "background GC period (0 disables)")
		interval   = flag.Duration("interval", time.Second, "health monitor base sampling period")
		dir        = flag.String("dir", "", "working directory (default: a fresh temp dir, removed on success)")
		hotspots   = flag.Bool("hotspots", false, "enable the hotspot profiler; verdicts carry top-K hot keys")
		seed       = flag.Int64("seed", 1, "workload seed")
		jsonOut    = flag.String("json", "", "write the machine-readable verdict to this file")
		verbose    = flag.Bool("v", false, "log progress per protocol")
	)
	flag.Parse()

	protocols := selectProtocols(*protocol)
	if len(protocols) == 0 {
		fmt.Fprintf(os.Stderr, "no protocol matches -protocol %q\n", *protocol)
		os.Exit(2)
	}
	modes := selectModes(*vcFlag)
	if len(modes) == 0 {
		fmt.Fprintf(os.Stderr, "no visibility mode matches -vc %q\n", *vcFlag)
		os.Exit(2)
	}

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "mvsoak")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(base)
	}

	cfg := workload.Config{
		Keys:             *keys,
		ReadOnlyFraction: *ro,
		ReadModifyWrite:  *rmw,
		Zipf:             *zipf,
		Seed:             *seed,
	}

	start := time.Now()
	v := verdict{Schema: "mvsoak-verdict/v1", Seed: *seed}
	failed := false
	per := *duration / time.Duration(len(protocols)*len(modes))
	for _, p := range protocols {
		for _, m := range modes {
			res := runProtocol(p, m, base, per, cfg, *clients, *group, *checkpoint, *gcEvery, *interval, *hotspots, *verbose)
			name := p + "/" + m
			if res.Pass {
				fmt.Printf("PASS %-10s: %d rw + %d ro commits, %d aborts, %d retries, %d points, alarms warn=%d page=%d\n",
					name, res.CommitsRW, res.CommitsRO, res.Aborts, res.Retries, res.Points, res.AlarmsWarn, res.AlarmsPage)
			} else {
				failed = true
				fmt.Fprintf(os.Stderr, "FAIL %-10s: %v\n  timeline: %s\n", name, res.Reasons, res.Timeline)
				if res.Bundle != "" {
					fmt.Fprintf(os.Stderr, "  postmortem: mvinspect -bundle %s\n", res.Bundle)
				}
			}
			v.Configs = append(v.Configs, res)
		}
	}
	v.Elapsed = time.Since(start)
	v.Passed = !failed
	fmt.Printf("total: %d configurations in %v\n", len(v.Configs), v.Elapsed.Round(time.Millisecond))
	if *jsonOut != "" {
		data, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing -json verdict: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func selectProtocols(sel string) []string {
	switch sel {
	case "all", "":
		return []string{"2pl", "to", "occ"}
	case "2pl", "to", "occ", "adaptive":
		return []string{sel}
	}
	return nil
}

func selectModes(sel string) []string {
	switch sel {
	case "all", "":
		return []string{"strict", "epoch"}
	case "strict", "epoch":
		return []string{sel}
	}
	return nil
}

func mvdbVisibility(m string) mvdb.VisibilityMode {
	if m == "epoch" {
		return mvdb.VisibilityEpoch
	}
	return mvdb.VisibilityStrict
}

func mvdbProtocol(p string) mvdb.Protocol {
	switch p {
	case "to":
		return mvdb.TimestampOrdering
	case "occ":
		return mvdb.Optimistic
	default:
		return mvdb.TwoPhaseLocking
	}
}

func runProtocol(proto, mode, base string, budget time.Duration, cfg workload.Config,
	clients int, group bool, checkpoint, gcEvery, interval time.Duration, hotspots, verbose bool) protocolResult {

	res := protocolResult{Protocol: proto, Visibility: mode}
	fail := func(format string, args ...any) {
		res.Reasons = append(res.Reasons, fmt.Sprintf(format, args...))
	}
	d := filepath.Join(base, proto+"-"+mode)
	if err := os.MkdirAll(d, 0o755); err != nil {
		fail("mkdir: %v", err)
		return res
	}
	db, err := mvdb.Open(mvdb.Options{
		Protocol:       mvdbProtocol(proto),
		AdaptiveCC:     proto == "adaptive",
		VisibilityMode: mvdbVisibility(mode),
		WALPath:        filepath.Join(d, "commit.log"),
		GroupCommit:    group,
		GCInterval:     gcEvery,
		Audit:          true,
		Health:         true,
		HealthInterval: interval,
		FlightDir:      d,
		TraceSample:    0.02,
		Hotspot:        hotspots,
	})
	if err != nil {
		fail("open: %v", err)
		return res
	}
	if err := db.Bootstrap(cfg.Bootstrap()); err != nil {
		fail("bootstrap: %v", err)
		db.Close()
		return res
	}

	deadline := time.Now().Add(budget)
	done := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Value // string
	for c := 0; c < clients; c++ {
		src, err := workload.NewSource(cfg, c)
		if err != nil {
			fail("workload: %v", err)
			db.Close()
			return res
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := applySpec(db, src.Next()); err != nil {
					firstErr.CompareAndSwap(nil, err.Error())
					return
				}
			}
		}()
	}
	// Online checkpoints concurrent with the load — one of the paper's
	// dividends, and exactly what the timeline should show as harmless.
	if checkpoint > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := time.NewTicker(checkpoint)
			defer tk.Stop()
			for {
				select {
				case <-done:
					return
				case <-tk.C:
					if err := db.Checkpoint(); err != nil {
						firstErr.CompareAndSwap(nil, "checkpoint: "+err.Error())
					}
				}
			}
		}()
	}
	if verbose {
		fmt.Printf("  [%s/%s] %d clients for %v in %s\n", proto, mode, clients, budget, d)
	}

	// Wait for the workload clients, then release the checkpointer.
	waitClients := make(chan struct{})
	go func() { wg.Wait(); close(waitClients) }()
	<-time.After(budget)
	close(done)
	<-waitClients

	if e, ok := firstErr.Load().(string); ok && e != "" {
		fail("workload error: %s", e)
	}

	// Oracle, part 1: the run itself. Drain the auditor so its verdict
	// covers every recorded event.
	db.Audit().Drain()
	res.AuditAlarms = db.Audit().AlarmsTotal()
	if res.AuditAlarms > 0 {
		fail("%d audit alarms", res.AuditAlarms)
	}

	mon := db.Health()
	res.AlarmsWarn, res.AlarmsPage = mon.AlarmCounts()
	res.Points = mon.PointsTotal()
	if res.AlarmsPage > 0 {
		fail("%d paging SLO alarms", res.AlarmsPage)
	}

	// Oracle, part 2: long-horizon drift over the base-resolution
	// timeline.
	pts := mon.Points(0, 0)
	res.Drift = health.CheckDrift(pts, driftChecks)
	for _, dr := range res.Drift {
		if !dr.OK {
			fail("drift: %s grew %g -> %g (bound %g)", dr.Metric, dr.FirstMean, dr.LastMean, dr.Bound)
		}
	}

	// The timeline is always written — a passing soak's shape is the
	// baseline the next failing one is compared against.
	tl := mon.Timeline(-1, 0)
	tlPath := filepath.Join(d, "health-"+proto+"-"+mode+".json")
	if data, err := json.MarshalIndent(tl, "", "  "); err == nil {
		if err := os.WriteFile(tlPath, append(data, '\n'), 0o644); err == nil {
			res.Timeline = tlPath
		}
	}

	sn := db.Stats()
	res.CommitsRW, res.CommitsRO = sn.CommitsRW, sn.CommitsRO
	res.Aborts, res.Retries = sn.AbortsTotal(), sn.Retries
	if rep := db.Hotspots(); rep != nil {
		res.TopKeys = rep.HotWrites
		if len(res.TopKeys) == 0 {
			res.TopKeys = rep.HotReads
		}
		if len(res.TopKeys) > 8 {
			res.TopKeys = res.TopKeys[:8]
		}
	}
	// Knob actions only exist under AdaptiveCC; read the Extra map
	// defensively so plain soak configs report 0.
	res.KnobActions = sn.Extra["adaptive.knob_actions"]

	res.Pass = len(res.Reasons) == 0
	if !res.Pass {
		if path, err := db.Flight().Trigger("soak-fail", fmt.Sprintf("%v", res.Reasons)); err == nil {
			res.Bundle = path
		}
	}
	if err := db.Close(); err != nil {
		res.Pass = false
		res.Reasons = append(res.Reasons, fmt.Sprintf("close: %v", err))
	}
	return res
}

func applySpec(db *mvdb.DB, spec workload.TxnSpec) error {
	if spec.ReadOnly {
		return db.View(func(tx *mvdb.Tx) error {
			for _, op := range spec.Ops {
				if _, err := tx.Get(op.Key); err != nil && !errors.Is(err, mvdb.ErrNotFound) {
					return err
				}
			}
			return nil
		})
	}
	return db.Update(func(tx *mvdb.Tx) error {
		for _, op := range spec.Ops {
			if op.Write {
				if err := tx.Put(op.Key, op.Value); err != nil {
					return err
				}
			} else if _, err := tx.Get(op.Key); err != nil && !errors.Is(err, mvdb.ErrNotFound) {
				return err
			}
		}
		return nil
	})
}
