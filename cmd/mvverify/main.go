// Command mvverify stress-tests every engine in the repository for
// one-copy serializability: it runs randomized concurrent workloads while
// recording the history (which version every transaction read and wrote),
// then builds the multiversion serialization graph of Bernstein & Goodman
// and checks it is acyclic (paper Section 3.2) — plus a domain invariant
// (bank-balance conservation) as a second, independent oracle.
//
// Usage:
//
//	mvverify [-rounds 3] [-clients 8] [-txns 200] [-keys 16] [-seed 1]
//	         [-engines all] [-dot dir]
//
// Exit status 0 means every engine passed every round. With -dot, a
// failing round's multiversion serialization graph is written as Graphviz
// DOT into the given directory for inspection.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/lock"
)

type bootstrapper interface {
	Bootstrap(map[string][]byte) error
}

func mkEngine(name string, rec engine.Recorder) (engine.Engine, error) {
	switch name {
	case "vc+2pl":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, Recorder: rec}), nil
	case "vc+2pl/woundwait":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.WoundWait, Recorder: rec}), nil
	case "vc+2pl/timeout":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.TimeoutPolicy, LockTimeout: 5 * time.Millisecond, Recorder: rec}), nil
	case "vc+to":
		return core.New(core.Options{Protocol: core.TimestampOrdering, Recorder: rec}), nil
	case "vc+occ":
		return core.New(core.Options{Protocol: core.Optimistic, Recorder: rec}), nil
	case "mvto":
		return baseline.NewMVTO(0, rec), nil
	case "mv2plctl":
		return baseline.NewMV2PLCTL(0, lock.Detect, 0, rec), nil
	case "sv2pl":
		return baseline.NewSV2PL(0, lock.Detect, 0, rec), nil
	case "adaptive":
		return adaptive.New(adaptive.Options{Core: core.Options{Recorder: rec}, Window: 16}), nil
	case "dist3":
		return dist.New(dist.Options{Sites: 3, Recorder: rec, LockTimeout: 10 * time.Millisecond})
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

var allEngineNames = []string{
	"vc+2pl", "vc+2pl/woundwait", "vc+2pl/timeout", "vc+to", "vc+occ",
	"mvto", "mv2plctl", "sv2pl", "adaptive", "dist3",
}

func main() {
	var (
		rounds  = flag.Int("rounds", 3, "rounds per engine (different seeds)")
		clients = flag.Int("clients", 8, "concurrent clients")
		txns    = flag.Int("txns", 200, "transactions per client")
		keys    = flag.Int("keys", 16, "number of bank accounts")
		seed    = flag.Int64("seed", 1, "base seed")
		which   = flag.String("engines", "all", "comma-separated engine list or 'all'")
		dotDir  = flag.String("dot", "", "write failing histories' MVSG as DOT files into this directory")
	)
	flag.Parse()

	names := allEngineNames
	if *which != "all" {
		names = strings.Split(*which, ",")
	}

	failed := 0
	for _, name := range names {
		for r := 0; r < *rounds; r++ {
			if err := verifyRound(name, *seed+int64(r), *clients, *txns, *keys, *dotDir); err != nil {
				fmt.Printf("FAIL  %-18s round %d: %v\n", name, r, err)
				failed++
			} else {
				fmt.Printf("ok    %-18s round %d\n", name, r)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d failures\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall engines one-copy serializable")
}

func verifyRound(name string, seed int64, clients, txns, keys int, dotDir string) error {
	rec := history.NewRecorder()
	e, err := mkEngine(name, rec)
	if err != nil {
		return err
	}
	defer e.Close()

	const initBal = 100
	boot := make(map[string][]byte, keys)
	acct := func(i int) string { return fmt.Sprintf("acct%03d", i) }
	for i := 0; i < keys; i++ {
		boot[acct(i)] = []byte{initBal}
	}
	if err := e.(bootstrapper).Bootstrap(boot); err != nil {
		return err
	}

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			for i := 0; i < txns; i++ {
				if rng.Intn(3) == 0 {
					if err := audit(e, rng, acct, keys); err != nil {
						fail(err)
						return
					}
					continue
				}
				if err := transfer(e, rng, acct, keys); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Oracle 1: domain invariant on a final snapshot.
	total, err := totalBalance(e, acct, keys)
	if err != nil {
		return err
	}
	if total != keys*initBal {
		return fmt.Errorf("balance not conserved: %d != %d", total, keys*initBal)
	}
	// Oracle 2: MVSG acyclicity over the full recorded history.
	if err := rec.Check(); err != nil {
		if dotDir != "" {
			fn := filepath.Join(dotDir, fmt.Sprintf("%s-seed%d.dot",
				strings.NewReplacer("/", "_", "+", "").Replace(name), seed))
			if f, ferr := os.Create(fn); ferr == nil {
				rec.WriteDOT(f)
				f.Close()
				fmt.Printf("      MVSG written to %s\n", fn)
			}
		}
		return err
	}
	if rec.CommittedCount() == 0 {
		return errors.New("nothing committed; vacuous round")
	}
	return nil
}

func audit(e engine.Engine, rng *rand.Rand, acct func(int) string, keys int) error {
	for attempt := 0; attempt < 100; attempt++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return err
		}
		ok := true
		for j := 0; j < 4; j++ {
			if _, err := tx.Get(acct(rng.Intn(keys))); err != nil && !errors.Is(err, engine.ErrNotFound) {
				tx.Abort()
				if engine.Retryable(err) {
					ok = false
					break
				}
				return err
			}
		}
		if !ok {
			continue
		}
		return tx.Commit()
	}
	return errors.New("read-only audit starved")
}

func transfer(e engine.Engine, rng *rand.Rand, acct func(int) string, keys int) error {
	for attempt := 0; attempt < 200; attempt++ {
		from, to := rng.Intn(keys), rng.Intn(keys)
		if from == to {
			continue
		}
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return err
		}
		fv, err := tx.Get(acct(from))
		if err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		tv, err := tx.Get(acct(to))
		if err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if fv[0] == 0 {
			tx.Abort()
			return nil
		}
		if err := tx.Put(acct(from), []byte{fv[0] - 1}); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if err := tx.Put(acct(to), []byte{tv[0] + 1}); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		return nil
	}
	return nil // contention-starved transfer: harmless to skip
}

func totalBalance(e engine.Engine, acct func(int) string, keys int) (int, error) {
	for attempt := 0; attempt < 100; attempt++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return 0, err
		}
		total := 0
		ok := true
		for i := 0; i < keys; i++ {
			v, err := tx.Get(acct(i))
			if err != nil {
				tx.Abort()
				if engine.Retryable(err) {
					ok = false
					break
				}
				return 0, err
			}
			total += int(v[0])
		}
		if !ok {
			continue
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return 0, err
		}
		return total, nil
	}
	return 0, errors.New("final audit starved")
}
