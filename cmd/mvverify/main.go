// Command mvverify stress-tests every engine in the repository for
// one-copy serializability: it runs randomized concurrent workloads while
// recording the history (which version every transaction read and wrote),
// then builds the multiversion serialization graph of Bernstein & Goodman
// and checks it is acyclic (paper Section 3.2) — plus a domain invariant
// (bank-balance conservation) as a second, independent oracle.
//
// Usage:
//
//	mvverify [-rounds 3] [-clients 8] [-txns 200] [-keys 16] [-seed 1]
//	         [-engines all] [-dot dir] [-audit] [-audit-window n]
//
// With -audit, the online auditor (internal/audit) runs alongside the
// offline checker over the same event stream and the two verdicts must
// agree; two deliberately broken engines (the core ablations A1 and A2)
// are added to the run and must trip a live MVSG-cycle alarm.
//
// Exit status 0 means every engine passed every round. With -dot, a
// failing round's multiversion serialization graph is written as Graphviz
// DOT into the given directory for inspection.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/audit"
	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/lock"
)

type bootstrapper interface {
	Bootstrap(map[string][]byte) error
}

func mkEngine(name string, rec engine.Recorder) (engine.Engine, error) {
	switch name {
	case "vc+2pl":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, Recorder: rec}), nil
	case "vc+2pl/woundwait":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.WoundWait, Recorder: rec}), nil
	case "vc+2pl/timeout":
		return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.TimeoutPolicy, LockTimeout: 5 * time.Millisecond, Recorder: rec}), nil
	case "vc+to":
		return core.New(core.Options{Protocol: core.TimestampOrdering, Recorder: rec}), nil
	case "vc+occ":
		return core.New(core.Options{Protocol: core.Optimistic, Recorder: rec}), nil
	case "mvto":
		return baseline.NewMVTO(0, rec), nil
	case "mv2plctl":
		return baseline.NewMV2PLCTL(0, lock.Detect, 0, rec), nil
	case "sv2pl":
		return baseline.NewSV2PL(0, lock.Detect, 0, rec), nil
	case "adaptive":
		return adaptive.New(adaptive.Options{Core: core.Options{Recorder: rec}, Window: 16}), nil
	case "dist3":
		return dist.New(dist.Options{Sites: 3, Recorder: rec, LockTimeout: 10 * time.Millisecond})
	case "broken-early-register":
		return baseline.NewBrokenEarlyRegister(rec), nil
	case "broken-eager-visibility":
		return baseline.NewBrokenEagerVisibility(rec), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

var allEngineNames = []string{
	"vc+2pl", "vc+2pl/woundwait", "vc+2pl/timeout", "vc+to", "vc+occ",
	"mvto", "mv2plctl", "sv2pl", "adaptive", "dist3",
}

// brokenEngineNames are the deliberate ablations run under -audit; they
// are expected to produce serializability violations, so a round passes
// when online and offline verdicts agree, and the engine as a whole
// passes only if at least one round tripped a live alarm.
var brokenEngineNames = []string{"broken-early-register", "broken-eager-visibility"}

func isBroken(name string) bool { return strings.HasPrefix(name, "broken-") }

func main() {
	var (
		rounds  = flag.Int("rounds", 3, "rounds per engine (different seeds)")
		clients = flag.Int("clients", 8, "concurrent clients")
		txns    = flag.Int("txns", 200, "transactions per client")
		keys    = flag.Int("keys", 16, "number of bank accounts")
		seed    = flag.Int64("seed", 1, "base seed")
		which   = flag.String("engines", "all", "comma-separated engine list or 'all'")
		dotDir  = flag.String("dot", "", "write failing histories' MVSG as DOT files into this directory")
		withAud = flag.Bool("audit", false, "run the online auditor alongside the offline checker; verdicts must agree")
		audWin  = flag.Int("audit-window", 0, "auditor MVSG window (0: cover the whole round)")
	)
	flag.Parse()

	names := allEngineNames
	if *which != "all" {
		names = strings.Split(*which, ",")
	} else if *withAud {
		// The ablations ride along only under -audit: without the online
		// auditor there is nothing live to trip.
		names = append(append([]string{}, names...), brokenEngineNames...)
	}

	failed := 0
	for _, name := range names {
		alarmedRounds := 0
		// Broken engines run hot (few accounts) so a violation is all but
		// certain within a round.
		k := *keys
		if isBroken(name) {
			k = 4
		}
		for r := 0; r < *rounds; r++ {
			alarmed, err := verifyRound(name, *seed+int64(r), *clients, *txns, k, *dotDir, *withAud, *audWin)
			if alarmed {
				alarmedRounds++
			}
			switch {
			case err != nil:
				fmt.Printf("FAIL  %-24s round %d: %v\n", name, r, err)
				failed++
			case alarmed:
				fmt.Printf("ok    %-24s round %d (violation caught live)\n", name, r)
			default:
				fmt.Printf("ok    %-24s round %d\n", name, r)
			}
		}
		if isBroken(name) && alarmedRounds == 0 {
			fmt.Printf("FAIL  %-24s: ablation never tripped a live alarm\n", name)
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d failures\n", failed)
		os.Exit(1)
	}
	if *withAud {
		fmt.Println("\nall engines one-copy serializable; online and offline verdicts agree; ablations caught live")
	} else {
		fmt.Println("\nall engines one-copy serializable")
	}
}

// verifyRound runs one randomized round. alarmed reports whether the
// online auditor raised at least one alarm (meaningful under withAudit).
func verifyRound(name string, seed int64, clients, txns, keys int, dotDir string, withAudit bool, audWindow int) (alarmed bool, err error) {
	rec := history.NewRecorder()
	var aud *audit.Auditor
	var recAll engine.Recorder = rec
	if withAudit {
		if audWindow <= 0 {
			// Cover the whole round so the online edge set matches the
			// offline batch graph exactly (nothing evicted).
			audWindow = clients*txns + 64
		}
		aud = audit.New(audit.Options{
			Window: audWindow,
			// Larger than the round can produce, so nothing is dropped
			// and the verdicts are comparable.
			Queue:  1 << 17,
			Alarms: 16,
			Logger: slog.New(slog.DiscardHandler),
		})
		defer aud.Close()
		recAll = engine.Multi(rec, aud)
	}
	e, err := mkEngine(name, recAll)
	if err != nil {
		return false, err
	}
	defer e.Close()

	const initBal = 100
	boot := make(map[string][]byte, keys)
	acct := func(i int) string { return fmt.Sprintf("acct%03d", i) }
	for i := 0; i < keys; i++ {
		boot[acct(i)] = []byte{initBal}
	}
	if err := e.(bootstrapper).Bootstrap(boot); err != nil {
		return false, err
	}

	broken := isBroken(name)
	if broken {
		// Random workloads rarely hit the narrow interleavings the
		// ablations need, so drive them deterministically (the same
		// schedules as the core ablation tests) — the point is proving
		// the auditor catches the violation live.
		if err := provoke(name, e, acct); err != nil {
			return false, err
		}
	} else {
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				for i := 0; i < txns; i++ {
					if rng.Intn(3) == 0 {
						if err := roAudit(e, rng, acct, keys); err != nil {
							fail(err)
							return
						}
						continue
					}
					if err := transfer(e, rng, acct, keys); err != nil {
						fail(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return false, firstErr
		}
	}
	if !broken {
		// Oracle 1: domain invariant on a final snapshot. Skipped for the
		// ablations — an inconsistent snapshot is exactly what they
		// produce, and the MVSG oracles are the ones that must catch it.
		total, err := totalBalance(e, acct, keys)
		if err != nil {
			return false, err
		}
		if total != keys*initBal {
			return false, fmt.Errorf("balance not conserved: %d != %d", total, keys*initBal)
		}
	}
	// Oracle 2: MVSG acyclicity over the full recorded history.
	offlineErr := rec.Check()
	if aud != nil {
		// Oracle 3: the online auditor over the same stream. With the
		// window covering the round and nothing dropped, its verdict must
		// agree with the offline checker's.
		aud.Drain()
		alarms := aud.AlarmsTotal()
		alarmed = alarms > 0
		if dropped := aud.Dropped(); dropped > 0 {
			return alarmed, fmt.Errorf("audit queue dropped %d events; verdicts not comparable", dropped)
		}
		if alarmed != (offlineErr != nil) {
			return alarmed, fmt.Errorf("audit disagreement: online alarms=%d, offline=%v", alarms, offlineErr)
		}
	}
	if offlineErr != nil {
		if broken {
			// Expected: the ablation violated serializability and (when
			// auditing) the online pipeline caught the same thing.
			return alarmed, nil
		}
		if dotDir != "" {
			fn := filepath.Join(dotDir, fmt.Sprintf("%s-seed%d.dot",
				strings.NewReplacer("/", "_", "+", "").Replace(name), seed))
			if f, ferr := os.Create(fn); ferr == nil {
				rec.WriteDOT(f)
				f.Close()
				fmt.Printf("      MVSG written to %s\n", fn)
			}
		}
		return alarmed, offlineErr
	}
	if rec.CommittedCount() == 0 {
		return alarmed, errors.New("nothing committed; vacuous round")
	}
	return alarmed, nil
}

// provoke drives the deterministic anomaly interleavings for the broken
// engines (core ablations A1/A2): the resulting histories contain an
// MVSG cycle that both the offline checker and the live auditor must
// find.
func provoke(name string, e engine.Engine, acct func(int) string) error {
	step := func(err error) error {
		if err != nil {
			return fmt.Errorf("provoking %s: %w", name, err)
		}
		return nil
	}
	switch name {
	case "broken-early-register":
		// T1 registers at begin (tn fixed too early), T2 then writes and
		// commits x, and T1 reads T2's version and overwrites it with a
		// smaller tn; a read-only observer resolves to T2's version.
		x := acct(0)
		t1, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return step(err)
		}
		t2, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return step(err)
		}
		if err := t2.Put(x, []byte{1}); err != nil {
			return step(err)
		}
		if err := t2.Commit(); err != nil {
			return step(err)
		}
		if _, err := t1.Get(x); err != nil {
			return step(err)
		}
		if err := t1.Put(x, []byte{2}); err != nil {
			return step(err)
		}
		if err := t1.Commit(); err != nil {
			return step(err)
		}
		ro, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return step(err)
		}
		if _, err := ro.Get(x); err != nil {
			return step(err)
		}
		return step(ro.Commit())
	case "broken-eager-visibility":
		// T1 (older) reads z and writes y; T2 (younger) overwrites z and
		// completes first; a read-only snapshot in the eager-visibility
		// gap sees T2's z but not T1's y.
		y, z := acct(0), acct(1)
		t1, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return step(err)
		}
		t2, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return step(err)
		}
		if _, err := t1.Get(z); err != nil {
			return step(err)
		}
		if err := t1.Put(y, []byte{1}); err != nil {
			return step(err)
		}
		if err := t2.Put(z, []byte{2}); err != nil {
			return step(err)
		}
		if err := t2.Commit(); err != nil {
			return step(err)
		}
		ro, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return step(err)
		}
		if _, err := ro.Get(z); err != nil {
			return step(err)
		}
		if _, err := ro.Get(y); err != nil {
			return step(err)
		}
		if err := ro.Commit(); err != nil {
			return step(err)
		}
		return step(t1.Commit())
	default:
		return fmt.Errorf("no anomaly driver for %q", name)
	}
}

func roAudit(e engine.Engine, rng *rand.Rand, acct func(int) string, keys int) error {
	for attempt := 0; attempt < 100; attempt++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return err
		}
		ok := true
		for j := 0; j < 4; j++ {
			if _, err := tx.Get(acct(rng.Intn(keys))); err != nil && !errors.Is(err, engine.ErrNotFound) {
				tx.Abort()
				if engine.Retryable(err) {
					ok = false
					break
				}
				return err
			}
		}
		if !ok {
			continue
		}
		return tx.Commit()
	}
	return errors.New("read-only audit starved")
}

func transfer(e engine.Engine, rng *rand.Rand, acct func(int) string, keys int) error {
	for attempt := 0; attempt < 200; attempt++ {
		from, to := rng.Intn(keys), rng.Intn(keys)
		if from == to {
			continue
		}
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return err
		}
		fv, err := tx.Get(acct(from))
		if err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		tv, err := tx.Get(acct(to))
		if err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if fv[0] == 0 {
			tx.Abort()
			return nil
		}
		if err := tx.Put(acct(from), []byte{fv[0] - 1}); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if err := tx.Put(acct(to), []byte{tv[0] + 1}); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return err
		}
		return nil
	}
	return nil // contention-starved transfer: harmless to skip
}

func totalBalance(e engine.Engine, acct func(int) string, keys int) (int, error) {
	for attempt := 0; attempt < 100; attempt++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return 0, err
		}
		total := 0
		ok := true
		for i := 0; i < keys; i++ {
			v, err := tx.Get(acct(i))
			if err != nil {
				tx.Abort()
				if engine.Retryable(err) {
					ok = false
					break
				}
				return 0, err
			}
			total += int(v[0])
		}
		if !ok {
			continue
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			return 0, err
		}
		return total, nil
	}
	return 0, errors.New("final audit starved")
}
