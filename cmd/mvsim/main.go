// Command mvsim replays the paper's figures as annotated executions:
// deterministic scenario scripts against the real engines, printing each
// step with the version-control state (tnc, vtnc, queue) so the
// mechanisms of Figures 1-4 and the Section 6 discussion can be watched
// in motion.
//
// Usage:
//
//	mvsim [-scenario all|fig1|fig2|fig3|fig4|lag|ablation]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/lock"
	"mvdb/internal/vc"
)

func main() {
	which := flag.String("scenario", "all", "scenario id or 'all'")
	flag.Parse()

	scenarios := []struct {
		id   string
		name string
		run  func()
	}{
		{"fig1", "Figure 1: the version control module's counters and queue", fig1},
		{"fig2", "Figure 2: read-only execution, independent of concurrency control", fig2},
		{"fig3", "Figure 3: version control with timestamp ordering", fig3},
		{"fig4", "Figure 4: version control with two-phase locking", fig4},
		{"lag", "Section 6: delayed visibility and the recency rectification", lag},
		{"ablation", "Why the rules matter: breaking the visibility property", ablation},
		{"dist", "Section 6: distributed version control (reconstruction of [3])", distScenario},
		{"reed", "Section 2: what the paper fixes in Reed's MVTO", reedScenario},
		{"chan", "Section 2: what the paper fixes in Chan's MV2PL", chanScenario},
	}
	ran := 0
	for _, s := range scenarios {
		if *which != "all" && !strings.EqualFold(*which, s.id) {
			continue
		}
		fmt.Printf("\n======== %s ========\n\n", s.name)
		s.run()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *which)
		os.Exit(2)
	}
}

func vcState(c vc.Controller) string {
	return fmt.Sprintf("[tnc=%d vtnc=%d queue=%d]", c.TNC(), c.VTNC(), c.QueueLen())
}

func step(format string, args ...any) {
	fmt.Printf("  %s\n", fmt.Sprintf(format, args...))
}

func fig1() {
	c := vc.New(0)
	step("start                          %s", vcState(c))
	step("a read-only txn calls VCstart() -> sn=%d (it will read versions <= %d)", c.Start(), c.Start())

	e1 := c.Register()
	step("T1 registers: tn=%d            %s", e1.TN(), vcState(c))
	e2 := c.Register()
	step("T2 registers: tn=%d            %s", e2.TN(), vcState(c))
	e3 := c.Register()
	step("T3 registers: tn=%d            %s", e3.TN(), vcState(c))

	c.Complete(e2)
	step("T2 completes FIRST             %s  <- vtnc held back by active T1", vcState(c))
	step("VCstart() still returns %d: T2's updates stay invisible (visibility property)", c.Start())

	c.Discard(e3)
	step("T3 aborts (VCdiscard)          %s", vcState(c))

	c.Complete(e1)
	step("T1 completes                   %s  <- queue drains: T1, then the already-complete T2", vcState(c))
	step("VCstart() now returns %d: both commits visible, in serialization order", c.Start())
	if err := c.CheckInvariants(); err != nil {
		panic(err)
	}
	step("module invariants hold")
}

func fig2() {
	for _, p := range []core.Protocol{core.TwoPhaseLocking, core.TimestampOrdering, core.Optimistic} {
		e := core.New(core.Options{Protocol: p})
		e.Bootstrap(map[string][]byte{"x": []byte("x0")})

		// A writer is mid-flight with an uncommitted write to x.
		w, _ := e.Begin(engine.ReadWrite)
		if err := w.Put("x", []byte("x1-uncommitted")); err != nil {
			panic(err)
		}

		ro, _ := e.Begin(engine.ReadOnly)
		sn, _ := ro.SN()
		v, _ := ro.Get("x")
		step("%-7s ro begins: sn(T)=%d; read(x) -> %q  (no locks, no waiting, writer mid-flight)", p, sn, v)
		ro.Commit()
		if err := w.Commit(); err != nil {
			panic(err)
		}
		e.Close()
	}
	step("the read-only code path was IDENTICAL under all three protocols —")
	step("'the execution of read-only transactions is completely independent of the")
	step("chosen concurrency control protocol' (Section 1)")
}

func fig3() {
	e := core.New(core.Options{Protocol: core.TimestampOrdering})
	e.Bootstrap(map[string][]byte{"x": []byte("x0"), "y": []byte("y0")})

	t1, _ := e.Begin(engine.ReadWrite)
	tn1, _ := t1.SN()
	step("T1 begins: VCregister -> tn=%d (serial order fixed a priori)  %s", tn1, vcState(e.VC()))
	t2, _ := e.Begin(engine.ReadWrite)
	tn2, _ := t2.SN()
	step("T2 begins: tn=%d", tn2)

	if _, err := t2.Get("x"); err != nil {
		panic(err)
	}
	step("T2 reads x: r-ts(x) <- %d; returns x0 (largest version <= sn(T2))", tn2)

	err := t1.Put("x", []byte("x-late"))
	step("T1 (older) writes x AFTER T2's read: r-ts(x)=%d > tn=%d -> %v", tn2, tn1, err)
	step("T1 aborted and VCdiscarded       %s", vcState(e.VC()))

	if err := t2.Put("y", []byte("y2")); err != nil {
		panic(err)
	}
	step("T2 writes y: pending version y_%d created", tn2)

	// A younger reader blocks behind T2's pending write.
	t3, _ := e.Begin(engine.ReadWrite)
	tn3, _ := t3.SN()
	got := make(chan string)
	go func() {
		v, _ := t3.Get("y")
		got <- string(v)
	}()
	select {
	case v := <-got:
		panic("read did not block: " + v)
	case <-time.After(20 * time.Millisecond):
		step("T3 (tn=%d) reads y: BLOCKED on T2's pending write (Figure 3 note)", tn3)
	}
	if err := t2.Commit(); err != nil {
		panic(err)
	}
	step("T2 commits: pending y becomes version y_%d; VCcomplete  %s", tn2, vcState(e.VC()))
	step("T3's read resumes -> %q", <-got)
	t3.Commit()
	e.Close()
}

func fig4() {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking})
	e.Bootstrap(map[string][]byte{"x": []byte("x0"), "y": []byte("y0")})

	t1, _ := e.Begin(engine.ReadWrite)
	step("T1 begins: sn(T)=infinity, NOT registered yet  %s", vcState(e.VC()))
	if _, err := t1.Get("x"); err != nil {
		panic(err)
	}
	step("T1 reads x: r-lock(x), returns the latest version x0")
	if err := t1.Put("y", []byte("y?")); err != nil {
		panic(err)
	}
	step("T1 writes y: w-lock(y), version created with number phi (unknown)")
	step("while T1 executes, its serial order is still uncertain  %s", vcState(e.VC()))

	if err := t1.Commit(); err != nil {
		panic(err)
	}
	tn, _ := t1.SN()
	step("end(T1): VCregister -> tn=%d (lock-point passed); updates installed as", tn)
	step("version y_%d; locks cleared; VCcomplete  %s", tn, vcState(e.VC()))

	ro, _ := e.Begin(engine.ReadOnly)
	v, _ := ro.Get("y")
	step("a new read-only txn reads y -> %q", v)
	ro.Commit()
	step("note: every transaction the VC module ever sees is past its lock-point,")
	step("so version control can never participate in a deadlock (Section 4.4)")
	e.Close()
}

func lag() {
	e := core.New(core.Options{Protocol: core.TimestampOrdering})
	e.Bootstrap(map[string][]byte{"k": []byte("v0")})

	strag, _ := e.Begin(engine.ReadWrite)
	stragTN, _ := strag.SN()
	strag.Put("other", []byte("slow"))
	step("straggler registers tn=%d and dawdles", stragTN)

	young, _ := e.Begin(engine.ReadWrite)
	young.Put("k", []byte("v-new"))
	young.Commit()
	youngTN, _ := young.SN()
	step("younger txn tn=%d commits 'v-new'   %s  <- lag=%d", youngTN, vcState(e.VC()), e.VC().Lag())

	ro, _ := e.Begin(engine.ReadOnly)
	v, _ := ro.Get("k")
	ro.Commit()
	step("plain read-only txn reads k -> %q (stale but consistent: zero-cost reads)", v)

	done := make(chan string)
	go func() {
		rro, _ := e.BeginReadOnlyAt(youngTN)
		v, _ := rro.Get("k")
		rro.Commit()
		done <- string(v)
	}()
	select {
	case <-done:
		panic("recency reader did not wait")
	case <-time.After(10 * time.Millisecond):
		step("recency-rectified reader (sn >= %d) WAITS for the straggler...", youngTN)
	}
	strag.Commit()
	step("straggler commits; rectified reader returns %q (Section 6 rectification)", <-done)
	e.Close()
}

func ablation() {
	rec := history.NewRecorder()
	e := core.New(core.Options{
		Protocol:              core.TimestampOrdering,
		Recorder:              rec,
		UnsafeEagerVisibility: true, // violate the Transaction Visibility Property
	})
	e.Bootstrap(map[string][]byte{"y": []byte("y0"), "z": []byte("z0")})

	t1, _ := e.Begin(engine.ReadWrite)
	t2, _ := e.Begin(engine.ReadWrite)
	t1.Get("z")
	t1.Put("y", []byte("y1"))
	t2.Put("z", []byte("z2"))
	t2.Commit()
	step("broken engine: vtnc advanced to T2 although older T1 is active")

	ro, _ := e.Begin(engine.ReadOnly)
	zv, _ := ro.Get("z")
	yv, _ := ro.Get("y")
	ro.Commit()
	step("read-only txn observes z=%q (T2's) but y=%q (pre-T1): a snapshot that", zv, yv)
	step("no serial order can explain, since T1 read z before T2 overwrote it")
	t1.Commit()

	if err := rec.Check(); err != nil {
		step("the MVSG checker catches it: %v", err)
	} else {
		panic("checker missed the anomaly")
	}
}

func distScenario() {
	c, err := dist.New(dist.Options{Sites: 3})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Find keys on specific sites.
	keyOn := func(site int, hint string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s-%d", hint, i)
			if c.SiteFor(k).ID() == site {
				return k
			}
		}
	}
	kA, kC := keyOn(0, "acct"), keyOn(2, "acct")
	c.Bootstrap(map[string][]byte{kA: []byte("100"), kC: []byte("100")})
	step("3 sites; %q lives at site 0, %q at site 2; each site has its own", kA, kC)
	step("tnc/vtnc/VCQueue, handing out numbers from disjoint residue classes")

	tx, _ := c.Begin(engine.ReadWrite)
	tx.Put(kA, []byte("90"))
	tx.Put(kC, []byte("110"))
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	tn, _ := tx.(*dist.DTx).SN()
	step("cross-site transfer commits via 2PC: both participants vote their next")
	step("local number, the coordinator picks the max, and BOTH sites register")
	step("exactly tn=%d — one transaction number per read-write transaction", tn)
	for s := 0; s < 3; s++ {
		site := c.Sites()[s]
		step("  site %d: vtnc=%d tnc=%d", s, site.VC().VTNC(), site.VC().TNC())
	}

	ro, _ := c.Begin(engine.ReadOnly)
	a, _ := ro.Get(kA)
	b, _ := ro.Get(kC)
	ro.Commit()
	step("a global read-only txn takes ONE start number (the committed high-water")
	step("mark, no messages) and reads both sites: %s + %s = 200, consistent;", a, b)
	step("site 1 was never named in advance — no a-priori site knowledge needed")
	step("(visibility waits: %d, fillers: %d)", c.Stats()["ro.waits"], c.Stats()["ro.fillers"])
}

func reedScenario() {
	e := baseline.NewMVTO(0, nil)
	defer e.Close()
	e.Bootstrap(map[string][]byte{"x": []byte("x0")})

	rw, _ := e.Begin(engine.ReadWrite) // older timestamp
	ro, _ := e.Begin(engine.ReadOnly)  // younger timestamp
	v, _ := ro.Get("x")
	ro.Commit()
	step("a read-only txn reads x -> %q, RAISING r-ts(x) to its timestamp", v)
	err := rw.Put("x", []byte("late"))
	step("an OLDER read-write txn then writes x: r-ts too high -> %v", err)
	step("'this may result in a read-only transaction causing an abort of a")
	step("read-write transaction' (Section 2) — impossible in the VC engines")

	rw2, _ := e.Begin(engine.ReadWrite)
	rw2.Put("x", []byte("pending"))
	blocked := make(chan string)
	go func() {
		ro2, _ := e.Begin(engine.ReadOnly)
		v, _ := ro2.Get("x")
		ro2.Commit()
		blocked <- string(v)
	}()
	select {
	case <-blocked:
		panic("mvto reader did not block")
	case <-time.After(20 * time.Millisecond):
		step("a read-only txn now BLOCKS behind a pending write (Section 2 again)")
	}
	rw2.Commit()
	step("writer commits; reader resumes with %q", <-blocked)
	st := e.Stats()
	step("stats: ro.blocked=%d, rw.aborts.by_ro=%d", st["ro.blocked"], st["rw.aborts.by_ro"])
}

func chanScenario() {
	e := baseline.NewMV2PLCTL(0, lock.Detect, 0, nil)
	defer e.Close()
	e.Bootstrap(map[string][]byte{"x": []byte("x0")})

	release := e.HoldNumber()
	step("a txn passes its lock-point (number allocated) but has not committed:")
	step("a hole opens in the completed transaction list (CTL)")
	for i := 0; i < 100; i++ {
		tx, _ := e.Begin(engine.ReadWrite)
		tx.Put(fmt.Sprintf("k%02d", i%10), []byte("v"))
		if err := tx.Commit(); err != nil {
			panic(err)
		}
	}
	step("100 transactions commit above the hole: CTL tail = %d entries", e.CTLTail())

	before := e.Stats()["ctl.copied"]
	ro, _ := e.Begin(engine.ReadOnly)
	copied := e.Stats()["ctl.copied"] - before
	v, _ := ro.Get("x")
	ro.Commit()
	step("a read-only txn begins: it must COPY %d CTL entries, then check", copied)
	step("membership on every version probe; read(x) -> %q", v)
	release()
	step("'the maintenance and usage of the completed transaction list ... is")
	step("cumbersome and complex' (Section 2); VCstart is one atomic load instead")
}
