package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/metrics"
	"mvdb/internal/obs"
	"mvdb/internal/vc"
	"mvdb/internal/vc/epoch"
	"mvdb/internal/workload"
)

// This file is the visibility-scaling regression harness behind the
// bench-scaling CI job: register→visible lag and version-control
// throughput at 1, 4 and 16 goroutines, strict drain vs epoch
// watermark, written as machine-readable JSON (schema "mvdb-bench/v1",
// same document shape as bench3). BENCH_4.json at the repository root
// is this harness's output for the epoch-visibility change.
//
// Two curve families:
//
//   - vc/*: the version-control module in isolation — each goroutine
//     runs a tight Register/Complete loop, and the visible observer
//     records every transaction's register→visible lag. This isolates
//     the synchronization cost the epoch controller is designed to
//     remove: under the strict drain every register and complete
//     crosses one global mutex, so the completer of the oldest
//     outstanding transaction queues behind the convoy and visibility
//     stalls for every transaction behind it. The -minspeedup gate
//     applies to this family at 16 goroutines.
//
//   - engine/*: the same modes under the full vc+2pl engine with phase
//     timing on, where lock manager and store costs dilute the effect.
//     Recorded as context, not gated: it shows how much of the
//     end-to-end profile the visible-wait phase is on this machine.
func runBench4(quick bool) {
	opsPerG := 400000
	txns := 3000
	if quick {
		opsPerG = 50000
		txns = 600
	}
	doc := benchDoc{
		Schema: "mvdb-bench/v1",
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
	}

	scales := []int{1, 4, 16}
	modes := []vc.Mode{vc.ModeStrict, vc.ModeEpoch}

	// Family 1: the module alone. lag16 collects the mean lag at the
	// 16-goroutine point per mode for the gate.
	lag16 := map[vc.Mode]float64{}
	for _, g := range scales {
		for _, m := range modes {
			r := benchVCDirect(m, g, opsPerG)
			if g == 16 {
				lag16[m] = r.Metrics["visible_lag_mean_ns"]
			}
			doc.Results = append(doc.Results, r)
		}
	}

	// Family 2: the full engine, update-only 2PL, in-memory (no WAL —
	// a durable commit path buries visibility lag under fsync time).
	for _, g := range scales {
		for _, m := range modes {
			doc.Results = append(doc.Results, benchVCEngine(m, g, txns))
		}
	}

	tb := metrics.Table{
		Title:   "bench4 — visibility scaling: strict drain vs epoch watermark",
		Headers: []string{"scenario", "goroutines", "ops/s", "lag mean", "lag p99"},
	}
	for _, r := range doc.Results {
		ops, meanKey, p99Key := r.Metrics["ops_per_sec"], "visible_lag_mean_ns", "visible_lag_p99_ns"
		if _, engineRow := r.Metrics["txn_per_sec"]; engineRow {
			ops, meanKey, p99Key = r.Metrics["txn_per_sec"], "visible_wait_mean_ns", "visible_wait_p99_ns"
		}
		tb.AddRow(r.Name,
			fmt.Sprint(r.Config["goroutines"]),
			fmt.Sprintf("%.0f", ops),
			time.Duration(r.Metrics[meanKey]).String(),
			time.Duration(r.Metrics[p99Key]).String())
	}
	fmt.Print(tb.String())

	if lag16[vc.ModeEpoch] > 0 {
		speedup := lag16[vc.ModeStrict] / lag16[vc.ModeEpoch]
		fmt.Printf("\nepoch visible-wait speedup over strict at 16 goroutines: %.2fx\n", speedup)
		if minSpeedup > 0 && speedup < minSpeedup {
			fmt.Fprintf(os.Stderr, "FAIL: epoch visible-wait speedup %.2fx below the %.2fx bar\n", speedup, minSpeedup)
			os.Exit(1)
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}

func newVC(mode vc.Mode) vc.Controller {
	if mode == vc.ModeEpoch {
		return epoch.New(0)
	}
	return vc.New(0)
}

// benchVCDirect hammers one controller with g goroutines, each running
// a tight Register/Complete loop, and reports throughput plus the
// distribution of register→visible lags seen by the visible observer.
func benchVCDirect(mode vc.Mode, g, opsPerG int) benchResult {
	c := newVC(mode)
	lag := metrics.NewHistogram()
	c.SetVisibleObserver(func(tn uint64, d time.Duration) { lag.Record(d.Nanoseconds()) })

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < opsPerG; n++ {
				c.Complete(c.Register())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Every registered transaction must have become visible by the
	// time the loops return: each loop completes its own registration
	// before the next, so once all goroutines have joined, no
	// transaction is outstanding and the watermark is fully advanced.
	if err := c.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("bench4 %s/%d: %v", mode, g, err))
	}
	s := lag.Summarize()
	return benchResult{
		Name: "vc/register-visible/" + mode.String(),
		Config: map[string]any{
			"impl":       "vc-module",
			"mode":       mode.String(),
			"goroutines": g,
		},
		Metrics: map[string]float64{
			"ops_per_sec":         float64(g*opsPerG) / elapsed.Seconds(),
			"visible_lag_mean_ns": s.Mean,
			"visible_lag_p50_ns":  float64(s.P50),
			"visible_lag_p99_ns":  float64(s.P99),
			"visible_lag_max_ns":  float64(s.Max),
		},
	}
}

// benchVCEngine runs an update-only 2PL workload with phase timing on
// and extracts the visible-wait phase row: the same lag measured
// end-to-end, where concurrency control and the store dilute it.
func benchVCEngine(mode vc.Mode, clients, txns int) benchResult {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking, Visibility: mode, PhaseTiming: true})
	wl := workload.Config{Keys: 2048, ReadOnlyFraction: 0, RWReads: 1, RWWrites: 2, Seed: 7}
	res := runOne(e, wl, clients, txns)
	sn := e.Snapshot()
	e.Close()

	m := map[string]float64{"txn_per_sec": res.Throughput()}
	for _, ps := range sn.Phases {
		if ps.Protocol == obs.Proto2PL.String() && ps.Phase == obs.PhaseVisibleWait.String() {
			m["visible_wait_mean_ns"] = ps.Durations.Mean
			m["visible_wait_p50_ns"] = float64(ps.Durations.P50)
			m["visible_wait_p99_ns"] = float64(ps.Durations.P99)
		}
	}
	return benchResult{
		Name: "engine/2pl-update/" + mode.String(),
		Config: map[string]any{
			"protocol":   "vc+2pl",
			"mode":       mode.String(),
			"goroutines": clients,
		},
		Metrics: m,
	}
}
