// Command mvbench regenerates the experiment tables in EXPERIMENTS.md:
// every comparative claim of the paper (Sections 1, 2, 6) measured
// against the re-implemented baselines, plus the micro-benchmarks of the
// version control module itself.
//
// Usage:
//
//	mvbench [-experiment all|f1|e1..e8|a3|bench3|bench4] [-quick] [-stats]
//	        [-json out.json] [-minspeedup X]
//
// With -stats, every harness run is followed by the engine's full
// counter snapshot (commits and aborts by cause, lock/WAL/GC substrate,
// version-control gauges) so a surprising table cell can be explained
// without re-running under a profiler.
//
// Each experiment prints one or more plain-text tables. Absolute numbers
// depend on the machine (these are CPU-bound simulations, not the paper's
// 1989 testbed); the qualitative shape — who wins, what is zero, what
// grows — is the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment id (f1, e1..e8, a3, bench3, bench4) or 'all'")
		quick   = flag.Bool("quick", false, "smaller runs (CI-sized)")
		stats   = flag.Bool("stats", false, "print the engine's full stats snapshot after each run")
		jsonOpt = flag.String("json", "", "bench3/bench4: also write machine-readable results (mvdb-bench/v1) to this file")
		minSpd  = flag.Float64("minspeedup", 0, "bench3: gate on group-commit speedup over the seed; bench4: gate on epoch-vs-strict visible-wait at 16 goroutines")
	)
	flag.Parse()
	showStats = *stats
	jsonOut = *jsonOpt
	minSpeedup = *minSpd

	experiments := []struct {
		id   string
		name string
		run  func(quick bool)
	}{
		{"f1", "Figure 1: version control module microbenchmark", runF1},
		{"e1", "E1: read-only transaction overhead per engine", runE1},
		{"e2", "E2: read-write aborts caused by read-only transactions", runE2},
		{"e3", "E3: read-only blocking behind writers", runE3},
		{"e4", "E4: snapshot start cost — VCstart vs CTL copy", runE4},
		{"e5", "E5: throughput sweep (read-only share x contention)", runE5},
		{"e6", "E6: delayed visibility and its rectification", runE6},
		{"e7", "E7: version garbage collection", runE7},
		{"e8", "E8: distributed version control", runE8},
		{"a3", "A3: adaptive concurrency control (switching CC under a fixed VC)", runA3},
		{"bench3", "bench3: striped lock manager + group-commit WAL regression set", runBench3},
		{"bench4", "bench4: visibility scaling — strict drain vs epoch watermark", runBench4},
	}

	ran := 0
	for _, e := range experiments {
		if *which != "all" && !strings.EqualFold(*which, e.id) {
			continue
		}
		fmt.Printf("\n######## %s ########\n\n", e.name)
		e.run(*quick)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
