package main

import (
	"fmt"
	"sort"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/gc"
	"mvdb/internal/harness"
	"mvdb/internal/lock"
	"mvdb/internal/metrics"
	"mvdb/internal/vc"
	"mvdb/internal/workload"

	"mvdb/internal/dist"
)

// showStats is set by the -stats flag: after each harness run the
// engine's counter snapshot is printed (nonzero counters only).
var showStats bool

// dumpStats renders one run's engine counters as a table, skipping
// zero-valued counters so the interesting ones stand out.
func dumpStats(label string, st map[string]int64) {
	if !showStats || len(st) == 0 {
		return
	}
	keys := make([]string, 0, len(st))
	for k, v := range st {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	tb := metrics.Table{Title: "stats — " + label, Headers: []string{"counter", "value"}}
	for _, k := range keys {
		tb.AddRow(k, fmt.Sprint(st[k]))
	}
	fmt.Print(tb.String())
}

// bootstrapper is implemented by every engine in this repository.
type bootstrapper interface {
	Bootstrap(map[string][]byte) error
}

type namedEngine struct {
	name string
	make func() engine.Engine
}

// roster builds fresh instances of every engine under comparison: the
// three paper engines and the three Section 2 baselines.
func roster() []namedEngine {
	return []namedEngine{
		{"vc+2pl", func() engine.Engine { return core.New(core.Options{Protocol: core.TwoPhaseLocking}) }},
		{"vc+to", func() engine.Engine { return core.New(core.Options{Protocol: core.TimestampOrdering}) }},
		{"vc+occ", func() engine.Engine { return core.New(core.Options{Protocol: core.Optimistic}) }},
		{"mvto(reed)", func() engine.Engine { return baseline.NewMVTO(0, nil) }},
		{"mv2pl+ctl(chan)", func() engine.Engine { return baseline.NewMV2PLCTL(0, lock.Detect, 0, nil) }},
		{"sv2pl", func() engine.Engine { return baseline.NewSV2PL(0, lock.Detect, 0, nil) }},
	}
}

func boot(e engine.Engine, wl workload.Config) {
	if err := e.(bootstrapper).Bootstrap(wl.Bootstrap()); err != nil {
		panic(err)
	}
}

// --- F1: the version control module itself -------------------------------

func runF1(quick bool) {
	iters := 2_000_000
	if quick {
		iters = 200_000
	}

	c := vc.New(0)
	t0 := time.Now()
	var sink uint64
	for i := 0; i < iters; i++ {
		sink += c.Start()
	}
	startNs := float64(time.Since(t0).Nanoseconds()) / float64(iters)
	_ = sink

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		e := c.Register()
		c.Complete(e)
	}
	regNs := float64(time.Since(t0).Nanoseconds()) / float64(iters)

	// Out-of-order completion: register a window, complete in reverse.
	const window = 64
	t0 = time.Now()
	entries := make([]vc.Handle, window)
	for i := 0; i < iters/window; i++ {
		for j := range entries {
			entries[j] = c.Register()
		}
		for j := len(entries) - 1; j >= 0; j-- {
			c.Complete(entries[j])
		}
	}
	oooNs := float64(time.Since(t0).Nanoseconds()) / float64(iters/window*window)

	if err := c.CheckInvariants(); err != nil {
		panic(err)
	}

	tb := metrics.Table{
		Title:   "F1 — version control module (Figure 1) cost per operation",
		Headers: []string{"operation", "ns/op", "note"},
	}
	tb.AddRow("VCstart (read-only begin)", metrics.F(startNs), "single atomic load; the entire RO synchronization cost")
	tb.AddRow("VCregister+VCcomplete (in order)", metrics.F(regNs), "per read-write transaction")
	tb.AddRow("VCregister+VCcomplete (reverse order, window 64)", metrics.F(oooNs), "queue absorbs out-of-order completion")
	fmt.Print(tb.String())
}

// --- E1: read-only overhead ----------------------------------------------

func runE1(quick bool) {
	txns := 4000
	if quick {
		txns = 800
	}
	wl := workload.Config{Keys: 256, ReadOnlyFraction: 1.0, ROReads: 4, Seed: 1}

	tb := metrics.Table{
		Title:   "E1 — read-only transaction cost (4 reads), no concurrent writers",
		Headers: []string{"engine", "mean", "p99", "mechanism paid by RO begin+reads"},
	}
	notes := map[string]string{
		"vc+2pl":          "one VCstart, snapshot reads",
		"vc+to":           "one VCstart, snapshot reads",
		"vc+occ":          "one VCstart, snapshot reads",
		"mvto(reed)":      "timestamp draw + r-ts update per read",
		"mv2pl+ctl(chan)": "CTL copy at begin + membership probe per read",
		"sv2pl":           "S-lock per read + lock release",
	}
	for _, ne := range roster() {
		e := ne.make()
		boot(e, wl)
		// Build some version history first so reads traverse chains.
		seed := harness.Config{Engine: e, Clients: 2, TxnsPerClient: 200,
			Workload: workload.Config{Keys: 256, RWWrites: 4, Seed: 2}}
		if _, err := harness.Run(seed); err != nil {
			panic(err)
		}
		res, err := harness.Run(harness.Config{Engine: e, Clients: 2, TxnsPerClient: txns, Workload: wl})
		if err != nil {
			panic(err)
		}
		tb.AddRow(ne.name, metrics.Dur(int64(res.ROLatency.Mean)), metrics.Dur(res.ROLatency.P99), notes[ne.name])
		dumpStats("e1 "+ne.name, res.Stats)
		e.Close()
	}
	fmt.Print(tb.String())
}

// --- E2: RO-caused aborts --------------------------------------------------

func runE2(quick bool) {
	txns := 300
	if quick {
		txns = 80
	}
	tb := metrics.Table{
		Title:   "E2 — read-write aborts attributable to read-only transactions",
		Headers: []string{"engine", "ro share", "rw commits", "rw conflicts", "caused by RO"},
	}
	for _, ne := range roster() {
		if ne.name == "mv2pl+ctl(chan)" || ne.name == "sv2pl" {
			continue // locking engines: readers delay, they do not abort writers
		}
		for _, roFrac := range []float64{0.25, 0.5, 0.75} {
			e := ne.make()
			wl := workload.Config{Keys: 24, ReadOnlyFraction: roFrac, ROReads: 4, RWReads: 1, RWWrites: 2, Seed: 7}
			boot(e, wl)
			res, err := harness.Run(harness.Config{
				Engine: e, Clients: 8, TxnsPerClient: txns, Workload: wl,
				OpDelay: 30 * time.Microsecond, RetryLimit: 2000,
			})
			if err != nil {
				panic(err)
			}
			tb.AddRow(ne.name, metrics.F(roFrac),
				fmt.Sprint(res.CommittedRW),
				fmt.Sprint(res.Stats["aborts.conflict"]),
				fmt.Sprint(res.Stats["rw.aborts.by_ro"]))
			dumpStats(fmt.Sprintf("e2 %s ro=%.2f", ne.name, roFrac), res.Stats)
			e.Close()
		}
	}
	fmt.Print(tb.String())
	fmt.Println("paper claim: the 'caused by RO' column is structurally 0 for vc+* engines\nand positive for Reed-style MVTO under read-only load (Section 2).")
}

// --- E3: RO blocking ---------------------------------------------------------

func runE3(quick bool) {
	txns := 300
	if quick {
		txns = 80
	}
	tb := metrics.Table{
		Title:   "E3 — read-only reads blocking behind writers (50% RO, write-heavy)",
		Headers: []string{"engine", "ro commits", "ro blocked", "ro aborted", "ro p99", "rw p99"},
	}
	for _, ne := range roster() {
		e := ne.make()
		wl := workload.Config{Keys: 24, ReadOnlyFraction: 0.5, ROReads: 4, RWReads: 1, RWWrites: 3, Seed: 11}
		boot(e, wl)
		res, err := harness.Run(harness.Config{
			Engine: e, Clients: 8, TxnsPerClient: txns, Workload: wl,
			OpDelay: 30 * time.Microsecond, RetryLimit: 2000,
		})
		if err != nil {
			panic(err)
		}
		blocked := res.Stats["ro.blocked"]
		tb.AddRow(ne.name, fmt.Sprint(res.CommittedRO), fmt.Sprint(blocked),
			fmt.Sprint(res.RORetries),
			metrics.Dur(res.ROLatency.P99), metrics.Dur(res.RWLatency.P99))
		dumpStats("e3 "+ne.name, res.Stats)
		e.Close()
	}
	fmt.Print(tb.String())
	fmt.Println("paper claim: vc+* read-only transactions never block and never abort\n(Sections 1, 4.2); mvto blocks them on pending writes, sv2pl blocks them on\nwrite locks and even aborts them as deadlock victims.")
}

// --- E4: snapshot start cost ------------------------------------------------

func runE4(quick bool) {
	windows := []int{0, 64, 256, 1024}
	if quick {
		windows = []int{0, 64, 256}
	}
	tb := metrics.Table{
		Title:   "E4 — read-only begin cost vs out-of-order commit window",
		Headers: []string{"window (txns behind a straggler)", "chan CTL entries copied per RO begin", "chan RO begin", "vc RO begin"},
	}
	for _, window := range windows {
		// Chan baseline: a straggler has passed its lock point (number
		// allocated) but not committed; `window` later transactions
		// commit above the hole, growing the out-of-order tail that
		// every read-only begin must copy.
		chanEng := baseline.NewMV2PLCTL(0, lock.Detect, 0, nil)
		release := chanEng.HoldNumber()
		for i := 0; i < window; i++ {
			tx, _ := chanEng.Begin(engine.ReadWrite)
			if err := tx.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				panic(err)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		}
		if got := chanEng.CTLTail(); got != window {
			panic(fmt.Sprintf("E4 setup: tail %d, want %d", got, window))
		}
		const probes = 2000
		before := chanEng.Stats()["ctl.copied"]
		t0 := time.Now()
		for i := 0; i < probes; i++ {
			ro, _ := chanEng.Begin(engine.ReadOnly)
			ro.Commit()
		}
		chanNs := float64(time.Since(t0).Nanoseconds()) / probes
		copied := float64(chanEng.Stats()["ctl.copied"]-before) / probes
		release()
		chanEng.Close()

		// VC engine, same shape: a registered-but-active straggler (T/O
		// registers at begin) with `window` commits queued behind it.
		// The read-only begin stays a single counter read.
		vcEng := core.New(core.Options{Protocol: core.TimestampOrdering})
		strag2, _ := vcEng.Begin(engine.ReadWrite)
		strag2.Put("straggler-key", []byte("x"))
		for i := 0; i < window; i++ {
			tx, _ := vcEng.Begin(engine.ReadWrite)
			tx.Put(fmt.Sprintf("k%d", i), []byte("v"))
			tx.Commit()
		}
		t0 = time.Now()
		for i := 0; i < probes; i++ {
			ro, _ := vcEng.Begin(engine.ReadOnly)
			ro.Commit()
		}
		vcNs := float64(time.Since(t0).Nanoseconds()) / probes
		strag2.Commit()
		vcEng.Close()

		tb.AddRow(fmt.Sprint(window), metrics.F(copied), metrics.Dur(int64(chanNs)), metrics.Dur(int64(vcNs)))
	}
	fmt.Print(tb.String())
	fmt.Println("paper claim: 'the maintenance and usage of the completed transaction list\nis cumbersome' (Section 2) — VCstart stays O(1).")
}

// --- E5: throughput sweep -----------------------------------------------------

func runE5(quick bool) {
	txns := 200
	if quick {
		txns = 100
	}
	tb := metrics.Table{
		Title:   "E5 — committed txns/sec by engine, read-only share and skew\n(cells show txn/s; a trailing !N marks N starved read-only txns)",
		Headers: []string{"engine", "ro=10% uni", "ro=50% uni", "ro=90% uni", "ro=50% zipf1.4"},
	}
	type cell struct {
		ro   float64
		zipf float64
	}
	cells := []cell{{0.1, 0}, {0.5, 0}, {0.9, 0}, {0.5, 1.4}}
	for _, ne := range roster() {
		row := []string{ne.name}
		for _, cl := range cells {
			e := ne.make()
			// Long read-only transactions (12 reads) expose the
			// reader/writer interference of the locking baseline.
			wl := workload.Config{Keys: 64, ReadOnlyFraction: cl.ro, ROReads: 12,
				RWReads: 2, RWWrites: 3, Zipf: cl.zipf, Seed: 13}
			boot(e, wl)
			res, err := harness.Run(harness.Config{
				Engine: e, Clients: 8, TxnsPerClient: txns, Workload: wl,
				OpDelay: 20 * time.Microsecond, RetryLimit: 200,
			})
			if err != nil {
				panic(err)
			}
			cell := metrics.F(res.Throughput())
			if res.ROAbandoned > 0 {
				cell += fmt.Sprintf(" !%d", res.ROAbandoned)
			}
			row = append(row, cell)
			dumpStats(fmt.Sprintf("e5 %s ro=%.0f%% zipf=%.1f", ne.name, cl.ro*100, cl.zipf), res.Stats)
			e.Close()
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
	fmt.Println("paper claim: multiversion engines pull ahead of sv2pl as the read-only\nshare and contention grow (Section 1).")
}

// --- E6: delayed visibility -----------------------------------------------------

func runE6(quick bool) {
	holds := []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond}
	if quick {
		holds = holds[:2]
	}
	tb := metrics.Table{
		Title:   "E6 — visibility lag under a long-running registered transaction (vc+to)",
		Headers: []string{"straggler hold", "mean lag (positions)", "max lag", "stale RO reads", "recency wait"},
	}
	for _, hold := range holds {
		e := core.New(core.Options{Protocol: core.TimestampOrdering})
		e.Bootstrap(map[string][]byte{"probe": []byte("v0")})

		staleReads := 0
		var recencyWait time.Duration
		var lagSum, lagMax, lagN uint64

		rounds := 40
		for r := 0; r < rounds; r++ {
			// The straggler registers (fixing its serial position), then
			// dawdles before committing.
			strag, _ := e.Begin(engine.ReadWrite)
			if err := strag.Put("strag", []byte("x")); err != nil {
				panic(err)
			}
			// Younger writers commit immediately behind it.
			for i := 0; i < 5; i++ {
				tx, _ := e.Begin(engine.ReadWrite)
				if err := tx.Put("probe", []byte(fmt.Sprintf("r%d-%d", r, i))); err != nil {
					panic(err)
				}
				if err := tx.Commit(); err != nil {
					panic(err)
				}
			}
			lag := e.VC().Lag()
			lagSum += lag
			lagN++
			if lag > lagMax {
				lagMax = lag
			}
			// A plain read-only txn started now misses the younger commits.
			ro, _ := e.Begin(engine.ReadOnly)
			if v, err := ro.Get("probe"); err == nil && string(v) != fmt.Sprintf("r%d-4", r) {
				staleReads++
			}
			ro.Commit()

			// Recency rectification: a reader that insists on seeing the
			// straggler waits for exactly as long as the straggler holds
			// its registration.
			done := make(chan struct{})
			t0 := time.Now()
			go func() {
				rro, _ := e.BeginReadOnlyRecent()
				recencyWait += time.Since(t0)
				rro.Commit()
				close(done)
			}()
			if hold > 0 {
				time.Sleep(hold)
			}
			if err := strag.Commit(); err != nil {
				panic(err)
			}
			<-done
		}
		tb.AddRow(fmt.Sprint(hold), metrics.F(float64(lagSum)/float64(lagN)), fmt.Sprint(lagMax),
			fmt.Sprintf("%d/%d", staleReads, rounds), metrics.Dur(recencyWait.Nanoseconds()/int64(rounds)))
		e.Close()
	}
	fmt.Print(tb.String())
	fmt.Println("paper Section 6: read-only transactions trade currency for zero\nsynchronization; the rectified begin waits out exactly the straggler hold.")
}

// --- E7: garbage collection -----------------------------------------------------

func runE7(quick bool) {
	updates := 5000
	if quick {
		updates = 1000
	}
	tb := metrics.Table{
		Title:   "E7 — version retention with and without garbage collection",
		Headers: []string{"configuration", "updates", "versions retained", "pruned", "old snapshot intact"},
	}

	run := func(name string, useGC bool, holdSnapshot bool) {
		e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
		e.Bootstrap(map[string][]byte{"hot": []byte("v0")})
		var collector *gc.Collector
		if useGC {
			collector = gc.New(e, time.Millisecond)
			collector.Start()
		}
		var snap engine.Tx
		if holdSnapshot {
			snap, _ = e.Begin(engine.ReadOnly)
		}
		for i := 0; i < updates; i++ {
			tx, _ := e.Begin(engine.ReadWrite)
			tx.Put("hot", []byte(fmt.Sprintf("v%d", i)))
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		}
		intact := "n/a"
		if holdSnapshot {
			if v, err := snap.Get("hot"); err == nil && string(v) == "v0" {
				intact = "yes"
			} else {
				intact = fmt.Sprintf("NO (%q)", v)
			}
			snap.Commit()
		}
		pruned := int64(0)
		if collector != nil {
			collector.Stop()
			collector.Collect()
			pruned = int64(collector.Pruned())
		}
		tb.AddRow(name, fmt.Sprint(updates), fmt.Sprint(e.Store().TotalVersions()), fmt.Sprint(pruned), intact)
		e.Close()
	}
	run("no GC", false, false)
	run("GC", true, false)
	run("GC + held snapshot", true, true)
	fmt.Print(tb.String())
	fmt.Println("paper Section 6: GC may discard everything strictly older than the newest\nversion at the watermark = min(vtnc, oldest active read-only start number).")
}

// --- E8: distributed -----------------------------------------------------------

func runE8(quick bool) {
	txnsPer := 200
	if quick {
		txnsPer = 60
	}
	tb := metrics.Table{
		Title:   "E8 — distributed version control (2PC writes, one-start-number reads)",
		Headers: []string{"sites", "latency", "txns/s", "msgs/txn", "ro waits", "ro fillers"},
	}
	for _, sites := range []int{1, 2, 4} {
		for _, lat := range []time.Duration{0, 200 * time.Microsecond} {
			if quick && lat > 0 && sites > 2 {
				continue
			}
			c, err := dist.New(dist.Options{Sites: sites, Latency: lat})
			if err != nil {
				panic(err)
			}
			wl := workload.Config{Keys: 48, ReadOnlyFraction: 0.5,
				ROReads: 3, RWReads: 1, RWWrites: 2, Seed: 17}
			c.Bootstrap(wl.Bootstrap())

			res, err := harness.Run(harness.Config{
				Engine: c, Clients: 6, TxnsPerClient: txnsPer, Workload: wl,
			})
			if err != nil {
				panic(err)
			}
			total := res.CommittedRO + res.CommittedRW
			msgs := float64(c.Stats()["bus.messages"]) / float64(total)
			tb.AddRow(fmt.Sprint(sites), fmt.Sprint(lat), metrics.F(res.Throughput()),
				metrics.F(msgs), fmt.Sprint(c.Stats()["ro.waits"]), fmt.Sprint(c.Stats()["ro.fillers"]))
			dumpStats(fmt.Sprintf("e8 sites=%d lat=%v", sites, lat), c.Stats())
			c.Close()
		}
	}
	fmt.Print(tb.String())
	fmt.Println("paper Section 6: read-only transactions carry one start number and no 2PC;\nonly read-write transactions pay the vote/commit message cost.")
}

// --- A3: adaptive concurrency control ---------------------------------------

func runA3(quick bool) {
	txns := 300
	if quick {
		txns = 100
	}
	tb := metrics.Table{
		Title:   "A3 — adaptive concurrency control (a Section 1 'enabled experiment')",
		Headers: []string{"engine", "calm-phase txn/s", "hot-phase txn/s", "retries (hot)", "switches"},
	}

	type phase struct {
		wl workload.Config
	}
	calm := workload.Config{Keys: 256, ReadOnlyFraction: 0.3, RWReads: 2, RWWrites: 2, Seed: 23}
	hot := workload.Config{Keys: 4, ReadOnlyFraction: 0.1, RWReads: 2, RWWrites: 2, Seed: 29}

	run := func(name string, e engine.Engine, switches func() uint64) {
		boot(e, calm)
		// Phase 1: large key space, low contention.
		resCalm, err := harness.Run(harness.Config{
			Engine: e, Clients: 6, TxnsPerClient: txns, Workload: calm,
			OpDelay: 10 * time.Microsecond, RetryLimit: 5000,
		})
		if err != nil {
			panic(err)
		}
		// Phase 2: four hot keys, heavy write contention.
		resHot, err := harness.Run(harness.Config{
			Engine: e, Clients: 6, TxnsPerClient: txns, Workload: hot,
			OpDelay: 10 * time.Microsecond, RetryLimit: 5000,
		})
		if err != nil {
			panic(err)
		}
		sw := "n/a"
		if switches != nil {
			sw = fmt.Sprint(switches())
		}
		tb.AddRow(name, metrics.F(resCalm.Throughput()), metrics.F(resHot.Throughput()),
			fmt.Sprint(resHot.Retries), sw)
		dumpStats("a3 "+name+" calm", resCalm.Stats)
		dumpStats("a3 "+name+" hot", resHot.Stats)
		e.Close()
	}

	occ := core.New(core.Options{Protocol: core.Optimistic})
	run("fixed vc+occ", occ, nil)
	tpl := core.New(core.Options{Protocol: core.TwoPhaseLocking})
	run("fixed vc+2pl", tpl, nil)
	ad := adaptive.New(adaptive.Options{Window: 32, HighWater: 0.25, LowWater: 0.05})
	run("adaptive", ad, ad.Switches)
	fmt.Print(tb.String())
	fmt.Println("the adaptive engine runs optimistically while conflicts are rare and flips\nto locking when they are not — with version control untouched either way.")
}
