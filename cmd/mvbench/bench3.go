package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/harness"
	"mvdb/internal/metrics"
	"mvdb/internal/wal"
	"mvdb/internal/workload"
)

// This file is the PR-3 benchmark regression harness: a fixed set of
// lock-manager and commit-path scenarios whose results are written as
// machine-readable JSON (schema "mvdb-bench/v1", documented in
// EXPERIMENTS.md) so successive PRs can be compared number-for-number.
// BENCH_3.json at the repository root is this harness's output for the
// striped-lock-manager + group-commit change, including the seed
// configuration (single-stripe lock table, fsync per commit) it replaces.

// jsonOut is set by the -json flag: the bench3 experiment writes its
// results there in addition to printing tables.
var jsonOut string

// minSpeedup is set by the -minspeedup flag: when positive, bench3
// exits nonzero if group commit fails to beat the seed configuration by
// this factor — the CI regression gate for the commit path.
var minSpeedup float64

// benchDoc is the top-level JSON document.
type benchDoc struct {
	Schema  string        `json:"schema"`
	Go      string        `json:"go"`
	CPUs    int           `json:"cpus"`
	Quick   bool          `json:"quick"`
	Results []benchResult `json:"results"`
}

// benchResult is one scenario's measurements.
type benchResult struct {
	Name    string             `json:"name"`
	Config  map[string]any     `json:"config"`
	Metrics map[string]float64 `json:"metrics"`
}

func runBench3(quick bool) {
	txns := 3000
	clients := 8
	if quick {
		txns = 400
	}
	doc := benchDoc{
		Schema: "mvdb-bench/v1",
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
	}

	// Scenario family 1: lock-manager throughput, no WAL. Update-only
	// 2PL so every transaction exercises the striped lock table; uniform
	// and hot keyspaces bracket the contention range.
	lockWL := func(zipf float64) workload.Config {
		return workload.Config{Keys: 512, ReadOnlyFraction: 0, RWReads: 2, RWWrites: 2, Zipf: zipf, Seed: 7}
	}
	for _, sc := range []struct {
		name    string
		zipf    float64
		stripes int
	}{
		{"lock/uniform", 0, 1},
		{"lock/uniform", 0, 0}, // 0 = default stripe count
		{"lock/hot", 1.6, 1},
		{"lock/hot", 1.6, 0},
	} {
		e := core.New(core.Options{Protocol: core.TwoPhaseLocking, LockStripes: sc.stripes})
		res := runOne(e, lockWL(sc.zipf), clients, txns)
		sn := e.Snapshot()
		e.Close()
		doc.Results = append(doc.Results, benchResult{
			Name: sc.name,
			Config: map[string]any{
				"protocol": "vc+2pl",
				"stripes":  sn.LockStripes,
				"zipf":     sc.zipf,
			},
			Metrics: map[string]float64{
				"txn_per_sec":       res.Throughput(),
				"commit_p50_ns":     float64(res.RWLatency.P50),
				"commit_p99_ns":     float64(res.RWLatency.P99),
				"stripe_collisions": float64(sn.LockStripeCollisions),
			},
		})
	}

	// Scenario family 2: durable commit path. The "seed" row is the
	// pre-PR configuration (single-stripe lock table, one fsync per
	// commit); the "group" row is this PR's (striped table, SyncBatch).
	// The acceptance bar is group >= 2x seed on the uniform-key update
	// workload.
	dir, err := os.MkdirTemp("", "mvbench-wal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	commitWL := workload.Config{Keys: 512, ReadOnlyFraction: 0, RWReads: 2, RWWrites: 2, Seed: 7}
	var seedTPS, groupTPS float64
	for _, sc := range []struct {
		name    string
		opts    wal.Options
		stripes int
	}{
		{"commit/2pl-uniform-seed", wal.Options{Policy: wal.SyncEveryCommit}, 1},
		// Adaptive gathering only (no BatchMaxDelay): the flusher
		// coalesces every runnable committer, so the batch tracks the
		// number of clients without a timer on the commit path.
		{"commit/2pl-uniform-group", wal.Options{Policy: wal.SyncBatch}, 0},
	} {
		w, err := wal.CreateWith(filepath.Join(dir, sc.name[len("commit/"):]+".wal"), sc.opts)
		if err != nil {
			panic(err)
		}
		e := core.New(core.Options{Protocol: core.TwoPhaseLocking, LockStripes: sc.stripes, WAL: w})
		res := runOne(e, commitWL, clients, txns)
		sn := e.Snapshot()
		e.Close()
		w.Close()
		m := map[string]float64{
			"txn_per_sec":      res.Throughput(),
			"commit_p50_ns":    float64(res.RWLatency.P50),
			"commit_p99_ns":    float64(res.RWLatency.P99),
			"fsync_per_commit": sn.WALFsyncPerAppend,
			"wal_batches":      float64(sn.WALBatches),
		}
		if sc.opts.Policy == wal.SyncBatch {
			groupTPS = res.Throughput()
			m["batch_p50_records"] = float64(sn.WALBatchSize.P50)
		} else {
			seedTPS = res.Throughput()
		}
		doc.Results = append(doc.Results, benchResult{
			Name: sc.name,
			Config: map[string]any{
				"protocol": "vc+2pl",
				"stripes":  sn.LockStripes,
				"policy":   map[wal.SyncPolicy]string{wal.SyncEveryCommit: "sync-every-commit", wal.SyncBatch: "sync-batch"}[sc.opts.Policy],
			},
			Metrics: m,
		})
	}

	tb := metrics.Table{
		Title:   "bench3 — striped locks + group commit vs the seed configuration",
		Headers: []string{"scenario", "stripes", "txn/s", "p50 commit", "p99 commit", "fsync/commit"},
	}
	for _, r := range doc.Results {
		fpc := "-"
		if v, ok := r.Metrics["fsync_per_commit"]; ok {
			fpc = fmt.Sprintf("%.3f", v)
		}
		tb.AddRow(r.Name,
			fmt.Sprint(r.Config["stripes"]),
			fmt.Sprintf("%.0f", r.Metrics["txn_per_sec"]),
			time.Duration(r.Metrics["commit_p50_ns"]).String(),
			time.Duration(r.Metrics["commit_p99_ns"]).String(),
			fpc)
	}
	fmt.Print(tb.String())
	if seedTPS > 0 {
		speedup := groupTPS / seedTPS
		fmt.Printf("\ngroup-commit speedup over seed: %.2fx\n", speedup)
		if minSpeedup > 0 && speedup < minSpeedup {
			fmt.Fprintf(os.Stderr, "FAIL: group-commit speedup %.2fx below the %.2fx bar\n", speedup, minSpeedup)
			os.Exit(1)
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}

func runOne(e interface {
	Bootstrap(map[string][]byte) error
}, wl workload.Config, clients, txns int) harness.Result {
	if err := e.Bootstrap(wl.Bootstrap()); err != nil {
		panic(err)
	}
	res, err := harness.Run(harness.Config{
		Engine:        e.(*core.Engine),
		Clients:       clients,
		TxnsPerClient: txns,
		Workload:      wl,
	})
	if err != nil {
		panic(err)
	}
	return res
}
