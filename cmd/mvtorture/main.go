// Command mvtorture runs the crash-fault-injection torture loop from
// internal/crashtest against the real engine: rounds of recover → audit
// → concurrent commits under a fault-injecting filesystem → power cut,
// with the dual oracle (acknowledged-commit durability AND recovered-
// state correctness) checked at every recovery.
//
// Usage:
//
//	mvtorture [-seed N] [-duration 60s | -rounds N] [-clients N]
//	          [-protocol 2pl|to|occ|all] [-group auto|on|off]
//	          [-vc strict|epoch|all] [-dir D] [-hotspots] [-v]
//
// The default runs the full engine matrix (three protocols, group
// commit on and off, both visibility modes) and splits the time budget
// evenly. Exit status is
// 0 only if every configuration completes with zero oracle violations;
// any violation prints the offending round and config and exits 1. On a
// violation a flight-recorder postmortem bundle is written next to the
// surviving state (render it with mvinspect -bundle).
//
// With -json the machine-readable verdict (one document for the whole
// run, including per-configuration bundle paths) is written to the
// given file, for CI to collect as an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/crashtest"
	"mvdb/internal/hotspot"
	"mvdb/internal/vc"
)

// verdict is the -json output document.
type verdict struct {
	Schema  string         `json:"schema"`
	Seed    int64          `json:"seed"`
	Elapsed time.Duration  `json:"elapsed_ns"`
	Passed  bool           `json:"passed"`
	Configs []configResult `json:"configs"`
}

type configResult struct {
	Config string `json:"config"`
	Seed   int64  `json:"seed"`
	Pass   bool   `json:"pass"`
	Error  string `json:"error,omitempty"`
	Dir    string `json:"dir,omitempty"`
	Bundle string `json:"bundle,omitempty"`

	Rounds      int `json:"rounds"`
	Crashes     int `json:"crashes"`
	CleanRounds int `json:"clean_rounds"`
	Acked       int `json:"acked"`
	Attempts    int `json:"attempts"`
	// Traces is how many causal traces were promoted (tail-retained)
	// across the configuration's run; on failure the postmortem bundle
	// embeds them.
	Traces int `json:"traces,omitempty"`
	// HotKeys ranks the configuration's hottest keys across all crash
	// rounds (present only with -hotspots).
	HotKeys []hotspot.HotKey `json:"hot_keys,omitempty"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; each configuration derives its own from it")
		duration = flag.Duration("duration", 60*time.Second, "total wall-clock budget, split across configurations (ignored if -rounds > 0)")
		rounds   = flag.Int("rounds", 0, "crash rounds per configuration instead of a time budget")
		clients  = flag.Int("clients", 4, "concurrent committers per round")
		protocol = flag.String("protocol", "all", "2pl, to, occ, or all")
		group    = flag.String("group", "auto", "group commit: on, off, or auto (both)")
		vcFlag   = flag.String("vc", "all", "visibility mode: strict, epoch, or all (both)")
		dir      = flag.String("dir", "", "working directory (default: a fresh temp dir, removed on success)")
		sample   = flag.Float64("trace", 0.05, "per-transaction causal-trace sampling rate (0 disables; promoted traces ride the postmortem bundle and the -json verdict)")
		hotspots = flag.Bool("hotspots", false, "profile hot keys across crash rounds; the -json verdict carries each configuration's top keys")
		jsonOut  = flag.String("json", "", "write the machine-readable verdict to this file")
		verbose  = flag.Bool("v", false, "log every round")
	)
	flag.Parse()

	var configs []crashtest.Config
	for _, c := range crashtest.Configs() {
		if !protocolMatch(*protocol, c.Protocol) {
			continue
		}
		if *group == "on" && !c.Group || *group == "off" && c.Group {
			continue
		}
		if !visibilityMatch(*vcFlag, c.Visibility) {
			continue
		}
		configs = append(configs, c)
	}
	if len(configs) == 0 {
		fmt.Fprintf(os.Stderr, "no configuration matches -protocol %q -group %q -vc %q\n", *protocol, *group, *vcFlag)
		os.Exit(2)
	}

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "mvtorture")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(base)
	}

	perConfig := crashtest.TortureOptions{
		Rounds:      *rounds,
		Clients:     *clients,
		TraceSample: *sample,
		Hotspots:    *hotspots,
	}
	if *rounds <= 0 {
		perConfig.Duration = *duration / time.Duration(len(configs))
	}

	start := time.Now()
	failed := false
	v := verdict{Schema: "mvtorture-verdict/v1", Seed: *seed}
	for i, cfg := range configs {
		opts := perConfig
		opts.Seed = *seed + int64(i)*1000003
		opts.Config = cfg
		if *verbose {
			opts.Log = func(format string, args ...any) {
				fmt.Printf("  [%s] %s\n", cfg, fmt.Sprintf(format, args...))
			}
		}
		d := filepath.Join(base, fmt.Sprintf("cfg%d", i))
		if err := os.MkdirAll(d, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.FlightDir = d
		rep, err := crashtest.Torture(d, opts)
		res := configResult{
			Config: cfg.String(), Seed: opts.Seed, Pass: err == nil, Dir: d, Bundle: rep.Bundle,
			Rounds: rep.Rounds, Crashes: rep.Crashes, CleanRounds: rep.CleanRounds,
			Acked: rep.Acked, Attempts: rep.Attempts, Traces: rep.Traces,
			HotKeys: rep.HotKeys,
		}
		if err != nil {
			res.Error = err.Error()
			fmt.Fprintf(os.Stderr, "FAIL %s (seed %d): %v\n  after %d rounds (%d crashes), %d/%d commits acked; state kept in %s\n",
				cfg, opts.Seed, err, rep.Rounds, rep.Crashes, rep.Acked, rep.Attempts, d)
			if rep.Bundle != "" {
				fmt.Fprintf(os.Stderr, "  postmortem: mvinspect -bundle %s\n", rep.Bundle)
			}
			failed = true
		} else {
			fmt.Printf("PASS %s (seed %d): %d rounds, %d crashes, %d clean; %d/%d commits acked, zero violations\n",
				cfg, opts.Seed, rep.Rounds, rep.Crashes, rep.CleanRounds, rep.Acked, rep.Attempts)
		}
		v.Configs = append(v.Configs, res)
	}
	v.Elapsed = time.Since(start)
	v.Passed = !failed
	fmt.Printf("total: %d configurations in %v\n", len(v.Configs), v.Elapsed.Round(time.Millisecond))
	if *jsonOut != "" {
		data, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing -json verdict: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func visibilityMatch(sel string, m vc.Mode) bool {
	switch sel {
	case "all", "":
		return true
	}
	want, err := vc.ParseMode(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return m == want
}

func protocolMatch(sel string, p core.Protocol) bool {
	switch sel {
	case "all", "":
		return true
	case "2pl":
		return p == core.TwoPhaseLocking
	case "to":
		return p == core.TimestampOrdering
	case "occ":
		return p == core.Optimistic
	}
	return false
}
