// Command mvtorture runs the crash-fault-injection torture loop from
// internal/crashtest against the real engine: rounds of recover → audit
// → concurrent commits under a fault-injecting filesystem → power cut,
// with the dual oracle (acknowledged-commit durability AND recovered-
// state correctness) checked at every recovery.
//
// Usage:
//
//	mvtorture [-seed N] [-duration 60s | -rounds N] [-clients N]
//	          [-protocol 2pl|to|occ|all] [-group auto|on|off] [-dir D] [-v]
//
// The default runs the full engine matrix (three protocols, group
// commit on and off) and splits the time budget evenly. Exit status is
// 0 only if every configuration completes with zero oracle violations;
// any violation prints the offending round and config and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/crashtest"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; each configuration derives its own from it")
		duration = flag.Duration("duration", 60*time.Second, "total wall-clock budget, split across configurations (ignored if -rounds > 0)")
		rounds   = flag.Int("rounds", 0, "crash rounds per configuration instead of a time budget")
		clients  = flag.Int("clients", 4, "concurrent committers per round")
		protocol = flag.String("protocol", "all", "2pl, to, occ, or all")
		group    = flag.String("group", "auto", "group commit: on, off, or auto (both)")
		dir      = flag.String("dir", "", "working directory (default: a fresh temp dir, removed on success)")
		verbose  = flag.Bool("v", false, "log every round")
	)
	flag.Parse()

	var configs []crashtest.Config
	for _, c := range crashtest.Configs() {
		if !protocolMatch(*protocol, c.Protocol) {
			continue
		}
		if *group == "on" && !c.Group || *group == "off" && c.Group {
			continue
		}
		configs = append(configs, c)
	}
	if len(configs) == 0 {
		fmt.Fprintf(os.Stderr, "no configuration matches -protocol %q -group %q\n", *protocol, *group)
		os.Exit(2)
	}

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "mvtorture")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(base)
	}

	perConfig := crashtest.TortureOptions{
		Rounds:  *rounds,
		Clients: *clients,
	}
	if *rounds <= 0 {
		perConfig.Duration = *duration / time.Duration(len(configs))
	}

	start := time.Now()
	failed := false
	for i, cfg := range configs {
		opts := perConfig
		opts.Seed = *seed + int64(i)*1000003
		opts.Config = cfg
		if *verbose {
			opts.Log = func(format string, args ...any) {
				fmt.Printf("  [%s] %s\n", cfg, fmt.Sprintf(format, args...))
			}
		}
		d := filepath.Join(base, fmt.Sprintf("cfg%d", i))
		if err := os.MkdirAll(d, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := crashtest.Torture(d, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s (seed %d): %v\n  after %d rounds (%d crashes), %d/%d commits acked; state kept in %s\n",
				cfg, opts.Seed, err, rep.Rounds, rep.Crashes, rep.Acked, rep.Attempts, d)
			failed = true
			continue
		}
		fmt.Printf("PASS %s (seed %d): %d rounds, %d crashes, %d clean; %d/%d commits acked, zero violations\n",
			cfg, opts.Seed, rep.Rounds, rep.Crashes, rep.CleanRounds, rep.Acked, rep.Attempts)
	}
	fmt.Printf("total: %d configurations in %v\n", len(configs), time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}

func protocolMatch(sel string, p core.Protocol) bool {
	switch sel {
	case "all", "":
		return true
	case "2pl":
		return p == core.TwoPhaseLocking
	case "to":
		return p == core.TimestampOrdering
	case "occ":
		return p == core.Optimistic
	}
	return false
}
