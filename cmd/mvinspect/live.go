package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"mvdb/internal/audit"
	"mvdb/internal/metrics"
	"mvdb/internal/obs"
)

// retryMax bounds the reconnect loop: after this many consecutive
// failures the watcher concludes the process is gone, not restarting.
const retryMax = 8

// retry calls fetch until it succeeds, sleeping with capped exponential
// backoff between failures (500ms, 1s, 2s, ... capped at maxWait). A
// live dashboard should ride out a restarting or briefly unreachable
// process, not die on the first connection refused; only retryMax
// consecutive failures return the last error.
func retry[T any](what string, maxWait time.Duration, fetch func() (T, error)) (T, error) {
	wait := 500 * time.Millisecond
	for tries := 1; ; tries++ {
		v, err := fetch()
		if err == nil {
			return v, nil
		}
		if tries >= retryMax {
			return v, err
		}
		fmt.Fprintf(os.Stderr, "mvinspect: %s: %v (retry %d/%d in %s)\n", what, err, tries, retryMax, wait)
		time.Sleep(wait)
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}

// runLive polls a running database's /debug/mvdb endpoint (see
// mvdb.Options.DebugAddr) and renders each snapshot as a table, with
// per-interval deltas for the counters that move. count == 0 polls until
// the process is interrupted. Fetch failures reconnect with capped
// backoff rather than exiting.
func runLive(addr string, interval time.Duration, count int) {
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/debug/mvdb"
	client := &http.Client{Timeout: 10 * time.Second}
	var prev *obs.Payload
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := retry(url, 15*time.Second, func() (*obs.Payload, error) {
			return fetchPayload(client, url)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvinspect: giving up: %v\n", err)
			os.Exit(1)
		}
		// The audit endpoint exists only when the database runs with
		// Options.Audit; a 404 just omits the section.
		aud, _ := fetchAudit(client, "http://"+addr+"/debug/mvdb/audit")
		tb := liveTable(addr, cur, prev, interval)
		addAuditRows(&tb, aud)
		fmt.Print(tb.String())
		prev = cur
	}
}

func fetchAudit(client *http.Client, url string) (*audit.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var sn audit.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &sn, nil
}

// addAuditRows appends the online auditor's section: per-class span
// latency quantiles, alarm totals and the most recent alarm.
func addAuditRows(tb *metrics.Table, sn *audit.Snapshot) {
	if sn == nil {
		return
	}
	tb.AddRow("audit window / nodes / edges",
		fmt.Sprintf("%d / %d / %d", sn.Window, sn.GraphNodes, sn.GraphEdges), "")
	tb.AddRow("audit events (recv/drop)",
		fmt.Sprintf("%d / %d", sn.Received, sn.Dropped), "")
	for _, class := range []string{"read-only", "read-write"} {
		l, ok := sn.Latency[class]
		if !ok {
			continue
		}
		tb.AddRow(fmt.Sprintf("audit %s p50/p95/p99", class),
			fmt.Sprintf("%s / %s / %s",
				metrics.Dur(l.P50NS), metrics.Dur(l.P95NS), metrics.Dur(l.P99NS)), "")
	}
	tb.AddRow("audit alarms", fmt.Sprint(sn.AlarmsTotal), "")
	if n := len(sn.Alarms); n > 0 {
		last := sn.Alarms[n-1]
		tb.AddRow("last alarm", fmt.Sprintf("[%s] %s", last.Kind, last.Message), "")
	}
}

func fetchPayload(client *http.Client, url string) (*obs.Payload, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var p obs.Payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &p, nil
}

// liveTable renders one snapshot. When prev is non-nil, counter rows get
// a third column with the per-second rate over the poll interval.
func liveTable(addr string, cur, prev *obs.Payload, interval time.Duration) metrics.Table {
	tb := metrics.Table{
		Title:   fmt.Sprintf("%s — %s", addr, time.Now().Format("15:04:05")),
		Headers: []string{"metric", "value", "delta/s"},
	}
	s := cur.Stats
	var p obs.Snapshot
	if prev != nil {
		p = prev.Stats
	}
	rate := func(cur, prev int64) string {
		if interval <= 0 {
			return ""
		}
		d := float64(cur-prev) / interval.Seconds()
		if d == 0 {
			return ""
		}
		return fmt.Sprintf("%+.0f", d)
	}
	counter := func(name string, c, pv int64) {
		delta := ""
		if prev != nil {
			delta = rate(c, pv)
		}
		tb.AddRow(name, fmt.Sprint(c), delta)
	}
	gauge := func(name string, v any) { tb.AddRow(name, fmt.Sprint(v), "") }

	gauge("protocol", s.Protocol)
	counter("commits ro", s.CommitsRO, p.CommitsRO)
	counter("commits rw", s.CommitsRW, p.CommitsRW)
	counter("begins ro", s.BeginsRO, p.BeginsRO)
	counter("begins rw", s.BeginsRW, p.BeginsRW)
	counter("retries", s.Retries, p.Retries)
	counter("aborts (all causes)", s.AbortsTotal(), p.AbortsTotal())
	counter("  conflict", s.AbortsConflict, p.AbortsConflict)
	counter("  deadlock", s.AbortsDeadlock, p.AbortsDeadlock)
	counter("  wounded", s.AbortsWounded, p.AbortsWounded)
	counter("  timeout", s.AbortsTimeout, p.AbortsTimeout)
	counter("  user", s.AbortsUser, p.AbortsUser)
	counter("lock waits", s.LockWaits, p.LockWaits)
	if s.LockWait.Count > 0 {
		gauge("lock wait p99", metrics.Dur(s.LockWait.P99))
	}
	counter("wal appends", s.WALAppends, p.WALAppends)
	counter("wal bytes", s.WALBytes, p.WALBytes)
	counter("gc passes", s.GCPasses, p.GCPasses)
	counter("gc reclaimed", s.GCReclaimed, p.GCReclaimed)
	gauge("tnc / vtnc", fmt.Sprintf("%d / %d", s.TNC, s.VTNC))
	if s.VisibilityMode != "" {
		gauge("visibility mode", s.VisibilityMode)
	}
	gauge("visibility lag", s.VisibilityLag)
	gauge("vc queue", s.VCQueueLen)
	gauge("keys / versions", fmt.Sprintf("%d / %d", s.Keys, s.Versions))
	gauge("version chain max/mean", fmt.Sprintf("%d / %.2f", s.MaxVersionChain, s.MeanVersionChain))
	for k, v := range s.Extra {
		gauge(k, v)
	}
	if n := len(cur.Trace); n > 0 {
		last := cur.Trace[n-1]
		gauge("trace events retained", n)
		gauge("last event", fmt.Sprintf("seq=%d tx=%d %s", last.Seq, last.Tx, last.Type))
	}
	return tb
}
