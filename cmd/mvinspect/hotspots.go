package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"mvdb/internal/hotspot"
	"mvdb/internal/metrics"
)

// runHotspots polls a running database's /debug/mvdb/hotspot endpoint
// (enabled by mvdb.Options.Hotspot with DebugAddr) and renders each
// report: ranked hot keys by operation, conflict pairs, the per-stripe
// contention heatmap, and the epoch-lane occupancy when the engine runs
// epoch visibility. count == 0 polls until interrupted; fetch failures
// reconnect with the same capped backoff as -live.
func runHotspots(addr string, interval time.Duration, count int) {
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/debug/mvdb/hotspot"
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		rep, err := retry(url, 15*time.Second, func() (*hotspot.Report, error) {
			return fetchHotspot(client, url)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvinspect: giving up: %v\n", err)
			os.Exit(1)
		}
		tb := hotspotTable(addr, rep)
		fmt.Print(tb.String())
	}
}

func fetchHotspot(client *http.Client, url string) (*hotspot.Report, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s (is the database running with Hotspot enabled?)", url, resp.Status)
	}
	var rep hotspot.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &rep, nil
}

func hotspotTable(addr string, r *hotspot.Report) metrics.Table {
	tb := metrics.Table{
		Title:   fmt.Sprintf("%s hotspots — %s", addr, time.Now().Format("15:04:05")),
		Headers: []string{"metric", "value"},
	}
	tb.AddRow("touches (total/sampled/shed)",
		fmt.Sprintf("%d / %d / %d (1 in %d)", r.Touches, r.Sampled, r.Shed, r.SampleEvery))
	addKeys := func(label string, keys []hotspot.HotKey) {
		for i, k := range keys {
			// Count-Err is the sketch's guaranteed lower bound on the
			// key's true touch count.
			tb.AddRow(fmt.Sprintf("%s #%d", label, i+1),
				fmt.Sprintf("%q >=%d (est %d)", k.Key, k.Count-k.Err, k.Count))
		}
	}
	addKeys("write", r.HotWrites)
	addKeys("read", r.HotReads)
	for _, c := range r.Conflicts {
		tb.AddRow("conflict "+c.Cause, fmt.Sprintf("%q x%d", c.Key, c.Count))
	}
	if r.TotalStripes > 0 {
		tb.AddRow("lock stripes", fmt.Sprint(r.TotalStripes))
	}
	for _, s := range r.Stripes {
		tb.AddRow(fmt.Sprintf("stripe %d", s.Stripe),
			fmt.Sprintf("waits=%d wait=%s wounds=%d hold=%s",
				s.Waits, metrics.Dur(s.WaitNanos), s.Wounds, metrics.Dur(s.HoldNanos)))
	}
	if r.ChainDepth.Count > 0 {
		tb.AddRow("version chain depth p50/p99/max",
			fmt.Sprintf("%d / %d / %d", r.ChainDepth.P50, r.ChainDepth.P99, r.ChainDepth.Max))
	}
	if r.SnapshotAge.Count > 0 {
		tb.AddRow("snapshot age p50/p99/max (txns)",
			fmt.Sprintf("%d / %d / %d", r.SnapshotAge.P50, r.SnapshotAge.P99, r.SnapshotAge.Max))
	}
	if len(r.Lanes) > 0 {
		tb.AddRow("epoch / watermark", fmt.Sprintf("%d / %d", r.Epoch, r.Watermark))
		for i, f := range r.Lanes {
			mark := ""
			if i == r.StallLane {
				mark = "  <- stall lane (lowest frontier)"
			}
			tb.AddRow(fmt.Sprintf("lane %d frontier", i), fmt.Sprintf("%d%s", f, mark))
		}
	}
	return tb
}
