// Command mvinspect is the DBA's view of a database, offline or live.
//
// Offline, it decodes a commit log (or checkpoint snapshot, which shares
// the format), validating CRCs, summarizing the transaction-number range
// and write volume, flagging the torn tail if any, and optionally
// dumping every record.
//
// Live, with -live it polls a running database's /debug/mvdb endpoint
// (enabled by mvdb.Options.DebugAddr) and renders each stats snapshot —
// commits and aborts by cause, lock/WAL/GC substrate counters, the
// paper's visibility gauges — with per-second deltas between polls.
//
// With -bundle it renders a flight-recorder postmortem bundle (written
// by mvdb.Options.FlightDir on an audit alarm, /debug/mvdb/dump, or a
// torture-test violation): phase-attribution table, headline counters,
// last alarms, the waits-for graph, and the trace tail.
//
// With -trace it fetches a running database's /debug/mvdb/traces
// endpoint (enabled by mvdb.Options.TraceSample) and renders each
// promoted causal trace as an ASCII waterfall: one bar per protocol
// phase, annotated with the blame edges — which transaction held the
// lock, which group-commit batch it fsynced behind, whom it queued
// behind in the visibility drain.
//
// With -hotspots it polls a running database's /debug/mvdb/hotspot
// endpoint (enabled by mvdb.Options.Hotspot) and renders the contention
// cartography: ranked hot keys by read/write, conflict pairs by abort
// cause, the per-stripe lock heatmap, chain-depth and snapshot-age
// distributions, and epoch-lane occupancy with the stall lane marked.
//
// With -health it polls a running database's /debug/mvdb/health
// endpoint (enabled by mvdb.Options.Health) and renders the windowed
// health timeline as sparkline rows per metric and resolution level,
// plus the SLO burn-rate states. -metric restricts the view to one
// metric, -level to one resolution. Both -live and -health ride out a
// restarting process with capped-backoff reconnection.
//
// Usage:
//
//	mvinspect [-v] [-key <filter>] <commit.log | commit.log.snap>
//	mvinspect -live <host:port> [-interval 1s] [-count N]
//	mvinspect -health <host:port> [-interval 1s] [-count N] [-metric m] [-level L]
//	mvinspect -bundle <flight-000001-reason.json>
//	mvinspect -trace <host:port>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvdb/internal/flight"
	"mvdb/internal/metrics"
	"mvdb/internal/wal"
)

func main() {
	var (
		verbose  = flag.Bool("v", false, "dump every record")
		keyFilt  = flag.String("key", "", "only show records touching keys containing this substring")
		live     = flag.String("live", "", "poll a running database's debug endpoint (host:port) instead of reading a log")
		interval = flag.Duration("interval", time.Second, "poll interval with -live")
		count    = flag.Int("count", 0, "number of polls with -live (0 = until interrupted)")
		bundle   = flag.String("bundle", "", "render a flight-recorder postmortem bundle instead of reading a log")
		traces   = flag.String("trace", "", "fetch /debug/mvdb/traces from a running database (host:port) and render causal waterfalls")
		healthAt = flag.String("health", "", "poll a running database's health timeline (host:port) as sparkline dashboards")
		metric   = flag.String("metric", "", "restrict -health to one metric")
		level    = flag.Int("level", -1, "restrict -health to one resolution level")
		hotspots = flag.String("hotspots", "", "poll a running database's hotspot profile (host:port): hot keys, conflict pairs, stripe heatmap")
	)
	flag.Parse()
	if *live != "" {
		runLive(*live, *interval, *count)
		return
	}
	if *hotspots != "" {
		runHotspots(*hotspots, *interval, *count)
		return
	}
	if *healthAt != "" {
		runHealth(*healthAt, *interval, *count, *metric, *level)
		return
	}
	if *traces != "" {
		if err := runTraces(*traces); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *bundle != "" {
		b, err := flight.Load(*bundle)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		flight.Render(b, os.Stdout)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvinspect [-v] [-key substr] <logfile>\n       mvinspect -live <host:port> [-interval 1s] [-count N]\n       mvinspect -bundle <flight bundle.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	fi, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var (
		records, writes, tombstones int
		bytes                       int
		minTN, maxTN                uint64
		firstRec                    = true
		keys                        = map[string]int{}
	)
	validLen, err := wal.Replay(path, func(r wal.Record) error {
		records++
		if firstRec || r.TN < minTN {
			minTN = r.TN
		}
		if r.TN > maxTN {
			maxTN = r.TN
		}
		firstRec = false
		show := *verbose
		var sb strings.Builder
		for _, w := range r.Writes {
			writes++
			bytes += len(w.Value)
			keys[w.Key]++
			if w.Tombstone {
				tombstones++
			}
			if *keyFilt != "" && strings.Contains(w.Key, *keyFilt) {
				show = true
			}
			if *verbose || (*keyFilt != "" && strings.Contains(w.Key, *keyFilt)) {
				if w.Tombstone {
					fmt.Fprintf(&sb, "    DEL %s\n", w.Key)
				} else {
					fmt.Fprintf(&sb, "    PUT %s = %d bytes\n", w.Key, len(w.Value))
				}
			}
		}
		if show && (*keyFilt == "" || sb.Len() > 0) {
			fmt.Printf("  tn=%d  writes=%d\n%s", r.TN, len(r.Writes), sb.String())
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tb := metrics.Table{Title: path, Headers: []string{"field", "value"}}
	tb.AddRow("file size", fmt.Sprintf("%d bytes", fi.Size()))
	tb.AddRow("intact records", fmt.Sprint(records))
	tb.AddRow("transaction numbers", fmt.Sprintf("%d .. %d", minTN, maxTN))
	tb.AddRow("writes / tombstones", fmt.Sprintf("%d / %d", writes, tombstones))
	tb.AddRow("distinct keys", fmt.Sprint(len(keys)))
	tb.AddRow("payload bytes", fmt.Sprint(bytes))
	if validLen < fi.Size() {
		tb.AddRow("TORN TAIL", fmt.Sprintf("%d trailing bytes are not a valid record", fi.Size()-validLen))
	} else {
		tb.AddRow("tail", "clean")
	}
	fmt.Print(tb.String())
	if validLen < fi.Size() {
		os.Exit(3) // distinct status so scripts can detect torn logs
	}
}
