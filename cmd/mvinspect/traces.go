package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"mvdb/internal/trace"
)

// runTraces fetches the causal-trace dump from a running database's
// debug endpoint and renders every promoted trace (and, when nothing
// has been promoted yet, the recent ring) as ASCII waterfalls.
func runTraces(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/mvdb/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/mvdb/traces: %s", resp.Status)
	}
	var d trace.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return fmt.Errorf("decoding trace dump: %w", err)
	}

	fmt.Printf("traces: started=%d sampled=%d finished=%d promoted=%d dropped recent=%d promoted=%d spans=%d\n",
		d.Stats.Started, d.Stats.Sampled, d.Stats.Finished, d.Stats.Promoted,
		d.Stats.DroppedRecent, d.Stats.DroppedPromoted, d.Stats.DroppedSpans)

	set, label := d.Promoted, "promoted"
	if len(set) == 0 {
		set, label = d.Recent, "recent (nothing promoted yet)"
	}
	if len(set) == 0 {
		fmt.Println("no traces retained yet")
		return nil
	}
	fmt.Printf("\n== %s (%d) ==\n", label, len(set))
	for i := range set {
		trace.Waterfall(os.Stdout, set[i])
	}
	return nil
}
