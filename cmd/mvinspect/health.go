package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// runHealth polls a running database's /debug/mvdb/health endpoint
// (enabled by mvdb.Options.Health + DebugAddr) and renders the server's
// sparkline dashboard: one row per metric per resolution level plus the
// SLO burn-rate states. metric restricts the view to one metric;
// level to one resolution. Fetch failures reconnect with the same
// capped backoff as -live.
func runHealth(addr string, interval time.Duration, count int, metric string, level int) {
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/debug/mvdb/health?format=sparkline"
	if metric != "" {
		url += "&metric=" + metric
	}
	if level >= 0 {
		url += fmt.Sprintf("&level=%d", level)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		body, err := retry(url, 15*time.Second, func() (string, error) {
			return fetchText(client, url)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvinspect: giving up: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s — %s\n%s", addr, time.Now().Format("15:04:05"), body)
	}
}

func fetchText(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	return string(data), nil
}
