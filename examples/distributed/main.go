// Distributed: a multi-site bank. Accounts are partitioned across sites;
// transfers frequently cross sites (two-phase commit with max-vote
// transaction numbers); global read-only audits take ONE start number at
// a home site and read everywhere — no a-priori site list, no locks, no
// votes — and must always balance (paper Section 6).
//
// Usage:
//
//	distributed [-sites 3] [-accounts 60] [-workers 6] [-transfers 500] [-latency 0]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/cluster"
)

const initialBalance = 1000

func acct(i int) string { return fmt.Sprintf("acct/%04d", i) }

func bal(v []byte) int64 { return int64(binary.LittleEndian.Uint64(v)) }

func enc(n int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	return b[:]
}

func main() {
	var (
		sites     = flag.Int("sites", 3, "number of sites")
		accounts  = flag.Int("accounts", 60, "number of accounts")
		workers   = flag.Int("workers", 6, "transfer workers")
		transfers = flag.Int("transfers", 500, "transfers per worker")
		latency   = flag.Duration("latency", 0, "simulated one-way message latency")
	)
	flag.Parse()

	c, err := cluster.Open(cluster.Options{Sites: *sites, Latency: *latency})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	boot := make(map[string][]byte, *accounts)
	perSite := make([]int, *sites)
	for i := 0; i < *accounts; i++ {
		boot[acct(i)] = enc(initialBalance)
		perSite[c.SiteOf(acct(i))]++
	}
	if err := c.Bootstrap(boot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accounts per site: %v\n", perSite)
	want := int64(*accounts) * initialBalance

	var committed, crossSite atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < *transfers; i++ {
				from, to := rng.Intn(*accounts), rng.Intn(*accounts)
				if from == to {
					continue
				}
				amount := int64(1 + rng.Intn(5))
				err := c.Update(func(tx *cluster.Tx) error {
					fv, err := tx.Get(acct(from))
					if err != nil {
						return err
					}
					if bal(fv) < amount {
						return nil
					}
					tv, err := tx.Get(acct(to))
					if err != nil {
						return err
					}
					if err := tx.Put(acct(from), enc(bal(fv)-amount)); err != nil {
						return err
					}
					return tx.Put(acct(to), enc(bal(tv)+amount))
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
				committed.Add(1)
				if c.SiteOf(acct(from)) != c.SiteOf(acct(to)) {
					crossSite.Add(1)
				}
			}
		}(w)
	}

	// Concurrent global audits, anchored at rotating home sites.
	stop := make(chan struct{})
	var auditWG sync.WaitGroup
	var audits atomic.Int64
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		home := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := c.BeginReadOnlyAtHome(home % *sites)
			home++
			if err != nil {
				log.Fatal(err)
			}
			var total int64
			tx.Scan("acct/", func(_ string, v []byte) bool {
				total += bal(v)
				return true
			})
			tx.Commit()
			if total != want {
				log.Fatalf("GLOBAL AUDIT VIOLATION: %d != %d", total, want)
			}
			audits.Add(1)
		}
	}()

	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	auditWG.Wait()

	var final int64
	c.View(func(tx *cluster.Tx) error {
		return tx.Scan("acct/", func(_ string, v []byte) bool {
			final += bal(v)
			return true
		})
	})

	st := c.Stats()
	fmt.Printf("transfers committed %d (%d cross-site) in %v (%.0f tx/s)\n",
		committed.Load(), crossSite.Load(), elapsed.Round(time.Millisecond),
		float64(committed.Load())/elapsed.Seconds())
	fmt.Printf("global audits       %d, all balanced; final total %d (expected %d)\n",
		audits.Load(), final, want)
	fmt.Printf("bus messages        %d; read-only visibility waits %d (fillers %d)\n",
		st["bus.messages"], st["ro.waits"], st["ro.fillers"])
	if final != want {
		log.Fatal("CONSERVATION VIOLATED")
	}
}
