// Bank: the classic concurrent-transfer workload. Read-write transactions
// move money between accounts under the selected concurrency control
// while read-only auditors continuously verify that the total balance is
// conserved — each audit is a consistent snapshot (paper Figure 2), so it
// holds even while transfers are mid-flight, and the auditors never slow
// the transfers down.
//
// Usage:
//
//	bank [-protocol 2pl|to|occ] [-accounts 64] [-workers 8] [-transfers 2000]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mvdb"
)

const initialBalance = 1000

func protocolFlag(name string) mvdb.Protocol {
	switch name {
	case "to":
		return mvdb.TimestampOrdering
	case "occ":
		return mvdb.Optimistic
	case "2pl":
		return mvdb.TwoPhaseLocking
	default:
		log.Fatalf("unknown protocol %q (want 2pl, to or occ)", name)
		return 0
	}
}

func acct(i int) string { return fmt.Sprintf("acct/%04d", i) }

func balance(v []byte) int64 { return int64(binary.LittleEndian.Uint64(v)) }

func encode(n int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	return b[:]
}

func main() {
	var (
		protoName = flag.String("protocol", "2pl", "concurrency control: 2pl, to, occ")
		accounts  = flag.Int("accounts", 64, "number of accounts")
		workers   = flag.Int("workers", 8, "concurrent transfer workers")
		transfers = flag.Int("transfers", 2000, "transfers per worker")
	)
	flag.Parse()

	db, err := mvdb.Open(mvdb.Options{Protocol: protocolFlag(*protoName)})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	boot := make(map[string][]byte, *accounts)
	for i := 0; i < *accounts; i++ {
		boot[acct(i)] = encode(initialBalance)
	}
	if err := db.Bootstrap(boot); err != nil {
		log.Fatal(err)
	}
	want := int64(*accounts) * initialBalance

	var audits, auditViolations, done atomic.Int64

	// Auditors: read-only transactions, running flat out, concurrently
	// with the transfers.
	stopAudit := make(chan struct{})
	var auditWG sync.WaitGroup
	for a := 0; a < 2; a++ {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			for {
				select {
				case <-stopAudit:
					return
				default:
				}
				var total int64
				err := db.View(func(tx *mvdb.Tx) error {
					return tx.Scan("acct/", func(_ string, v []byte) bool {
						total += balance(v)
						return true
					})
				})
				if err != nil {
					log.Fatalf("audit: %v", err)
				}
				audits.Add(1)
				if total != want {
					auditViolations.Add(1)
					log.Printf("AUDIT VIOLATION: total=%d want=%d", total, want)
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < *transfers; i++ {
				from, to := rng.Intn(*accounts), rng.Intn(*accounts)
				if from == to {
					continue
				}
				amount := int64(1 + rng.Intn(10))
				err := db.Update(func(tx *mvdb.Tx) error {
					fv, err := tx.Get(acct(from))
					if err != nil {
						return err
					}
					if balance(fv) < amount {
						return nil // insufficient funds: commit a no-op
					}
					tv, err := tx.Get(acct(to))
					if err != nil {
						return err
					}
					if err := tx.Put(acct(from), encode(balance(fv)-amount)); err != nil {
						return err
					}
					return tx.Put(acct(to), encode(balance(tv)+amount))
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopAudit)
	auditWG.Wait()

	// Final audit.
	var total int64
	db.View(func(tx *mvdb.Tx) error {
		return tx.Scan("acct/", func(_ string, v []byte) bool {
			total += balance(v)
			return true
		})
	})

	st := db.Stats()
	fmt.Printf("protocol            %s\n", protocolFlag(*protoName))
	fmt.Printf("transfers committed %d in %v (%.0f tx/s)\n",
		done.Load(), elapsed.Round(time.Millisecond), float64(done.Load())/elapsed.Seconds())
	fmt.Printf("audits completed    %d (violations: %d)\n", audits.Load(), auditViolations.Load())
	fmt.Printf("final total         %d (expected %d)\n", total, want)
	fmt.Printf("engine aborts       conflict=%d deadlock=%d wounded=%d\n",
		st.AbortsConflict, st.AbortsDeadlock, st.AbortsWounded)
	fmt.Printf("rw aborts caused by read-only txns: %d (the paper's guarantee: always 0)\n",
		st.RWAbortsByRO)
	if total != want || auditViolations.Load() > 0 {
		log.Fatal("CONSERVATION VIOLATED")
	}
}
