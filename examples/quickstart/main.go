// Quickstart: open a database, write with a read-write transaction, read
// with a snapshot, and watch the multiversion behavior the paper is
// about — an old snapshot keeps reading its version of the world while
// writers move on.
package main

import (
	"errors"
	"fmt"
	"log"

	"mvdb"
)

func main() {
	db, err := mvdb.Open(mvdb.Options{Protocol: mvdb.TwoPhaseLocking})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes go through read-write transactions; Update retries
	// automatically when the engine aborts one to preserve serializability.
	if err := db.Update(func(tx *mvdb.Tx) error {
		if err := tx.PutString("user/1/name", "Ada"); err != nil {
			return err
		}
		return tx.PutString("user/1/plan", "free")
	}); err != nil {
		log.Fatal(err)
	}

	// A read-only snapshot: one counter read at begin, wait-free reads.
	snapshot, err := db.BeginReadOnly()
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent-looking write after the snapshot was taken.
	if err := db.Update(func(tx *mvdb.Tx) error {
		return tx.PutString("user/1/plan", "pro")
	}); err != nil {
		log.Fatal(err)
	}

	// The old snapshot still sees the old plan; a new view sees the new
	// one. Writers were never blocked by the reader, nor vice versa.
	oldPlan, _ := snapshot.GetString("user/1/plan")
	snapshot.Commit()

	var newPlan string
	db.View(func(tx *mvdb.Tx) error {
		newPlan, _ = tx.GetString("user/1/plan")
		return nil
	})
	fmt.Printf("old snapshot saw plan=%q, fresh view sees plan=%q\n", oldPlan, newPlan)

	// Deletes are tombstone versions: old snapshots still see the value.
	db.Update(func(tx *mvdb.Tx) error { return tx.Delete("user/1/plan") })
	db.View(func(tx *mvdb.Tx) error {
		if _, err := tx.Get("user/1/plan"); errors.Is(err, mvdb.ErrNotFound) {
			fmt.Println("plan deleted (as of this snapshot)")
		}
		return nil
	})

	// Ordered prefix scans over a snapshot.
	db.Update(func(tx *mvdb.Tx) error {
		tx.PutString("user/2/name", "Grace")
		return tx.PutString("user/3/name", "Edsger")
	})
	db.View(func(tx *mvdb.Tx) error {
		fmt.Println("users:")
		return tx.Scan("user/", func(k string, v []byte) bool {
			fmt.Printf("  %s = %s\n", k, v)
			return true
		})
	})

	st := db.Stats()
	fmt.Printf("stats: %d read-write commits, %d read-only commits\n",
		st.CommitsRW, st.CommitsRO)
}
