// Analytics: long-running read-only reports over a live OLTP store — the
// workload the paper's introduction motivates. An order-processing
// workload updates inventory continuously while an analyst repeatedly
// scans the whole keyspace computing aggregates. Under the paper's
// version control the scans are pure snapshot reads: they never block a
// writer, are never blocked by one, and each report is internally
// consistent no matter how long it takes.
//
// The example also demonstrates the Section 6 trade-offs: the default
// snapshot may be slightly stale (visibility lag is printed), and a
// "fresh" report can opt into waiting via BeginReadOnlyRecent. With
// -gc the old versions the reports no longer need are collected
// concurrently.
//
// Usage:
//
//	analytics [-products 200] [-orders 5000] [-gc]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mvdb"
)

func product(i int) string { return fmt.Sprintf("stock/%05d", i) }

func num(v []byte) int64 { return int64(binary.LittleEndian.Uint64(v)) }

func encode(n int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	return b[:]
}

func main() {
	var (
		products = flag.Int("products", 200, "number of products")
		orders   = flag.Int("orders", 5000, "orders to process")
		useGC    = flag.Bool("gc", false, "collect old versions in the background")
	)
	flag.Parse()

	opts := mvdb.Options{Protocol: mvdb.TwoPhaseLocking}
	if *useGC {
		opts.GCInterval = 5 * time.Millisecond
	}
	db, err := mvdb.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const initialStock = 1_000_000
	boot := make(map[string][]byte, *products)
	for i := 0; i < *products; i++ {
		boot[product(i)] = encode(initialStock)
	}
	if err := db.Bootstrap(boot); err != nil {
		log.Fatal(err)
	}
	totalStock := int64(*products) * initialStock

	var processed, reports, maxReportLag atomic.Int64

	// The analyst: full-store scans, each a single consistent snapshot.
	// Units only ever move between products (a "reallocation" workload),
	// so every consistent report must sum to exactly totalStock.
	stop := make(chan struct{})
	var reportWG sync.WaitGroup
	reportWG.Add(1)
	go func() {
		defer reportWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum int64
			var items int
			if lag := int64(db.VisibilityLag()); lag > maxReportLag.Load() {
				maxReportLag.Store(lag)
			}
			err := db.View(func(tx *mvdb.Tx) error {
				return tx.Scan("stock/", func(_ string, v []byte) bool {
					sum += num(v)
					items++
					return true
				})
			})
			if err != nil {
				log.Fatalf("report: %v", err)
			}
			if sum != totalStock {
				log.Fatalf("INCONSISTENT REPORT: sum=%d want=%d (items=%d)", sum, totalStock, items)
			}
			reports.Add(1)
		}
	}()

	// Order processing: move stock between products.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < *orders/4; i++ {
				from, to := rng.Intn(*products), rng.Intn(*products)
				if from == to {
					continue
				}
				qty := int64(1 + rng.Intn(5))
				err := db.Update(func(tx *mvdb.Tx) error {
					fv, err := tx.Get(product(from))
					if err != nil {
						return err
					}
					if num(fv) < qty {
						return nil
					}
					tv, err := tx.Get(product(to))
					if err != nil {
						return err
					}
					if err := tx.Put(product(from), encode(num(fv)-qty)); err != nil {
						return err
					}
					return tx.Put(product(to), encode(num(tv)+qty))
				})
				if err != nil {
					log.Fatalf("order: %v", err)
				}
				processed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	reportWG.Wait()

	// A recency-rectified report observes everything processed above.
	fresh, err := db.BeginReadOnlyRecent()
	if err != nil {
		log.Fatal(err)
	}
	var finalSum int64
	fresh.Scan("stock/", func(_ string, v []byte) bool {
		finalSum += num(v)
		return true
	})
	fresh.Commit()

	st := db.Stats()
	fmt.Printf("orders processed   %d in %v (%.0f tx/s)\n",
		processed.Load(), elapsed.Round(time.Millisecond), float64(processed.Load())/elapsed.Seconds())
	fmt.Printf("reports completed  %d, every one internally consistent\n", reports.Load())
	fmt.Printf("max visibility lag observed by reports: %d positions\n", maxReportLag.Load())
	fmt.Printf("fresh (recency-rectified) report total: %d (expected %d)\n", finalSum, totalStock)
	fmt.Printf("read-only commits  %d — zero blocking, zero aborts caused (by_ro=%d)\n",
		st.CommitsRO, st.RWAbortsByRO)
	if *useGC {
		fmt.Printf("gc                 %d versions pruned in %d passes\n", st.GCReclaimed, st.GCPasses)
	}
	if finalSum != totalStock {
		log.Fatal("FINAL REPORT INCONSISTENT")
	}
}
