// Durable: write-ahead logging, crash recovery, checkpointing and log
// compaction — the "transaction and system recovery" role of multiple
// versions that the paper's first sentence invokes.
//
// The program runs three lives of the same database directory:
//
//  1. write a batch of orders and "crash" without closing;
//  2. recover, verify every committed order survived, checkpoint,
//     compact the log, and write more;
//  3. recover again from snapshot + log suffix and audit everything.
//
// Usage:
//
//	durable [-dir <path>] [-orders 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mvdb"
)

func orderKey(i int) string { return fmt.Sprintf("order/%06d", i) }

func main() {
	var (
		dir    = flag.String("dir", "", "database directory (default: temp)")
		orders = flag.Int("orders", 500, "orders per life")
	)
	flag.Parse()

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "mvdb-durable-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	walPath := filepath.Join(*dir, "commit.log")

	// --- Life 1: write and crash. -------------------------------------
	db, err := mvdb.Open(mvdb.Options{WALPath: walPath, SyncEveryCommit: false})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *orders; i++ {
		if err := db.Update(func(tx *mvdb.Tx) error {
			return tx.PutString(orderKey(i), fmt.Sprintf("life1-%d", i))
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Simulate a crash: flush what the OS has (as a clean shutdown's
	// fsync would) but never Close the handles gracefully.
	if err := db.Close(); err != nil { // stands in for the machine dying post-flush
		log.Fatal(err)
	}
	size1, _ := os.Stat(walPath)
	fmt.Printf("life 1: %d orders committed; log is %d bytes; process dies\n", *orders, size1.Size())

	// --- Life 2: recover, checkpoint, compact, write more. ------------
	db2, err := mvdb.Open(mvdb.Options{WALPath: walPath})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	db2.View(func(tx *mvdb.Tx) error {
		return tx.Scan("order/", func(string, []byte) bool { count++; return true })
	})
	fmt.Printf("life 2: recovered %d orders from the log\n", count)
	if count != *orders {
		log.Fatalf("LOST COMMITS: recovered %d of %d", count, *orders)
	}

	if err := db2.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	for i := *orders; i < 2*(*orders); i++ {
		if err := db2.Update(func(tx *mvdb.Tx) error {
			return tx.PutString(orderKey(i), fmt.Sprintf("life2-%d", i))
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db2.Close(); err != nil {
		log.Fatal(err)
	}
	before, _ := os.Stat(walPath)
	if err := mvdb.CompactLog(walPath); err != nil {
		log.Fatal(err)
	}
	after, _ := os.Stat(walPath)
	fmt.Printf("life 2: checkpointed, wrote %d more, compacted log %d -> %d bytes\n",
		*orders, before.Size(), after.Size())

	// --- Life 3: recover from snapshot + suffix and audit. ------------
	db3, err := mvdb.Open(mvdb.Options{WALPath: walPath})
	if err != nil {
		log.Fatal(err)
	}
	defer db3.Close()
	count = 0
	bad := 0
	db3.View(func(tx *mvdb.Tx) error {
		return tx.Scan("order/", func(k string, v []byte) bool {
			count++
			if len(v) == 0 {
				bad++
			}
			return true
		})
	})
	fmt.Printf("life 3: snapshot+suffix recovery sees %d orders (%d corrupt)\n", count, bad)
	if count != 2*(*orders) || bad != 0 {
		log.Fatal("RECOVERY INCOMPLETE")
	}
	fmt.Println("all committed state survived two restarts")
}
