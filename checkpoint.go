package mvdb

import (
	"errors"
	"fmt"
	"os"

	"mvdb/internal/storage"
	"mvdb/internal/wal"
)

// snapPath is the snapshot file companion to a commit log.
func snapPath(walPath string) string { return walPath + ".snap" }

// Checkpoint writes a consistent snapshot of the database next to the
// commit log (<WALPath>.snap), bounding recovery time: a later Open loads
// the snapshot and replays only the log suffix.
//
// The snapshot is taken at the current visibility horizon (vtnc), which
// by the Transaction Visibility Property is a fully committed prefix of
// the serial order — so Checkpoint is safe to run concurrently with any
// transaction load, one more dividend of the paper's design. The commit
// log is not rewritten here; use CompactLog offline to drop the prefix
// the snapshot covers.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return errors.New("mvdb: Checkpoint requires Options.WALPath")
	}
	if err := db.log.Flush(); err != nil {
		return err
	}
	sn := db.eng.VC().VTNC()
	tmp := snapPath(db.walPath) + ".tmp"
	w, err := wal.Create(tmp, wal.SyncNever)
	if err != nil {
		return err
	}
	// First record: the snapshot horizon, encoded as a record with no
	// writes whose TN is the horizon.
	if err := w.Append(wal.Record{TN: sn}); err != nil {
		w.Close()
		return err
	}
	var werr error
	db.eng.Store().Range(func(key string, o *storage.Object) bool {
		v, ok := o.ReadVisible(sn)
		if !ok {
			return true
		}
		werr = w.Append(wal.Record{TN: v.TN, Writes: []wal.Write{{
			Key: key, Value: v.Data, Tombstone: v.Tombstone,
		}}})
		return werr == nil
	})
	if werr != nil {
		w.Close()
		os.Remove(tmp)
		return werr
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, snapPath(db.walPath))
}

// loadSnapshot reads a snapshot file, returning its horizon and the
// per-key versions, or (0, nil, nil) if none exists.
func loadSnapshot(path string) (horizon uint64, recs []wal.Record, err error) {
	first := true
	_, err = wal.Replay(path, func(r wal.Record) error {
		if first {
			first = false
			horizon = r.TN
			return nil
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return horizon, recs, nil
}

// CompactLog rewrites the commit log at walPath, dropping every record
// already covered by its snapshot (TN <= the snapshot horizon). It must
// be run offline — with no DB open on the log — and is a no-op without a
// snapshot.
func CompactLog(walPath string) error {
	horizon, _, err := loadSnapshot(snapPath(walPath))
	if err != nil {
		return fmt.Errorf("mvdb: compact: read snapshot: %w", err)
	}
	if horizon == 0 {
		return nil
	}
	var keep []wal.Record
	if _, err := wal.Replay(walPath, func(r wal.Record) error {
		if r.TN > horizon {
			keep = append(keep, r)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("mvdb: compact: read log: %w", err)
	}
	tmp := walPath + ".compact.tmp"
	w, err := wal.Create(tmp, wal.SyncNever)
	if err != nil {
		return err
	}
	for _, r := range keep {
		if err := w.Append(r); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, walPath)
}
