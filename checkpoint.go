package mvdb

import (
	"errors"

	"mvdb/internal/core"
)

// Checkpoint writes a consistent snapshot of the database next to the
// commit log (<WALPath>.snap), bounding recovery time: a later Open loads
// the snapshot and replays only the log suffix.
//
// The snapshot is taken at the current visibility horizon (vtnc), which
// by the Transaction Visibility Property is a fully committed prefix of
// the serial order — so Checkpoint is safe to run concurrently with any
// transaction load, one more dividend of the paper's design. The write
// is crash-atomic (temp file + fsync + rename + directory fsync): a
// power cut at any instant leaves either the previous snapshot or the
// new one, both intact. The commit log is not rewritten here; use
// CompactLog offline to drop the prefix the snapshot covers.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return errors.New("mvdb: Checkpoint requires Options.WALPath")
	}
	return db.eng.WriteSnapshot(db.fs, db.walPath)
}

// CompactLog rewrites the commit log at walPath, dropping every record
// already covered by its snapshot (TN <= the snapshot horizon). It must
// be run offline — with no DB open on the log — and is a no-op without a
// snapshot. The replacement is crash-atomic: a crash mid-compaction
// leaves either the full old log or the compacted one, never a hybrid,
// and Open removes any stale temp file it finds.
func CompactLog(walPath string) error {
	return core.Compact(nil, walPath)
}
