// Benchmarks regenerating the experiment measurements of EXPERIMENTS.md
// as `go test -bench` targets: one benchmark (family) per table. Custom
// metrics (aborts/op, lag, messages/op) are attached via b.ReportMetric,
// so the qualitative comparisons survive even where ns/op is dominated by
// the simulated workload.
package mvdb

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
	"mvdb/internal/gc"
	"mvdb/internal/harness"
	"mvdb/internal/lock"
	"mvdb/internal/vc"
	"mvdb/internal/workload"
)

type bencher interface {
	Bootstrap(map[string][]byte) error
}

func benchRoster() []struct {
	name string
	make func() engine.Engine
} {
	return []struct {
		name string
		make func() engine.Engine
	}{
		{"vc+2pl", func() engine.Engine { return core.New(core.Options{Protocol: core.TwoPhaseLocking}) }},
		{"vc+to", func() engine.Engine { return core.New(core.Options{Protocol: core.TimestampOrdering}) }},
		{"vc+occ", func() engine.Engine { return core.New(core.Options{Protocol: core.Optimistic}) }},
		{"mvto", func() engine.Engine { return baseline.NewMVTO(0, nil) }},
		{"mv2plctl", func() engine.Engine { return baseline.NewMV2PLCTL(0, lock.Detect, 0, nil) }},
		{"sv2pl", func() engine.Engine { return baseline.NewSV2PL(0, lock.Detect, 0, nil) }},
	}
}

// BenchmarkVCModule is experiment F1: the paper's Figure 1 module itself.
func BenchmarkVCModule(b *testing.B) {
	b.Run("start", func(b *testing.B) {
		c := vc.New(0)
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += c.Start()
		}
		_ = sink
	})
	b.Run("register-complete", func(b *testing.B) {
		c := vc.New(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Complete(c.Register())
		}
	})
	b.Run("register-complete-outoforder", func(b *testing.B) {
		c := vc.New(0)
		const window = 32
		entries := make([]vc.Handle, window)
		b.ReportAllocs()
		for i := 0; i < b.N; i += window {
			for j := range entries {
				entries[j] = c.Register()
			}
			for j := window - 1; j >= 0; j-- {
				c.Complete(entries[j])
			}
		}
	})
	b.Run("start-parallel", func(b *testing.B) {
		c := vc.New(0)
		b.RunParallel(func(pb *testing.PB) {
			var sink uint64
			for pb.Next() {
				sink += c.Start()
			}
			_ = sink
		})
	})
}

// BenchmarkReadOnlyPath is experiment F2: one read-only transaction with
// four snapshot reads — the paper's Figure 2 path.
func BenchmarkReadOnlyPath(b *testing.B) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking})
	defer e.Close()
	wl := workload.Config{Keys: 256, Seed: 1}
	if err := e.Bootstrap(wl.Bootstrap()); err != nil {
		b.Fatal(err)
	}
	keys := []string{"key000001", "key000050", "key000100", "key000200"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := e.Begin(engine.ReadOnly)
		for _, k := range keys {
			if _, err := tx.Get(k); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMixed runs a mixed workload through the harness and reports
// engine-level metrics; shared by F3/F4 and E5.
func benchMixed(b *testing.B, e engine.Engine, roFrac float64, zipf float64) {
	wl := workload.Config{Keys: 64, ReadOnlyFraction: roFrac, ROReads: 4,
		RWReads: 2, RWWrites: 2, Zipf: zipf, Seed: 3}
	if err := e.(bencher).Bootstrap(wl.Bootstrap()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := harness.Run(harness.Config{
		Engine: e, Clients: 4, TxnsPerClient: (b.N + 3) / 4, Workload: wl,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	total := res.CommittedRO + res.CommittedRW
	if total > 0 {
		b.ReportMetric(float64(res.Retries)/float64(total), "retries/txn")
		b.ReportMetric(res.Throughput(), "txn/s")
	}
}

// BenchmarkVC2PL is experiment F4: the Figure 4 engine under a mixed load.
func BenchmarkVC2PL(b *testing.B) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking})
	defer e.Close()
	benchMixed(b, e, 0.5, 0)
}

// BenchmarkVCTO is experiment F3: the Figure 3 engine under a mixed load.
func BenchmarkVCTO(b *testing.B) {
	e := core.New(core.Options{Protocol: core.TimestampOrdering})
	defer e.Close()
	benchMixed(b, e, 0.5, 0)
}

// BenchmarkVCOCC exercises the optimistic integration the same way.
func BenchmarkVCOCC(b *testing.B) {
	e := core.New(core.Options{Protocol: core.Optimistic})
	defer e.Close()
	benchMixed(b, e, 0.5, 0)
}

// BenchmarkE1ReadOnlyOverhead: the cost of one read-only transaction (4
// reads) per engine, no writers — Section 1's "no concurrency control
// overhead" claim.
func BenchmarkE1ReadOnlyOverhead(b *testing.B) {
	for _, ne := range benchRoster() {
		b.Run(ne.name, func(b *testing.B) {
			e := ne.make()
			defer e.Close()
			wl := workload.Config{Keys: 256, Seed: 1}
			if err := e.(bencher).Bootstrap(wl.Bootstrap()); err != nil {
				b.Fatal(err)
			}
			keys := []string{"key000001", "key000050", "key000100", "key000200"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := e.Begin(engine.ReadOnly)
				for _, k := range keys {
					if _, err := tx.Get(k); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2AbortAttribution: read-write aborts caused by read-only
// transactions (always 0 for the paper's engines; positive for MVTO).
func BenchmarkE2AbortAttribution(b *testing.B) {
	for _, name := range []string{"vc+to", "mvto"} {
		b.Run(name, func(b *testing.B) {
			var e engine.Engine
			if name == "vc+to" {
				e = core.New(core.Options{Protocol: core.TimestampOrdering})
			} else {
				e = baseline.NewMVTO(0, nil)
			}
			defer e.Close()
			wl := workload.Config{Keys: 24, ReadOnlyFraction: 0.5, ROReads: 4,
				RWReads: 1, RWWrites: 2, Seed: 7}
			if err := e.(bencher).Bootstrap(wl.Bootstrap()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			_, err := harness.Run(harness.Config{
				Engine: e, Clients: 8, TxnsPerClient: (b.N + 7) / 8, Workload: wl,
				OpDelay: 20 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := e.Stats()
			b.ReportMetric(float64(st["rw.aborts.by_ro"]), "aborts-by-ro")
			b.ReportMetric(float64(st["aborts.conflict"]), "conflicts")
		})
	}
}

// BenchmarkE3ReadOnlyBlocking: read-only blocking events behind writers.
func BenchmarkE3ReadOnlyBlocking(b *testing.B) {
	for _, ne := range benchRoster() {
		b.Run(ne.name, func(b *testing.B) {
			e := ne.make()
			defer e.Close()
			wl := workload.Config{Keys: 24, ReadOnlyFraction: 0.5, ROReads: 4,
				RWReads: 1, RWWrites: 3, Seed: 11}
			if err := e.(bencher).Bootstrap(wl.Bootstrap()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := harness.Run(harness.Config{
				Engine: e, Clients: 8, TxnsPerClient: (b.N + 7) / 8, Workload: wl,
				OpDelay: 20 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Stats["ro.blocked"]), "ro-blocked")
			b.ReportMetric(float64(res.RORetries), "ro-aborted")
		})
	}
}

// BenchmarkE4StartCost: read-only begin cost as the out-of-order commit
// window grows — CTL copy (Chan) vs VCstart.
func BenchmarkE4StartCost(b *testing.B) {
	for _, window := range []int{0, 64, 1024} {
		b.Run(fmt.Sprintf("chan/window=%d", window), func(b *testing.B) {
			e := baseline.NewMV2PLCTL(0, lock.Detect, 0, nil)
			defer e.Close()
			release := e.HoldNumber()
			defer release()
			for i := 0; i < window; i++ {
				tx, _ := e.Begin(engine.ReadWrite)
				tx.Put(fmt.Sprintf("k%d", i), []byte("v"))
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ro, _ := e.Begin(engine.ReadOnly)
				ro.Commit()
			}
		})
	}
	b.Run("vc/any-window", func(b *testing.B) {
		e := core.New(core.Options{Protocol: core.TimestampOrdering})
		defer e.Close()
		strag, _ := e.Begin(engine.ReadWrite)
		strag.Put("s", []byte("x"))
		defer strag.Commit()
		for i := 0; i < 1024; i++ {
			tx, _ := e.Begin(engine.ReadWrite)
			tx.Put(fmt.Sprintf("k%d", i), []byte("v"))
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ro, _ := e.Begin(engine.ReadOnly)
			ro.Commit()
		}
	})
}

// BenchmarkE5Throughput: mixed-workload throughput per engine at two
// read-only shares and one contended (Zipf) configuration.
func BenchmarkE5Throughput(b *testing.B) {
	for _, ne := range benchRoster() {
		for _, cfg := range []struct {
			label string
			ro    float64
			zipf  float64
		}{
			{"ro=10", 0.1, 0},
			{"ro=90", 0.9, 0},
			{"ro=50-zipf", 0.5, 1.4},
		} {
			b.Run(ne.name+"/"+cfg.label, func(b *testing.B) {
				e := ne.make()
				defer e.Close()
				benchMixed(b, e, cfg.ro, cfg.zipf)
			})
		}
	}
}

// BenchmarkE6VisibilityLag: cost and lag of the straggler scenario, with
// the recency-rectified begin as a separate measurement.
func BenchmarkE6VisibilityLag(b *testing.B) {
	b.Run("plain-ro-under-lag", func(b *testing.B) {
		e := core.New(core.Options{Protocol: core.TimestampOrdering})
		defer e.Close()
		e.Bootstrap(map[string][]byte{"k": []byte("v")})
		strag, _ := e.Begin(engine.ReadWrite)
		strag.Put("s", []byte("x"))
		for i := 0; i < 16; i++ {
			tx, _ := e.Begin(engine.ReadWrite)
			tx.Put("k", []byte("v2"))
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ro, _ := e.Begin(engine.ReadOnly)
			if _, err := ro.Get("k"); err != nil {
				b.Fatal(err)
			}
			ro.Commit()
		}
		b.StopTimer()
		b.ReportMetric(float64(e.VC().Lag()), "lag-positions")
		strag.Commit()
	})
	b.Run("recent-ro-no-lag", func(b *testing.B) {
		e := core.New(core.Options{Protocol: core.TimestampOrdering})
		defer e.Close()
		e.Bootstrap(map[string][]byte{"k": []byte("v")})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ro, err := e.BeginReadOnlyRecent()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ro.Get("k"); err != nil {
				b.Fatal(err)
			}
			ro.Commit()
		}
	})
}

// BenchmarkE7GC: update throughput with background garbage collection on
// and off, reporting retained versions.
func BenchmarkE7GC(b *testing.B) {
	for _, useGC := range []bool{false, true} {
		name := "off"
		if useGC {
			name = "on"
		}
		b.Run("gc="+name, func(b *testing.B) {
			e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
			defer e.Close()
			e.Bootstrap(map[string][]byte{"hot": []byte("v")})
			var collector *gc.Collector
			if useGC {
				collector = gc.New(e, time.Millisecond)
				collector.Start()
				defer collector.Stop()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := e.Begin(engine.ReadWrite)
				tx.Put("hot", []byte("v"))
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(e.Store().TotalVersions()), "versions-retained")
		})
	}
}

// BenchmarkE8Distributed: distributed commit cost by site count,
// reporting messages per transaction.
func BenchmarkE8Distributed(b *testing.B) {
	for _, sites := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			c, err := dist.New(dist.Options{Sites: sites})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			wl := workload.Config{Keys: 48, ReadOnlyFraction: 0.5, ROReads: 3,
				RWReads: 1, RWWrites: 2, Seed: 17}
			c.Bootstrap(wl.Bootstrap())
			b.ResetTimer()
			res, err := harness.Run(harness.Config{
				Engine: c, Clients: 4, TxnsPerClient: (b.N + 3) / 4, Workload: wl,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			total := res.CommittedRO + res.CommittedRW
			if total > 0 {
				b.ReportMetric(float64(c.Stats()["bus.messages"])/float64(total), "msgs/txn")
			}
		})
	}
}

// BenchmarkA1RegisterPoint: ablation — registering 2PL transactions at
// begin instead of the lock-point costs nothing in speed (so the correct
// rule is "free") but breaks correctness (see TestAblationEarlyRegister2PL).
func BenchmarkA1RegisterPoint(b *testing.B) {
	for _, early := range []bool{false, true} {
		name := "lockpoint(correct)"
		if early {
			name = "begin(unsafe)"
		}
		b.Run(name, func(b *testing.B) {
			e := core.New(core.Options{Protocol: core.TwoPhaseLocking, UnsafeEarlyRegister2PL: early})
			defer e.Close()
			e.Bootstrap(map[string][]byte{"k": []byte("v")})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := e.Begin(engine.ReadWrite)
				tx.Put("k", []byte("v"))
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdateTxn measures the public API's Update path end to end.
func BenchmarkUpdateTxn(b *testing.B) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateTxnAudited is BenchmarkUpdateTxn with the online
// serializability auditor enabled — the delta is the per-commit cost of
// feeding the audit pipeline (event construction + one channel send).
func BenchmarkUpdateTxnAudited(b *testing.B) {
	db, err := Open(Options{Protocol: TwoPhaseLocking, Audit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	db.Audit().Drain()
	if n := db.Audit().Dropped(); n > 0 {
		b.Logf("audit dropped %d events", n)
	}
}

// BenchmarkUpdateTxnPhased is BenchmarkUpdateTxn with per-transaction
// phase timing enabled — the delta is the cost of the attribution layer
// on the commit path (a handful of clock reads and lock-free histogram
// records per transaction; experiment O3).
func BenchmarkUpdateTxnPhased(b *testing.B) {
	db, err := Open(Options{Protocol: TwoPhaseLocking, PhaseTiming: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateDurableGroup and its Phased twin measure attribution
// overhead where attribution is for: the durable group-commit path
// (experiment O3). Parallel committers share fsync batches; the phase
// timer's clock reads amortize against real I/O waiting.
func BenchmarkUpdateDurableGroup(b *testing.B)       { benchDurableGroup(b, false) }
func BenchmarkUpdateDurableGroupPhased(b *testing.B) { benchDurableGroup(b, true) }

func benchDurableGroup(b *testing.B, phased bool) {
	db, err := Open(Options{
		Protocol:    TwoPhaseLocking,
		WALPath:     filepath.Join(b.TempDir(), "commit.log"),
		GroupCommit: true,
		PhaseTiming: phased,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.SetParallelism(4)
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			key := fmt.Sprintf("k%d", ctr.Add(1)%64)
			if err := db.Update(func(tx *Tx) error {
				return tx.Put(key, []byte("v"))
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkViewTxn measures the public API's View path end to end.
func BenchmarkViewTxn(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.Put("k", []byte("v")) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3Adaptive: the adaptive engine vs its fixed-protocol
// components on a contended read-modify-write workload, reporting
// protocol switches.
func BenchmarkA3Adaptive(b *testing.B) {
	mk := []struct {
		name string
		make func() engine.Engine
	}{
		{"fixed-occ", func() engine.Engine { return core.New(core.Options{Protocol: core.Optimistic}) }},
		{"fixed-2pl", func() engine.Engine { return core.New(core.Options{Protocol: core.TwoPhaseLocking}) }},
		{"adaptive", func() engine.Engine { return adaptive.New(adaptive.Options{Window: 32}) }},
	}
	for _, ne := range mk {
		b.Run(ne.name, func(b *testing.B) {
			e := ne.make()
			defer e.Close()
			wl := workload.Config{Keys: 8, ReadOnlyFraction: 0.2, RWReads: 2, RWWrites: 2, Seed: 23}
			if err := e.(bencher).Bootstrap(wl.Bootstrap()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := harness.Run(harness.Config{
				Engine: e, Clients: 4, TxnsPerClient: (b.N + 3) / 4, Workload: wl,
				OpDelay: 10 * time.Microsecond, RetryLimit: 5000,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			total := res.CommittedRO + res.CommittedRW
			if total > 0 {
				b.ReportMetric(float64(res.Retries)/float64(total), "retries/txn")
			}
			if ad, ok := e.(*adaptive.Engine); ok {
				b.ReportMetric(float64(ad.Switches()), "switches")
			}
		})
	}
}
