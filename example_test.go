package mvdb_test

import (
	"fmt"
	"log"

	"mvdb"
)

// The basic write-then-read cycle.
func ExampleDB_Update() {
	db, err := mvdb.Open(mvdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Update(func(tx *mvdb.Tx) error {
		return tx.PutString("greeting", "hello, 1989")
	}); err != nil {
		log.Fatal(err)
	}
	db.View(func(tx *mvdb.Tx) error {
		v, _ := tx.GetString("greeting")
		fmt.Println(v)
		return nil
	})
	// Output: hello, 1989
}

// Snapshots are stable: a read-only transaction keeps seeing the state as
// of its begin, while writers proceed unhindered.
func ExampleDB_BeginReadOnly() {
	db, _ := mvdb.Open(mvdb.Options{})
	defer db.Close()
	db.Update(func(tx *mvdb.Tx) error { return tx.PutString("k", "old") })

	snapshot, _ := db.BeginReadOnly()
	db.Update(func(tx *mvdb.Tx) error { return tx.PutString("k", "new") })

	was, _ := snapshot.GetString("k")
	snapshot.Commit()
	var now string
	db.View(func(tx *mvdb.Tx) error { now, _ = tx.GetString("k"); return nil })
	fmt.Println(was, now)
	// Output: old new
}

// Read-your-writes across transactions via the committed transaction
// number (the paper's Section 6 recency rectification).
func ExampleDB_BeginReadOnlyAt() {
	db, _ := mvdb.Open(mvdb.Options{})
	defer db.Close()

	tx, _ := db.Begin()
	tx.PutString("mine", "v1")
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	tn, _ := tx.TN()

	ro, _ := db.BeginReadOnlyAt(tn) // snapshot pinned at my commit
	v, _ := ro.GetString("mine")
	ro.Commit()
	fmt.Println(v)
	// Output: v1
}

// Ordered prefix scans over a consistent snapshot.
func ExampleTx_Scan() {
	db, _ := mvdb.Open(mvdb.Options{})
	defer db.Close()
	db.Update(func(tx *mvdb.Tx) error {
		tx.PutString("fruit/banana", "3")
		tx.PutString("fruit/apple", "5")
		return tx.PutString("veg/leek", "9")
	})
	db.View(func(tx *mvdb.Tx) error {
		return tx.Scan("fruit/", func(k string, v []byte) bool {
			fmt.Printf("%s=%s\n", k, v)
			return true
		})
	})
	// Output:
	// fruit/apple=5
	// fruit/banana=3
}
