package mvdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mvdb/internal/flight"
	"mvdb/internal/hotspot"
	"mvdb/internal/obs"
)

// TestHotspotDisabledZeroOverhead is the acceptance alloc guard for the
// profiler: with Options.Hotspot off (the default), every hot-path hook
// must reduce to one pointer test and keep the seed allocation
// baselines — Update at 12 allocs/op and View at 2.
func TestHotspotDisabledZeroOverhead(t *testing.T) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Hotspots() != nil {
		t.Fatal("Hotspots() non-nil with Options.Hotspot off")
	}
	val := []byte("v")
	update := testing.AllocsPerRun(200, func() {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", val)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if update > 12 {
		t.Errorf("Update allocs/op = %.1f with hotspot off, want <= 12 (seed baseline)", update)
	}
	view := testing.AllocsPerRun(200, func() {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
	if view > 2 {
		t.Errorf("View allocs/op = %.1f with hotspot off, want <= 2 (seed baseline)", view)
	}
}

// BenchmarkHotspotProfiler measures the profiler's cost off and on
// (EXPERIMENTS O7) over the same durable group-commit Update workload
// as BenchmarkHealthMonitor: the enabled hot-path cost is one atomic
// counter plus, one touch in SampleEvery, a TryLock'd sketch update.
func BenchmarkHotspotProfiler(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("hotspot=%v", on), func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(Options{
				Protocol:    TwoPhaseLocking,
				WALPath:     filepath.Join(dir, "commit.log"),
				GroupCommit: true,
				Hotspot:     on,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := []byte("v")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Update(func(tx *Tx) error {
					return tx.Put(fmt.Sprintf("k%d", i%64), val)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestHotspotWorkloadShift is the tentpole acceptance path: a durable
// group-commit adaptive engine under epoch visibility runs a uniform
// workload, then shifts to hammering four hot keys. The profiler's
// report must rank the hot keys at the top, the knob controller must
// record at least one decision (as an EvKnob trace event and in
// Stats().Extra), the flight bundle (schema v3) must carry the hotspot
// section, and /debug/mvdb/hotspot must serve the live report.
//
// Health ticks are driven manually with synthetic timestamps one second
// apart (HealthInterval is an hour), so the interval rates the knob
// policy reads are deterministic: each phase commits sequentially, so
// fsyncs-per-commit sits near 1.0 — fsync-bound at volume, exactly the
// regime where the group-commit window must step up.
func TestHotspotWorkloadShift(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		AdaptiveCC:         true,
		VisibilityMode:     VisibilityEpoch,
		WALPath:            filepath.Join(dir, "commit.log"),
		GroupCommit:        true,
		Hotspot:            true,
		HotspotSampleEvery: 1, // deterministic sketch contents
		Health:             true,
		HealthInterval:     time.Hour, // ticks are driven manually below
		FlightDir:          filepath.Join(dir, "flight"),
		DebugAddr:          "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	base := time.Now()
	db.Health().Tick(base) // prime the differ

	// Phase 1: uniform — 200 commits spread over 100 keys.
	for i := 0; i < 200; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put(fmt.Sprintf("u%03d", i%100), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := db.Health().Tick(base.Add(time.Second)); !ok {
		t.Fatal("uniform-phase tick produced no point")
	}

	// Phase 2: the shift — 300 commits hammering four hot keys.
	for i := 0; i < 300; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put(fmt.Sprintf("hot-%d", i%4), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := db.Health().Tick(base.Add(2 * time.Second)); !ok {
		t.Fatal("hot-phase tick produced no point")
	}

	// The report ranks the hot keys at the top of the write sketch.
	rep := db.Hotspots()
	if rep == nil || !rep.Enabled {
		t.Fatalf("Hotspots() = %+v, want enabled report", rep)
	}
	if len(rep.HotWrites) == 0 {
		t.Fatal("report has no hot write keys")
	}
	if !strings.HasPrefix(rep.HotWrites[0].Key, "hot-") {
		t.Fatalf("top write key = %q, want a hot-* key (top 5: %+v)",
			rep.HotWrites[0].Key, rep.HotWrites[:min(5, len(rep.HotWrites))])
	}
	inTop := map[string]bool{}
	for _, k := range rep.HotWrites {
		inTop[k.Key] = true
	}
	for i := 0; i < 4; i++ {
		if k := fmt.Sprintf("hot-%d", i); !inTop[k] {
			t.Errorf("hot key %q missing from the write top-K", k)
		}
	}
	if len(rep.Lanes) == 0 {
		t.Error("report has no epoch lanes under VisibilityEpoch")
	}

	// The knob controller acted on the fsync-bound intervals and the
	// decisions are visible in Stats and the trace ring.
	sn := db.Stats()
	if sn.Extra["adaptive.knob_actions"] == 0 {
		t.Fatalf("no knob actions recorded; extra=%v", sn.Extra)
	}
	if sn.Adaptive == nil || sn.Adaptive.KnobActions == 0 {
		t.Fatalf("Stats().Adaptive = %+v, want recorded knob actions", sn.Adaptive)
	}
	if sn.Adaptive.BatchMaxDelayNS == 0 {
		t.Errorf("group-commit window never stepped up: %+v", sn.Adaptive)
	}
	if sn.Hotspot == nil || !sn.Hotspot.Enabled {
		t.Error("Stats().Hotspot missing the profiler report")
	}
	foundKnob := false
	for _, ev := range db.Trace() {
		if ev.Type == obs.EvKnob && strings.HasPrefix(ev.Key, "wal.batch_delay=") {
			foundKnob = true
			break
		}
	}
	if !foundKnob {
		t.Fatal("no wal.batch_delay EvKnob event in the trace ring")
	}

	// The flight bundle (schema v3) carries the hotspot section.
	path, err := db.Flight().Trigger("test", "hotspot workload shift")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != flight.SchemaVersion {
		t.Fatalf("bundle schema = %q, want %q", b.Schema, flight.SchemaVersion)
	}
	if b.Hotspot == nil || !b.Hotspot.Enabled {
		t.Fatal("flight bundle has no hotspot section")
	}

	// The live endpoint serves the same report.
	resp, err := http.Get("http://" + db.DebugAddr() + "/debug/mvdb/hotspot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/mvdb/hotspot = %d, want 200", resp.StatusCode)
	}
	var served hotspot.Report
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if !served.Enabled || len(served.HotWrites) == 0 {
		t.Fatalf("endpoint served %+v, want enabled report with hot keys", served)
	}
}
