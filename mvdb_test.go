package mvdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func allProtocols() []Protocol {
	return []Protocol{TwoPhaseLocking, TimestampOrdering, Optimistic}
}

func TestOpenCloseAllProtocols(t *testing.T) {
	for _, p := range allProtocols() {
		db, err := Open(Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err) // idempotent
		}
	}
}

func TestUpdateAndView(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, err := Open(Options{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			if err := db.Update(func(tx *Tx) error {
				return tx.PutString("k", "v1")
			}); err != nil {
				t.Fatal(err)
			}
			var got string
			if err := db.View(func(tx *Tx) error {
				var err error
				got, err = tx.GetString("k")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != "v1" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestViewErrorAborts(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	sentinel := errors.New("boom")
	if err := db.View(func(*Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateRetriesConflicts(t *testing.T) {
	db, err := Open(Options{Protocol: TimestampOrdering})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(func(tx *Tx) error { return tx.PutString("n", "0") }); err != nil {
		t.Fatal(err)
	}

	// Counter increments from many goroutines: timestamp ordering aborts
	// late writers constantly; Update must retry them to completion.
	const workers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				err := db.Update(func(tx *Tx) error {
					v, err := tx.Get("n")
					if err != nil {
						return err
					}
					return tx.Put("n", []byte(fmt.Sprintf("%d", mustAtoi(v)+1)))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var final string
	db.View(func(tx *Tx) error { final, _ = tx.GetString("n"); return nil })
	if final != fmt.Sprintf("%d", workers*each) {
		t.Fatalf("counter = %s, want %d", final, workers*each)
	}
}

func mustAtoi(b []byte) int {
	n := 0
	for _, c := range b {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestDeleteAndNotFound(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if err := db.View(func(tx *Tx) error {
		_, err := tx.Get("missing")
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.PutString("k", "v") })
	db.Update(func(tx *Tx) error { return tx.Delete("k") })
	db.View(func(tx *Tx) error {
		if _, err := tx.Get("k"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("post-delete err = %v", err)
		}
		return nil
	})
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tx, _ := db.BeginReadOnly()
	if !tx.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	if err := tx.PutString("a", "b"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	tx.Commit()
}

func TestReadYourWritesViaTN(t *testing.T) {
	db, _ := Open(Options{Protocol: TwoPhaseLocking})
	defer db.Close()
	tx, _ := db.Begin()
	tx.PutString("mine", "yes")
	if _, ok := tx.TN(); ok {
		t.Fatal("2PL tx has TN before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tn, ok := tx.TN()
	if !ok {
		t.Fatal("no TN after commit")
	}
	ro, err := db.BeginReadOnlyAt(tn)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ro.GetString("mine"); err != nil || v != "yes" {
		t.Fatalf("read-your-writes got (%q,%v)", v, err)
	}
	ro.Commit()
}

func TestBeginReadOnlyRecent(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.PutString("x", "1") })
	ro, err := db.BeginReadOnlyRecent()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ro.GetString("x"); v != "1" {
		t.Fatalf("recent snapshot got %q", v)
	}
	ro.Commit()
}

func TestDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, err := Open(Options{WALPath: path, SyncEveryCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.PutString("k", fmt.Sprintf("v%d", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var got string
	db2.View(func(tx *Tx) error { got, _ = tx.GetString("k"); return nil })
	if got != "v4" {
		t.Fatalf("recovered %q, want v4", got)
	}
	// And it keeps accepting writes.
	if err := db2.Update(func(tx *Tx) error { return tx.PutString("k", "v5") }); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, err := Open(Options{
		WALPath:             path,
		GroupCommit:         true,
		GroupCommitMaxDelay: 200 * time.Microsecond,
		LockStripes:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("k%d", (w*per+i)%32)
				if err := db.Update(func(tx *Tx) error {
					return tx.PutString(key, fmt.Sprintf("%d-%d", w, i))
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := db.Stats()
	if st.WALAppends != workers*per {
		t.Fatalf("wal appends = %d, want %d", st.WALAppends, workers*per)
	}
	if st.WALFsyncs >= st.WALAppends {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d appends", st.WALFsyncs, st.WALAppends)
	}
	if st.WALBatches == 0 || st.WALBatchSize.Count == 0 {
		t.Fatalf("batch gauges empty: batches=%d sizes=%d", st.WALBatches, st.WALBatchSize.Count)
	}
	if st.WALFsyncPerAppend <= 0 || st.WALFsyncPerAppend >= 1 {
		t.Fatalf("fsync/append ratio = %v, want in (0,1)", st.WALFsyncPerAppend)
	}
	if st.LockStripes != 8 {
		t.Fatalf("lock stripes = %d, want 8", st.LockStripes)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged commit must survive reopen.
	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	count := 0
	db2.View(func(tx *Tx) error {
		return tx.Scan("k", func(string, []byte) bool { count++; return true })
	})
	if count != 32 {
		t.Fatalf("recovered %d keys, want 32", count)
	}
}

func TestGCKeepsSnapshotsReadable(t *testing.T) {
	db, err := Open(Options{GCInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.Update(func(tx *Tx) error { return tx.PutString("k", "first") })
	old, _ := db.BeginReadOnly()
	for i := 0; i < 200; i++ {
		db.Update(func(tx *Tx) error { return tx.PutString("k", fmt.Sprintf("v%d", i)) })
	}
	time.Sleep(20 * time.Millisecond) // let GC run
	if v, err := old.GetString("k"); err != nil || v != "first" {
		t.Fatalf("old snapshot got (%q,%v), want first", v, err)
	}
	old.Commit()
	db.CollectGarbage()
	if db.Stats().GCReclaimed == 0 {
		t.Fatal("GC pruned nothing")
	}
	db.View(func(tx *Tx) error {
		if v, _ := tx.GetString("k"); v != "v199" {
			t.Fatalf("latest = %q", v)
		}
		return nil
	})
}

func TestSnapshotIsolationUnderConcurrentWrites(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, _ := Open(Options{Protocol: p})
			defer db.Close()
			db.Update(func(tx *Tx) error {
				tx.PutString("a", "0")
				return tx.PutString("b", "0")
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					v := fmt.Sprintf("%d", i)
					db.Update(func(tx *Tx) error {
						if err := tx.PutString("a", v); err != nil {
							return err
						}
						return tx.PutString("b", v)
					})
				}
			}()
			// Snapshot readers must always see a == b.
			for i := 0; i < 300; i++ {
				db.View(func(tx *Tx) error {
					a, _ := tx.GetString("a")
					b, _ := tx.GetString("b")
					if a != b {
						t.Errorf("torn snapshot: a=%q b=%q", a, b)
					}
					return nil
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}

func TestVisibilityLagExposed(t *testing.T) {
	db, _ := Open(Options{Protocol: TimestampOrdering})
	defer db.Close()
	if db.VisibilityLag() != 0 {
		t.Fatal("fresh db has lag")
	}
	tx, _ := db.Begin() // registers at begin under T/O
	tx.PutString("x", "1")
	if db.VisibilityLag() == 0 {
		t.Fatal("active registered txn should create lag")
	}
	tx.Commit()
	if db.VisibilityLag() != 0 {
		t.Fatal("lag after commit")
	}
}

func TestStatsVocabulary(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.PutString("k", "v") })
	db.View(func(tx *Tx) error { _, err := tx.Get("k"); return err })
	st := db.Stats()
	if st.CommitsRW != 1 || st.CommitsRO != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The legacy flat vocabulary survives via Map() (harness, tools).
	m := st.Map()
	if m["commits.rw"] != 1 || m["commits.ro"] != 1 {
		t.Fatalf("stats map = %v", m)
	}
}

func TestScanSnapshot(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	db.Update(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if err := tx.PutString(fmt.Sprintf("user/%02d", i), fmt.Sprintf("u%d", i)); err != nil {
				return err
			}
		}
		return tx.PutString("other/x", "nope")
	})
	db.Update(func(tx *Tx) error { return tx.Delete("user/03") })

	ro, _ := db.BeginReadOnly()
	var keys []string
	if err := ro.Scan("user/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	ro.Commit()
	if len(keys) != 9 {
		t.Fatalf("scanned %d keys, want 9 (tombstone skipped): %v", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan not ordered: %v", keys)
		}
	}

	// Scans are snapshot-stable: concurrent writes do not appear.
	ro2, _ := db.BeginReadOnly()
	db.Update(func(tx *Tx) error { return tx.PutString("user/99", "late") })
	n := 0
	ro2.Scan("user/", func(string, []byte) bool { n++; return true })
	ro2.Commit()
	if n != 9 {
		t.Fatalf("snapshot scan saw %d keys, want 9", n)
	}

	// Early stop.
	ro3, _ := db.BeginReadOnly()
	n = 0
	ro3.Scan("user/", func(string, []byte) bool { n++; return n < 3 })
	ro3.Commit()
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}

	// Read-write transactions do not support Scan.
	rw, _ := db.Begin()
	if err := rw.Scan("user/", func(string, []byte) bool { return true }); err == nil {
		t.Fatal("rw Scan succeeded")
	}
	rw.Abort()
}

func TestAdaptiveCCOption(t *testing.T) {
	db, err := Open(Options{AdaptiveCC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.CurrentProtocol() != "vc+occ" {
		t.Fatalf("initial protocol = %q, want vc+occ", db.CurrentProtocol())
	}
	if err := db.Update(func(tx *Tx) error { return tx.PutString("k", "v") }); err != nil {
		t.Fatal(err)
	}
	var got string
	db.View(func(tx *Tx) error { got, _ = tx.GetString("k"); return nil })
	if got != "v" {
		t.Fatalf("got %q", got)
	}
	if _, ok := db.Stats().Extra["adaptive.switches"]; !ok {
		t.Fatal("adaptive stats missing")
	}

	// Hammer a single hot key with think time: conflicts should
	// eventually flip the protocol to locking.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				db.Update(func(tx *Tx) error {
					v, err := tx.Get("hot")
					if err != nil && !errors.Is(err, ErrNotFound) {
						return err
					}
					time.Sleep(50 * time.Microsecond)
					return tx.Put("hot", append([]byte{1}, v...))
				})
			}
		}()
	}
	wg.Wait()
	if db.Stats().Extra["adaptive.switches"] == 0 {
		t.Log("note: no switch occurred (policy is rate-based); acceptable but unusual under this load")
	}
}
