package mvdb

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mvdb/internal/audit"
)

// TestAuditDisabledZeroOverhead is the O2 guard: without Options.Audit
// the auditor must not exist and the transaction paths must allocate
// exactly what they did before the audit pipeline was added. The
// workloads mirror BenchmarkUpdateTxn / BenchmarkViewTxn, whose seed
// baselines (12 and 2 allocs/op) are recorded in EXPERIMENTS.md.
func TestAuditDisabledZeroOverhead(t *testing.T) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Audit() != nil {
		t.Fatal("Options{} created an auditor")
	}
	if err := db.Update(func(tx *Tx) error { return tx.Put("k", []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	val := []byte("v")
	update := testing.AllocsPerRun(200, func() {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", val)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if update > 12 {
		t.Errorf("Update allocs/op = %.1f with audit off, want <= 12 (seed baseline)", update)
	}
	view := testing.AllocsPerRun(200, func() {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
	if view > 2 {
		t.Errorf("View allocs/op = %.1f with audit off, want <= 2 (seed baseline)", view)
	}
}

// TestAuditEndToEnd opens a real database with the auditor and the
// debug server, runs a workload, and checks the full surface: the
// auditor snapshot, /debug/mvdb/audit, and the auditor families merged
// into /metrics.
func TestAuditEndToEnd(t *testing.T) {
	db, err := Open(Options{
		Protocol:    TimestampOrdering,
		Audit:       true,
		AuditWindow: 128,
		DebugAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Bootstrap(map[string][]byte{"a": {0}, "b": {0}}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if w%2 == 0 {
					db.View(func(tx *Tx) error {
						tx.Get("a")
						tx.Get("b")
						return nil
					})
					continue
				}
				db.Update(func(tx *Tx) error {
					if _, err := tx.Get("a"); err != nil {
						return err
					}
					return tx.Put("a", []byte{byte(i)})
				})
			}
		}(w)
	}
	wg.Wait()

	aud := db.Audit()
	if aud == nil {
		t.Fatal("Options.Audit did not create an auditor")
	}
	aud.Drain()
	sn := aud.Snapshot()
	if sn.AlarmsTotal != 0 {
		t.Fatalf("correct engine raised alarms: %v", sn.Alarms)
	}
	if sn.Processed == 0 || sn.GraphWriters == 0 {
		t.Fatalf("auditor saw no traffic: %+v", sn)
	}
	if sn.Latency["read-write"].Count == 0 || sn.Latency["read-only"].Count == 0 {
		t.Fatalf("latency summaries missing: %+v", sn.Latency)
	}

	// The audit debug endpoint serves the same snapshot shape.
	resp, err := http.Get("http://" + db.DebugAddr() + "/debug/mvdb/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var httpSn audit.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&httpSn); err != nil {
		t.Fatal(err)
	}
	if httpSn.Window != 128 || httpSn.Processed == 0 {
		t.Fatalf("audit endpoint snapshot = %+v", httpSn)
	}

	// /metrics carries both the engine families and the auditor's.
	resp2, err := http.Get("http://" + db.DebugAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`mvdb_commits_total{class="rw"}`,
		`mvdb_commits_total{class="ro"}`,
		"mvdb_visibility_lag",
		"mvdb_audit_events_total",
		"mvdb_audit_alarms_total 0",
		`mvdb_txn_latency_seconds{class="rw",quantile="0.95"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestAuditSurvivesHotClose closes the database while the auditor still
// has queued events; Close must drain and stop cleanly.
func TestAuditSurvivesHotClose(t *testing.T) {
	db, err := Open(Options{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Bootstrap(map[string][]byte{"k": {0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Update(func(tx *Tx) error { return tx.Put("k", []byte{byte(i)}) })
	}
	aud := db.Audit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sn := aud.Snapshot()
	if sn.Received != sn.Processed {
		t.Fatalf("Close did not drain: received %d, processed %d", sn.Received, sn.Processed)
	}
	if sn.AlarmsTotal != 0 {
		t.Fatalf("sequential updates alarmed: %v", sn.Alarms)
	}
}
