module mvdb

go 1.24
