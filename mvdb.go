// Package mvdb is a multiversion key-value transaction engine with
// modular synchronization, reproducing Sengupta & Agrawal, "Modular
// Synchronization in Multiversion Databases: Version Control and
// Concurrency Control" (CUCS-426-89 / SIGMOD 1989).
//
// The engine separates synchronization into two components, exactly as
// the paper prescribes: a tiny version control module that owns the
// transaction-number and visibility counters, and a pluggable
// conflict-based concurrency control protocol (two-phase locking,
// timestamp ordering, or optimistic validation) that serializes
// read-write transactions. Read-only transactions never touch the
// concurrency control component: they take a snapshot number at begin and
// read the largest committed version at or below it — they never block,
// never abort, and never disturb writers.
//
// Quick start:
//
//	db, err := mvdb.Open(mvdb.Options{Protocol: mvdb.TwoPhaseLocking})
//	if err != nil { ... }
//	defer db.Close()
//
//	err = db.Update(func(tx *mvdb.Tx) error {
//		return tx.Put("greeting", []byte("hello"))
//	})
//
//	err = db.View(func(tx *mvdb.Tx) error {
//		v, err := tx.Get("greeting")
//		...
//	})
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's claims.
package mvdb

import (
	"fmt"
	"sync/atomic"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/audit"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/faultfs"
	"mvdb/internal/flight"
	"mvdb/internal/gc"
	"mvdb/internal/health"
	"mvdb/internal/hotspot"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
	"mvdb/internal/vc/epoch"
	"mvdb/internal/wal"
)

// Protocol selects the concurrency control used for read-write
// transactions. Read-only transactions behave identically under all of
// them — that independence is the paper's point.
type Protocol int

const (
	// TwoPhaseLocking is strict 2PL with version-control registration at
	// the lock-point (paper Figure 4). The default.
	TwoPhaseLocking Protocol = iota
	// TimestampOrdering assigns the serial order at begin (paper
	// Figure 3). Writers that arrive too late abort and should retry.
	TimestampOrdering
	// Optimistic buffers writes and validates at commit.
	Optimistic
)

func (p Protocol) String() string { return coreProtocol(p).String() }

func coreProtocol(p Protocol) core.Protocol {
	switch p {
	case TimestampOrdering:
		return core.TimestampOrdering
	case Optimistic:
		return core.Optimistic
	default:
		return core.TwoPhaseLocking
	}
}

// VisibilityMode selects the version-control implementation behind the
// engine: how completed transactions become visible to readers. Both
// modes preserve the paper's Transaction Ordering and Visibility
// Properties — the choice changes multi-core scalability, not
// semantics, and is certified equivalent by the schedtest, audit, and
// crashtest harnesses.
type VisibilityMode int

const (
	// VisibilityStrict is the paper's Figure 1 queue: one mutex, one
	// ordered drain, visibility advancing one transaction at a time in
	// serialization order. The default.
	VisibilityStrict VisibilityMode = iota
	// VisibilityEpoch decentralizes completion tracking into per-lane
	// frontiers and publishes visibility in batches at an epoch
	// watermark (min over lane frontiers). Completions in different
	// lanes never contend, at the cost of slightly coarser-grained
	// visibility advancement.
	VisibilityEpoch
)

func (m VisibilityMode) String() string { return vcMode(m).String() }

func vcMode(m VisibilityMode) vc.Mode {
	if m == VisibilityEpoch {
		return vc.ModeEpoch
	}
	return vc.ModeStrict
}

// DeadlockPolicy selects how the 2PL engine resolves deadlocks.
type DeadlockPolicy int

const (
	// DeadlockDetect aborts the requester that would close a waits-for
	// cycle. The default.
	DeadlockDetect DeadlockPolicy = iota
	// DeadlockWoundWait wounds younger conflicting transactions.
	DeadlockWoundWait
	// DeadlockTimeout aborts lock waits after Options.LockTimeout.
	DeadlockTimeout
)

func lockPolicy(p DeadlockPolicy) lock.Policy {
	switch p {
	case DeadlockWoundWait:
		return lock.WoundWait
	case DeadlockTimeout:
		return lock.TimeoutPolicy
	default:
		return lock.Detect
	}
}

// Errors returned by transactions. ErrConflict, ErrDeadlock and
// ErrWounded mean the transaction aborted and may be retried (IsRetryable
// reports this; Update retries automatically).
var (
	ErrNotFound = engine.ErrNotFound
	ErrConflict = engine.ErrConflict
	ErrDeadlock = engine.ErrDeadlock
	ErrWounded  = engine.ErrWounded
	ErrReadOnly = engine.ErrReadOnly
	ErrTxDone   = engine.ErrTxDone
)

// IsRetryable reports whether err is a transient transaction abort.
func IsRetryable(err error) bool { return engine.Retryable(err) }

// Options configures Open.
type Options struct {
	// Protocol selects the read-write concurrency control.
	Protocol Protocol
	// VisibilityMode selects how completed transactions become visible:
	// the strict per-transaction drain (default) or the decentralized
	// epoch watermark. See the VisibilityMode constants.
	VisibilityMode VisibilityMode
	// DeadlockPolicy applies to TwoPhaseLocking.
	DeadlockPolicy DeadlockPolicy
	// LockTimeout applies to DeadlockTimeout (default 50ms).
	LockTimeout time.Duration
	// Shards sets store sharding (0 = default 64).
	Shards int
	// GCInterval enables background garbage collection of unreachable
	// versions at the given period (0 disables it). When enabled, active
	// read-only snapshots are tracked so no reachable version is ever
	// collected.
	GCInterval time.Duration
	// WALPath enables durability: committed write sets are logged before
	// they become visible, and Open recovers the store from an existing
	// log at this path. Empty disables the log.
	WALPath string
	// SyncEveryCommit fsyncs the log on every commit (slower, safest).
	// Without it the log is flushed by the OS and on Close.
	SyncEveryCommit bool
	// GroupCommit enables group commit: commits enqueue their log record
	// and block until a shared background fsync covers it, so one fsync
	// acknowledges many concurrent commits. Durability on Commit return is
	// identical to SyncEveryCommit; only the fsync count differs. Takes
	// precedence over SyncEveryCommit.
	GroupCommit bool
	// GroupCommitMaxRecords caps how many commit records one fsync batch
	// gathers (0 = wal.DefaultBatchMaxRecords).
	GroupCommitMaxRecords int
	// GroupCommitMaxDelay is how long the flusher lingers for more
	// committers before fsyncing a non-full batch (0 = fsync as soon as
	// the flusher wakes; latency-optimal, still amortizes under load).
	GroupCommitMaxDelay time.Duration
	// LockStripes sets the 2PL lock table's stripe count, rounded up to a
	// power of two (0 = default 32, 1 = a single global table).
	LockStripes int
	// MaxUpdateRetries bounds Update's automatic retries (default 100).
	MaxUpdateRetries int
	// AdaptiveCC, when set, ignores Protocol and runs read-write
	// transactions under an adaptive scheme: optimistic while conflicts
	// are rare, two-phase locking when the windowed conflict rate crosses
	// a high-water mark, switching behind a brief epoch barrier that
	// never affects read-only transactions. (The kind of experimentation
	// the paper's modularity enables, Section 1.)
	AdaptiveCC bool
	// DebugAddr, when non-empty, serves live observability over HTTP on
	// that address (e.g. "localhost:6060" or ":0" for an ephemeral port;
	// DebugAddr() reports the bound address): GET /debug/mvdb returns the
	// full Stats snapshot plus the recent event trace as JSON, and
	// /debug/vars is the standard expvar endpoint. Setting DebugAddr also
	// enables event tracing (see TraceEvents). Empty — the default —
	// starts no listener and allocates no tracer.
	DebugAddr string
	// TraceEvents enables the in-memory event tracer with a ring buffer
	// of the given capacity (rounded up to a power of two): every
	// begin/read/write/commit/abort/lock-wait/gc event overwrites the
	// oldest. Zero disables tracing unless DebugAddr is set, in which
	// case a default-sized ring (obs.DefaultTraceEvents) is used.
	TraceEvents int
	// Audit enables the online serializability auditor: an asynchronous
	// pipeline that mirrors the engine's event stream into a windowed
	// incremental MVSG and per-transaction latency spans, raising alarms
	// on cycles, history integrity violations, snapshot-read anomalies
	// and version-control counter inversions. The audit path never
	// blocks the engine — when its queue is full, events are dropped and
	// counted. DB.Audit() exposes the live state; with DebugAddr set,
	// GET /debug/mvdb/audit serves it as JSON and /metrics includes the
	// auditor's families. Off — the default — costs nothing.
	Audit bool
	// AuditWindow is the number of committed read-write transactions the
	// auditor keeps in its live MVSG (0 selects audit.DefaultWindow).
	// Larger windows catch longer cycles at proportional memory cost.
	AuditWindow int
	// PhaseTiming enables per-transaction latency attribution: every
	// read-write commit is broken into protocol phases (lock-wait,
	// read, validate, wal-enqueue, fsync-wait, install, visible-wait)
	// with per-protocol histograms in Stats().Phases, the Prometheus
	// endpoint (mvdb_phase_seconds) and /debug/mvdb, plus pprof
	// goroutine labels (mvdb_protocol, mvdb_phase) on the timed spans.
	// Off — the default — leaves the hot paths with a nil test and zero
	// extra allocations.
	PhaseTiming bool
	// TraceSample enables causal per-transaction tracing at the given
	// head-sampling rate in [0, 1]: each sampled read-write transaction
	// records a span tree (one child span per protocol phase, reusing the
	// PhaseTiming taxonomy) plus causal blame edges — which transaction
	// held the lock it waited on, which group-commit batch and leader it
	// fsynced behind, which transaction it queued behind in the
	// version-control drain. Sampled traces land in a bounded recent
	// ring; slow (per-protocol p99 or TraceSlowThreshold), aborted, and
	// alarm-flagged traces are promoted to a tail-retention ring served
	// by DB.TxTraces, /debug/mvdb/traces (JSON or ?format=chrome for
	// chrome://tracing), and flight bundles. Zero — the default — keeps
	// every commit path at a single pointer test with no allocation.
	TraceSample float64
	// TraceSlowThreshold promotes any sampled transaction slower than
	// this outright, before the per-protocol p99 estimate has warmed up
	// (0 = rely on p99 and aborts alone).
	TraceSlowThreshold time.Duration
	// FlightDir enables the black-box flight recorder: a background
	// sampler keeps recent Stats history, and on an audit alarm (when
	// Audit is on), a GET of /debug/mvdb/dump (when DebugAddr is set),
	// or an explicit DB.Flight().Trigger call, a self-contained JSON
	// postmortem bundle is written atomically into this directory.
	// Render bundles with `mvinspect -bundle <file>`. Empty — the
	// default — runs no recorder.
	FlightDir string
	// FlightInterval is the flight recorder's background sampling
	// cadence (0 = 1s).
	FlightInterval time.Duration
	// Hotspot enables the contention cartographer: a lock-free sampling
	// profiler that keeps heavy-hitter sketches of hot keys (reads and
	// writes separately), a per-stripe lock-contention heatmap, conflict
	// pairs (abort cause × key), version-chain-depth and snapshot-age
	// distributions, and — under VisibilityEpoch — per-lane occupancy
	// with watermark-stall attribution. The report appears in
	// Stats().Hotspot, /metrics (mvdb_hotspot_*), flight bundles, and
	// GET /debug/mvdb/hotspot (render live with `mvinspect -hotspots`).
	// Under AdaptiveCC with Health it also feeds the knob controller.
	// Off — the default — keeps every hot-path hook at one pointer test.
	Hotspot bool
	// HotspotTopK is the heavy-hitter sketch capacity — how many hot
	// keys each report ranks (0 = hotspot.DefaultTopK).
	HotspotTopK int
	// HotspotSampleEvery samples one in N key touches into the sketches
	// (0 = hotspot.DefaultSampleEvery; 1 = every touch, for tests).
	HotspotSampleEvery int
	// Health enables the windowed health timeline: a background monitor
	// diffs Stats every HealthInterval into per-interval rates, interval
	// commit-latency percentiles and gauges, retained in bounded
	// multi-resolution rings (hours of history in fixed memory), and
	// evaluates HealthSLOs over them with fast/slow burn-rate windows.
	// SLO breaches promote recent traces, trigger a flight bundle (with
	// FlightDir), append EvHealth events to the trace ring, and — under
	// AdaptiveCC — drive the protocol switcher. DB.Health() exposes the
	// monitor; with DebugAddr set, GET /debug/mvdb/health serves the
	// timeline (add ?format=sparkline for an ASCII dashboard) and
	// /metrics gains the mvdb_health_* families. Off — the default —
	// keeps every commit path at a single pointer test.
	Health bool
	// HealthInterval is the monitor's base sampling period (0 = 1s).
	HealthInterval time.Duration
	// HealthSLOs are the objectives the monitor evaluates. Empty selects
	// a conservative default set (commit p99, abort fraction, visibility
	// lag) with generous ceilings.
	HealthSLOs []HealthSLO
	// FS, when non-nil, routes every durability-path file operation
	// (WAL, snapshots, compaction) through the given filesystem — the
	// fault-injection harness's hook. Nil selects the real filesystem.
	FS faultfs.FS
}

// Stats is the typed observability snapshot returned by DB.Stats: every
// lifecycle counter (commits and begins split by class, aborts by
// cause, retries), the lock, WAL and GC substrate counters, and the
// paper's version-control gauges (tnc, vtnc, visibility lag, VCQueue
// depth). Map() flattens it to the legacy flat counter vocabulary.
type Stats = obs.Snapshot

// TraceEvent is one entry of the event trace ring (see
// Options.TraceEvents and DB.Trace).
type TraceEvent = obs.Event

// Auditor is the online serializability auditor (see Options.Audit).
type Auditor = audit.Auditor

// AuditSnapshot is the auditor's point-in-time state.
type AuditSnapshot = audit.Snapshot

// AuditAlarm is one anomaly the auditor detected.
type AuditAlarm = audit.Alarm

// Flight is the black-box flight recorder (see Options.FlightDir).
type Flight = flight.Recorder

// FlightBundle is one postmortem bundle document.
type FlightBundle = flight.Bundle

// TxTrace is one recorded causal transaction trace: a span tree over the
// protocol phases plus blame edges naming what the transaction actually
// waited on (see Options.TraceSample).
type TxTrace = trace.Trace

// TxTracer collects, retains and exports TxTraces.
type TxTracer = trace.Tracer

// TxBlame is one causal blame edge within a TxTrace.
type TxBlame = trace.Blame

// HealthMonitor is the windowed health timeline (see Options.Health).
type HealthMonitor = health.Monitor

// HealthPoint is one interval's digest of engine health.
type HealthPoint = health.Point

// HealthSLO is one declarative objective over a HealthPoint metric.
type HealthSLO = health.SLO

// HealthAlarm is one raised SLO breach.
type HealthAlarm = health.Alarm

// HealthSignal is what the monitor delivers per tick: the new point
// plus any alarms it raised.
type HealthSignal = health.Signal

// DB is an open database.
type DB struct {
	eng       *core.Engine     // underlying engine (read-only paths, GC, stats)
	rw        engine.Engine    // read-write entry point (adaptive wrapper or eng)
	ad        *adaptive.Engine // non-nil when AdaptiveCC
	collector *gc.Collector
	log       *wal.Writer
	tracer    *obs.Tracer       // nil unless DebugAddr/TraceEvents
	spans     *trace.Tracer     // nil unless TraceSample > 0
	auditor   *audit.Auditor    // nil unless Options.Audit
	hot       *hotspot.Profiler // nil unless Options.Hotspot
	flightRec *flight.Recorder  // nil unless Options.FlightDir
	monitor   *health.Monitor   // nil unless Options.Health
	dbg       *obs.DebugServer  // nil unless DebugAddr
	fs        faultfs.FS        // Options.FS (nil = real filesystem)
	walPath   string
	retries   int
	closed    bool
}

// Open creates (or, when Options.WALPath names an existing log, recovers)
// a database.
func Open(opts Options) (*DB, error) {
	// Tracing is allocated only when asked for: with both DebugAddr and
	// TraceEvents zero the tracer stays nil and every trace call in the
	// engine reduces to a nil test.
	var tracer *obs.Tracer
	if opts.TraceEvents > 0 {
		tracer = obs.NewTracer(opts.TraceEvents)
	} else if opts.DebugAddr != "" {
		tracer = obs.NewTracer(obs.DefaultTraceEvents)
	}
	// The span tracer exists before the auditor so alarm hooks can flag
	// in-flight traces for tail retention, and before the engine so the
	// core can hand it to every transaction path.
	var spans *trace.Tracer
	if opts.TraceSample > 0 {
		spans = trace.New(trace.Options{
			Sample: opts.TraceSample,
			SlowNS: opts.TraceSlowThreshold.Nanoseconds(),
			Ring:   tracer,
		})
	}
	// The auditor, when enabled, rides the same recorder plumbing the
	// offline checker uses. It must exist before the engine so core.New
	// (and WAL recovery) can attach it; the version-control gauges it
	// samples are published through an atomic pointer once the engine
	// exists, so the consumer goroutine never races engine construction.
	// The flight recorder is created after the engine (it samples engine
	// state), but the auditor's alarm hook is installed now — so the hook
	// reaches the recorder through an atomic pointer that is published
	// once both exist.
	var flightRec atomic.Pointer[flight.Recorder]
	var auditor *audit.Auditor
	var auditVC atomic.Pointer[vc.Controller]
	if opts.Audit {
		auditor = audit.New(audit.Options{
			Window: opts.AuditWindow,
			OnAlarm: func(al audit.Alarm) {
				// Tail retention: an anomaly promotes the freshest sampled
				// traces before the ring overwrites the evidence.
				spans.PromoteRecent("audit-"+al.Kind, 8)
				if r := flightRec.Load(); r != nil {
					r.TriggerAsync("audit-alarm", al.Kind+": "+al.Message)
				}
			},
			Gauges: func() (tnc, vtnc uint64) {
				c := auditVC.Load()
				if c == nil {
					return 0, 0
				}
				// vtnc before tnc: both only grow, so this order can
				// only under-report vtnc, keeping vtnc <= tnc-1 checks
				// free of false alarms.
				v := (*c).VTNC()
				t := (*c).TNC()
				return t, v
			},
		})
	}
	// The hotspot profiler exists before the engine so core.New can hand
	// it to every transaction path and bind the stripe/VC taps.
	var prof *hotspot.Profiler
	if opts.Hotspot {
		prof = hotspot.New(hotspot.Options{
			TopK:        opts.HotspotTopK,
			SampleEvery: opts.HotspotSampleEvery,
		})
	}
	coreOpts := core.Options{
		Protocol:      coreProtocol(opts.Protocol),
		Visibility:    vcMode(opts.VisibilityMode),
		LockPolicy:    lockPolicy(opts.DeadlockPolicy),
		LockTimeout:   opts.LockTimeout,
		LockStripes:   opts.LockStripes,
		Shards:        opts.Shards,
		TrackReadOnly: opts.GCInterval > 0,
		Trace:         tracer,
		PhaseTiming:   opts.PhaseTiming,
		Traces:        spans,
		Hotspot:       prof,
	}
	if auditor != nil {
		coreOpts.Recorder = auditor
	}
	retries := opts.MaxUpdateRetries
	if retries <= 0 {
		retries = 100
	}

	fail := func(err error) (*DB, error) {
		if auditor != nil {
			auditor.Close()
		}
		return nil, err
	}
	var eng *core.Engine
	var log *wal.Writer
	if opts.WALPath != "" {
		walOpts := wal.Options{Policy: wal.SyncNever}
		switch {
		case opts.GroupCommit:
			walOpts.Policy = wal.SyncBatch
			walOpts.BatchMaxRecords = opts.GroupCommitMaxRecords
			walOpts.BatchMaxDelay = opts.GroupCommitMaxDelay
		case opts.SyncEveryCommit:
			walOpts.Policy = wal.SyncEveryCommit
		}
		recovered, logW, err := core.OpenDurable(opts.WALPath, coreOpts, core.DurableOptions{FS: opts.FS, WAL: walOpts})
		if err != nil {
			return fail(fmt.Errorf("mvdb: recover: %w", err))
		}
		eng, log = recovered, logW
	} else {
		eng = core.New(coreOpts)
	}
	engVC := eng.VC()
	auditVC.Store(&engVC)

	db := &DB{eng: eng, rw: eng, log: log, tracer: tracer, spans: spans, auditor: auditor, hot: prof, fs: opts.FS, walPath: opts.WALPath, retries: retries}
	if opts.AdaptiveCC {
		eng.SetProtocol(core.Optimistic)
		adOpts := adaptive.Options{Ring: tracer}
		// Knob-controller taps: the group-commit WAL and (under epoch
		// visibility) the publisher's coalescing factor. Typed-nil care:
		// an interface holding a nil *wal.Writer is not nil.
		if log != nil && opts.GroupCommit {
			adOpts.WAL = log
		}
		if ec, ok := eng.VC().(*epoch.Controller); ok {
			adOpts.Epoch = ec
		}
		if prof != nil {
			adOpts.Hotspot = prof.Report
		}
		db.ad = adaptive.Wrap(eng, adOpts)
		db.rw = db.ad
	}
	// The collector always exists (CollectGarbage works without background
	// GC); its pass observer feeds the GC counters and trace events. Only
	// a positive GCInterval starts the background loop.
	db.collector = gc.New(eng, opts.GCInterval)
	db.collector.SetOnPass(func(reclaimed int, watermark uint64, elapsed time.Duration) {
		st := eng.Obs()
		st.GCPasses.Inc()
		st.GCReclaimed.Add(int64(reclaimed))
		st.GCBacklog.Record(int64(reclaimed))
		if prof != nil {
			// Snapshot age: how far the GC watermark (the oldest snapshot
			// still pinning versions) trails the visibility horizon.
			if vtnc := eng.VC().VTNC(); vtnc > watermark {
				prof.RecordSnapshotAge(vtnc - watermark)
			} else {
				prof.RecordSnapshotAge(0)
			}
		}
		tracer.Record(obs.Event{
			Type: obs.EvGC, TN: watermark, N: int64(reclaimed), Dur: elapsed.Nanoseconds(),
		})
	})
	db.collector.SetChainObserver(func(depth int) {
		eng.Obs().GCChainDepth.Record(int64(depth))
		prof.RecordChainDepth(depth)
	})
	if opts.GCInterval > 0 {
		db.collector.Start()
	}
	if opts.Health {
		slos := opts.HealthSLOs
		if len(slos) == 0 {
			slos = DefaultHealthSLOs()
		}
		mon, err := health.New(health.Sources{
			Stats: db.Stats,
			AuditAlarms: func() uint64 {
				if auditor == nil {
					return 0
				}
				return auditor.AlarmsTotal()
			},
			TraceDrops: func() uint64 {
				st := spans.Stats() // nil-safe: zero stats without tracing
				return st.DroppedRecent + st.DroppedPromoted
			},
			TraceDropsRecent:   func() uint64 { return spans.Stats().DroppedRecent },
			TraceDropsPromoted: func() uint64 { return spans.Stats().DroppedPromoted },
			AuditQueueDrops: func() uint64 {
				if auditor == nil {
					return 0
				}
				return auditor.Dropped()
			},
			FlightRateLimited: func() uint64 {
				if r := flightRec.Load(); r != nil {
					return r.RateLimited()
				}
				return 0
			},
		}, health.Options{
			Interval: opts.HealthInterval,
			SLOs:     slos,
			Ring:     tracer,
			OnAlarm: func(al health.Alarm) {
				// An SLO breach is an anomaly like an audit alarm: keep
				// the freshest trace evidence and photograph the engine.
				spans.PromoteRecent("slo-"+al.SLO, 8)
				if al.Severity == health.SeverityPage {
					if r := flightRec.Load(); r != nil {
						r.TriggerAsync("slo-"+al.SLO, al.Message)
					}
				}
			},
		})
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("mvdb: health monitor: %w", err)
		}
		db.monitor = mon
		if db.ad != nil {
			// The health timeline becomes the protocol switcher's policy
			// input: its interval abort fraction replaces the internal
			// every-N-completions sampling.
			mon.Subscribe(db.ad.OnHealth)
		}
		mon.Start()
	}
	if opts.FlightDir != "" {
		src := flight.Sources{
			Stats:     db.Stats,
			WaitGraph: eng.LockWaitGraph,
		}
		if tracer != nil {
			src.Trace = tracer.Dump
		}
		if auditor != nil {
			src.Audit = auditor.Snapshot
		}
		if spans != nil {
			src.Traces = func() []trace.Trace {
				// The bundle itself is the anomaly: flag the freshest
				// sampled traces into tail retention before exporting.
				spans.PromoteRecent("flight-trigger", 8)
				return spans.Promoted()
			}
		}
		if db.monitor != nil {
			src.Health = func() []health.Point { return db.monitor.Points(0, 0) }
		}
		if prof != nil {
			src.Hotspot = prof.Report
		}
		rec, err := flight.New(src, flight.Options{Dir: opts.FlightDir, Interval: opts.FlightInterval})
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("mvdb: flight recorder: %w", err)
		}
		db.flightRec = rec
		flightRec.Store(rec)
	}
	if opts.DebugAddr != "" {
		var serveOpts []obs.ServeOption
		if auditor != nil {
			serveOpts = append(serveOpts,
				obs.WithHandler("/debug/mvdb/audit", auditor.HTTPHandler()),
				obs.WithPromExtra(auditor.WriteProm))
		}
		if db.flightRec != nil {
			serveOpts = append(serveOpts,
				obs.WithHandler("/debug/mvdb/dump", db.flightRec.HTTPHandler()))
		}
		if spans != nil {
			serveOpts = append(serveOpts,
				obs.WithHandler("/debug/mvdb/traces", spans.HTTPHandler()))
		}
		if db.monitor != nil {
			serveOpts = append(serveOpts,
				obs.WithHandler("/debug/mvdb/health", db.monitor.HTTPHandler()),
				obs.WithPromExtra(db.monitor.WriteProm))
		}
		if prof != nil {
			serveOpts = append(serveOpts,
				obs.WithHandler("/debug/mvdb/hotspot", prof.HTTPHandler()))
		}
		dbg, err := obs.Serve(opts.DebugAddr, db.Stats, tracer, serveOpts...)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("mvdb: debug server: %w", err)
		}
		db.dbg = dbg
	}
	return db, nil
}

// Close stops background work and flushes the log.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	if db.dbg != nil {
		db.dbg.Close()
	}
	if db.monitor != nil {
		// Before the engine: a tick in flight still has valid sources.
		db.monitor.Stop()
	}
	if db.collector != nil {
		db.collector.Stop()
	}
	if db.flightRec != nil {
		// Before the engine and auditor: no bundle write can then observe
		// half-torn-down sources.
		db.flightRec.Close()
	}
	err := db.eng.Close()
	if db.auditor != nil {
		// After the engine: no more events can be produced, so the
		// auditor's drain-on-close covers the whole run.
		db.auditor.Close()
	}
	if db.log != nil {
		if cerr := db.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Bootstrap loads initial data as the pre-transactional state (version
// 0). It must be called before the first transaction. Note that
// bootstrapped data is NOT logged; for durable initial data, load it with
// Update instead.
func (db *DB) Bootstrap(data map[string][]byte) error {
	return db.eng.Bootstrap(data)
}

// Begin starts a read-write transaction.
func (db *DB) Begin() (*Tx, error) {
	t, err := db.rw.Begin(engine.ReadWrite)
	if err != nil {
		return nil, err
	}
	return db.newTx(t), nil
}

// CurrentProtocol reports the concurrency control currently in force for
// read-write transactions (it only changes under Options.AdaptiveCC).
func (db *DB) CurrentProtocol() string { return db.eng.Protocol().String() }

// BeginReadOnly starts a read-only snapshot transaction (paper Figure 2):
// one counter read, then wait-free reads of the snapshot at that point.
// The snapshot may trail the newest commits by the visibility lag; see
// BeginReadOnlyRecent.
func (db *DB) BeginReadOnly() (*Tx, error) {
	t, err := db.eng.Begin(engine.ReadOnly)
	if err != nil {
		return nil, err
	}
	return db.newTx(t), nil
}

// BeginReadOnlyRecent starts a read-only transaction guaranteed to
// observe everything serialized before this call, waiting out the
// visibility lag if necessary (the paper's Section 6 rectification).
func (db *DB) BeginReadOnlyRecent() (*Tx, error) {
	t, err := db.eng.BeginReadOnlyRecent()
	if err != nil {
		return nil, err
	}
	return db.newTx(t), nil
}

// BeginReadOnlyAt starts a read-only transaction whose snapshot is pinned
// at exactly serialization position sn (waiting if sn is not yet
// visible). Pass the TN of one of your own committed transactions (Tx.TN)
// for read-your-writes, or a historical position for time travel;
// positions older than the garbage-collection watermark read the oldest
// retained versions.
func (db *DB) BeginReadOnlyAt(sn uint64) (*Tx, error) {
	t, err := db.eng.BeginReadOnlyAt(sn)
	if err != nil {
		return nil, err
	}
	return db.newTx(t), nil
}

// View runs fn in a read-only transaction. The transaction commits when
// fn returns nil and aborts otherwise; either way reads are wait-free and
// fn is called exactly once (snapshot reads cannot conflict).
func (db *DB) View(fn func(*Tx) error) error {
	tx, err := db.BeginReadOnly()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Update runs fn in a read-write transaction, retrying automatically when
// the engine aborts it with a retryable conflict (up to
// Options.MaxUpdateRetries attempts). fn must be idempotent per attempt
// and must not keep references to data read in failed attempts.
func (db *DB) Update(fn func(*Tx) error) error {
	var last error
	for attempt := 0; attempt < db.retries; attempt++ {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			if IsRetryable(err) {
				db.eng.Obs().Retries.Inc()
				last = err
				continue
			}
			return err
		}
		err = tx.Commit()
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		db.eng.Obs().Retries.Inc()
		last = err
	}
	return fmt.Errorf("mvdb: update retries exhausted: %w", last)
}

// Stats returns a point-in-time observability snapshot: transaction
// lifecycle counters by class and abort cause, lock/WAL/GC substrate
// counters, and the paper's version-control gauges (TNC, VTNC,
// VisibilityLag, VCQueueLen). The snapshot is internally consistent —
// commits never exceed begins, VTNC < TNC — even while transactions run.
// Use Stats().Map() where the legacy flat counter map is needed.
func (db *DB) Stats() Stats {
	sn := db.eng.Snapshot()
	if db.ad != nil {
		info := &obs.AdaptiveInfo{
			Protocol:           db.eng.Protocol().String(),
			Switches:           int64(db.ad.Switches()),
			HealthSignals:      int64(db.ad.HealthSignals()),
			KnobActions:        int64(db.ad.KnobActions()),
			RecommendedStripes: db.ad.RecommendedStripes(),
		}
		if db.log != nil {
			recs, delay := db.log.BatchKnobs()
			info.BatchMaxRecords = recs
			info.BatchMaxDelayNS = delay.Nanoseconds()
		}
		if ec, ok := db.eng.VC().(*epoch.Controller); ok {
			info.PublishEvery = ec.PublishEvery()
		}
		sn.Adaptive = info
		sn.Extra = map[string]int64{
			"adaptive.switches":            int64(db.ad.Switches()),
			"adaptive.health_signals":      int64(db.ad.HealthSignals()),
			"adaptive.knob_actions":        int64(db.ad.KnobActions()),
			"adaptive.recommended_stripes": int64(db.ad.RecommendedStripes()),
		}
	}
	return sn
}

// Trace returns the retained event trace in order (oldest first), or nil
// when tracing is disabled. The ring holds the most recent
// Options.TraceEvents events; older ones have been overwritten.
func (db *DB) Trace() []TraceEvent { return db.tracer.Dump() }

// TxTraces returns the per-transaction causal trace collector, or nil
// when Options.TraceSample was zero. TxTraces().Promoted() lists the
// tail-retained traces (slow, aborted, flagged); TxTraces().Recent()
// the head-sampled ring. Render one with `mvinspect -trace`.
func (db *DB) TxTraces() *TxTracer { return db.spans }

// Audit returns the online serializability auditor, or nil when
// Options.Audit was off. Auditor.Snapshot() reads the live state;
// Auditor.Drain() waits until everything recorded so far is processed.
func (db *DB) Audit() *Auditor { return db.auditor }

// Flight returns the black-box flight recorder, or nil when
// Options.FlightDir was empty. Flight().Trigger writes a postmortem
// bundle on demand; Flight().LastBundle reports the newest bundle path.
func (db *DB) Flight() *Flight { return db.flightRec }

// Health returns the windowed health monitor, or nil when
// Options.Health was off. Health().Timeline exports the retained
// points; Health().SLOStates the objectives' burn-rate state. Render
// live with `mvinspect -health`.
func (db *DB) Health() *HealthMonitor { return db.monitor }

// HotspotReport is the workload profiler's point-in-time report (see
// Options.Hotspot): ranked hot keys, conflict pairs, the per-stripe
// contention heatmap, chain-depth/snapshot-age distributions, and epoch
// lane occupancy.
type HotspotReport = hotspot.Report

// Hotspots returns the profiler's current report, or nil when
// Options.Hotspot was off. Render live with `mvinspect -hotspots`.
func (db *DB) Hotspots() *HotspotReport { return db.hot.Report() }

// DefaultHealthSLOs is the objective set Options.Health uses when
// Options.HealthSLOs is empty: ceilings generous enough that a healthy
// engine under load never pages, tight enough that a stalled fsync,
// runaway conflict storm, or wedged visibility advance does. The
// visibility-lag ceiling applies under either visibility mode: under
// strict it bounds the drain backlog, under epoch the watermark lag —
// either way a breach means completed work is not becoming visible.
//
// The timeline also carries per-interval observability-loss rates
// (trace_drops_recent, trace_drops_promoted, audit_queue_drops,
// flight_rate_limited) that the default set leaves unguarded. To be
// paged when postmortem evidence is being lost — promoted traces
// overwritten faster than they are read — append an objective like:
//
//	mvdb.HealthSLO{Name: "trace-loss", Metric: "trace_drops_promoted", Max: 0}
func DefaultHealthSLOs() []HealthSLO {
	return []HealthSLO{
		{Name: "commit-p99", Metric: "commit_p99_ns", Max: 250e6},
		{Name: "abort-frac", Metric: "abort_frac", Max: 0.5},
		{Name: "visibility-lag", Metric: "visibility_lag", Max: 4096},
	}
}

// DebugAddr reports the bound address of the debug HTTP server ("" when
// Options.DebugAddr was empty). With Options.DebugAddr ":0" this is how
// the ephemeral port is discovered.
func (db *DB) DebugAddr() string {
	if db.dbg == nil {
		return ""
	}
	return db.dbg.Addr()
}

// CollectGarbage runs one synchronous garbage collection pass and returns
// the number of versions discarded. It works even when background GC is
// disabled; without Options.GCInterval's snapshot tracking it
// conservatively uses only the visibility horizon.
func (db *DB) CollectGarbage() int {
	return db.collector.Collect()
}

// VisibilityLag returns how many assigned serialization positions are not
// yet visible to new read-only transactions (paper Section 6's "lag
// between the two counters").
func (db *DB) VisibilityLag() uint64 { return db.eng.VC().Lag() }

// Tx is a transaction handle. It is not safe for concurrent use.
type Tx struct {
	t engine.Tx
	// Health latency tap: with Options.Health off, h stays nil and the
	// commit path costs one pointer test — no clock read, no histogram.
	h     *health.Monitor
	start time.Time
}

// newTx wraps an engine transaction, arming the health latency tap
// only when the monitor exists.
func (db *DB) newTx(t engine.Tx) *Tx {
	tx := &Tx{t: t}
	if db.monitor != nil {
		tx.h = db.monitor
		tx.start = time.Now()
	}
	return tx
}

// Get returns the value of key, or ErrNotFound.
func (tx *Tx) Get(key string) ([]byte, error) { return tx.t.Get(key) }

// GetString is a convenience wrapper returning the value as a string.
func (tx *Tx) GetString(key string) (string, error) {
	v, err := tx.t.Get(key)
	return string(v), err
}

// Put sets key to value. The value is retained; do not mutate it after.
func (tx *Tx) Put(key string, value []byte) error { return tx.t.Put(key, value) }

// PutString is a convenience wrapper for string values.
func (tx *Tx) PutString(key, value string) error { return tx.t.Put(key, []byte(value)) }

// Delete removes key.
func (tx *Tx) Delete(key string) error { return tx.t.Delete(key) }

// Commit finishes the transaction, making its effects visible in
// serialization order.
func (tx *Tx) Commit() error {
	err := tx.t.Commit()
	if err == nil && tx.h != nil {
		tx.h.ObserveLatency(tx.t.Class() == engine.ReadOnly, time.Since(tx.start))
	}
	return err
}

// Abort discards the transaction. It is safe to call after an operation
// already aborted the transaction, and after Commit (no-op).
func (tx *Tx) Abort() { tx.t.Abort() }

// Scan iterates over every live key with the given prefix in ascending
// key order at the transaction's snapshot (read-only transactions only).
// fn returning false stops the scan early.
func (tx *Tx) Scan(prefix string, fn func(key string, value []byte) bool) error {
	if s, ok := tx.t.(engine.Scanner); ok {
		return s.Scan(prefix, fn)
	}
	return fmt.Errorf("%w: Scan requires a read-only transaction", ErrReadOnly)
}

// ReadOnly reports whether this is a read-only transaction.
func (tx *Tx) ReadOnly() bool { return tx.t.Class() == engine.ReadOnly }

// TN returns the transaction's serialization position: for read-only
// transactions the snapshot number (available immediately); for
// read-write transactions the assigned transaction number (available
// after Commit under 2PL/OCC, at begin under timestamp ordering).
func (tx *Tx) TN() (uint64, bool) { return tx.t.SN() }
