package mvdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/flight"
)

// TestPhaseTimingDisabledZeroOverhead is the O2-style alloc guard for
// the attribution layer: with PhaseTiming off (the default), the timing
// hooks must reduce to nil tests and keep the seed allocation baselines
// — Update at 12 allocs/op and View at 2.
func TestPhaseTimingDisabledZeroOverhead(t *testing.T) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Stats().Phases != nil {
		t.Fatal("Phases non-nil with PhaseTiming off")
	}
	val := []byte("v")
	update := testing.AllocsPerRun(200, func() {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", val)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if update > 12 {
		t.Errorf("Update allocs/op = %.1f with phase timing off, want <= 12 (seed baseline)", update)
	}
	view := testing.AllocsPerRun(200, func() {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
	if view > 2 {
		t.Errorf("View allocs/op = %.1f with phase timing off, want <= 2 (seed baseline)", view)
	}
}

// TestFlightBundleEndToEnd is the acceptance path: a database with
// group commit, phase timing, the debug server and the flight recorder;
// a concurrent workload; then GET /debug/mvdb/dump must produce an
// atomically written bundle whose phase table shows real group-commit
// fsync waiting, and the bundle must render.
func TestFlightBundleEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Protocol:    TwoPhaseLocking,
		WALPath:     filepath.Join(dir, "commit.log"),
		GroupCommit: true,
		PhaseTiming: true,
		DebugAddr:   "127.0.0.1:0",
		FlightDir:   filepath.Join(dir, "flight"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Flight() == nil {
		t.Fatal("Flight() nil with FlightDir set")
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (w+i)%8)
				if err := db.Update(func(tx *Tx) error {
					return tx.Put(key, []byte{byte(i)})
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The live snapshot must already attribute latency per phase, with
	// nonzero fsync waiting under group commit.
	sn := db.Stats()
	if len(sn.Phases) == 0 {
		t.Fatal("no phase summaries with PhaseTiming on")
	}
	var sawFsync, sawLockOrInstall bool
	for _, ph := range sn.Phases {
		if ph.Protocol == "vc+2pl" && ph.Phase == "fsync-wait" && ph.Durations.Count > 0 && ph.Durations.TotalNanoseconds > 0 {
			sawFsync = true
		}
		if ph.Protocol == "vc+2pl" && ph.Phase == "install" && ph.Durations.Count > 0 {
			sawLockOrInstall = true
		}
	}
	if !sawFsync {
		t.Fatalf("no fsync-wait attribution under group commit: %+v", sn.Phases)
	}
	if !sawLockOrInstall {
		t.Fatalf("no install attribution: %+v", sn.Phases)
	}

	// Explicit dump over HTTP.
	resp, err := http.Get("http://" + db.DebugAddr() + "/debug/mvdb/dump")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["bundle"] == "" {
		t.Fatalf("dump returned no bundle path: %v", out)
	}

	b, err := flight.Load(out["bundle"])
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != flight.SchemaVersion || b.Reason != "dump" {
		t.Fatalf("unexpected bundle header: schema=%q reason=%q", b.Schema, b.Reason)
	}
	if len(b.Stats.Phases) == 0 {
		t.Fatal("bundle snapshot lost the phase table")
	}
	if len(b.Ring) == 0 {
		t.Fatal("bundle carries no sampled history")
	}
	if b.WaitGraph == nil {
		t.Fatal("bundle missing the waits-for graph export")
	}
	var sb strings.Builder
	flight.Render(b, &sb)
	for _, want := range []string{"phase attribution", "fsync-wait", "headline counters"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}

	// The Prometheus endpoint carries the per-phase families.
	mresp, err := http.Get("http://" + db.DebugAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), `mvdb_phase_seconds{protocol="vc+2pl",phase="fsync-wait"`) {
		t.Fatalf("/metrics missing phase families:\n%s", body)
	}
}

// TestDebugEndpointsSmoke drives the pprof mux and the dump endpoint
// against a live database — the same checks CI's smoke step performs
// with curl.
func TestDebugEndpointsSmoke(t *testing.T) {
	db, err := Open(Options{
		Protocol:    Optimistic,
		PhaseTiming: true,
		DebugAddr:   "127.0.0.1:0",
		FlightDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(func(tx *Tx) error { return tx.Put("k", []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/profile?seconds=1",
		"/debug/mvdb/dump",
		"/debug/mvdb",
	} {
		resp, err := client.Get("http://" + db.DebugAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
}
