package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mvdb/internal/metrics"
)

// This file renders the observability snapshot in the Prometheus text
// exposition format (version 0.0.4), so a running database is scrapeable
// by standard tooling: GET /metrics on the debug server (Serve) emits
// the full Snapshot plus any registered extras (the audit pipeline's
// gauges and span quantiles).

// PromWriter emits metrics in the Prometheus text format. Label values
// are escaped per the format; the first write error is retained and
// subsequent writes become no-ops.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Header emits the # HELP and # TYPE lines for a metric family. typ is
// "counter", "gauge", "summary" or "untyped".
func (p *PromWriter) Header(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value emits one sample line. labels are name/value pairs
// ("class", "ro", ...) rendered in argument order.
func (p *PromWriter) Value(name string, v float64, labels ...string) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(labels[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, p.err = io.WriteString(p.w, sb.String())
}

// Int emits one integer-valued sample line.
func (p *PromWriter) Int(name string, v int64, labels ...string) {
	p.Value(name, float64(v), labels...)
}

// Summary emits a latency summary as a Prometheus summary family in
// seconds: one quantile line per percentile plus _sum and _count. s is
// in nanoseconds (the repo-wide convention).
func (p *PromWriter) Summary(name string, s metrics.Summary, labels ...string) {
	const nsPerSec = 1e9
	quantile := func(q string, ns int64) {
		p.Value(name, float64(ns)/nsPerSec, append(append([]string{}, labels...), "quantile", q)...)
	}
	quantile("0.5", s.P50)
	quantile("0.9", s.P90)
	quantile("0.99", s.P99)
	p.Value(name+"_sum", float64(s.TotalNanoseconds)/nsPerSec, labels...)
	p.Int(name+"_count", int64(s.Count), labels...)
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm renders the snapshot as Prometheus text-format metrics, all
// under the mvdb_ prefix: lifecycle counters split by class and abort
// cause, the lock/WAL/GC substrate, and the paper's version-control
// gauges (tnc, vtnc, visibility lag, VCQueue depth).
func (sn Snapshot) WriteProm(w io.Writer) error {
	p := NewPromWriter(w)

	p.Header("mvdb_info", "gauge", "Engine identity; the protocol label is the concurrency control in force.")
	p.Int("mvdb_info", 1, "protocol", sn.Protocol)

	p.Header("mvdb_begins_total", "counter", "Transactions begun, by class.")
	p.Int("mvdb_begins_total", sn.BeginsRO, "class", "ro")
	p.Int("mvdb_begins_total", sn.BeginsRW, "class", "rw")
	p.Header("mvdb_commits_total", "counter", "Transactions committed, by class.")
	p.Int("mvdb_commits_total", sn.CommitsRO, "class", "ro")
	p.Int("mvdb_commits_total", sn.CommitsRW, "class", "rw")
	p.Header("mvdb_retries_total", "counter", "Automatic Update retries after retryable aborts.")
	p.Int("mvdb_retries_total", sn.Retries)

	p.Header("mvdb_aborts_total", "counter", "Aborted transactions, by cause.")
	p.Int("mvdb_aborts_total", sn.AbortsConflict, "cause", "conflict")
	p.Int("mvdb_aborts_total", sn.AbortsDeadlock, "cause", "deadlock")
	p.Int("mvdb_aborts_total", sn.AbortsWounded, "cause", "wounded")
	p.Int("mvdb_aborts_total", sn.AbortsTimeout, "cause", "timeout")
	p.Int("mvdb_aborts_total", sn.AbortsUser, "cause", "user")

	p.Header("mvdb_rw_aborts_by_ro_total", "counter", "Read-write aborts attributable to read-only transactions (structurally zero under the paper's engines).")
	p.Int("mvdb_rw_aborts_by_ro_total", sn.RWAbortsByRO)
	p.Header("mvdb_ro_blocked_total", "counter", "Read-only reads that blocked (structurally zero under the paper's engines).")
	p.Int("mvdb_ro_blocked_total", sn.ROBlocked)
	p.Header("mvdb_ro_recency_waits_total", "counter", "Read-only begins that waited out the visibility lag (Section 6 rectification).")
	p.Int("mvdb_ro_recency_waits_total", sn.RecencyWaits)

	p.Header("mvdb_lock_waits_total", "counter", "Lock requests that blocked.")
	p.Int("mvdb_lock_waits_total", sn.LockWaits)
	p.Header("mvdb_lock_deadlocks_total", "counter", "Deadlocks broken by the lock manager.")
	p.Int("mvdb_lock_deadlocks_total", sn.LockDeadlocks)
	p.Header("mvdb_lock_wounds_total", "counter", "Transactions wounded under wound-wait.")
	p.Int("mvdb_lock_wounds_total", sn.LockWounds)
	p.Header("mvdb_lock_timeouts_total", "counter", "Lock waits abandoned by timeout.")
	p.Int("mvdb_lock_timeouts_total", sn.LockTimeouts)
	if sn.LockWait.Count > 0 {
		p.Header("mvdb_lock_wait_seconds", "summary", "Completed lock-wait durations.")
		p.Summary("mvdb_lock_wait_seconds", sn.LockWait)
	}
	p.Header("mvdb_lock_stripes", "gauge", "Lock table stripe count.")
	p.Int("mvdb_lock_stripes", int64(sn.LockStripes))
	p.Header("mvdb_lock_stripe_collisions_total", "counter", "Stripe-mutex acquisitions that found the stripe held.")
	p.Int("mvdb_lock_stripe_collisions_total", sn.LockStripeCollisions)

	p.Header("mvdb_wal_appends_total", "counter", "Commit records appended to the write-ahead log.")
	p.Int("mvdb_wal_appends_total", sn.WALAppends)
	p.Header("mvdb_wal_fsyncs_total", "counter", "Write-ahead log fsyncs.")
	p.Int("mvdb_wal_fsyncs_total", sn.WALFsyncs)
	p.Header("mvdb_wal_bytes_total", "counter", "Bytes appended to the write-ahead log.")
	p.Int("mvdb_wal_bytes_total", sn.WALBytes)
	p.Header("mvdb_wal_batches_total", "counter", "Group-commit flush batches.")
	p.Int("mvdb_wal_batches_total", sn.WALBatches)
	if sn.WALBatchSize.Count > 0 {
		p.Header("mvdb_wal_batch_records", "summary", "Commit records per group-commit batch.")
		p.Value("mvdb_wal_batch_records", float64(sn.WALBatchSize.P50), "quantile", "0.5")
		p.Value("mvdb_wal_batch_records", float64(sn.WALBatchSize.P90), "quantile", "0.9")
		p.Value("mvdb_wal_batch_records", float64(sn.WALBatchSize.P99), "quantile", "0.99")
		p.Int("mvdb_wal_batch_records_sum", sn.WALBatchSize.TotalNanoseconds)
		p.Int("mvdb_wal_batch_records_count", int64(sn.WALBatchSize.Count))
	}
	p.Header("mvdb_wal_fsync_per_append", "gauge", "Fsync amortization ratio (fsyncs/appends; 1.0 without group commit).")
	p.Value("mvdb_wal_fsync_per_append", sn.WALFsyncPerAppend)
	p.Header("mvdb_wal_size_bytes", "gauge", "Current write-ahead log file size (bytes recovery would replay).")
	p.Int("mvdb_wal_size_bytes", sn.WALSizeBytes)

	p.Header("mvdb_checkpoint_last_unix", "gauge", "Unix time of the last completed checkpoint (0 before the first).")
	p.Int("mvdb_checkpoint_last_unix", sn.CheckpointLastUnix)
	p.Header("mvdb_checkpoint_duration_seconds", "gauge", "Duration of the last completed checkpoint.")
	p.Value("mvdb_checkpoint_duration_seconds", sn.CheckpointDurationSeconds)

	p.Header("mvdb_gc_passes_total", "counter", "Garbage collection passes.")
	p.Int("mvdb_gc_passes_total", sn.GCPasses)
	p.Header("mvdb_gc_reclaimed_total", "counter", "Versions reclaimed by garbage collection.")
	p.Int("mvdb_gc_reclaimed_total", sn.GCReclaimed)
	if sn.GCChainDepth.Count > 0 {
		p.Header("mvdb_gc_chain_depth", "summary", "Version-chain length per object as seen by GC passes, before pruning.")
		p.Value("mvdb_gc_chain_depth", float64(sn.GCChainDepth.P50), "quantile", "0.5")
		p.Value("mvdb_gc_chain_depth", float64(sn.GCChainDepth.P90), "quantile", "0.9")
		p.Value("mvdb_gc_chain_depth", float64(sn.GCChainDepth.P99), "quantile", "0.99")
		p.Int("mvdb_gc_chain_depth_sum", sn.GCChainDepth.TotalNanoseconds)
		p.Int("mvdb_gc_chain_depth_count", int64(sn.GCChainDepth.Count))
	}
	if sn.GCBacklog.Count > 0 {
		p.Header("mvdb_gc_backlog", "summary", "Versions reclaimed per GC pass (the backlog each pass found).")
		p.Value("mvdb_gc_backlog", float64(sn.GCBacklog.P50), "quantile", "0.5")
		p.Value("mvdb_gc_backlog", float64(sn.GCBacklog.P90), "quantile", "0.9")
		p.Value("mvdb_gc_backlog", float64(sn.GCBacklog.P99), "quantile", "0.99")
		p.Int("mvdb_gc_backlog_sum", sn.GCBacklog.TotalNanoseconds)
		p.Int("mvdb_gc_backlog_count", int64(sn.GCBacklog.Count))
	}

	p.Header("mvdb_tnc", "gauge", "Transaction number counter (next serialization position).")
	p.Int("mvdb_tnc", int64(sn.TNC))
	p.Header("mvdb_vtnc", "gauge", "Visible transaction number counter.")
	p.Int("mvdb_vtnc", int64(sn.VTNC))
	p.Header("mvdb_visibility_lag", "gauge", "Assigned serialization positions not yet visible (tnc-1-vtnc, paper Section 6).")
	p.Int("mvdb_visibility_lag", int64(sn.VisibilityLag))
	p.Header("mvdb_vc_queue_len", "gauge", "Depth of the version-control queue (strict) or outstanding registrations (epoch).")
	p.Int("mvdb_vc_queue_len", int64(sn.VCQueueLen))
	p.Header("mvdb_visibility_info", "gauge", "Version-control identity; the mode label is the visibility implementation in force.")
	p.Int("mvdb_visibility_info", 1, "mode", sn.VisibilityMode)

	p.Header("mvdb_keys", "gauge", "Live keys in the store.")
	p.Int("mvdb_keys", int64(sn.Keys))
	p.Header("mvdb_versions", "gauge", "Committed versions retained across all keys.")
	p.Int("mvdb_versions", sn.Versions)
	p.Header("mvdb_version_chain_max", "gauge", "Longest per-key version chain.")
	p.Int("mvdb_version_chain_max", int64(sn.MaxVersionChain))
	p.Header("mvdb_version_chain_mean", "gauge", "Mean per-key version chain length.")
	p.Value("mvdb_version_chain_mean", sn.MeanVersionChain)
	p.Header("mvdb_store_waits_total", "counter", "Reads that waited on the version store.")
	p.Int("mvdb_store_waits_total", sn.StoreWaits)

	if len(sn.Phases) > 0 {
		p.Header("mvdb_phase_seconds", "summary", "Per-transaction latency attribution by protocol and phase.")
		for _, ph := range sn.Phases {
			p.Summary("mvdb_phase_seconds", ph.Durations, "protocol", ph.Protocol, "phase", ph.Phase)
		}
		p.Header("mvdb_phase_slowest_tx", "gauge", "Transaction id of the slowest sample per (protocol, phase) — the trace-ring exemplar.")
		for _, ph := range sn.Phases {
			if ph.SlowestTx != 0 {
				p.Int("mvdb_phase_slowest_tx", int64(ph.SlowestTx), "protocol", ph.Protocol, "phase", ph.Phase)
			}
		}
	}

	if h := sn.Hotspot; h != nil {
		p.Header("mvdb_hotspot_touches_total", "counter", "Key touches observed by the workload profiler, by outcome (sampled updated a sketch, shed lost the non-blocking race, total counts every touch).")
		p.Int("mvdb_hotspot_touches_total", int64(h.Touches), "outcome", "total")
		p.Int("mvdb_hotspot_touches_total", int64(h.Sampled), "outcome", "sampled")
		p.Int("mvdb_hotspot_touches_total", int64(h.Shed), "outcome", "shed")
		p.Header("mvdb_hotspot_sample_every", "gauge", "Profiler sampling period (1 in N key touches).")
		p.Int("mvdb_hotspot_sample_every", int64(h.SampleEvery))
		if len(h.HotReads) > 0 || len(h.HotWrites) > 0 {
			p.Header("mvdb_hotspot_key_touches", "gauge", "Space-Saving sketch counts for the hottest keys, by operation (overestimates by at most the sketch error).")
			for _, hk := range h.HotReads {
				p.Int("mvdb_hotspot_key_touches", int64(hk.Count), "op", "read", "key", hk.Key)
			}
			for _, hk := range h.HotWrites {
				p.Int("mvdb_hotspot_key_touches", int64(hk.Count), "op", "write", "key", hk.Key)
			}
		}
		if len(h.Conflicts) > 0 {
			p.Header("mvdb_hotspot_conflicts", "gauge", "Abort-cause × key conflict sketch counts.")
			for _, c := range h.Conflicts {
				p.Int("mvdb_hotspot_conflicts", int64(c.Count), "cause", c.Cause, "key", c.Key)
			}
		}
		if len(h.Stripes) > 0 {
			p.Header("mvdb_hotspot_stripe_waits_total", "counter", "Lock waits attributed to each active stripe.")
			p.Header("mvdb_hotspot_stripe_wait_seconds_total", "counter", "Lock wait time attributed to each active stripe.")
			p.Header("mvdb_hotspot_stripe_wounds_total", "counter", "Wound-wait victims attributed to each active stripe.")
			p.Header("mvdb_hotspot_stripe_hold_seconds_total", "counter", "Lock hold time attributed to each active stripe.")
			for _, s := range h.Stripes {
				stripe := strconv.Itoa(s.Stripe)
				p.Int("mvdb_hotspot_stripe_waits_total", s.Waits, "stripe", stripe)
				p.Value("mvdb_hotspot_stripe_wait_seconds_total", float64(s.WaitNanos)/1e9, "stripe", stripe)
				p.Int("mvdb_hotspot_stripe_wounds_total", s.Wounds, "stripe", stripe)
				p.Value("mvdb_hotspot_stripe_hold_seconds_total", float64(s.HoldNanos)/1e9, "stripe", stripe)
			}
		}
		if h.ChainDepth.Count > 0 {
			p.Header("mvdb_hotspot_chain_depth", "summary", "Version-chain depth distribution observed at GC passes (count-valued).")
			p.Value("mvdb_hotspot_chain_depth", float64(h.ChainDepth.P50), "quantile", "0.5")
			p.Value("mvdb_hotspot_chain_depth", float64(h.ChainDepth.P90), "quantile", "0.9")
			p.Value("mvdb_hotspot_chain_depth", float64(h.ChainDepth.P99), "quantile", "0.99")
			p.Int("mvdb_hotspot_chain_depth_sum", h.ChainDepth.TotalNanoseconds)
			p.Int("mvdb_hotspot_chain_depth_count", int64(h.ChainDepth.Count))
		}
		if h.SnapshotAge.Count > 0 {
			p.Header("mvdb_hotspot_snapshot_age", "summary", "GC watermark distance behind the visibility horizon at each pass, in transactions (count-valued).")
			p.Value("mvdb_hotspot_snapshot_age", float64(h.SnapshotAge.P50), "quantile", "0.5")
			p.Value("mvdb_hotspot_snapshot_age", float64(h.SnapshotAge.P90), "quantile", "0.9")
			p.Value("mvdb_hotspot_snapshot_age", float64(h.SnapshotAge.P99), "quantile", "0.99")
			p.Int("mvdb_hotspot_snapshot_age_sum", h.SnapshotAge.TotalNanoseconds)
			p.Int("mvdb_hotspot_snapshot_age_count", int64(h.SnapshotAge.Count))
		}
		if len(h.Lanes) > 0 {
			p.Header("mvdb_hotspot_lane_frontier", "gauge", "Epoch-lane completion frontiers (the minimum lane holds the watermark back).")
			for i, f := range h.Lanes {
				p.Int("mvdb_hotspot_lane_frontier", int64(f), "lane", strconv.Itoa(i))
			}
			p.Header("mvdb_hotspot_stall_lane", "gauge", "The lane currently stalling the epoch watermark (-1 when unknown).")
			p.Int("mvdb_hotspot_stall_lane", int64(h.StallLane))
		}
	}

	if a := sn.Adaptive; a != nil {
		p.Header("mvdb_adaptive_info", "gauge", "Adaptive controller identity; the protocol label is the concurrency control in force.")
		p.Int("mvdb_adaptive_info", 1, "protocol", a.Protocol)
		p.Header("mvdb_adaptive_switches_total", "counter", "Protocol switches taken by the adaptive controller.")
		p.Int("mvdb_adaptive_switches_total", a.Switches)
		p.Header("mvdb_adaptive_health_signals_total", "counter", "Health signals consumed by the adaptive controller.")
		p.Int("mvdb_adaptive_health_signals_total", a.HealthSignals)
		p.Header("mvdb_adaptive_knob_actions_total", "counter", "Online knob adjustments taken by the adaptive controller.")
		p.Int("mvdb_adaptive_knob_actions_total", a.KnobActions)
		p.Header("mvdb_adaptive_batch_max_records", "gauge", "Current WAL group-commit gather bound in records (0 when the WAL knob is not wired).")
		p.Int("mvdb_adaptive_batch_max_records", int64(a.BatchMaxRecords))
		p.Header("mvdb_adaptive_batch_max_delay_seconds", "gauge", "Current WAL group-commit gather delay (0 when unset).")
		p.Value("mvdb_adaptive_batch_max_delay_seconds", float64(a.BatchMaxDelayNS)/1e9)
		p.Header("mvdb_adaptive_publish_every", "gauge", "Current epoch publish-coalescing factor (0 when the epoch knob is not wired).")
		p.Int("mvdb_adaptive_publish_every", int64(a.PublishEvery))
		p.Header("mvdb_adaptive_recommended_stripes", "gauge", "Lock-stripe count the controller recommends for the next boot (0 = no recommendation).")
		p.Int("mvdb_adaptive_recommended_stripes", int64(a.RecommendedStripes))
	}

	p.Header("mvdb_build_info", "gauge", "Process build identity (constant 1; identity in labels).")
	p.Int("mvdb_build_info", 1, "go_version", sn.GoVersion, "revision", sn.BuildRevision)
	p.Header("mvdb_goroutines", "gauge", "Live goroutines in the process.")
	p.Int("mvdb_goroutines", int64(sn.Goroutines))
	p.Header("mvdb_gomaxprocs", "gauge", "GOMAXPROCS in force.")
	p.Int("mvdb_gomaxprocs", int64(sn.GOMAXPROCS))
	p.Header("mvdb_uptime_seconds", "gauge", "Seconds since the stats registry was created (engine open).")
	p.Value("mvdb_uptime_seconds", sn.UptimeSeconds)

	if len(sn.Extra) > 0 {
		p.Header("mvdb_extra", "untyped", "Engine-specific counters without a typed field.")
		for _, k := range sortedKeys(sn.Extra) {
			p.Int("mvdb_extra", sn.Extra[k], "name", k)
		}
	}
	return p.Err()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
