package obs

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"mvdb/internal/metrics"
)

// checkPromText validates the Prometheus text exposition format at the
// level a scraper cares about: every non-comment line is
// "name[{labels}] value" with a parseable float value, and every sample
// is preceded by a # TYPE for its family.
func checkPromText(t *testing.T, out string) {
	t.Helper()
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Fatalf("sample %q has no # TYPE header", line)
		}
	}
}

func TestSnapshotWriteProm(t *testing.T) {
	s := NewStats()
	s.BeginsRO.Add(7)
	s.BeginsRW.Add(5)
	s.CommitsRO.Add(6)
	s.CommitsRW.Add(4)
	s.AbortsConflict.Add(2)
	s.LockWaitNanos.Record(1_000_000)
	sn := s.Snapshot()
	sn.Protocol = "vc+2pl"
	sn.TNC, sn.VTNC, sn.VisibilityLag = 10, 8, 1
	sn.Extra = map[string]int64{"adaptive.switches": 3, `odd"name`: 1}

	var sb strings.Builder
	if err := sn.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromText(t, out)
	for _, want := range []string{
		`mvdb_info{protocol="vc+2pl"} 1`,
		`mvdb_commits_total{class="ro"} 6`,
		`mvdb_commits_total{class="rw"} 4`,
		`mvdb_aborts_total{cause="conflict"} 2`,
		"mvdb_tnc 10",
		"mvdb_vtnc 8",
		"mvdb_visibility_lag 1",
		`mvdb_lock_wait_seconds{quantile="0.99"}`,
		"mvdb_lock_wait_seconds_count 1",
		`mvdb_extra{name="adaptive.switches"} 3`,
		`mvdb_extra{name="odd\"name"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Value("m", 1.5, "k", "a\\b\"c\nd")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `m{k="a\\b\"c\nd"} 1.5` + "\n"
	if sb.String() != want {
		t.Fatalf("escaped line = %q, want %q", sb.String(), want)
	}
}

func TestPromWriterSummary(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Summary("lat_seconds", metrics.Summary{Count: 2, P50: 1e9, P90: 2e9, P99: 3e9, TotalNanoseconds: 4e9}, "class", "rw")
	out := sb.String()
	for _, want := range []string{
		`lat_seconds{class="rw",quantile="0.5"} 1`,
		`lat_seconds{class="rw",quantile="0.99"} 3`,
		`lat_seconds_sum{class="rw"} 4`,
		`lat_seconds_count{class="rw"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// The /metrics endpoint serves the snapshot plus registered extras with
// the Prometheus content type, and WithHandler mounts extra routes.
func TestServeMetricsEndpoint(t *testing.T) {
	s := NewStats()
	s.CommitsRW.Add(3)
	s.BeginsRW.Add(3)
	srv, err := Serve("127.0.0.1:0", func() Snapshot {
		sn := s.Snapshot()
		sn.Protocol = "vc+to"
		return sn
	}, nil,
		WithPromExtra(func(w io.Writer) {
			io.WriteString(w, "# TYPE extra_metric gauge\nextra_metric 42\n")
		}),
		WithHandler("/debug/mvdb/custom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "custom-ok")
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	checkPromText(t, out)
	for _, want := range []string{
		`mvdb_commits_total{class="rw"} 3`,
		"extra_metric 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}

	resp2, err := http.Get("http://" + srv.Addr() + "/debug/mvdb/custom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got, _ := io.ReadAll(resp2.Body)
	if string(got) != "custom-ok" {
		t.Fatalf("custom handler = %q", got)
	}
}
