package obs

import (
	"io"
	"net/http"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mvdb/internal/hotspot"
	"mvdb/internal/metrics"
)

// checkPromText validates the Prometheus text exposition format at the
// level a scraper cares about: every non-comment line is
// "name[{labels}] value" with a parseable float value, and every sample
// is preceded by a # TYPE for its family.
func checkPromText(t *testing.T, out string) {
	t.Helper()
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Fatalf("sample %q has no # TYPE header", line)
		}
	}
}

func TestSnapshotWriteProm(t *testing.T) {
	s := NewStats()
	s.BeginsRO.Add(7)
	s.BeginsRW.Add(5)
	s.CommitsRO.Add(6)
	s.CommitsRW.Add(4)
	s.AbortsConflict.Add(2)
	s.LockWaitNanos.Record(1_000_000)
	sn := s.Snapshot()
	sn.Protocol = "vc+2pl"
	sn.TNC, sn.VTNC, sn.VisibilityLag = 10, 8, 1
	sn.Extra = map[string]int64{"adaptive.switches": 3, `odd"name`: 1}

	var sb strings.Builder
	if err := sn.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromText(t, out)
	for _, want := range []string{
		`mvdb_info{protocol="vc+2pl"} 1`,
		`mvdb_commits_total{class="ro"} 6`,
		`mvdb_commits_total{class="rw"} 4`,
		`mvdb_aborts_total{cause="conflict"} 2`,
		"mvdb_tnc 10",
		"mvdb_vtnc 8",
		"mvdb_visibility_lag 1",
		`mvdb_lock_wait_seconds{quantile="0.99"}`,
		"mvdb_lock_wait_seconds_count 1",
		`mvdb_extra{name="adaptive.switches"} 3`,
		`mvdb_extra{name="odd\"name"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Value("m", 1.5, "k", "a\\b\"c\nd")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `m{k="a\\b\"c\nd"} 1.5` + "\n"
	if sb.String() != want {
		t.Fatalf("escaped line = %q, want %q", sb.String(), want)
	}
}

func TestPromWriterSummary(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Summary("lat_seconds", metrics.Summary{Count: 2, P50: 1e9, P90: 2e9, P99: 3e9, TotalNanoseconds: 4e9}, "class", "rw")
	out := sb.String()
	for _, want := range []string{
		`lat_seconds{class="rw",quantile="0.5"} 1`,
		`lat_seconds{class="rw",quantile="0.99"} 3`,
		`lat_seconds_sum{class="rw"} 4`,
		`lat_seconds_count{class="rw"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// The /metrics endpoint serves the snapshot plus registered extras with
// the Prometheus content type, and WithHandler mounts extra routes.
func TestServeMetricsEndpoint(t *testing.T) {
	s := NewStats()
	s.CommitsRW.Add(3)
	s.BeginsRW.Add(3)
	srv, err := Serve("127.0.0.1:0", func() Snapshot {
		sn := s.Snapshot()
		sn.Protocol = "vc+to"
		return sn
	}, nil,
		WithPromExtra(func(w io.Writer) {
			io.WriteString(w, "# TYPE extra_metric gauge\nextra_metric 42\n")
		}),
		WithHandler("/debug/mvdb/custom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "custom-ok")
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	checkPromText(t, out)
	for _, want := range []string{
		`mvdb_commits_total{class="rw"} 3`,
		"extra_metric 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}

	resp2, err := http.Get("http://" + srv.Addr() + "/debug/mvdb/custom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	got, _ := io.ReadAll(resp2.Body)
	if string(got) != "custom-ok" {
		t.Fatalf("custom handler = %q", got)
	}
}

// TestWritePromCompleteness is the exposition-completeness gate: every
// field of the Stats registry and the Snapshot document must surface in
// WriteProm under a known, valid metric family. A field added to either
// struct without a family mapping here (and an emission in WriteProm)
// fails the test by name, so new counters cannot silently skip the
// /metrics endpoint.
func TestWritePromCompleteness(t *testing.T) {
	// field name (Stats or Snapshot) -> Prometheus family it feeds.
	families := map[string]string{
		"Protocol":                  "mvdb_info",
		"BeginsRO":                  "mvdb_begins_total",
		"BeginsRW":                  "mvdb_begins_total",
		"CommitsRO":                 "mvdb_commits_total",
		"CommitsRW":                 "mvdb_commits_total",
		"Retries":                   "mvdb_retries_total",
		"AbortsConflict":            "mvdb_aborts_total",
		"AbortsDeadlock":            "mvdb_aborts_total",
		"AbortsWounded":             "mvdb_aborts_total",
		"AbortsTimeout":             "mvdb_aborts_total",
		"AbortsUser":                "mvdb_aborts_total",
		"RWAbortsByRO":              "mvdb_rw_aborts_by_ro_total",
		"ROBlocked":                 "mvdb_ro_blocked_total",
		"RecencyWaits":              "mvdb_ro_recency_waits_total",
		"LockWaits":                 "mvdb_lock_waits_total",
		"LockDeadlocks":             "mvdb_lock_deadlocks_total",
		"LockWounds":                "mvdb_lock_wounds_total",
		"LockTimeouts":              "mvdb_lock_timeouts_total",
		"LockWait":                  "mvdb_lock_wait_seconds",
		"LockWaitNanos":             "mvdb_lock_wait_seconds",
		"LockStripes":               "mvdb_lock_stripes",
		"LockStripeCollisions":      "mvdb_lock_stripe_collisions_total",
		"WALAppends":                "mvdb_wal_appends_total",
		"WALFsyncs":                 "mvdb_wal_fsyncs_total",
		"WALBytes":                  "mvdb_wal_bytes_total",
		"WALBatches":                "mvdb_wal_batches_total",
		"WALBatchSize":              "mvdb_wal_batch_records",
		"WALFsyncPerAppend":         "mvdb_wal_fsync_per_append",
		"WALSizeBytes":              "mvdb_wal_size_bytes",
		"CheckpointLastUnixNanos":   "mvdb_checkpoint_last_unix",
		"CheckpointDurationNanos":   "mvdb_checkpoint_duration_seconds",
		"CheckpointLastUnix":        "mvdb_checkpoint_last_unix",
		"CheckpointDurationSeconds": "mvdb_checkpoint_duration_seconds",
		"GCPasses":                  "mvdb_gc_passes_total",
		"GCReclaimed":               "mvdb_gc_reclaimed_total",
		"GCChainDepth":              "mvdb_gc_chain_depth",
		"GCBacklog":                 "mvdb_gc_backlog",
		"VisibilityMode":            "mvdb_visibility_info",
		"TNC":                       "mvdb_tnc",
		"VTNC":                      "mvdb_vtnc",
		"VisibilityLag":             "mvdb_visibility_lag",
		"VCQueueLen":                "mvdb_vc_queue_len",
		"Keys":                      "mvdb_keys",
		"Versions":                  "mvdb_versions",
		"MaxVersionChain":           "mvdb_version_chain_max",
		"MeanVersionChain":          "mvdb_version_chain_mean",
		"StoreWaits":                "mvdb_store_waits_total",
		"Phases":                    "mvdb_phase_seconds",
		"Hotspot":                   "mvdb_hotspot_touches_total",
		"Adaptive":                  "mvdb_adaptive_info",
		"Goroutines":                "mvdb_goroutines",
		"GOMAXPROCS":                "mvdb_gomaxprocs",
		"UptimeSeconds":             "mvdb_uptime_seconds",
		"GoVersion":                 "mvdb_build_info",
		"BuildRevision":             "mvdb_build_info",
		"Extra":                     "mvdb_extra",
	}

	// Populate the live registry so no conditional family is skipped.
	s := NewStats()
	sv := reflect.ValueOf(s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Type().Field(i)
		if !f.IsExported() {
			continue // internal plumbing (e.g. the uptime epoch), not a metric
		}
		if _, ok := families[f.Name]; !ok {
			t.Errorf("Stats.%s has no Prometheus family mapping; export it in WriteProm and add it here", f.Name)
			continue
		}
		switch v := sv.Field(i).Addr().Interface().(type) {
		case *Counter:
			v.Add(3)
		case *Gauge:
			v.Set(3)
		case **metrics.Histogram:
			(*v).Record(1_000_000)
		default:
			t.Errorf("Stats.%s: unhandled field type %s", f.Name, f.Type)
		}
	}

	sn := s.Snapshot()
	// Fill every remaining Snapshot field nonzero so value-gated
	// families (summaries, phases, extras) all emit.
	nv := reflect.ValueOf(&sn).Elem()
	for i := 0; i < nv.NumField(); i++ {
		f := nv.Type().Field(i)
		if _, ok := families[f.Name]; !ok {
			t.Errorf("Snapshot.%s has no Prometheus family mapping; export it in WriteProm and add it here", f.Name)
			continue
		}
		fv := nv.Field(i)
		switch {
		case f.Type.Kind() == reflect.String:
			fv.SetString("vc+2pl")
		case f.Type == reflect.TypeOf(metrics.Summary{}):
			fv.Set(reflect.ValueOf(metrics.Summary{Count: 2, Mean: 5, P50: 4, P90: 6, P99: 8, Max: 9, TotalNanoseconds: 10}))
		case f.Type == reflect.TypeOf([]PhaseSummary(nil)):
			fv.Set(reflect.ValueOf([]PhaseSummary{{
				Protocol:  "vc+2pl",
				Phase:     "fsync-wait",
				Durations: metrics.Summary{Count: 1, P50: 1, P99: 1, Max: 1, TotalNanoseconds: 1},
				SlowestTx: 42,
			}}))
		case f.Type == reflect.TypeOf(map[string]int64(nil)):
			fv.Set(reflect.ValueOf(map[string]int64{"adaptive.switches": 1}))
		case f.Type == reflect.TypeOf((*hotspot.Report)(nil)):
			fv.Set(reflect.ValueOf(&hotspot.Report{
				Enabled:     true,
				TopK:        4,
				SampleEvery: 1,
				Touches:     10,
				Sampled:     9,
				Shed:        1,
				HotReads:    []hotspot.HotKey{{Key: "r", Count: 5}},
				HotWrites:   []hotspot.HotKey{{Key: "w", Count: 6, Err: 1}},
				Conflicts:   []hotspot.HotPair{{Cause: "deadlock", Key: "w", Count: 2}},
				Stripes:     []hotspot.StripeHeat{{Stripe: 1, Waits: 3, WaitNanos: 1e6, Wounds: 1, HoldNanos: 2e6}},
				ChainDepth:  metrics.Summary{Count: 1, P50: 2, P99: 2, Max: 2, TotalNanoseconds: 2},
				SnapshotAge: metrics.Summary{Count: 1, P50: 3, P99: 3, Max: 3, TotalNanoseconds: 3},
				Lanes:       []uint64{4, 2},
				StallLane:   1,
			}))
		case f.Type == reflect.TypeOf((*AdaptiveInfo)(nil)):
			fv.Set(reflect.ValueOf(&AdaptiveInfo{
				Protocol:           "vc+2pl",
				Switches:           1,
				HealthSignals:      2,
				KnobActions:        3,
				BatchMaxRecords:    128,
				BatchMaxDelayNS:    500_000,
				PublishEvery:       2,
				RecommendedStripes: 64,
			}))
		case fv.CanInt():
			fv.SetInt(7)
		case fv.CanUint():
			fv.SetUint(7)
		case fv.CanFloat():
			fv.SetFloat(0.5)
		default:
			t.Errorf("Snapshot.%s: unhandled field type %s", f.Name, f.Type)
		}
	}

	var sb strings.Builder
	if err := sn.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromText(t, out)

	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	emitted := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if !nameRE.MatchString(name) {
			t.Errorf("invalid metric name %q", name)
		}
		emitted[name] = true
	}
	for field, family := range families {
		if !emitted[family] {
			t.Errorf("family %s (from field %s) missing from exposition:\n%s", family, field, out)
		}
	}
	// The phase exemplar gauge rides the Phases field too.
	if !emitted["mvdb_phase_slowest_tx"] {
		t.Errorf("mvdb_phase_slowest_tx missing from exposition")
	}
	// The hotspot and adaptive sections fan out into sub-families that
	// ride their anchor fields; a populated report must emit them all.
	for _, fam := range []string{
		"mvdb_hotspot_sample_every",
		"mvdb_hotspot_key_touches",
		"mvdb_hotspot_conflicts",
		"mvdb_hotspot_stripe_waits_total",
		"mvdb_hotspot_stripe_wait_seconds_total",
		"mvdb_hotspot_stripe_wounds_total",
		"mvdb_hotspot_stripe_hold_seconds_total",
		"mvdb_hotspot_chain_depth",
		"mvdb_hotspot_snapshot_age",
		"mvdb_hotspot_lane_frontier",
		"mvdb_hotspot_stall_lane",
		"mvdb_adaptive_switches_total",
		"mvdb_adaptive_health_signals_total",
		"mvdb_adaptive_knob_actions_total",
		"mvdb_adaptive_batch_max_records",
		"mvdb_adaptive_batch_max_delay_seconds",
		"mvdb_adaptive_publish_every",
		"mvdb_adaptive_recommended_stripes",
	} {
		if !emitted[fam] {
			t.Errorf("%s missing from exposition", fam)
		}
	}
}
