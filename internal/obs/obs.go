// Package obs is the engine-wide observability layer: a lock-free
// registry of counters and histograms written by every subsystem, an
// internally consistent Snapshot of that registry plus the
// version-control and storage gauges (the payload of the public
// db.Stats() API and the /debug/mvdb endpoint), a bounded ring-buffer
// event tracer fed through a production engine.Recorder, and the HTTP
// debug server that exposes all of it.
//
// The paper's whole argument is about where synchronization cost lives:
// the version control module's visibility lag (tnc - vtnc, Section 6),
// the concurrency-control protocol's abort and block behavior, and the
// read-only fast path that never touches either. This package makes
// those quantities observable at runtime instead of only inside the
// benchmark harness.
//
// Everything on the record path is a single atomic add (Counter) or a
// lock-free histogram sample, so instrumentation stays on even in
// production; only the event tracer is optional, and a nil *Tracer
// reduces every trace call to a pointer test.
package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/hotspot"
	"mvdb/internal/metrics"
)

// Counter is a lock-free monotonically increasing counter. The zero
// value is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a lock-free last-value gauge (checkpoint timestamps,
// durations — values that are set, not accumulated). The zero value is
// ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Stats is the live counter registry, one per engine. Subsystems write
// to it directly (each write is one atomic add); Snapshot reads it in
// an order that keeps derived invariants true (see Snapshot).
type Stats struct {
	// Transaction lifecycle, split by class — the paper's central
	// distinction. Begin counters are incremented before any commit or
	// abort of the same transaction can be counted.
	BeginsRO  Counter
	BeginsRW  Counter
	CommitsRO Counter
	CommitsRW Counter
	// Retries counts automatic re-executions after retryable aborts
	// (the Update loop at the public API).
	Retries Counter

	// Aborts by cause. Conflict covers timestamp-ordering rejections
	// and failed optimistic validation; Deadlock, Wounded and Timeout
	// are the three 2PL deadlock-policy outcomes; User is an explicit
	// Abort call.
	AbortsConflict Counter
	AbortsDeadlock Counter
	AbortsWounded  Counter
	AbortsTimeout  Counter
	AbortsUser     Counter

	// Paper-claim counters: read-write aborts attributable to read-only
	// transactions, read-only reads that blocked (both structurally
	// zero under the paper's engines — counted so the claim is measured,
	// not assumed), and Section 6 recency waits.
	RWAbortsByRO Counter
	ROBlocked    Counter
	RecencyWaits Counter

	// LockWaitNanos records how long each blocked lock request waited
	// (granted or not); the lock manager's wait observer feeds it.
	LockWaitNanos *metrics.Histogram

	// WALBatchSize records the number of commit records covered by each
	// group-commit fsync (the WAL writer's batch observer feeds it; empty
	// unless the log runs under wal.SyncBatch). The summary's "nanosecond"
	// fields hold record counts here — the histogram is unit-agnostic.
	WALBatchSize *metrics.Histogram

	// Garbage collection: passes run and versions reclaimed.
	GCPasses    Counter
	GCReclaimed Counter

	// GCChainDepth records the version-chain length of each object the
	// collector visits (sampled during GC passes, before pruning): the
	// chain-shape distribution GC exists to keep short. Count-valued,
	// like WALBatchSize.
	GCChainDepth *metrics.Histogram
	// GCBacklog records the versions reclaimed by each GC pass — the
	// backlog of prunable garbage that had accumulated between passes.
	// Count-valued.
	GCBacklog *metrics.Histogram

	// Checkpoint gauges, set by the durable engine on each successful
	// WriteSnapshot: wall-clock completion time (unix nanoseconds) and
	// the pass duration. Zero until the first checkpoint.
	CheckpointLastUnixNanos Gauge
	CheckpointDurationNanos Gauge

	// start anchors the uptime gauge.
	start time.Time
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		LockWaitNanos: metrics.NewHistogram(),
		WALBatchSize:  metrics.NewHistogram(),
		GCChainDepth:  metrics.NewHistogram(),
		GCBacklog:     metrics.NewHistogram(),
		start:         time.Now(),
	}
}

// buildRevision reads the module's VCS revision once (empty outside a
// stamped build, e.g. under `go test`).
var buildRevision = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
})

// Snapshot is a point-in-time view of the registry plus the gauges the
// engine fills in (version control counters, storage shape, lock and
// WAL substrate counters). It is the JSON document served at
// /debug/mvdb and the value returned by the public db.Stats().
type Snapshot struct {
	// Protocol is the concurrency control in force when the snapshot
	// was taken (it changes only under adaptive CC).
	Protocol string `json:"protocol,omitempty"`

	// Commit counters are read before begin counters, so within one
	// snapshot CommitsRO <= BeginsRO and CommitsRW <= BeginsRW even
	// while transactions are in flight.
	CommitsRO int64 `json:"commits_ro"`
	CommitsRW int64 `json:"commits_rw"`
	BeginsRO  int64 `json:"begins_ro"`
	BeginsRW  int64 `json:"begins_rw"`
	Retries   int64 `json:"retries"`

	AbortsConflict int64 `json:"aborts_conflict"`
	AbortsDeadlock int64 `json:"aborts_deadlock"`
	AbortsWounded  int64 `json:"aborts_wounded"`
	AbortsTimeout  int64 `json:"aborts_timeout"`
	AbortsUser     int64 `json:"aborts_user"`
	RWAbortsByRO   int64 `json:"rw_aborts_by_ro"`
	ROBlocked      int64 `json:"ro_blocked"`
	RecencyWaits   int64 `json:"ro_recency_waits"`

	// Lock substrate. LockWaits counts requests that ever blocked
	// (including those still blocked); LockWait summarizes completed
	// waits.
	LockWaits     int64           `json:"lock_waits"`
	LockDeadlocks int64           `json:"lock_deadlocks"`
	LockWounds    int64           `json:"lock_wounds"`
	LockTimeouts  int64           `json:"lock_timeouts"`
	LockWait      metrics.Summary `json:"lock_wait"`
	// LockStripes is the lock table's stripe count; LockStripeCollisions
	// counts stripe-mutex acquisitions that found the stripe already held
	// (a cheap contention signal — zero under one thread, growing with
	// concurrent traffic on colliding keys).
	LockStripes          int   `json:"lock_stripes"`
	LockStripeCollisions int64 `json:"lock_stripe_collisions"`

	// Write-ahead log volume (zero when durability is off). WALBatches
	// counts group-commit flush batches, WALBatchSize summarizes records
	// per batch (count-valued, not nanoseconds), and WALFsyncPerAppend is
	// the amortization ratio fsyncs/appends — 1.0 under SyncEveryCommit,
	// approaching 1/batch-size under SyncBatch.
	WALAppends        int64           `json:"wal_appends"`
	WALFsyncs         int64           `json:"wal_fsyncs"`
	WALBytes          int64           `json:"wal_bytes"`
	WALBatches        int64           `json:"wal_batches"`
	WALBatchSize      metrics.Summary `json:"wal_batch_size"`
	WALFsyncPerAppend float64         `json:"wal_fsync_per_append"`
	// WALSizeBytes is the log file's current size: the bytes recovery
	// would replay, and (with checkpoint age) the signal that log
	// compaction is overdue. Zero when durability is off.
	WALSizeBytes int64 `json:"wal_size_bytes"`

	// Checkpoint cadence (zero until the first checkpoint): when the
	// last WriteSnapshot completed and how long it took.
	CheckpointLastUnix        int64   `json:"checkpoint_last_unix,omitempty"`
	CheckpointDurationSeconds float64 `json:"checkpoint_duration_seconds,omitempty"`

	GCPasses    int64 `json:"gc_passes"`
	GCReclaimed int64 `json:"gc_reclaimed"`
	// GCChainDepth summarizes version-chain lengths sampled during GC
	// passes and GCBacklog the versions reclaimed per pass; both are
	// count-valued (the summary's nanosecond fields hold counts).
	GCChainDepth metrics.Summary `json:"gc_chain_depth"`
	GCBacklog    metrics.Summary `json:"gc_backlog"`

	// Version control gauges (paper Section 6). VTNC is read before
	// TNC, and both counters only grow, so VTNC < TNC holds in every
	// snapshot. VisibilityMode names the controller implementation
	// ("strict" or "epoch"); VisibilityLag = TNC - 1 - VTNC is the
	// number of assigned serialization positions not yet visible — under
	// strict visibility that is the drain backlog, under epoch
	// visibility the watermark lag (distance from the newest assignment
	// to the published epoch horizon). VCQueueLen is the depth of
	// VCQueue under strict visibility and the outstanding
	// (registered-but-unresolved) count under epoch visibility.
	VisibilityMode string `json:"visibility_mode,omitempty"`
	TNC            uint64 `json:"tnc"`
	VTNC           uint64 `json:"vtnc"`
	VisibilityLag  uint64 `json:"visibility_lag"`
	VCQueueLen     int    `json:"vc_queue_len"`

	// Storage shape: live keys, total committed versions, and the
	// longest/mean version chain (what garbage collection keeps short).
	Keys             int     `json:"keys"`
	Versions         int64   `json:"versions"`
	MaxVersionChain  int     `json:"max_version_chain"`
	MeanVersionChain float64 `json:"mean_version_chain"`
	StoreWaits       int64   `json:"store_waits"`

	// Phases is the per-protocol × per-phase latency attribution
	// matrix (empty unless phase timing is enabled): where each
	// transaction's time went — CC conflict resolution, WAL enqueue vs
	// group-commit fsync wait, version install, register→visible lag.
	Phases []PhaseSummary `json:"phases,omitempty"`

	// Hotspot is the workload profiler's report (nil unless
	// Options.Hotspot): heavy-hitter keys, per-stripe contention heat,
	// conflict pairs, chain-depth/snapshot-age distributions, and
	// epoch-lane occupancy.
	Hotspot *hotspot.Report `json:"hotspot,omitempty"`

	// Adaptive is the adaptive controller's state (nil unless the
	// database runs under AdaptiveCC): protocol switches, health
	// signals consumed, knob actions taken, current knob values, and
	// the recommended stripe count for the next boot.
	Adaptive *AdaptiveInfo `json:"adaptive,omitempty"`

	// Process health: liveness basics for dashboards and the future
	// server binary. UptimeSeconds counts from the engine's stats
	// registry creation; GoVersion/BuildRevision identify the build
	// (revision empty outside VCS-stamped builds).
	Goroutines    int     `json:"goroutines"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version,omitempty"`
	BuildRevision string  `json:"build_revision,omitempty"`

	// Extra carries engine-specific counters with no typed field
	// (adaptive switches, distributed bus traffic, ...).
	Extra map[string]int64 `json:"extra,omitempty"`
}

// AdaptiveInfo is the adaptive engine's typed snapshot section. It is
// defined here rather than in internal/adaptive because adaptive sits
// above core, which sits above obs — the data flows down into the
// snapshot the same way Extra does, but with structure.
type AdaptiveInfo struct {
	// Protocol is the concurrency control currently in force.
	Protocol string `json:"protocol"`
	// Switches counts protocol switches; HealthSignals the health
	// signals consumed; KnobActions the online knob adjustments taken.
	Switches      int64 `json:"switches"`
	HealthSignals int64 `json:"health_signals"`
	KnobActions   int64 `json:"knob_actions"`
	// Current knob values (zero when the corresponding target is not
	// wired): WAL group-commit gather bounds and the epoch
	// publish-coalescing factor.
	BatchMaxRecords int   `json:"batch_max_records,omitempty"`
	BatchMaxDelayNS int64 `json:"batch_max_delay_ns,omitempty"`
	PublishEvery    int   `json:"publish_every,omitempty"`
	// RecommendedStripes is the controller's boot-time advice (0 = no
	// recommendation): the lock-stripe count it would pick given the
	// observed per-stripe skew. Stripes are recommend-only because the
	// stripe table is sized at construction — see DESIGN.md §13.
	RecommendedStripes int `json:"recommended_stripes,omitempty"`
}

// Snapshot reads the registry. Reads are ordered so that a snapshot
// taken mid-commit never reports more commits than begins: the commit
// counters are loaded first, and every transaction increments its begin
// counter before it can increment a commit counter.
func (s *Stats) Snapshot() Snapshot {
	var sn Snapshot
	sn.CommitsRO = s.CommitsRO.Load()
	sn.CommitsRW = s.CommitsRW.Load()
	sn.BeginsRO = s.BeginsRO.Load()
	sn.BeginsRW = s.BeginsRW.Load()
	sn.Retries = s.Retries.Load()
	sn.AbortsConflict = s.AbortsConflict.Load()
	sn.AbortsDeadlock = s.AbortsDeadlock.Load()
	sn.AbortsWounded = s.AbortsWounded.Load()
	sn.AbortsTimeout = s.AbortsTimeout.Load()
	sn.AbortsUser = s.AbortsUser.Load()
	sn.RWAbortsByRO = s.RWAbortsByRO.Load()
	sn.ROBlocked = s.ROBlocked.Load()
	sn.RecencyWaits = s.RecencyWaits.Load()
	sn.LockWait = s.LockWaitNanos.Summarize()
	sn.WALBatchSize = s.WALBatchSize.Summarize()
	sn.GCPasses = s.GCPasses.Load()
	sn.GCReclaimed = s.GCReclaimed.Load()
	sn.GCChainDepth = s.GCChainDepth.Summarize()
	sn.GCBacklog = s.GCBacklog.Summarize()
	if ns := s.CheckpointLastUnixNanos.Load(); ns != 0 {
		sn.CheckpointLastUnix = ns / 1e9
		sn.CheckpointDurationSeconds = float64(s.CheckpointDurationNanos.Load()) / 1e9
	}
	sn.Goroutines = runtime.NumGoroutine()
	sn.GOMAXPROCS = runtime.GOMAXPROCS(0)
	sn.UptimeSeconds = time.Since(s.start).Seconds()
	sn.GoVersion = runtime.Version()
	sn.BuildRevision = buildRevision()
	return sn
}

// AbortsTotal sums every abort cause, user aborts included.
func (sn Snapshot) AbortsTotal() int64 {
	return sn.AbortsConflict + sn.AbortsDeadlock + sn.AbortsWounded +
		sn.AbortsTimeout + sn.AbortsUser
}

// Map flattens the snapshot into the legacy flat counter vocabulary
// used by engine.Engine.Stats and the experiment harness, merging Extra
// last so engine-specific keys win.
func (sn Snapshot) Map() map[string]int64 {
	m := map[string]int64{
		"commits.ro":      sn.CommitsRO,
		"commits.rw":      sn.CommitsRW,
		"begins.ro":       sn.BeginsRO,
		"begins.rw":       sn.BeginsRW,
		"retries":         sn.Retries,
		"aborts.conflict": sn.AbortsConflict,
		"aborts.deadlock": sn.AbortsDeadlock,
		"aborts.wounded":  sn.AbortsWounded,
		"aborts.timeout":  sn.AbortsTimeout,
		"aborts.user":     sn.AbortsUser,
		"rw.aborts.by_ro": sn.RWAbortsByRO,
		"ro.blocked":      sn.ROBlocked,
		"ro.recency_wait": sn.RecencyWaits,
		"lock.waits":      sn.LockWaits,
		"lock.deadlocks":  sn.LockDeadlocks,
		"lock.wounds":     sn.LockWounds,
		"lock.timeouts":   sn.LockTimeouts,
		"lock.stripes":    int64(sn.LockStripes),
		"lock.collisions": sn.LockStripeCollisions,
		"wal.appends":     sn.WALAppends,
		"wal.fsyncs":      sn.WALFsyncs,
		"wal.bytes":       sn.WALBytes,
		"wal.batches":     sn.WALBatches,
		"wal.size":        sn.WALSizeBytes,
		"ckpt.last_unix":  sn.CheckpointLastUnix,
		"ckpt.dur_ms":     int64(sn.CheckpointDurationSeconds * 1000),
		"gc.passes":       sn.GCPasses,
		"gc.pruned":       sn.GCReclaimed,
		"gc.chain.max":    sn.GCChainDepth.Max,
		"gc.backlog.max":  sn.GCBacklog.Max,
		"goroutines":      int64(sn.Goroutines),
		"vc.tnc":          int64(sn.TNC),
		"vc.vtnc":         int64(sn.VTNC),
		"vc.lag":          int64(sn.VisibilityLag),
		"vc.queue":        int64(sn.VCQueueLen),
		"store.keys":      int64(sn.Keys),
		"store.versions":  sn.Versions,
		"store.waits":     sn.StoreWaits,
	}
	for _, ps := range sn.Phases {
		m["phase."+ps.Protocol+"."+ps.Phase+".count"] = int64(ps.Durations.Count)
		m["phase."+ps.Protocol+"."+ps.Phase+".total_ns"] = ps.Durations.TotalNanoseconds
	}
	for k, v := range sn.Extra {
		m[k] = v
	}
	return m
}
