package obs

import (
	"encoding/json"
	"sort"
	"sync/atomic"
	"time"
)

// EventType enumerates traced engine events.
type EventType uint8

const (
	// EvBegin is a transaction begin; Key carries the class.
	EvBegin EventType = iota
	// EvRead is a committed-version read; TN is the version read.
	EvRead
	// EvWrite is a version installation; TN is the version created.
	EvWrite
	// EvCommit is a commit; TN is the serialization number.
	EvCommit
	// EvAbort is an abort (any cause).
	EvAbort
	// EvLockWait is a lock request that blocked; Dur is the wait.
	EvLockWait
	// EvGC is a garbage collection pass; N is versions reclaimed, TN
	// the watermark, Dur the pass duration.
	EvGC
	// EvSnapshot is a read-only transaction pinning its snapshot
	// position; TN is the start number sn.
	EvSnapshot
	// EvPhase is a phase-timing exemplar: a sample that became the
	// slowest its (protocol, phase) cell has seen. Key is
	// "protocol/phase", Tx the transaction, Dur the sample.
	EvPhase
	// EvSpan is a promoted transaction trace: Tx is the transaction, TN
	// its serialization number, Key "protocol/promotion-reason", Dur the
	// trace's begin→visible total, N its span count (internal/trace).
	EvSpan
	// EvBlame is one causal blame edge of a promoted trace: Key is
	// "kind:detail" (blocked-on:key, joined-batch:, queued-behind:), Tx
	// the blamed transaction (lock holder, batch leader, or queue head),
	// Dur the span the edge explains, N the kind-specific magnitude
	// (queue depth, batch records, lock stripe).
	EvBlame
	// EvHealth is a health-layer SLO alarm: Key is "slo/severity"
	// (e.g. "commit-p99/page"), Dur the observed metric value when it is
	// a duration, N the breach count inside the fast window.
	EvHealth
	// EvKnob is an adaptive knob decision: Key is "knob=value"
	// (e.g. "wal.batch_delay=500µs"), N the new numeric value, Dur the
	// previous value when the knob is a duration.
	EvKnob
)

var evNames = [...]string{"begin", "read", "write", "commit", "abort", "lock-wait", "gc", "snapshot", "phase", "span", "blame", "health", "knob"}

func (t EventType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return "unknown"
}

// Event is one traced engine event. Seq and At are stamped by the
// tracer; the remaining fields depend on Type and are omitted from JSON
// when zero.
type Event struct {
	Seq  uint64    `json:"seq"`
	At   int64     `json:"at_ns"` // unix nanoseconds
	Type EventType `json:"-"`
	Tx   uint64    `json:"tx,omitempty"`
	Key  string    `json:"key,omitempty"`
	TN   uint64    `json:"tn,omitempty"`
	Dur  int64     `json:"dur_ns,omitempty"`
	N    int64     `json:"n,omitempty"`
}

// MarshalJSON renders Type as its string name.
func (e Event) MarshalJSON() ([]byte, error) {
	type plain Event
	return json.Marshal(struct {
		Type string `json:"type"`
		plain
	}{e.Type.String(), plain(e)})
}

// UnmarshalJSON is MarshalJSON's inverse (consumers of the debug
// endpoint, e.g. mvinspect -live). Unknown type names decode as the
// zero EventType rather than failing.
func (e *Event) UnmarshalJSON(data []byte) error {
	type plain Event
	var aux struct {
		Type string `json:"type"`
		plain
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*e = Event(aux.plain)
	for i, name := range evNames {
		if name == aux.Type {
			e.Type = EventType(i)
			break
		}
	}
	return nil
}

// Tracer is a bounded lock-free ring buffer of recent events. Writers
// claim a slot with one atomic add and publish the event through an
// atomic pointer, so concurrent Record calls never block each other and
// Dump never observes a half-written event. When the ring is full the
// oldest events are overwritten.
//
// A nil *Tracer is valid and records nothing — call sites need no
// guards, which is what keeps the disabled-tracing cost to a nil test.
type Tracer struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64
}

// DefaultTraceEvents is the ring capacity used when none is given.
const DefaultTraceEvents = 4096

// NewTracer returns a tracer retaining the most recent `size` events,
// rounded up to a power of two (<= 0 selects DefaultTraceEvents).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceEvents
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Tracer{slots: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Record stamps ev with a sequence number and wall-clock time and
// stores it, overwriting the oldest event when the ring is full.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	ev.Seq = t.seq.Add(1)
	ev.At = time.Now().UnixNano()
	t.slots[ev.Seq&t.mask].Store(&ev)
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Seen returns the number of events ever recorded.
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Dump returns the retained events in sequence order. Events recorded
// while Dump runs may or may not appear; every returned event is whole.
func (t *Tracer) Dump() []Event {
	if t == nil {
		return nil
	}
	evs := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			evs = append(evs, *p)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}
