package obs

import "mvdb/internal/engine"

// Recorder is the production engine.Recorder: it forwards the
// transaction lifecycle into a Tracer so a live engine can be asked
// "what happened recently" without a test harness attached. Engines
// combine it with any user-supplied recorder via engine.Multi. With a
// nil tracer every call is a no-op, so the type is safe to attach
// unconditionally.
type Recorder struct{ T *Tracer }

// RecordBegin implements engine.Recorder; the class travels in Key.
func (r Recorder) RecordBegin(txID uint64, class engine.Class) {
	r.T.Record(Event{Type: EvBegin, Tx: txID, Key: class.String()})
}

// RecordRead implements engine.Recorder.
func (r Recorder) RecordRead(txID uint64, key string, versionTN uint64) {
	r.T.Record(Event{Type: EvRead, Tx: txID, Key: key, TN: versionTN})
}

// RecordWrite implements engine.Recorder.
func (r Recorder) RecordWrite(txID uint64, key string, versionTN uint64) {
	r.T.Record(Event{Type: EvWrite, Tx: txID, Key: key, TN: versionTN})
}

// RecordCommit implements engine.Recorder.
func (r Recorder) RecordCommit(txID, tn uint64) {
	r.T.Record(Event{Type: EvCommit, Tx: txID, TN: tn})
}

// RecordAbort implements engine.Recorder.
func (r Recorder) RecordAbort(txID uint64) {
	r.T.Record(Event{Type: EvAbort, Tx: txID})
}

// RecordSnapshot implements engine.SnapshotRecorder; the snapshot
// position travels in TN.
func (r Recorder) RecordSnapshot(txID, sn uint64) {
	r.T.Record(Event{Type: EvSnapshot, Tx: txID, TN: sn})
}
