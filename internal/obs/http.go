package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Payload is the JSON document served at /debug/mvdb: one stats
// snapshot plus the recent event trace.
type Payload struct {
	Stats Snapshot `json:"stats"`
	Trace []Event  `json:"trace,omitempty"`
}

// DebugServer serves engine observability over HTTP. It is created by
// Serve and stopped with Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOption customizes the debug server (extra handlers, extra
// Prometheus families).
type ServeOption func(*serveConfig)

type serveConfig struct {
	handlers   map[string]http.Handler
	promExtras []func(io.Writer)
}

// WithHandler registers an additional handler on the debug mux, e.g.
// the audit pipeline's /debug/mvdb/audit endpoint.
func WithHandler(pattern string, h http.Handler) ServeOption {
	return func(c *serveConfig) {
		if c.handlers == nil {
			c.handlers = make(map[string]http.Handler)
		}
		c.handlers[pattern] = h
	}
}

// WithPromExtra registers a function that appends extra metric
// families to the /metrics response after the engine snapshot.
func WithPromExtra(fn func(io.Writer)) ServeOption {
	return func(c *serveConfig) { c.promExtras = append(c.promExtras, fn) }
}

// PromContentType is the Content-Type of the /metrics response
// (Prometheus text exposition format).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Serve starts an HTTP server on addr exposing:
//
//	/debug/mvdb  — Payload as JSON (stats snapshot + recent trace)
//	/debug/vars  — the standard expvar registry, which includes an
//	               "mvdb" variable backed by the same snapshot function
//	/metrics     — the snapshot in Prometheus text format, plus any
//	               extras registered with WithPromExtra
//	/debug/pprof — the standard runtime profiling endpoints (profile,
//	               heap, trace, ...), labeled by protocol/phase when
//	               phase timing is on
//
// addr may use port 0 to let the OS pick a free port; Addr reports the
// bound address. snap must be safe for concurrent use; tracer may be
// nil (the trace field is then omitted).
func Serve(addr string, snap func() Snapshot, tracer *Tracer, opts ...ServeOption) (*DebugServer, error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/mvdb", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Payload{Stats: snap(), Trace: tracer.Dump()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Render into a buffer first so a mid-render error cannot leave
		// a scraper with a truncated, half-valid exposition.
		var buf bytes.Buffer
		snap().WriteProm(&buf)
		for _, fn := range cfg.promExtras {
			fn(&buf)
		}
		w.Header().Set("Content-Type", PromContentType)
		w.Write(buf.Bytes())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// Standard pprof endpoints on the same mux (not the default one):
	// with phase timing enabled the engine tags commit goroutines with
	// mvdb_protocol/mvdb_phase labels, so CPU profiles taken here slice
	// along the same taxonomy as the phase histograms.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range cfg.handlers {
		mux.Handle(pattern, h)
	}
	publishExpvar(snap)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *DebugServer) Close() error { return s.srv.Close() }

// expvar's registry is process-global and Publish panics on duplicate
// names, so the "mvdb" variable is published once and reads through
// whichever snapshot function was installed most recently (the last
// database opened with a debug address).
var (
	pubOnce sync.Once
	pubSnap atomic.Value // func() Snapshot
)

func publishExpvar(snap func() Snapshot) {
	pubSnap.Store(snap)
	pubOnce.Do(func() {
		expvar.Publish("mvdb", expvar.Func(func() any {
			f, _ := pubSnap.Load().(func() Snapshot)
			if f == nil {
				return nil
			}
			return f()
		}))
	})
}
