package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// Payload is the JSON document served at /debug/mvdb: one stats
// snapshot plus the recent event trace.
type Payload struct {
	Stats Snapshot `json:"stats"`
	Trace []Event  `json:"trace,omitempty"`
}

// DebugServer serves engine observability over HTTP. It is created by
// Serve and stopped with Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr exposing:
//
//	/debug/mvdb  — Payload as JSON (stats snapshot + recent trace)
//	/debug/vars  — the standard expvar registry, which includes an
//	               "mvdb" variable backed by the same snapshot function
//
// addr may use port 0 to let the OS pick a free port; Addr reports the
// bound address. snap must be safe for concurrent use; tracer may be
// nil (the trace field is then omitted).
func Serve(addr string, snap func() Snapshot, tracer *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/mvdb", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Payload{Stats: snap(), Trace: tracer.Dump()})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	publishExpvar(snap)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *DebugServer) Close() error { return s.srv.Close() }

// expvar's registry is process-global and Publish panics on duplicate
// names, so the "mvdb" variable is published once and reads through
// whichever snapshot function was installed most recently (the last
// database opened with a debug address).
var (
	pubOnce sync.Once
	pubSnap atomic.Value // func() Snapshot
)

func publishExpvar(snap func() Snapshot) {
	pubSnap.Store(snap)
	pubOnce.Do(func() {
		expvar.Publish("mvdb", expvar.Func(func() any {
			f, _ := pubSnap.Load().(func() Snapshot)
			if f == nil {
				return nil
			}
			return f()
		}))
	})
}
