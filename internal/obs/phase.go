package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"mvdb/internal/metrics"
)

// This file is the per-transaction latency-attribution layer: a fixed
// protocol × phase matrix of histograms that decomposes end-to-end
// commit latency into the paper's separable modules — concurrency
// control (lock waits, T/O object-rule reads, OCC validation), version
// installation, WAL durability (enqueue vs group-commit fsync wait),
// and version control's register→visible lag (Section 6).
//
// The layer is off by default. When off, nothing here is allocated and
// call sites reduce to one nil pointer test — no time.Now, no atomics —
// which is what keeps the disabled path at the seed's allocation and
// latency profile (guarded by TestPhaseTimingDisabledZeroOverhead).
// When on, each sample is a lock-free histogram record plus a CAS race
// for the slowest-sample exemplar.

// Phase is one separable latency component of a transaction.
type Phase uint8

const (
	// PhaseLockWait is time blocked in the lock manager (2PL only).
	PhaseLockWait Phase = iota
	// PhaseRead is time resolving reads: the T/O object rule's
	// wait-for-resolution, OCC's optimistic reads, the RO path's
	// snapshot reads. 2PL reads are dominated by PhaseLockWait and are
	// not timed separately.
	PhaseRead
	// PhaseValidate is OCC's validation span: entering the critical
	// section plus checking the read set.
	PhaseValidate
	// PhaseWALEnqueue is time getting the commit record into the log
	// buffer (including contention on the writer mutex).
	PhaseWALEnqueue
	// PhaseFsyncWait is time waiting for fsync coverage: the inline
	// flush+sync under SyncEveryCommit, or the wait for the
	// group-commit flusher's ticket under SyncBatch.
	PhaseFsyncWait
	// PhaseInstall is time installing committed versions into the
	// store (and resolving pending ones under T/O).
	PhaseInstall
	// PhaseVisibleWait is the version-control register→visible lag:
	// from Register to the drain that advances vtnc past the entry.
	// For the RO protocol it is instead the recency wait of a pinned
	// BeginReadOnlyAt.
	PhaseVisibleWait

	// NumPhases is the number of defined phases.
	NumPhases = int(PhaseVisibleWait) + 1
)

var phaseNames = [NumPhases]string{
	"lock-wait", "read", "validate", "wal-enqueue", "fsync-wait",
	"install", "visible-wait",
}

// String returns the phase's wire name (stable: used as a Prometheus
// label value and in flight bundles).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// ProtoIdx indexes the protocol dimension of the phase matrix. The
// first three values mirror core.Protocol's ordering (2PL, T/O, OCC);
// ProtoRO is the read-only path, which never touches concurrency
// control and gets its own row.
type ProtoIdx uint8

const (
	Proto2PL ProtoIdx = iota
	ProtoTO
	ProtoOCC
	ProtoRO

	// NumProtos is the number of protocol rows.
	NumProtos = int(ProtoRO) + 1
)

var protoNames = [NumProtos]string{"vc+2pl", "vc+to", "vc+occ", "ro"}

// String returns the protocol's wire name.
func (p ProtoIdx) String() string {
	if int(p) < NumProtos {
		return protoNames[p]
	}
	return "unknown"
}

// phaseCell is one (protocol, phase) cell: the sample histogram, the
// slowest-sample exemplar (max duration + the transaction that set it),
// and precomputed identity so the record path never builds strings or
// label sets.
type phaseCell struct {
	h     *metrics.Histogram
	maxNS atomic.Int64
	maxTx atomic.Uint64
	name  string          // "vc+2pl/fsync-wait", for trace exemplars
	label context.Context // prebuilt pprof label set

	// Pad each cell past a cache line so concurrent committers updating
	// adjacent phases of the matrix never false-share the exemplar
	// atomics.
	_ [64]byte
}

// PhaseStats is the protocol × phase histogram matrix. A nil
// *PhaseStats is valid: every method no-ops, so call sites guard only
// the time.Now stamps, not the calls.
type PhaseStats struct {
	cells  [NumProtos][NumPhases]phaseCell
	tracer *Tracer
	bg     context.Context
}

// NewPhaseStats returns an enabled matrix. tracer may be nil; when it
// is not, a sample that becomes its cell's slowest emits an EvPhase
// trace event (the exemplar linking the slow commit to the surrounding
// ring entries).
func NewPhaseStats(tracer *Tracer) *PhaseStats {
	ps := &PhaseStats{tracer: tracer, bg: context.Background()}
	for pr := 0; pr < NumProtos; pr++ {
		for ph := 0; ph < NumPhases; ph++ {
			c := &ps.cells[pr][ph]
			c.h = metrics.NewHistogram()
			c.name = protoNames[pr] + "/" + phaseNames[ph]
			// Prebuilt per-cell label contexts make PprofEnter a single
			// allocation-free runtime call on the timed path.
			c.label = pprof.WithLabels(ps.bg, pprof.Labels(
				"mvdb_protocol", protoNames[pr], "mvdb_phase", phaseNames[ph]))
		}
	}
	return ps
}

// Record adds one sample. If the sample is the slowest its cell has
// seen, the transaction id is retained as the exemplar and, when
// tracing, an EvPhase event is emitted so the slow span can be lined up
// against the trace ring.
func (ps *PhaseStats) Record(proto ProtoIdx, ph Phase, tx uint64, d time.Duration) {
	if ps == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	c := &ps.cells[proto][ph]
	c.h.Record(ns)
	for {
		cur := c.maxNS.Load()
		if ns <= cur {
			return
		}
		if c.maxNS.CompareAndSwap(cur, ns) {
			// Benign race: a concurrent larger sample may overwrite
			// maxTx after us; the exemplar is "a slowest-ish tx", not a
			// linearizable maximum.
			c.maxTx.Store(tx)
			ps.tracer.Record(Event{Type: EvPhase, Tx: tx, Key: c.name, Dur: ns})
			return
		}
	}
}

// PprofEnter tags the calling goroutine with the (protocol, phase)
// pprof labels so CPU profiles attribute samples to the same taxonomy
// as the histograms. Pair with PprofExit. No-op on nil.
func (ps *PhaseStats) PprofEnter(proto ProtoIdx, ph Phase) {
	if ps == nil {
		return
	}
	pprof.SetGoroutineLabels(ps.cells[proto][ph].label)
}

// PprofExit clears the goroutine's phase labels.
func (ps *PhaseStats) PprofExit() {
	if ps == nil {
		return
	}
	pprof.SetGoroutineLabels(ps.bg)
}

// PhaseSummary is one non-empty cell of the matrix as exported in
// Snapshot.Phases: the latency summary plus the slowest-sample
// transaction id (the exemplar to look up in the trace ring).
type PhaseSummary struct {
	Protocol  string          `json:"protocol"`
	Phase     string          `json:"phase"`
	Durations metrics.Summary `json:"durations"`
	SlowestTx uint64          `json:"slowest_tx,omitempty"`
}

// Summaries returns the non-empty cells in protocol-major order.
// Returns nil on a nil receiver (phase timing disabled).
func (ps *PhaseStats) Summaries() []PhaseSummary {
	if ps == nil {
		return nil
	}
	var out []PhaseSummary
	for pr := 0; pr < NumProtos; pr++ {
		for ph := 0; ph < NumPhases; ph++ {
			c := &ps.cells[pr][ph]
			s := c.h.Summarize()
			if s.Count == 0 {
				continue
			}
			out = append(out, PhaseSummary{
				Protocol:  protoNames[pr],
				Phase:     phaseNames[ph],
				Durations: s,
				SlowestTx: c.maxTx.Load(),
			})
		}
	}
	return out
}
