package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestSnapshotNeverOvercounts drives begins and commits concurrently with
// snapshots: because Snapshot loads commit counters before begin
// counters, no snapshot may report more commits than begins.
func TestSnapshotNeverOvercounts(t *testing.T) {
	s := NewStats()
	var writers sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 20000; i++ {
				s.BeginsRW.Inc()
				s.CommitsRW.Inc()
				s.BeginsRO.Inc()
				s.CommitsRO.Inc()
			}
		}()
	}
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := s.Snapshot()
			if sn.CommitsRW > sn.BeginsRW {
				t.Errorf("snapshot: commits.rw %d > begins.rw %d", sn.CommitsRW, sn.BeginsRW)
				return
			}
			if sn.CommitsRO > sn.BeginsRO {
				t.Errorf("snapshot: commits.ro %d > begins.ro %d", sn.CommitsRO, sn.BeginsRO)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-snapDone
	sn := s.Snapshot()
	if sn.BeginsRW != 80000 || sn.CommitsRW != 80000 {
		t.Fatalf("final counts = %d/%d, want 80000/80000", sn.BeginsRW, sn.CommitsRW)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
}

func TestMapVocabulary(t *testing.T) {
	s := NewStats()
	s.CommitsRW.Add(3)
	s.AbortsTimeout.Inc()
	sn := s.Snapshot()
	sn.TNC = 7
	sn.VTNC = 6
	sn.Extra = map[string]int64{"adaptive.switches": 2}
	m := sn.Map()
	for k, want := range map[string]int64{
		"commits.rw":        3,
		"aborts.timeout":    1,
		"vc.tnc":            7,
		"vc.vtnc":           6,
		"adaptive.switches": 2,
	} {
		if m[k] != want {
			t.Errorf("Map()[%q] = %d, want %d", k, m[k], want)
		}
	}
	if sn.AbortsTotal() != 1 {
		t.Errorf("AbortsTotal = %d, want 1", sn.AbortsTotal())
	}
}

// TestTracerRing checks ring semantics: capacity rounding, overwrite of
// the oldest events, and sequence-ordered dumps.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(100) // rounds to 128
	if tr.Cap() != 128 {
		t.Fatalf("cap = %d, want 128", tr.Cap())
	}
	for i := 0; i < 300; i++ {
		tr.Record(Event{Type: EvCommit, Tx: uint64(i)})
	}
	evs := tr.Dump()
	if len(evs) != 128 {
		t.Fatalf("dump length = %d, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("dump out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	// The retained window is the most recent 128 events.
	if first := evs[0].Seq; first != 300-128+1 {
		t.Fatalf("oldest retained seq = %d, want %d", first, 300-128+1)
	}
	if tr.Seen() != 300 {
		t.Fatalf("seen = %d, want 300", tr.Seen())
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Type: EvBegin}) // must not panic
	if tr.Dump() != nil || tr.Cap() != 0 || tr.Seen() != 0 {
		t.Fatal("nil tracer should be empty")
	}
}

func TestTracerConcurrentRecordDump(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tr.Record(Event{Type: EvWrite, Tx: uint64(w), TN: uint64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range tr.Dump() {
				if ev.Seq == 0 {
					t.Error("dumped an unstamped event")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if tr.Seen() != 20000 {
		t.Fatalf("seen = %d, want 20000", tr.Seen())
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Seq: 9, At: 1234, Type: EvLockWait, Tx: 3, Key: "k", Dur: 42}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "lock-wait" {
		t.Fatalf("type = %v, want lock-wait", m["type"])
	}
	var out Event
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// Every event type — including EvSnapshot, which carries the read-only
// start number in TN, and the span/blame pair emitted for promoted
// traces — must survive the JSON round trip, and unknown type names
// must decode without error.
func TestEventJSONRoundTripAllTypes(t *testing.T) {
	for ty := EvBegin; ty <= EvHealth; ty++ {
		in := Event{Seq: 1, At: 2, Type: ty, Tx: 3, TN: 4}
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if ty.String() == "unknown" {
			t.Fatalf("type %d has no name", ty)
		}
		var out Event
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("type %s: got %+v, want %+v", ty, out, in)
		}
	}
	var out Event
	if err := json.Unmarshal([]byte(`{"type":"from-the-future","seq":7}`), &out); err != nil {
		t.Fatalf("unknown type name failed to decode: %v", err)
	}
	if out.Seq != 7 || out.Type != EvBegin {
		t.Fatalf("unknown type decoded as %+v", out)
	}
}

// TestServe spins up the debug server on an ephemeral port and checks
// both endpoints' JSON shape.
func TestServe(t *testing.T) {
	s := NewStats()
	s.BeginsRW.Add(5)
	s.CommitsRW.Add(5)
	tr := NewTracer(16)
	tr.Record(Event{Type: EvCommit, Tx: 1, TN: 2})

	srv, err := Serve("127.0.0.1:0", func() Snapshot {
		sn := s.Snapshot()
		sn.Protocol = "vc+2pl"
		return sn
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/mvdb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var p Payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Protocol != "vc+2pl" || p.Stats.CommitsRW != 5 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	if len(p.Trace) != 1 || p.Trace[0].Type != EvCommit {
		t.Fatalf("trace = %+v", p.Trace)
	}

	// The expvar endpoint must carry the same snapshot under "mvdb".
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Mvdb Snapshot `json:"mvdb"`
	}
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("expvar decode: %v\n%s", err, raw)
	}
	if vars.Mvdb.CommitsRW != 5 {
		t.Fatalf("expvar mvdb = %+v", vars.Mvdb)
	}
}

// TestServeTwice exercises the expvar duplicate-publish guard: a second
// server must not panic, and the global "mvdb" variable must follow the
// most recent snapshot function.
func TestServeTwice(t *testing.T) {
	s1, s2 := NewStats(), NewStats()
	s2.CommitsRW.Add(99)
	srv1, err := Serve("127.0.0.1:0", s1.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	srv2, err := Serve("127.0.0.1:0", s2.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	resp, err := http.Get("http://" + srv2.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Mvdb Snapshot `json:"mvdb"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Mvdb.CommitsRW != 99 {
		t.Fatalf("expvar should follow the latest server; got %+v", vars.Mvdb)
	}
}

// TestRecorderFeedsTracer checks the engine.Recorder bridge end to end.
func TestRecorderFeedsTracer(t *testing.T) {
	tr := NewTracer(16)
	r := Recorder{T: tr}
	r.RecordBegin(1, 0)
	r.RecordRead(1, "a", 3)
	r.RecordWrite(1, "a", 4)
	r.RecordCommit(1, 4)
	r.RecordAbort(2)
	evs := tr.Dump()
	want := []EventType{EvBegin, EvRead, EvWrite, EvCommit, EvAbort}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Type != w {
			t.Fatalf("event %d = %s, want %s", i, evs[i].Type, w)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = fmt.Sprint(c.Load())
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(Event{Type: EvCommit, Tx: 1, TN: 2})
		}
	})
}

func BenchmarkTracerRecordNil(b *testing.B) {
	var tr *Tracer
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(Event{Type: EvCommit, Tx: 1, TN: 2})
		}
	})
}
