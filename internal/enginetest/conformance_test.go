package enginetest

import (
	"testing"
	"time"

	"mvdb/internal/adaptive"
	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/dist"
	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/vc"
)

// TestConformance runs the battery against every engine configuration in
// the repository.
func TestConformance(t *testing.T) {
	factories := map[string]Factory{
		"vc+2pl": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TwoPhaseLocking, Recorder: rec})
		},
		"vc+2pl/woundwait": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.WoundWait, Recorder: rec})
		},
		"vc+2pl/timeout": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TwoPhaseLocking, LockPolicy: lock.TimeoutPolicy,
				LockTimeout: 5 * time.Millisecond, Recorder: rec})
		},
		"vc+to": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TimestampOrdering, Recorder: rec})
		},
		"vc+occ": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.Optimistic, Recorder: rec})
		},
		// The three protocols again under epoch visibility: the
		// decentralized watermark must be behaviorally indistinguishable
		// from the strict drain across the whole battery.
		"vc+2pl/epoch": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TwoPhaseLocking, Visibility: vc.ModeEpoch, Recorder: rec})
		},
		"vc+to/epoch": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.TimestampOrdering, Visibility: vc.ModeEpoch, Recorder: rec})
		},
		"vc+occ/epoch": func(rec engine.Recorder) Instance {
			return core.New(core.Options{Protocol: core.Optimistic, Visibility: vc.ModeEpoch, Recorder: rec})
		},
		"mvto": func(rec engine.Recorder) Instance {
			return baseline.NewMVTO(0, rec)
		},
		"mv2plctl": func(rec engine.Recorder) Instance {
			return baseline.NewMV2PLCTL(0, lock.Detect, 0, rec)
		},
		"sv2pl": func(rec engine.Recorder) Instance {
			return baseline.NewSV2PL(0, lock.Detect, 0, rec)
		},
		"adaptive": func(rec engine.Recorder) Instance {
			return adaptive.New(adaptive.Options{Core: core.Options{Recorder: rec}, Window: 16})
		},
		"dist-1site": func(rec engine.Recorder) Instance {
			c, err := dist.New(dist.Options{Sites: 1, Recorder: rec, LockTimeout: 10 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		"dist-3site": func(rec engine.Recorder) Instance {
			c, err := dist.New(dist.Options{Sites: 3, Recorder: rec, LockTimeout: 10 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			Run(t, mk)
		})
	}
}
