// Package enginetest is a conformance suite for engine.Engine
// implementations: one battery of behavioral checks that every engine in
// the repository — the three version-control engines, the three
// baselines, the adaptive engine and the distributed cluster — must pass.
// Engine-specific guarantees (e.g. "read-only transactions never block")
// are deliberately NOT here; this suite pins down the common transaction
// semantics so the comparative experiments compare like with like.
package enginetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/history"
)

// Factory builds a fresh engine wired to the given recorder. Bootstrap
// must load the data as the pre-transactional state (version 0).
type Factory func(rec engine.Recorder) Instance

// Instance is an engine under test.
type Instance interface {
	engine.Engine
	Bootstrap(map[string][]byte) error
}

// Run executes the conformance battery against the factory.
func Run(t *testing.T, mk Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, mk Factory)
	}{
		{"ReadYourOwnWrites", testReadYourOwnWrites},
		{"CommitMakesVisible", testCommitMakesVisible},
		{"AbortDiscards", testAbortDiscards},
		{"DeleteTombstone", testDeleteTombstone},
		{"AbsentKey", testAbsentKey},
		{"ReadOnlyRejectsWrites", testReadOnlyRejectsWrites},
		{"UseAfterFinish", testUseAfterFinish},
		{"SnapshotOrLatestConsistency", testSnapshotConsistency},
		{"AtomicMultiKeyCommit", testAtomicMultiKeyCommit},
		{"ConcurrentCountersConverge", testConcurrentCounters},
		{"HistorySerializable", testHistorySerializable},
		{"StatsPresent", testStatsPresent},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, mk) })
	}
}

// retryRW runs fn inside a read-write transaction, retrying aborts.
func retryRW(t *testing.T, e engine.Engine, fn func(tx engine.Tx) error) {
	t.Helper()
	for attempt := 0; attempt < 500; attempt++ {
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		return
	}
	t.Fatal("transaction starved after 500 attempts")
}

// retryRO runs fn inside a read-only transaction, retrying aborts (the
// single-version baseline can abort its readers).
func retryRO(t *testing.T, e engine.Engine, fn func(tx engine.Tx) error) {
	t.Helper()
	for attempt := 0; attempt < 500; attempt++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		return
	}
	t.Fatal("read-only transaction starved after 500 attempts")
}

func testReadYourOwnWrites(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"k": []byte("old")}); err != nil {
		t.Fatal(err)
	}
	retryRW(t, e, func(tx engine.Tx) error {
		if err := tx.Put("k", []byte("new")); err != nil {
			return err
		}
		v, err := tx.Get("k")
		if err != nil {
			return err
		}
		if string(v) != "new" {
			t.Fatalf("read-own-write = %q", v)
		}
		if err := tx.Delete("k"); err != nil {
			return err
		}
		if _, err := tx.Get("k"); !errors.Is(err, engine.ErrNotFound) {
			t.Fatalf("read-own-delete err = %v", err)
		}
		return tx.Put("k", []byte("final"))
	})
}

func testCommitMakesVisible(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	retryRW(t, e, func(tx engine.Tx) error { return tx.Put("k", []byte("v")) })
	// A read-write reader always sees it; a snapshot reader may need a
	// fresh snapshot but must see it eventually (here: immediately, since
	// nothing is in flight).
	retryRW(t, e, func(tx engine.Tx) error {
		v, err := tx.Get("k")
		if err != nil {
			return err
		}
		if string(v) != "v" {
			t.Fatalf("rw read %q", v)
		}
		return nil
	})
	retryRO(t, e, func(tx engine.Tx) error {
		v, err := tx.Get("k")
		if err != nil {
			return err
		}
		if string(v) != "v" {
			t.Fatalf("ro read %q", v)
		}
		return nil
	})
}

func testAbortDiscards(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"k": []byte("keep")}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.Begin(engine.ReadWrite)
	if err := tx.Put("k", []byte("drop")); err == nil {
		tx.Abort()
	} else {
		tx.Abort()
	}
	retryRO(t, e, func(ro engine.Tx) error {
		v, err := ro.Get("k")
		if err != nil {
			return err
		}
		if string(v) != "keep" {
			t.Fatalf("aborted write leaked: %q", v)
		}
		return nil
	})
}

func testDeleteTombstone(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	retryRW(t, e, func(tx engine.Tx) error { return tx.Put("k", []byte("v")) })
	retryRW(t, e, func(tx engine.Tx) error { return tx.Delete("k") })
	retryRO(t, e, func(ro engine.Tx) error {
		if _, err := ro.Get("k"); !errors.Is(err, engine.ErrNotFound) {
			t.Fatalf("post-delete err = %v", err)
		}
		return nil
	})
	// Recreate after delete.
	retryRW(t, e, func(tx engine.Tx) error { return tx.Put("k", []byte("again")) })
	retryRO(t, e, func(ro engine.Tx) error {
		v, err := ro.Get("k")
		if err != nil {
			return err
		}
		if string(v) != "again" {
			t.Fatalf("recreate = %q", v)
		}
		return nil
	})
}

func testAbsentKey(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	retryRO(t, e, func(ro engine.Tx) error {
		if _, err := ro.Get("ghost"); !errors.Is(err, engine.ErrNotFound) {
			t.Fatalf("ro absent err = %v", err)
		}
		return nil
	})
	retryRW(t, e, func(tx engine.Tx) error {
		_, err := tx.Get("ghost")
		if errors.Is(err, engine.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		t.Fatal("rw absent read succeeded")
		return nil
	})
}

func testReadOnlyRejectsWrites(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	tx, err := e.Begin(engine.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Class() != engine.ReadOnly {
		t.Fatal("wrong class")
	}
	if err := tx.Put("a", nil); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("Put err = %v", err)
	}
	if err := tx.Delete("a"); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("Delete err = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func testUseAfterFinish(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	tx, _ := e.Begin(engine.ReadWrite)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("x"); !errors.Is(err, engine.ErrTxDone) {
		t.Fatalf("Get after commit = %v", err)
	}
	if err := tx.Put("x", nil); !errors.Is(err, engine.ErrTxDone) {
		t.Fatalf("Put after commit = %v", err)
	}
	if err := tx.Delete("x"); !errors.Is(err, engine.ErrTxDone) {
		t.Fatalf("Delete after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, engine.ErrTxDone) {
		t.Fatalf("double Commit = %v", err)
	}
	tx.Abort() // must be a no-op, not a panic

	ro, _ := e.Begin(engine.ReadOnly)
	ro.Abort()
	if _, err := ro.Get("x"); !errors.Is(err, engine.ErrTxDone) {
		t.Fatalf("ro Get after abort = %v", err)
	}
}

// Snapshot readers must never observe a torn multi-key transaction.
func testSnapshotConsistency(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"a": {0}, "b": {0}}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := byte(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			v := []byte{i}
			for attempt := 0; attempt < 100; attempt++ {
				tx, _ := e.Begin(engine.ReadWrite)
				if err := tx.Put("a", v); err != nil {
					if engine.Retryable(err) {
						continue
					}
					return
				}
				if err := tx.Put("b", v); err != nil {
					if engine.Retryable(err) {
						continue
					}
					return
				}
				if err := tx.Commit(); err == nil {
					break
				}
			}
		}
	}()
	for i := 0; i < 100; i++ {
		retryRO(t, e, func(ro engine.Tx) error {
			a, err := ro.Get("a")
			if err != nil {
				return err
			}
			b, err := ro.Get("b")
			if err != nil {
				return err
			}
			if a[0] != b[0] {
				t.Errorf("torn snapshot: a=%d b=%d", a[0], b[0])
			}
			return nil
		})
	}
	close(stop)
	wg.Wait()
}

func testAtomicMultiKeyCommit(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	retryRW(t, e, func(tx engine.Tx) error {
		for i := 0; i < 8; i++ {
			if err := tx.Put(fmt.Sprintf("mk%d", i), []byte{1}); err != nil {
				return err
			}
		}
		return nil
	})
	retryRO(t, e, func(ro engine.Tx) error {
		n := 0
		for i := 0; i < 8; i++ {
			if _, err := ro.Get(fmt.Sprintf("mk%d", i)); err == nil {
				n++
			} else if !errors.Is(err, engine.ErrNotFound) {
				return err
			}
		}
		if n != 0 && n != 8 {
			t.Fatalf("torn multi-key commit: saw %d of 8", n)
		}
		return nil
	})
}

func testConcurrentCounters(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	const nCtr = 4
	boot := map[string][]byte{}
	for i := 0; i < nCtr; i++ {
		boot[fmt.Sprintf("ctr%d", i)] = []byte{0}
	}
	if err := e.Bootstrap(boot); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("ctr%d", (w+i)%nCtr)
				retryRW(t, e, func(tx engine.Tx) error {
					v, err := tx.Get(key)
					if err != nil {
						return err
					}
					return tx.Put(key, []byte{v[0] + 1})
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	retryRO(t, e, func(ro engine.Tx) error {
		total = 0
		for i := 0; i < nCtr; i++ {
			v, err := ro.Get(fmt.Sprintf("ctr%d", i))
			if err != nil {
				return err
			}
			total += int(v[0])
		}
		return nil
	})
	if total != workers*perWorker {
		t.Fatalf("counters sum to %d, want %d", total, workers*perWorker)
	}
}

func testHistorySerializable(t *testing.T, mk Factory) {
	rec := history.NewRecorder()
	e := mk(rec)
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"x": {10}, "y": {10}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if i%3 == 0 {
					retryRO(t, e, func(ro engine.Tx) error {
						if _, err := ro.Get("x"); err != nil {
							return err
						}
						_, err := ro.Get("y")
						return err
					})
					continue
				}
				retryRW(t, e, func(tx engine.Tx) error {
					xv, err := tx.Get("x")
					if err != nil {
						return err
					}
					if err := tx.Put("x", []byte{xv[0] + 1}); err != nil {
						return err
					}
					yv, err := tx.Get("y")
					if err != nil {
						return err
					}
					return tx.Put("y", []byte{yv[0] - 1})
				})
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Check(); err != nil {
		t.Fatalf("history not one-copy serializable: %v", err)
	}
}

func testStatsPresent(t *testing.T, mk Factory) {
	e := mk(nil)
	defer e.Close()
	retryRW(t, e, func(tx engine.Tx) error { return tx.Put("k", []byte("v")) })
	retryRO(t, e, func(ro engine.Tx) error { _, err := ro.Get("k"); return err })
	st := e.Stats()
	if st["commits.rw"] < 1 {
		t.Fatalf("commits.rw = %d", st["commits.rw"])
	}
	if st["commits.ro"] < 1 {
		t.Fatalf("commits.ro = %d", st["commits.ro"])
	}
	if e.Name() == "" {
		t.Fatal("empty engine name")
	}
}
