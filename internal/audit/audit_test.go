package audit

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/history"
)

func newQuiet(t *testing.T, opts Options) *Auditor {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	a := New(opts)
	t.Cleanup(func() { a.Close() })
	return a
}

func alarmKinds(sn Snapshot) map[string]int {
	m := make(map[string]int)
	for _, al := range sn.Alarms {
		m[al.Kind]++
	}
	return m
}

// --- spans and latency ------------------------------------------------

func TestSpansAndLatency(t *testing.T) {
	a := newQuiet(t, Options{})
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 1)
	a.RecordCommit(1, 1)
	a.RecordBegin(2, engine.ReadOnly)
	a.RecordSnapshot(2, 1)
	a.RecordRead(2, "x", 1)
	a.RecordCommit(2, 1)
	a.RecordBegin(3, engine.ReadWrite)
	a.RecordAbort(3)
	a.Drain()

	sn := a.Snapshot()
	if len(sn.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(sn.Spans))
	}
	byTx := make(map[uint64]Span)
	for _, sp := range sn.Spans {
		byTx[sp.Tx] = sp
	}
	if byTx[1].Outcome != "commit" || byTx[1].Class != "read-write" {
		t.Fatalf("tx1 span = %+v", byTx[1])
	}
	if byTx[1].FirstOpNS < 0 || byTx[1].TotalNS < 0 {
		t.Fatalf("negative latencies: %+v", byTx[1])
	}
	if byTx[3].Outcome != "abort" {
		t.Fatalf("tx3 span = %+v", byTx[3])
	}
	// Only commits feed the latency histograms: one per class.
	if l := sn.Latency["read-write"]; l.Count != 1 {
		t.Fatalf("rw latency count = %d, want 1", l.Count)
	}
	if l := sn.Latency["read-only"]; l.Count != 1 {
		t.Fatalf("ro latency count = %d, want 1", l.Count)
	}
	if sn.AlarmsTotal != 0 {
		t.Fatalf("clean history raised %d alarms: %v", sn.AlarmsTotal, sn.Alarms)
	}
}

func TestSpanRingBounded(t *testing.T) {
	a := newQuiet(t, Options{Spans: 4})
	for i := uint64(1); i <= 10; i++ {
		a.RecordBegin(i, engine.ReadWrite)
		a.RecordWrite(i, "x", i)
		a.RecordCommit(i, i)
	}
	a.Drain()
	sn := a.Snapshot()
	if len(sn.Spans) != 4 {
		t.Fatalf("span ring = %d, want 4", len(sn.Spans))
	}
	if sn.Spans[len(sn.Spans)-1].Tx != 10 {
		t.Fatalf("newest span tx = %d, want 10", sn.Spans[len(sn.Spans)-1].Tx)
	}
}

// --- anomaly detection ------------------------------------------------

// The A1 ablation (2PL registered at begin instead of the lock-point)
// must trip a live MVSG-cycle alarm, and the online verdict must agree
// with the offline checker over the same event stream.
func TestLiveAlarmOnEarlyRegister2PL(t *testing.T) {
	rec := history.NewRecorder()
	a := newQuiet(t, Options{Window: 64})
	e := core.New(core.Options{
		Protocol:               core.TwoPhaseLocking,
		Recorder:               engine.Multi(rec, a),
		UnsafeEarlyRegister2PL: true,
	})
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"x": {0}}); err != nil {
		t.Fatal(err)
	}

	t1, _ := e.Begin(engine.ReadWrite) // tn fixed too early
	t2, _ := e.Begin(engine.ReadWrite)
	if err := t2.Put("x", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Get("x"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("x", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if _, err := ro.Get("x"); err != nil {
		t.Fatal(err)
	}
	ro.Commit()

	a.Drain()
	sn := a.Snapshot()
	if alarmKinds(sn)[KindCycle] == 0 {
		t.Fatalf("no live MVSG-cycle alarm; alarms: %v", sn.Alarms)
	}
	if err := rec.Check(); err == nil {
		t.Fatal("offline checker disagrees: accepted the A1 history")
	}
}

// The A2 ablation (vtnc advanced in completion order) exposes an
// inconsistent snapshot; its read-only observer closes the cycle.
func TestLiveAlarmOnEagerVisibility(t *testing.T) {
	rec := history.NewRecorder()
	a := newQuiet(t, Options{Window: 64})
	e := core.New(core.Options{
		Protocol:              core.TimestampOrdering,
		Recorder:              engine.Multi(rec, a),
		UnsafeEagerVisibility: true,
	})
	defer e.Close()
	if err := e.Bootstrap(map[string][]byte{"y": {0}, "z": {0}}); err != nil {
		t.Fatal(err)
	}

	t1, _ := e.Begin(engine.ReadWrite)
	t2, _ := e.Begin(engine.ReadWrite)
	if _, err := t1.Get("z"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("y", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("z", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if _, err := ro.Get("z"); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Get("y"); err != nil {
		t.Fatal(err)
	}
	ro.Commit()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	a.Drain()
	sn := a.Snapshot()
	if alarmKinds(sn)[KindCycle] == 0 {
		t.Fatalf("no live MVSG-cycle alarm; alarms: %v", sn.Alarms)
	}
	if err := rec.Check(); err == nil {
		t.Fatal("offline checker disagrees: accepted the A2 history")
	}
}

// Correct engines under concurrent load must stay silent, and the
// online verdict must agree with the offline checker.
func TestCleanEnginesNoAlarms(t *testing.T) {
	for _, p := range []core.Protocol{core.TwoPhaseLocking, core.TimestampOrdering, core.Optimistic} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			rec := history.NewRecorder()
			a := newQuiet(t, Options{Window: 4096, Queue: 1 << 15})
			e := core.New(core.Options{Protocol: p, Recorder: engine.Multi(rec, a)})
			defer e.Close()
			if err := e.Bootstrap(map[string][]byte{"a": {100}, "b": {100}}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						if w%2 == 0 {
							ro, err := e.Begin(engine.ReadOnly)
							if err != nil {
								continue
							}
							ro.Get("a")
							ro.Get("b")
							ro.Commit()
							continue
						}
						tx, err := e.Begin(engine.ReadWrite)
						if err != nil {
							continue
						}
						if _, err := tx.Get("a"); err != nil {
							tx.Abort()
							continue
						}
						if err := tx.Put("a", []byte{byte(i)}); err != nil {
							tx.Abort()
							continue
						}
						tx.Commit()
					}
				}(w)
			}
			wg.Wait()
			a.Drain()
			sn := a.Snapshot()
			if sn.AlarmsTotal != 0 {
				t.Fatalf("correct engine raised alarms: %v", sn.Alarms)
			}
			if sn.Dropped != 0 {
				t.Fatalf("dropped %d events with oversized queue", sn.Dropped)
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("offline checker failed on correct engine: %v", err)
			}
		})
	}
}

// --- invariant alarms -------------------------------------------------

func TestSnapshotReadAlarm(t *testing.T) {
	a := newQuiet(t, Options{})
	// A writer installs x@5, then a read-only transaction pinned at
	// snapshot 1 observes it — impossible under the Transaction
	// Visibility Property.
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 5)
	a.RecordCommit(1, 5)
	a.RecordBegin(2, engine.ReadOnly)
	a.RecordSnapshot(2, 1)
	a.RecordRead(2, "x", 5)
	a.RecordRead(2, "x", 5) // repeated offense: still one alarm per tx
	a.RecordCommit(2, 1)
	a.Drain()
	sn := a.Snapshot()
	if got := alarmKinds(sn)[KindSnapshotRead]; got != 1 {
		t.Fatalf("snapshot-read alarms = %d, want 1; alarms: %v", got, sn.Alarms)
	}
}

func TestVCInvariantAlarm(t *testing.T) {
	a := newQuiet(t, Options{Gauges: func() (uint64, uint64) { return 3, 7 }}) // vtnc 7 > tnc-1 = 2
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 1)
	a.RecordCommit(1, 1)
	a.Drain()
	if got := alarmKinds(a.Snapshot())[KindVCInvariant]; got != 1 {
		t.Fatalf("vc-invariant alarms = %d, want 1", got)
	}
}

func TestIntegrityAlarm(t *testing.T) {
	a := newQuiet(t, Options{})
	for _, tx := range []uint64{1, 2} {
		a.RecordBegin(tx, engine.ReadWrite)
		a.RecordWrite(tx, "x", 9) // same version twice
		a.RecordCommit(tx, 8+tx)
	}
	a.Drain()
	if got := alarmKinds(a.Snapshot())[KindIntegrity]; got != 1 {
		t.Fatalf("integrity alarms = %d, want 1", got)
	}
}

// --- window and backpressure -----------------------------------------

func TestWindowEviction(t *testing.T) {
	a := newQuiet(t, Options{Window: 4})
	for i := uint64(1); i <= 20; i++ {
		a.RecordBegin(i, engine.ReadWrite)
		a.RecordWrite(i, "x", i)
		a.RecordCommit(i, i)
	}
	a.Drain()
	sn := a.Snapshot()
	if sn.GraphWriters > 4 {
		t.Fatalf("graph writers = %d, want <= 4", sn.GraphWriters)
	}
	if sn.GraphEvicted < 16 {
		t.Fatalf("evicted = %d, want >= 16", sn.GraphEvicted)
	}
	if sn.AlarmsTotal != 0 {
		t.Fatalf("sequential writers alarmed: %v", sn.Alarms)
	}
}

// A saturated queue drops events — counted, never blocking the
// producer. The consumer is stalled deterministically inside a Gauges
// callback while the producer keeps recording.
func TestBackpressureDropsWithoutBlocking(t *testing.T) {
	stall := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	a := newQuiet(t, Options{
		Queue: 4,
		Gauges: func() (uint64, uint64) {
			once.Do(func() { close(entered) })
			<-stall
			return 0, 0
		},
	})
	// First commit parks the consumer inside Gauges.
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 1)
	a.RecordCommit(1, 1)
	<-entered

	// Queue capacity is 4; everything beyond must drop, not block.
	doneSending := make(chan struct{})
	go func() {
		defer close(doneSending)
		for i := uint64(10); i < 110; i++ {
			a.RecordBegin(i, engine.ReadOnly)
		}
	}()
	select {
	case <-doneSending:
	case <-time.After(5 * time.Second):
		t.Fatal("producer blocked on a full audit queue")
	}
	if a.Dropped() == 0 {
		t.Fatal("no events dropped despite a stalled consumer and a full queue")
	}
	close(stall)
	a.Drain()
	if a.Dropped()+a.Received() != 103 { // 3 events for tx1 + 100 begins
		t.Fatalf("received %d + dropped %d != 103", a.Received(), a.Dropped())
	}
}

func TestCloseIdempotentAndDiscardsLateEvents(t *testing.T) {
	a := New(Options{Logger: slog.New(slog.DiscardHandler)})
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordCommit(1, 1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	before := a.Received()
	a.RecordBegin(2, engine.ReadWrite) // after Close: discarded silently
	if a.Received() != before {
		t.Fatal("event accepted after Close")
	}
	a.Drain() // must not hang after Close
}

// --- exposition -------------------------------------------------------

func TestHTTPHandlerServesSnapshot(t *testing.T) {
	a := newQuiet(t, Options{})
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 1)
	a.RecordCommit(1, 1)
	a.Drain()

	srv := httptest.NewServer(a.HTTPHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sn Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		t.Fatal(err)
	}
	if sn.Received != 3 || sn.Processed != 3 {
		t.Fatalf("snapshot over HTTP = %+v", sn)
	}
	if sn.Latency["read-write"].Count != 1 {
		t.Fatalf("latency missing from HTTP snapshot: %+v", sn.Latency)
	}
}

func TestWriteProm(t *testing.T) {
	a := newQuiet(t, Options{})
	a.RecordBegin(1, engine.ReadWrite)
	a.RecordWrite(1, "x", 1)
	a.RecordCommit(1, 1)
	a.Drain()

	var sb strings.Builder
	a.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE mvdb_audit_events_total counter",
		"mvdb_audit_events_total 3",
		"mvdb_audit_dropped_total 0",
		"mvdb_audit_alarms_total 0",
		"# TYPE mvdb_txn_latency_seconds summary",
		`mvdb_txn_latency_seconds{class="rw",quantile="0.95"}`,
		`mvdb_txn_latency_seconds_count{class="rw"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}
