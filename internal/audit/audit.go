// Package audit is the online serializability auditor: an opt-in,
// asynchronous pipeline that subscribes to the engine's event stream
// (as an engine.Recorder) and maintains, live,
//
//   - per-transaction spans — begin → first operation → commit/abort,
//     with per-class commit-latency quantiles, and
//   - a windowed incremental multiversion serialization graph (MVSG)
//     over the last K committed read-write transactions, with the exact
//     reads-from and version-order edge rules the offline checker
//     (internal/history) applies after the fact.
//
// A cycle in the windowed MVSG, a history integrity violation (two
// writers sharing a serialization number, a dirty read, ...), a
// read-only transaction observing a version newer than its snapshot, or
// a version-control counter inversion (vtnc > tnc-1) raises a
// structured alarm: a log line, a counter, and an entry in a bounded
// recent-alarms buffer served at /debug/mvdb/audit.
//
// The window keeps the auditor bounded: evicting a transaction removes
// its node and incident edges but every edge that remains is a genuine
// MVSG edge, so any cycle the auditor reports is a real serializability
// violation (no false positives). The converse does not hold — a cycle
// whose transactions span more than the window goes unseen — so a quiet
// auditor certifies only the recent past (see DESIGN.md).
//
// The pipeline never blocks the engine: events travel through a bounded
// channel with a non-blocking send, and when the consumer falls behind,
// events are dropped and counted rather than queued. Dropping degrades
// coverage, never correctness of what is reported.
package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/metrics"
	"mvdb/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultWindow = 256
	DefaultQueue  = 8192
	DefaultAlarms = 32
	DefaultSpans  = 32

	// maxOpsPerTx bounds the per-transaction operation log so one
	// enormous transaction cannot grow the auditor without bound; ops
	// beyond the cap are dropped and counted.
	maxOpsPerTx = 4096
)

// Alarm kinds.
const (
	// KindCycle is a cycle in the windowed MVSG — a proven
	// serializability violation among the transactions named in Txs.
	KindCycle = "mvsg-cycle"
	// KindIntegrity is a malformed history: duplicate serialization
	// numbers, duplicate versions, a read of a never-committed version.
	KindIntegrity = "integrity"
	// KindVCInvariant is a version-control counter inversion: vtnc
	// observed above tnc-1, violating the Transaction Visibility
	// Property's precondition (paper Section 5).
	KindVCInvariant = "vc-invariant"
	// KindSnapshotRead is a read-only transaction that observed a
	// version newer than its pinned start number.
	KindSnapshotRead = "snapshot-read"
)

// Options configures an Auditor. The zero value is usable.
type Options struct {
	// Window is K, the number of committed read-write transactions kept
	// in the live MVSG (<= 0 selects DefaultWindow).
	Window int
	// Queue is the event channel capacity (<= 0 selects DefaultQueue).
	// When full, events are dropped and counted, never blocked on.
	Queue int
	// Alarms is the recent-alarms buffer size (<= 0: DefaultAlarms).
	Alarms int
	// Spans is the recent-spans buffer size (<= 0: DefaultSpans).
	Spans int
	// Gauges, when set, is sampled after each commit to check the
	// version-control invariant vtnc <= tnc-1. The implementation must
	// load vtnc before tnc (both only grow, so that order makes the
	// check sound under concurrency).
	Gauges func() (tnc, vtnc uint64)
	// Logger receives one Warn line per alarm (nil: slog.Default()).
	Logger *slog.Logger
	// OnAlarm, when set, is called once per raised alarm on the
	// auditor's consumer goroutine with internal state locked: it must
	// be non-blocking (hand off to a channel — the flight recorder's
	// TriggerAsync is the intended consumer) and must not call back
	// into the auditor.
	OnAlarm func(Alarm)
}

// Alarm is one detected anomaly.
type Alarm struct {
	Seq     uint64   `json:"seq"`
	At      int64    `json:"at_ns"`
	Kind    string   `json:"kind"`
	Message string   `json:"message"`
	Txs     []uint64 `json:"txs,omitempty"`
}

// Span is one finished transaction's lifecycle timing.
type Span struct {
	Tx      uint64 `json:"tx"`
	Class   string `json:"class"`
	TN      uint64 `json:"tn,omitempty"`
	BeginAt int64  `json:"begin_at_ns"`
	// FirstOpNS is begin → first read/write; 0 if no operation ran.
	FirstOpNS int64 `json:"first_op_ns,omitempty"`
	// TotalNS is begin → commit/abort.
	TotalNS int64  `json:"total_ns"`
	Outcome string `json:"outcome"` // "commit" or "abort"
}

// Latency summarizes one class's commit latencies (nanoseconds).
type Latency struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Snapshot is the auditor's point-in-time state: the JSON document at
// /debug/mvdb/audit.
type Snapshot struct {
	Window         int     `json:"window"`
	Received       uint64  `json:"events_received"`
	Dropped        uint64  `json:"events_dropped"`
	Processed      uint64  `json:"events_processed"`
	Pending        int     `json:"pending_txns"`
	PendingEvicted uint64  `json:"pending_evicted,omitempty"`
	OpsTruncated   uint64  `json:"ops_truncated,omitempty"`
	GraphNodes     int     `json:"graph_nodes"`
	GraphWriters   int     `json:"graph_writers"`
	GraphEdges     int     `json:"graph_edges"`
	GraphEvicted   uint64  `json:"graph_evicted"`
	AlarmsTotal    uint64  `json:"alarms_total"`
	Alarms         []Alarm `json:"alarms,omitempty"`
	// Latency maps class name ("read-only"/"read-write") to the commit
	// latency summary for that class.
	Latency map[string]Latency `json:"latency,omitempty"`
	Spans   []Span             `json:"recent_spans,omitempty"`
}

// Event kinds on the internal channel.
const (
	evBegin uint8 = iota
	evSnapshot
	evRead
	evWrite
	evCommit
	evAbort
)

type event struct {
	kind  uint8
	tx    uint64
	tn    uint64
	class engine.Class
	key   string
	at    int64 // unix nanoseconds, stamped at the producer
}

// txState is a transaction the auditor has seen begin but not finish.
type txState struct {
	class     engine.Class
	beginAt   int64
	firstOpAt int64
	sn        uint64
	hasSN     bool
	snAlarmed bool
	reads     []history.Op
	writes    []history.Op
}

// Auditor is the online audit pipeline. It implements engine.Recorder
// (and engine.SnapshotRecorder), so it attaches to any engine through
// the ordinary recorder plumbing; all Record* methods are non-blocking
// and safe for concurrent use.
type Auditor struct {
	opts   Options
	log    *slog.Logger
	window int

	ch       chan event
	quit     chan struct{}
	done     chan struct{}
	flushReq chan chan struct{}
	closed   atomic.Bool
	received atomic.Uint64
	dropped  atomic.Uint64

	// Everything below is consumer state, written only by the run
	// goroutine; mu lets Snapshot read it consistently.
	mu             sync.Mutex
	g              *history.Graph
	pending        map[uint64]*txState
	pendingOrder   []uint64
	pendingCap     int
	processed      uint64
	pendingEvicted uint64
	opsTruncated   uint64
	alarmSeq       uint64
	alarms         []Alarm // most recent last, capped at opts.Alarms
	spans          []Span  // most recent last, capped at opts.Spans
	latency        map[engine.Class]*metrics.Histogram
}

// New starts an auditor. Callers must Close it to stop the consumer
// goroutine.
func New(opts Options) *Auditor {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Queue <= 0 {
		opts.Queue = DefaultQueue
	}
	if opts.Alarms <= 0 {
		opts.Alarms = DefaultAlarms
	}
	if opts.Spans <= 0 {
		opts.Spans = DefaultSpans
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	pendingCap := 4 * opts.Window
	if pendingCap < 1024 {
		pendingCap = 1024
	}
	a := &Auditor{
		opts:       opts,
		log:        logger,
		window:     opts.Window,
		ch:         make(chan event, opts.Queue),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		flushReq:   make(chan chan struct{}),
		g:          history.NewGraph(history.Windowed),
		pending:    make(map[uint64]*txState),
		pendingCap: pendingCap,
		latency: map[engine.Class]*metrics.Histogram{
			engine.ReadOnly:  metrics.NewHistogram(),
			engine.ReadWrite: metrics.NewHistogram(),
		},
	}
	go a.run()
	return a
}

// Close stops the consumer after draining whatever is already queued.
// Events recorded after Close begin are silently discarded. Idempotent.
func (a *Auditor) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(a.quit)
	<-a.done
	return nil
}

// Drain blocks until every event enqueued before the call has been
// processed — the synchronization point for tests and mvverify, which
// need the online verdict to cover the full run. No-op after Close.
func (a *Auditor) Drain() {
	ack := make(chan struct{})
	select {
	case a.flushReq <- ack:
		<-ack
	case <-a.done:
	}
}

// --- producer side: engine.Recorder ---------------------------------

func (a *Auditor) send(ev event) {
	if a.closed.Load() {
		return
	}
	select {
	case a.ch <- ev:
		a.received.Add(1)
	default:
		a.dropped.Add(1)
	}
}

// RecordBegin implements engine.Recorder.
func (a *Auditor) RecordBegin(txID uint64, class engine.Class) {
	a.send(event{kind: evBegin, tx: txID, class: class, at: time.Now().UnixNano()})
}

// RecordSnapshot implements engine.SnapshotRecorder.
func (a *Auditor) RecordSnapshot(txID, sn uint64) {
	a.send(event{kind: evSnapshot, tx: txID, tn: sn})
}

// RecordRead implements engine.Recorder.
func (a *Auditor) RecordRead(txID uint64, key string, versionTN uint64) {
	a.send(event{kind: evRead, tx: txID, key: key, tn: versionTN, at: time.Now().UnixNano()})
}

// RecordWrite implements engine.Recorder.
func (a *Auditor) RecordWrite(txID uint64, key string, versionTN uint64) {
	a.send(event{kind: evWrite, tx: txID, key: key, tn: versionTN, at: time.Now().UnixNano()})
}

// RecordCommit implements engine.Recorder.
func (a *Auditor) RecordCommit(txID, tn uint64) {
	a.send(event{kind: evCommit, tx: txID, tn: tn, at: time.Now().UnixNano()})
}

// RecordAbort implements engine.Recorder.
func (a *Auditor) RecordAbort(txID uint64) {
	a.send(event{kind: evAbort, tx: txID, at: time.Now().UnixNano()})
}

// --- consumer --------------------------------------------------------

func (a *Auditor) run() {
	defer close(a.done)
	for {
		select {
		case ev := <-a.ch:
			a.process(ev)
		case ack := <-a.flushReq:
			a.drainQueued()
			close(ack)
		case <-a.quit:
			a.drainQueued()
			return
		}
	}
}

func (a *Auditor) drainQueued() {
	for {
		select {
		case ev := <-a.ch:
			a.process(ev)
		default:
			return
		}
	}
}

func (a *Auditor) process(ev event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.processed++
	switch ev.kind {
	case evBegin:
		if _, dup := a.pending[ev.tx]; dup {
			break
		}
		a.pending[ev.tx] = &txState{class: ev.class, beginAt: ev.at}
		a.pendingOrder = append(a.pendingOrder, ev.tx)
		// A transaction whose finish event was dropped would pin its
		// state forever; cap the pending set FIFO instead.
		for len(a.pending) > a.pendingCap && len(a.pendingOrder) > 0 {
			old := a.pendingOrder[0]
			a.pendingOrder = a.pendingOrder[1:]
			if _, ok := a.pending[old]; ok {
				delete(a.pending, old)
				a.pendingEvicted++
			}
		}
	case evSnapshot:
		if t := a.pending[ev.tx]; t != nil {
			t.sn, t.hasSN = ev.tn, true
		}
	case evRead:
		t := a.pending[ev.tx]
		if t == nil {
			break
		}
		if t.firstOpAt == 0 {
			t.firstOpAt = ev.at
		}
		if t.class == engine.ReadOnly && t.hasSN && ev.tn > t.sn && !t.snAlarmed {
			t.snAlarmed = true
			a.alarm(ev.at, KindSnapshotRead, fmt.Sprintf(
				"read-only tx %d pinned snapshot %d but read version %d of %q",
				ev.tx, t.sn, ev.tn, ev.key), []uint64{ev.tx})
		}
		if len(t.reads) >= maxOpsPerTx {
			a.opsTruncated++
			break
		}
		t.reads = append(t.reads, history.Op{Key: ev.key, VersionTN: ev.tn})
	case evWrite:
		t := a.pending[ev.tx]
		if t == nil {
			break
		}
		if t.firstOpAt == 0 {
			t.firstOpAt = ev.at
		}
		if len(t.writes) >= maxOpsPerTx {
			a.opsTruncated++
			break
		}
		t.writes = append(t.writes, history.Op{Key: ev.key, VersionTN: ev.tn})
	case evCommit:
		t := a.pending[ev.tx]
		if t == nil {
			break
		}
		delete(a.pending, ev.tx)
		a.finishSpan(ev, t, "commit")
		a.audit(ev, t)
	case evAbort:
		t := a.pending[ev.tx]
		if t == nil {
			break
		}
		delete(a.pending, ev.tx)
		a.finishSpan(ev, t, "abort")
	}
}

func (a *Auditor) finishSpan(ev event, t *txState, outcome string) {
	sp := Span{
		Tx:      ev.tx,
		Class:   t.class.String(),
		BeginAt: t.beginAt,
		TotalNS: ev.at - t.beginAt,
		Outcome: outcome,
	}
	if outcome == "commit" {
		sp.TN = ev.tn
	}
	if t.firstOpAt != 0 {
		sp.FirstOpNS = t.firstOpAt - t.beginAt
	}
	if len(a.spans) >= a.opts.Spans {
		copy(a.spans, a.spans[1:])
		a.spans = a.spans[:len(a.spans)-1]
	}
	a.spans = append(a.spans, sp)
	if outcome == "commit" {
		a.latency[t.class].Record(sp.TotalNS)
	}
}

// audit folds one committed transaction into the windowed MVSG and
// checks everything checkable at that point.
func (a *Auditor) audit(ev event, t *txState) {
	h := history.TxHistory{ID: ev.tx, TN: ev.tn, Reads: t.reads, Writes: t.writes}
	edges, err := a.g.Add(h)
	if err != nil {
		a.alarm(ev.at, KindIntegrity, err.Error(), []uint64{ev.tx})
	}
	// Each new edge u->v can close a cycle only through a path v ~> u
	// that already existed; check exactly that, and report at most one
	// cycle per commit to keep a steady-state violation from flooding
	// the alarm buffer.
	for _, e := range edges {
		p := a.g.Path(e.To, e.From)
		if p == nil {
			continue
		}
		cycle := append(p, e.To)
		a.alarm(ev.at, KindCycle, "MVSG cycle: "+a.formatCycle(cycle), cycle[:len(cycle)-1])
		break
	}
	// Evict down to the window: at most K committed read-write
	// transactions, and a bounded total including read-only nodes.
	for a.g.Writers() > a.window {
		a.g.EvictOldest()
	}
	for a.g.Len() > 4*a.window {
		a.g.EvictOldest()
	}
	if a.opts.Gauges != nil {
		tnc, vtnc := a.opts.Gauges()
		if tnc > 0 && vtnc > tnc-1 {
			a.alarm(ev.at, KindVCInvariant, fmt.Sprintf(
				"vtnc %d exceeds tnc-1 (tnc=%d): unassigned serialization positions visible",
				vtnc, tnc), nil)
		}
	}
}

func (a *Auditor) formatCycle(cycle []uint64) string {
	var sb strings.Builder
	for i, id := range cycle {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		if id == 0 {
			sb.WriteString("T0(bootstrap)")
			continue
		}
		fmt.Fprintf(&sb, "T%d(tn=%d)", id, a.g.TN(id))
	}
	return sb.String()
}

func (a *Auditor) alarm(at int64, kind, msg string, txs []uint64) {
	a.alarmSeq++
	al := Alarm{Seq: a.alarmSeq, At: at, Kind: kind, Message: msg, Txs: txs}
	if len(a.alarms) >= a.opts.Alarms {
		copy(a.alarms, a.alarms[1:])
		a.alarms = a.alarms[:len(a.alarms)-1]
	}
	a.alarms = append(a.alarms, al)
	a.log.Warn("mvdb audit alarm", "kind", kind, "seq", al.Seq, "message", msg)
	if a.opts.OnAlarm != nil {
		a.opts.OnAlarm(al)
	}
}

// --- inspection ------------------------------------------------------

// Dropped returns the number of events discarded because the queue was
// full (or the auditor closed).
func (a *Auditor) Dropped() uint64 { return a.dropped.Load() }

// Received returns the number of events accepted onto the queue.
func (a *Auditor) Received() uint64 { return a.received.Load() }

// AlarmsTotal returns the number of alarms ever raised.
func (a *Auditor) AlarmsTotal() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alarmSeq
}

// Snapshot returns the auditor's current state. Safe to call
// concurrently with recording; call Drain first when the snapshot must
// cover everything already recorded.
func (a *Auditor) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	sn := Snapshot{
		Window:         a.window,
		Received:       a.received.Load(),
		Dropped:        a.dropped.Load(),
		Processed:      a.processed,
		Pending:        len(a.pending),
		PendingEvicted: a.pendingEvicted,
		OpsTruncated:   a.opsTruncated,
		GraphNodes:     a.g.Len(),
		GraphWriters:   a.g.Writers(),
		GraphEdges:     a.g.Edges(),
		GraphEvicted:   a.g.Evicted(),
		AlarmsTotal:    a.alarmSeq,
		Alarms:         append([]Alarm(nil), a.alarms...),
		Spans:          append([]Span(nil), a.spans...),
		Latency:        make(map[string]Latency, len(a.latency)),
	}
	for class, h := range a.latency {
		if h.Count() == 0 {
			continue
		}
		qs := h.Quantiles([]float64{50, 95, 99})
		sn.Latency[class.String()] = Latency{
			Count:  h.Count(),
			MeanNS: h.Mean(),
			P50NS:  qs[0],
			P95NS:  qs[1],
			P99NS:  qs[2],
			MaxNS:  h.Max(),
		}
	}
	return sn
}

// HTTPHandler serves the Snapshot as indented JSON (the
// /debug/mvdb/audit endpoint).
func (a *Auditor) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		enc.Encode(a.Snapshot())
		w.Write(buf.Bytes())
	})
}

// WriteProm appends the auditor's metric families in Prometheus text
// format; obs.Serve's WithPromExtra hooks it into /metrics.
func (a *Auditor) WriteProm(w io.Writer) {
	a.mu.Lock()
	received := a.received.Load()
	dropped := a.dropped.Load()
	alarms := a.alarmSeq
	nodes, writers, edges := a.g.Len(), a.g.Writers(), a.g.Edges()
	type classLat struct {
		label string
		sum   metrics.Summary
		q     []int64
	}
	var lats []classLat
	for _, class := range []engine.Class{engine.ReadOnly, engine.ReadWrite} {
		h := a.latency[class]
		if h.Count() == 0 {
			continue
		}
		label := "ro"
		if class == engine.ReadWrite {
			label = "rw"
		}
		lats = append(lats, classLat{label, h.Summarize(), h.Quantiles([]float64{50, 95, 99})})
	}
	a.mu.Unlock()

	p := obs.NewPromWriter(w)
	p.Header("mvdb_audit_events_total", "counter", "Events accepted onto the audit queue.")
	p.Int("mvdb_audit_events_total", int64(received))
	p.Header("mvdb_audit_dropped_total", "counter", "Events dropped because the audit queue was full.")
	p.Int("mvdb_audit_dropped_total", int64(dropped))
	p.Header("mvdb_audit_alarms_total", "counter", "Serializability and invariant alarms raised.")
	p.Int("mvdb_audit_alarms_total", int64(alarms))
	p.Header("mvdb_audit_window", "gauge", "Configured MVSG window (committed read-write transactions).")
	p.Int("mvdb_audit_window", int64(a.window))
	p.Header("mvdb_audit_graph_nodes", "gauge", "Transactions currently in the windowed MVSG.")
	p.Int("mvdb_audit_graph_nodes", int64(nodes))
	p.Header("mvdb_audit_graph_writers", "gauge", "Read-write transactions currently in the windowed MVSG.")
	p.Int("mvdb_audit_graph_writers", int64(writers))
	p.Header("mvdb_audit_graph_edges", "gauge", "Edges currently in the windowed MVSG.")
	p.Int("mvdb_audit_graph_edges", int64(edges))
	if len(lats) > 0 {
		const nsPerSec = 1e9
		p.Header("mvdb_txn_latency_seconds", "summary", "Committed transaction latency (begin to commit), by class.")
		for _, l := range lats {
			p.Value("mvdb_txn_latency_seconds", float64(l.q[0])/nsPerSec, "class", l.label, "quantile", "0.5")
			p.Value("mvdb_txn_latency_seconds", float64(l.q[1])/nsPerSec, "class", l.label, "quantile", "0.95")
			p.Value("mvdb_txn_latency_seconds", float64(l.q[2])/nsPerSec, "class", l.label, "quantile", "0.99")
			p.Value("mvdb_txn_latency_seconds_sum", float64(l.sum.TotalNanoseconds)/nsPerSec, "class", l.label)
			p.Int("mvdb_txn_latency_seconds_count", int64(l.sum.Count), "class", l.label)
		}
	}
}
