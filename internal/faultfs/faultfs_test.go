package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if _, err := f.Write(p); err != nil {
		t.Fatal(err)
	}
}

func content(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	return b
}

// Unsynced bytes do not survive a crash; synced bytes do.
func TestCrashLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	fs := New(Plan{Rules: []Rule{{Op: OpSync, Nth: 2, Fault: Fault{Crash: true}}}})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable:"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("lost"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, path)); got != "durable:" {
		t.Fatalf("surviving content = %q, want %q", got, "durable:")
	}
}

// A torn write leaves exactly the scripted prefix of the interrupted
// write.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	fs := New(Plan{Rules: []Rule{{Op: OpWrite, Nth: 2, Fault: Fault{Crash: true, Torn: 3}}}})
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	fs.SyncDir(dir)
	writeAll(t, f, []byte("base."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write err = %v, want ErrCrashed", err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, path)); got != "base.abc" {
		t.Fatalf("surviving content = %q, want %q", got, "base.abc")
	}
}

// Corrupt garbles the surviving torn bytes but never the durable prefix.
func TestTornCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	fs := New(Plan{Rules: []Rule{{Op: OpSync, Nth: 2, Fault: Fault{Crash: true, Torn: 4, Corrupt: true}}}})
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	fs.SyncDir(dir)
	writeAll(t, f, []byte("keep"))
	f.Sync()
	writeAll(t, f, []byte("0123456789"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	got := content(t, path)
	if len(got) != 8 {
		t.Fatalf("surviving length = %d, want 8", len(got))
	}
	if string(got[:4]) != "keep" {
		t.Fatalf("durable prefix corrupted: %q", got)
	}
	if string(got[4:]) == "0123" {
		t.Fatal("torn bytes not garbled")
	}
}

// A rename not followed by SyncDir rolls back on crash: the old
// destination content returns and the temp file reappears.
func TestRenameRollback(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap.tmp")
	snap := filepath.Join(dir, "snap")
	if err := os.WriteFile(snap, []byte("old-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(Plan{Rules: []Rule{{Op: OpSyncDir, Nth: 2, Fault: Fault{Crash: true}}}})
	f, _ := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	fs.SyncDir(dir) // durabilize the temp file's creation
	writeAll(t, f, []byte("new-snapshot"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, snap); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("syncdir err = %v, want ErrCrashed", err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, snap)); got != "old-snapshot" {
		t.Fatalf("snap = %q, want rollback to old-snapshot", got)
	}
	if got := string(content(t, tmp)); got != "new-snapshot" {
		t.Fatalf("tmp = %q, want new-snapshot restored", got)
	}
}

// A rename followed by SyncDir survives the crash.
func TestRenameDurableAfterSyncDir(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap.tmp")
	snap := filepath.Join(dir, "snap")
	os.WriteFile(snap, []byte("old"), 0o644)
	fs := New(Plan{Rules: []Rule{{Op: OpSync, Path: "other", Fault: Fault{Crash: true}}}})
	f, _ := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	fs.SyncDir(dir)
	writeAll(t, f, []byte("new"))
	f.Sync()
	if err := fs.Rename(tmp, snap); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	other, _ := fs.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644)
	other.Write([]byte("x"))
	if err := other.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, snap)); got != "new" {
		t.Fatalf("snap = %q, want new (rename was durable)", got)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp still exists after durable rename")
	}
}

// KeepRename: the crash hits at the rename but the dirent survives.
func TestRenameKeep(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap.tmp")
	snap := filepath.Join(dir, "snap")
	os.WriteFile(snap, []byte("old"), 0o644)
	fs := New(Plan{Rules: []Rule{{Op: OpRename, Fault: Fault{Crash: true, KeepRename: true}}}})
	f, _ := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	fs.SyncDir(dir)
	writeAll(t, f, []byte("new"))
	f.Sync()
	if err := fs.Rename(tmp, snap); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename err = %v, want ErrCrashed", err)
	}
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, snap)); got != "new" {
		t.Fatalf("snap = %q, want new (rename kept)", got)
	}
}

// A file created but never dir-synced vanishes on crash.
func TestCreateNotDurableWithoutSyncDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "newlog")
	fs := New(Plan{Rules: []Rule{{Op: OpSync, Nth: 2, Fault: Fault{Crash: true}}}})
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("data"))
	f.Sync() // data fsync alone does not durabilize the dirent
	f.Sync()
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("file created without SyncDir survived the crash")
	}
}

// Transient injected errors fail one operation; the filesystem keeps
// working. Sticky errors keep failing.
func TestInjectedErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	fs := New(Plan{Rules: []Rule{
		{Op: OpSync, Nth: 1, Fault: Fault{Err: true}},
	}})
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	fs.SyncDir(dir)
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync err = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync err = %v, want nil (transient)", err)
	}

	fs2 := New(Plan{Rules: []Rule{{Op: OpSync, Fault: Fault{Err: true, Sticky: true}}}})
	f2, _ := fs2.OpenFile(filepath.Join(dir, "log2"), os.O_CREATE|os.O_WRONLY, 0o644)
	f2.Write([]byte("x"))
	for i := 0; i < 3; i++ {
		if err := f2.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky sync #%d err = %v, want ErrInjected", i, err)
		}
	}
}

// The trace records mutating ops with stable global indexes, and AtOp
// rules target them exactly.
func TestTraceAndAtOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	run := func(plan Plan, trace bool) *FaultFS {
		fs := New(plan)
		if trace {
			fs.EnableTrace()
		}
		f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fs
		}
		if err := fs.SyncDir(dir); err != nil {
			return fs
		}
		for i := 0; i < 3; i++ {
			if _, err := f.Write([]byte("record")); err != nil {
				return fs
			}
			if err := f.Sync(); err != nil {
				return fs
			}
		}
		f.Close()
		return fs
	}
	fs := run(Plan{}, true)
	tr := fs.Trace()
	if len(tr) != 8 { // create, syncdir, 3 x (write, sync)
		t.Fatalf("trace length = %d, want 8: %+v", len(tr), tr)
	}
	for i, r := range tr {
		if r.Index != i+1 {
			t.Fatalf("trace index %d = %d", i, r.Index)
		}
		if !r.Mutates() {
			t.Fatalf("op %v unexpectedly non-mutating", r.Op)
		}
	}
	// Crash exactly at the 2nd write (global op 5).
	fs2 := run(Plan{Rules: []Rule{{AtOp: 5, Fault: Fault{Crash: true}}}}, false)
	if !fs2.Crashed() {
		t.Fatal("AtOp rule did not fire")
	}
	if err := fs2.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	if got := string(content(t, path)); got != "record" {
		t.Fatalf("surviving content = %q, want one record", got)
	}
}

// OS passthrough smoke: the production FS round-trips.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	r, err := OS.Open(path + "2")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := r.Stat()
	if err != nil || fi.Size() != 5 {
		t.Fatalf("stat = %v, %v", fi, err)
	}
	r.Close()
	if err := OS.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}
