// Package faultfs is a virtual filesystem shim with deterministic
// crash-fault injection, the substrate of the crash-torture harness
// (internal/crashtest).
//
// The durability layers of this repository (internal/wal, the checkpoint
// writer) perform all file operations through the FS interface. The
// production implementation, OS, passes straight through to package os.
// FaultFS wraps a real directory and injects failures at scripted
// points: short/torn writes, sticky and transient fsync errors, a
// simulated power cut at an arbitrary operation, and crash-before/after
// rename on snapshot files.
//
// # Crash model
//
// FaultFS tracks, per file, which byte prefix is covered by a completed
// Sync ("durable") and which bytes have merely been written. A simulated
// power cut (Fault.Crash) freezes the filesystem — every subsequent
// operation fails with ErrCrashed — and ApplyCrash then rewrites the
// real directory to the surviving state:
//
//   - each file is truncated to its durable prefix, plus a scripted
//     number of torn bytes (Fault.Torn) of the unsynced tail of the file
//     the crashing operation targeted, optionally garbled
//     (Fault.Corrupt) to model a torn sector;
//   - renames that were not yet made durable by a SyncDir of the parent
//     directory are rolled back (the destination's old content returns,
//     the source file reappears), unless the fault says the rename's
//     dirent happened to be journaled (Fault.KeepRename);
//   - files created since the last SyncDir of their directory lose
//     their directory entry and vanish.
//
// The model deliberately makes directory-entry durability require an
// explicit SyncDir, the POSIX-pessimistic reading that production
// systems (SQLite, LevelDB) code against; data fsync alone never
// durabilizes a create or rename here. Truncates are modeled as
// immediately durable (metadata journaling), which is why the write
// paths never O_TRUNC a precious file in place — they write a temp file
// and rename.
//
// The zero-fault FaultFS is also the harness's tracer: every mutating
// operation is recorded with a global index, and a scripted Rule can
// target exactly one of those indexes (AtOp), letting a test enumerate
// every crash point of a deterministic workload.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation after a simulated power cut.
var ErrCrashed = errors.New("faultfs: simulated power cut")

// ErrInjected is returned by an operation that a Rule failed without
// crashing the filesystem (e.g. a transient fsync error).
var ErrInjected = errors.New("faultfs: injected I/O error")

// File is the file handle surface the durability layers need.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the durability layers need. OS is the
// production passthrough; FaultFS injects faults.
type FS interface {
	// OpenFile opens a file for writing (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath's file.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports file metadata.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, durabilizing creates, removes and
	// renames inside it. Best effort on platforms without directory
	// fsync.
	SyncDir(name string) error
}

// OS is the production FS: package os, no faults.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)        { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir fsyncs the directory. Errors from the sync itself are ignored:
// some filesystems and platforms reject fsync on directories, and the
// caller can do no better than proceed.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}

// Op classifies a mutating filesystem operation for rule matching and
// tracing.
type Op int

const (
	// OpCreate is an OpenFile call that creates or truncates a file.
	OpCreate Op = iota
	// OpOpen is an OpenFile call on an existing file (no truncation).
	OpOpen
	// OpWrite is one File.Write call.
	OpWrite
	// OpSync is one File.Sync call.
	OpSync
	// OpTruncate is one File.Truncate call.
	OpTruncate
	// OpRename is one FS.Rename call.
	OpRename
	// OpRemove is one FS.Remove call.
	OpRemove
	// OpSyncDir is one FS.SyncDir call.
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Fault is what happens when a Rule fires.
type Fault struct {
	// Crash simulates a power cut at this operation: the operation (and
	// every later one) fails with ErrCrashed, and ApplyCrash computes
	// the surviving bytes.
	Crash bool
	// Torn is the number of unsynced tail bytes of the targeted file
	// that survive the crash (for OpWrite, bytes of the interrupted
	// write reach the file first). Zero is the adversarial default:
	// only fsynced bytes survive.
	Torn int
	// Corrupt garbles the surviving torn bytes (bit-flips), modeling a
	// torn sector rather than a clean prefix.
	Corrupt bool
	// KeepRename applies to a Crash at OpRename: the rename takes
	// effect and survives (its dirent happened to be journaled). The
	// default is the adversarial one — the crash hits before the rename
	// is effective.
	KeepRename bool
	// Err fails the operation with ErrInjected without crashing; the
	// filesystem keeps working. With Sticky, every later operation
	// matching the same rule also fails.
	Err bool
	// Delay stalls the operation for this long before it executes (a
	// slow-device model: the fsync that takes tens of milliseconds, the
	// write absorbed by a saturated disk). The filesystem stays unlocked
	// during the stall, so only the delayed operation is slow. Ignored
	// when the same fault also crashes or errors the operation.
	Delay time.Duration
	// Sticky keeps an Err or Delay rule firing on every subsequent
	// match (one-shot otherwise).
	Sticky bool
}

// Rule triggers a Fault at a scripted point: either the Nth operation
// matching (Op, Path substring), or the operation with global index
// AtOp. The zero Path matches every path.
type Rule struct {
	// Op is the operation kind to match (ignored when AtOp is set).
	Op Op
	// Path, when non-empty, restricts the match to operations whose
	// path contains it as a substring.
	Path string
	// Nth is the 1-based occurrence among matching operations (0 means
	// first).
	Nth int
	// AtOp, when positive, matches the operation with this global
	// 1-based index (as reported by Trace) instead of (Op, Path, Nth).
	AtOp int
	// Fault is applied when the rule fires.
	Fault Fault
}

// Plan is a scripted set of fault rules.
type Plan struct {
	Rules []Rule
}

// OpRecord is one traced operation.
type OpRecord struct {
	// Index is the global 1-based operation index (usable as Rule.AtOp).
	Index int
	Op    Op
	Path  string
	// N is the byte count for writes, the size for truncates.
	N int
}

// Mutates reports whether the recorded operation can change on-disk
// state — the operations worth crashing at.
func (r OpRecord) Mutates() bool {
	switch r.Op {
	case OpCreate, OpWrite, OpSync, OpTruncate, OpRename, OpRemove, OpSyncDir:
		return true
	}
	return false
}

type fileState struct {
	size    int64 // bytes written (real file size)
	durable int64 // prefix covered by a completed Sync
	torn    int64 // extra unsynced bytes surviving the crash (crash target only)
	corrupt bool  // garble the torn bytes on ApplyCrash
}

type renameUndo struct {
	oldpath, newpath string
	destExisted      bool
	destContent      []byte
}

type ruleState struct {
	rule    Rule
	matched int
	fired   bool
}

// FaultFS is an FS over real files with scripted fault injection. All
// methods are safe for concurrent use.
type FaultFS struct {
	mu             sync.Mutex
	rules          []*ruleState
	opCount        int
	trace          []OpRecord
	tracing        bool
	crashed        bool
	files          map[string]*fileState
	pendingRenames []renameUndo
	pendingCreates map[string]bool
}

// New returns a FaultFS executing the given plan. A zero plan injects
// nothing and behaves like OS plus state tracking.
func New(plan Plan) *FaultFS {
	f := &FaultFS{
		files:          make(map[string]*fileState),
		pendingCreates: make(map[string]bool),
	}
	for _, r := range plan.Rules {
		r := r
		f.rules = append(f.rules, &ruleState{rule: r})
	}
	return f
}

// EnableTrace starts recording every operation (see Trace).
func (f *FaultFS) EnableTrace() {
	f.mu.Lock()
	f.tracing = true
	f.mu.Unlock()
}

// Trace returns the operations recorded since EnableTrace.
func (f *FaultFS) Trace() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]OpRecord, len(f.trace))
	copy(out, f.trace)
	return out
}

// Crashed reports whether the simulated power cut has happened.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashNow triggers the power cut directly (the torture harness's
// external kill switch). Subsequent operations fail with ErrCrashed.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Ops returns the number of operations performed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

// begin accounts one operation and evaluates the plan. It returns the
// firing fault (if any) and an error the operation must return
// immediately (ErrCrashed / ErrInjected). Callers apply fault side
// effects (torn bytes, kept renames) themselves.
func (f *FaultFS) begin(op Op, path string, n int) (Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.beginLocked(op, path, n)
}

func (f *FaultFS) beginLocked(op Op, path string, n int) (Fault, error) {
	if f.crashed {
		return Fault{}, ErrCrashed
	}
	f.opCount++
	if f.tracing {
		f.trace = append(f.trace, OpRecord{Index: f.opCount, Op: op, Path: path, N: n})
	}
	var delayed Fault
	for _, rs := range f.rules {
		if rs.fired && !rs.rule.Fault.Sticky {
			continue
		}
		match := false
		if rs.rule.AtOp > 0 {
			match = rs.rule.AtOp == f.opCount
		} else if rs.rule.Op == op && strings.Contains(path, rs.rule.Path) {
			if !rs.fired {
				rs.matched++
			}
			nth := rs.rule.Nth
			if nth <= 0 {
				nth = 1
			}
			match = rs.fired || rs.matched == nth
		}
		if !match {
			continue
		}
		rs.fired = true
		ft := rs.rule.Fault
		if ft.Crash {
			f.crashed = true
			return ft, ErrCrashed
		}
		if ft.Err {
			return ft, ErrInjected
		}
		if ft.Delay > delayed.Delay {
			delayed = ft
		}
	}
	return delayed, nil
}

// stall sleeps out a Delay fault with the filesystem unlocked, so a
// scripted stall on one operation does not freeze unrelated ones. The
// caller must hold f.mu; it is held again on return.
func (f *FaultFS) stall(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Unlock()
	time.Sleep(d)
	f.mu.Lock()
}

func (f *FaultFS) state(path string) *fileState {
	st := f.files[path]
	if st == nil {
		st = &fileState{}
		f.files[path] = st
	}
	return st
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fi, statErr := os.Stat(name)
	existed := statErr == nil
	op := OpOpen
	if !existed && flag&os.O_CREATE != 0 || existed && flag&os.O_TRUNC != 0 {
		op = OpCreate
	}
	ft, err := f.beginLocked(op, name, 0)
	if err != nil {
		return nil, err
	}
	f.stall(ft.Delay)
	real, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	switch {
	case !existed:
		f.files[name] = &fileState{}
		f.pendingCreates[name] = true
	case flag&os.O_TRUNC != 0:
		// Truncation-on-open is modeled as immediately durable; the old
		// content is gone (which is why precious files are replaced via
		// temp file + rename, never O_TRUNC'd in place).
		f.files[name] = &fileState{}
	default:
		if f.files[name] == nil {
			// Pre-existing file first seen now: its current content
			// survived whatever came before; treat it as durable.
			f.files[name] = &fileState{size: fi.Size(), durable: fi.Size()}
		}
	}
	return &faultFile{fs: f, path: name, real: real}, nil
}

// Open implements FS (read-only; not traced, injects nothing but
// respects the crashed state).
func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	real, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: name, real: real, readOnly: true}, nil
}

// Rename implements FS. The rename is performed immediately but remains
// pending — rolled back by a crash — until a SyncDir of the parent
// directory durabilizes it.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, err := f.beginLocked(OpRename, newpath, 0)
	if err != nil {
		if errors.Is(err, ErrCrashed) && ft.KeepRename {
			// The lucky window: the dirent was journaled before the cut.
			// The rename takes effect and is durable.
			if rerr := os.Rename(oldpath, newpath); rerr != nil {
				return rerr
			}
			if st := f.files[oldpath]; st != nil {
				f.files[newpath] = st
			}
			delete(f.files, oldpath)
			delete(f.pendingCreates, oldpath)
		}
		return err
	}
	f.stall(ft.Delay)
	var undo renameUndo
	undo.oldpath, undo.newpath = oldpath, newpath
	if content, rerr := os.ReadFile(newpath); rerr == nil {
		undo.destExisted = true
		undo.destContent = content
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.pendingRenames = append(f.pendingRenames, undo)
	if st := f.files[oldpath]; st != nil {
		f.files[newpath] = st
	}
	delete(f.files, oldpath)
	return nil
}

// Remove implements FS. Removal durability is not modeled (removed
// files never reappear after a crash); the recovery paths only remove
// disposable temp files.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, berr := f.beginLocked(OpRemove, name, 0)
	if berr != nil {
		return berr
	}
	f.stall(ft.Delay)
	err := os.Remove(name)
	if err == nil || errors.Is(err, os.ErrNotExist) {
		delete(f.files, name)
		delete(f.pendingCreates, name)
	}
	return err
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return os.Stat(name)
}

// SyncDir implements FS: it durabilizes every pending create and rename
// under dir.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, err := f.beginLocked(OpSyncDir, dir, 0)
	if err != nil {
		return err
	}
	f.stall(ft.Delay)
	kept := f.pendingRenames[:0]
	for _, u := range f.pendingRenames {
		if filepath.Dir(u.newpath) != dir {
			kept = append(kept, u)
		}
	}
	f.pendingRenames = kept
	for p := range f.pendingCreates {
		if filepath.Dir(p) == dir {
			delete(f.pendingCreates, p)
		}
	}
	return nil
}

// ApplyCrash materializes the post-crash directory state: files are
// truncated to their surviving prefix, non-durable renames are rolled
// back, and non-durable creates vanish. It must be called after the
// crash fired (or CrashNow); the FaultFS stays crashed — recover with a
// fresh FS over the same directory.
func (f *FaultFS) ApplyCrash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		return errors.New("faultfs: ApplyCrash before crash")
	}
	// 1. Truncate every tracked file to its surviving prefix.
	for path, st := range f.files {
		fi, err := os.Stat(path)
		if err != nil {
			continue // vanished or never materialized
		}
		survive := st.durable + st.torn
		if survive > fi.Size() {
			survive = fi.Size()
		}
		if fi.Size() > survive {
			if err := os.Truncate(path, survive); err != nil {
				return fmt.Errorf("faultfs: apply crash: %w", err)
			}
		}
		if st.corrupt && st.torn > 0 && survive > st.durable {
			if err := garble(path, st.durable, survive); err != nil {
				return fmt.Errorf("faultfs: apply crash: %w", err)
			}
		}
	}
	// 2. Roll back pending renames, newest first.
	for i := len(f.pendingRenames) - 1; i >= 0; i-- {
		u := f.pendingRenames[i]
		src, err := os.ReadFile(u.newpath)
		if err == nil {
			if err := os.WriteFile(u.oldpath, src, 0o644); err != nil {
				return fmt.Errorf("faultfs: apply crash: %w", err)
			}
		}
		if u.destExisted {
			if err := os.WriteFile(u.newpath, u.destContent, 0o644); err != nil {
				return fmt.Errorf("faultfs: apply crash: %w", err)
			}
		} else {
			_ = os.Remove(u.newpath)
		}
		if st, ok := f.files[u.newpath]; ok {
			f.files[u.oldpath] = st
			delete(f.files, u.newpath)
		}
	}
	f.pendingRenames = nil
	// 3. Drop files whose creation was never durabilized.
	for p := range f.pendingCreates {
		_ = os.Remove(p)
		delete(f.files, p)
	}
	f.pendingCreates = make(map[string]bool)
	return nil
}

// garble bit-flips bytes in [from, to) of path, modeling a torn sector.
func garble(path string, from, to int64) error {
	g, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer g.Close()
	buf := make([]byte, to-from)
	if _, err := g.ReadAt(buf, from); err != nil {
		return err
	}
	for i := range buf {
		buf[i] ^= 0x5a
	}
	_, err = g.WriteAt(buf, from)
	return err
}

// faultFile is a File over a real file with fault-aware write/sync.
type faultFile struct {
	fs       *FaultFS
	path     string
	real     *os.File
	readOnly bool
	pos      int64
}

func (h *faultFile) Read(p []byte) (int, error) {
	if h.fs.Crashed() {
		return 0, ErrCrashed
	}
	n, err := h.real.Read(p)
	h.fs.mu.Lock()
	h.pos += int64(n)
	h.fs.mu.Unlock()
	return n, err
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	ft, err := h.fs.beginLocked(OpWrite, h.path, len(p))
	if err != nil {
		if errors.Is(err, ErrCrashed) && ft.Crash {
			// Torn write: a prefix of this write reaches the file before
			// the cut. Everything previously written-but-unsynced also
			// survives up to the scripted bound (the survivors form one
			// contiguous prefix of the unsynced region).
			st := h.fs.state(h.path)
			k := ft.Torn
			if k > len(p) {
				k = len(p)
			}
			if k > 0 {
				if n, werr := h.real.Write(p[:k]); werr == nil {
					if h.pos+int64(n) > st.size {
						st.size = h.pos + int64(n)
					}
				}
			}
			st.torn = st.size - st.durable
			st.corrupt = ft.Corrupt
		}
		return 0, err
	}
	h.fs.stall(ft.Delay)
	n, werr := h.real.Write(p)
	st := h.fs.state(h.path)
	h.pos += int64(n)
	if h.pos > st.size {
		st.size = h.pos
	}
	if werr != nil {
		return n, werr
	}
	return n, nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	ft, err := h.fs.beginLocked(OpSync, h.path, 0)
	if err != nil {
		if errors.Is(err, ErrCrashed) && ft.Crash {
			// Power cut at fsync: the scripted number of unsynced tail
			// bytes survive (they were in flight to the platter).
			st := h.fs.state(h.path)
			k := int64(ft.Torn)
			if k > st.size-st.durable {
				k = st.size - st.durable
			}
			st.torn = k
			st.corrupt = ft.Corrupt
		}
		return err
	}
	h.fs.stall(ft.Delay)
	if err := h.real.Sync(); err != nil {
		return err
	}
	st := h.fs.state(h.path)
	st.durable = st.size
	return nil
}

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	if h.fs.Crashed() {
		return 0, ErrCrashed
	}
	pos, err := h.real.Seek(offset, whence)
	if err == nil {
		h.fs.mu.Lock()
		h.pos = pos
		h.fs.mu.Unlock()
	}
	return pos, err
}

func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	ft, err := h.fs.beginLocked(OpTruncate, h.path, int(size))
	if err != nil {
		return err
	}
	h.fs.stall(ft.Delay)
	if err := h.real.Truncate(size); err != nil {
		return err
	}
	st := h.fs.state(h.path)
	st.size = size
	if st.durable > size {
		st.durable = size
	}
	return nil
}

func (h *faultFile) Close() error {
	// Close is not a fault point: a crashed filesystem still lets the
	// process release its descriptors.
	return h.real.Close()
}

func (h *faultFile) Stat() (os.FileInfo, error) {
	if h.fs.Crashed() {
		return nil, ErrCrashed
	}
	return h.real.Stat()
}
