package adaptive

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/history"
)

func TestStartsOptimisticByDefault(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if e.Protocol() != core.Optimistic {
		t.Fatalf("protocol = %v", e.Protocol())
	}
	if e.Name() != "adaptive(vc+occ)" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestBasicTransactions(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	tx, err := e.Begin(engine.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if v, err := ro.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = (%q,%v)", v, err)
	}
	ro.Commit()
}

func TestManualSwitchDrainsWriters(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	e.Bootstrap(map[string][]byte{"k": []byte("v")})

	// An active rw transaction delays the switch.
	tx, _ := e.Begin(engine.ReadWrite)
	if err := tx.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	switched := make(chan struct{})
	go func() {
		e.SwitchTo(core.TwoPhaseLocking)
		close(switched)
	}()
	select {
	case <-switched:
		t.Fatal("switch completed with an active writer")
	case <-time.After(20 * time.Millisecond):
	}

	// Read-only transactions are untouched by the pending switch.
	roDone := make(chan error)
	go func() {
		ro, err := e.Begin(engine.ReadOnly)
		if err != nil {
			roDone <- err
			return
		}
		_, err = ro.Get("k")
		ro.Commit()
		roDone <- err
	}()
	select {
	case err := <-roDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read-only transaction blocked by a protocol switch")
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-switched:
	case <-time.After(2 * time.Second):
		t.Fatal("switch never completed after drain")
	}
	if e.Protocol() != core.TwoPhaseLocking {
		t.Fatalf("protocol = %v", e.Protocol())
	}
	if e.Switches() != 1 {
		t.Fatalf("switches = %d", e.Switches())
	}
}

func TestSwitchToSameProtocolIsNoop(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	e.SwitchTo(core.Optimistic)
	if e.Switches() != 0 {
		t.Fatal("no-op switch counted")
	}
}

func TestPolicySwitchesUnderContention(t *testing.T) {
	e := New(Options{Window: 16, HighWater: 0.2})
	defer e.Close()
	e.Bootstrap(map[string][]byte{"hot": []byte("0")})

	// Hammer one key from many goroutines with think time: OCC validation
	// fails constantly, so the policy must move to 2PL.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				tx, err := e.Begin(engine.ReadWrite)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Get("hot"); err != nil && !errors.Is(err, engine.ErrNotFound) {
					if engine.Retryable(err) {
						continue
					}
					t.Error(err)
					return
				}
				time.Sleep(100 * time.Microsecond)
				if err := tx.Put("hot", []byte{byte(i)}); err != nil {
					if engine.Retryable(err) {
						continue
					}
					t.Error(err)
					return
				}
				tx.Commit() // conflict aborts are fine
			}
		}(w)
	}
	wg.Wait()
	if e.Protocol() != core.TwoPhaseLocking {
		t.Fatalf("policy did not switch to 2PL (protocol=%v, switches=%d, stats=%v)",
			e.Protocol(), e.Switches(), e.Stats())
	}
}

// Serializability must hold ACROSS protocol switches: transactions
// committed under OCC and under 2PL share one history and one MVSG check.
func TestSerializableAcrossSwitches(t *testing.T) {
	rec := history.NewRecorder()
	e := New(Options{Core: core.Options{Recorder: rec}, Window: 8, HighWater: 0.10, LowWater: 0.01})
	defer e.Close()
	const nKeys = 8
	boot := map[string][]byte{}
	for i := 0; i < nKeys; i++ {
		boot[fmt.Sprintf("acct%d", i)] = []byte{50}
	}
	e.Bootstrap(boot)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				from := fmt.Sprintf("acct%d", (w+i)%nKeys)
				to := fmt.Sprintf("acct%d", (w+i+3)%nKeys)
				for attempt := 0; attempt < 100; attempt++ {
					tx, _ := e.Begin(engine.ReadWrite)
					fv, err := tx.Get(from)
					if err != nil {
						tx.Abort()
						if engine.Retryable(err) {
							continue
						}
						t.Error(err)
						return
					}
					tv, err := tx.Get(to)
					if err != nil {
						tx.Abort()
						if engine.Retryable(err) {
							continue
						}
						t.Error(err)
						return
					}
					if fv[0] == 0 {
						tx.Abort()
						break
					}
					if err := tx.Put(from, []byte{fv[0] - 1}); err != nil {
						continue
					}
					if err := tx.Put(to, []byte{tv[0] + 1}); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					}
				}
			}
		}(w)
	}
	// Force a few manual switches mid-flight for good measure.
	for i := 0; i < 6; i++ {
		time.Sleep(5 * time.Millisecond)
		if i%2 == 0 {
			e.SwitchTo(core.TwoPhaseLocking)
		} else {
			e.SwitchTo(core.Optimistic)
		}
	}
	wg.Wait()

	total := 0
	ro, _ := e.Begin(engine.ReadOnly)
	for i := 0; i < nKeys; i++ {
		v, err := ro.Get(fmt.Sprintf("acct%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += int(v[0])
	}
	ro.Commit()
	if total != nKeys*50 {
		t.Fatalf("balance not conserved across switches: %d", total)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("cross-protocol history not 1SR: %v", err)
	}
	if e.Switches() == 0 {
		t.Fatal("no switches exercised")
	}
}

func TestStatsVocabulary(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	st := e.Stats()
	if _, ok := st["adaptive.switches"]; !ok {
		t.Fatalf("stats = %v", st)
	}
}
