// The knob controller: the second half of the adaptive loop. Protocol
// switching (adaptive.go) picks WHICH concurrency control runs; the
// knob controller tunes HOW the rest of the engine runs — WAL
// group-commit batching and the epoch publisher's coalescing — using
// the same health Signal, enriched with the hotspot profiler's Report.
//
// Policy shape: every knob is a small ladder stepped at most one rung
// per health tick, so a noisy interval can nudge but never slam the
// engine, and every step is recorded as an EvKnob trace event — the
// decision history is replayable from the ring.
//
// Stripe count is deliberately recommend-only: the lock table cannot be
// re-striped while transactions hold locks, so the controller publishes
// the recommendation (Stats, obs.Snapshot) for the next boot instead of
// acting on it.
package adaptive

import (
	"fmt"
	"time"

	"mvdb/internal/health"
	"mvdb/internal/hotspot"
	"mvdb/internal/obs"
)

// WALKnobs is the group-commit surface the controller tunes.
// *wal.Writer satisfies it.
type WALKnobs interface {
	SetBatchKnobs(maxRecords int, maxDelay time.Duration)
	BatchKnobs() (maxRecords int, maxDelay time.Duration)
}

// EpochKnobs is the epoch publisher's coalescing surface.
// *epoch.Controller satisfies it.
type EpochKnobs interface {
	SetPublishEvery(n int)
	PublishEvery() int
}

// Knob-policy thresholds. Exported nowhere: they are the controller's
// opinion, and EXPERIMENTS.md O7 is where that opinion is audited.
const (
	// knobMinCommitRate is the read-write commit rate (per second) below
	// which batching knobs never step up — batching a trickle only adds
	// latency.
	knobMinCommitRate = 100.0
	// knobFsyncHigh: above this fsyncs-per-commit ratio the group
	// committer is absorbing too little — step the batch window up.
	knobFsyncHigh = 0.6
	// knobFsyncLow: below this the window is already more than wide
	// enough — step back down and return the latency.
	knobFsyncLow = 0.1
	// knobLagHigh is the visibility lag (tn - vtnc) above which the
	// epoch publisher must stop coalescing entirely.
	knobLagHigh = 64
	// knobLagLow is the lag at or below which coalescing may increase.
	knobLagLow = 8
	// knobPublishCap bounds the publish-coalescing factor.
	knobPublishCap = 8
	// knobStripeSkew: one stripe carrying more than this fraction of all
	// lock waits marks the table as skew-bound.
	knobStripeSkew = 0.5
	// knobStripeMinWaits is the minimum wait count before skew is
	// believed — three waits on a quiet engine are not a hotspot.
	knobStripeMinWaits = 32
	// knobStripeCap bounds the stripe recommendation.
	knobStripeCap = 1024
)

// walDelayLadder is the batch-window schedule, stepped one rung per
// decision; walRecordsLadder scales the record cap in lockstep so a
// wider window can actually fill.
var (
	walDelayLadder   = []time.Duration{0, 200 * time.Microsecond, 500 * time.Microsecond, time.Millisecond}
	walRecordsLadder = []int{32, 64, 128, 256}
)

// recordKnob counts one knob decision and drops it in the event ring:
// Key is "knob=value", N the new numeric value, Dur the previous one.
func (e *Engine) recordKnob(name, value string, prev, cur int64) {
	e.knobActions.Add(1)
	e.opts.Ring.Record(obs.Event{
		Type: obs.EvKnob,
		Key:  name + "=" + value,
		Dur:  prev,
		N:    cur,
	})
}

// evalKnobs is the knob controller's decision function, run once per
// well-sampled health tick on the monitor's goroutine. Each knob moves
// at most one step per call.
func (e *Engine) evalKnobs(sig health.Signal) {
	p := sig.Point
	if w := e.opts.WAL; w != nil {
		e.evalWAL(w, p)
	}
	if ep := e.opts.Epoch; ep != nil {
		e.evalEpoch(ep, p)
	}
	if e.opts.Hotspot != nil {
		e.evalStripes(e.opts.Hotspot())
	}
}

// evalWAL steps the group-commit window along the delay ladder: up when
// commits are fsync-bound at volume, down when the window is wider than
// the workload needs (or traffic died away — no reason to hold commits
// hostage to a batch that will never fill).
func (e *Engine) evalWAL(w WALKnobs, p health.Point) {
	_, curDelay := w.BatchKnobs()
	rung := 0
	for i, d := range walDelayLadder {
		if curDelay >= d {
			rung = i
		}
	}
	next := rung
	switch {
	case p.FsyncPerCommit > knobFsyncHigh && p.CommitRateRW >= knobMinCommitRate:
		next = rung + 1
	case p.FsyncPerCommit < knobFsyncLow || p.CommitRateRW < knobMinCommitRate/10:
		next = rung - 1
	}
	if next < 0 {
		next = 0
	}
	if next >= len(walDelayLadder) {
		next = len(walDelayLadder) - 1
	}
	if next == rung {
		return
	}
	d := walDelayLadder[next]
	w.SetBatchKnobs(walRecordsLadder[next], d)
	e.recordKnob("wal.batch_delay", d.String(), curDelay.Nanoseconds(), d.Nanoseconds())
}

// evalEpoch tunes the epoch publisher's coalescing: any sign of
// visibility lag kills coalescing outright (visibility is correctness-
// adjacent; cheapness is not worth a stale horizon), and only a busy,
// low-lag engine earns a doubling.
func (e *Engine) evalEpoch(ep EpochKnobs, p health.Point) {
	cur := ep.PublishEvery()
	next := cur
	switch {
	case p.VisibilityLag > knobLagHigh:
		next = 1
	case p.CommitRateRW >= knobMinCommitRate && p.VisibilityLag <= knobLagLow && cur < knobPublishCap:
		next = cur * 2
	}
	if next == cur {
		return
	}
	ep.SetPublishEvery(next)
	e.recordKnob("epoch.publish_every", fmt.Sprintf("%d", next), int64(cur), int64(next))
}

// evalStripes publishes a next-boot stripe-count recommendation when
// one stripe carries the majority of all lock waits. Recommend-only:
// the lock table cannot be re-striped live.
func (e *Engine) evalStripes(r *hotspot.Report) {
	if r == nil || r.TotalStripes <= 0 {
		return
	}
	var total, peak int64
	for _, s := range r.Stripes {
		total += s.Waits
		if s.Waits > peak {
			peak = s.Waits
		}
	}
	if total < knobStripeMinWaits || float64(peak) <= knobStripeSkew*float64(total) {
		return
	}
	rec := r.TotalStripes * 2
	if rec > knobStripeCap {
		rec = knobStripeCap
	}
	if int64(rec) <= e.recStripes.Load() || rec <= r.TotalStripes {
		return
	}
	prev := e.recStripes.Swap(int64(rec))
	e.recordKnob("lock.stripes.recommended", fmt.Sprintf("%d", rec), prev, int64(rec))
}

// KnobActions returns how many knob decisions the controller has made.
func (e *Engine) KnobActions() uint64 { return e.knobActions.Load() }

// RecommendedStripes returns the published next-boot stripe
// recommendation (0 when none).
func (e *Engine) RecommendedStripes() int { return int(e.recStripes.Load()) }
