package adaptive

import (
	"testing"
	"time"

	"mvdb/internal/health"
	"mvdb/internal/hotspot"
)

type fakeWAL struct {
	recs  int
	delay time.Duration
}

func (f *fakeWAL) SetBatchKnobs(recs int, d time.Duration) { f.recs, f.delay = recs, d }
func (f *fakeWAL) BatchKnobs() (int, time.Duration)        { return f.recs, f.delay }

type fakeEpoch struct{ n int }

func (f *fakeEpoch) SetPublishEvery(n int) { f.n = n }
func (f *fakeEpoch) PublishEvery() int {
	if f.n < 1 {
		return 1
	}
	return f.n
}

func signal(fsyncPerCommit, commitRate float64, lag uint64) health.Signal {
	return health.Signal{Point: health.Point{
		Ops:            1000,
		FsyncPerCommit: fsyncPerCommit,
		CommitRateRW:   commitRate,
		VisibilityLag:  lag,
	}}
}

func TestKnobWALLadder(t *testing.T) {
	w := &fakeWAL{recs: 32}
	e := New(Options{})
	defer e.Close()
	e.opts.WAL = w

	// Fsync-bound at volume: one rung per tick, up to the ladder top.
	for i, want := range []time.Duration{200 * time.Microsecond, 500 * time.Microsecond, time.Millisecond, time.Millisecond} {
		e.evalKnobs(signal(1.0, 500, 0))
		if w.delay != want {
			t.Fatalf("tick %d: delay = %v, want %v", i, w.delay, want)
		}
	}
	if w.recs != 256 {
		t.Fatalf("records = %d, want 256 at ladder top", w.recs)
	}
	if got := e.KnobActions(); got != 3 {
		t.Fatalf("KnobActions = %d, want 3 (top rung is not a decision)", got)
	}

	// Batching saturated (almost no fsyncs per commit): step back down.
	e.evalKnobs(signal(0.05, 500, 0))
	if w.delay != 500*time.Microsecond {
		t.Fatalf("delay after step-down = %v, want 500µs", w.delay)
	}

	// Traffic died: keep stepping down to zero.
	for i := 0; i < 3; i++ {
		e.evalKnobs(signal(0.5, 1, 0))
	}
	if w.delay != 0 {
		t.Fatalf("delay after idle = %v, want 0", w.delay)
	}
}

func TestKnobEpochCoalescing(t *testing.T) {
	ep := &fakeEpoch{}
	e := New(Options{})
	defer e.Close()
	e.opts.Epoch = ep

	// Busy + low lag: doubles up to the cap.
	for _, want := range []int{2, 4, 8, 8} {
		e.evalKnobs(signal(0, 500, 0))
		if ep.PublishEvery() != want {
			t.Fatalf("publishEvery = %d, want %d", ep.PublishEvery(), want)
		}
	}

	// Any real lag kills coalescing in one step.
	e.evalKnobs(signal(0, 500, 100))
	if ep.PublishEvery() != 1 {
		t.Fatalf("publishEvery under lag = %d, want 1", ep.PublishEvery())
	}
}

func TestKnobStripeRecommendation(t *testing.T) {
	rep := &hotspot.Report{
		TotalStripes: 8,
		Stripes: []hotspot.StripeHeat{
			{Stripe: 0, Waits: 90},
			{Stripe: 1, Waits: 10},
		},
	}
	e := New(Options{})
	defer e.Close()
	e.opts.Hotspot = func() *hotspot.Report { return rep }

	e.evalKnobs(signal(0, 0, 0))
	if got := e.RecommendedStripes(); got != 16 {
		t.Fatalf("RecommendedStripes = %d, want 16", got)
	}
	// Re-evaluating the same skew does not re-recommend.
	n := e.KnobActions()
	e.evalKnobs(signal(0, 0, 0))
	if e.KnobActions() != n {
		t.Fatalf("repeated skew produced a new decision")
	}

	// Balanced waits: no recommendation.
	e2 := New(Options{})
	defer e2.Close()
	e2.opts.Hotspot = func() *hotspot.Report {
		return &hotspot.Report{TotalStripes: 8, Stripes: []hotspot.StripeHeat{
			{Stripe: 0, Waits: 50}, {Stripe: 1, Waits: 50},
		}}
	}
	e2.evalKnobs(signal(0, 0, 0))
	if e2.RecommendedStripes() != 0 {
		t.Fatalf("balanced waits recommended %d stripes", e2.RecommendedStripes())
	}
}
