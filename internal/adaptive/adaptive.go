// Package adaptive implements an adaptive concurrency control scheme on
// top of the modular framework — the kind of experimentation the paper
// says its decoupling enables (Section 1: version control permits work on
// "adaptive concurrency control schemes without introducing major
// modifications to the entire protocol").
//
// The engine runs read-write transactions under optimistic concurrency
// control while conflicts are rare and switches to two-phase locking when
// the observed conflict rate crosses a high-water mark (and back below a
// low-water mark). Switching uses an epoch barrier: new read-write
// transactions briefly wait for the active ones to drain, the protocol is
// swapped, and execution resumes.
//
// The demonstration of the paper's thesis is in what does NOT happen
// during a switch: read-only transactions keep starting, reading and
// committing completely undisturbed. Their execution depends only on the
// version control module, which is never touched.
package adaptive

import (
	"sync"
	"sync/atomic"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/health"
	"mvdb/internal/hotspot"
	"mvdb/internal/obs"
)

// Options configures the adaptive engine.
type Options struct {
	// Core configures the underlying engine. Core.Protocol is ignored:
	// the adaptive engine always starts optimistic and lets the policy
	// move it (optimism is the cheap default; contention is what must be
	// detected).
	Core core.Options
	// Window is the number of finished read-write transactions between
	// policy evaluations (default 64).
	Window int
	// HighWater is the conflict rate (aborts / (commits+aborts)) at or
	// above which the engine switches to two-phase locking
	// (default 0.30).
	HighWater float64
	// LowWater is the rate at or below which it switches back to
	// optimistic execution (default 0.05).
	LowWater float64

	// The knob-controller taps (all optional; a nil tap disables that
	// knob). When any is set and a health monitor drives the policy,
	// OnHealth also runs the knob controller (knobs.go) once per
	// well-sampled tick.
	//
	// WAL is the group-commit batching surface (*wal.Writer).
	WAL WALKnobs
	// Epoch is the epoch publisher's coalescing surface
	// (*epoch.Controller); nil under strict visibility.
	Epoch EpochKnobs
	// Hotspot returns the workload profiler's report, consulted for the
	// stripe-count recommendation.
	Hotspot func() *hotspot.Report
	// Ring, when set, receives one EvKnob event per knob decision.
	Ring *obs.Tracer
}

// Engine is an adaptive-concurrency-control engine. It implements
// engine.Engine.
type Engine struct {
	inner *core.Engine
	opts  Options

	// epoch is an RWMutex used as a barrier: every read-write transaction
	// holds a read lock from Begin to finish; a protocol switch takes the
	// write lock, so it waits for active read-write transactions and
	// blocks new ones — but never read-only ones.
	epoch sync.RWMutex

	// policy state, guarded by polMu.
	polMu        sync.Mutex
	sinceEval    int
	lastCommits  int64
	lastConflict int64

	switches atomic.Uint64

	// When a health monitor is wired (OnHealth), its interval abort
	// fraction replaces the internal every-N-completions sampling as the
	// policy input — same thresholds, better-conditioned signal.
	healthDriven  atomic.Bool
	healthSignals atomic.Uint64

	// Knob-controller state (knobs.go).
	knobActions atomic.Uint64
	recStripes  atomic.Int64
}

// New creates an adaptive engine over a fresh core engine.
func New(opts Options) *Engine {
	opts.Core.Protocol = core.Optimistic
	return Wrap(core.New(opts.Core), opts)
}

// Wrap builds an adaptive engine around an existing core engine (e.g. one
// produced by recovery). The engine's current protocol is the starting
// point; the policy moves it from there.
func Wrap(inner *core.Engine, opts Options) *Engine {
	if opts.Window <= 0 {
		opts.Window = 64
	}
	if opts.HighWater <= 0 {
		opts.HighWater = 0.30
	}
	if opts.LowWater <= 0 {
		opts.LowWater = 0.05
	}
	return &Engine{inner: inner, opts: opts}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "adaptive(" + e.inner.Protocol().String() + ")" }

// Protocol returns the protocol currently in force.
func (e *Engine) Protocol() core.Protocol { return e.inner.Protocol() }

// Switches returns how many protocol switches have occurred.
func (e *Engine) Switches() uint64 { return e.switches.Load() }

// Inner exposes the underlying engine (read-only paths, stats, GC).
func (e *Engine) Inner() *core.Engine { return e.inner }

// Bootstrap loads initial data.
func (e *Engine) Bootstrap(data map[string][]byte) error { return e.inner.Bootstrap(data) }

// Begin implements engine.Engine. Read-only transactions pass straight
// through — the epoch barrier does not apply to them.
func (e *Engine) Begin(class engine.Class) (engine.Tx, error) {
	if class == engine.ReadOnly {
		return e.inner.Begin(class)
	}
	e.epoch.RLock()
	tx, err := e.inner.Begin(class)
	if err != nil {
		e.epoch.RUnlock()
		return nil, err
	}
	return &adaptiveTx{Tx: tx, e: e}, nil
}

// Stats implements engine.Engine.
func (e *Engine) Stats() map[string]int64 {
	m := e.inner.Stats()
	m["adaptive.switches"] = int64(e.switches.Load())
	m["adaptive.protocol"] = int64(e.inner.Protocol())
	m["adaptive.health_signals"] = int64(e.healthSignals.Load())
	m["adaptive.knob_actions"] = int64(e.knobActions.Load())
	m["adaptive.recommended_stripes"] = e.recStripes.Load()
	return m
}

// HealthSignals returns how many health signals the policy has consumed.
func (e *Engine) HealthSignals() uint64 { return e.healthSignals.Load() }

// minHealthOps is the smallest interval transaction count an abort
// fraction must be computed over before the policy acts on it — a
// near-idle interval where 1 of 2 transactions aborted is not 50%
// contention.
const minHealthOps = 16

// OnHealth consumes one health.Signal per monitor tick (wire it with
// health.Monitor.Subscribe). The first signal permanently hands the
// policy over to the health timeline: the internal every-N-completions
// sampling stops evaluating, and the interval abort fraction drives the
// same high/low-water thresholds instead. Intervals with fewer than
// minHealthOps completed transactions are ignored — too few samples to
// read a conflict rate from.
func (e *Engine) OnHealth(sig health.Signal) {
	e.healthDriven.Store(true)
	e.healthSignals.Add(1)
	if sig.Point.Ops < minHealthOps {
		return
	}
	// The knob controller shares the protocol policy's sampling guard:
	// an interval too thin to read a conflict rate from is too thin to
	// retune batching over. Synchronous on the monitor goroutine — the
	// knob setters are lock-cheap and never block on transactions.
	e.evalKnobs(sig)
	rate := sig.Point.AbortFrac
	switch {
	case rate >= e.opts.HighWater && e.inner.Protocol() != core.TwoPhaseLocking:
		// Async for symmetry with finished(): the monitor's tick
		// goroutine must not block behind the epoch barrier.
		go e.SwitchTo(core.TwoPhaseLocking)
	case rate <= e.opts.LowWater && e.inner.Protocol() != core.Optimistic:
		go e.SwitchTo(core.Optimistic)
	}
}

// Close implements engine.Engine.
func (e *Engine) Close() error { return e.inner.Close() }

// SwitchTo forces a protocol switch, draining active read-write
// transactions first. It is exported for tests and manual tuning; the
// policy calls it automatically.
func (e *Engine) SwitchTo(p core.Protocol) {
	if e.inner.Protocol() == p {
		return
	}
	e.epoch.Lock()
	if e.inner.Protocol() != p { // re-check under the barrier
		e.inner.SetProtocol(p)
		e.switches.Add(1)
	}
	e.epoch.Unlock()
}

// finished is called as each read-write transaction completes; every
// Window completions the conflict rate over the window is evaluated.
// Once a health monitor drives the policy (OnHealth), this becomes a
// no-op — two uncoordinated controllers would fight over the protocol.
func (e *Engine) finished() {
	if e.healthDriven.Load() {
		return
	}
	e.polMu.Lock()
	e.sinceEval++
	if e.sinceEval < e.opts.Window {
		e.polMu.Unlock()
		return
	}
	e.sinceEval = 0
	st := e.inner.Stats()
	commits := st["commits.rw"]
	conflicts := st["aborts.conflict"] + st["aborts.deadlock"] + st["aborts.wounded"]
	dCommits := commits - e.lastCommits
	dConflicts := conflicts - e.lastConflict
	e.lastCommits = commits
	e.lastConflict = conflicts
	e.polMu.Unlock()

	total := dCommits + dConflicts
	if total <= 0 {
		return
	}
	rate := float64(dConflicts) / float64(total)
	switch {
	case rate >= e.opts.HighWater && e.inner.Protocol() != core.TwoPhaseLocking:
		go e.SwitchTo(core.TwoPhaseLocking) // async: the caller still holds its epoch read lock
	case rate <= e.opts.LowWater && e.inner.Protocol() != core.Optimistic:
		go e.SwitchTo(core.Optimistic)
	}
}

// adaptiveTx wraps a read-write transaction to release the epoch read
// lock exactly once and feed the policy.
type adaptiveTx struct {
	engine.Tx
	e    *Engine
	done atomic.Bool
}

func (t *adaptiveTx) release() {
	if t.done.CompareAndSwap(false, true) {
		t.e.epoch.RUnlock()
		t.e.finished()
	}
}

// Commit implements engine.Tx. release is CAS-guarded, so calling it
// after an operation already released (internal abort) is harmless.
func (t *adaptiveTx) Commit() error {
	err := t.Tx.Commit()
	t.release()
	return err
}

// Abort implements engine.Tx.
func (t *adaptiveTx) Abort() {
	t.Tx.Abort()
	t.release()
}

// Get implements engine.Tx; an operation that aborts the transaction
// internally (conflict, deadlock victim) must also release the barrier.
func (t *adaptiveTx) Get(key string) ([]byte, error) {
	v, err := t.Tx.Get(key)
	if err != nil && engine.Retryable(err) {
		t.release()
	}
	return v, err
}

// Put implements engine.Tx.
func (t *adaptiveTx) Put(key string, value []byte) error {
	err := t.Tx.Put(key, value)
	if err != nil && engine.Retryable(err) {
		t.release()
	}
	return err
}

// Delete implements engine.Tx.
func (t *adaptiveTx) Delete(key string) error {
	err := t.Tx.Delete(key)
	if err != nil && engine.Retryable(err) {
		t.release()
	}
	return err
}
