// Package lock implements the two-phase-locking substrate used by the
// VC+2PL engine (paper Figure 4) and the single-version and CTL-based
// baselines.
//
// The manager provides shared/exclusive locks with FIFO queues and lock
// upgrade, plus three deadlock-handling policies:
//
//   - Detect: build the waits-for relation lazily and run a cycle check
//     whenever a request blocks; the requester that would close a cycle
//     is the victim (ErrDeadlock).
//   - WoundWait: an older requester wounds conflicting younger holders
//     and waiters; a younger requester waits. Wait edges then always point
//     from younger to older, so no cycle can form.
//   - Timeout: a blocked request fails with ErrTimeout after a bound.
//
// Victims must abort and call ReleaseAll; the engines above retry them.
// Note the paper's observation (Section 4.4): deadlocks are entirely a
// concurrency-control phenomenon. Transactions interact with the version
// control module only after their lock-point, so the VC module can never
// participate in a deadlock — this package is the only place blocking
// cycles can arise in the VC+2PL engine.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared is a read lock; compatible with other Shared locks.
	Shared Mode = iota
	// Exclusive is a write lock; compatible with nothing.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Policy selects the deadlock-handling strategy.
type Policy int

const (
	// Detect runs cycle detection on block and aborts the requester
	// closing a cycle.
	Detect Policy = iota
	// WoundWait wounds younger conflicting transactions.
	WoundWait
	// TimeoutPolicy aborts a request that waits longer than the
	// manager's timeout.
	TimeoutPolicy
)

// Errors returned by Acquire. All of them mean the transaction must abort
// (release its locks) and may be retried by the caller.
var (
	ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")
	ErrWounded  = errors.New("lock: wounded by an older transaction")
	ErrTimeout  = errors.New("lock: wait timed out")
	ErrUnknown  = errors.New("lock: unknown transaction")
)

type request struct {
	tx      *txState
	key     string
	mode    Mode
	upgrade bool
	ready   chan error
}

type txState struct {
	id      uint64
	age     uint64 // smaller = older; used by WoundWait
	held    map[string]Mode
	waiting *request
	wounded bool
}

type lockState struct {
	holders map[*txState]Mode
	queue   []*request
}

// Manager is a lock manager. It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	policy  Policy
	timeout time.Duration
	locks   map[string]*lockState
	txs     map[uint64]*txState

	waits     atomic.Uint64
	deadlocks atomic.Uint64
	wounds    atomic.Uint64
	timeouts  atomic.Uint64

	// onWait observes every blocked request when its wait ends; see
	// SetWaitObserver.
	onWait func(txID uint64, key string, wait time.Duration)
}

// NewManager creates a manager with the given policy. timeout applies only
// to TimeoutPolicy (zero selects 50ms).
func NewManager(policy Policy, timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	return &Manager{
		policy:  policy,
		timeout: timeout,
		locks:   make(map[string]*lockState),
		txs:     make(map[uint64]*txState),
	}
}

// Begin registers a transaction. age must be unique and monotonically
// increasing across Begin calls (the engine uses its begin sequence);
// WoundWait uses it as the seniority order.
func (m *Manager) Begin(txID, age uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.txs[txID]; ok {
		panic(fmt.Sprintf("lock: duplicate Begin(%d)", txID))
	}
	m.txs[txID] = &txState{id: txID, age: age, held: make(map[string]Mode)}
}

// SetWaitObserver installs fn, called once per blocked request when its
// wait ends — granted or failed — with the requester, the key, and the
// time spent blocked. The callback runs outside the manager's mutex.
// It must be installed before the manager sees concurrent use (engines
// set it at construction).
func (m *Manager) SetWaitObserver(fn func(txID uint64, key string, wait time.Duration)) {
	m.onWait = fn
}

// Acquire blocks until the lock is granted or the transaction becomes a
// deadlock/wound/timeout victim. Re-acquiring a held lock (same or weaker
// mode) is a no-op; Shared→Exclusive upgrades are supported and take
// priority over queued requests.
func (m *Manager) Acquire(txID uint64, key string, mode Mode) error {
	m.mu.Lock()
	tx, ok := m.txs[txID]
	if !ok {
		m.mu.Unlock()
		return ErrUnknown
	}
	if tx.wounded {
		m.mu.Unlock()
		return ErrWounded
	}

	held, hasHeld := tx.held[key]
	if hasHeld && (held == Exclusive || mode == Shared) {
		m.mu.Unlock()
		return nil
	}
	upgrade := hasHeld // held Shared, want Exclusive

	ls := m.locks[key]
	if ls == nil {
		ls = &lockState{holders: make(map[*txState]Mode)}
		m.locks[key] = ls
	}

	if m.grantableLocked(ls, tx, mode, upgrade) {
		ls.holders[tx] = mode
		tx.held[key] = mode
		m.mu.Unlock()
		return nil
	}

	req := &request{tx: tx, key: key, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	if upgrade {
		ls.queue = append([]*request{req}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, req)
	}
	tx.waiting = req
	m.waits.Add(1)

	switch m.policy {
	case Detect:
		if m.cycleFromLocked(tx) {
			m.removeRequestLocked(ls, req)
			tx.waiting = nil
			m.deadlocks.Add(1)
			m.mu.Unlock()
			return ErrDeadlock
		}
	case WoundWait:
		m.woundYoungerLocked(ls, req)
	}
	m.mu.Unlock()

	waitStart := time.Now()
	err := m.await(ls, req)
	if m.onWait != nil {
		m.onWait(txID, key, time.Since(waitStart))
	}
	return err
}

// await blocks on a queued request until it is granted or fails under
// the manager's policy.
func (m *Manager) await(ls *lockState, req *request) error {
	if m.policy == TimeoutPolicy {
		timer := time.NewTimer(m.timeout)
		defer timer.Stop()
		select {
		case err := <-req.ready:
			return err
		case <-timer.C:
			m.mu.Lock()
			// A grant may have raced the timer.
			select {
			case err := <-req.ready:
				m.mu.Unlock()
				return err
			default:
			}
			m.removeRequestLocked(ls, req)
			req.tx.waiting = nil
			m.timeouts.Add(1)
			m.mu.Unlock()
			return ErrTimeout
		}
	}
	return <-req.ready
}

// ReleaseAll releases every lock held by txID, grants any now-compatible
// waiters, and forgets the transaction. It is the 2PL "shrinking phase"
// done all at once (strict 2PL), and also the abort path for victims.
func (m *Manager) ReleaseAll(txID uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txs[txID]
	if !ok {
		return
	}
	if tx.waiting != nil {
		// Defensive: a transaction should never release while blocked,
		// but if the engine aborts it from another goroutine, clean up.
		if ls := m.locks[tx.waiting.key]; ls != nil {
			m.removeRequestLocked(ls, tx.waiting)
		}
		tx.waiting.ready <- ErrWounded
		tx.waiting = nil
	}
	for key := range tx.held {
		ls := m.locks[key]
		if ls == nil {
			continue
		}
		delete(ls.holders, tx)
		m.grantWaitersLocked(key, ls)
	}
	delete(m.txs, txID)
}

// HeldCount returns how many locks txID currently holds.
func (m *Manager) HeldCount(txID uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx, ok := m.txs[txID]; ok {
		return len(tx.held)
	}
	return 0
}

// Wounded reports whether txID has been wounded and must abort.
func (m *Manager) Wounded(txID uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txs[txID]
	return ok && tx.wounded
}

// Waits returns the number of requests that ever blocked.
func (m *Manager) Waits() uint64 { return m.waits.Load() }

// Deadlocks returns the number of deadlock victims.
func (m *Manager) Deadlocks() uint64 { return m.deadlocks.Load() }

// Wounds returns the number of wounded transactions.
func (m *Manager) Wounds() uint64 { return m.wounds.Load() }

// Timeouts returns the number of timed-out requests.
func (m *Manager) Timeouts() uint64 { return m.timeouts.Load() }

// grantableLocked reports whether tx may be granted mode on ls right now.
func (m *Manager) grantableLocked(ls *lockState, tx *txState, mode Mode, upgrade bool) bool {
	if upgrade {
		// Upgrade is granted when tx is the sole holder.
		if len(ls.holders) != 1 {
			return false
		}
		_, sole := ls.holders[tx]
		return sole
	}
	// FIFO fairness: a fresh request must queue behind existing waiters.
	if len(ls.queue) > 0 {
		return false
	}
	for h, hm := range ls.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// grantWaitersLocked grants queued requests from the front while possible.
func (m *Manager) grantWaitersLocked(key string, ls *lockState) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if req.upgrade {
			if len(ls.holders) != 1 {
				break
			}
			if _, sole := ls.holders[req.tx]; !sole {
				break
			}
		} else {
			compatible := true
			for h, hm := range ls.holders {
				if h == req.tx {
					continue
				}
				if req.mode == Exclusive || hm == Exclusive {
					compatible = false
					break
				}
			}
			if !compatible {
				break
			}
		}
		ls.queue = ls.queue[1:]
		ls.holders[req.tx] = req.mode
		req.tx.held[key] = req.mode
		req.tx.waiting = nil
		req.ready <- nil
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, key)
	}
}

func (m *Manager) removeRequestLocked(ls *lockState, req *request) {
	for i, r := range ls.queue {
		if r == req {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			break
		}
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, req.key)
	} else {
		m.grantWaitersLocked(req.key, ls)
	}
}

// blockersLocked returns the transactions req waits for: conflicting
// holders plus conflicting requests queued ahead of it.
func (m *Manager) blockersLocked(req *request) []*txState {
	ls := m.locks[req.key]
	if ls == nil {
		return nil
	}
	var out []*txState
	for h, hm := range ls.holders {
		if h == req.tx {
			continue
		}
		if req.mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	for _, r := range ls.queue {
		if r == req {
			break
		}
		if r.tx == req.tx {
			continue
		}
		if req.mode == Exclusive || r.mode == Exclusive {
			out = append(out, r.tx)
		}
	}
	return out
}

// cycleFromLocked runs a DFS over the waits-for relation starting at
// start, returning true if start is reachable from itself.
func (m *Manager) cycleFromLocked(start *txState) bool {
	visited := map[*txState]bool{}
	var stack []*txState
	push := func(t *txState) {
		if !visited[t] {
			visited[t] = true
			stack = append(stack, t)
		}
	}
	if start.waiting == nil {
		return false
	}
	for _, b := range m.blockersLocked(start.waiting) {
		push(b)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		if t.waiting == nil {
			continue
		}
		for _, b := range m.blockersLocked(t.waiting) {
			push(b)
		}
	}
	return false
}

// woundYoungerLocked wounds every conflicting transaction younger than the
// requester: holders keep running until they notice (next Acquire or an
// explicit Wounded check); blocked waiters are failed immediately.
func (m *Manager) woundYoungerLocked(ls *lockState, req *request) {
	for _, b := range m.blockersLocked(req) {
		if b.age <= req.tx.age || b.wounded {
			continue
		}
		b.wounded = true
		m.wounds.Add(1)
		if b.waiting != nil {
			w := b.waiting
			if wls := m.locks[w.key]; wls != nil {
				m.removeRequestLocked(wls, w)
			}
			b.waiting = nil
			w.ready <- ErrWounded
		}
	}
}
