// Package lock implements the two-phase-locking substrate used by the
// VC+2PL engine (paper Figure 4) and the single-version and CTL-based
// baselines.
//
// The manager provides shared/exclusive locks with FIFO queues and lock
// upgrade, plus three deadlock-handling policies:
//
//   - Detect: build the waits-for relation lazily and run a cycle check
//     whenever a request blocks; the requester that would close a cycle
//     is the victim (ErrDeadlock).
//   - WoundWait: an older requester wounds conflicting younger holders
//     and waiters; a younger requester waits. Wait edges then always point
//     from younger to older, so no cycle can form.
//   - Timeout: a blocked request fails with ErrTimeout after a bound.
//
// Victims must abort and call ReleaseAll; the engines above retry them.
// Note the paper's observation (Section 4.4): deadlocks are entirely a
// concurrency-control phenomenon. Transactions interact with the version
// control module only after their lock-point, so the VC module can never
// participate in a deadlock — this package is the only place blocking
// cycles can arise in the VC+2PL engine.
//
// # Striping
//
// The lock table is hash-striped: each stripe owns a disjoint slice of
// the key space under its own mutex, so uncontended acquisitions on
// unrelated keys never serialize on a shared lock. Per-transaction state
// (held set, current wait, wound flag) lives under a small per-transaction
// mutex. The lock order is stripe mutex → transaction mutex, one of each
// at a time; nothing ever takes a stripe mutex while holding a
// transaction mutex, which is what makes cross-stripe release and grant
// safe.
//
// The slow path — deadlock detection and wound-wait victim selection,
// which must observe wait-for edges that span stripes — is serialized by
// a single detector mutex taken only when a request actually blocks.
// Under that mutex the detector walks the wait-for relation locking one
// stripe (or one transaction) at a time. This is sound because the edges
// of a real deadlock cycle are stable: every transaction on the cycle is
// parked, so none of them can release the lock that would break an edge
// while the walk is in progress, and the request that closes a cycle
// always runs a detection pass after its edge is published. The converse
// does not hold — a concurrent grant outside the detector mutex can, in
// principle, let the walk observe two edges that never coexisted and
// abort a requester that was not truly deadlocked. Such spurious victims
// are safe (the transaction retries) and vanishingly rare; see DESIGN.md.
package lock

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared is a read lock; compatible with other Shared locks.
	Shared Mode = iota
	// Exclusive is a write lock; compatible with nothing.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Policy selects the deadlock-handling strategy.
type Policy int

const (
	// Detect runs cycle detection on block and aborts the requester
	// closing a cycle.
	Detect Policy = iota
	// WoundWait wounds younger conflicting transactions.
	WoundWait
	// TimeoutPolicy aborts a request that waits longer than the
	// manager's timeout.
	TimeoutPolicy
)

// Errors returned by Acquire. All of them mean the transaction must abort
// (release its locks) and may be retried by the caller.
var (
	ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")
	ErrWounded  = errors.New("lock: wounded by an older transaction")
	ErrTimeout  = errors.New("lock: wait timed out")
	ErrUnknown  = errors.New("lock: unknown transaction")
)

// DefaultStripes is the stripe count used by NewManager. Power of two;
// sized so that a few dozen hot worker goroutines rarely collide.
const DefaultStripes = 32

type request struct {
	tx      *txState
	key     string
	mode    Mode
	upgrade bool
	// ready receives the request's verdict exactly once. The invariant
	// that makes this safe across stripes: only the goroutine that
	// removes the request from its queue (under the stripe mutex) may
	// send.
	ready chan error
}

type txState struct {
	id  uint64
	age uint64 // smaller = older; used by WoundWait

	// mu guards the fields below. Lock order: a stripe mutex may be held
	// while taking mu; never the reverse.
	mu      sync.Mutex
	held    map[string]Mode
	waiting *request
	wounded bool
}

type lockState struct {
	holders map[*txState]Mode
	queue   []*request
}

// stripe is one hash partition of the lock table.
type stripe struct {
	mu    sync.Mutex
	locks map[string]*lockState
}

const txShardCount = 16

// txShard is one partition of the transaction registry.
type txShard struct {
	mu sync.Mutex
	m  map[uint64]*txState
}

// Manager is a lock manager. It is safe for concurrent use.
type Manager struct {
	policy  Policy
	timeout time.Duration
	seed    maphash.Seed
	stripes []stripe // len is a power of two
	txs     [txShardCount]txShard

	// detectMu serializes the blocking slow path: cycle detection
	// (Detect) and victim selection (WoundWait). Fast-path grants and
	// releases never touch it.
	detectMu sync.Mutex

	waits      atomic.Uint64
	deadlocks  atomic.Uint64
	wounds     atomic.Uint64
	timeouts   atomic.Uint64
	collisions atomic.Uint64

	// onWait observes every blocked request when its wait ends; see
	// SetWaitObserver. onBlock observes it when the wait begins; see
	// SetBlockObserver. Both run outside every manager mutex.
	onWait  func(txID uint64, key string, stripe int, blocker uint64, wait time.Duration)
	onBlock func(txID uint64, key string)
}

// NewManager creates a manager with the given policy and DefaultStripes
// lock-table stripes. timeout applies only to TimeoutPolicy (zero selects
// 50ms).
func NewManager(policy Policy, timeout time.Duration) *Manager {
	return NewManagerStriped(policy, timeout, 0)
}

// NewManagerStriped creates a manager with an explicit stripe count
// (rounded up to a power of two; 0 selects DefaultStripes, 1 reproduces
// the historical single-mutex lock table).
func NewManagerStriped(policy Policy, timeout time.Duration, stripes int) *Manager {
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	if stripes <= 0 {
		stripes = DefaultStripes
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m := &Manager{
		policy:  policy,
		timeout: timeout,
		seed:    maphash.MakeSeed(),
		stripes: make([]stripe, n),
	}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[string]*lockState)
	}
	for i := range m.txs {
		m.txs[i].m = make(map[uint64]*txState)
	}
	return m
}

func (m *Manager) stripeIdx(key string) int {
	return int(maphash.String(m.seed, key) & uint64(len(m.stripes)-1))
}

func (m *Manager) stripeFor(key string) *stripe {
	return &m.stripes[m.stripeIdx(key)]
}

// StripeOf reports which stripe a key hashes to — the attribution hook
// for the hotspot profiler's per-stripe contention heatmap.
func (m *Manager) StripeOf(key string) int { return m.stripeIdx(key) }

// lockStripe takes s.mu, counting the acquisition as a collision when
// another goroutine already holds it (the stripe contention signal
// surfaced in obs snapshots).
func (m *Manager) lockStripe(s *stripe) {
	if s.mu.TryLock() {
		return
	}
	m.collisions.Add(1)
	s.mu.Lock()
}

func (m *Manager) lookup(txID uint64) *txState {
	sh := &m.txs[txID%txShardCount]
	sh.mu.Lock()
	tx := sh.m[txID]
	sh.mu.Unlock()
	return tx
}

// Begin registers a transaction. age must be unique and monotonically
// increasing across Begin calls (the engine uses its begin sequence);
// WoundWait uses it as the seniority order.
func (m *Manager) Begin(txID, age uint64) {
	sh := &m.txs[txID%txShardCount]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[txID]; ok {
		panic(fmt.Sprintf("lock: duplicate Begin(%d)", txID))
	}
	sh.m[txID] = &txState{id: txID, age: age, held: make(map[string]Mode)}
}

// SetWaitObserver installs fn, called once per blocked request when its
// wait ends — granted or failed — with the requester, the key, the
// key's lock-table stripe, the transaction it was first queued behind
// (the blame edge for causal tracing; 0 if the conflict vanished before
// it was captured), and the time spent blocked. The callback runs on
// the waiter's own goroutine with no manager, stripe or transaction
// mutex held, so a slow observer can never stall lock traffic on any
// key (TestSlowWaitObserver pins this down). It must be installed
// before the manager sees concurrent use (engines set it at
// construction).
func (m *Manager) SetWaitObserver(fn func(txID uint64, key string, stripe int, blocker uint64, wait time.Duration)) {
	m.onWait = fn
}

// SetBlockObserver installs fn, called once per request at the moment it
// begins to wait (its entry is queued and visible to other transactions).
// Like the wait observer it runs on the requester's goroutine outside
// every mutex. The deterministic schedule-exploration harness
// (internal/schedtest) uses it to learn that a step has parked.
func (m *Manager) SetBlockObserver(fn func(txID uint64, key string)) {
	m.onBlock = fn
}

// Acquire blocks until the lock is granted or the transaction becomes a
// deadlock/wound/timeout victim. Re-acquiring a held lock (same or weaker
// mode) is a no-op; Shared→Exclusive upgrades are supported and take
// priority over queued requests.
func (m *Manager) Acquire(txID uint64, key string, mode Mode) error {
	tx := m.lookup(txID)
	if tx == nil {
		return ErrUnknown
	}
	tx.mu.Lock()
	if tx.wounded {
		tx.mu.Unlock()
		return ErrWounded
	}
	held, hasHeld := tx.held[key]
	tx.mu.Unlock()
	if hasHeld && (held == Exclusive || mode == Shared) {
		return nil
	}
	upgrade := hasHeld // held Shared, want Exclusive

	s := m.stripeFor(key)
	m.lockStripe(s)
	ls := s.locks[key]
	if ls == nil {
		ls = &lockState{holders: make(map[*txState]Mode)}
		s.locks[key] = ls
	}

	if grantable(ls, tx, mode, upgrade) {
		ls.holders[tx] = mode
		tx.mu.Lock()
		tx.held[key] = mode
		tx.mu.Unlock()
		s.mu.Unlock()
		return nil
	}

	// Capture the blame edge while the stripe mutex still pins the
	// conflict: the first conflicting holder, or failing that the first
	// conflicting request queued ahead. By the time the wait ends the
	// blocker may be long gone, so this is the only moment the causal
	// edge is observable.
	var blocker uint64
	for h, hm := range ls.holders {
		if h == tx {
			continue
		}
		if upgrade || mode == Exclusive || hm == Exclusive {
			blocker = h.id
			break
		}
	}
	if blocker == 0 && !upgrade {
		for _, r := range ls.queue {
			if r.tx != tx && (mode == Exclusive || r.mode == Exclusive) {
				blocker = r.tx.id
				break
			}
		}
	}

	req := &request{tx: tx, key: key, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	tx.mu.Lock()
	if tx.wounded {
		// Wounded between the entry check and publishing the wait: the
		// wounder saw no waiting request to fail, so fail it here.
		tx.mu.Unlock()
		s.mu.Unlock()
		return ErrWounded
	}
	if upgrade {
		ls.queue = append([]*request{req}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, req)
	}
	tx.waiting = req
	tx.mu.Unlock()
	s.mu.Unlock()
	m.waits.Add(1)
	if m.onBlock != nil {
		m.onBlock(txID, key)
	}

	switch m.policy {
	case Detect:
		m.detectMu.Lock()
		cycle := m.cycleFrom(tx)
		var victim bool
		if cycle {
			victim = m.cancelRequest(req)
		}
		m.detectMu.Unlock()
		if victim {
			m.deadlocks.Add(1)
			return ErrDeadlock
		}
		// If a cycle was seen but the request had already been resolved
		// (granted or wounded concurrently), the verdict is on the
		// channel; fall through and take it.
	case WoundWait:
		m.detectMu.Lock()
		m.woundYounger(req)
		m.detectMu.Unlock()
	}

	waitStart := time.Now()
	err := m.await(req)
	if m.onWait != nil {
		m.onWait(txID, key, m.stripeIdx(key), blocker, time.Since(waitStart))
	}
	return err
}

// await blocks on a queued request until it is granted or fails under
// the manager's policy.
func (m *Manager) await(req *request) error {
	if m.policy == TimeoutPolicy {
		timer := time.NewTimer(m.timeout)
		defer timer.Stop()
		select {
		case err := <-req.ready:
			return err
		case <-timer.C:
			if m.cancelRequest(req) {
				m.timeouts.Add(1)
				return ErrTimeout
			}
			// A grant (or wound) raced the timer; its verdict is queued.
			return <-req.ready
		}
	}
	return <-req.ready
}

// cancelRequest removes req from its key's queue if it is still there,
// reporting whether it was. Whoever removes a request owns its verdict;
// a false return means some other path (grant, wound, release) already
// resolved it and has sent — or is about to send — on req.ready.
func (m *Manager) cancelRequest(req *request) bool {
	s := m.stripeFor(req.key)
	m.lockStripe(s)
	ls := s.locks[req.key]
	if ls == nil || !m.removeRequest(s, ls, req) {
		s.mu.Unlock()
		return false
	}
	req.tx.mu.Lock()
	if req.tx.waiting == req {
		req.tx.waiting = nil
	}
	req.tx.mu.Unlock()
	s.mu.Unlock()
	return true
}

// ReleaseAll releases every lock held by txID, grants any now-compatible
// waiters, and forgets the transaction. It is the 2PL "shrinking phase"
// done all at once (strict 2PL), and also the abort path for victims.
func (m *Manager) ReleaseAll(txID uint64) {
	sh := &m.txs[txID%txShardCount]
	sh.mu.Lock()
	tx := sh.m[txID]
	delete(sh.m, txID)
	sh.mu.Unlock()
	if tx == nil {
		return
	}

	tx.mu.Lock()
	w := tx.waiting
	tx.waiting = nil
	keys := make([]string, 0, len(tx.held))
	for key := range tx.held {
		keys = append(keys, key)
	}
	tx.mu.Unlock()

	if w != nil {
		// Defensive: a transaction should never release while blocked,
		// but if the engine aborts it from another goroutine, clean up.
		s := m.stripeFor(w.key)
		m.lockStripe(s)
		if ls := s.locks[w.key]; ls != nil && m.removeRequest(s, ls, w) {
			w.ready <- ErrWounded
		}
		s.mu.Unlock()
	}
	for _, key := range keys {
		s := m.stripeFor(key)
		m.lockStripe(s)
		if ls := s.locks[key]; ls != nil {
			if _, holds := ls.holders[tx]; holds {
				delete(ls.holders, tx)
				m.grantWaiters(s, key, ls)
			}
		}
		s.mu.Unlock()
	}
}

// HeldCount returns how many locks txID currently holds.
func (m *Manager) HeldCount(txID uint64) int {
	tx := m.lookup(txID)
	if tx == nil {
		return 0
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return len(tx.held)
}

// Wounded reports whether txID has been wounded and must abort.
func (m *Manager) Wounded(txID uint64) bool {
	tx := m.lookup(txID)
	if tx == nil {
		return false
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.wounded
}

// Waits returns the number of requests that ever blocked.
func (m *Manager) Waits() uint64 { return m.waits.Load() }

// Deadlocks returns the number of deadlock victims.
func (m *Manager) Deadlocks() uint64 { return m.deadlocks.Load() }

// Wounds returns the number of wounded transactions.
func (m *Manager) Wounds() uint64 { return m.wounds.Load() }

// Timeouts returns the number of timed-out requests.
func (m *Manager) Timeouts() uint64 { return m.timeouts.Load() }

// Stripes returns the number of lock-table stripes.
func (m *Manager) Stripes() int { return len(m.stripes) }

// StripeCollisions returns how many stripe-mutex acquisitions found the
// stripe already locked — the striping contention signal: near zero means
// the stripe count is ample for the workload.
func (m *Manager) StripeCollisions() uint64 { return m.collisions.Load() }

// WaitEdge is one waits-for edge of the lock table: From is blocked on
// Key (requesting Mode) by To, which holds or is queued ahead with a
// conflicting mode.
type WaitEdge struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	Key  string `json:"key"`
	Mode string `json:"mode"`
}

// WaitGraph is a point-in-time export of the waits-for relation, the
// structure cycle detection walks. Waiters counts transactions that were
// blocked when the graph was taken (an edgeless waiter is possible: its
// blocker can release between the waiter scan and the edge scan).
type WaitGraph struct {
	TakenAtNS int64      `json:"taken_at_ns"`
	Waiters   int        `json:"waiters"`
	Edges     []WaitEdge `json:"edges,omitempty"`
}

// WaitGraph captures the current waits-for graph for postmortem export
// (the flight recorder's bundles). It serializes against the blocking
// slow path via detectMu — the same discipline as cycle detection — so
// the edges it reports were simultaneously true. Fast-path grants and
// releases are unaffected.
func (m *Manager) WaitGraph() WaitGraph {
	m.detectMu.Lock()
	defer m.detectMu.Unlock()
	g := WaitGraph{TakenAtNS: time.Now().UnixNano()}
	for i := range m.txs {
		sh := &m.txs[i]
		sh.mu.Lock()
		txs := make([]*txState, 0, len(sh.m))
		for _, tx := range sh.m {
			txs = append(txs, tx)
		}
		sh.mu.Unlock()
		for _, tx := range txs {
			tx.mu.Lock()
			w := tx.waiting
			tx.mu.Unlock()
			if w == nil {
				continue
			}
			g.Waiters++
			for _, b := range m.blockersFor(w) {
				g.Edges = append(g.Edges, WaitEdge{
					From: tx.id, To: b.id, Key: w.key, Mode: w.mode.String(),
				})
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.To < b.To
	})
	return g
}

// grantable reports whether tx may be granted mode on ls right now. The
// caller holds ls's stripe mutex.
func grantable(ls *lockState, tx *txState, mode Mode, upgrade bool) bool {
	if upgrade {
		// Upgrade is granted when tx is the sole holder.
		if len(ls.holders) != 1 {
			return false
		}
		_, sole := ls.holders[tx]
		return sole
	}
	// FIFO fairness: a fresh request must queue behind existing waiters.
	if len(ls.queue) > 0 {
		return false
	}
	for h, hm := range ls.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// grantWaiters grants queued requests from the front while possible, and
// removes the key's entry once nothing holds or waits on it. The caller
// holds s.mu.
func (m *Manager) grantWaiters(s *stripe, key string, ls *lockState) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		if req.upgrade {
			if len(ls.holders) != 1 {
				break
			}
			if _, sole := ls.holders[req.tx]; !sole {
				break
			}
		} else {
			compatible := true
			for h, hm := range ls.holders {
				if h == req.tx {
					continue
				}
				if req.mode == Exclusive || hm == Exclusive {
					compatible = false
					break
				}
			}
			if !compatible {
				break
			}
		}
		ls.queue = ls.queue[1:]
		ls.holders[req.tx] = req.mode
		req.tx.mu.Lock()
		req.tx.held[key] = req.mode
		if req.tx.waiting == req {
			req.tx.waiting = nil
		}
		req.tx.mu.Unlock()
		req.ready <- nil
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(s.locks, key)
	}
}

// removeRequest unqueues req, reporting whether it was found; on success
// it also grants anything the removal unblocked. The caller holds s.mu.
func (m *Manager) removeRequest(s *stripe, ls *lockState, req *request) bool {
	for i, r := range ls.queue {
		if r == req {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			m.grantWaiters(s, req.key, ls)
			return true
		}
	}
	return false
}

// blockersFor returns the transactions req waits for: conflicting
// holders plus conflicting requests queued ahead of it. It briefly locks
// the key's stripe; the caller holds detectMu.
func (m *Manager) blockersFor(req *request) []*txState {
	s := m.stripeFor(req.key)
	m.lockStripe(s)
	defer s.mu.Unlock()
	ls := s.locks[req.key]
	if ls == nil {
		return nil
	}
	var out []*txState
	for h, hm := range ls.holders {
		if h == req.tx {
			continue
		}
		if req.mode == Exclusive || hm == Exclusive {
			out = append(out, h)
		}
	}
	for _, r := range ls.queue {
		if r == req {
			break
		}
		if r.tx == req.tx {
			continue
		}
		if req.mode == Exclusive || r.mode == Exclusive {
			out = append(out, r.tx)
		}
	}
	return out
}

// cycleFrom runs a DFS over the waits-for relation starting at start,
// returning true if start is reachable from itself. The caller holds
// detectMu; stripes and transactions are locked one at a time along the
// walk (see the package comment for why this is sound).
func (m *Manager) cycleFrom(start *txState) bool {
	start.mu.Lock()
	w := start.waiting
	start.mu.Unlock()
	if w == nil {
		return false
	}
	visited := map[*txState]bool{}
	var stack []*txState
	push := func(t *txState) {
		if !visited[t] {
			visited[t] = true
			stack = append(stack, t)
		}
	}
	for _, b := range m.blockersFor(w) {
		push(b)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		t.mu.Lock()
		tw := t.waiting
		t.mu.Unlock()
		if tw == nil {
			continue
		}
		for _, b := range m.blockersFor(tw) {
			push(b)
		}
	}
	return false
}

// woundYounger wounds every conflicting transaction younger than the
// requester: holders keep running until they notice (next Acquire or an
// explicit Wounded check); blocked waiters are failed immediately. The
// caller holds detectMu.
func (m *Manager) woundYounger(req *request) {
	for _, b := range m.blockersFor(req) {
		if b.age <= req.tx.age {
			continue
		}
		m.wound(b)
	}
}

// wound marks b wounded and fails its blocked request, if any. The caller
// holds detectMu.
func (m *Manager) wound(b *txState) {
	b.mu.Lock()
	if b.wounded {
		b.mu.Unlock()
		return
	}
	b.wounded = true
	w := b.waiting
	b.mu.Unlock()
	m.wounds.Add(1)
	if w == nil {
		return
	}
	s := m.stripeFor(w.key)
	m.lockStripe(s)
	if ls := s.locks[w.key]; ls != nil && m.removeRequest(s, ls, w) {
		b.mu.Lock()
		if b.waiting == w {
			b.waiting = nil
		}
		b.mu.Unlock()
		w.ready <- ErrWounded
	}
	s.mu.Unlock()
}
