package lock

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager(Detect, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		m.Begin(id, id)
		if err := m.Acquire(id, "k", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(id)
	}
}

func BenchmarkAcquireSharedParallel(b *testing.B) {
	m := NewManager(Detect, 0)
	var ctr uint64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	nextID := func() uint64 {
		<-mu
		ctr++
		v := ctr
		mu <- struct{}{}
		return v
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID()
			m.Begin(id, id)
			if err := m.Acquire(id, "shared-key", Shared); err != nil {
				b.Fatal(err)
			}
			m.ReleaseAll(id)
		}
	})
}

// BenchmarkStripedUniform measures the striping win directly: many
// goroutines acquiring exclusive locks on a uniform keyspace, with one
// stripe (the historical global-mutex table) versus the default count.
func BenchmarkStripedUniform(b *testing.B) {
	for _, stripes := range []int{1, DefaultStripes} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			m := NewManagerStriped(Detect, 0, stripes)
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			var ctr atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := ctr.Add(1)
					m.Begin(id, id)
					if err := m.Acquire(id, keys[id%256], Exclusive); err != nil {
						b.Fatal(err)
					}
					m.ReleaseAll(id)
				}
			})
		})
	}
}

func BenchmarkAcquireManyKeys(b *testing.B) {
	for _, nKeys := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("keys=%d", nKeys), func(b *testing.B) {
			m := NewManager(Detect, 0)
			keys := make([]string, nKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id := uint64(i + 1)
				m.Begin(id, id)
				for _, k := range keys {
					if err := m.Acquire(id, k, Exclusive); err != nil {
						b.Fatal(err)
					}
				}
				m.ReleaseAll(id)
			}
		})
	}
}
