package lock

import (
	"fmt"
	"testing"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager(Detect, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		m.Begin(id, id)
		if err := m.Acquire(id, "k", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(id)
	}
}

func BenchmarkAcquireSharedParallel(b *testing.B) {
	m := NewManager(Detect, 0)
	var ctr uint64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	nextID := func() uint64 {
		<-mu
		ctr++
		v := ctr
		mu <- struct{}{}
		return v
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID()
			m.Begin(id, id)
			if err := m.Acquire(id, "shared-key", Shared); err != nil {
				b.Fatal(err)
			}
			m.ReleaseAll(id)
		}
	})
}

func BenchmarkAcquireManyKeys(b *testing.B) {
	for _, nKeys := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("keys=%d", nKeys), func(b *testing.B) {
			m := NewManager(Detect, 0)
			keys := make([]string, nKeys)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id := uint64(i + 1)
				m.Begin(id, id)
				for _, k := range keys {
					if err := m.Acquire(id, k, Exclusive); err != nil {
						b.Fatal(err)
					}
				}
				m.ReleaseAll(id)
			}
		})
	}
}
