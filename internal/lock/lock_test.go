package lock

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newDetect() *Manager { return NewManager(Detect, 0) }

func TestSharedLocksCoexist(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldCount(1); got != 1 {
		t.Fatalf("held(1) = %d", got)
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- m.Acquire(2, "x", Shared) }()
	select {
	case err := <-done:
		t.Fatalf("shared acquired despite X holder: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	for i := 0; i < 3; i++ {
		if err := m.Acquire(1, "x", Shared); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	// X then S: still a no-op, keeps X.
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldCount(1); got != 1 {
		t.Fatalf("held = %d, want 1", got)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- m.Acquire(1, "x", Exclusive) }()
	select {
	case err := <-done:
		t.Fatalf("upgrade granted with another reader: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUpgradePriorityOverQueuedWriter(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	m.Begin(3, 3)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	// T3 queues for X.
	t3 := make(chan error)
	go func() { t3 <- m.Acquire(3, "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// T1 requests upgrade: must be served before T3 once T2 releases.
	t1 := make(chan error)
	go func() { t1 <- m.Acquire(1, "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(2)
	select {
	case err := <-t1:
		if err != nil {
			t.Fatal(err)
		}
	case err := <-t3:
		t.Fatalf("queued writer served before upgrade: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("nobody granted")
	}
	m.ReleaseAll(1)
	if err := <-t3; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	t1 := make(chan error)
	go func() { t1 <- m.Acquire(1, "b", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// Closing the cycle: T2 must be chosen as victim immediately.
	err := m.Acquire(2, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatal(err)
	}
	if m.Deadlocks() != 1 {
		t.Fatalf("Deadlocks = %d", m.Deadlocks())
	}
}

func TestUpgradeUpgradeDeadlock(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	t1 := make(chan error)
	go func() { t1 <- m.Acquire(1, "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, "x", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatal(err)
	}
}

func TestWoundWaitOlderWoundsYoungerHolder(t *testing.T) {
	m := NewManager(WoundWait, 0)
	m.Begin(1, 1) // older
	m.Begin(2, 2) // younger
	if err := m.Acquire(2, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	t1 := make(chan error)
	go func() { t1 <- m.Acquire(1, "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	if !m.Wounded(2) {
		t.Fatal("younger holder not wounded")
	}
	// The wounded transaction notices on its next acquire.
	if err := m.Acquire(2, "y", Shared); !errors.Is(err, ErrWounded) {
		t.Fatalf("err = %v, want ErrWounded", err)
	}
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatal(err)
	}
	if m.Wounds() != 1 {
		t.Fatalf("Wounds = %d", m.Wounds())
	}
}

func TestWoundWaitYoungerWaits(t *testing.T) {
	m := NewManager(WoundWait, 0)
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	t2 := make(chan error)
	go func() { t2 <- m.Acquire(2, "x", Exclusive) }()
	select {
	case err := <-t2:
		t.Fatalf("younger did not wait: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if m.Wounded(1) {
		t.Fatal("older got wounded by younger")
	}
	m.ReleaseAll(1)
	if err := <-t2; err != nil {
		t.Fatal(err)
	}
}

func TestWoundWaitWoundsBlockedWaiterImmediately(t *testing.T) {
	m := NewManager(WoundWait, 0)
	m.Begin(1, 1) // oldest
	m.Begin(2, 2)
	m.Begin(3, 3)
	if err := m.Acquire(2, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	t3 := make(chan error)
	go func() { t3 <- m.Acquire(3, "x", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// T1 arrives: wounds holder T2 and queued T3.
	t1 := make(chan error)
	go func() { t1 <- m.Acquire(1, "x", Exclusive) }()
	if err := <-t3; !errors.Is(err, ErrWounded) {
		t.Fatalf("t3 err = %v, want ErrWounded", err)
	}
	m.ReleaseAll(3)
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutPolicy(t *testing.T) {
	m := NewManager(TimeoutPolicy, 30*time.Millisecond)
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire(2, "x", Shared)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("timed out too early: %v", d)
	}
	if m.Timeouts() != 1 {
		t.Fatalf("Timeouts = %d", m.Timeouts())
	}
	// The lock remains usable.
	m.ReleaseAll(1)
	m.Begin(3, 3)
	if err := m.Acquire(3, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairnessWriterNotStarved(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	m.Begin(2, 2)
	writer := make(chan error)
	go func() { writer <- m.Acquire(2, "x", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// A later reader must queue behind the writer, not jump it.
	m.Begin(3, 3)
	reader := make(chan error)
	go func() { reader <- m.Acquire(3, "x", Shared) }()
	select {
	case <-reader:
		t.Fatal("late reader jumped the queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-reader; err != nil {
		t.Fatal(err)
	}
}

func TestAcquireUnknownTx(t *testing.T) {
	m := newDetect()
	if err := m.Acquire(99, "x", Shared); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
}

func TestReleaseAllUnknownIsNoop(t *testing.T) {
	m := newDetect()
	m.ReleaseAll(42)
}

// Stress: random transactions acquire random locks under each policy;
// mutual exclusion is asserted via a per-key owner check, and the run must
// terminate (no undetected deadlock).
func TestStressMutualExclusion(t *testing.T) {
	for _, pol := range []Policy{Detect, WoundWait, TimeoutPolicy} {
		pol := pol
		t.Run(fmt.Sprintf("policy=%d", pol), func(t *testing.T) {
			t.Parallel()
			m := NewManager(pol, 20*time.Millisecond)
			const keys = 8
			const workers = 8
			const txPerWorker = 150

			var owners [keys]atomic.Int64
			var ages atomic.Uint64
			var ids atomic.Uint64

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < txPerWorker; i++ {
						id := ids.Add(1)
						m.Begin(id, ages.Add(1))
						locked := make(map[int]Mode)
						aborted := false
						n := 1 + rng.Intn(4)
						for j := 0; j < n; j++ {
							k := rng.Intn(keys)
							mode := Shared
							if rng.Intn(2) == 0 {
								mode = Exclusive
							}
							if err := m.Acquire(id, fmt.Sprintf("k%d", k), mode); err != nil {
								aborted = true
								break
							}
							if prev, ok := locked[k]; !ok || (prev == Shared && mode == Exclusive) {
								locked[k] = mode
							}
							if locked[k] == Exclusive {
								if !owners[k].CompareAndSwap(0, int64(id)) && owners[k].Load() != int64(id) {
									panic("exclusive lock not exclusive")
								}
							}
						}
						for k, mode := range locked {
							if mode == Exclusive && owners[k].Load() == int64(id) {
								owners[k].Store(0)
							}
						}
						m.ReleaseAll(id)
						_ = aborted
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("stress run did not terminate (possible undetected deadlock)")
			}
		})
	}
}

func TestWoundedUnknownTx(t *testing.T) {
	m := newDetect()
	if m.Wounded(123) {
		t.Fatal("unknown tx reported wounded")
	}
	if m.HeldCount(123) != 0 {
		t.Fatal("unknown tx holds locks")
	}
}

func TestDuplicateBeginPanics(t *testing.T) {
	m := newDetect()
	m.Begin(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Begin(1, 2)
}

// Three-transaction deadlock cycle: detection must still fire.
func TestThreeWayDeadlock(t *testing.T) {
	m := newDetect()
	for id := uint64(1); id <= 3; id++ {
		m.Begin(id, id)
	}
	keys := []string{"a", "b", "c"}
	for i, id := range []uint64{1, 2, 3} {
		if err := m.Acquire(id, keys[i], Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, "b", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Acquire(2, "c", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// T3 -> a closes the 3-cycle; T3 must be the victim.
	if err := m.Acquire(3, "a", Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	// T3's release frees "c": T2's wait resolves first.
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// T2 releasing frees "b": T1's wait resolves.
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}
