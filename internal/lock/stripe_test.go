package lock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStripeCountRounding pins the stripe-count contract: defaults,
// power-of-two rounding, and the single-stripe compatibility mode.
func TestStripeCountRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{0, DefaultStripes}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {32, 32}, {33, 64},
	}
	for _, c := range cases {
		if got := NewManagerStriped(Detect, 0, c.ask).Stripes(); got != c.want {
			t.Errorf("NewManagerStriped(stripes=%d).Stripes() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestSlowWaitObserver verifies the satellite fix contract: the wait
// observer runs outside every manager mutex, so an arbitrarily slow
// observer cannot stall lock traffic on unrelated keys — or even on the
// same key.
func TestSlowWaitObserver(t *testing.T) {
	m := NewManager(Detect, 0)
	release := make(chan struct{})
	var observed atomic.Int32
	m.SetWaitObserver(func(txID uint64, key string, stripe int, blocker uint64, wait time.Duration) {
		observed.Add(1)
		<-release // hold the observer hostage
	})
	defer close(release)

	// tx1 holds k; tx2 blocks on k; releasing k ends tx2's wait and
	// parks tx2's goroutine inside the slow observer.
	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- m.Acquire(2, "k", Exclusive)
	}()
	for m.Waits() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(1)
	for observed.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// With tx2's goroutine captive in the observer (and tx2 now holding
	// k), every lock operation on other keys — including keys hashing
	// to any stripe — must still complete promptly: the observer runs
	// with no manager mutex held.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(10); i < 30; i++ {
			m.Begin(i, i)
			for _, key := range []string{"k2", "other", fmt.Sprintf("u%d", i)} {
				if err := m.Acquire(i, key, Exclusive); err != nil {
					t.Errorf("Acquire(%d, %s): %v", i, key, err)
					return
				}
			}
			m.ReleaseAll(i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock traffic stalled behind a slow wait observer")
	}

	// Unblock the captive observer and collect tx2.
	release <- struct{}{}
	if err := <-blocked; err != nil {
		t.Fatalf("tx2 Acquire after release: %v", err)
	}
	m.ReleaseAll(2)
}

// TestSlowBlockObserver gives the block observer the same guarantee.
func TestSlowBlockObserver(t *testing.T) {
	m := NewManager(Detect, 0)
	release := make(chan struct{})
	defer close(release)
	var fired atomic.Int32
	m.SetBlockObserver(func(txID uint64, key string) {
		fired.Add(1)
		<-release
	})

	m.Begin(1, 1)
	m.Begin(2, 2)
	if err := m.Acquire(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(2, "k", Exclusive) }()
	for fired.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Begin(3, 3)
		if err := m.Acquire(3, "elsewhere", Exclusive); err != nil {
			t.Errorf("Acquire: %v", err)
		}
		m.ReleaseAll(3)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock traffic stalled behind a slow block observer")
	}

	release <- struct{}{}
	m.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

// TestStripedStress hammers the striped manager from many goroutines with
// a deliberately adversarial mix — every transaction touches one global
// hot key plus a handful of uniformly distributed keys — under all three
// deadlock policies. Run under -race (tier-1) this is the data-race net
// for the striped fast path, the cross-stripe release path, and the
// detector slow path at once. Mutual exclusion is checked with a counter
// guarded only by the hot key's exclusive lock.
func TestStripedStress(t *testing.T) {
	policies := map[string]Policy{"detect": Detect, "woundwait": WoundWait, "timeout": TimeoutPolicy}
	for name, policy := range policies {
		t.Run(name, func(t *testing.T) {
			m := NewManagerStriped(policy, 5*time.Millisecond, 8)
			const (
				workers = 8
				rounds  = 200
				keys    = 64
			)
			var inHot atomic.Int32
			var commits atomic.Int64
			var ids atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					rng := uint64(seed)*2654435761 + 1
					for r := 0; r < rounds; r++ {
						id := ids.Add(1)
						m.Begin(id, id)
						ok := true
						// A few uniform keys first, then the hot key —
						// cross-stripe waits-for edges guaranteed.
						for i := 0; i < 3 && ok; i++ {
							rng = rng*6364136223846793005 + 1442695040888963407
							k := fmt.Sprintf("u%d", rng%keys)
							mode := Shared
							if rng&1 == 0 {
								mode = Exclusive
							}
							if err := m.Acquire(id, k, mode); err != nil {
								ok = false
							}
						}
						if ok && m.Acquire(id, "hot", Exclusive) == nil {
							if inHot.Add(1) != 1 {
								t.Error("mutual exclusion violated on hot key")
							}
							inHot.Add(-1)
							commits.Add(1)
						}
						m.ReleaseAll(id)
					}
				}(w)
			}
			wg.Wait()
			if commits.Load() == 0 {
				t.Fatal("no transaction ever acquired the hot key")
			}
			// The table must be empty: every key's lockState is deleted
			// once nothing holds or waits on it.
			for i := range m.stripes {
				s := &m.stripes[i]
				s.mu.Lock()
				if len(s.locks) != 0 {
					t.Errorf("stripe %d leaked %d lock states", i, len(s.locks))
				}
				s.mu.Unlock()
			}
		})
	}
}

// TestStripeCollisionsCounted checks the contention counter moves when
// two goroutines fight over one stripe and stays still when idle.
func TestStripeCollisionsCounted(t *testing.T) {
	m := NewManagerStriped(Detect, 0, 1) // one stripe: all keys collide
	if m.StripeCollisions() != 0 {
		t.Fatalf("fresh manager reports %d collisions", m.StripeCollisions())
	}
	var wg sync.WaitGroup
	var ids atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids.Add(1)
				m.Begin(id, id)
				k := fmt.Sprintf("k%d", id%16)
				if err := m.Acquire(id, k, Shared); err == nil {
					m.ReleaseAll(id)
				} else {
					m.ReleaseAll(id)
				}
			}
		}()
	}
	wg.Wait()
	if m.StripeCollisions() == 0 {
		t.Skip("no collision observed (single-core scheduling); counter path covered elsewhere")
	}
}
