// Package crashtest is the crash-recovery torture harness: it drives
// the real engine (every protocol, group commit on and off) through
// workloads over a fault-injecting filesystem (internal/faultfs), cuts
// power at injected points, recovers from the surviving bytes, and
// asserts the dual oracle:
//
//  1. Durability — every commit acknowledged to a client is present
//     after recovery (per key, the latest acknowledged write is covered
//     by a version at least as new, matching exactly when the TNs are
//     equal).
//  2. Correctness — the recovered state is a committed prefix: every
//     version traces back to an attempted commit (nothing fabricated,
//     no dirty versions), storage invariants hold, the version-control
//     counters resume exactly at the recovered horizon (vtnc = max TN,
//     tnc = max TN + 1), the recovered write history is MVSG-acyclic,
//     and the engine keeps serving serializable transactions (checked
//     with internal/history and internal/audit).
//
// Two drivers share the oracle: an exhaustive deterministic sweep that
// crashes a scripted scenario at every mutating filesystem operation
// (Sweep), and a seeded randomized torture loop for long runs
// (Torture, wrapped by cmd/mvtorture).
package crashtest

import (
	"fmt"
	"sort"
	"sync"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/storage"
)

// Mut is one key's mutation inside a commit attempt.
type Mut struct {
	Value  string
	Delete bool
}

type ackedWrite struct {
	tn        uint64
	value     string
	tombstone bool
}

// Oracle records every commit attempt and acknowledgement so recovery
// can be audited. Safe for concurrent use.
type Oracle struct {
	mu        sync.Mutex
	attempted map[string]map[string]bool // key -> values any attempt wrote
	deleted   map[string]bool            // keys some attempt deleted
	acked     map[string]ackedWrite      // key -> acknowledged write with the largest TN
	attempts  int
	acks      int
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{
		attempted: make(map[string]map[string]bool),
		deleted:   make(map[string]bool),
		acked:     make(map[string]ackedWrite),
	}
}

// Attempt registers a commit attempt BEFORE it executes: whatever of it
// survives a crash must be explainable by this registration.
func (o *Oracle) Attempt(muts map[string]Mut) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.attempts++
	for k, m := range muts {
		if m.Delete {
			o.deleted[k] = true
			continue
		}
		set := o.attempted[k]
		if set == nil {
			set = make(map[string]bool)
			o.attempted[k] = set
		}
		set[m.Value] = true
	}
}

// Ack records that a commit attempt was acknowledged to the client with
// transaction number tn. From this instant the write set must survive
// any crash.
func (o *Oracle) Ack(tn uint64, muts map[string]Mut) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.acks++
	for k, m := range muts {
		if prev, ok := o.acked[k]; !ok || tn > prev.tn {
			o.acked[k] = ackedWrite{tn: tn, value: m.Value, tombstone: m.Delete}
		}
	}
}

// Acks returns the number of acknowledged commits so far.
func (o *Oracle) Acks() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.acks
}

// Attempts returns the number of commit attempts so far.
func (o *Oracle) Attempts() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.attempts
}

// Check audits a freshly recovered engine (no transactions run on it
// yet) against everything recorded. It returns the first violation of
// the dual oracle, nil if the recovered state is sound.
func (o *Oracle) Check(e *core.Engine) error {
	o.mu.Lock()
	defer o.mu.Unlock()

	var maxTN uint64
	byTN := make(map[uint64][]history.Op)
	var fail error
	e.Store().Range(func(key string, obj *storage.Object) bool {
		if err := obj.CheckInvariants(); err != nil {
			fail = fmt.Errorf("storage invariants on %q: %w", key, err)
			return false
		}
		if n := obj.PendingCount(); n != 0 {
			fail = fmt.Errorf("key %q recovered with %d dirty (pending) versions", key, n)
			return false
		}
		for _, v := range obj.Versions() {
			if v.TN == 0 {
				continue // bootstrap state
			}
			if v.TN > maxTN {
				maxTN = v.TN
			}
			byTN[v.TN] = append(byTN[v.TN], history.Op{Key: key, VersionTN: v.TN})
			switch {
			case v.Tombstone:
				if !o.deleted[key] {
					fail = fmt.Errorf("key %q recovered a tombstone (tn %d) no attempt produced", key, v.TN)
					return false
				}
			case !o.attempted[key][string(v.Data)]:
				fail = fmt.Errorf("key %q recovered fabricated value %q (tn %d)", key, v.Data, v.TN)
				return false
			}
		}
		if a, ok := o.acked[key]; ok {
			lv, lok := obj.LatestCommitted()
			if !lok {
				fail = fmt.Errorf("durability violation: key %q lost entirely (acked write tn %d)", key, a.tn)
				return false
			}
			if lv.TN < a.tn {
				fail = fmt.Errorf("durability violation: key %q recovered at tn %d, older than acked tn %d", key, lv.TN, a.tn)
				return false
			}
			if lv.TN == a.tn && (lv.Tombstone != a.tombstone || (!a.tombstone && string(lv.Data) != a.value)) {
				fail = fmt.Errorf("durability violation: key %q at acked tn %d recovered %q/%v, acked %q/%v",
					key, a.tn, lv.Data, lv.Tombstone, a.value, a.tombstone)
				return false
			}
		}
		return true
	})
	if fail != nil {
		return fail
	}

	// Version-control counters must resume exactly at the recovered
	// horizon: everything recovered is visible (vtnc = max TN) and the
	// next transaction number is just past it (tnc = max TN + 1), the
	// vtnc <= tnc invariant in its tightest post-recovery form.
	if got := e.VC().VTNC(); got != maxTN {
		return fmt.Errorf("vtnc after recovery = %d, want max recovered tn %d", got, maxTN)
	}
	if got := e.VC().TNC(); got != maxTN+1 {
		return fmt.Errorf("tnc after recovery = %d, want %d", got, maxTN+1)
	}

	// The recovered write history must be installable as an acyclic
	// MVSG: one committed writer per version, no version 0, no cycles.
	tns := make([]uint64, 0, len(byTN))
	for tn := range byTN {
		tns = append(tns, tn)
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i] < tns[j] })
	g := history.NewGraph(history.Strict)
	for _, tn := range tns {
		if err := g.AddWrites(history.TxHistory{ID: tn, TN: tn, Writes: byTN[tn]}); err != nil {
			return fmt.Errorf("recovered history rejected: %w", err)
		}
	}
	if cyc := g.FindCycle(); cyc != nil {
		return fmt.Errorf("recovered history has an MVSG cycle: %v", cyc)
	}
	return nil
}

// CommitAttempt runs one read-write transaction applying muts,
// registering the attempt before it starts and the acknowledgement
// after Commit returns nil. The returned error is the engine's
// (retryable conflicts included — the caller decides whether to retry).
func CommitAttempt(e *core.Engine, o *Oracle, muts map[string]Mut) (uint64, error) {
	o.Attempt(muts)
	tx, err := e.Begin(engine.ReadWrite)
	if err != nil {
		return 0, err
	}
	for k, m := range muts {
		if m.Delete {
			err = tx.Delete(k)
		} else {
			err = tx.Put(k, []byte(m.Value))
		}
		if err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	tn, _ := tx.SN()
	o.Ack(tn, muts)
	return tn, nil
}
