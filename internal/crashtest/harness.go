package crashtest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mvdb/internal/audit"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/faultfs"
	"mvdb/internal/history"
	"mvdb/internal/hotspot"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
	"mvdb/internal/wal"
)

// Config selects the engine variant under torture.
type Config struct {
	Protocol core.Protocol
	// Group selects group commit (wal.SyncBatch); false is one fsync
	// per commit. Durability-on-ack is promised either way — that
	// promise is exactly what the harness checks.
	Group bool
	// Visibility selects the version-control implementation (strict
	// drain or epoch watermark). Recovery rebuilds the controller from
	// the WAL either way; the mode must make no difference to what
	// survives a crash.
	Visibility vc.Mode
}

func (c Config) walOptions() wal.Options {
	if c.Group {
		return wal.Options{Policy: wal.SyncBatch}
	}
	return wal.Options{Policy: wal.SyncEveryCommit}
}

func (c Config) String() string {
	mode := "fsync-per-commit"
	if c.Group {
		mode = "group-commit"
	}
	return c.Protocol.String() + "/" + mode + "/" + c.Visibility.String()
}

// Configs is the full engine matrix: all three protocols, group commit
// on and off, both visibility modes.
func Configs() []Config {
	var out []Config
	for _, p := range []core.Protocol{core.TwoPhaseLocking, core.TimestampOrdering, core.Optimistic} {
		for _, g := range []bool{false, true} {
			for _, v := range []vc.Mode{vc.ModeStrict, vc.ModeEpoch} {
				out = append(out, Config{Protocol: p, Group: g, Visibility: v})
			}
		}
	}
	return out
}

func openEngine(fsys faultfs.FS, walPath string, cfg Config, rec engine.Recorder) (*core.Engine, *wal.Writer, error) {
	return openEngineTraced(fsys, walPath, cfg, rec, nil, nil)
}

// openEngineTraced additionally attaches a per-transaction span tracer
// and a workload profiler, so torture rounds can ship causal traces in
// their postmortem bundles and accumulate hot keys across incarnations.
func openEngineTraced(fsys faultfs.FS, walPath string, cfg Config, rec engine.Recorder, spans *trace.Tracer, prof *hotspot.Profiler) (*core.Engine, *wal.Writer, error) {
	return core.OpenDurable(walPath, core.Options{Protocol: cfg.Protocol, Visibility: cfg.Visibility, Recorder: rec, Traces: spans, Hotspot: prof},
		core.DurableOptions{FS: fsys, WAL: cfg.walOptions()})
}

// runScript executes the deterministic scripted scenario the sweep
// enumerates crash points of: a batch of commits, a checkpoint under
// load, more commits (including a delete), an offline compaction, then
// a reopen with further commits. Single-client, so the sequence of
// filesystem operations is identical on every fault-free run.
//
// A commit that fails without a power cut (an injected transient error)
// is simply an unacknowledged attempt: the script keeps going. Once the
// filesystem has crashed, the script stops and returns.
func runScript(fsys *faultfs.FaultFS, walPath string, cfg Config, o *Oracle) error {
	n := 0
	puts := func(keys ...string) map[string]Mut {
		n++
		m := make(map[string]Mut, len(keys))
		for _, k := range keys {
			m[k] = Mut{Value: fmt.Sprintf("c%02d.%s", n, k)}
		}
		return m
	}
	del := func(key string) map[string]Mut {
		n++
		return map[string]Mut{key: {Delete: true}}
	}

	e, w, err := openEngine(fsys, walPath, cfg, nil)
	if err != nil {
		return err
	}
	closeEng := func() {
		w.Close()
		e.Close()
	}
	commit := func(muts map[string]Mut) error {
		if _, err := CommitAttempt(e, o, muts); err != nil && fsys.Crashed() {
			return err
		}
		return nil
	}

	phase1 := []map[string]Mut{
		puts("a"), puts("b", "c"), puts("a", "b"), puts("d"), puts("c"), puts("a", "d"),
	}
	for _, m := range phase1 {
		if err := commit(m); err != nil {
			closeEng()
			return err
		}
	}
	// Checkpoint while the engine is open (the production arrangement).
	if err := e.WriteSnapshot(fsys, walPath); err != nil && fsys.Crashed() {
		closeEng()
		return err
	}
	phase2 := []map[string]Mut{
		puts("b"), del("c"), puts("e"), puts("a", "c"),
	}
	for _, m := range phase2 {
		if err := commit(m); err != nil {
			closeEng()
			return err
		}
	}
	if err := w.Close(); err != nil && fsys.Crashed() {
		e.Close()
		return err
	}
	e.Close()

	// Offline compaction between incarnations.
	if err := core.Compact(fsys, walPath); err != nil && fsys.Crashed() {
		return err
	}

	// Reopen from the compacted state and keep committing.
	e, w, err = openEngine(fsys, walPath, cfg, nil)
	if err != nil {
		if fsys.Crashed() {
			return err
		}
		return nil // transient open failure: scenario over early
	}
	phase3 := []map[string]Mut{
		puts("f"), puts("b", "e"), puts("d"),
	}
	for _, m := range phase3 {
		if err := commit(m); err != nil {
			closeEng()
			return err
		}
	}
	closeEng()
	return nil
}

// RecoverAndCheck opens the surviving directory state with a clean
// filesystem and audits it: the dual oracle over the recovered store,
// then a serializability-checked live workload (internal/history
// offline checker AND the internal/audit online auditor must both stay
// silent), then a second recovery over the result — recovery must be
// idempotent and the recovered engine must keep accepting commits.
func RecoverAndCheck(walPath string, cfg Config, o *Oracle) error {
	for round := 0; round < 2; round++ {
		rec := history.NewRecorder()
		aud := audit.New(audit.Options{})
		e, w, err := openEngine(faultfs.New(faultfs.Plan{}), walPath, cfg, engine.Multi(rec, aud))
		if err != nil {
			aud.Close()
			return fmt.Errorf("recovery round %d failed: %w", round, err)
		}
		fail := func(err error) error {
			w.Close()
			e.Close()
			aud.Close()
			return fmt.Errorf("recovery round %d: %w", round, err)
		}
		if err := o.Check(e); err != nil {
			return fail(err)
		}
		seedRecovered(rec, e)
		if err := liveWorkload(e, o, round); err != nil {
			return fail(fmt.Errorf("post-recovery workload: %w", err))
		}
		aud.Drain()
		if alarms := aud.AlarmsTotal(); alarms != 0 {
			return fail(fmt.Errorf("online auditor raised %d alarms on the recovered engine", alarms))
		}
		if err := rec.Check(); err != nil {
			return fail(fmt.Errorf("post-recovery history not serializable: %w", err))
		}
		if err := w.Close(); err != nil {
			return fail(fmt.Errorf("close log: %w", err))
		}
		e.Close()
		aud.Close()
	}
	return nil
}

// seedRecovered teaches the offline checker the recovered writers:
// each recovered transaction number becomes a synthetic committed
// transaction, so post-recovery reads of recovered versions resolve to
// a committed writer instead of looking like dirty reads. Synthetic IDs
// live far above anything the engine's allocator can reach during the
// short post-recovery workload.
func seedRecovered(rec *history.Recorder, e *core.Engine) {
	const seedBase = uint64(1) << 40
	byTN := make(map[uint64][]string)
	e.Store().Range(func(key string, obj *storage.Object) bool {
		for _, v := range obj.Versions() {
			if v.TN != 0 {
				byTN[v.TN] = append(byTN[v.TN], key)
			}
		}
		return true
	})
	for tn, keys := range byTN {
		id := seedBase + tn
		rec.RecordBegin(id, engine.ReadWrite)
		for _, k := range keys {
			rec.RecordWrite(id, k, tn)
		}
		rec.RecordCommit(id, tn)
	}
}

// liveWorkload runs reads, writes and a read-only snapshot scan on a
// recovered engine — the "keeps accepting commits" half of the oracle.
func liveWorkload(e *core.Engine, o *Oracle, round int) error {
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("live%d", i)
		muts := map[string]Mut{key: {Value: fmt.Sprintf("r%d.i%d", round, i)}}
		o.Attempt(muts)
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return err
		}
		// A read in the same transaction exercises the reads-from edges
		// of the post-recovery MVSG.
		if _, err := tx.Get("a"); err != nil && !errors.Is(err, engine.ErrNotFound) {
			tx.Abort()
			return err
		}
		if err := tx.Put(key, []byte(muts[key].Value)); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		tn, _ := tx.SN()
		o.Ack(tn, muts)
	}
	ro, err := e.Begin(engine.ReadOnly)
	if err != nil {
		return err
	}
	for _, k := range []string{"a", "b", "live0"} {
		if _, err := ro.Get(k); err != nil && !errors.Is(err, engine.ErrNotFound) {
			ro.Abort()
			return err
		}
	}
	return ro.Commit()
}

// Sweep runs the scripted scenario fault-free once to trace every
// filesystem operation, then re-runs it once per mutating operation
// with a power cut injected exactly there (write and fsync points get
// two extra variants: a torn tail and a corrupt torn tail), recovering
// and auditing after each. It returns the number of crash points
// exercised. Directories are created under baseDir.
func Sweep(baseDir string, cfg Config) (int, error) {
	traceDir := filepath.Join(baseDir, "trace")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return 0, err
	}
	tracer := faultfs.New(faultfs.Plan{})
	tracer.EnableTrace()
	o := NewOracle()
	walPath := filepath.Join(traceDir, "commit.log")
	if err := runScript(tracer, walPath, cfg, o); err != nil {
		return 0, fmt.Errorf("fault-free run failed: %w", err)
	}
	if err := RecoverAndCheck(walPath, cfg, o); err != nil {
		return 0, fmt.Errorf("fault-free run: %w", err)
	}

	points := 0
	for _, op := range tracer.Trace() {
		if !op.Mutates() {
			continue
		}
		faults := []faultfs.Fault{{Crash: true}}
		if op.Op == faultfs.OpWrite || op.Op == faultfs.OpSync {
			// Torn tail and corrupt torn tail: bytes of the in-flight
			// write reached the platter, clean or garbled.
			faults = append(faults,
				faultfs.Fault{Crash: true, Torn: 5},
				faultfs.Fault{Crash: true, Torn: 1 << 20, Corrupt: true})
		}
		if op.Op == faultfs.OpRename {
			// The lucky window: the rename's dirent was journaled
			// before the cut.
			faults = append(faults, faultfs.Fault{Crash: true, KeepRename: true})
		}
		for fi, ft := range faults {
			dir := filepath.Join(baseDir, fmt.Sprintf("op%04d.%d", op.Index, fi))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return points, err
			}
			wp := filepath.Join(dir, "commit.log")
			fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{{AtOp: op.Index, Fault: ft}}})
			oo := NewOracle()
			scriptErr := runScript(fs, wp, cfg, oo)
			if !fs.Crashed() {
				return points, fmt.Errorf("crash point op %d (%s %s) never fired (script err: %v) — scenario not deterministic",
					op.Index, op.Op, filepath.Base(op.Path), scriptErr)
			}
			if err := fs.ApplyCrash(); err != nil {
				return points, fmt.Errorf("op %d: apply crash: %w", op.Index, err)
			}
			if err := RecoverAndCheck(wp, cfg, oo); err != nil {
				return points, fmt.Errorf("crash at op %d (%s %s), fault %+v: %w",
					op.Index, op.Op, filepath.Base(op.Path), ft, err)
			}
			points++
			os.RemoveAll(dir)
		}
	}
	return points, nil
}
