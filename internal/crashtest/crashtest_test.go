package crashtest

import (
	"testing"
)

// TestSweepExhaustive crashes the scripted scenario at every mutating
// filesystem operation — WAL appends, batch fsyncs, checkpoint temp
// writes and renames, compaction, directory fsyncs — for every engine
// configuration, and audits every recovery against the dual oracle.
func TestSweepExhaustive(t *testing.T) {
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			points, err := Sweep(t.TempDir(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The scenario performs well over 40 mutating operations
			// (13 commits with their fsyncs, checkpoint, compaction,
			// three opens); a collapse of this count means the sweep
			// silently stopped covering the crash windows.
			if points < 40 {
				t.Fatalf("sweep exercised only %d crash points", points)
			}
			t.Logf("%s: %d crash points, zero violations", cfg, points)
		})
	}
}

// TestTortureQuick is the CI-sized randomized run: a fixed seed matrix
// of short multi-client torture loops over the full engine matrix. The
// long version lives in cmd/mvtorture.
func TestTortureQuick(t *testing.T) {
	seeds := []int64{1, 2, 3}
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				rep, err := Torture(t.TempDir(), TortureOptions{
					Seed:    seed,
					Config:  cfg,
					Rounds:  5,
					Clients: 3,
				})
				if err != nil {
					t.Fatalf("seed %d: %v (after %d rounds, %d/%d acked)",
						seed, err, rep.Rounds, rep.Acked, rep.Attempts)
				}
				if rep.Acked == 0 {
					t.Fatalf("seed %d: torture acknowledged zero commits — workload never ran", seed)
				}
				t.Logf("seed %d: %d rounds (%d crashes), %d/%d commits acked, zero violations",
					seed, rep.Rounds, rep.Crashes, rep.Acked, rep.Attempts)
			}
		})
	}
}
