package crashtest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/faultfs"
	"mvdb/internal/flight"
	"mvdb/internal/hotspot"
	"mvdb/internal/trace"
)

// TortureOptions configures a seeded randomized torture run.
type TortureOptions struct {
	// Seed makes the fault schedule reproducible (crash points, tear
	// sizes, workload shapes). Client interleaving still varies with
	// the scheduler; the oracle must hold under every interleaving.
	Seed int64
	// Config is the engine variant under torture.
	Config Config
	// Rounds bounds the number of crash/recover rounds (0 with zero
	// Duration defaults to 8).
	Rounds int
	// Duration bounds the wall-clock time instead of (or as well as)
	// Rounds.
	Duration time.Duration
	// Clients is the number of concurrent committers (default 4).
	Clients int
	// Log, when non-nil, receives one progress line per round.
	Log func(format string, args ...any)
	// FlightDir, when non-empty, receives a flight-recorder postmortem
	// bundle (renderable with mvinspect -bundle) whenever an oracle
	// violation aborts the run; TortureReport.Bundle names it.
	FlightDir string
	// TraceSample, when > 0, head-samples transactions in every round
	// into causal span traces; aborted and slow traces are retained, and
	// an oracle violation flags the freshest ones into the postmortem
	// bundle (Bundle.Traces).
	TraceSample float64
	// Hotspots attaches one workload profiler across every engine
	// incarnation, so the run's hottest keys accumulate over crash
	// rounds (TortureReport.HotKeys).
	Hotspots bool
}

// TortureReport summarizes a completed torture run.
type TortureReport struct {
	Rounds      int // rounds run (each ends in a crash or a clean stop)
	Crashes     int // rounds that ended in a simulated power cut
	CleanRounds int
	Acked       int // commits acknowledged across all rounds
	Attempts    int // commit attempts across all rounds
	// Bundle is the flight postmortem written on an oracle violation
	// ("" when the run passed or TortureOptions.FlightDir was empty).
	Bundle string
	// Traces is how many causal traces were promoted across the run
	// (0 unless TortureOptions.TraceSample > 0).
	Traces int
	// HotKeys ranks the run's most-written keys (falling back to
	// most-read), accumulated across every crash round (nil unless
	// TortureOptions.Hotspots).
	HotKeys []hotspot.HotKey
}

// capturePostmortem photographs a live engine into a flight bundle when
// an oracle fires. Best-effort: postmortem failures never mask the
// violation itself.
func capturePostmortem(rep *TortureReport, dir string, e *core.Engine, spans *trace.Tracer, detail string, logf func(string, ...any)) {
	if dir == "" || e == nil {
		return
	}
	src := flight.Sources{
		Stats:     e.Snapshot,
		WaitGraph: e.LockWaitGraph,
	}
	if spans != nil {
		src.Traces = func() []trace.Trace {
			spans.PromoteRecent("oracle-violation", 8)
			return spans.Promoted()
		}
	}
	path, err := flight.Capture(src, nil, dir, "oracle-violation", detail)
	if err != nil {
		logf("postmortem capture failed: %v", err)
		return
	}
	rep.Bundle = path
	logf("postmortem bundle: %s", path)
}

// Torture runs rounds of: recover the database in dir under a
// fault-injecting filesystem with one randomly placed power cut, audit
// the freshly recovered state against the oracle, hammer it with
// concurrent committers (plus snapshot readers and an occasional
// checkpoint under load) until the cut fires or the round's budget
// ends, then materialize the surviving bytes and go again. State and
// oracle accumulate across rounds; a final RecoverAndCheck closes the
// run. Any oracle violation aborts with a descriptive error.
func Torture(dir string, opts TortureOptions) (TortureReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Rounds <= 0 && opts.Duration <= 0 {
		opts.Rounds = 8
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	walPath := filepath.Join(dir, "commit.log")
	o := NewOracle()
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	// One span tracer spans every round: finalized traces outlive the
	// engine incarnations that produced them, so the postmortem sees
	// evidence from before the fatal recovery too.
	var spans *trace.Tracer
	if opts.TraceSample > 0 {
		spans = trace.New(trace.Options{Sample: opts.TraceSample, Seed: uint64(opts.Seed) | 1})
	}
	// Likewise one profiler spans every round, so hot keys accumulate
	// across crash/recover incarnations. Sample every touch: torture
	// rounds are short and the sketch must see enough to rank keys.
	var prof *hotspot.Profiler
	if opts.Hotspots {
		prof = hotspot.New(hotspot.Options{SampleEvery: 1})
	}

	var rep TortureReport
	fillHot := func() {
		if prof == nil {
			return
		}
		hr := prof.Report()
		rep.HotKeys = hr.HotWrites
		if len(rep.HotKeys) == 0 {
			rep.HotKeys = hr.HotReads
		}
		if len(rep.HotKeys) > 8 {
			rep.HotKeys = rep.HotKeys[:8]
		}
	}
	for {
		if opts.Rounds > 0 && rep.Rounds >= opts.Rounds {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		rep.Rounds++

		// One randomly placed power cut per round, with a random tear
		// of the in-flight bytes, sometimes garbled. A wide AtOp range
		// also leaves some rounds crash-free (clean-shutdown coverage).
		ft := faultfs.Fault{Crash: true, Torn: rng.Intn(64)}
		if rng.Intn(3) == 0 {
			ft.Corrupt = true
		}
		if rng.Intn(4) == 0 {
			ft.KeepRename = true
		}
		crashAt := 1 + rng.Intn(40+rng.Intn(400))
		fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{{AtOp: crashAt, Fault: ft}}})

		e, w, err := openEngineTraced(fs, walPath, opts.Config, nil, spans, prof)
		if err != nil {
			if fs.Crashed() {
				// The cut hit recovery itself; survive it and go again.
				if aerr := fs.ApplyCrash(); aerr != nil {
					return rep, aerr
				}
				rep.Crashes++
				logf("round %d: crash during recovery at op %d", rep.Rounds, crashAt)
				continue
			}
			return rep, fmt.Errorf("round %d: recovery failed: %w", rep.Rounds, err)
		}
		// The dual oracle holds at every recovery, not just the last.
		if err := o.Check(e); err != nil {
			err = fmt.Errorf("round %d: %w", rep.Rounds, err)
			capturePostmortem(&rep, opts.FlightDir, e, spans, err.Error(), logf)
			rep.Traces = len(spans.Promoted())
			fillHot()
			w.Close()
			e.Close()
			return rep, err
		}

		budget := 60 + rng.Intn(140)
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(client int, cseed int64) {
				defer wg.Done()
				crng := rand.New(rand.NewSource(cseed))
				for i := 0; i < budget && !fs.Crashed(); i++ {
					muts := make(map[string]Mut)
					for j := 0; j < 1+crng.Intn(3); j++ {
						k := keys[crng.Intn(len(keys))]
						if crng.Intn(24) == 0 {
							muts[k] = Mut{Delete: true}
						} else {
							muts[k] = Mut{Value: fmt.Sprintf("s%d.r%d.c%d.i%d.%s",
								opts.Seed, rep.Rounds, client, i, k)}
						}
					}
					for try := 0; try < 32; try++ {
						if _, err := CommitAttempt(e, o, muts); err == nil || !engine.Retryable(err) {
							break
						}
					}
					if crng.Intn(8) == 0 {
						if ro, err := e.Begin(engine.ReadOnly); err == nil {
							_, _ = ro.Get(keys[crng.Intn(len(keys))])
							ro.Commit()
						}
					}
				}
			}(c, rng.Int63())
		}
		if rng.Intn(2) == 0 {
			// Checkpoint racing the committers — the snapshot writer's
			// crash windows under live load.
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = e.WriteSnapshot(fs, walPath)
			}()
		}
		wg.Wait()
		w.Close()
		e.Close()

		if fs.Crashed() {
			if err := fs.ApplyCrash(); err != nil {
				return rep, err
			}
			rep.Crashes++
			logf("round %d: crash at op %d (torn %d, corrupt %v), %d commits acked so far",
				rep.Rounds, crashAt, ft.Torn, ft.Corrupt, o.Acks())
		} else {
			rep.CleanRounds++
			if rng.Intn(3) == 0 {
				// Offline compaction between clean incarnations.
				if err := core.Compact(nil, walPath); err != nil {
					return rep, fmt.Errorf("round %d: compact: %w", rep.Rounds, err)
				}
			}
			logf("round %d: clean shutdown, %d commits acked so far", rep.Rounds, o.Acks())
		}
	}

	if err := RecoverAndCheck(walPath, opts.Config, o); err != nil {
		// The checking engine is gone; reopen the surviving state cleanly
		// so the bundle photographs what recovery actually produced.
		if opts.FlightDir != "" {
			if e, w, oerr := openEngine(faultfs.New(faultfs.Plan{}), walPath, opts.Config, nil); oerr == nil {
				capturePostmortem(&rep, opts.FlightDir, e, spans, err.Error(), logf)
				w.Close()
				e.Close()
			}
		}
		rep.Traces = len(spans.Promoted())
		fillHot()
		return rep, err
	}
	rep.Acked = o.Acks()
	rep.Attempts = o.Attempts()
	rep.Traces = len(spans.Promoted())
	fillHot()
	return rep, nil
}
