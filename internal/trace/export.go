package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// ChromeSchema identifies the export format; it rides in the document
// so decoders can reject incompatible files.
const ChromeSchema = "mvdb-trace/v1"

// Dump is the /debug/mvdb/traces payload: tracer counters plus the
// promoted and recent stores. mvinspect -trace decodes this.
type Dump struct {
	Stats    Stats   `json:"stats"`
	Promoted []Trace `json:"promoted"`
	Recent   []Trace `json:"recent"`
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// ts/dur are microseconds; exact nanosecond values ride in Args as
// decimal strings because unix-nano timestamps exceed JSON's exact
// integer range.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	Schema          string        `json:"schema"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func ns(v int64) string { return strconv.FormatInt(v, 10) }

func parseNS(args map[string]any, key string) int64 {
	s, _ := args[key].(string)
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

func parseU64(args map[string]any, key string) uint64 {
	switch v := args[key].(type) {
	case string:
		u, _ := strconv.ParseUint(v, 16, 64)
		return u
	case float64:
		return uint64(v)
	}
	return 0
}

func parseInt(args map[string]any, key string) int {
	v, _ := args[key].(float64)
	return int(v)
}

func parseNum(args map[string]any, key string) uint64 {
	v, _ := args[key].(float64)
	return uint64(v)
}

func parseStr(args map[string]any, key string) string {
	s, _ := args[key].(string)
	return s
}

// EncodeChrome renders traces as a chrome://tracing- and Perfetto-
// loadable document. Each trace becomes one tid; the transaction root
// is a complete ("X") event named tx/<proto>, spans are complete events
// in cat "phase", and blame edges are instant ("i") events in cat
// "blame". Timestamps are shifted so the earliest trace starts at 0.
func EncodeChrome(traces []Trace) ([]byte, error) {
	var base int64
	for i, tr := range traces {
		if i == 0 || tr.StartNS < base {
			base = tr.StartNS
		}
	}
	doc := chromeDoc{Schema: ChromeSchema, DisplayTimeUnit: "ms"}
	us := func(nsv int64) float64 { return float64(nsv-base) / 1e3 }
	for i, tr := range traces {
		tid := i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "tx/" + tr.Proto,
			Cat:  "tx",
			Ph:   "X",
			TS:   us(tr.StartNS),
			Dur:  float64(tr.TotalNS) / 1e3,
			PID:  tr.Site + 1,
			TID:  tid,
			Args: map[string]any{
				"id":            fmt.Sprintf("%016x", tr.ID),
				"site":          tr.Site,
				"tx":            tr.Tx,
				"tn":            tr.TN,
				"proto":         tr.Proto,
				"outcome":       tr.Outcome,
				"promoted":      tr.Promoted,
				"start_ns":      ns(tr.StartNS),
				"end_ns":        ns(tr.EndNS),
				"visible_ns":    ns(tr.VisibleNS),
				"total_ns":      ns(tr.TotalNS),
				"dropped_spans": tr.DroppedSpans,
			},
		})
		for _, sp := range tr.Spans {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Name,
				Cat:  "phase",
				Ph:   "X",
				TS:   us(sp.StartNS),
				Dur:  float64(sp.DurNS) / 1e3,
				PID:  tr.Site + 1,
				TID:  tid,
				Args: map[string]any{
					"site":     sp.Site,
					"start_ns": ns(sp.StartNS),
					"dur_ns":   ns(sp.DurNS),
				},
			})
		}
		for _, b := range tr.Blames {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: b.Kind,
				Cat:  "blame",
				Ph:   "i",
				TS:   us(tr.StartNS),
				PID:  tr.Site + 1,
				TID:  tid,
				S:    "t",
				Args: map[string]any{
					"phase":   b.Phase,
					"tx":      b.Tx,
					"key":     b.Key,
					"stripe":  b.Stripe,
					"batch":   b.Batch,
					"records": b.Records,
					"depth":   b.Depth,
					"dur_ns":  ns(b.DurNS),
				},
			})
		}
	}
	return json.MarshalIndent(doc, "", " ")
}

// DecodeChrome is EncodeChrome's inverse: it reconstructs the traces
// from the exact-nanosecond args, ignoring the lossy ts/dur fields.
func DecodeChrome(data []byte) ([]Trace, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if doc.Schema != ChromeSchema {
		return nil, fmt.Errorf("trace: schema %q, want %q", doc.Schema, ChromeSchema)
	}
	byTID := make(map[int]*Trace)
	var order []int
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "tx":
			tr := &Trace{
				ID:           parseU64(ev.Args, "id"),
				Site:         parseInt(ev.Args, "site"),
				Tx:           parseNum(ev.Args, "tx"),
				TN:           parseNum(ev.Args, "tn"),
				Proto:        parseStr(ev.Args, "proto"),
				Outcome:      parseStr(ev.Args, "outcome"),
				Promoted:     parseStr(ev.Args, "promoted"),
				StartNS:      parseNS(ev.Args, "start_ns"),
				EndNS:        parseNS(ev.Args, "end_ns"),
				VisibleNS:    parseNS(ev.Args, "visible_ns"),
				TotalNS:      parseNS(ev.Args, "total_ns"),
				DroppedSpans: parseInt(ev.Args, "dropped_spans"),
			}
			byTID[ev.TID] = tr
			order = append(order, ev.TID)
		case "phase":
			tr := byTID[ev.TID]
			if tr == nil {
				return nil, fmt.Errorf("trace: span before tx root (tid %d)", ev.TID)
			}
			tr.Spans = append(tr.Spans, Span{
				Name:    ev.Name,
				Site:    parseInt(ev.Args, "site"),
				StartNS: parseNS(ev.Args, "start_ns"),
				DurNS:   parseNS(ev.Args, "dur_ns"),
			})
		case "blame":
			tr := byTID[ev.TID]
			if tr == nil {
				return nil, fmt.Errorf("trace: blame before tx root (tid %d)", ev.TID)
			}
			tr.Blames = append(tr.Blames, Blame{
				Kind:    ev.Name,
				Phase:   parseStr(ev.Args, "phase"),
				Tx:      parseNum(ev.Args, "tx"),
				Key:     parseStr(ev.Args, "key"),
				Stripe:  parseInt(ev.Args, "stripe"),
				Batch:   parseNum(ev.Args, "batch"),
				Records: parseInt(ev.Args, "records"),
				Depth:   parseInt(ev.Args, "depth"),
				DurNS:   parseNS(ev.Args, "dur_ns"),
			})
		}
	}
	out := make([]Trace, 0, len(order))
	for _, tid := range order {
		out = append(out, *byTID[tid])
	}
	return out, nil
}

// HTTPHandler serves the tracer's stores. GET returns a Dump as JSON;
// ?format=chrome returns the promoted traces as a Chrome trace-event
// document, directly loadable in chrome://tracing or Perfetto.
func (t *Tracer) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "chrome" {
			data, err := EncodeChrome(t.Promoted())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="mvdb-trace.json"`)
			w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(Dump{Stats: t.Stats(), Promoted: t.Promoted(), Recent: t.Recent()})
	})
}

// sortSpans orders spans for rendering: by start, then longer first.
func sortSpans(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].DurNS > out[j].DurNS
	})
	return out
}
