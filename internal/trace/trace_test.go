package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/obs"
)

// TestSamplerDeterminism pins the reproducibility contract: two tracers
// built with the same seed and rate make identical head-sampling
// decisions for identical Start sequences, and identical tail-retention
// decisions for identical (protocol, total, outcome) sequences. A
// support engineer replaying a workload with the seed from a bug report
// must get the same traces.
func TestSamplerDeterminism(t *testing.T) {
	mk := func() *Tracer {
		return New(Options{Sample: 0.37, Seed: 12345, SlowNS: 80})
	}
	a, b := mk(), mk()
	var sampledA, sampledB []bool
	for tx := uint64(1); tx <= 500; tx++ {
		actA := a.Start(tx, "vc+2pl")
		actB := b.Start(tx, "vc+2pl")
		sampledA = append(sampledA, actA != nil)
		sampledB = append(sampledB, actB != nil)
		actA.FinishCommit()
		actB.FinishCommit()
	}
	some := false
	for i := range sampledA {
		if sampledA[i] != sampledB[i] {
			t.Fatalf("Start decision %d diverged: %v vs %v", i, sampledA[i], sampledB[i])
		}
		some = some || sampledA[i]
	}
	if !some {
		t.Fatal("rate 0.37 sampled nothing in 500 draws")
	}

	// Tail retention is a pure function of the decision sequence.
	c, d := mk(), mk()
	totals := []int64{10, 20, 90, 15, 200, 30, 12, 85, 40, 400}
	for i, total := range totals {
		outcome := "commit"
		if i%4 == 3 {
			outcome = "abort"
		}
		got, want := c.Decide("vc+occ", total, outcome), d.Decide("vc+occ", total, outcome)
		if got != want {
			t.Fatalf("decide(%d, %s) diverged: %q vs %q", total, outcome, got, want)
		}
	}
	if r := c.Decide("vc+occ", 5, "abort"); r != PromotedAborted {
		t.Fatalf("aborted trace decided %q, want %q", r, PromotedAborted)
	}
	if r := c.Decide("vc+occ", 90, "commit"); r != PromotedSlow {
		t.Fatalf("slow trace (past SlowNS floor) decided %q, want %q", r, PromotedSlow)
	}
	if r := c.Decide("vc+occ", 5, "commit"); r != "" {
		t.Fatalf("fast trace decided %q, want unpromoted", r)
	}
}

// TestSampleRateZeroAndOne pin the cut endpoints: 1.0 samples every
// transaction, 0 (on a live tracer) samples none.
func TestSampleRateZeroAndOne(t *testing.T) {
	all := New(Options{Sample: 1})
	none := New(Options{})
	for tx := uint64(1); tx <= 64; tx++ {
		if all.Start(tx, "p") == nil {
			t.Fatalf("sample 1.0 skipped tx %d", tx)
		}
		if none.Start(tx, "p") != nil {
			t.Fatalf("sample 0 traced tx %d", tx)
		}
	}
	st := all.Stats()
	if st.Started != 64 || st.Sampled != 64 {
		t.Fatalf("stats = %+v, want 64/64", st)
	}
	if st := none.Stats(); st.Sampled != 0 {
		t.Fatalf("sample 0 reported %d sampled", st.Sampled)
	}
}

// TestNilSafety drives every method through nil receivers: the disabled
// path must be inert, not crash.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	a := tr.Start(1, "p")
	if a != nil {
		t.Fatal("nil tracer sampled")
	}
	a.Span("x", time.Now(), time.Millisecond)
	a.SpanSite("x", 2, time.Now())
	a.SpanAt("x", -1, 0, 0)
	a.Blame(Blame{Kind: BlameBlockedOn})
	a.CommitTN(7)
	a.FinishCommit()
	a.FinishAbort()
	if a.ID() != 0 {
		t.Fatal("nil Active has an ID")
	}
	tr.OnLockWait(1, "k", 0, 2, time.Millisecond)
	tr.OnVisible(7, time.Millisecond)
	if tr.PromoteRecent("x", 3) != 0 {
		t.Fatal("nil tracer promoted")
	}
	if tr.Promoted() != nil || tr.Recent() != nil {
		t.Fatal("nil tracer returned traces")
	}
	if tr.Stats() != (Stats{}) {
		t.Fatal("nil tracer returned stats")
	}
}

// TestLifecyclePromotionAndExport walks one sampled transaction through
// the full pipeline: spans, all three blame kinds, commit-visible
// finalization, slow-promotion, ring export, and the obs event mirror.
func TestLifecyclePromotionAndExport(t *testing.T) {
	ring := obs.NewTracer(64)
	tr := New(Options{Sample: 1, SlowNS: 1, Ring: ring})
	a := tr.Start(42, "vc+2pl")
	if a == nil {
		t.Fatal("sample 1.0 returned nil")
	}
	base := time.Now()
	a.SpanAt("lock-wait", -1, base.UnixNano(), int64(time.Millisecond))
	a.Blame(Blame{Kind: BlameBlockedOn, Phase: "lock-wait", Tx: 7, Key: "hot", Stripe: 3, DurNS: int64(time.Millisecond)})
	a.SpanAt("fsync-wait", -1, base.UnixNano()+int64(time.Millisecond), int64(2*time.Millisecond))
	a.Blame(Blame{Kind: BlameJoinedBatch, Phase: "fsync-wait", Tx: 9, Batch: 4, Records: 12, DurNS: int64(2 * time.Millisecond)})
	a.CommitTN(9001)
	a.Blame(Blame{Kind: BlameQueuedBehind, Phase: "visible-wait", Tx: 9000, Depth: 2})
	tr.OnVisible(9001, 3*time.Millisecond)

	// Finalized via the visibility callback: promoted as slow.
	prom := tr.Promoted()
	if len(prom) != 1 {
		t.Fatalf("promoted = %d traces, want 1", len(prom))
	}
	got := prom[0]
	if got.Tx != 42 || got.TN != 9001 || got.Proto != "vc+2pl" {
		t.Fatalf("identity wrong: %+v", got)
	}
	if got.Outcome != "commit" || got.Promoted != PromotedSlow {
		t.Fatalf("outcome/promotion wrong: %q/%q", got.Outcome, got.Promoted)
	}
	if got.VisibleNS == 0 || got.TotalNS <= 0 {
		t.Fatalf("visibility timing missing: %+v", got)
	}
	// visible-wait span appended by OnVisible.
	names := map[string]bool{}
	for _, s := range got.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"lock-wait", "fsync-wait", "visible-wait"} {
		if !names[want] {
			t.Fatalf("span %q missing: %v", want, got.Spans)
		}
	}
	kinds := map[string]bool{}
	for _, b := range got.Blames {
		kinds[b.Kind] = true
	}
	for _, want := range []string{BlameBlockedOn, BlameJoinedBatch, BlameQueuedBehind} {
		if !kinds[want] {
			t.Fatalf("blame %q missing: %v", want, got.Blames)
		}
	}
	// A second finalize must be a no-op (idempotence).
	a.FinishAbort()
	if st := tr.Stats(); st.Finished != 1 || st.Promoted != 1 {
		t.Fatalf("double finalize changed stats: %+v", st)
	}

	// The promotion was mirrored into the obs ring: one EvSpan plus one
	// EvBlame per edge.
	var spans, blames int
	for _, ev := range ring.Dump() {
		switch ev.Type {
		case obs.EvSpan:
			spans++
		case obs.EvBlame:
			blames++
		}
	}
	if spans != 1 || blames != 3 {
		t.Fatalf("obs mirror: %d EvSpan / %d EvBlame, want 1/3", spans, blames)
	}

	// Chrome round trip preserves the trace.
	data, err := EncodeChrome(prom)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("decoded %d traces, want 1", len(back))
	}
	b0 := back[0]
	if b0.ID != got.ID || b0.Tx != got.Tx || b0.TN != got.TN || b0.Proto != got.Proto ||
		b0.Outcome != got.Outcome || b0.Promoted != got.Promoted ||
		b0.StartNS != got.StartNS || b0.TotalNS != got.TotalNS {
		t.Fatalf("chrome round trip mutated header:\n got %+v\nwant %+v", b0, got)
	}
	if len(b0.Spans) != len(got.Spans) || len(b0.Blames) != len(got.Blames) {
		t.Fatalf("chrome round trip lost children: %d/%d spans, %d/%d blames",
			len(b0.Spans), len(got.Spans), len(b0.Blames), len(got.Blames))
	}
	for _, b := range b0.Blames {
		if !kinds[b.Kind] {
			t.Fatalf("decoded unknown blame kind %q", b.Kind)
		}
	}
}

// TestPromoteRecent pins flagged retention: the newest unpromoted
// traces move to the promoted ring tagged with the reason.
func TestPromoteRecent(t *testing.T) {
	tr := New(Options{Sample: 1})
	for tx := uint64(1); tx <= 5; tx++ {
		tr.Start(tx, "p").FinishCommit()
	}
	if n := len(tr.Promoted()); n != 0 {
		t.Fatalf("fast traces promoted early: %d", n)
	}
	if moved := tr.PromoteRecent("audit-cycle", 2); moved != 2 {
		t.Fatalf("PromoteRecent moved %d, want 2", moved)
	}
	prom := tr.Promoted()
	if len(prom) != 2 {
		t.Fatalf("promoted ring has %d, want 2", len(prom))
	}
	// Newest first were taken: txs 5 and 4 (ring order is push order).
	if prom[0].Tx != 5 || prom[1].Tx != 4 {
		t.Fatalf("wrong traces flagged: %d, %d (want 5, 4)", prom[0].Tx, prom[1].Tx)
	}
	for _, p := range prom {
		if p.Promoted != "flagged:audit-cycle" {
			t.Fatalf("tag = %q", p.Promoted)
		}
	}
	if n := len(tr.Recent()); n != 3 {
		t.Fatalf("recent ring has %d, want 3", n)
	}
	// Flagging an empty tracer is a no-op, not a panic (regression:
	// uint64 ring-index underflow when recentN < i).
	empty := New(Options{Sample: 1})
	if moved := empty.PromoteRecent("x", 4); moved != 0 {
		t.Fatalf("empty PromoteRecent moved %d", moved)
	}
}

// TestDropAccounting checks every bounded buffer counts what it sheds:
// the promoted ring under an abort storm, the span cap within one
// trace, and — under -race — that concurrent finalization, flagging and
// export keep the books consistent.
func TestDropAccounting(t *testing.T) {
	tr := New(Options{Sample: 1, Recent: 8, Promoted: 4, MaxSpans: 8})

	// Span overflow within one trace.
	a := tr.Start(1, "p")
	for i := 0; i < 13; i++ {
		a.SpanAt("s", -1, int64(i), 1)
	}
	a.FinishAbort()
	if prom := tr.Promoted(); len(prom) != 1 || prom[0].DroppedSpans != 5 {
		t.Fatalf("span overflow: %+v", prom)
	}
	if st := tr.Stats(); st.DroppedSpans != 5 {
		t.Fatalf("dropped spans = %d, want 5", st.DroppedSpans)
	}

	// Abort storm from many goroutines: every trace promotes, the ring
	// keeps 4, the rest are counted drops. Concurrent readers and
	// flaggers race the writers (the -race payoff).
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				a := tr.Start(uint64(1000+w*each+i), "p")
				a.SpanAt("s", -1, 0, 1)
				a.FinishAbort()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Promoted()
			tr.Recent()
			tr.PromoteRecent("probe", 1)
			tr.Stats()
		}
	}()
	wg.Wait()

	st := tr.Stats()
	wantFinished := uint64(1 + writers*each)
	if st.Finished != wantFinished {
		t.Fatalf("finished = %d, want %d", st.Finished, wantFinished)
	}
	if st.Promoted != wantFinished {
		t.Fatalf("promoted = %d, want %d (aborts always promote)", st.Promoted, wantFinished)
	}
	if st.DroppedPromoted != wantFinished-4 {
		t.Fatalf("dropped promoted = %d, want %d", st.DroppedPromoted, wantFinished-4)
	}
	if got := len(tr.Promoted()); got != 4 {
		t.Fatalf("promoted ring kept %d, want 4", got)
	}
}

// TestRecentRingEviction: unpromoted traces cycle through the bounded
// recent ring, counting evictions.
func TestRecentRingEviction(t *testing.T) {
	tr := New(Options{Sample: 1, Recent: 4})
	for tx := uint64(1); tx <= 10; tx++ {
		tr.Start(tx, "p").FinishCommit()
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(rec))
	}
	// Oldest first: 7, 8, 9, 10 survive.
	for i, want := range []uint64{7, 8, 9, 10} {
		if rec[i].Tx != want {
			t.Fatalf("recent[%d].Tx = %d, want %d", i, rec[i].Tx, want)
		}
	}
	if st := tr.Stats(); st.DroppedRecent != 6 {
		t.Fatalf("dropped recent = %d, want 6", st.DroppedRecent)
	}
}

// TestBlameString pins the waterfall vocabulary.
func TestBlameString(t *testing.T) {
	cases := []struct {
		b    Blame
		want string
	}{
		{Blame{Kind: BlameBlockedOn, Tx: 7, Key: "hot", Stripe: 3}, `blocked-on tx 7 key "hot" stripe 3`},
		{Blame{Kind: BlameJoinedBatch, Batch: 4, Tx: 9, Records: 12}, "joined-batch 4 leader-tn 9 records 12"},
		{Blame{Kind: BlameQueuedBehind, Tx: 9000, Depth: 2}, "queued-behind tn 9000 depth 2"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Fatalf("Blame.String() = %q, want %q", got, c.want)
		}
	}
}

// TestWaterfallRendering smoke-tests the ASCII renderer: every span
// name, blame edge and the trace header appear.
func TestWaterfallRendering(t *testing.T) {
	tr := Trace{
		ID: 0xabc, Tx: 42, TN: 9001, Proto: "vc+2pl", Outcome: "commit",
		Promoted: PromotedSlow, StartNS: 1000, EndNS: 5000, TotalNS: 4000,
		Spans: []Span{
			{Name: "lock-wait", Site: -1, StartNS: 1000, DurNS: 1500},
			{Name: "prepare", Site: 2, StartNS: 2500, DurNS: 500},
		},
		Blames: []Blame{
			{Kind: BlameBlockedOn, Phase: "lock-wait", Tx: 7, Key: "hot", Stripe: 3},
			{Kind: BlameQueuedBehind, Phase: "visible-wait", Tx: 9000, Depth: 2},
		},
	}
	var sb strings.Builder
	Waterfall(&sb, tr)
	out := sb.String()
	for _, want := range []string{
		"0000000000000abc", "vc+2pl", "tx=42", "lock-wait", "prepare",
		`blocked-on tx 7 key "hot" stripe 3`, "queued-behind tn 9000 depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}

// TestDumpJSONRoundTrip: the /debug/mvdb/traces document round-trips
// through encoding/json (mvinspect decodes it with the same types).
func TestDumpJSONRoundTrip(t *testing.T) {
	tr := New(Options{Sample: 1, SlowNS: 1})
	a := tr.Start(1, "p")
	a.SpanAt("install", -1, 10, 20)
	a.Blame(Blame{Kind: BlameQueuedBehind, Phase: "visible-wait", Tx: 5, Depth: 1})
	a.CommitTN(6)
	tr.OnVisible(6, time.Microsecond)

	d := Dump{Stats: tr.Stats(), Promoted: tr.Promoted(), Recent: tr.Recent()}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Promoted) != 1 || back.Promoted[0].TN != 6 || len(back.Promoted[0].Blames) != 1 {
		t.Fatalf("dump round trip: %+v", back)
	}
	if back.Stats != d.Stats {
		t.Fatalf("stats round trip: %+v vs %+v", back.Stats, d.Stats)
	}
}
