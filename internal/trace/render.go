package trace

import (
	"fmt"
	"io"
	"strings"

	"mvdb/internal/metrics"
)

const barWidth = 40

// Waterfall renders one trace as an ASCII span waterfall with blame
// edges, for mvinspect -trace:
//
//	trace 01c8f3… vc+2pl tx=42 tn=107 commit (slow) total=1.83ms
//	  lock-wait    412µs  |   ████████                                |  ⇐ blocked-on tx 17 key "a" stripe 3
//	  fsync-wait   902µs  |            ███████████████████            |  ⇐ joined-batch 12 leader-tn 101 records 7
//	  visible-wait 310µs  |                               ███████     |  ⇐ queued-behind tn 106 depth 3
func Waterfall(w io.Writer, tr Trace) {
	head := fmt.Sprintf("trace %016x %s tx=%d", tr.ID, tr.Proto, tr.Tx)
	if tr.TN != 0 {
		head += fmt.Sprintf(" tn=%d", tr.TN)
	}
	head += " " + tr.Outcome
	if tr.Promoted != "" {
		head += " (" + tr.Promoted + ")"
	}
	head += " total=" + metrics.Dur(tr.TotalNS)
	if tr.Site != 0 {
		head += fmt.Sprintf(" site=%d", tr.Site)
	}
	if tr.DroppedSpans > 0 {
		head += fmt.Sprintf(" dropped-spans=%d", tr.DroppedSpans)
	}
	fmt.Fprintln(w, head)

	spans := sortSpans(tr.Spans)
	// Scale over [trace start, latest span end or trace end].
	end := tr.StartNS + tr.TotalNS
	for _, sp := range spans {
		if e := sp.StartNS + sp.DurNS; e > end {
			end = e
		}
	}
	span := end - tr.StartNS
	if span <= 0 {
		span = 1
	}

	// Blame edges annotate the first span with a matching phase name.
	blameFor := make(map[string][]Blame)
	for _, b := range tr.Blames {
		blameFor[b.Phase] = append(blameFor[b.Phase], b)
	}

	nameW, durW := 0, 0
	durs := make([]string, len(spans))
	for i, sp := range spans {
		if len(sp.Name) > nameW {
			nameW = len(sp.Name)
		}
		durs[i] = metrics.Dur(sp.DurNS)
		if len(durs[i]) > durW {
			durW = len(durs[i])
		}
	}
	used := make(map[string]bool)
	for i, sp := range spans {
		lo := int((sp.StartNS - tr.StartNS) * barWidth / span)
		hi := int((sp.StartNS + sp.DurNS - tr.StartNS) * barWidth / span)
		if lo < 0 {
			lo = 0
		}
		if hi > barWidth {
			hi = barWidth
		}
		if hi <= lo {
			hi = lo + 1
			if hi > barWidth {
				lo, hi = barWidth-1, barWidth
			}
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", barWidth-hi)
		name := sp.Name
		if sp.Site >= 0 {
			name = fmt.Sprintf("%s@%d", sp.Name, sp.Site)
		}
		line := fmt.Sprintf("  %-*s %*s  |%s|", nameW+3, name, durW, durs[i], bar)
		if !used[sp.Name] {
			used[sp.Name] = true
			for _, b := range blameFor[sp.Name] {
				line += "  ⇐ " + b.String()
			}
		}
		fmt.Fprintln(w, line)
	}
	// Blames whose phase produced no span (dropped, or cross-cutting)
	// still surface.
	for _, b := range tr.Blames {
		if !used[b.Phase] {
			fmt.Fprintf(w, "  ⇐ %s (phase %s)\n", b.String(), b.Phase)
		}
	}
}
