package trace

// Decide exposes the tail-retention rule to tests: the promotion
// decision for a (protocol, total, outcome) triple, advancing the
// per-protocol history exactly as finalize would.
func (t *Tracer) Decide(proto string, totalNS int64, outcome string) string {
	return t.decide(proto, totalNS, outcome)
}
