// Package trace implements causal per-transaction tracing: for each
// sampled transaction it records a span tree (begin → per-phase child
// spans reusing the obs phase taxonomy) annotated with blame edges that
// name the *cause* of each wait — the lock holder blocking us, the
// group-commit batch we rode, the older transaction we queued behind in
// the version-control drain.
//
// Sampling is two-stage. Head sampling (Options.Sample) decides at
// Begin whether a transaction records spans at all; it is a single
// compare against a splitmix64 stream, so an unsampled Begin costs one
// atomic add. Tail-based retention then decides which finished traces
// survive: every sampled trace lands briefly in a bounded "recent"
// ring, but only traces that are slow (beyond the per-protocol p99 of
// trace totals, or an absolute floor), aborted, or explicitly flagged
// (audit alarm, flight trigger) are promoted into the long-lived store
// exported via /debug/mvdb/traces, Chrome trace-event files, and
// flight bundles.
//
// A nil *Tracer and a nil *Active are both valid and record nothing, so
// the disabled path in the engine costs one pointer test and zero
// allocations (guarded by TestTracingDisabledZeroOverhead).
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/metrics"
	"mvdb/internal/obs"
)

// Blame-edge kinds. Each names the subsystem that explains a wait and
// the fields of Blame it fills in.
const (
	// BlameBlockedOn: the lock manager queued us behind a holder.
	// Fields: Tx (holder), Key, Stripe, DurNS (wait).
	BlameBlockedOn = "blocked-on"
	// BlameJoinedBatch: our commit record rode a group-commit fsync
	// batch. Fields: Tx (leader's TN), Batch (batch ordinal), Records,
	// DurNS (sync wait).
	BlameJoinedBatch = "joined-batch"
	// BlameQueuedBehind: at Complete time an older registered-but-
	// unresolved transaction held the visibility horizon back, so our
	// visibility is deferred to its. Fields: Tx (oldest unresolved TN),
	// Depth (strict: VCQueue length; epoch: watermark distance
	// tn-vtnc-1), Watermark (vtnc at the completion instant), Epoch
	// (watermark publish generation; always 0 under strict visibility).
	BlameQueuedBehind = "queued-behind"
)

// Promotion reasons (Trace.Promoted). Flagged promotions use the
// free-form "flagged:<reason>" from PromoteRecent.
const (
	PromotedSlow    = "slow"
	PromotedAborted = "aborted"
)

// Span is one timed region of a transaction, named after the obs phase
// taxonomy ("lock-wait", "read", "validate", "wal-enqueue",
// "fsync-wait", "install", "visible-wait") plus the dist 2PC spans
// ("prepare", "commit", "resolve"). Site is -1 for local/coordinator
// work and the participant index for distributed spans.
type Span struct {
	Name    string `json:"name"`
	Site    int    `json:"site"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Blame is one causal edge: "this wait happened because of that
// transaction / batch / queue". Phase links the edge to the span it
// explains by name. Unused fields stay zero and are omitted from JSON.
type Blame struct {
	Kind    string `json:"kind"`
	Phase   string `json:"phase"`
	Tx      uint64 `json:"tx,omitempty"`
	Key     string `json:"key,omitempty"`
	Stripe  int    `json:"stripe,omitempty"`
	Batch   uint64 `json:"batch,omitempty"`
	Records int    `json:"records,omitempty"`
	Depth   int    `json:"depth,omitempty"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	// Watermark and Epoch qualify queued-behind edges: the visibility
	// horizon (vtnc) observed at the completion instant and, under epoch
	// visibility, the watermark publish generation it belongs to.
	Watermark uint64 `json:"watermark,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

// Trace is a finished, immutable transaction trace. VisibleNS is zero
// for aborted and read-only traces. Promoted is empty while the trace
// sits in the recent ring and names the retention reason once promoted.
type Trace struct {
	ID           uint64  `json:"id"`
	Site         int     `json:"site"`
	Tx           uint64  `json:"tx"`
	TN           uint64  `json:"tn,omitempty"`
	Proto        string  `json:"proto"`
	Outcome      string  `json:"outcome"`
	Promoted     string  `json:"promoted,omitempty"`
	StartNS      int64   `json:"start_ns"`
	EndNS        int64   `json:"end_ns"`
	VisibleNS    int64   `json:"visible_ns,omitempty"`
	TotalNS      int64   `json:"total_ns"`
	Spans        []Span  `json:"spans"`
	Blames       []Blame `json:"blames,omitempty"`
	DroppedSpans int     `json:"dropped_spans,omitempty"`
}

// Options configures a Tracer. The zero value of every field selects a
// sensible default except Sample, which must be > 0 for any transaction
// to be traced.
type Options struct {
	// Sample is the head-sampling rate in [0, 1].
	Sample float64
	// Seed seeds the sampling stream; a fixed default keeps decisions
	// reproducible (sampler-determinism test).
	Seed uint64
	// Recent bounds the ring of finished-but-unpromoted traces
	// (default 256).
	Recent int
	// Promoted bounds the ring of retained traces (default 64).
	Promoted int
	// SlowNS is an absolute promotion floor; a trace whose total meets
	// it is promoted even before the adaptive p99 has warmed up.
	// Zero means adaptive-only.
	SlowNS int64
	// MaxSpans bounds spans per trace (default 96); overflow is
	// counted in Trace.DroppedSpans.
	MaxSpans int
	// Site labels traces from this tracer (dist participants); 0 for a
	// single-site engine.
	Site int
	// Ring, when set, receives one EvSpan event per promoted trace and
	// one EvBlame per blame edge, tying promotions into the flight
	// recorder's event timeline.
	Ring *obs.Tracer
}

const (
	defaultRecent   = 256
	defaultPromoted = 64
	defaultMaxSpans = 96
	defaultSeed     = 0x6d766462 // "mvdb"
	// p99Warmup is the per-protocol sample count below which the
	// adaptive threshold is not consulted.
	p99Warmup = 64
)

// Stats are the tracer's own drop/throughput counters, exported on
// /debug/mvdb/traces.
type Stats struct {
	Started         uint64 `json:"started"`
	Sampled         uint64 `json:"sampled"`
	Finished        uint64 `json:"finished"`
	Promoted        uint64 `json:"promoted"`
	DroppedRecent   uint64 `json:"dropped_recent"`
	DroppedPromoted uint64 `json:"dropped_promoted"`
	DroppedSpans    uint64 `json:"dropped_spans"`
}

// Tracer samples, assembles, and retains transaction traces. All
// methods are safe for concurrent use; a nil *Tracer no-ops.
type Tracer struct {
	opts Options
	cut  uint64 // sample iff next splitmix64 < cut (MaxUint64 = always)
	rng  atomic.Uint64

	mu       sync.Mutex
	byTx     map[uint64]*Active
	byTN     map[uint64]*Active
	recent   []*Trace
	recentN  uint64 // total pushes into recent
	promoted []*Trace
	promN    uint64 // total pushes into promoted

	histMu sync.Mutex
	hists  map[string]*metrics.Histogram // per-protocol trace totals

	started         atomic.Uint64
	sampled         atomic.Uint64
	finished        atomic.Uint64
	promCount       atomic.Uint64
	droppedRecent   atomic.Uint64
	droppedPromoted atomic.Uint64
	droppedSpans    atomic.Uint64
}

// New returns a Tracer. A Sample of 0 yields a tracer that never
// samples (still usable for PromoteRecent bookkeeping); callers that
// want tracing fully off should keep a nil *Tracer instead.
func New(opts Options) *Tracer {
	if opts.Recent <= 0 {
		opts.Recent = defaultRecent
	}
	if opts.Promoted <= 0 {
		opts.Promoted = defaultPromoted
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = defaultMaxSpans
	}
	if opts.Seed == 0 {
		opts.Seed = defaultSeed
	}
	t := &Tracer{
		opts:     opts,
		byTx:     make(map[uint64]*Active),
		byTN:     make(map[uint64]*Active),
		recent:   make([]*Trace, opts.Recent),
		promoted: make([]*Trace, opts.Promoted),
		hists:    make(map[string]*metrics.Histogram),
	}
	switch {
	case opts.Sample >= 1:
		t.cut = ^uint64(0)
	case opts.Sample > 0:
		t.cut = uint64(opts.Sample * float64(1<<63) * 2)
	}
	t.rng.Store(opts.Seed)
	return t
}

// splitmix64 output for the given state (Steele et al.); the state
// itself advances by the golden-gamma in next().
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *Tracer) next() uint64 {
	return mix64(t.rng.Add(0x9E3779B97F4A7C15))
}

// Active is a trace under construction. Methods are safe for concurrent
// use (the lock observer and WAL flusher run on other goroutines) and
// all no-op on a nil receiver, so call sites need only the one pointer
// test the acceptance criteria allow.
type Active struct {
	t    *Tracer
	mu   sync.Mutex
	tr   Trace
	done bool
}

// Start begins a trace for transaction tx if head sampling selects it;
// it returns nil otherwise (and always on a nil Tracer).
func (t *Tracer) Start(tx uint64, proto string) *Active {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	if t.cut != ^uint64(0) && (t.cut == 0 || t.next() >= t.cut) {
		return nil
	}
	t.sampled.Add(1)
	a := &Active{t: t}
	a.tr = Trace{
		ID:      t.next() | 1, // never zero
		Site:    t.opts.Site,
		Tx:      tx,
		Proto:   proto,
		StartNS: time.Now().UnixNano(),
		Spans:   make([]Span, 0, 8),
	}
	t.mu.Lock()
	t.byTx[tx] = a
	t.mu.Unlock()
	return a
}

// ID returns the trace ID (0 on nil).
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tr.ID
}

// Span records a local span that started at start and ran for d.
func (a *Active) Span(name string, start time.Time, d time.Duration) {
	a.SpanAt(name, -1, start.UnixNano(), d.Nanoseconds())
}

// SpanSite records a span attributed to a participant site, measured
// from start to now.
func (a *Active) SpanSite(name string, site int, start time.Time) {
	a.SpanAt(name, site, start.UnixNano(), time.Since(start).Nanoseconds())
}

// SpanAt is the raw form: absolute start and duration in nanoseconds.
func (a *Active) SpanAt(name string, site int, startNS, durNS int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if len(a.tr.Spans) >= a.t.opts.MaxSpans {
		a.tr.DroppedSpans++
		a.t.droppedSpans.Add(1)
	} else {
		a.tr.Spans = append(a.tr.Spans, Span{Name: name, Site: site, StartNS: startNS, DurNS: durNS})
	}
	a.mu.Unlock()
}

// Blame attaches a causal edge.
func (a *Active) Blame(b Blame) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Blames = append(a.tr.Blames, b)
	a.mu.Unlock()
}

// CommitTN records the serialization number once known (lock point /
// validation / begin, depending on protocol) and indexes the trace by
// it so the visibility observer can find us at drain time.
func (a *Active) CommitTN(tn uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.TN = tn
	a.mu.Unlock()
	a.t.mu.Lock()
	a.t.byTN[tn] = a
	a.t.mu.Unlock()
}

// OnLockWait is the lock manager's wait-observer hook: transaction txID
// waited `wait` on key (hashed to stripe) behind blocker. Runs on the
// waiter's goroutine outside all lock-manager mutexes.
func (t *Tracer) OnLockWait(txID uint64, key string, stripe int, blocker uint64, wait time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	a := t.byTx[txID]
	t.mu.Unlock()
	if a == nil {
		return
	}
	now := time.Now().UnixNano()
	a.SpanAt(obs.PhaseLockWait.String(), -1, now-wait.Nanoseconds(), wait.Nanoseconds())
	a.Blame(Blame{
		Kind:   BlameBlockedOn,
		Phase:  obs.PhaseLockWait.String(),
		Tx:     blocker,
		Key:    key,
		Stripe: stripe,
		DurNS:  wait.Nanoseconds(),
	})
}

// OnVisible is the VC drain hook: transaction tn became visible d after
// registering. Called under the controller mutex, so it must not call
// back into vc; it appends the visible-wait span and finalizes.
func (t *Tracer) OnVisible(tn uint64, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	a := t.byTN[tn]
	t.mu.Unlock()
	if a == nil {
		return
	}
	now := time.Now().UnixNano()
	a.SpanAt(obs.PhaseVisibleWait.String(), -1, now-d.Nanoseconds(), d.Nanoseconds())
	t.finalize(a, "commit", now)
}

// FinishCommit finalizes a committed trace that will see no visibility
// callback: read-only transactions, distributed coordinators, and the
// unsafe-eager ablation.
func (a *Active) FinishCommit() {
	if a == nil {
		return
	}
	a.t.finalize(a, "commit", 0)
}

// FinishAbort finalizes an aborted trace; aborted traces always
// promote.
func (a *Active) FinishAbort() {
	if a == nil {
		return
	}
	a.t.finalize(a, "abort", 0)
}

// finalize snapshots the trace, applies the tail-retention decision,
// and files it in the recent or promoted ring. visibleNS is nonzero
// only on the commit-visible path. Idempotent: the first caller wins.
func (t *Tracer) finalize(a *Active, outcome string, visibleNS int64) {
	now := time.Now().UnixNano()
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.tr.Outcome = outcome
	a.tr.EndNS = now
	a.tr.VisibleNS = visibleNS
	end := now
	if visibleNS != 0 {
		end = visibleNS
	}
	a.tr.TotalNS = end - a.tr.StartNS
	tr := a.tr // value copy; Spans/Blames are no longer mutated
	tn := a.tr.TN
	tx := a.tr.Tx
	a.mu.Unlock()

	t.finished.Add(1)
	reason := t.decide(tr.Proto, tr.TotalNS, outcome)
	tr.Promoted = reason

	t.mu.Lock()
	delete(t.byTx, tx)
	if tn != 0 {
		delete(t.byTN, tn)
	}
	if reason != "" {
		t.pushPromotedLocked(&tr)
	} else {
		slot := t.recentN % uint64(len(t.recent))
		if old := t.recent[slot]; old != nil {
			t.droppedRecent.Add(1)
		}
		t.recent[slot] = &tr
		t.recentN++
	}
	t.mu.Unlock()

	if reason != "" {
		t.emit(&tr)
	}
}

// decide is the tail-retention rule: aborted traces always promote;
// committed traces promote when slow — beyond the absolute floor, or
// beyond the per-protocol p99 once that histogram has warmed up. The
// total is recorded after the check so a trace is judged against its
// predecessors, keeping the decision a pure function of the sequence
// seen so far (sampler-determinism test).
func (t *Tracer) decide(proto string, totalNS int64, outcome string) string {
	if outcome == "abort" {
		return PromotedAborted
	}
	t.histMu.Lock()
	h := t.hists[proto]
	if h == nil {
		h = metrics.NewHistogram()
		t.hists[proto] = h
	}
	t.histMu.Unlock()
	slow := t.opts.SlowNS > 0 && totalNS >= t.opts.SlowNS
	if !slow && h.Count() >= p99Warmup && totalNS >= h.Percentile(99) {
		slow = true
	}
	h.Record(totalNS)
	if slow {
		return PromotedSlow
	}
	return ""
}

func (t *Tracer) pushPromotedLocked(tr *Trace) {
	slot := t.promN % uint64(len(t.promoted))
	if t.promoted[slot] != nil {
		t.droppedPromoted.Add(1)
	}
	t.promoted[slot] = tr
	t.promN++
	t.promCount.Add(1)
}

// emit mirrors a promotion into the obs event ring so flight bundles
// time-correlate promoted traces with the rest of the engine's events.
func (t *Tracer) emit(tr *Trace) {
	r := t.opts.Ring
	if r == nil {
		return
	}
	r.Record(obs.Event{
		Type: obs.EvSpan,
		Tx:   tr.Tx,
		TN:   tr.TN,
		Key:  tr.Proto + "/" + tr.Promoted,
		Dur:  tr.TotalNS,
		N:    int64(len(tr.Spans)),
	})
	for _, b := range tr.Blames {
		n := int64(b.Depth)
		switch b.Kind {
		case BlameJoinedBatch:
			n = int64(b.Records)
		case BlameBlockedOn:
			n = int64(b.Stripe)
		}
		r.Record(obs.Event{
			Type: obs.EvBlame,
			Tx:   b.Tx,
			Key:  b.Kind + ":" + b.Key,
			Dur:  b.DurNS,
			N:    n,
		})
	}
}

// PromoteRecent flags up to n of the most recently finished traces as
// "flagged:<reason>" and moves them into the promoted ring. Audit
// alarms and flight triggers call this so the traces leading up to an
// incident survive even if they were fast.
func (t *Tracer) PromoteRecent(reason string, n int) int {
	if t == nil || n <= 0 {
		return 0
	}
	tag := "flagged:" + reason
	moved := 0
	t.mu.Lock()
	size := uint64(len(t.recent))
	for i := uint64(0); i < size && moved < n; i++ {
		// Walk newest → oldest.
		if t.recentN <= i {
			break
		}
		slot := (t.recentN - 1 - i) % size
		tr := t.recent[slot]
		if tr == nil {
			continue
		}
		tr.Promoted = tag
		t.pushPromotedLocked(tr)
		t.recent[slot] = nil
		moved++
	}
	t.mu.Unlock()
	if moved > 0 && t.opts.Ring != nil {
		t.opts.Ring.Record(obs.Event{Type: obs.EvSpan, Key: "flagged/" + reason, N: int64(moved)})
	}
	return moved
}

// Promoted returns the retained traces, oldest first. Nil-safe.
func (t *Tracer) Promoted() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.promoted, t.promN)
}

// Recent returns the finished-but-unpromoted traces, oldest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.recent, t.recentN)
}

func ringCopy(ring []*Trace, pushed uint64) []Trace {
	size := uint64(len(ring))
	out := make([]Trace, 0, size)
	start := uint64(0)
	if pushed > size {
		start = pushed - size
	}
	for i := start; i < pushed; i++ {
		if tr := ring[i%size]; tr != nil {
			out = append(out, *tr)
		}
	}
	return out
}

// Stats returns the tracer's counters. Nil-safe.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:         t.started.Load(),
		Sampled:         t.sampled.Load(),
		Finished:        t.finished.Load(),
		Promoted:        t.promCount.Load(),
		DroppedRecent:   t.droppedRecent.Load(),
		DroppedPromoted: t.droppedPromoted.Load(),
		DroppedSpans:    t.droppedSpans.Load(),
	}
}

// String summarizes a blame edge for waterfalls and logs.
func (b Blame) String() string {
	switch b.Kind {
	case BlameBlockedOn:
		return fmt.Sprintf("blocked-on tx %d key %q stripe %d", b.Tx, b.Key, b.Stripe)
	case BlameJoinedBatch:
		return fmt.Sprintf("joined-batch %d leader-tn %d records %d", b.Batch, b.Tx, b.Records)
	case BlameQueuedBehind:
		if b.Epoch > 0 {
			return fmt.Sprintf("queued-behind tn %d depth %d watermark %d epoch %d", b.Tx, b.Depth, b.Watermark, b.Epoch)
		}
		return fmt.Sprintf("queued-behind tn %d depth %d", b.Tx, b.Depth)
	}
	return b.Kind
}
