package engine

import (
	"errors"
	"fmt"
	"testing"
)

func TestRetryable(t *testing.T) {
	for _, err := range []error{ErrConflict, ErrDeadlock, ErrWounded} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
		if !Retryable(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("Retryable(wrapped %v) = false", err)
		}
	}
	for _, err := range []error{ErrNotFound, ErrReadOnly, ErrTxDone, nil, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
}

func TestClassString(t *testing.T) {
	if ReadOnly.String() != "read-only" || ReadWrite.String() != "read-write" {
		t.Fatalf("class strings: %q %q", ReadOnly, ReadWrite)
	}
}

func TestNopRecorderIsInert(t *testing.T) {
	var r Recorder = NopRecorder{}
	r.RecordBegin(1, ReadWrite)
	r.RecordRead(1, "k", 0)
	r.RecordWrite(1, "k", 1)
	r.RecordCommit(1, 1)
	r.RecordAbort(2)
}
