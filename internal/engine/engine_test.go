package engine

import (
	"errors"
	"fmt"
	"testing"
)

func TestRetryable(t *testing.T) {
	for _, err := range []error{ErrConflict, ErrDeadlock, ErrWounded} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
		if !Retryable(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("Retryable(wrapped %v) = false", err)
		}
	}
	for _, err := range []error{ErrNotFound, ErrReadOnly, ErrTxDone, nil, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
}

func TestClassString(t *testing.T) {
	if ReadOnly.String() != "read-only" || ReadWrite.String() != "read-write" {
		t.Fatalf("class strings: %q %q", ReadOnly, ReadWrite)
	}
}

func TestNopRecorderIsInert(t *testing.T) {
	var r Recorder = NopRecorder{}
	r.RecordBegin(1, ReadWrite)
	r.RecordRead(1, "k", 0)
	r.RecordWrite(1, "k", 1)
	r.RecordCommit(1, 1)
	r.RecordAbort(2)
}

// countingRecorder counts calls for Multi fan-out checks.
type countingRecorder struct{ begins, reads, writes, commits, aborts int }

func (c *countingRecorder) RecordBegin(uint64, Class)          { c.begins++ }
func (c *countingRecorder) RecordRead(uint64, string, uint64)  { c.reads++ }
func (c *countingRecorder) RecordWrite(uint64, string, uint64) { c.writes++ }
func (c *countingRecorder) RecordCommit(uint64, uint64)        { c.commits++ }
func (c *countingRecorder) RecordAbort(uint64)                 { c.aborts++ }

func TestMultiCollapses(t *testing.T) {
	if _, ok := Multi().(NopRecorder); !ok {
		t.Fatal("Multi() should collapse to NopRecorder")
	}
	if _, ok := Multi(nil, nil).(NopRecorder); !ok {
		t.Fatal("Multi(nil, nil) should collapse to NopRecorder")
	}
	if _, ok := Multi(NopRecorder{}, nil).(NopRecorder); !ok {
		t.Fatal("Multi(nop, nil) should collapse to NopRecorder")
	}
	c := &countingRecorder{}
	if got := Multi(nil, c, NopRecorder{}); got != Recorder(c) {
		t.Fatalf("Multi with one live recorder should return it unchanged, got %T", got)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &countingRecorder{}, &countingRecorder{}
	m := Multi(a, nil, b)
	m.RecordBegin(1, ReadWrite)
	m.RecordRead(1, "k", 0)
	m.RecordWrite(1, "k", 2)
	m.RecordCommit(1, 2)
	m.RecordAbort(3)
	for i, r := range []*countingRecorder{a, b} {
		if r.begins != 1 || r.reads != 1 || r.writes != 1 || r.commits != 1 || r.aborts != 1 {
			t.Fatalf("recorder %d saw %+v", i, *r)
		}
	}
}
