// Package engine defines the interface every transaction engine in this
// repository implements — the three version-control engines (VC+2PL,
// VC+T/O, VC+OCC) and the three baselines (Reed MVTO, Chan MV2PL-CTL,
// single-version 2PL). The benchmark harness, the correctness checker and
// the public API all program against this interface, which is what lets
// one experiment sweep every protocol (EXPERIMENTS.md).
package engine

import "errors"

// Class tells the engine whether a transaction will write. The paper
// (Section 4.1) requires this classification up front; a transaction of
// unknown class must be declared ReadWrite.
type Class int

const (
	// ReadWrite transactions may read and write; they are serialized by
	// the engine's concurrency-control component.
	ReadWrite Class = iota
	// ReadOnly transactions never write. Under the paper's version
	// control they bypass concurrency control entirely.
	ReadOnly
)

func (c Class) String() string {
	if c == ReadOnly {
		return "read-only"
	}
	return "read-write"
}

// Sentinel errors. ErrConflict, ErrDeadlock and ErrWounded mean the
// transaction was aborted by the engine and may be retried; the harness
// and the public API's Update helper do exactly that.
var (
	// ErrConflict reports a synchronization conflict (timestamp-ordering
	// rejection, failed optimistic validation, ...).
	ErrConflict = errors.New("engine: transaction aborted due to conflict")
	// ErrDeadlock reports the transaction was chosen as a deadlock victim.
	ErrDeadlock = errors.New("engine: transaction aborted to break a deadlock")
	// ErrWounded reports the transaction was aborted by an older one
	// under the wound-wait policy.
	ErrWounded = errors.New("engine: transaction wounded by an older transaction")
	// ErrNotFound reports the key does not exist at the transaction's
	// read point.
	ErrNotFound = errors.New("engine: key not found")
	// ErrReadOnly reports a write attempted by a read-only transaction.
	ErrReadOnly = errors.New("engine: write in read-only transaction")
	// ErrTxDone reports use of a transaction after Commit or Abort.
	ErrTxDone = errors.New("engine: transaction already finished")
)

// Retryable reports whether err is a transient abort that the caller may
// retry with a fresh transaction.
func Retryable(err error) bool {
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrDeadlock) || errors.Is(err, ErrWounded)
}

// Tx is one transaction. Implementations are not safe for concurrent use
// by multiple goroutines (one transaction = one client), matching the
// paper's model.
type Tx interface {
	// Get returns the value of key visible to this transaction, or
	// ErrNotFound. Under read-only transactions this is the Figure 2
	// rule: the largest version <= the start number.
	Get(key string) ([]byte, error)
	// Put installs a new value for key (ErrReadOnly for read-only txns).
	Put(key string, value []byte) error
	// Delete removes key by writing a tombstone version.
	Delete(key string) error
	// Commit makes the transaction's effects durable and visible per the
	// engine's protocol. After Commit the transaction is finished.
	Commit() error
	// Abort discards the transaction's effects. Safe to call after a
	// failed operation; idempotent after Commit/Abort.
	Abort()
	// ID returns a unique transaction identifier (diagnostics).
	ID() uint64
	// Class returns the declared class.
	Class() Class
	// SN returns the transaction's start number (snapshot position) if it
	// has one; read-write 2PL transactions return (0, false) until commit.
	SN() (uint64, bool)
}

// Scanner is implemented by transactions that support ordered prefix
// scans. Snapshot (read-only) transactions implement it naturally — the
// scan is just repeated snapshot reads; read-write transactions generally
// do not (a serializable scan would need predicate locking).
type Scanner interface {
	// Scan calls fn for every live key with the given prefix, in
	// ascending key order, at the transaction's snapshot. fn returning
	// false stops the scan.
	Scan(prefix string, fn func(key string, value []byte) bool) error
}

// Engine is a transaction engine over a key-value store.
type Engine interface {
	// Name identifies the protocol (for reports), e.g. "vc+2pl".
	Name() string
	// Begin starts a transaction of the given class.
	Begin(class Class) (Tx, error)
	// Stats returns a snapshot of engine counters. Keys are
	// engine-specific but the harness understands the common ones:
	// "commits.rw", "commits.ro", "aborts.conflict", "aborts.deadlock",
	// "aborts.wounded", "ro.blocked", "rw.aborts.by_ro".
	Stats() map[string]int64
	// Close releases background resources (GC goroutines etc.).
	Close() error
}

// Recorder observes committed operations for offline correctness
// checking. Engines call it only when one is attached (tests); a nil
// Recorder must be tolerated by using NopRecorder instead.
type Recorder interface {
	// RecordBegin notes a transaction's class and, for snapshot readers,
	// its start number.
	RecordBegin(txID uint64, class Class)
	// RecordRead notes that txID read the version of key created by
	// transaction number versionTN (0 = bootstrap version).
	RecordRead(txID uint64, key string, versionTN uint64)
	// RecordWrite notes that txID created version versionTN of key.
	// Engines that assign numbers at commit (2PL) call this during
	// Commit, before RecordCommit.
	RecordWrite(txID uint64, key string, versionTN uint64)
	// RecordCommit notes txID committed with serialization number tn.
	// Read-only transactions pass their start number.
	RecordCommit(txID uint64, tn uint64)
	// RecordAbort notes txID aborted; its writes must be disregarded.
	RecordAbort(txID uint64)
}

// SnapshotRecorder is an optional extension of Recorder: recorders that
// implement it additionally receive the snapshot position a read-only
// transaction pinned at begin (its start number sn). The online auditor
// uses it to check the snapshot-read invariant — a read-only transaction
// must never observe a version newer than its start number — which the
// commit-time history alone cannot express.
type SnapshotRecorder interface {
	// RecordSnapshot notes that read-only transaction txID will read at
	// snapshot position sn. Called after RecordBegin, before any read.
	RecordSnapshot(txID uint64, sn uint64)
}

// RecordSnapshot forwards a snapshot position to r if (and only if) it
// implements SnapshotRecorder; plain recorders are unaffected.
func RecordSnapshot(r Recorder, txID, sn uint64) {
	if sr, ok := r.(SnapshotRecorder); ok {
		sr.RecordSnapshot(txID, sn)
	}
}

// Multi combines recorders: every record call fans out to each non-nil,
// non-Nop recorder in order. It collapses to NopRecorder or the single
// remaining recorder when it can, so engines may attach an optional
// tracer unconditionally without paying for indirection when it is the
// only (or no) observer.
func Multi(rs ...Recorder) Recorder {
	var active []Recorder
	for _, r := range rs {
		if r == nil {
			continue
		}
		if _, nop := r.(NopRecorder); nop {
			continue
		}
		active = append(active, r)
	}
	switch len(active) {
	case 0:
		return NopRecorder{}
	case 1:
		return active[0]
	}
	return multiRecorder(active)
}

type multiRecorder []Recorder

// RecordBegin implements Recorder.
func (m multiRecorder) RecordBegin(txID uint64, class Class) {
	for _, r := range m {
		r.RecordBegin(txID, class)
	}
}

// RecordRead implements Recorder.
func (m multiRecorder) RecordRead(txID uint64, key string, versionTN uint64) {
	for _, r := range m {
		r.RecordRead(txID, key, versionTN)
	}
}

// RecordWrite implements Recorder.
func (m multiRecorder) RecordWrite(txID uint64, key string, versionTN uint64) {
	for _, r := range m {
		r.RecordWrite(txID, key, versionTN)
	}
}

// RecordCommit implements Recorder.
func (m multiRecorder) RecordCommit(txID, tn uint64) {
	for _, r := range m {
		r.RecordCommit(txID, tn)
	}
}

// RecordAbort implements Recorder.
func (m multiRecorder) RecordAbort(txID uint64) {
	for _, r := range m {
		r.RecordAbort(txID)
	}
}

// RecordSnapshot implements SnapshotRecorder, forwarding to the members
// that implement it.
func (m multiRecorder) RecordSnapshot(txID, sn uint64) {
	for _, r := range m {
		if sr, ok := r.(SnapshotRecorder); ok {
			sr.RecordSnapshot(txID, sn)
		}
	}
}

// NopRecorder is a Recorder that records nothing.
type NopRecorder struct{}

// RecordBegin implements Recorder.
func (NopRecorder) RecordBegin(uint64, Class) {}

// RecordRead implements Recorder.
func (NopRecorder) RecordRead(uint64, string, uint64) {}

// RecordWrite implements Recorder.
func (NopRecorder) RecordWrite(uint64, string, uint64) {}

// RecordCommit implements Recorder.
func (NopRecorder) RecordCommit(uint64, uint64) {}

// RecordAbort implements Recorder.
func (NopRecorder) RecordAbort(uint64) {}
