package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodePayload: arbitrary bytes must never panic the decoder, and a
// successfully decoded record must re-encode to a decodable payload with
// identical content.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePayload(nil, Record{TN: 7, Writes: []Write{{Key: "k", Value: []byte("v")}}}))
	f.Add(encodePayload(nil, Record{TN: 1, Writes: []Write{{Key: "", Tombstone: true}}}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodePayload(data)
		if err != nil {
			return
		}
		re := encodePayload(nil, rec)
		rec2, err := decodePayload(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rec2.TN != rec.TN || len(rec2.Writes) != len(rec.Writes) {
			t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
		}
		for i := range rec.Writes {
			if rec.Writes[i].Key != rec2.Writes[i].Key ||
				rec.Writes[i].Tombstone != rec2.Writes[i].Tombstone ||
				!bytes.Equal(rec.Writes[i].Value, rec2.Writes[i].Value) {
				t.Fatalf("write %d mismatch", i)
			}
		}
	})
}

// FuzzReplay: an arbitrary log file must never panic Replay; the reported
// valid length is bounded by the file size and every delivered record has
// a valid CRC by construction.
func FuzzReplay(f *testing.F) {
	good := func(recs ...Record) []byte {
		var out []byte
		for _, r := range recs {
			p := encodePayload(nil, r)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
			out = append(out, hdr[:]...)
			out = append(out, p...)
		}
		return out
	}
	f.Add([]byte{})
	f.Add(good(Record{TN: 1, Writes: []Write{{Key: "a", Value: []byte("x")}}}))
	f.Add(append(good(Record{TN: 2}), 0xDE, 0xAD))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		validLen, err := Replay(path, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("Replay errored on corrupt input: %v", err)
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
	})
}
