// Package wal implements a write-ahead commit log and redo recovery.
//
// The paper's opening sentence — "multiple versions of data are used in
// database systems to support transaction and system recovery" — is the
// reason this substrate exists: the engines in this repository can make a
// committed transaction durable by appending one commit record (its
// transaction number and write set) before the versions become visible,
// and rebuild the version store from the log after a crash.
//
// Log format (little endian), one record per committed transaction:
//
//	[4] payload length
//	[4] CRC-32 (IEEE) of payload
//	[n] payload:
//	      [8] transaction number
//	      [4] write count
//	      per write: [4] key length, key bytes,
//	                 [1] flags (bit 0: tombstone),
//	                 [4] value length, value bytes
//
// Recovery replays records in order and stops at the first torn or
// corrupt record (a partially flushed tail after a crash), truncating the
// suffix — standard redo-log discipline.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/faultfs"
)

// Write is one key's update inside a commit record.
type Write struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// Record is a committed transaction's log entry.
type Record struct {
	TN     uint64
	Writes []Write
}

// SyncPolicy controls when the writer flushes to stable storage.
type SyncPolicy int

const (
	// SyncEveryCommit fsyncs after every Append (durability first).
	SyncEveryCommit SyncPolicy = iota
	// SyncNever leaves flushing to the OS (benchmarks, tests).
	SyncNever
	// SyncBatch is group commit: Append enqueues the record and blocks
	// until a background flusher's fsync covers it. Durability on return
	// is identical to SyncEveryCommit — only the fsync count is
	// amortized across however many commits piled up while the previous
	// fsync was in flight (plus an optional gathering delay; see
	// Options).
	SyncBatch
)

// Options configures a Writer beyond the bare sync policy.
type Options struct {
	// Policy selects when appended records reach stable storage.
	Policy SyncPolicy
	// BatchMaxRecords ends a SyncBatch gathering delay early once this
	// many records are pending (0 selects DefaultBatchMaxRecords). The
	// fsync itself always covers everything appended by the time the
	// flusher runs; this bound only stops it from waiting for more.
	BatchMaxRecords int
	// BatchMaxDelay bounds how long the SyncBatch flusher keeps waiting
	// for *more* committers after every currently-runnable one has
	// already joined the batch, trading commit latency for larger
	// batches. Zero (the default) means adaptive gathering only: the
	// flusher yields the CPU until a scheduling round adds no new
	// record — so concurrent committers always coalesce — then fsyncs
	// without any timer wait.
	BatchMaxDelay time.Duration
	// FS is the filesystem the writer operates through. Nil selects the
	// production passthrough (faultfs.OS); the crash-torture harness
	// injects a faultfs.FaultFS here.
	FS faultfs.FS
}

// DefaultBatchMaxRecords bounds the gathering delay of a SyncBatch
// flusher (see Options.BatchMaxRecords).
const DefaultBatchMaxRecords = 128

// Writer appends commit records to a log file. It is safe for concurrent
// use; records are appended atomically with respect to one another.
// Under SyncBatch a background flusher amortizes fsync across concurrent
// committers (true group commit); under SyncEveryCommit each Append
// fsyncs inline.
type Writer struct {
	mu     sync.Mutex
	f      faultfs.File
	bw     *bufio.Writer
	opts   Options
	closed bool

	// Group-commit state, guarded by mu (SyncBatch only). enqSeq counts
	// records written into bw; syncSeq counts records covered by a
	// completed fsync; syncErr is sticky — once an fsync fails, the
	// writer is broken and every waiter and later Append reports it.
	enqSeq      uint64
	syncSeq     uint64
	syncErr     error
	synced      *sync.Cond // broadcast when syncSeq advances, syncErr sets, or the writer closes
	wake        *sync.Cond // wakes the flusher when work arrives or the writer closes
	flusherDone chan struct{}

	appends atomic.Uint64
	fsyncs  atomic.Uint64
	bytes   atomic.Uint64
	batches atomic.Uint64

	// base is the file length at open time (0 on Create, the recovered
	// validLen on OpenAppend); base + bytes is the current log size.
	base int64

	// onBatch observes each group-commit batch's record count; see
	// SetBatchObserver.
	onBatch func(records int)

	// Group-commit provenance for causal tracing (all under mu): the TN
	// of the first record enqueued into the currently forming batch (its
	// leader) and a small ring of completed batches' ticket coverage,
	// scanned by traced appenders to learn which batch their ticket rode.
	leaderTN   uint64
	haveLeader bool
	batchLog   [batchLogSize]batchSpan
	batchLogN  uint64
}

// batchLogSize bounds the completed-batch ring. A waiter learns its
// batch immediately after being broadcast, so it only needs the ring to
// outlive the handful of batches that can complete between its wake-up
// and its scan; 64 is generous.
const batchLogSize = 64

// batchSpan is one completed group-commit batch's ticket coverage.
type batchSpan struct {
	lo, hi  uint64 // inclusive ticket range the fsync covered
	batch   uint64 // batch ordinal (Batches() value once completed)
	leader  uint64 // TN of the record that opened the batch
	records int
}

// BatchInfo identifies the fsync coverage a traced append rode: Batch
// is the group-commit batch ordinal (the fsync ordinal under
// SyncEveryCommit), LeaderTN the transaction number of the record that
// opened the batch, Records how many records the fsync covered. The
// zero BatchInfo means no recorded batch covered the append (SyncNever,
// an inline Flush straggler, or coverage already evicted from the ring).
type BatchInfo struct {
	Batch    uint64 `json:"batch"`
	LeaderTN uint64 `json:"leader_tn"`
	Records  int    `json:"records"`
}

// Counters reports lifetime log volume: records appended, fsyncs
// issued, and bytes written (record headers included). Safe to call
// concurrently with Append.
func (w *Writer) Counters() (appends, fsyncs, bytes uint64) {
	return w.appends.Load(), w.fsyncs.Load(), w.bytes.Load()
}

// Batches reports how many group-commit fsync batches have completed
// (zero outside SyncBatch). appends/fsyncs is the amortization ratio.
func (w *Writer) Batches() uint64 { return w.batches.Load() }

// Size reports the log file's current length in bytes: the length at
// open time plus everything appended since. This is the volume recovery
// would replay, and — together with checkpoint age — the signal that
// log compaction is overdue. Safe to call concurrently with Append.
func (w *Writer) Size() int64 { return w.base + int64(w.bytes.Load()) }

// SetBatchObserver installs fn, called after each completed group-commit
// batch with the number of records the fsync covered. It runs on the
// flusher goroutine outside the writer's mutex. Install it before the
// writer sees concurrent use.
func (w *Writer) SetBatchObserver(fn func(records int)) {
	w.onBatch = fn
}

// SetBatchKnobs retunes the group-commit gather bounds online (the
// adaptive knob controller's WAL lever). The flusher re-reads both
// values under the writer mutex on every gather iteration, so the new
// bounds take effect at the next batch. Zero/negative maxRecords keeps
// the current value; a negative maxDelay keeps the current value (zero
// disables the gathering delay).
func (w *Writer) SetBatchKnobs(maxRecords int, maxDelay time.Duration) {
	w.mu.Lock()
	if maxRecords > 0 {
		w.opts.BatchMaxRecords = maxRecords
	}
	if maxDelay >= 0 {
		w.opts.BatchMaxDelay = maxDelay
	}
	w.mu.Unlock()
}

// BatchKnobs reports the current group-commit gather bounds.
func (w *Writer) BatchKnobs() (maxRecords int, maxDelay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.opts.BatchMaxRecords, w.opts.BatchMaxDelay
}

func newWriter(f faultfs.File, opts Options) *Writer {
	if opts.BatchMaxRecords <= 0 {
		opts.BatchMaxRecords = DefaultBatchMaxRecords
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), opts: opts}
	if opts.Policy == SyncBatch {
		w.synced = sync.NewCond(&w.mu)
		w.wake = sync.NewCond(&w.mu)
		w.flusherDone = make(chan struct{})
		go w.flusher()
	}
	return w
}

// Create opens (or truncates) a log file for writing.
func Create(path string, policy SyncPolicy) (*Writer, error) {
	return CreateWith(path, Options{Policy: policy})
}

// CreateWith opens (or truncates) a log file for writing with full
// options. The parent directory is fsynced after the create so the
// file's directory entry is durable before the first commit is
// acknowledged — a data fsync alone does not guarantee a freshly
// created file survives a power cut.
func CreateWith(path string, opts Options) (*Writer, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: sync dir: %w", err)
	}
	return newWriter(f, opts), nil
}

// OpenAppend opens an existing log for appending after recovery. validLen
// must be the byte offset returned by Replay: any torn tail beyond it is
// truncated first.
func OpenAppend(path string, validLen int64, policy SyncPolicy) (*Writer, error) {
	return OpenAppendWith(path, validLen, Options{Policy: policy})
}

// OpenAppendWith is OpenAppend with full options. The torn-tail
// truncation is fsynced (file and parent directory) before the writer
// accepts new appends, so a second crash cannot resurrect the tail
// under records appended after it.
func OpenAppendWith(path string, validLen int64, opts Options) (*Writer, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync truncated tail: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open: sync dir: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := newWriter(f, opts)
	w.base = validLen
	return w, nil
}

// Append encodes and appends one commit record, flushing according to the
// sync policy. The record is durable when Append returns under
// SyncEveryCommit and SyncBatch; under SyncBatch the caller blocked on a
// shared fsync ticket rather than issuing its own.
func (w *Writer) Append(r Record) error {
	_, _, _, err := w.append(r, false, false)
	return err
}

// AppendTimed is Append reporting where the caller's time went:
// enqueueNS is the span from entry to the record sitting in the log
// buffer (including contention on the writer mutex), syncWaitNS the
// span from there to fsync coverage — the inline flush+sync under
// SyncEveryCommit, or the wait for the group-commit flusher's ticket
// under SyncBatch (zero under SyncNever). Both are valid even when err
// is non-nil. The phase-attribution layer calls this; everyone else
// uses Append and pays no timestamping.
func (w *Writer) AppendTimed(r Record) (enqueueNS, syncWaitNS int64, err error) {
	_, enqueueNS, syncWaitNS, err = w.append(r, true, false)
	return enqueueNS, syncWaitNS, err
}

// AppendTraced is AppendTimed plus group-commit provenance: it also
// reports which fsync batch covered the record (see BatchInfo), the
// joined-batch blame edge of causal tracing.
func (w *Writer) AppendTraced(r Record) (info BatchInfo, enqueueNS, syncWaitNS int64, err error) {
	return w.append(r, true, true)
}

func (w *Writer) append(r Record, timed, traced bool) (info BatchInfo, enqueueNS, syncWaitNS int64, err error) {
	payload := encodePayload(nil, r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return info, 0, 0, errors.New("wal: writer closed")
	}
	if w.syncErr != nil {
		return info, 0, 0, w.syncErr
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return info, 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return info, 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	w.appends.Add(1)
	w.bytes.Add(uint64(len(hdr) + len(payload)))
	var tEnq time.Time
	if timed {
		tEnq = time.Now()
		enqueueNS = tEnq.Sub(t0).Nanoseconds()
	}
	switch w.opts.Policy {
	case SyncEveryCommit:
		err := w.bw.Flush()
		if err != nil {
			err = fmt.Errorf("wal: flush: %w", err)
		} else if err = w.f.Sync(); err != nil {
			err = fmt.Errorf("wal: sync: %w", err)
		} else {
			w.fsyncs.Add(1)
			if traced {
				// A degenerate "batch" of one: the record led its own fsync.
				info = BatchInfo{Batch: w.fsyncs.Load(), LeaderTN: r.TN, Records: 1}
			}
		}
		if timed {
			syncWaitNS = time.Since(tEnq).Nanoseconds()
		}
		return info, enqueueNS, syncWaitNS, err
	case SyncBatch:
		if !w.haveLeader {
			w.haveLeader = true
			w.leaderTN = r.TN
		}
		w.enqSeq++
		seq := w.enqSeq
		w.wake.Signal()
		for w.syncSeq < seq && w.syncErr == nil && !w.closed {
			w.synced.Wait()
		}
		if timed {
			syncWaitNS = time.Since(tEnq).Nanoseconds()
		}
		if w.syncSeq >= seq {
			if traced {
				for i := range w.batchLog {
					if b := &w.batchLog[i]; b.hi != 0 && b.lo <= seq && seq <= b.hi {
						info = BatchInfo{Batch: b.batch, LeaderTN: b.leader, Records: b.records}
						break
					}
				}
			}
			return info, enqueueNS, syncWaitNS, nil
		}
		if w.syncErr != nil {
			return info, enqueueNS, syncWaitNS, w.syncErr
		}
		return info, enqueueNS, syncWaitNS, errors.New("wal: writer closed before batch fsync")
	}
	return info, enqueueNS, syncWaitNS, nil
}

// flusher is the SyncBatch background goroutine: it gathers everything
// appended since the last fsync, flushes the buffer under the mutex,
// fsyncs outside it (so committers keep enqueueing into the next batch
// while the disk works), then releases every ticket the fsync covered.
func (w *Writer) flusher() {
	defer close(w.flusherDone)
	w.mu.Lock()
	for {
		for w.enqSeq == w.syncSeq && !w.closed {
			w.wake.Wait()
		}
		if w.enqSeq == w.syncSeq && w.closed {
			w.mu.Unlock()
			return
		}
		// Gathering: let every committer that is already runnable join
		// the batch before paying the fsync. The loop yields the CPU and
		// re-checks; a round in which no new record arrived means every
		// runnable committer has enqueued and parked. Yielding instead of
		// sleeping matters: timer sleeps have roughly millisecond
		// granularity on stock kernels — an order of magnitude coarser
		// than the fsync being amortized — and would dominate commit
		// latency. BatchMaxDelay, when set, extends the gather past the
		// first quiet round to wait for stragglers that are not yet
		// runnable.
		if !w.closed && w.enqSeq-w.syncSeq < uint64(w.opts.BatchMaxRecords) {
			var deadline time.Time
			if d := w.opts.BatchMaxDelay; d > 0 {
				deadline = time.Now().Add(d)
			}
			for !w.closed && w.enqSeq-w.syncSeq < uint64(w.opts.BatchMaxRecords) {
				before := w.enqSeq
				w.mu.Unlock()
				runtime.Gosched()
				w.mu.Lock()
				if w.enqSeq > before {
					continue
				}
				now := time.Now()
				if deadline.IsZero() || !now.Before(deadline) {
					break
				}
				w.mu.Unlock()
				time.Sleep(deadline.Sub(now))
				w.mu.Lock()
			}
		}
		target := w.enqSeq
		// The forming batch is sealed at target: whoever enqueues while
		// the fsync runs below leads the next batch.
		leader := w.leaderTN
		w.haveLeader = false
		w.leaderTN = 0
		err := w.bw.Flush()
		w.mu.Unlock()
		if err == nil {
			err = w.f.Sync()
		}
		w.mu.Lock()
		var batch int
		if err != nil {
			w.syncErr = fmt.Errorf("wal: batch sync: %w", err)
		} else if target > w.syncSeq {
			batch = int(target - w.syncSeq)
			w.batchLog[w.batchLogN%batchLogSize] = batchSpan{
				lo: w.syncSeq + 1, hi: target,
				batch: w.batches.Load() + 1, leader: leader, records: batch,
			}
			w.batchLogN++
			w.syncSeq = target
			w.fsyncs.Add(1)
			w.batches.Add(1)
		}
		w.synced.Broadcast()
		if batch > 0 && w.onBatch != nil {
			ob := w.onBatch
			w.mu.Unlock()
			ob(batch)
			w.mu.Lock()
		}
		if w.syncErr != nil {
			w.mu.Unlock()
			return
		}
	}
}

// Flush forces buffered records to the OS and disk.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if w.opts.Policy == SyncBatch && w.enqSeq > w.syncSeq {
		// The inline fsync covered everything buffered so far; release
		// any tickets the flusher had not reached yet. No batchLog entry
		// is recorded — traced stragglers report a zero BatchInfo.
		w.syncSeq = w.enqSeq
		w.haveLeader = false
		w.leaderTN = 0
		w.synced.Broadcast()
	}
	return nil
}

// Close flushes and closes the log. Under SyncBatch it first drains the
// flusher, so every Append that returned nil is durable before the file
// closes.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if w.opts.Policy == SyncBatch {
		w.wake.Signal()
		w.synced.Broadcast()
		w.mu.Unlock()
		<-w.flusherDone
		w.mu.Lock()
	}
	defer w.mu.Unlock()
	if w.syncErr != nil {
		w.f.Close()
		return w.syncErr
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.fsyncs.Add(1)
	return w.f.Close()
}

func encodePayload(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.TN)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Writes)))
	for _, wr := range r.Writes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(wr.Key)))
		dst = append(dst, wr.Key...)
		var flags byte
		if wr.Tombstone {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(wr.Value)))
		dst = append(dst, wr.Value...)
	}
	return dst
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 12 {
		return r, errors.New("wal: short payload")
	}
	r.TN = binary.LittleEndian.Uint64(p[0:8])
	n := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	// Every write occupies at least 9 bytes (two length fields + flags),
	// so a count beyond len(p)/9 cannot be honest — reject it before
	// allocating (a corrupt count of 2^32-1 would otherwise attempt a
	// multi-gigabyte allocation; found by FuzzDecodePayload).
	if uint64(n) > uint64(len(p))/9+1 {
		return r, errors.New("wal: implausible write count")
	}
	r.Writes = make([]Write, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 4 {
			return r, errors.New("wal: truncated write header")
		}
		kl := binary.LittleEndian.Uint32(p[0:4])
		p = p[4:]
		// 64-bit arithmetic: kl+5 would wrap in uint32 for hostile
		// lengths near 2^32 (found by FuzzDecodePayload).
		if uint64(len(p)) < uint64(kl)+5 {
			return r, errors.New("wal: truncated key")
		}
		key := string(p[:kl])
		p = p[kl:]
		flags := p[0]
		vl := binary.LittleEndian.Uint32(p[1:5])
		p = p[5:]
		if uint32(len(p)) < vl {
			return r, errors.New("wal: truncated value")
		}
		var val []byte
		if vl > 0 {
			val = append([]byte(nil), p[:vl]...)
		}
		p = p[vl:]
		r.Writes = append(r.Writes, Write{Key: key, Value: val, Tombstone: flags&1 != 0})
	}
	if len(p) != 0 {
		return r, errors.New("wal: trailing bytes in payload")
	}
	return r, nil
}

// Replay reads the log at path, invoking fn for each intact record in
// order. It returns the byte offset of the end of the last intact record
// — the validLen to pass to OpenAppend — and stops silently at a torn or
// corrupt tail. A missing file replays zero records.
func Replay(path string, fn func(Record) error) (validLen int64, err error) {
	return ReplayFS(faultfs.OS, path, fn)
}

// ReplayFS is Replay through an explicit filesystem (crash-torture
// recovery reads through the same shim the writer wrote through).
func ReplayFS(fsys faultfs.FS, path string, fn func(Record) error) (validLen int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()

	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: replay stat: %w", err)
	}
	size := fi.Size()

	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		// A record cannot extend past the file: a hostile or torn length
		// must not drive the allocation below (found by FuzzReplay).
		if int64(plen) > size-off-8 {
			return off, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // corrupt record: stop here
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return off, nil // structurally invalid despite CRC: treat as tail
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += int64(8 + int(plen))
	}
}
