// Package wal implements a write-ahead commit log and redo recovery.
//
// The paper's opening sentence — "multiple versions of data are used in
// database systems to support transaction and system recovery" — is the
// reason this substrate exists: the engines in this repository can make a
// committed transaction durable by appending one commit record (its
// transaction number and write set) before the versions become visible,
// and rebuild the version store from the log after a crash.
//
// Log format (little endian), one record per committed transaction:
//
//	[4] payload length
//	[4] CRC-32 (IEEE) of payload
//	[n] payload:
//	      [8] transaction number
//	      [4] write count
//	      per write: [4] key length, key bytes,
//	                 [1] flags (bit 0: tombstone),
//	                 [4] value length, value bytes
//
// Recovery replays records in order and stops at the first torn or
// corrupt record (a partially flushed tail after a crash), truncating the
// suffix — standard redo-log discipline.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Write is one key's update inside a commit record.
type Write struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// Record is a committed transaction's log entry.
type Record struct {
	TN     uint64
	Writes []Write
}

// SyncPolicy controls when the writer flushes to stable storage.
type SyncPolicy int

const (
	// SyncEveryCommit fsyncs after every Append (durability first).
	SyncEveryCommit SyncPolicy = iota
	// SyncNever leaves flushing to the OS (benchmarks, tests).
	SyncNever
)

// Writer appends commit records to a log file. It is safe for concurrent
// use; records are appended atomically with respect to one another (group
// commit falls out of the buffered writer plus a single mutex).
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	policy SyncPolicy
	closed bool

	appends atomic.Uint64
	fsyncs  atomic.Uint64
	bytes   atomic.Uint64
}

// Counters reports lifetime log volume: records appended, fsyncs
// issued, and bytes written (record headers included). Safe to call
// concurrently with Append.
func (w *Writer) Counters() (appends, fsyncs, bytes uint64) {
	return w.appends.Load(), w.fsyncs.Load(), w.bytes.Load()
}

// Create opens (or truncates) a log file for writing.
func Create(path string, policy SyncPolicy) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), policy: policy}, nil
}

// OpenAppend opens an existing log for appending after recovery. validLen
// must be the byte offset returned by Replay: any torn tail beyond it is
// truncated first.
func OpenAppend(path string, validLen int64, policy SyncPolicy) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), policy: policy}, nil
}

// Append encodes and appends one commit record, flushing according to the
// sync policy. The record is durable when Append returns (under
// SyncEveryCommit).
func (w *Writer) Append(r Record) error {
	payload := encodePayload(nil, r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer closed")
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.appends.Add(1)
	w.bytes.Add(uint64(len(hdr) + len(payload)))
	if w.policy == SyncEveryCommit {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		w.fsyncs.Add(1)
	}
	return nil
}

// Flush forces buffered records to the OS and disk.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	return nil
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.fsyncs.Add(1)
	return w.f.Close()
}

func encodePayload(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.TN)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Writes)))
	for _, wr := range r.Writes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(wr.Key)))
		dst = append(dst, wr.Key...)
		var flags byte
		if wr.Tombstone {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(wr.Value)))
		dst = append(dst, wr.Value...)
	}
	return dst
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 12 {
		return r, errors.New("wal: short payload")
	}
	r.TN = binary.LittleEndian.Uint64(p[0:8])
	n := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	// Every write occupies at least 9 bytes (two length fields + flags),
	// so a count beyond len(p)/9 cannot be honest — reject it before
	// allocating (a corrupt count of 2^32-1 would otherwise attempt a
	// multi-gigabyte allocation; found by FuzzDecodePayload).
	if uint64(n) > uint64(len(p))/9+1 {
		return r, errors.New("wal: implausible write count")
	}
	r.Writes = make([]Write, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 4 {
			return r, errors.New("wal: truncated write header")
		}
		kl := binary.LittleEndian.Uint32(p[0:4])
		p = p[4:]
		// 64-bit arithmetic: kl+5 would wrap in uint32 for hostile
		// lengths near 2^32 (found by FuzzDecodePayload).
		if uint64(len(p)) < uint64(kl)+5 {
			return r, errors.New("wal: truncated key")
		}
		key := string(p[:kl])
		p = p[kl:]
		flags := p[0]
		vl := binary.LittleEndian.Uint32(p[1:5])
		p = p[5:]
		if uint32(len(p)) < vl {
			return r, errors.New("wal: truncated value")
		}
		var val []byte
		if vl > 0 {
			val = append([]byte(nil), p[:vl]...)
		}
		p = p[vl:]
		r.Writes = append(r.Writes, Write{Key: key, Value: val, Tombstone: flags&1 != 0})
	}
	if len(p) != 0 {
		return r, errors.New("wal: trailing bytes in payload")
	}
	return r, nil
}

// Replay reads the log at path, invoking fn for each intact record in
// order. It returns the byte offset of the end of the last intact record
// — the validLen to pass to OpenAppend — and stops silently at a torn or
// corrupt tail. A missing file replays zero records.
func Replay(path string, fn func(Record) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()

	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: replay stat: %w", err)
	}
	size := fi.Size()

	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		// A record cannot extend past the file: a hostile or torn length
		// must not drive the allocation below (found by FuzzReplay).
		if int64(plen) > size-off-8 {
			return off, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // corrupt record: stop here
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return off, nil // structurally invalid despite CRC: treat as tail
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += int64(8 + int(plen))
	}
}
