package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mvdb/internal/faultfs"
)

// The group-commit flusher dies mid-batch (power cut at its fsync with a
// torn tail), Replay truncates to validLen, and the log reopens and
// keeps accepting commits — the reopen-after-torn-batch-tail path.
func TestReopenAfterTornBatchTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "commit.log")

	// Phase 1: three durable commits, then a batch whose fsync is cut
	// with 7 surviving torn bytes (mid-record garbage).
	fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{
		{Op: faultfs.OpSync, Path: "commit.log", Nth: 4, Fault: faultfs.Fault{Crash: true, Torn: 7}},
	}})
	w, err := CreateWith(path, Options{Policy: SyncBatch, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(Record{TN: uint64(i + 1), Writes: []Write{{Key: "k", Value: []byte(fmt.Sprintf("v%d", i+1))}}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The doomed batch: two concurrent committers so the flusher batches
	// them; both must be told their commit is NOT durable.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Append(Record{TN: uint64(10 + i), Writes: []Write{{Key: "k", Value: []byte("doomed")}}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("append %d acknowledged after flusher died", i)
		}
	}
	w.Close()
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recovery sees the three durable records, drops the torn
	// tail, and the reopened writer keeps accepting commits.
	var recovered []uint64
	validLen, err := Replay(path, func(r Record) error {
		recovered = append(recovered, r.TN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %v, want TNs 1..3", recovered)
	}
	fi, _ := os.Stat(path)
	if fi.Size() <= validLen {
		t.Fatalf("no torn tail survived to truncate (size %d, validLen %d)", fi.Size(), validLen)
	}
	w2, err := OpenAppendWith(path, validLen, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{TN: 4, Writes: []Write{{Key: "k", Value: []byte("post-crash")}}}); err != nil {
		t.Fatalf("post-recovery append: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recovered = recovered[:0]
	if _, err := Replay(path, func(r Record) error {
		recovered = append(recovered, r.TN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 4 || recovered[3] != 4 {
		t.Fatalf("after reopen recovered %v, want [1 2 3 4]", recovered)
	}
}

// A transient fsync error — the filesystem recovers immediately — must
// still permanently break the writer: a failed fsync leaves the kernel's
// dirty-page state unknowable, so acknowledging any later commit would
// be a lie (the fsync-gate rule).
func TestTransientFsyncErrorIsSticky(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryCommit, SyncBatch} {
		name := map[SyncPolicy]string{SyncEveryCommit: "every-commit", SyncBatch: "group-commit"}[policy]
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "commit.log")
			fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{
				{Op: faultfs.OpSync, Path: "commit.log", Nth: 2, Fault: faultfs.Fault{Err: true}},
			}})
			w, err := CreateWith(path, Options{Policy: policy, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(Record{TN: 1, Writes: []Write{{Key: "a", Value: []byte("1")}}}); err != nil {
				t.Fatal(err)
			}
			if err := w.Append(Record{TN: 2, Writes: []Write{{Key: "a", Value: []byte("2")}}}); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("append over failed fsync err = %v, want ErrInjected", err)
			}
			if policy == SyncBatch {
				// The batch writer is explicitly broken from here on even
				// though the filesystem works again.
				if err := w.Append(Record{TN: 3, Writes: []Write{{Key: "a", Value: []byte("3")}}}); err == nil {
					t.Fatal("append after failed fsync acknowledged")
				}
			}
			w.Close()
			var tns []uint64
			if _, err := Replay(path, func(r Record) error { tns = append(tns, r.TN); return nil }); err != nil {
				t.Fatal(err)
			}
			for _, tn := range tns {
				if tn != 1 {
					// Record 2 may be physically present (the write
					// preceded the failed fsync) — that is fine; it was
					// never acknowledged. Nothing after it may be.
					if tn != 2 {
						t.Fatalf("unexpected record tn=%d in log", tn)
					}
				}
			}
		})
	}
}

// A corrupt torn tail (garbled sector, CRC mismatch) is cut at the last
// intact record.
func TestReplayStopsAtCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{
		{Op: faultfs.OpSync, Path: "commit.log", Nth: 3, Fault: faultfs.Fault{Crash: true, Torn: 1 << 20, Corrupt: true}},
	}})
	w, err := CreateWith(path, Options{Policy: SyncEveryCommit, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{TN: 1, Writes: []Write{{Key: "a", Value: []byte("1")}}})
	w.Append(Record{TN: 2, Writes: []Write{{Key: "a", Value: []byte("2")}}})
	if err := w.Append(Record{TN: 3, Writes: []Write{{Key: "a", Value: []byte("3")}}}); err == nil {
		t.Fatal("append through crash succeeded")
	}
	w.Close()
	if err := fs.ApplyCrash(); err != nil {
		t.Fatal(err)
	}
	var tns []uint64
	if _, err := Replay(path, func(r Record) error { tns = append(tns, r.TN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tns) != 2 {
		t.Fatalf("recovered %v, want the 2 intact records (corrupt tail cut)", tns)
	}
}
