package wal

import (
	"path/filepath"
	"testing"
)

func BenchmarkAppendNoSync(b *testing.B) {
	w, err := Create(filepath.Join(b.TempDir(), "bench.log"), SyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{TN: 1, Writes: []Write{{Key: "some/key", Value: make([]byte, 64)}}}
	b.ReportAllocs()
	b.SetBytes(int64(8 + len(encodePayload(nil, rec))))
	for i := 0; i < b.N; i++ {
		rec.TN = uint64(i + 1)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	w, _ := Create(path, SyncNever)
	rec := Record{Writes: []Write{{Key: "some/key", Value: make([]byte, 64)}}}
	const nRecords = 10000
	for i := 0; i < nRecords; i++ {
		rec.TN = uint64(i + 1)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := Replay(path, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != nRecords {
			b.Fatalf("replayed %d", n)
		}
	}
}
