package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "commit.log")
}

func TestRoundTrip(t *testing.T) {
	path := tmpLog(t)
	w, err := Create(path, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{TN: 1, Writes: []Write{{Key: "a", Value: []byte("x")}}},
		{TN: 2, Writes: []Write{{Key: "b", Value: nil, Tombstone: true}, {Key: "c", Value: []byte("yy")}}},
		{TN: 3, Writes: nil},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if n != fi.Size() {
		t.Fatalf("validLen = %d, file size = %d", n, fi.Size())
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TN != recs[i].TN || len(got[i].Writes) != len(recs[i].Writes) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		for j := range recs[i].Writes {
			a, b := got[i].Writes[j], recs[i].Writes[j]
			if a.Key != b.Key || a.Tombstone != b.Tombstone || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("write %d/%d mismatch: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func(Record) error {
		t.Fatal("callback invoked")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("got (%d,%v), want (0,nil)", n, err)
	}
}

func TestTornTailStopsReplay(t *testing.T) {
	path := tmpLog(t)
	w, _ := Create(path, SyncEveryCommit)
	for tn := uint64(1); tn <= 5; tn++ {
		if err := w.Append(Record{TN: tn, Writes: []Write{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	fi, _ := os.Stat(path)
	// Chop 3 bytes off the last record: a torn write.
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	var tns []uint64
	validLen, err := Replay(path, func(r Record) error {
		tns = append(tns, r.TN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tns) != 4 {
		t.Fatalf("replayed %d records, want 4", len(tns))
	}
	// Resume appending after truncating the tail.
	w2, err := OpenAppend(path, validLen, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{TN: 6, Writes: []Write{{Key: "k", Value: []byte("post")}}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	tns = nil
	if _, err := Replay(path, func(r Record) error { tns = append(tns, r.TN); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5: 0}
	_ = want
	if !reflect.DeepEqual(tns, []uint64{1, 2, 3, 4, 6}) {
		t.Fatalf("tns = %v, want [1 2 3 4 6]", tns)
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	path := tmpLog(t)
	w, _ := Create(path, SyncEveryCommit)
	w.Append(Record{TN: 1, Writes: []Write{{Key: "aaaa", Value: []byte("1111")}}})
	w.Append(Record{TN: 2, Writes: []Write{{Key: "bbbb", Value: []byte("2222")}}})
	w.Close()

	data, _ := os.ReadFile(path)
	// Flip a byte inside the first record's payload.
	data[12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	count := 0
	n, err := Replay(path, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || n != 0 {
		t.Fatalf("replayed %d records from offset %d; corruption must stop replay", count, n)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := tmpLog(t)
	w, _ := Create(path, SyncNever)
	w.Close()
	if err := w.Append(Record{TN: 1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(tn uint64, keys [][]byte, vals [][]byte, tombs []bool) bool {
		var r Record
		r.TN = tn
		for i, k := range keys {
			w := Write{Key: string(k)}
			if i < len(vals) {
				w.Value = vals[i]
			}
			if i < len(tombs) {
				w.Tombstone = tombs[i]
			}
			r.Writes = append(r.Writes, w)
		}
		dec, err := decodePayload(encodePayload(nil, r))
		if err != nil {
			return false
		}
		if dec.TN != r.TN || len(dec.Writes) != len(r.Writes) {
			return false
		}
		for i := range r.Writes {
			a, b := dec.Writes[i], r.Writes[i]
			if a.Key != b.Key || a.Tombstone != b.Tombstone {
				return false
			}
			if len(a.Value) != len(b.Value) || (len(a.Value) > 0 && !bytes.Equal(a.Value, b.Value)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
