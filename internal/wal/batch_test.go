package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func rec(tn uint64, key, val string) Record {
	return Record{TN: tn, Writes: []Write{{Key: key, Value: []byte(val)}}}
}

// TestSyncBatchRoundTrip checks that records appended under group commit
// replay identically to SyncEveryCommit ones, and that every record is
// durable (fsync-covered) by the time its Append returned.
func TestSyncBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Append(rec(uint64(i+1), fmt.Sprintf("k%d", i), "v"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	appends, fsyncs, _ := w.Counters()
	if appends != n {
		t.Fatalf("appends = %d, want %d", appends, n)
	}
	if fsyncs == 0 || fsyncs > n {
		t.Fatalf("fsyncs = %d, want in [1,%d]", fsyncs, n)
	}
	// Durability contract: everything acknowledged is already on disk,
	// BEFORE Close. Replay must see all n records.
	seen := make(map[uint64]bool)
	if _, err := Replay(path, func(r Record) error { seen[r.TN] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("replayed %d records before Close, want %d", len(seen), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Batches(); got == 0 {
		t.Fatal("no batches counted")
	}
}

// TestSyncBatchAmortizes drives concurrent committers and requires that
// group commit actually grouped: strictly fewer fsyncs than appends.
func TestSyncBatchAmortizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{Policy: SyncBatch, BatchMaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var total atomic.Int64
	var batches atomic.Int64
	w.SetBatchObserver(func(n int) {
		batches.Add(1)
		total.Add(int64(n))
	})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(rec(uint64(g*per+i+1), "k", "v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	appends, fsyncs, _ := w.Counters()
	if appends != workers*per {
		t.Fatalf("appends = %d", appends)
	}
	if fsyncs >= appends {
		t.Fatalf("no amortization: fsyncs %d >= appends %d", fsyncs, appends)
	}
	if total.Load() != int64(appends) {
		t.Fatalf("batch observer saw %d records, want %d", total.Load(), appends)
	}
	if batches.Load() != int64(w.Batches()) {
		t.Fatalf("observer batches %d != counter %d", batches.Load(), w.Batches())
	}
}

// TestSyncBatchDelayGathers checks the tunables: with a long gathering
// delay, sequentially issued concurrent appends land in one batch.
func TestSyncBatchDelayGathers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{Policy: SyncBatch, BatchMaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 10
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if err := w.Append(rec(uint64(i+1), "k", "v")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if _, fsyncs, _ := w.Counters(); fsyncs > 3 {
		t.Fatalf("gathering delay did not gather: %d fsyncs for %d appends", fsyncs, n)
	}
}

// TestSyncBatchMaxRecordsCutsDelayShort: with BatchMaxRecords=1 the
// flusher must not sit out its delay once a record is pending.
func TestSyncBatchMaxRecordsCutsDelayShort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{
		Policy: SyncBatch, BatchMaxRecords: 1, BatchMaxDelay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Append(rec(1, "k", "v")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append sat out a 10s gathering delay despite BatchMaxRecords=1")
	}
}

// TestSyncBatchCloseDrains: Close must not return until every
// acknowledged record is synced, and late Appends fail cleanly.
func TestSyncBatchCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(rec(uint64(i+1), "k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(99, "k", "v")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	count := 0
	if _, err := Replay(path, func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("replayed %d, want 10", count)
	}
}

// TestSyncBatchStickyError: after the underlying file is closed out from
// under the writer, the batch fsync fails, the waiter gets the error, and
// every later Append reports the writer broken rather than hanging.
func TestSyncBatchStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWith(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	w.f.Close() // sabotage: flusher's Flush/Sync will fail
	if err := w.Append(rec(1, "k", "v")); err == nil {
		t.Fatal("Append acknowledged a record the flusher could not sync")
	}
	if err := w.Append(rec(2, "k", "v")); err == nil {
		t.Fatal("Append after sticky error succeeded")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after sticky error reported success")
	}
}

// TestOpenAppendWithBatch: group commit composes with recovery — append
// to a recovered log under SyncBatch and replay the union.
func TestOpenAppendWithBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Create(path, SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(1, "a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	validLen, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenAppendWith(path, validLen, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(rec(2, "b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var tns []uint64
	if _, err := Replay(path, func(r Record) error { tns = append(tns, r.TN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tns) != 2 || tns[0] != 1 || tns[1] != 2 {
		t.Fatalf("replayed %v, want [1 2]", tns)
	}
}
