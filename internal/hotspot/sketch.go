package hotspot

import "sort"

// sketch is a Space-Saving heavy-hitter summary (Metwally, Agrawal,
// El Abbadi, "Efficient computation of frequent and top-k elements in
// data streams"). It keeps at most cap counters; when a new key arrives
// with the table full, the minimum counter is evicted and the newcomer
// inherits its count as an overestimation bound (Err). The guarantee:
// any key whose true frequency exceeds N/cap is present, and for every
// entry trueCount <= Count and Count - Err <= trueCount.
//
// cap is small (tens), so min-finding is a linear scan — cheaper and
// simpler than a heap at this size, and the whole structure fits in a
// few cache lines of map overhead.
type sketch struct {
	cap      int
	counters map[string]*ssCounter
}

type ssCounter struct {
	count uint64
	err   uint64
}

func newSketch(capacity int) *sketch {
	return &sketch{cap: capacity, counters: make(map[string]*ssCounter, capacity)}
}

// Touch records n occurrences of key.
func (s *sketch) Touch(key string, n uint64) {
	if c, ok := s.counters[key]; ok {
		c.count += n
		return
	}
	if len(s.counters) < s.cap {
		s.counters[key] = &ssCounter{count: n}
		return
	}
	var minKey string
	var min *ssCounter
	for k, c := range s.counters {
		if min == nil || c.count < min.count {
			minKey, min = k, c
		}
	}
	delete(s.counters, minKey)
	s.counters[key] = &ssCounter{count: min.count + n, err: min.count}
}

// Top returns up to k entries by descending count. Ties break on key so
// the output is deterministic.
func (s *sketch) Top(k int) []HotKey {
	out := make([]HotKey, 0, len(s.counters))
	for key, c := range s.counters {
		out = append(out, HotKey{Key: key, Count: c.count, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (s *sketch) Len() int { return len(s.counters) }
