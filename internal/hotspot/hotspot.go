// Package hotspot is an online workload profiler: it answers *why*
// contention arises, where the rest of the observability stack answers
// *where time goes*. A sampling Space-Saving sketch tracks the hottest
// read and written keys, a per-stripe heatmap attributes lock waits,
// wound-wait victims, and lock hold time to the stripes that suffered
// them, a conflict sketch pairs abort causes with the keys that caused
// them, histograms track version-chain depth and snapshot age at GC
// passes, and bound taps expose epoch-lane occupancy and the lane
// currently stalling the watermark.
//
// Everything is nil-safe: a nil *Profiler reduces every hot-path call
// to one pointer test, preserving the seed allocation profile. Enabled,
// the touch path is an atomic counter plus (on the 1-in-SampleEvery
// sampled touches) a mutex TryLock — a touch that loses the race is
// counted as shed instead of blocking, so the profiler never adds lock
// waits of its own to the paths it is measuring.
package hotspot

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/metrics"
)

// Defaults.
const (
	DefaultTopK        = 32
	DefaultSampleEvery = 16
)

// Options configures a Profiler.
type Options struct {
	// TopK is the sketch capacity and report size (default 32).
	TopK int
	// SampleEvery samples one in N key touches (default 16; 1 = every
	// touch, for deterministic tests).
	SampleEvery int
}

// HotKey is one heavy-hitter entry. Count overestimates the true
// frequency by at most Err (Space-Saving guarantee).
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// HotPair is one (abort cause, key) conflict entry.
type HotPair struct {
	Cause string `json:"cause"`
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// StripeHeat is the contention attributed to one lock stripe. Only
// stripes with any activity appear in a Report.
type StripeHeat struct {
	Stripe    int   `json:"stripe"`
	Waits     int64 `json:"waits"`
	WaitNanos int64 `json:"wait_ns"`
	Wounds    int64 `json:"wounds"`
	HoldNanos int64 `json:"hold_ns"`
}

// Report is an immutable snapshot of the profiler, embedded in
// obs.Snapshot, flight bundles (schema mvdb-flight/v3), and the
// /debug/mvdb/hotspot endpoint.
type Report struct {
	Enabled     bool   `json:"enabled"`
	TopK        int    `json:"top_k"`
	SampleEvery int    `json:"sample_every"`
	Touches     uint64 `json:"touches"` // touch calls observed (sampled or not)
	Sampled     uint64 `json:"sampled"` // touches that updated a sketch
	Shed        uint64 `json:"shed"`    // sampled touches dropped to avoid blocking

	HotReads  []HotKey  `json:"hot_reads,omitempty"`
	HotWrites []HotKey  `json:"hot_writes,omitempty"`
	Conflicts []HotPair `json:"conflicts,omitempty"`

	TotalStripes int          `json:"total_stripes,omitempty"`
	Stripes      []StripeHeat `json:"stripes,omitempty"`

	ChainDepth  metrics.Summary `json:"chain_depth"`  // versions per key at GC passes
	SnapshotAge metrics.Summary `json:"snapshot_age"` // vtnc - GC watermark, in transactions

	// Epoch-lane occupancy (VisibilityEpoch only): per-lane completion
	// frontiers and the lane currently holding the watermark back.
	Lanes     []uint64 `json:"lanes,omitempty"`
	StallLane int      `json:"stall_lane"` // -1 when unknown
	Epoch     uint64   `json:"epoch,omitempty"`
	Watermark uint64   `json:"watermark,omitempty"`
}

type stripeCounters struct {
	waits     atomic.Int64
	waitNanos atomic.Int64
	wounds    atomic.Int64
	holdNanos atomic.Int64
}

// Profiler collects the workload profile. All methods are safe on a nil
// receiver and for concurrent use.
type Profiler struct {
	topK        int
	sampleEvery uint64

	touches atomic.Uint64
	sampled atomic.Uint64
	shed    atomic.Uint64

	readMu  sync.Mutex
	reads   *sketch
	writeMu sync.Mutex
	writes  *sketch
	confMu  sync.Mutex
	confs   *sketch // keyed cause+"\x00"+key

	stripeMu sync.Mutex // guards replacement of the slice, not its counters
	stripes  []*stripeCounters

	chainDepth *metrics.Histogram
	snapAge    *metrics.Histogram

	vcMu      sync.Mutex
	lanes     func() []uint64
	epochFn   func() uint64
	watermark func() uint64
}

// New creates a Profiler. Sketch capacity is doubled over TopK so the
// report's tail entries have already shaken out their eviction noise.
func New(opts Options) *Profiler {
	if opts.TopK <= 0 {
		opts.TopK = DefaultTopK
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = DefaultSampleEvery
	}
	return &Profiler{
		topK:        opts.TopK,
		sampleEvery: uint64(opts.SampleEvery),
		reads:       newSketch(opts.TopK * 2),
		writes:      newSketch(opts.TopK * 2),
		confs:       newSketch(opts.TopK * 2),
		chainDepth:  metrics.NewHistogram(),
		snapAge:     metrics.NewHistogram(),
	}
}

// BindStripes sizes the stripe heatmap. Called once by the engine at
// construction, before traffic.
func (p *Profiler) BindStripes(n int) {
	if p == nil || n <= 0 {
		return
	}
	s := make([]*stripeCounters, n)
	for i := range s {
		s[i] = &stripeCounters{}
	}
	p.stripeMu.Lock()
	p.stripes = s
	p.stripeMu.Unlock()
}

// BindVC installs the visibility-module taps (epoch lane frontiers,
// epoch number, watermark). Any tap may be nil.
func (p *Profiler) BindVC(lanes func() []uint64, epoch, watermark func() uint64) {
	if p == nil {
		return
	}
	p.vcMu.Lock()
	p.lanes, p.epochFn, p.watermark = lanes, epoch, watermark
	p.vcMu.Unlock()
}

// TouchRead records a key read on the hot path.
func (p *Profiler) TouchRead(key string) {
	if p == nil {
		return
	}
	p.touch(key, &p.readMu, p.reads)
}

// TouchWrite records a key write on the hot path.
func (p *Profiler) TouchWrite(key string) {
	if p == nil {
		return
	}
	p.touch(key, &p.writeMu, p.writes)
}

func (p *Profiler) touch(key string, mu *sync.Mutex, s *sketch) {
	n := p.touches.Add(1)
	if n%p.sampleEvery != 0 {
		return
	}
	if !mu.TryLock() {
		p.shed.Add(1)
		return
	}
	s.Touch(key, 1)
	mu.Unlock()
	p.sampled.Add(1)
}

// RecordConflict records an abort attributed to (cause, key). Abort
// paths are already slow, so this takes the lock unconditionally and is
// not sampled — conflicts are rare and each one matters.
func (p *Profiler) RecordConflict(cause, key string) {
	if p == nil {
		return
	}
	p.confMu.Lock()
	p.confs.Touch(cause+"\x00"+key, 1)
	p.confMu.Unlock()
}

// RecordStripeWait attributes one lock wait to a stripe.
func (p *Profiler) RecordStripeWait(stripe int, wait time.Duration) {
	if p == nil {
		return
	}
	if c := p.stripe(stripe); c != nil {
		c.waits.Add(1)
		c.waitNanos.Add(wait.Nanoseconds())
	}
}

// RecordWound attributes one wound-wait victim to a stripe.
func (p *Profiler) RecordWound(stripe int) {
	if p == nil {
		return
	}
	if c := p.stripe(stripe); c != nil {
		c.wounds.Add(1)
	}
}

// RecordHold attributes lock hold time to a stripe (2PL release path).
func (p *Profiler) RecordHold(stripe int, held time.Duration) {
	if p == nil {
		return
	}
	if c := p.stripe(stripe); c != nil {
		c.holdNanos.Add(held.Nanoseconds())
	}
}

func (p *Profiler) stripe(i int) *stripeCounters {
	p.stripeMu.Lock()
	s := p.stripes
	p.stripeMu.Unlock()
	if i < 0 || i >= len(s) {
		return nil
	}
	return s[i]
}

// RecordChainDepth records one key's version-chain depth (GC observer).
func (p *Profiler) RecordChainDepth(depth int) {
	if p == nil {
		return
	}
	p.chainDepth.Record(int64(depth))
}

// RecordSnapshotAge records the distance, in transactions, between the
// visibility horizon and the GC watermark at a pass — how far behind
// the oldest protected snapshot trails the present.
func (p *Profiler) RecordSnapshotAge(age uint64) {
	if p == nil {
		return
	}
	p.snapAge.Record(int64(age))
}

// Report snapshots the profiler. Nil-safe: a nil profiler reports nil,
// which callers embed as an absent section.
func (p *Profiler) Report() *Report {
	if p == nil {
		return nil
	}
	r := &Report{
		Enabled:     true,
		TopK:        p.topK,
		SampleEvery: int(p.sampleEvery),
		Touches:     p.touches.Load(),
		Sampled:     p.sampled.Load(),
		Shed:        p.shed.Load(),
		ChainDepth:  p.chainDepth.Summarize(),
		SnapshotAge: p.snapAge.Summarize(),
		StallLane:   -1,
	}
	p.readMu.Lock()
	r.HotReads = p.reads.Top(p.topK)
	p.readMu.Unlock()
	p.writeMu.Lock()
	r.HotWrites = p.writes.Top(p.topK)
	p.writeMu.Unlock()
	p.confMu.Lock()
	for _, hk := range p.confs.Top(p.topK) {
		cause, key := hk.Key, ""
		for i := 0; i < len(hk.Key); i++ {
			if hk.Key[i] == 0 {
				cause, key = hk.Key[:i], hk.Key[i+1:]
				break
			}
		}
		r.Conflicts = append(r.Conflicts, HotPair{Cause: cause, Key: key, Count: hk.Count, Err: hk.Err})
	}
	p.confMu.Unlock()

	p.stripeMu.Lock()
	stripes := p.stripes
	p.stripeMu.Unlock()
	r.TotalStripes = len(stripes)
	for i, c := range stripes {
		h := StripeHeat{
			Stripe:    i,
			Waits:     c.waits.Load(),
			WaitNanos: c.waitNanos.Load(),
			Wounds:    c.wounds.Load(),
			HoldNanos: c.holdNanos.Load(),
		}
		if h.Waits != 0 || h.Wounds != 0 || h.HoldNanos != 0 {
			r.Stripes = append(r.Stripes, h)
		}
	}

	p.vcMu.Lock()
	lanes, epochFn, wmFn := p.lanes, p.epochFn, p.watermark
	p.vcMu.Unlock()
	if lanes != nil {
		r.Lanes = lanes()
		for i, f := range r.Lanes {
			if r.StallLane < 0 || f < r.Lanes[r.StallLane] {
				r.StallLane = i
			}
		}
	}
	if epochFn != nil {
		r.Epoch = epochFn()
	}
	if wmFn != nil {
		r.Watermark = wmFn()
	}
	return r
}

// HTTPHandler serves the current Report as JSON
// (the /debug/mvdb/hotspot endpoint).
func (p *Profiler) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Report())
	})
}
