package hotspot

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSketchAccuracy feeds a skewed stream and checks the Space-Saving
// guarantees: every true heavy hitter is present, counts never
// underestimate, and the error bound holds.
func TestSketchAccuracy(t *testing.T) {
	s := newSketch(16)
	truth := map[string]uint64{}
	total := uint64(0)
	// 4 heavy keys at 1000 touches each over 64 light keys at 10 each:
	// heavy frequency 1000 > total/cap = 4640/16 = 290.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("hot-%d", i)
		for j := 0; j < 1000; j++ {
			s.Touch(key, 1)
			truth[key]++
			total++
		}
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("cold-%02d", i)
		for j := 0; j < 10; j++ {
			s.Touch(key, 1)
			truth[key]++
			total++
		}
	}
	top := s.Top(4)
	if len(top) != 4 {
		t.Fatalf("Top(4) returned %d entries", len(top))
	}
	for _, hk := range top {
		want := truth[hk.Key]
		if want != 1000 {
			t.Errorf("top-4 contains non-heavy key %q (true count %d)", hk.Key, want)
		}
		if hk.Count < want {
			t.Errorf("key %q: count %d underestimates true %d", hk.Key, hk.Count, want)
		}
		if hk.Count-hk.Err > want {
			t.Errorf("key %q: count-err %d exceeds true %d", hk.Key, hk.Count-hk.Err, want)
		}
	}
	// Any key above total/cap must be present (Space-Saving guarantee).
	threshold := total / uint64(s.cap)
	present := map[string]bool{}
	for _, hk := range s.Top(0) {
		present[hk.Key] = true
	}
	for key, n := range truth {
		if n > threshold && !present[key] {
			t.Errorf("heavy key %q (count %d > threshold %d) missing from sketch", key, n, threshold)
		}
	}
}

// TestSketchEviction checks the min-eviction rule: a newcomer to a full
// sketch inherits the minimum count as its overestimation bound.
func TestSketchEviction(t *testing.T) {
	s := newSketch(2)
	s.Touch("a", 5)
	s.Touch("b", 3)
	s.Touch("c", 1) // evicts b (min=3); c enters with count 4, err 3
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	top := s.Top(0)
	byKey := map[string]HotKey{}
	for _, hk := range top {
		byKey[hk.Key] = hk
	}
	if _, ok := byKey["b"]; ok {
		t.Errorf("min entry b survived eviction: %+v", top)
	}
	c, ok := byKey["c"]
	if !ok {
		t.Fatalf("newcomer c missing: %+v", top)
	}
	if c.Count != 4 || c.Err != 3 {
		t.Errorf("c = count %d err %d, want count 4 err 3", c.Count, c.Err)
	}
	if a := byKey["a"]; a.Count != 5 || a.Err != 0 {
		t.Errorf("a = count %d err %d, want count 5 err 0", a.Count, a.Err)
	}
}

// TestProfilerTopKReport drives the full touch path at SampleEvery=1
// and checks the report surfaces the hot keys and conflict pairs.
func TestProfilerTopKReport(t *testing.T) {
	p := New(Options{TopK: 8, SampleEvery: 1})
	p.BindStripes(4)
	for i := 0; i < 100; i++ {
		p.TouchWrite("hot-w")
		p.TouchRead("hot-r")
	}
	p.TouchWrite("cold-w")
	p.RecordConflict("deadlock", "hot-w")
	p.RecordConflict("deadlock", "hot-w")
	p.RecordConflict("occ-validate", "other")
	p.RecordStripeWait(1, 3*time.Millisecond)
	p.RecordWound(1)
	p.RecordHold(2, time.Millisecond)
	p.RecordChainDepth(7)
	p.RecordSnapshotAge(42)

	r := p.Report()
	if !r.Enabled {
		t.Fatal("report not enabled")
	}
	if len(r.HotWrites) == 0 || r.HotWrites[0].Key != "hot-w" || r.HotWrites[0].Count != 100 {
		t.Errorf("hot writes = %+v, want hot-w count 100 first", r.HotWrites)
	}
	if len(r.HotReads) == 0 || r.HotReads[0].Key != "hot-r" {
		t.Errorf("hot reads = %+v, want hot-r first", r.HotReads)
	}
	if len(r.Conflicts) == 0 || r.Conflicts[0].Cause != "deadlock" || r.Conflicts[0].Key != "hot-w" || r.Conflicts[0].Count != 2 {
		t.Errorf("conflicts = %+v, want deadlock/hot-w count 2 first", r.Conflicts)
	}
	if r.TotalStripes != 4 || len(r.Stripes) != 2 {
		t.Errorf("stripes = total %d active %d, want 4/2", r.TotalStripes, len(r.Stripes))
	}
	for _, sh := range r.Stripes {
		switch sh.Stripe {
		case 1:
			if sh.Waits != 1 || sh.WaitNanos != (3*time.Millisecond).Nanoseconds() || sh.Wounds != 1 {
				t.Errorf("stripe 1 heat = %+v", sh)
			}
		case 2:
			if sh.HoldNanos != time.Millisecond.Nanoseconds() {
				t.Errorf("stripe 2 heat = %+v", sh)
			}
		default:
			t.Errorf("unexpected active stripe %+v", sh)
		}
	}
	if r.ChainDepth.Count != 1 || r.ChainDepth.Max != 7 {
		t.Errorf("chain depth = %+v", r.ChainDepth)
	}
	if r.SnapshotAge.Count != 1 || r.SnapshotAge.Max != 42 {
		t.Errorf("snapshot age = %+v", r.SnapshotAge)
	}
}

// TestProfilerSampling checks the 1-in-N gate: sampled + shed accounts
// for exactly the touches that hit the sampling residue.
func TestProfilerSampling(t *testing.T) {
	p := New(Options{TopK: 8, SampleEvery: 4})
	for i := 0; i < 100; i++ {
		p.TouchWrite("k")
	}
	r := p.Report()
	if r.Touches != 100 {
		t.Errorf("touches = %d, want 100", r.Touches)
	}
	if r.Sampled+r.Shed != 25 {
		t.Errorf("sampled %d + shed %d = %d, want 25", r.Sampled, r.Shed, r.Sampled+r.Shed)
	}
}

// TestProfilerNil checks that every method is a no-op on a nil
// profiler — the disabled hot path.
func TestProfilerNil(t *testing.T) {
	var p *Profiler
	p.TouchRead("k")
	p.TouchWrite("k")
	p.RecordConflict("c", "k")
	p.RecordStripeWait(0, time.Millisecond)
	p.RecordWound(0)
	p.RecordHold(0, time.Millisecond)
	p.RecordChainDepth(1)
	p.RecordSnapshotAge(1)
	p.BindStripes(4)
	p.BindVC(nil, nil, nil)
	if r := p.Report(); r != nil {
		t.Errorf("nil profiler reported %+v", r)
	}
}

// TestProfilerConcurrent hammers every recording path from many
// goroutines while a reader snapshots — the -race certification.
func TestProfilerConcurrent(t *testing.T) {
	p := New(Options{TopK: 8, SampleEvery: 2})
	p.BindStripes(8)
	p.BindVC(
		func() []uint64 { return []uint64{3, 1, 2} },
		func() uint64 { return 9 },
		func() uint64 { return 5 },
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%3)
			for i := 0; i < 2000; i++ {
				p.TouchRead(key)
				p.TouchWrite(key)
				if i%100 == 0 {
					p.RecordConflict("conflict", key)
					p.RecordStripeWait(g, time.Microsecond)
					p.RecordWound(g)
					p.RecordHold(g, time.Microsecond)
					p.RecordChainDepth(i % 10)
					p.RecordSnapshotAge(uint64(i))
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = p.Report()
		}
	}()
	wg.Wait()
	<-done
	r := p.Report()
	if r.Touches != 8*2000*2 {
		t.Errorf("touches = %d, want %d", r.Touches, 8*2000*2)
	}
	if r.Sampled+r.Shed != r.Touches/2 {
		t.Errorf("sampled %d + shed %d != touches/2 %d", r.Sampled, r.Shed, r.Touches/2)
	}
	if r.StallLane != 1 {
		t.Errorf("stall lane = %d, want 1 (min frontier)", r.StallLane)
	}
	if r.Epoch != 9 || r.Watermark != 5 {
		t.Errorf("epoch/watermark = %d/%d, want 9/5", r.Epoch, r.Watermark)
	}
}
