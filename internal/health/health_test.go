package health

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mvdb/internal/obs"
)

// fakeSource is a hand-cranked snapshot source.
type fakeSource struct {
	sn    obs.Snapshot
	audit uint64
	drops uint64
}

func (f *fakeSource) sources() Sources {
	return Sources{
		Stats:       func() obs.Snapshot { return f.sn },
		AuditAlarms: func() uint64 { return f.audit },
		TraceDrops:  func() uint64 { return f.drops },
	}
}

func newTestMonitor(t *testing.T, src *fakeSource, opts Options) *Monitor {
	t.Helper()
	m, err := New(src.sources(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorRatesAndDeltas(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{Interval: time.Second})

	base := time.Unix(1_700_000_000, 0)
	if _, ok := m.Tick(base); ok {
		t.Fatal("first tick produced a point (should only set the baseline)")
	}

	src.sn.CommitsRW = 100
	src.sn.CommitsRO = 40
	src.sn.AbortsConflict = 25
	src.sn.Retries = 10
	src.sn.WALFsyncs = 20
	src.sn.WALBytes = 4000
	src.sn.VisibilityLag = 3
	src.audit = 2
	src.drops = 5
	m.ObserveLatency(false, 2*time.Millisecond)
	m.ObserveLatency(false, 4*time.Millisecond)

	p, ok := m.Tick(base.Add(2 * time.Second))
	if !ok {
		t.Fatal("second tick produced no point")
	}
	if p.CommitRateRW != 50 {
		t.Errorf("CommitRateRW = %v, want 50 (100 commits over 2s)", p.CommitRateRW)
	}
	if p.CommitRateRO != 20 {
		t.Errorf("CommitRateRO = %v, want 20", p.CommitRateRO)
	}
	if want := 25.0 / 165.0; p.AbortFrac != want {
		t.Errorf("AbortFrac = %v, want %v", p.AbortFrac, want)
	}
	if p.Ops != 165 {
		t.Errorf("Ops = %d, want 165", p.Ops)
	}
	if p.FsyncPerCommit != 0.2 {
		t.Errorf("FsyncPerCommit = %v, want 0.2", p.FsyncPerCommit)
	}
	if p.AuditAlarms != 2 || p.TraceDrops != 5 {
		t.Errorf("deltas = audit %d drops %d, want 2, 5", p.AuditAlarms, p.TraceDrops)
	}
	if p.VisibilityLag != 3 {
		t.Errorf("VisibilityLag = %d, want 3", p.VisibilityLag)
	}
	if p.CommitP99NS < 2_000_000 {
		t.Errorf("CommitP99NS = %d, want >= 2ms (samples were 2ms and 4ms)", p.CommitP99NS)
	}
	if p.HeapBytes == 0 {
		t.Error("HeapBytes = 0, want live heap reading")
	}

	// A second interval with no traffic: rates return to zero and the
	// latency percentiles forget the earlier samples.
	p2, _ := m.Tick(base.Add(3 * time.Second))
	if p2.CommitRateRW != 0 || p2.CommitP99NS != 0 || p2.AuditAlarms != 0 {
		t.Errorf("idle interval not zeroed: %+v", p2)
	}
}

func TestDownsamplingLadder(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		Levels:   []Level{{Factor: 1, Cap: 8}, {Factor: 4, Cap: 4}, {Factor: 8, Cap: 4}},
	})
	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	var commits int64
	for i := 1; i <= 16; i++ {
		commits += 10
		src.sn.CommitsRW = commits
		src.sn.MaxVersionChain = i // growing gauge: merges must keep the max
		m.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if got := len(m.Points(0, 0)); got != 8 {
		t.Fatalf("level 0 retained %d points, want 8 (cap)", got)
	}
	l1 := m.Points(1, 0)
	if len(l1) != 4 {
		t.Fatalf("level 1 has %d points, want 4 (16 ticks / factor 4)", len(l1))
	}
	if l1[0].DurNS != (4 * time.Second).Nanoseconds() {
		t.Errorf("level-1 DurNS = %d, want 4s", l1[0].DurNS)
	}
	if l1[0].CommitRateRW != 10 {
		t.Errorf("level-1 merged rate = %v, want 10 (steady 10 commits/s)", l1[0].CommitRateRW)
	}
	if l1[3].MaxVersionChain != 16 {
		t.Errorf("level-1 merged gauge = %d, want max 16", l1[3].MaxVersionChain)
	}
	l2 := m.Points(2, 0)
	if len(l2) != 2 {
		t.Fatalf("level 2 has %d points, want 2 (16 ticks / factor 8)", len(l2))
	}
	if l2[1].Ops != 80 {
		t.Errorf("level-2 Ops = %d, want 80 (count deltas sum)", l2[1].Ops)
	}
}

func TestSLOFastBurnPagesAndHysteresis(t *testing.T) {
	src := &fakeSource{}
	var alarms []Alarm
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		SLOs: []SLO{{
			Name: "lag", Metric: "visibility_lag", Max: 5,
			FastWindow: 4, SlowWindow: 8, FastBurn: 0.5, SlowBurn: 0.25,
		}},
		OnAlarm: func(a Alarm) { alarms = append(alarms, a) },
	})
	var sigs []Signal
	m.Subscribe(func(s Signal) { sigs = append(sigs, s) })

	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	tick := func(i int, lag uint64) {
		src.sn.VisibilityLag = lag
		m.Tick(base.Add(time.Duration(i) * time.Second))
	}
	tick(1, 0)
	if len(alarms) != 0 {
		t.Fatalf("alarm on healthy point: %+v", alarms)
	}
	// One breach: 1/4 fast burn, below the 0.5 trip point — no page
	// even though the current point violates the objective.
	tick(2, 50)
	if len(alarms) != 0 {
		t.Fatalf("paged on a single blip: %+v", alarms)
	}
	// Second consecutive breach: fast burn 2/4 = 0.5 -> page.
	tick(3, 50)
	if len(alarms) != 1 || alarms[0].Severity != SeverityPage {
		t.Fatalf("alarms = %+v, want one page", alarms)
	}
	if alarms[0].SLO != "lag" || alarms[0].Value != 50 || alarms[0].Threshold != 5 {
		t.Fatalf("alarm content wrong: %+v", alarms[0])
	}
	// Hysteresis: staying saturated raises nothing new.
	tick(4, 50)
	tick(5, 50)
	if len(alarms) != 1 {
		t.Fatalf("saturated window re-alarmed: %d alarms", len(alarms))
	}
	// Recovery drains the fast window; the slow window (4/8 breaches)
	// keeps it at warn, which is a de-escalation — no new alarm.
	tick(6, 0)
	tick(7, 0)
	tick(8, 0)
	tick(9, 0)
	st := m.SLOStates()
	if len(st) != 1 || st[0].State == "page" {
		t.Fatalf("state after recovery = %+v", st)
	}
	if len(alarms) != 1 {
		t.Fatalf("de-escalation alarmed: %+v", alarms)
	}
	// The signal stream carried every point and the page alarm.
	if len(sigs) != 9 {
		t.Fatalf("got %d signals, want 9", len(sigs))
	}
	if len(sigs[2].Alarms) != 1 {
		t.Fatalf("page alarm missing from its tick's signal")
	}
	if w, p := m.AlarmCounts(); w != 0 || p != 1 {
		t.Fatalf("AlarmCounts = %d warn %d page, want 0, 1", w, p)
	}
}

func TestSLOSlowBurnWarns(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		SLOs: []SLO{{
			Name: "frac", Metric: "abort_frac", Max: 0.5,
			FastWindow: 2, SlowWindow: 10, FastBurn: 1.0, SlowBurn: 0.3,
		}},
	})
	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	var ops int64
	for i := 1; i <= 12; i++ {
		// Alternate healthy and breaching intervals: the fast window
		// (needs 2/2) never trips, the slow one (needs 3/10) does.
		ops += 10
		if i%2 == 0 {
			src.sn.AbortsUser = src.sn.AbortsUser + 8
			src.sn.CommitsRW = ops - src.sn.AbortsUser
		} else {
			src.sn.CommitsRW = ops - src.sn.AbortsUser
		}
		m.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if w, p := m.AlarmCounts(); w != 1 || p != 0 {
		t.Fatalf("AlarmCounts = %d warn %d page, want 1 warn", w, p)
	}
}

func TestNewValidation(t *testing.T) {
	src := &fakeSource{}
	if _, err := New(Sources{}, Options{}); err == nil {
		t.Error("New accepted nil Stats source")
	}
	if _, err := New(src.sources(), Options{Levels: []Level{{Factor: 2, Cap: 4}}}); err == nil {
		t.Error("New accepted level-0 factor != 1")
	}
	if _, err := New(src.sources(), Options{Levels: []Level{{Factor: 1, Cap: 4}, {Factor: 3, Cap: 4}, {Factor: 7, Cap: 4}}}); err == nil {
		t.Error("New accepted non-divisible level factors")
	}
	if _, err := New(src.sources(), Options{SLOs: []SLO{{Name: "x", Metric: "no_such_metric", Max: 1}}}); err == nil {
		t.Error("New accepted an SLO over an unknown metric")
	}
	if _, err := New(src.sources(), Options{SLOs: []SLO{{Metric: "ops", Max: 1}}}); err == nil {
		t.Error("New accepted a nameless SLO")
	}
}

func TestNilMonitorIsSafe(t *testing.T) {
	var m *Monitor
	m.ObserveLatency(false, time.Millisecond)
	m.Subscribe(func(Signal) {})
	m.Start()
	m.Stop()
	if m.Points(0, 1) != nil || m.NumLevels() != 0 || m.PointsTotal() != 0 {
		t.Error("nil monitor leaked data")
	}
	if got := m.Timeline(-1, 0); len(got.Levels) != 0 || got.Schema != Schema {
		t.Errorf("nil Timeline = %+v", got)
	}
	var sb strings.Builder
	m.WriteProm(&sb) // must not panic
}

func TestStartStopBackgroundTicking(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{Interval: 5 * time.Millisecond})
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for m.PointsTotal() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	if m.PointsTotal() < 3 {
		t.Fatalf("background ticker produced %d points, want >= 3", m.PointsTotal())
	}
}

func TestSparkline(t *testing.T) {
	pts := []Point{{Goroutines: 1}, {Goroutines: 5}, {Goroutines: 10}}
	s := Sparkline(pts, "goroutines")
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline %q has %d runes, want 3", s, len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline %q does not span min..max", s)
	}
	if Sparkline(nil, "goroutines") != "" {
		t.Error("empty series should render empty")
	}
	// A flat series stays at the floor rune rather than dividing by zero.
	flat := Sparkline([]Point{{Ops: 4}, {Ops: 4}}, "ops")
	if flat != "▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestHTTPHandler(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		SLOs:     []SLO{{Name: "lag", Metric: "visibility_lag", Max: 5}},
	})
	srv := httptest.NewServer(m.HTTPHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Before the first tick: valid empty document, not an error.
	code, body := get("/")
	if code != http.StatusOK {
		t.Fatalf("pre-tick status = %d, want 200", code)
	}
	var tl Timeline
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("pre-tick body undecodable: %v", err)
	}
	if tl.Schema != Schema || len(tl.Levels) != 3 {
		t.Fatalf("pre-tick timeline = %+v", tl)
	}
	for _, lv := range tl.Levels {
		if len(lv.Points) != 0 {
			t.Fatalf("pre-tick points at level %d", lv.Level)
		}
	}

	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	src.sn.CommitsRW = 30
	m.Tick(base.Add(time.Second))

	code, body = get("/?level=0&n=10")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Levels) != 1 || len(tl.Levels[0].Points) != 1 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Levels[0].Points[0].CommitRateRW != 30 {
		t.Fatalf("served point = %+v", tl.Levels[0].Points[0])
	}
	if len(tl.SLOs) != 1 || tl.SLOs[0].State != "ok" {
		t.Fatalf("SLO states = %+v", tl.SLOs)
	}

	code, body = get("/?format=sparkline")
	if code != http.StatusOK {
		t.Fatalf("sparkline status = %d", code)
	}
	if !strings.Contains(body, "commit_rate_rw") || !strings.Contains(body, "slo lag") {
		t.Fatalf("sparkline body missing rows:\n%s", body)
	}
	code, body = get("/?format=sparkline&metric=heap_bytes")
	if code != http.StatusOK || strings.Contains(body, "commit_rate_rw") {
		t.Fatalf("metric filter broken (%d):\n%s", code, body)
	}

	// Error paths.
	for _, path := range []string{"/?level=9", "/?level=-1", "/?level=x", "/?n=0", "/?n=abc", "/?format=pdf", "/?format=sparkline&metric=bogus"} {
		if code, _ := get(path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}
}

func TestWritePromHealthFamilies(t *testing.T) {
	src := &fakeSource{}
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		SLOs:     []SLO{{Name: "lag", Metric: "visibility_lag", Max: 5, FastWindow: 1, SlowWindow: 2, FastBurn: 0.5}},
	})
	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	src.sn.VisibilityLag = 50
	m.Tick(base.Add(time.Second))

	var sb strings.Builder
	m.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"mvdb_health_points_total 1",
		`mvdb_health_alarms_total{severity="page"} 1`,
		`mvdb_health_slo_state{slo="lag"} 2`,
		`mvdb_health_slo_burn{slo="lag",window="fast"} 1`,
		"mvdb_health_commit_p99_seconds",
		"mvdb_health_abort_frac",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestAlarmFeedsEventRing(t *testing.T) {
	src := &fakeSource{}
	ring := obs.NewTracer(16)
	m := newTestMonitor(t, src, Options{
		Interval: time.Second,
		SLOs:     []SLO{{Name: "lag", Metric: "visibility_lag", Max: 5, FastWindow: 1, SlowWindow: 2, FastBurn: 0.5}},
		Ring:     ring,
	})
	base := time.Unix(1_700_000_000, 0)
	m.Tick(base)
	src.sn.VisibilityLag = 50
	m.Tick(base.Add(time.Second))
	found := false
	for _, ev := range ring.Dump() {
		if ev.Type == obs.EvHealth && ev.Key == "lag/page" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EvHealth event in ring: %+v", ring.Dump())
	}
}

func TestCheckDrift(t *testing.T) {
	mk := func(heaps ...uint64) []Point {
		pts := make([]Point, len(heaps))
		for i, h := range heaps {
			pts[i] = Point{HeapBytes: h}
		}
		return pts
	}
	// Stable series passes.
	res := CheckDrift(mk(100, 100, 100, 100, 100, 100), []DriftCheck{{Metric: "heap_bytes", MaxRatio: 2, Slack: 10}})
	if len(res) != 1 || !res[0].OK {
		t.Fatalf("stable series failed: %+v", res)
	}
	// Monotonic 10x growth fails.
	res = CheckDrift(mk(100, 100, 300, 500, 1000, 1000), []DriftCheck{{Metric: "heap_bytes", MaxRatio: 2, Slack: 10}})
	if res[0].OK {
		t.Fatalf("10x growth passed: %+v", res)
	}
	// Too few points: vacuous pass.
	res = CheckDrift(mk(1, 1000), []DriftCheck{{Metric: "heap_bytes", MaxRatio: 2}})
	if !res[0].OK {
		t.Fatalf("short series should pass vacuously: %+v", res)
	}
}

func TestMergePointsProtocolAndTimestamps(t *testing.T) {
	a := Point{AtNS: 1000, DurNS: 500, Protocol: "vc+2pl", CommitRateRW: 10}
	b := Point{AtNS: 2000, DurNS: 500, Protocol: "vc+to", CommitRateRW: 30}
	m := mergePoints([]Point{a, b})
	if m.AtNS != 2000 || m.DurNS != 1000 {
		t.Errorf("merged stamps = at %d dur %d", m.AtNS, m.DurNS)
	}
	if m.Protocol != "vc+to" {
		t.Errorf("merged protocol = %q, want newest", m.Protocol)
	}
	if m.CommitRateRW != 20 {
		t.Errorf("merged rate = %v, want duration-weighted 20", m.CommitRateRW)
	}
}
