// Package health is the windowed time-series layer on top of the
// point-in-time observability stack: a Monitor periodically diffs
// obs.Snapshot into per-interval rate/gauge Points, keeps them in
// bounded multi-resolution rings (seconds → tens of seconds → minutes,
// hours of history in fixed memory), and evaluates declarative SLOs
// over them with fast/slow burn-rate windows (multi-window alerting à
// la SRE practice: the fast window pages on an acute breach, the slow
// window warns on a smoldering one).
//
// Five prior layers answer "what is happening right now" (stats), "was
// an invariant violated" (audit), "where did latency go" (phases,
// traces), and "what did the process look like when it died" (flight).
// This layer answers the questions that need *time*: is the abort rate
// drifting up, is the GC backlog growing without bound, did commit p99
// degrade when the checkpoint ran. Its alarms reuse the existing
// plumbing — flight TriggerAsync, trace PromoteRecent, the obs event
// ring, Prometheus counters — and its Signal feeds internal/adaptive
// as the protocol switcher's first real decision input.
//
// Everything here is off the transaction hot path: the only per-commit
// cost is one histogram Record behind a nil check, and a nil *Monitor
// disables even that.
package health

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/metrics"
	"mvdb/internal/obs"
)

// Point is one interval's digest of the engine's health: rates and
// interval percentiles computed by diffing consecutive snapshots, plus
// the gauges worth trending. Durations are nanoseconds, rates are
// per-second. Count-like fields (Ops, AuditAlarms, TraceDrops) are
// deltas over the interval, not lifetime totals.
type Point struct {
	AtNS     int64  `json:"at_ns"`  // interval end, unix nanoseconds
	DurNS    int64  `json:"dur_ns"` // interval length
	Protocol string `json:"protocol,omitempty"`

	CommitRateRW float64 `json:"commit_rate_rw"`
	CommitRateRO float64 `json:"commit_rate_ro"`
	AbortRate    float64 `json:"abort_rate"`
	// AbortFrac is aborts/(commits+aborts) within the interval — the
	// conflict pressure adaptive CC keys off.
	AbortFrac float64 `json:"abort_frac"`
	RetryRate float64 `json:"retry_rate"`
	// Ops is the interval's completed transactions (commits + aborts,
	// both classes) — the denominator behind AbortFrac, kept so
	// consumers can ignore fractions computed over too few samples.
	Ops int64 `json:"ops"`

	// Interval commit-latency percentiles (read-write commits), from
	// histogram bucket deltas — unlike the cumulative Summary in
	// obs.Snapshot, these forget every earlier interval.
	CommitP50NS  int64 `json:"commit_p50_ns"`
	CommitP99NS  int64 `json:"commit_p99_ns"`
	CommitP999NS int64 `json:"commit_p999_ns"`

	FsyncPerCommit    float64 `json:"fsync_per_commit"`
	WALBytesRate      float64 `json:"wal_bytes_rate"`
	LockCollisionRate float64 `json:"lock_collision_rate"`
	GCReclaimRate     float64 `json:"gc_reclaim_rate"`

	VisibilityLag   uint64  `json:"visibility_lag"`
	VCQueueLen      int     `json:"vc_queue_len"`
	Versions        int64   `json:"versions"`
	MaxVersionChain int     `json:"max_version_chain"`
	Goroutines      int     `json:"goroutines"`
	HeapBytes       uint64  `json:"heap_bytes"`
	WALSizeBytes    int64   `json:"wal_size_bytes"`
	CheckpointAgeS  float64 `json:"checkpoint_age_s"` // 0 until the first checkpoint

	AuditAlarms int64 `json:"audit_alarms"`
	TraceDrops  int64 `json:"trace_drops"`

	// Ring-drop deltas: how much observability data the interval lost.
	// A sustained nonzero rate here means the postmortem layers are
	// blind exactly when they are needed — worth an SLO (see
	// DefaultHealthSLOs in the public package for an example).
	TraceDropsRecent   int64 `json:"trace_drops_recent"`
	TraceDropsPromoted int64 `json:"trace_drops_promoted"`
	AuditQueueDrops    int64 `json:"audit_queue_drops"`
	FlightRateLimited  int64 `json:"flight_rate_limited"`
}

// MetricNames lists every name Point.Metric resolves, in display order
// (the vocabulary of SLO.Metric, the sparkline selector, and the soak
// drift checks).
var MetricNames = []string{
	"commit_rate_rw", "commit_rate_ro", "abort_rate", "abort_frac",
	"retry_rate", "ops",
	"commit_p50_ns", "commit_p99_ns", "commit_p999_ns",
	"fsync_per_commit", "wal_bytes_rate", "lock_collision_rate",
	"gc_reclaim_rate",
	"visibility_lag", "vc_queue_len", "versions", "max_version_chain",
	"goroutines", "heap_bytes", "wal_size_bytes", "checkpoint_age_s",
	"audit_alarms", "trace_drops",
	"trace_drops_recent", "trace_drops_promoted", "audit_queue_drops",
	"flight_rate_limited",
}

// Metric returns the named scalar, or false for an unknown name.
func (p Point) Metric(name string) (float64, bool) {
	switch name {
	case "commit_rate_rw":
		return p.CommitRateRW, true
	case "commit_rate_ro":
		return p.CommitRateRO, true
	case "abort_rate":
		return p.AbortRate, true
	case "abort_frac":
		return p.AbortFrac, true
	case "retry_rate":
		return p.RetryRate, true
	case "ops":
		return float64(p.Ops), true
	case "commit_p50_ns":
		return float64(p.CommitP50NS), true
	case "commit_p99_ns":
		return float64(p.CommitP99NS), true
	case "commit_p999_ns":
		return float64(p.CommitP999NS), true
	case "fsync_per_commit":
		return p.FsyncPerCommit, true
	case "wal_bytes_rate":
		return p.WALBytesRate, true
	case "lock_collision_rate":
		return p.LockCollisionRate, true
	case "gc_reclaim_rate":
		return p.GCReclaimRate, true
	case "visibility_lag":
		return float64(p.VisibilityLag), true
	case "vc_queue_len":
		return float64(p.VCQueueLen), true
	case "versions":
		return float64(p.Versions), true
	case "max_version_chain":
		return float64(p.MaxVersionChain), true
	case "goroutines":
		return float64(p.Goroutines), true
	case "heap_bytes":
		return float64(p.HeapBytes), true
	case "wal_size_bytes":
		return float64(p.WALSizeBytes), true
	case "checkpoint_age_s":
		return p.CheckpointAgeS, true
	case "audit_alarms":
		return float64(p.AuditAlarms), true
	case "trace_drops":
		return float64(p.TraceDrops), true
	case "trace_drops_recent":
		return float64(p.TraceDropsRecent), true
	case "trace_drops_promoted":
		return float64(p.TraceDropsPromoted), true
	case "audit_queue_drops":
		return float64(p.AuditQueueDrops), true
	case "flight_rate_limited":
		return float64(p.FlightRateLimited), true
	}
	return 0, false
}

// Level configures one resolution ring. Factor is the level's interval
// as a multiple of the Monitor's base interval (level 0 must be 1;
// each later factor must divide evenly by its predecessor); Cap is how
// many points the ring retains.
type Level struct {
	Factor int `json:"factor"`
	Cap    int `json:"cap"`
}

// DefaultLevels keeps 5 minutes at base resolution, an hour at 10×,
// and 4 hours at 60× — ~900 points total regardless of how long the
// process runs.
func DefaultLevels() []Level {
	return []Level{{Factor: 1, Cap: 300}, {Factor: 10, Cap: 360}, {Factor: 60, Cap: 240}}
}

// Sources are the taps the Monitor diffs each tick. Stats is required;
// the rest default to zero streams.
type Sources struct {
	// Stats returns the engine's current observability snapshot.
	Stats func() obs.Snapshot
	// AuditAlarms returns the auditor's lifetime alarm count.
	AuditAlarms func() uint64
	// TraceDrops returns the span layer's lifetime dropped-trace count
	// (promoted + recent rings).
	TraceDrops func() uint64
	// TraceDropsRecent and TraceDropsPromoted split TraceDrops by ring,
	// so an SLO can distinguish "the cheap ring churned" (expected under
	// load) from "promoted exemplars were lost" (the ring is undersized).
	TraceDropsRecent   func() uint64
	TraceDropsPromoted func() uint64
	// AuditQueueDrops returns the auditor's lifetime dropped-observation
	// count (its bounded queue overflowed).
	AuditQueueDrops func() uint64
	// FlightRateLimited returns the flight recorder's lifetime count of
	// triggers suppressed by its MinGap rate limit.
	FlightRateLimited func() uint64
}

// Options configures a Monitor.
type Options struct {
	// Interval is the base sampling period (default 1s).
	Interval time.Duration
	// Levels is the multi-resolution retention ladder (default
	// DefaultLevels).
	Levels []Level
	// SLOs are the objectives evaluated each tick (default none).
	SLOs []SLO
	// OnAlarm, when set, observes every raised Alarm (called on the
	// ticking goroutine, after the point is published).
	OnAlarm func(Alarm)
	// Ring, when set, receives one EvHealth event per raised alarm.
	Ring *obs.Tracer
}

// ringBuf is a fixed-capacity point ring.
type ringBuf struct {
	pts  []Point
	head int // next write slot
	n    int // filled
}

func (r *ringBuf) push(p Point) {
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// last returns up to n most recent points, oldest first.
func (r *ringBuf) last(n int) []Point {
	if n > r.n {
		n = r.n
	}
	out := make([]Point, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.pts[(r.head-r.n+i+2*len(r.pts))%len(r.pts)])
	}
	return out
}

// levelState is one resolution ring plus the buffer of finer points
// waiting to be merged into its next point.
type levelState struct {
	cfg     Level
	ring    ringBuf
	pending []Point
	merge   int // pending points per merged point (Factor ratio to the level below)
}

// Monitor is the health time-series engine. Create with New, drive
// with Start/Stop (or Tick directly in tests), read with Points and
// the HTTP handler. A nil *Monitor is valid everywhere and records
// nothing — the disabled path of every hook is one pointer test.
type Monitor struct {
	src  Sources
	opts Options

	// Commit latency histograms, fed by the public API's commit path
	// (ObserveLatency). The monitor owns them because no always-on
	// cumulative histogram exists on the hot path to diff.
	rwLat *metrics.Histogram
	roLat *metrics.Histogram

	mu       sync.Mutex
	levels   []levelState
	slos     []sloState
	subs     []func(Signal)
	havePrev bool
	prev     obs.Snapshot
	prevAt   time.Time
	prevLat  metrics.BucketCounts
	prevCtrs counters

	points     atomic.Int64
	alarmsWarn atomic.Int64
	alarmsPage atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates opts and returns a stopped Monitor (call Start, or
// drive Tick manually).
func New(src Sources, opts Options) (*Monitor, error) {
	if src.Stats == nil {
		return nil, fmt.Errorf("health: Sources.Stats is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if len(opts.Levels) == 0 {
		opts.Levels = DefaultLevels()
	}
	if opts.Levels[0].Factor != 1 {
		return nil, fmt.Errorf("health: level 0 factor must be 1, got %d", opts.Levels[0].Factor)
	}
	m := &Monitor{
		src:   src,
		opts:  opts,
		rwLat: metrics.NewHistogram(),
		roLat: metrics.NewHistogram(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	prevFactor := 0
	for i, lv := range opts.Levels {
		if lv.Cap <= 0 {
			return nil, fmt.Errorf("health: level %d cap must be positive", i)
		}
		merge := 1
		if i > 0 {
			if prevFactor <= 0 || lv.Factor <= prevFactor || lv.Factor%prevFactor != 0 {
				return nil, fmt.Errorf("health: level %d factor %d must be a multiple of level %d factor %d",
					i, lv.Factor, i-1, prevFactor)
			}
			merge = lv.Factor / prevFactor
		}
		m.levels = append(m.levels, levelState{
			cfg:   lv,
			ring:  ringBuf{pts: make([]Point, lv.Cap)},
			merge: merge,
		})
		prevFactor = lv.Factor
	}
	for _, s := range opts.SLOs {
		st, err := newSLOState(s)
		if err != nil {
			return nil, err
		}
		m.slos = append(m.slos, st)
	}
	return m, nil
}

// ObserveLatency records one committed transaction's begin→commit
// latency. Nil-safe: the disabled path is one pointer test.
func (m *Monitor) ObserveLatency(ro bool, d time.Duration) {
	if m == nil {
		return
	}
	if ro {
		m.roLat.Record(d.Nanoseconds())
	} else {
		m.rwLat.Record(d.Nanoseconds())
	}
}

// Subscribe registers fn to receive every tick's Signal (the new
// level-0 point plus any alarms it raised), called synchronously on
// the ticking goroutine. Register before Start.
func (m *Monitor) Subscribe(fn func(Signal)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// Start begins background ticking at the configured interval.
func (m *Monitor) Start() {
	if m == nil || !m.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(m.done)
		tk := time.NewTicker(m.opts.Interval)
		defer tk.Stop()
		for {
			select {
			case <-m.stop:
				return
			case now := <-tk.C:
				m.Tick(now)
			}
		}
	}()
}

// Stop halts background ticking and waits for the ticking goroutine to
// exit (idempotent; a never-Started monitor stops immediately).
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stop) })
	if m.started.Load() {
		<-m.done
	}
}

// counters is the set of lifetime totals the Monitor samples alongside
// the snapshot and diffs into per-interval deltas.
type counters struct {
	audit, drops                       uint64
	dropsRecent, dropsPromoted         uint64
	auditQueueDrops, flightRateLimited uint64
}

func (m *Monitor) sampleCounters() counters {
	read := func(fn func() uint64) uint64 {
		if fn == nil {
			return 0
		}
		return fn()
	}
	return counters{
		audit:             read(m.src.AuditAlarms),
		drops:             read(m.src.TraceDrops),
		dropsRecent:       read(m.src.TraceDropsRecent),
		dropsPromoted:     read(m.src.TraceDropsPromoted),
		auditQueueDrops:   read(m.src.AuditQueueDrops),
		flightRateLimited: read(m.src.FlightRateLimited),
	}
}

// Tick takes one sample at now: diff the snapshot against the previous
// tick into a Point, push it down the resolution ladder, evaluate the
// SLOs, and deliver the Signal. The first call only establishes the
// baseline and produces no point. Returns the new point and whether
// one was produced. Tests drive this directly with synthetic clocks.
func (m *Monitor) Tick(now time.Time) (Point, bool) {
	sn := m.src.Stats()
	lat := m.rwLat.Buckets()
	ctrs := m.sampleCounters()

	m.mu.Lock()
	if !m.havePrev {
		m.havePrev = true
		m.prev, m.prevAt, m.prevLat, m.prevCtrs = sn, now, lat, ctrs
		m.mu.Unlock()
		return Point{}, false
	}
	p := diffPoint(m.prev, sn, m.prevAt, now, &m.prevLat, &lat, m.prevCtrs, ctrs)
	m.prev, m.prevAt, m.prevLat, m.prevCtrs = sn, now, lat, ctrs
	m.push(p)
	alarms := m.evaluateSLOs(p)
	subs := m.subs
	m.mu.Unlock()

	m.points.Add(1)
	for _, al := range alarms {
		if al.Severity == SeverityPage {
			m.alarmsPage.Add(1)
		} else {
			m.alarmsWarn.Add(1)
		}
		m.opts.Ring.Record(obs.Event{
			Type: obs.EvHealth,
			Key:  al.SLO + "/" + al.Severity,
			Dur:  int64(al.Value),
			N:    al.Breaches,
		})
		if m.opts.OnAlarm != nil {
			m.opts.OnAlarm(al)
		}
	}
	sig := Signal{Point: p, Alarms: alarms}
	for _, fn := range subs {
		fn(sig)
	}
	return p, true
}

// push appends p to level 0 and cascades full pending buffers down the
// ladder. Caller holds m.mu.
func (m *Monitor) push(p Point) {
	m.levels[0].ring.push(p)
	carry := p
	for i := 1; i < len(m.levels); i++ {
		lv := &m.levels[i]
		lv.pending = append(lv.pending, carry)
		if len(lv.pending) < lv.merge {
			return
		}
		merged := mergePoints(lv.pending)
		lv.pending = lv.pending[:0]
		lv.ring.push(merged)
		carry = merged
	}
}

// diffPoint computes the interval point between two snapshots.
func diffPoint(prev, cur obs.Snapshot, prevAt, now time.Time, prevLat, lat *metrics.BucketCounts, prevCtrs, ctrs counters) Point {
	sec := now.Sub(prevAt).Seconds()
	if sec <= 0 {
		sec = 1e-9 // degenerate clock; keep rates finite
	}
	rate := func(cur, prev int64) float64 {
		if d := cur - prev; d > 0 {
			return float64(d) / sec
		}
		return 0
	}
	commitsRW := cur.CommitsRW - prev.CommitsRW
	commitsRO := cur.CommitsRO - prev.CommitsRO
	aborts := cur.AbortsTotal() - prev.AbortsTotal()
	ops := commitsRW + commitsRO + aborts

	p := Point{
		AtNS:     now.UnixNano(),
		DurNS:    now.Sub(prevAt).Nanoseconds(),
		Protocol: cur.Protocol,

		CommitRateRW:      rate(cur.CommitsRW, prev.CommitsRW),
		CommitRateRO:      rate(cur.CommitsRO, prev.CommitsRO),
		AbortRate:         rate(cur.AbortsTotal(), prev.AbortsTotal()),
		RetryRate:         rate(cur.Retries, prev.Retries),
		Ops:               ops,
		WALBytesRate:      rate(cur.WALBytes, prev.WALBytes),
		LockCollisionRate: rate(cur.LockStripeCollisions, prev.LockStripeCollisions),
		GCReclaimRate:     rate(cur.GCReclaimed, prev.GCReclaimed),

		VisibilityLag:   cur.VisibilityLag,
		VCQueueLen:      cur.VCQueueLen,
		Versions:        cur.Versions,
		MaxVersionChain: cur.MaxVersionChain,
		Goroutines:      cur.Goroutines,
		WALSizeBytes:    cur.WALSizeBytes,

		AuditAlarms:        int64(ctrs.audit - prevCtrs.audit),
		TraceDrops:         int64(ctrs.drops - prevCtrs.drops),
		TraceDropsRecent:   int64(ctrs.dropsRecent - prevCtrs.dropsRecent),
		TraceDropsPromoted: int64(ctrs.dropsPromoted - prevCtrs.dropsPromoted),
		AuditQueueDrops:    int64(ctrs.auditQueueDrops - prevCtrs.auditQueueDrops),
		FlightRateLimited:  int64(ctrs.flightRateLimited - prevCtrs.flightRateLimited),
	}
	if aborts > 0 && ops > 0 {
		p.AbortFrac = float64(aborts) / float64(ops)
	}
	if f := cur.WALFsyncs - prev.WALFsyncs; f > 0 && commitsRW > 0 {
		p.FsyncPerCommit = float64(f) / float64(commitsRW)
	}
	qs := lat.DeltaQuantiles(prevLat, []float64{50, 99, 99.9})
	p.CommitP50NS, p.CommitP99NS, p.CommitP999NS = qs[0], qs[1], qs[2]
	if cur.CheckpointLastUnix > 0 {
		if age := now.Unix() - cur.CheckpointLastUnix; age > 0 {
			p.CheckpointAgeS = float64(age)
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.HeapBytes = ms.HeapAlloc
	return p
}

// mergePoints folds consecutive finer points into one coarser point:
// rates are duration-weighted means, latencies and gauges take the
// worst (max) value — downsampling must never hide a spike — and
// count deltas sum.
func mergePoints(pts []Point) Point {
	out := pts[len(pts)-1] // AtNS, Protocol, gauges seed from the newest
	var durNS int64
	for _, p := range pts {
		durNS += p.DurNS
	}
	out.DurNS = durNS
	wmean := func(get func(Point) float64) float64 {
		if durNS == 0 {
			return 0
		}
		var acc float64
		for _, p := range pts {
			acc += get(p) * float64(p.DurNS)
		}
		return acc / float64(durNS)
	}
	out.CommitRateRW = wmean(func(p Point) float64 { return p.CommitRateRW })
	out.CommitRateRO = wmean(func(p Point) float64 { return p.CommitRateRO })
	out.AbortRate = wmean(func(p Point) float64 { return p.AbortRate })
	out.AbortFrac = wmean(func(p Point) float64 { return p.AbortFrac })
	out.RetryRate = wmean(func(p Point) float64 { return p.RetryRate })
	out.WALBytesRate = wmean(func(p Point) float64 { return p.WALBytesRate })
	out.LockCollisionRate = wmean(func(p Point) float64 { return p.LockCollisionRate })
	out.GCReclaimRate = wmean(func(p Point) float64 { return p.GCReclaimRate })
	out.FsyncPerCommit = wmean(func(p Point) float64 { return p.FsyncPerCommit })
	out.Ops, out.AuditAlarms, out.TraceDrops = 0, 0, 0
	out.TraceDropsRecent, out.TraceDropsPromoted = 0, 0
	out.AuditQueueDrops, out.FlightRateLimited = 0, 0
	for _, p := range pts {
		out.Ops += p.Ops
		out.AuditAlarms += p.AuditAlarms
		out.TraceDrops += p.TraceDrops
		out.TraceDropsRecent += p.TraceDropsRecent
		out.TraceDropsPromoted += p.TraceDropsPromoted
		out.AuditQueueDrops += p.AuditQueueDrops
		out.FlightRateLimited += p.FlightRateLimited
		if p.CommitP50NS > out.CommitP50NS {
			out.CommitP50NS = p.CommitP50NS
		}
		if p.CommitP99NS > out.CommitP99NS {
			out.CommitP99NS = p.CommitP99NS
		}
		if p.CommitP999NS > out.CommitP999NS {
			out.CommitP999NS = p.CommitP999NS
		}
		if p.VisibilityLag > out.VisibilityLag {
			out.VisibilityLag = p.VisibilityLag
		}
		if p.VCQueueLen > out.VCQueueLen {
			out.VCQueueLen = p.VCQueueLen
		}
		if p.Versions > out.Versions {
			out.Versions = p.Versions
		}
		if p.MaxVersionChain > out.MaxVersionChain {
			out.MaxVersionChain = p.MaxVersionChain
		}
		if p.Goroutines > out.Goroutines {
			out.Goroutines = p.Goroutines
		}
		if p.HeapBytes > out.HeapBytes {
			out.HeapBytes = p.HeapBytes
		}
		if p.WALSizeBytes > out.WALSizeBytes {
			out.WALSizeBytes = p.WALSizeBytes
		}
		if p.CheckpointAgeS > out.CheckpointAgeS {
			out.CheckpointAgeS = p.CheckpointAgeS
		}
	}
	return out
}

// NumLevels returns the configured resolution count (0 for nil).
func (m *Monitor) NumLevels() int {
	if m == nil {
		return 0
	}
	return len(m.levels)
}

// LevelInterval returns a level's sampling interval.
func (m *Monitor) LevelInterval(level int) time.Duration {
	return m.opts.Interval * time.Duration(m.levels[level].cfg.Factor)
}

// Points returns up to n most recent points of the given level, oldest
// first (n <= 0 returns the whole ring). Nil-safe.
func (m *Monitor) Points(level, n int) []Point {
	if m == nil || level < 0 || level >= len(m.levels) {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &m.levels[level].ring
	if n <= 0 || n > r.n {
		n = r.n
	}
	return r.last(n)
}

// PointsTotal returns the number of level-0 points ever produced.
func (m *Monitor) PointsTotal() int64 {
	if m == nil {
		return 0
	}
	return m.points.Load()
}

// AlarmCounts returns the lifetime warn and page alarm counts.
func (m *Monitor) AlarmCounts() (warn, page int64) {
	if m == nil {
		return 0, 0
	}
	return m.alarmsWarn.Load(), m.alarmsPage.Load()
}
