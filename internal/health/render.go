package health

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"mvdb/internal/obs"
)

// Schema identifies the health timeline JSON document.
const Schema = "mvdb-health/v1"

// TimelineLevel is one resolution's slice of the exported timeline.
type TimelineLevel struct {
	Level      int     `json:"level"`
	IntervalNS int64   `json:"interval_ns"`
	Cap        int     `json:"cap"`
	Points     []Point `json:"points"`
}

// Timeline is the JSON document served at /debug/mvdb/health and
// embedded in soak verdicts.
type Timeline struct {
	Schema     string          `json:"schema"`
	Levels     []TimelineLevel `json:"levels"`
	SLOs       []SLOState      `json:"slos,omitempty"`
	AlarmsWarn int64           `json:"alarms_warn"`
	AlarmsPage int64           `json:"alarms_page"`
}

// Timeline exports the retained points. level < 0 selects every level;
// n bounds points per level (<= 0 for all). Nil-safe (empty document).
func (m *Monitor) Timeline(level, n int) Timeline {
	tl := Timeline{Schema: Schema}
	if m == nil {
		return tl
	}
	lo, hi := level, level+1
	if level < 0 {
		lo, hi = 0, len(m.levels)
	}
	for i := lo; i < hi; i++ {
		tl.Levels = append(tl.Levels, TimelineLevel{
			Level:      i,
			IntervalNS: m.LevelInterval(i).Nanoseconds(),
			Cap:        m.levels[i].cfg.Cap,
			Points:     m.Points(i, n),
		})
	}
	tl.SLOs = m.SLOStates()
	tl.AlarmsWarn, tl.AlarmsPage = m.AlarmCounts()
	return tl
}

// HTTPHandler serves the timeline. Query parameters: level (one
// resolution, default all), n (last n points per level), format
// ("" for JSON, "sparkline" for an ASCII dashboard), metric (restrict
// the sparkline view to one metric). The handler works before the
// first tick — it just serves empty levels.
func (m *Monitor) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		level := -1
		if s := q.Get("level"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 || v >= m.NumLevels() {
				http.Error(w, fmt.Sprintf("level must be in [0,%d)", m.NumLevels()), http.StatusBadRequest)
				return
			}
			level = v
		}
		n := 0
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		switch q.Get("format") {
		case "":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(m.Timeline(level, n))
		case "sparkline":
			metrics := sparkMetrics
			if s := q.Get("metric"); s != "" {
				if _, ok := (Point{}).Metric(s); !ok {
					http.Error(w, "unknown metric "+s, http.StatusBadRequest)
					return
				}
				metrics = []string{s}
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, m.renderSparklines(level, n, metrics))
		default:
			http.Error(w, "format must be empty or sparkline", http.StatusBadRequest)
		}
	})
}

// sparkMetrics is the default sparkline dashboard selection: the
// metrics whose shape over time is diagnostic at a glance.
var sparkMetrics = []string{
	"commit_rate_rw", "commit_p99_ns", "abort_frac", "fsync_per_commit",
	"visibility_lag", "vc_queue_len", "gc_reclaim_rate",
	"max_version_chain", "heap_bytes",
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders one metric's series as a min-max scaled ASCII
// sparkline (empty for no points).
func Sparkline(pts []Point, metric string) string {
	if len(pts) == 0 {
		return ""
	}
	vals := make([]float64, len(pts))
	lo, hi := 0.0, 0.0
	for i, p := range pts {
		v, _ := p.Metric(metric)
		vals[i] = v
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// renderSparklines is the text dashboard: per level, one sparkline row
// per metric with its current (last) value.
func (m *Monitor) renderSparklines(level, n int, metricNames []string) string {
	tl := m.Timeline(level, n)
	var sb strings.Builder
	for _, lv := range tl.Levels {
		fmt.Fprintf(&sb, "== level %d (interval %s, %d/%d points) ==\n",
			lv.Level, durString(lv.IntervalNS), len(lv.Points), lv.Cap)
		for _, name := range metricNames {
			last := 0.0
			if len(lv.Points) > 0 {
				last, _ = lv.Points[len(lv.Points)-1].Metric(name)
			}
			fmt.Fprintf(&sb, "%-20s %s  %g\n", name, Sparkline(lv.Points, name), last)
		}
	}
	for _, s := range tl.SLOs {
		fmt.Fprintf(&sb, "slo %-20s %-5s fast=%.2f slow=%.2f (max %g %s)\n",
			s.SLO.Name, s.State, s.BurnFast, s.BurnSlow, s.SLO.Max, s.SLO.Metric)
	}
	return sb.String()
}

func durString(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%gs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%gms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// WriteProm appends the health layer's own metric families to a
// Prometheus exposition (wired as an obs.WithPromExtra). Nil-safe.
func (m *Monitor) WriteProm(w io.Writer) {
	if m == nil {
		return
	}
	p := obs.NewPromWriter(w)
	p.Header("mvdb_health_points_total", "counter", "Base-resolution health points produced.")
	p.Int("mvdb_health_points_total", m.PointsTotal())
	warn, page := m.AlarmCounts()
	p.Header("mvdb_health_alarms_total", "counter", "SLO alarms raised, by severity.")
	p.Int("mvdb_health_alarms_total", warn, "severity", SeverityWarn)
	p.Int("mvdb_health_alarms_total", page, "severity", SeverityPage)
	states := m.SLOStates()
	if len(states) > 0 {
		p.Header("mvdb_health_slo_state", "gauge", "SLO evaluation state (0 ok, 1 warn, 2 page).")
		for _, s := range states {
			st := int64(0)
			switch s.State {
			case stateNames[stateWarn]:
				st = 1
			case stateNames[statePage]:
				st = 2
			}
			p.Int("mvdb_health_slo_state", st, "slo", s.SLO.Name)
		}
		p.Header("mvdb_health_slo_burn", "gauge", "SLO burn-rate window breach fractions.")
		for _, s := range states {
			p.Value("mvdb_health_slo_burn", s.BurnFast, "slo", s.SLO.Name, "window", "fast")
			p.Value("mvdb_health_slo_burn", s.BurnSlow, "slo", s.SLO.Name, "window", "slow")
		}
	}
	if pts := m.Points(0, 1); len(pts) == 1 {
		last := pts[0]
		p.Header("mvdb_health_commit_p99_seconds", "gauge", "Last interval's read-write commit p99.")
		p.Value("mvdb_health_commit_p99_seconds", float64(last.CommitP99NS)/1e9)
		p.Header("mvdb_health_abort_frac", "gauge", "Last interval's aborts/(commits+aborts).")
		p.Value("mvdb_health_abort_frac", last.AbortFrac)
	}
}

// DriftCheck bounds a metric's long-horizon drift: comparing the mean
// of the timeline's first third against its last third, the latter
// must stay within MaxRatio× the former plus Slack (the additive slack
// absorbs near-zero baselines). This is the soak oracle's "no
// monotonic creep" test for heap, chain depth, and backlog.
type DriftCheck struct {
	Metric   string  `json:"metric"`
	MaxRatio float64 `json:"max_ratio"`
	Slack    float64 `json:"slack"`
}

// DriftResult is one check's verdict.
type DriftResult struct {
	Metric    string  `json:"metric"`
	FirstMean float64 `json:"first_mean"`
	LastMean  float64 `json:"last_mean"`
	Bound     float64 `json:"bound"`
	OK        bool    `json:"ok"`
}

// CheckDrift evaluates checks over a timeline (oldest first). With
// fewer than 6 points every check passes vacuously — there is no
// trend to read.
func CheckDrift(pts []Point, checks []DriftCheck) []DriftResult {
	out := make([]DriftResult, 0, len(checks))
	third := len(pts) / 3
	for _, c := range checks {
		res := DriftResult{Metric: c.Metric, OK: true}
		if third >= 2 {
			res.FirstMean = meanMetric(pts[:third], c.Metric)
			res.LastMean = meanMetric(pts[len(pts)-third:], c.Metric)
			res.Bound = res.FirstMean*c.MaxRatio + c.Slack
			res.OK = res.LastMean <= res.Bound
		}
		out = append(out, res)
	}
	return out
}

func meanMetric(pts []Point, metric string) float64 {
	if len(pts) == 0 {
		return 0
	}
	var acc float64
	for _, p := range pts {
		v, _ := p.Metric(metric)
		acc += v
	}
	return acc / float64(len(pts))
}
