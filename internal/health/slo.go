package health

import "fmt"

// Alarm severities. A page is actionable now (the fast burn window is
// saturated while the objective is being violated); a warn is a
// smoldering breach the slow window accumulated.
const (
	SeverityWarn = "warn"
	SeverityPage = "page"
)

// SLO is one declarative objective over a Point metric: the metric
// must stay <= Max. It is evaluated with two burn-rate windows over
// the level-0 timeline, the multi-window pattern from SRE practice —
// a short window that pages quickly on an acute breach but resets as
// fast, and a long window that catches sustained low-grade erosion
// without paging on a blip.
type SLO struct {
	// Name identifies the objective in alarms, events, and metrics
	// (e.g. "commit-p99").
	Name string `json:"name"`
	// Metric is the Point metric the objective bounds (a MetricNames
	// entry).
	Metric string `json:"metric"`
	// Max is the objective's ceiling, in the metric's own unit.
	Max float64 `json:"max"`
	// FastWindow and SlowWindow are window lengths in level-0 points
	// (defaults 12 and 60). Breach fractions are computed over the full
	// window length even before that many points exist, so a fresh
	// monitor cannot page off a single sample.
	FastWindow int `json:"fast_window"`
	SlowWindow int `json:"slow_window"`
	// FastBurn and SlowBurn are the breach fractions that trip each
	// window (defaults 0.5 and 0.2).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
}

// Alarm is one raised breach. Value is the current point's metric
// reading; Breaches the number of breaching points in the fast window.
type Alarm struct {
	AtNS      int64   `json:"at_ns"`
	SLO       string  `json:"slo"`
	Metric    string  `json:"metric"`
	Severity  string  `json:"severity"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	BurnFast  float64 `json:"burn_fast"`
	BurnSlow  float64 `json:"burn_slow"`
	Breaches  int64   `json:"breaches"`
	Message   string  `json:"message"`
}

// Signal is what each tick delivers to subscribers: the new base-
// resolution point and the alarms it raised (usually none). This is
// the decision input internal/adaptive consumes.
type Signal struct {
	Point  Point   `json:"point"`
	Alarms []Alarm `json:"alarms,omitempty"`
}

// sloStateLevel orders severities for hysteresis.
const (
	stateOK = iota
	stateWarn
	statePage
)

var stateNames = [...]string{"ok", "warn", "page"}

// sloState is one SLO's evaluation state: a bounded breach-history
// ring (one bool per level-0 point) plus the hysteresis level — an
// alarm fires only on escalation, so a saturated window alarms once,
// not once per tick.
type sloState struct {
	cfg      SLO
	history  []bool // breach flags, ring of SlowWindow entries
	head     int
	n        int
	level    int
	burnFast float64
	burnSlow float64
}

func newSLOState(cfg SLO) (sloState, error) {
	if cfg.Name == "" {
		return sloState{}, fmt.Errorf("health: SLO needs a name")
	}
	if _, ok := (Point{}).Metric(cfg.Metric); !ok {
		return sloState{}, fmt.Errorf("health: SLO %s: unknown metric %q", cfg.Name, cfg.Metric)
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 12
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 60
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = 0.5
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = 0.2
	}
	return sloState{cfg: cfg, history: make([]bool, cfg.SlowWindow)}, nil
}

// observe records one point's breach flag and recomputes both burn
// fractions (breaching points / full window length).
func (s *sloState) observe(breach bool) {
	s.history[s.head] = breach
	s.head = (s.head + 1) % len(s.history)
	if s.n < len(s.history) {
		s.n++
	}
	fast, slow := 0, 0
	for i := 1; i <= s.n; i++ {
		if !s.history[(s.head-i+len(s.history))%len(s.history)] {
			continue
		}
		slow++
		if i <= s.cfg.FastWindow {
			fast++
		}
	}
	s.burnFast = float64(fast) / float64(s.cfg.FastWindow)
	s.burnSlow = float64(slow) / float64(s.cfg.SlowWindow)
}

// fastBreaches counts breaching points currently in the fast window.
func (s *sloState) fastBreaches() int64 {
	return int64(s.burnFast*float64(s.cfg.FastWindow) + 0.5)
}

// evaluateSLOs folds the new point into every SLO's windows and
// returns the alarms raised by escalations. Caller holds m.mu.
func (m *Monitor) evaluateSLOs(p Point) []Alarm {
	var alarms []Alarm
	for i := range m.slos {
		s := &m.slos[i]
		v, _ := p.Metric(s.cfg.Metric)
		breach := v > s.cfg.Max
		s.observe(breach)

		next := stateOK
		switch {
		case breach && s.burnFast >= s.cfg.FastBurn:
			next = statePage
		case s.burnSlow >= s.cfg.SlowBurn:
			next = stateWarn
		}
		if next > s.level {
			sev := SeverityWarn
			if next == statePage {
				sev = SeverityPage
			}
			alarms = append(alarms, Alarm{
				AtNS:      p.AtNS,
				SLO:       s.cfg.Name,
				Metric:    s.cfg.Metric,
				Severity:  sev,
				Value:     v,
				Threshold: s.cfg.Max,
				BurnFast:  s.burnFast,
				BurnSlow:  s.burnSlow,
				Breaches:  s.fastBreaches(),
				Message: fmt.Sprintf("%s: %s=%g exceeds %g (fast burn %.2f, slow burn %.2f)",
					s.cfg.Name, s.cfg.Metric, v, s.cfg.Max, s.burnFast, s.burnSlow),
			})
		}
		s.level = next
	}
	return alarms
}

// SLOState is one objective's externally visible evaluation state.
type SLOState struct {
	SLO      SLO     `json:"slo"`
	State    string  `json:"state"` // "ok", "warn", "page"
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// SLOStates reports every objective's current state. Nil-safe.
func (m *Monitor) SLOStates() []SLOState {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SLOState, len(m.slos))
	for i := range m.slos {
		s := &m.slos[i]
		out[i] = SLOState{SLO: s.cfg, State: stateNames[s.level], BurnFast: s.burnFast, BurnSlow: s.burnSlow}
	}
	return out
}
