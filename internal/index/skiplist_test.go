package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertAndContains(t *testing.T) {
	s := New(1)
	if !s.Insert("b") || !s.Insert("a") || !s.Insert("c") {
		t.Fatal("fresh inserts reported duplicate")
	}
	if s.Insert("b") {
		t.Fatal("duplicate insert reported new")
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		if !s.Contains(k) {
			t.Fatalf("missing %q", k)
		}
	}
	if s.Contains("d") || s.Contains("") {
		t.Fatal("phantom membership")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedIteration(t *testing.T) {
	s := New(2)
	want := []string{"alpha", "beta", "delta", "gamma", "omega"}
	for _, k := range []string{"gamma", "alpha", "omega", "delta", "beta"} {
		s.Insert(k)
	}
	if got := s.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("keys = %v", got)
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 20; i++ {
		s.Insert(fmt.Sprintf("k%02d", i))
	}
	var got []string
	s.Range("k05", "k10", func(k string) bool {
		got = append(got, k)
		return true
	})
	want := []string{"k05", "k06", "k07", "k08", "k09"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range = %v", got)
	}
	// early stop
	n := 0
	s.Range("", "", func(string) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRangePrefix(t *testing.T) {
	s := New(4)
	for _, k := range []string{"a/1", "a/2", "ab", "b/1", "a", "a0"} {
		s.Insert(k)
	}
	var got []string
	s.RangePrefix("a/", func(k string) bool { got = append(got, k); return true })
	if !reflect.DeepEqual(got, []string{"a/1", "a/2"}) {
		t.Fatalf("prefix a/ = %v", got)
	}
	got = nil
	s.RangePrefix("a", func(k string) bool { got = append(got, k); return true })
	if !reflect.DeepEqual(got, []string{"a", "a/1", "a/2", "a0", "ab"}) {
		t.Fatalf("prefix a = %v", got)
	}
	got = nil
	s.RangePrefix("", func(k string) bool { got = append(got, k); return true })
	if len(got) != 6 {
		t.Fatalf("empty prefix visited %d", len(got))
	}
}

func TestPrefixUpperBound(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a", "b"},
		{"az", "a{"},
		{"a\xff", "b"},
		{"\xff\xff", ""},
		{"k0", "k1"},
	}
	for _, tc := range tests {
		if got := prefixUpperBound(tc.in); got != tc.want {
			t.Errorf("prefixUpperBound(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Property: the skip list agrees with a sorted, deduplicated slice.
func TestPropertyMatchesSortedSet(t *testing.T) {
	f := func(raw []string) bool {
		s := New(99)
		set := map[string]bool{}
		for _, k := range raw {
			if len(k) > 12 {
				k = k[:12]
			}
			s.Insert(k)
			set[k] = true
		}
		var want []string
		for k := range set {
			want = append(want, k)
		}
		sort.Strings(want)
		got := s.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	s := New(5)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scanners verify order continuously.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := ""
				first := true
				s.Range("", "", func(k string) bool {
					if !first && k <= prev {
						panic("out of order iteration")
					}
					prev, first = k, false
					return true
				})
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				s.Insert(fmt.Sprintf("key%06d", rng.Intn(5000)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		// wait for inserters only (indexes 2..5 of the waitgroup) — just
		// give them time, then stop scanners.
		for s.Len() < 100 {
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(fmt.Sprintf("key%09d", i*2654435761%1000000007))
	}
}

func BenchmarkRangeScan(b *testing.B) {
	s := New(1)
	for i := 0; i < 100_000; i++ {
		s.Insert(fmt.Sprintf("key%06d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.RangePrefix("key0012", func(string) bool { n++; return true })
		if n != 100 {
			b.Fatalf("scanned %d", n)
		}
	}
}
