// Package index provides the ordered key index substrate: a concurrent
// skip list over strings. The multiversion store itself is hash-sharded
// for point-access speed; this index gives snapshot scans their ordered,
// prefix-bounded iteration without sorting per scan.
//
// Keys are only ever inserted (a deleted key still exists as a tombstone
// version chain), which keeps the concurrency story simple: a plain
// RWMutex suffices — insertions are rare relative to scans, the critical
// sections are tiny, and scans batch keys so user callbacks run outside
// the lock.
package index

import (
	"fmt"
	"math/rand"
	"sync"
)

const (
	maxHeight = 20
	pBranch   = 4 // 1/4 promotion probability
)

type node struct {
	key  string
	next []*node
}

// SkipList is an ordered set of string keys, safe for concurrent use.
type SkipList struct {
	mu     sync.RWMutex
	head   *node
	height int
	length int
	rng    *rand.Rand
}

// New creates an empty skip list. seed fixes the tower-height sequence
// (useful for deterministic tests; pass any value otherwise).
func New(seed int64) *SkipList {
	return &SkipList{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of keys.
func (s *SkipList) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.length
}

// randomHeight draws a tower height with geometric distribution.
// Caller holds the write lock (the rng is not otherwise synchronized).
func (s *SkipList) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(pBranch) == 0 {
		h++
	}
	return h
}

// findPredecessors fills prev[i] with the rightmost node at level i whose
// key is < key. Caller holds at least the read lock.
func (s *SkipList) findPredecessors(key string, prev *[maxHeight]*node) {
	n := s.head
	for lvl := s.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < key {
			n = n.next[lvl]
		}
		prev[lvl] = n
	}
}

// Insert adds key; it reports whether the key was newly inserted.
func (s *SkipList) Insert(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var prev [maxHeight]*node
	s.findPredecessors(key, &prev)
	if nxt := prev[0].next[0]; nxt != nil && nxt.key == key {
		return false
	}
	h := s.randomHeight()
	if h > s.height {
		for lvl := s.height; lvl < h; lvl++ {
			prev[lvl] = s.head
		}
		s.height = h
	}
	n := &node{key: key, next: make([]*node, h)}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	s.length++
	return true
}

// Contains reports whether key is present.
func (s *SkipList) Contains(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.head
	for lvl := s.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < key {
			n = n.next[lvl]
		}
	}
	nxt := n.next[0]
	return nxt != nil && nxt.key == key
}

// Range calls fn for every key in [from, to) in ascending order, stopping
// early if fn returns false. An empty `to` means "no upper bound".
//
// The iteration holds the read lock in short stretches (batching keys)
// rather than across user callbacks, so a slow consumer cannot block
// inserters; keys inserted behind the cursor during iteration are simply
// not revisited, which is fine for snapshot scans (the snapshot read
// filters versions anyway, and keys cannot be removed).
func (s *SkipList) Range(from, to string, fn func(key string) bool) {
	const batch = 64
	buf := make([]string, 0, batch)
	cursor := from
	first := true
	for {
		buf = buf[:0]
		s.mu.RLock()
		n := s.head
		for lvl := s.height - 1; lvl >= 0; lvl-- {
			for n.next[lvl] != nil && n.next[lvl].key < cursor {
				n = n.next[lvl]
			}
		}
		n = n.next[0]
		if !first {
			// cursor was already delivered; skip it.
			if n != nil && n.key == cursor {
				n = n.next[0]
			}
		}
		for n != nil && len(buf) < batch {
			if to != "" && n.key >= to {
				break
			}
			buf = append(buf, n.key)
			n = n.next[0]
		}
		s.mu.RUnlock()
		if len(buf) == 0 {
			return
		}
		for _, k := range buf {
			if !fn(k) {
				return
			}
		}
		cursor = buf[len(buf)-1]
		first = false
	}
}

// RangePrefix calls fn for every key with the given prefix, ascending.
func (s *SkipList) RangePrefix(prefix string, fn func(key string) bool) {
	if prefix == "" {
		s.Range("", "", fn)
		return
	}
	s.Range(prefix, prefixUpperBound(prefix), fn)
}

// prefixUpperBound returns the smallest string greater than every string
// with the given prefix, or "" if none exists (prefix is all 0xFF).
func prefixUpperBound(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Keys returns all keys in order (tests and tools).
func (s *SkipList) Keys() []string {
	out := make([]string, 0, s.Len())
	s.Range("", "", func(k string) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants validates level ordering and reachability (tests).
func (s *SkipList) CheckInvariants() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for lvl := 0; lvl < s.height; lvl++ {
		prev := ""
		first := true
		for n := s.head.next[lvl]; n != nil; n = n.next[lvl] {
			if !first && n.key <= prev {
				return fmt.Errorf("index: level %d out of order: %q !< %q", lvl, prev, n.key)
			}
			prev, first = n.key, false
		}
	}
	n0 := 0
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		n0++
	}
	if n0 != s.length {
		return fmt.Errorf("index: level-0 count %d != length %d", n0, s.length)
	}
	return nil
}
