package index

import (
	"strings"
	"testing"
)

// FuzzPrefixUpperBound: for any prefix and key, key having the prefix
// implies prefix <= key < upperBound (when a bound exists), and keys
// outside that window never have the prefix.
func FuzzPrefixUpperBound(f *testing.F) {
	f.Add("a", "abc")
	f.Add("", "anything")
	f.Add("\xff", "\xff\x00")
	f.Add("k0", "k00")
	f.Fuzz(func(t *testing.T, prefix, key string) {
		ub := prefixUpperBound(prefix)
		has := strings.HasPrefix(key, prefix)
		inWindow := key >= prefix && (ub == "" || key < ub)
		if has && !inWindow {
			t.Fatalf("key %q has prefix %q but outside window [%q,%q)", key, prefix, prefix, ub)
		}
		if !has && inWindow && prefix != "" {
			t.Fatalf("key %q lacks prefix %q but inside window [%q,%q)", key, prefix, prefix, ub)
		}
	})
}
