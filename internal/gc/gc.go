// Package gc implements garbage collection of old versions, following the
// paper's Section 6: "the only restriction the version control mechanism
// imposes on the garbage collection scheme is that it must not discard any
// version of objects as young as or younger than vtnc" — refined here, as
// the paper suggests, by also keeping everything an active read-only
// transaction can still reach.
//
// The collector is deliberately independent of the concurrency control
// component (it only consults the version control module and the read-only
// registry), which is exactly the separation the paper calls "quite
// elegant and desirable": the concurrency control component is not
// overloaded with auxiliary functions, and the garbage collection scheme
// never interacts with read-write transactions.
package gc

import (
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/storage"
)

// Source is what the collector needs from an engine: the store, the
// current visibility horizon, and the oldest snapshot still in use.
type Source interface {
	// Store returns the version store to prune.
	Store() *storage.Store
	// VC is not required directly; the horizon is.
	// VTNC returns the current visible transaction number counter.
	VTNC() uint64
	// MinActiveReadOnlySN returns the smallest start number among active
	// read-only transactions, and whether any are active.
	MinActiveReadOnlySN() (uint64, bool)
}

// Collector prunes unreachable versions.
type Collector struct {
	src      Source
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	running bool

	pruned atomic.Uint64
	passes atomic.Uint64

	// onPass observes completed collection passes; see SetOnPass.
	onPass func(reclaimed int, watermark uint64, elapsed time.Duration)
	// onChain observes per-object version-chain lengths; see
	// SetChainObserver.
	onChain func(depth int)
}

// SetOnPass installs fn, invoked after every collection pass with the
// number of versions reclaimed, the watermark used, and the pass
// duration — the observability hook that feeds GC counters and trace
// events. Set it before Start; it runs on the collector goroutine (or
// the caller of Collect).
func (c *Collector) SetOnPass(fn func(reclaimed int, watermark uint64, elapsed time.Duration)) {
	c.onPass = fn
}

// SetChainObserver installs fn, invoked once per object per collection
// pass with the object's version-chain length as GC found it (before
// pruning). It feeds the chain-length histogram: the distribution of
// retained-version depth the collector is actually walking, which is the
// leading indicator of GC falling behind the update rate. Set it before
// Start; it runs on the collector goroutine with no store locks beyond
// the object's own.
func (c *Collector) SetChainObserver(fn func(depth int)) {
	c.onChain = fn
}

// New creates a collector. interval is the background period for Start
// (zero selects 10ms; Collect can always be called manually).
func New(src Source, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Collector{src: src, interval: interval}
}

// Watermark computes the highest transaction number below which old
// versions are unreachable: the minimum of vtnc and the oldest active
// read-only start number. For every object the newest version <= the
// watermark is kept (some snapshot at the watermark may read it);
// everything older is discarded.
func (c *Collector) Watermark() uint64 {
	w := c.src.VTNC()
	if sn, ok := c.src.MinActiveReadOnlySN(); ok && sn < w {
		w = sn
	}
	return w
}

// Collect performs one pruning pass and returns the number of versions
// discarded.
func (c *Collector) Collect() int {
	start := time.Now()
	w := c.Watermark()
	n := 0
	c.src.Store().Range(func(_ string, o *storage.Object) bool {
		if c.onChain != nil {
			c.onChain(o.VersionCount())
		}
		n += o.Prune(w)
		return true
	})
	c.pruned.Add(uint64(n))
	c.passes.Add(1)
	if c.onPass != nil {
		c.onPass(n, w, time.Since(start))
	}
	return n
}

// Start launches the background collection loop. It is a no-op if the
// collector is already running.
func (c *Collector) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}(c.stop, c.done)
}

// Stop halts the background loop and waits for it to exit.
func (c *Collector) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

// Pruned returns the total number of versions discarded.
func (c *Collector) Pruned() uint64 { return c.pruned.Load() }

// Passes returns the number of collection passes performed.
func (c *Collector) Passes() uint64 { return c.passes.Load() }
