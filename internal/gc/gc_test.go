package gc

import (
	"fmt"
	"testing"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/engine"
)

func fill(t *testing.T, e *core.Engine, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCollectPrunesOldVersions(t *testing.T) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
	defer e.Close()
	fill(t, e, "k", 50)
	if got := e.Store().TotalVersions(); got != 50 {
		t.Fatalf("versions before GC = %d, want 50", got)
	}
	c := New(e, 0)
	pruned := c.Collect()
	if pruned != 49 {
		t.Fatalf("pruned = %d, want 49", pruned)
	}
	if got := e.Store().TotalVersions(); got != 1 {
		t.Fatalf("versions after GC = %d, want 1", got)
	}
	// The surviving version is still readable.
	ro, _ := e.Begin(engine.ReadOnly)
	v, err := ro.Get("k")
	if err != nil || string(v) != "v49" {
		t.Fatalf("Get = (%q,%v), want v49", v, err)
	}
	ro.Commit()
	if c.Pruned() != 49 || c.Passes() != 1 {
		t.Fatalf("counters = (%d,%d)", c.Pruned(), c.Passes())
	}
}

// An active read-only transaction holds the watermark back: versions it
// can reach must survive (paper Section 6 refined).
func TestActiveReadOnlyHoldsWatermark(t *testing.T) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
	defer e.Close()
	fill(t, e, "k", 10)
	ro, _ := e.Begin(engine.ReadOnly) // snapshot at version 10
	fill(t, e, "k", 10)               // versions 11..20

	c := New(e, 0)
	c.Collect()
	// Watermark = ro's sn (10): versions 10..20 survive (plus none below).
	if got := e.Store().Get("k").VersionCount(); got != 11 {
		t.Fatalf("versions = %d, want 11", got)
	}
	if v, err := ro.Get("k"); err != nil || string(v) != "v9" {
		t.Fatalf("old snapshot Get = (%q,%v), want v9", v, err)
	}
	ro.Commit()
	c.Collect()
	if got := e.Store().Get("k").VersionCount(); got != 1 {
		t.Fatalf("versions after release = %d, want 1", got)
	}
}

func TestWatermarkUsesMinOfVTNCAndRO(t *testing.T) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
	defer e.Close()
	fill(t, e, "k", 5)
	c := New(e, 0)
	if w := c.Watermark(); w != 5 {
		t.Fatalf("watermark = %d, want 5 (vtnc)", w)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	fill(t, e, "k", 3)
	if w := c.Watermark(); w != 5 {
		t.Fatalf("watermark = %d, want 5 (held by ro)", w)
	}
	ro.Commit()
	if w := c.Watermark(); w != 8 {
		t.Fatalf("watermark = %d, want 8", w)
	}
}

func TestBackgroundLoop(t *testing.T) {
	e := core.New(core.Options{Protocol: core.TimestampOrdering, TrackReadOnly: true})
	defer e.Close()
	c := New(e, time.Millisecond)
	c.Start()
	c.Start() // idempotent
	defer c.Stop()

	fill(t, e, "k", 100)
	deadline := time.Now().Add(5 * time.Second)
	for e.Store().Get("k").VersionCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("background GC never caught up: %d versions", e.Store().Get("k").VersionCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Passes() == 0 {
		t.Fatal("no passes recorded")
	}
}

// GC under concurrent load must never break snapshot reads.
func TestGCConcurrentWithReaders(t *testing.T) {
	e := core.New(core.Options{Protocol: core.TwoPhaseLocking, TrackReadOnly: true})
	defer e.Close()
	fill(t, e, "k", 1)
	c := New(e, time.Millisecond)
	c.Start()
	defer c.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			tx, _ := e.Begin(engine.ReadWrite)
			tx.Put("k", []byte(fmt.Sprintf("v%d", i)))
			tx.Commit()
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		ro, _ := e.Begin(engine.ReadOnly)
		if _, err := ro.Get("k"); err != nil {
			t.Fatalf("snapshot read failed under GC: %v", err)
		}
		ro.Commit()
	}
}
