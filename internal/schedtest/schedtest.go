// Package schedtest is a deterministic schedule-exploration harness for
// the transaction engines: it enumerates every interleaving of a small
// set of transaction scripts and replays each one against a fresh
// engine, with the offline MVSG checker (internal/history) and the
// online auditor (internal/audit) riding the recorder plumbing.
//
// The harness turns the repo's correctness argument from "randomized
// stress found nothing" into "every schedule of this conflict pattern
// was executed and certified": for the real engines every interleaving
// must produce a serializable history (checker accepts, auditor silent),
// and for the deliberately broken baselines (internal/baseline) at least
// one interleaving must trip both oracles.
//
// Execution model: one goroutine per script, lock-stepped by the
// scheduler. The scheduler dispatches exactly one operation per schedule
// slot and waits briefly for it to finish; an operation that does not
// finish is *blocked* (a 2PL lock wait, a T/O read waiting on an older
// pending write) and the scheduler moves on — the op completes
// asynchronously once another script unblocks it. The realized
// interleaving may therefore locally reorder around blocked operations,
// exactly as a real scheduler would; every realized execution is still a
// legal concurrent history, so the oracles apply unconditionally.
package schedtest

import (
	"errors"
	"log/slog"
	"sort"
	"sync"
	"time"

	"mvdb/internal/audit"
	"mvdb/internal/engine"
	"mvdb/internal/history"
)

// OpKind is one step of a transaction script.
type OpKind int

const (
	// Get reads Key into the script's Reads map ("" on ErrNotFound).
	Get OpKind = iota
	// Put writes Value to Key.
	Put
	// Delete tombstones Key.
	Delete
	// Commit finishes the transaction.
	Commit
	// Abort discards the transaction.
	Abort
	// Begin explicitly starts the transaction. Scripts that omit it
	// begin implicitly at their first operation; an explicit Begin exists
	// so a schedule can fix the begin order independently of the first
	// data access (the A1 ablation needs tn assigned before a rival
	// commits).
	Begin
)

// Op is one script step.
type Op struct {
	Kind  OpKind
	Key   string
	Value string
}

// Script is one transaction: a name (for failure messages), a class, and
// the ordered operations. A read-write script that does not end in
// Commit/Abort is aborted by the harness at the end of the run.
type Script struct {
	Name  string
	Class engine.Class
	Ops   []Op
}

// Outcome is what one script did in one run.
type Outcome struct {
	Name      string
	Committed bool
	// Err is the first operation error (nil for a clean run). Retryable
	// aborts (deadlock, wound, conflict, timeout) land here; after one,
	// the script's remaining operations are skipped.
	Err error
	// Reads holds the last observed value per key ("" for a miss).
	Reads map[string]string
}

// RunResult is the verdict of one schedule replay.
type RunResult struct {
	Schedule []int
	Outcomes []Outcome
	// Final is the committed state after the run, read by a fresh
	// read-only transaction over every key the suite touches (missing
	// keys are absent from the map). That read also closes any MVSG
	// cycle a write-order anomaly left open, so the oracles below see it.
	Final map[string]string
	// HistoryErr is the offline MVSG checker's verdict (nil = serializable).
	HistoryErr error
	// Alarms is the online auditor's alarm count for the run.
	Alarms uint64
	// Stalled reports that the run was abandoned because an operation
	// stayed blocked past the drain deadline. It indicates a harness or
	// engine bug, never a legal outcome; Explore fails the test on it.
	Stalled bool
}

// Suite binds scripts to an engine constructor.
type Suite struct {
	Scripts []Script
	// Bootstrap is the pre-transactional state (version 0).
	Bootstrap map[string]string
	// NewEngine builds a fresh engine for one run with the given
	// recorder attached (the harness passes engine.Multi of the offline
	// recorder and the online auditor).
	NewEngine func(rec engine.Recorder) engine.Engine
}

const (
	// opGrace is how long the scheduler waits for a dispatched operation
	// before declaring it blocked and moving to the next slot.
	opGrace = 10 * time.Millisecond
	// drainGrace bounds the end-of-run drain; exceeding it marks the
	// run Stalled.
	drainGrace = 10 * time.Second
)

// Interleavings enumerates every interleaving of n scripts with the
// given operation counts, as schedules of script indices. The count is
// the multinomial coefficient (sum(lengths))! / prod(lengths[i]!).
func Interleavings(lengths []int) [][]int {
	total := 0
	for _, l := range lengths {
		total += l
	}
	remaining := append([]int(nil), lengths...)
	cur := make([]int, 0, total)
	var out [][]int
	var rec func()
	rec = func() {
		if len(cur) == total {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range remaining {
			if remaining[i] == 0 {
				continue
			}
			remaining[i]--
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			remaining[i]++
		}
	}
	rec()
	return out
}

// Lengths returns the suite's per-script operation counts.
func (s *Suite) Lengths() []int {
	lengths := make([]int, len(s.Scripts))
	for i, sc := range s.Scripts {
		lengths[i] = len(sc.Ops)
	}
	return lengths
}

// Keys returns the sorted union of keys the suite can touch.
func (s *Suite) Keys() []string {
	set := map[string]struct{}{}
	for k := range s.Bootstrap {
		set[k] = struct{}{}
	}
	for _, sc := range s.Scripts {
		for _, op := range sc.Ops {
			if op.Key != "" {
				set[op.Key] = struct{}{}
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run replays one schedule (a sequence of script indices; index i must
// appear exactly len(Scripts[i].Ops) times) against a fresh engine and
// returns the oracles' verdicts.
func (s *Suite) Run(schedule []int) RunResult {
	rec := history.NewRecorder()
	aud := audit.New(audit.Options{
		Window: 256,
		Logger: slog.New(slog.DiscardHandler),
	})
	eng := s.NewEngine(engine.Multi(rec, aud))
	defer eng.Close()
	defer aud.Close()

	if len(s.Bootstrap) > 0 {
		data := make(map[string][]byte, len(s.Bootstrap))
		for k, v := range s.Bootstrap {
			data[k] = []byte(v)
		}
		// Both core engines and the baseline wrappers expose Bootstrap.
		if b, ok := eng.(interface{ Bootstrap(map[string][]byte) error }); ok {
			if err := b.Bootstrap(data); err != nil {
				panic("schedtest: bootstrap: " + err.Error())
			}
		} else {
			panic("schedtest: engine does not support Bootstrap")
		}
	}

	res := RunResult{Schedule: schedule, Outcomes: make([]Outcome, len(s.Scripts))}
	n := len(s.Scripts)
	start := make([]chan struct{}, n)
	done := make([]chan struct{}, n)
	var wg sync.WaitGroup
	for i := range s.Scripts {
		// start is buffered to the script length so tokens for a script
		// whose current operation is blocked queue up instead of
		// stalling the scheduler; the worker still consumes them
		// strictly one operation at a time, in program order.
		start[i] = make(chan struct{}, len(s.Scripts[i].Ops))
		done[i] = make(chan struct{}, len(s.Scripts[i].Ops))
		res.Outcomes[i] = Outcome{Name: s.Scripts[i].Name, Reads: map[string]string{}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runScript(eng, s.Scripts[i], start[i], done[i], &res.Outcomes[i])
		}(i)
	}

	// Lock-step dispatch: one start token per schedule slot, then a
	// short wait for its completion. A blocked operation (lock wait,
	// pending-version wait) does not finish inside its slot; its start —
	// and any later tokens for the same script — queue in the buffered
	// channel and the worker consumes them in program order once the op
	// unblocks. A schedule slot that lands while its script is blocked is
	// therefore *deferred*, never executed out of order: the realized
	// interleaving is the nominal one with blocked suffixes shifted
	// later, which is exactly what a real scheduler would produce.
	for _, i := range schedule {
		start[i] <- struct{}{}
		select {
		case <-done[i]:
		case <-time.After(opGrace):
			// Blocked (or merely slow): it completes asynchronously and
			// its done token is consumed by a later slot's wait or by
			// the final drain.
		}
	}

	// Drain: every start token is out; wait for the workers to finish.
	// Blocked operations resolve as rival scripts commit, abort, or are
	// cleaned up (the end-of-script auto-abort releases their locks).
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(drainGrace):
		res.Stalled = true
		return res
	}

	// Final read-only pass: the committed state, and the read that lets
	// the oracles see write-order anomalies (A1's overwritten-but-visible
	// version is only observable through a snapshot read).
	res.Final = map[string]string{}
	if ro, err := eng.Begin(engine.ReadOnly); err == nil {
		for _, k := range s.Keys() {
			if v, err := ro.Get(k); err == nil {
				res.Final[k] = string(v)
			}
		}
		ro.Commit()
	}

	aud.Drain()
	res.Alarms = aud.AlarmsTotal()
	res.HistoryErr = rec.Check()
	return res
}

// runScript executes one script in lock-step: one operation per start
// token, one done token per finished operation. After a failed operation
// the transaction is dead and the remaining slots are consumed as no-ops
// so schedules keep their nominal length.
func runScript(eng engine.Engine, sc Script, start <-chan struct{}, done chan<- struct{}, out *Outcome) {
	var tx engine.Tx
	dead := false
	fail := func(err error) {
		if out.Err == nil {
			out.Err = err
		}
		if tx != nil {
			tx.Abort()
		}
		dead = true
	}
	begin := func() {
		if tx != nil || dead {
			return
		}
		t, err := eng.Begin(sc.Class)
		if err != nil {
			fail(err)
			return
		}
		tx = t
	}
	for _, op := range sc.Ops {
		<-start
		if !dead {
			switch op.Kind {
			case Begin:
				begin()
			case Get:
				if begin(); !dead {
					v, err := tx.Get(op.Key)
					switch {
					case err == nil:
						out.Reads[op.Key] = string(v)
					case errors.Is(err, engine.ErrNotFound):
						out.Reads[op.Key] = ""
					default:
						fail(err)
					}
				}
			case Put:
				if begin(); !dead {
					if err := tx.Put(op.Key, []byte(op.Value)); err != nil {
						fail(err)
					}
				}
			case Delete:
				if begin(); !dead {
					if err := tx.Delete(op.Key); err != nil {
						fail(err)
					}
				}
			case Commit:
				if begin(); !dead {
					if err := tx.Commit(); err != nil {
						fail(err)
					} else {
						out.Committed = true
						dead = true
					}
				}
			case Abort:
				if tx != nil {
					tx.Abort()
				}
				dead = true
			}
		}
		done <- struct{}{}
	}
	if tx != nil && !dead {
		tx.Abort()
	}
}

// Explore replays every interleaving of the suite's scripts, calling
// check on each result, and returns the number of schedules run. A
// stalled run is reported through fail (the harness guarantees every
// legal schedule drains).
func (s *Suite) Explore(fail func(format string, args ...any), check func(RunResult)) int {
	schedules := Interleavings(s.Lengths())
	for _, sched := range schedules {
		r := s.Run(sched)
		if r.Stalled {
			fail("schedule %v stalled", sched)
			continue
		}
		check(r)
	}
	return len(schedules)
}
