package schedtest

import (
	"fmt"
	"testing"

	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/vc"
)

func TestInterleavingsEnumeration(t *testing.T) {
	cases := []struct {
		lengths []int
		want    int
	}{
		{[]int{1}, 1},
		{[]int{2, 2}, 6},
		{[]int{3, 3}, 20},
		{[]int{3, 2}, 10},
		{[]int{4, 2}, 15},
		{[]int{2, 2, 2}, 90},
		{[]int{3, 3, 2}, 560},
	}
	for _, c := range cases {
		got := Interleavings(c.lengths)
		if len(got) != c.want {
			t.Errorf("Interleavings(%v): %d schedules, want %d", c.lengths, len(got), c.want)
		}
		seen := map[string]bool{}
		for _, sched := range got {
			key := fmt.Sprint(sched)
			if seen[key] {
				t.Fatalf("duplicate schedule %v", sched)
			}
			seen[key] = true
			counts := make([]int, len(c.lengths))
			for _, i := range sched {
				counts[i]++
			}
			for i, n := range counts {
				if n != c.lengths[i] {
					t.Fatalf("schedule %v uses script %d %d times, want %d", sched, i, n, c.lengths[i])
				}
			}
		}
	}
}

// protocols are the real engine configurations every conflict suite
// must hold for: the three concurrency controls crossed with both
// visibility modes. The epoch rows certify that swapping the strict
// drain for the decentralized watermark preserves serializability under
// exhaustive interleaving enumeration with both oracles watching.
func protocols() map[string]core.Options {
	m := map[string]core.Options{}
	for pname, p := range map[string]core.Protocol{
		"2pl": core.TwoPhaseLocking,
		"tso": core.TimestampOrdering,
		"occ": core.Optimistic,
	} {
		for vname, v := range map[string]vc.Mode{
			"strict": vc.ModeStrict,
			"epoch":  vc.ModeEpoch,
		} {
			m[pname+"/"+vname] = core.Options{Protocol: p, Visibility: v}
		}
	}
	return m
}

func realEngine(opts core.Options) func(rec engine.Recorder) engine.Engine {
	return func(rec engine.Recorder) engine.Engine {
		opts.Recorder = rec
		return core.New(opts)
	}
}

// requireClean is the per-run baseline every real engine must meet: a
// serializable history, a silent auditor, and no non-retryable errors.
func requireClean(t *testing.T, r RunResult) {
	t.Helper()
	if r.HistoryErr != nil {
		t.Errorf("schedule %v: checker rejected: %v", r.Schedule, r.HistoryErr)
	}
	if r.Alarms != 0 {
		t.Errorf("schedule %v: auditor raised %d alarms", r.Schedule, r.Alarms)
	}
	for _, o := range r.Outcomes {
		if o.Err != nil && !engine.Retryable(o.Err) {
			t.Errorf("schedule %v: %s failed non-retryably: %v", r.Schedule, o.Name, o.Err)
		}
		if o.Committed && o.Err != nil {
			t.Errorf("schedule %v: %s both committed and errored (%v)", r.Schedule, o.Name, o.Err)
		}
	}
}

// TestWriteWriteConflict explores every interleaving of two transactions
// that each write the pair (x, y) to their own tag: serializability means
// the final state always has x == y, whichever commits last.
func TestWriteWriteConflict(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			suite := &Suite{
				Bootstrap: map[string]string{"x": "0", "y": "0"},
				Scripts: []Script{
					{Name: "T1", Ops: []Op{{Kind: Put, Key: "x", Value: "a"}, {Kind: Put, Key: "y", Value: "a"}, {Kind: Commit}}},
					{Name: "T2", Ops: []Op{{Kind: Put, Key: "x", Value: "b"}, {Kind: Put, Key: "y", Value: "b"}, {Kind: Commit}}},
				},
				NewEngine: realEngine(p),
			}
			n := suite.Explore(t.Fatalf, func(r RunResult) {
				requireClean(t, r)
				if r.Final["x"] != r.Final["y"] {
					t.Errorf("schedule %v: torn pair x=%q y=%q", r.Schedule, r.Final["x"], r.Final["y"])
				}
				commits := 0
				for _, o := range r.Outcomes {
					if o.Committed {
						commits++
					}
				}
				if commits == 0 {
					t.Errorf("schedule %v: both writers aborted", r.Schedule)
				}
			})
			if n != 20 {
				t.Fatalf("explored %d schedules, want all 20", n)
			}
		})
	}
}

// TestWriteSkew explores the classic write-skew pattern: T1 reads x and
// writes y, T2 reads y and writes x. A serializable engine must never let
// both commit having both read the unmodified bootstrap values.
func TestWriteSkew(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			suite := &Suite{
				Bootstrap: map[string]string{"x": "0", "y": "0"},
				Scripts: []Script{
					{Name: "T1", Ops: []Op{{Kind: Get, Key: "x"}, {Kind: Put, Key: "y", Value: "1"}, {Kind: Commit}}},
					{Name: "T2", Ops: []Op{{Kind: Get, Key: "y"}, {Kind: Put, Key: "x", Value: "1"}, {Kind: Commit}}},
				},
				NewEngine: realEngine(p),
			}
			n := suite.Explore(t.Fatalf, func(r RunResult) {
				requireClean(t, r)
				t1, t2 := r.Outcomes[0], r.Outcomes[1]
				if t1.Committed && t2.Committed && t1.Reads["x"] == "0" && t2.Reads["y"] == "0" {
					t.Errorf("schedule %v: write skew committed (both read stale)", r.Schedule)
				}
			})
			if n != 20 {
				t.Fatalf("explored %d schedules, want all 20", n)
			}
		})
	}
}

// TestDeadlockPair explores opposite-order lock acquisition under 2PL
// with deadlock detection: in the interleavings that close the waits-for
// cycle exactly one transaction is chosen as victim, the other commits,
// and the oracles stay silent throughout.
func TestDeadlockPair(t *testing.T) {
	suite := &Suite{
		Bootstrap: map[string]string{"a": "0", "b": "0"},
		Scripts: []Script{
			{Name: "T1", Ops: []Op{{Kind: Put, Key: "a", Value: "1"}, {Kind: Put, Key: "b", Value: "1"}, {Kind: Commit}}},
			{Name: "T2", Ops: []Op{{Kind: Put, Key: "b", Value: "2"}, {Kind: Put, Key: "a", Value: "2"}, {Kind: Commit}}},
		},
		NewEngine: realEngine(core.Options{Protocol: core.TwoPhaseLocking}),
	}
	deadlocked := 0
	n := suite.Explore(t.Fatalf, func(r RunResult) {
		requireClean(t, r)
		victims, commits := 0, 0
		for _, o := range r.Outcomes {
			if o.Err != nil {
				victims++
			}
			if o.Committed {
				commits++
			}
		}
		if victims > 1 {
			t.Errorf("schedule %v: both transactions aborted", r.Schedule)
		}
		if commits == 0 {
			t.Errorf("schedule %v: nothing committed", r.Schedule)
		}
		if victims == 1 {
			deadlocked++
		}
	})
	if n != 20 {
		t.Fatalf("explored %d schedules, want all 20", n)
	}
	if deadlocked == 0 {
		t.Fatal("no interleaving produced a deadlock; the suite is not exercising the detector")
	}
	t.Logf("deadlock victim chosen in %d/%d schedules", deadlocked, n)
}

// TestReadOnlyIndependence runs two conflicting writers plus a read-only
// observer under every protocol: the observer must commit cleanly in
// every interleaving — it never blocks, never aborts, never alarms.
// (Three scripts: this is the 90-schedule tier above the 2-transaction
// suites.)
func TestReadOnlyIndependence(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			suite := &Suite{
				Bootstrap: map[string]string{"x": "0"},
				Scripts: []Script{
					{Name: "W1", Ops: []Op{{Kind: Put, Key: "x", Value: "1"}, {Kind: Commit}}},
					{Name: "W2", Ops: []Op{{Kind: Put, Key: "x", Value: "2"}, {Kind: Commit}}},
					{Name: "RO", Class: engine.ReadOnly, Ops: []Op{{Kind: Get, Key: "x"}, {Kind: Commit}}},
				},
				NewEngine: realEngine(p),
			}
			n := suite.Explore(t.Fatalf, func(r RunResult) {
				requireClean(t, r)
				ro := r.Outcomes[2]
				if ro.Err != nil || !ro.Committed {
					t.Errorf("schedule %v: read-only tx (committed=%v, err=%v)", r.Schedule, ro.Committed, ro.Err)
				}
				if got := ro.Reads["x"]; got != "0" && got != "1" && got != "2" {
					t.Errorf("schedule %v: read-only tx saw impossible x=%q", r.Schedule, got)
				}
			})
			if n != 90 {
				t.Fatalf("explored %d schedules, want all 90", n)
			}
		})
	}
}

// TestSerialSchedulesCommit pins the degenerate case: a schedule that
// never interleaves must commit both transactions under every protocol.
func TestSerialSchedulesCommit(t *testing.T) {
	for name, p := range protocols() {
		t.Run(name, func(t *testing.T) {
			suite := &Suite{
				Bootstrap: map[string]string{"x": "0", "y": "0"},
				Scripts: []Script{
					{Name: "T1", Ops: []Op{{Kind: Put, Key: "x", Value: "a"}, {Kind: Put, Key: "y", Value: "a"}, {Kind: Commit}}},
					{Name: "T2", Ops: []Op{{Kind: Get, Key: "x"}, {Kind: Put, Key: "y", Value: "b"}, {Kind: Commit}}},
				},
				NewEngine: realEngine(p),
			}
			for _, order := range [][]int{
				{0, 0, 0, 1, 1, 1},
				{1, 1, 1, 0, 0, 0},
			} {
				r := suite.Run(order)
				if r.Stalled {
					t.Fatalf("serial schedule %v stalled", order)
				}
				requireClean(t, r)
				for _, o := range r.Outcomes {
					if !o.Committed {
						t.Errorf("serial schedule %v: %s did not commit (err=%v)", order, o.Name, o.Err)
					}
				}
			}
		})
	}
}

// a1Suite is the early-registration ablation's conflict pattern: T1 pins
// its transaction number at Begin, T2 commits an overwrite of x, then T1
// reads and overwrites it with the smaller number. On the broken engine
// some interleaving produces a non-serializable history; on the correct
// engine every interleaving must stay clean.
func a1Suite(newEngine func(engine.Recorder) engine.Engine) *Suite {
	return &Suite{
		Bootstrap: map[string]string{"x": "0"},
		Scripts: []Script{
			{Name: "T1", Ops: []Op{{Kind: Begin}, {Kind: Get, Key: "x"}, {Kind: Put, Key: "x", Value: "t1"}, {Kind: Commit}}},
			{Name: "T2", Ops: []Op{{Kind: Put, Key: "x", Value: "t2"}, {Kind: Commit}}},
		},
		NewEngine: newEngine,
	}
}

// a2Suite is the eager-visibility ablation's pattern: an anti-dependency
// from T1 to T2 on z, plus a read-only observer that can catch the
// inconsistent snapshot (T2's z visible, T1's y not) when vtnc advances
// in completion order.
func a2Suite(newEngine func(engine.Recorder) engine.Engine) *Suite {
	return &Suite{
		Bootstrap: map[string]string{"y": "0", "z": "0"},
		Scripts: []Script{
			{Name: "T1", Ops: []Op{{Kind: Get, Key: "z"}, {Kind: Put, Key: "y", Value: "t1"}, {Kind: Commit}}},
			{Name: "T2", Ops: []Op{{Kind: Put, Key: "z", Value: "t2"}, {Kind: Commit}}},
			{Name: "RO", Class: engine.ReadOnly, Ops: []Op{{Kind: Get, Key: "z"}, {Kind: Get, Key: "y"}, {Kind: Commit}}},
		},
		NewEngine: newEngine,
	}
}

// TestBrokenBaselinesAlarm replays every interleaving of each ablation's
// conflict pattern against the deliberately broken engine and against
// the corresponding correct engine: the broken engine must trip the
// oracles in at least one schedule, the correct engine in none. This is
// the end-to-end proof that the schedule harness plus the two auditors
// have real detection power, not just the absence of false positives.
func TestBrokenBaselinesAlarm(t *testing.T) {
	cases := []struct {
		name    string
		broken  func() *Suite
		control func() *Suite
	}{
		{
			name:    "early-register-2pl",
			broken:  func() *Suite { return a1Suite(baseline.NewBrokenEarlyRegister) },
			control: func() *Suite { return a1Suite(realEngine(core.Options{Protocol: core.TwoPhaseLocking})) },
		},
		{
			name:    "eager-visibility-tso",
			broken:  func() *Suite { return a2Suite(baseline.NewBrokenEagerVisibility) },
			control: func() *Suite { return a2Suite(realEngine(core.Options{Protocol: core.TimestampOrdering})) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			caught := 0
			n := c.broken().Explore(t.Fatalf, func(r RunResult) {
				if r.HistoryErr != nil || r.Alarms > 0 {
					caught++
				}
			})
			if caught == 0 {
				t.Fatalf("broken engine survived all %d schedules with both oracles silent", n)
			}
			t.Logf("oracles caught the broken engine in %d/%d schedules", caught, n)

			c.control().Explore(t.Fatalf, func(r RunResult) {
				if r.HistoryErr != nil {
					t.Errorf("control schedule %v: checker rejected the correct engine: %v", r.Schedule, r.HistoryErr)
				}
				if r.Alarms != 0 {
					t.Errorf("control schedule %v: auditor alarmed on the correct engine", r.Schedule)
				}
			})
		})
	}
}
