package epoch

import (
	"testing"

	"mvdb/internal/vc"
)

// FuzzVisibilityEquivalence is the differential oracle for the
// Controller interface split: one random register / complete / discard
// sequence, decoded exactly like FuzzVCLifecycle's, drives a strict
// controller and an epoch controller in lock step. Driven sequentially
// the two must agree — at every step — on tnc, on the visible prefix
// (both expose it as vtnc: every tn <= vtnc is visible, everything
// above is not), and on the read-only anchor, and after a final drain
// both must land on vtnc == tnc-1. Any divergence means one of the two
// implementations violated the Transaction Visibility Property.
//
// The epoch controller runs with a deliberately tiny shape (2 lanes × 4
// slots) so long inputs wrap its rings many times and exercise slot
// reuse and the capacity guard, not just the easy first generation.
func FuzzVisibilityEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0})                                           // register, complete it
	f.Add([]byte{0, 0, 2, 0})                                           // register, discard it
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 0, 1, 0})                         // out-of-order resolution
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 9, 1, 8, 1, 7, 1, 0}) // deep batch
	f.Fuzz(func(t *testing.T, data []byte) {
		s := vc.New(0)
		e := NewWithShape(0, 2, 4)
		type pair struct{ hs, he vc.Handle }
		var live []pair
		for i := 0; i < len(data); i++ {
			op := data[i] % 3
			arg := 0
			if i+1 < len(data) {
				i++
				arg = int(data[i])
			}
			switch op {
			case 0:
				// The tiny shape means a register can block on the
				// capacity guard once the watermark distance fills the
				// ring; with everything sequential that would deadlock,
				// so stop accepting registers at the window edge —
				// exactly where a real client would block in Register.
				if e.Lag() >= e.capacity {
					continue
				}
				live = append(live, pair{s.Register(), e.Register()})
			case 1:
				if len(live) > 0 {
					j := arg % len(live)
					s.Complete(live[j].hs)
					e.Complete(live[j].he)
					live = append(live[:j], live[j+1:]...)
				}
			case 2:
				if len(live) > 0 {
					j := arg % len(live)
					s.Discard(live[j].hs)
					e.Discard(live[j].he)
					live = append(live[:j], live[j+1:]...)
				}
			}
			if sv, ev := s.VTNC(), e.VTNC(); sv != ev {
				t.Fatalf("step %d: visible prefix diverged: strict vtnc %d, epoch vtnc %d", i, sv, ev)
			}
			if st, et := s.TNC(), e.TNC(); st != et {
				t.Fatalf("step %d: tnc diverged: strict %d, epoch %d", i, st, et)
			}
			if ss, es := s.Start(), e.Start(); ss != es {
				t.Fatalf("step %d: read-only anchor diverged: strict %d, epoch %d", i, ss, es)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		for _, p := range live {
			s.Complete(p.hs)
			e.Complete(p.he)
		}
		if sv, ev := s.VTNC(), e.VTNC(); sv != ev {
			t.Fatalf("final: strict vtnc %d, epoch vtnc %d", sv, ev)
		}
		if ev, et := e.VTNC(), e.TNC(); ev != et-1 {
			t.Fatalf("final: epoch vtnc %d, want tnc-1 = %d", ev, et-1)
		}
	})
}
