package epoch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvdb/internal/vc"
)

// Driven sequentially, the epoch watermark must equal strict's vtnc
// after every single operation: both advance to (oldest unresolved)-1,
// or tnc-1 once everything has resolved. This is the determinism the
// differential fuzz target leans on; here it is checked over random
// schedules with both implementations side by side.
func TestSequentialEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := vc.New(0)
		e := NewWithShape(0, 4, 8)
		type pair struct{ hs, he vc.Handle }
		var live []pair
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0, 1:
				// Keep the watermark distance inside the ring capacity:
				// a sequential driver that lets a register block on the
				// capacity guard would deadlock.
				if e.Lag() >= e.capacity {
					continue
				}
				live = append(live, pair{s.Register(), e.Register()})
			case 2:
				if len(live) > 0 {
					j := rng.Intn(len(live))
					s.Complete(live[j].hs)
					e.Complete(live[j].he)
					live = append(live[:j], live[j+1:]...)
				}
			case 3:
				if len(live) > 0 {
					j := rng.Intn(len(live))
					s.Discard(live[j].hs)
					e.Discard(live[j].he)
					live = append(live[:j], live[j+1:]...)
				}
			}
			if sv, ev := s.VTNC(), e.VTNC(); sv != ev {
				t.Fatalf("seed %d step %d: strict vtnc %d, epoch vtnc %d", seed, step, sv, ev)
			}
			if st, et := s.TNC(), e.TNC(); st != et {
				t.Fatalf("seed %d step %d: strict tnc %d, epoch tnc %d", seed, step, st, et)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
		for _, p := range live {
			s.Complete(p.hs)
			e.Complete(p.he)
		}
		if sv, ev := s.VTNC(), e.VTNC(); sv != ev || ev != e.TNC()-1 {
			t.Fatalf("seed %d final: strict vtnc %d, epoch vtnc %d, tnc %d", seed, sv, ev, e.TNC())
		}
	}
}

func TestBootstrapSnapshot(t *testing.T) {
	c := New(100)
	if got := c.Start(); got != 100 {
		t.Fatalf("Start = %d, want 100", got)
	}
	h := c.Register()
	if h.TN() != 101 {
		t.Fatalf("first tn = %d, want 101", h.TN())
	}
	if c.Start() != 100 {
		t.Fatalf("Start moved before completion: %d", c.Start())
	}
	c.Complete(h)
	if c.Start() != 101 {
		t.Fatalf("Start = %d after completion, want 101", c.Start())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Out-of-order completion: nothing becomes visible until the oldest
// completes, and then the whole batch publishes in one epoch.
func TestWatermarkBatching(t *testing.T) {
	c := NewWithShape(0, 2, 4)
	const n = 6
	hs := make([]vc.Handle, n)
	for i := range hs {
		hs[i] = c.Register()
	}
	for i := n - 1; i > 0; i-- {
		c.Complete(hs[i])
		if c.VTNC() != 0 {
			t.Fatalf("vtnc %d with tn 1 outstanding", c.VTNC())
		}
	}
	before := c.Epoch()
	c.Complete(hs[0])
	if c.VTNC() != n {
		t.Fatalf("vtnc %d after full drain, want %d", c.VTNC(), n)
	}
	if got := c.Epoch() - before; got != 1 {
		t.Fatalf("final completion published %d epochs, want 1 batch", got)
	}
}

func TestDiscardUnblocksVisibility(t *testing.T) {
	c := NewWithShape(0, 2, 4)
	h1 := c.Register()
	h2 := c.Register()
	c.Complete(h2)
	if c.VTNC() != 0 {
		t.Fatalf("vtnc %d, want 0", c.VTNC())
	}
	c.Discard(h1)
	// The discarded tn 1 no longer holds the horizon; tn 2 is visible.
	if c.VTNC() != 2 {
		t.Fatalf("vtnc %d after discard, want 2", c.VTNC())
	}
	if c.Completions() != 1 || c.Discards() != 1 {
		t.Fatalf("counters %d/%d, want 1/1", c.Completions(), c.Discards())
	}
}

// Slot reuse across many ring generations with a tiny shape.
func TestSlotReuse(t *testing.T) {
	c := NewWithShape(0, 1, 2)
	for i := 0; i < 100; i++ {
		h := c.Register()
		c.Complete(h)
	}
	if c.VTNC() != 100 || c.TNC() != 101 {
		t.Fatalf("vtnc %d tnc %d", c.VTNC(), c.TNC())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The capacity guard must block a registration that would overwrite an
// undrained slot, and release it once the watermark catches up.
func TestCapacityGuard(t *testing.T) {
	c := NewWithShape(0, 1, 2) // capacity 2
	h1 := c.Register()
	h2 := c.Register()
	released := make(chan vc.Handle)
	go func() {
		released <- c.Register() // tn 3 reuses tn 1's slot: must wait
	}()
	select {
	case <-released:
		t.Fatal("Register returned with capacity exhausted")
	case <-time.After(50 * time.Millisecond):
	}
	c.Complete(h1)
	select {
	case h3 := <-released:
		if h3.TN() != 3 {
			t.Fatalf("tn %d, want 3", h3.TN())
		}
		c.Complete(h3)
	case <-time.After(2 * time.Second):
		t.Fatal("Register still blocked after watermark advanced")
	}
	c.Complete(h2)
	if c.VTNC() != 3 {
		t.Fatalf("vtnc %d, want 3", c.VTNC())
	}
}

func TestResolveTwicePanics(t *testing.T) {
	c := New(0)
	h := c.Register()
	c.Complete(h)
	defer func() {
		if recover() == nil {
			t.Fatal("second resolve did not panic")
		}
	}()
	c.Discard(h)
}

func TestForeignHandlePanics(t *testing.T) {
	c := New(0)
	s := vc.New(0)
	h := s.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign handle did not panic")
		}
	}()
	c.Complete(h)
}

// The visible observer fires exactly once per completed registration —
// never for discards — when its tn crosses the published watermark.
func TestVisibleObserver(t *testing.T) {
	c := NewWithShape(0, 2, 4)
	var mu sync.Mutex
	seen := map[uint64]int{}
	c.SetVisibleObserver(func(tn uint64, d time.Duration) {
		mu.Lock()
		seen[tn]++
		mu.Unlock()
		if d < 0 {
			t.Errorf("negative lag %v for tn %d", d, tn)
		}
	})
	h1 := c.Register()
	h2 := c.Register()
	h3 := c.Register()
	c.Complete(h3)
	c.Discard(h2)
	c.Complete(h1)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[1] != 1 || seen[3] != 1 {
		t.Fatalf("observer fired %v, want {1:1, 3:1}", seen)
	}
}

// CompleteObserved reports the obstruction when an older transaction
// still holds the horizon, and stays silent when it does not.
func TestObstruction(t *testing.T) {
	c := NewWithShape(0, 2, 4)
	h1 := c.Register()
	h2 := c.Register()
	var got *vc.Obstruction
	c.CompleteObserved(h2, func(o vc.Obstruction) { got = &o })
	if got == nil {
		t.Fatal("no obstruction reported with tn 1 outstanding")
	}
	if got.HeadTN != 1 || got.Watermark != 0 || got.Depth != 1 {
		t.Fatalf("obstruction %+v, want head 1 watermark 0 depth 1", *got)
	}
	got = nil
	c.CompleteObserved(h1, func(o vc.Obstruction) { got = &o })
	if got != nil {
		t.Fatalf("unexpected obstruction %+v for unobstructed completion", *got)
	}
}

func TestWaitVisible(t *testing.T) {
	c := New(0)
	h1 := c.Register()
	h2 := c.Register()
	done := make(chan struct{})
	go func() {
		c.WaitVisible(2)
		close(done)
	}()
	c.Complete(h2)
	select {
	case <-done:
		t.Fatal("WaitVisible(2) returned with tn 1 outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	c.Complete(h1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitVisible(2) stuck after both completed")
	}
}

// Concurrent hammer: many goroutines register/complete/discard; the
// watermark must end at tnc-1 with invariants intact, and every
// mid-flight Start must be a resolved prefix position.
func TestConcurrentHammer(t *testing.T) {
	c := NewWithShape(0, 4, 64)
	var observed atomic.Uint64
	c.SetVisibleObserver(func(tn uint64, d time.Duration) { observed.Add(1) })
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	var completes atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h := c.Register()
				if rng.Intn(8) == 0 {
					c.Discard(h)
				} else {
					c.Complete(h)
					completes.Add(1)
				}
				if s, v := c.Start(), c.VTNC(); s > v {
					t.Errorf("Start %d above vtnc %d", s, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := uint64(workers * perWorker)
	if tnc := c.TNC(); tnc != total+1 {
		t.Fatalf("tnc %d, want %d", tnc, total+1)
	}
	if vtnc := c.VTNC(); vtnc != total {
		t.Fatalf("vtnc %d, want %d", vtnc, total)
	}
	if got := c.Completions() + c.Discards(); got != total {
		t.Fatalf("resolutions %d, want %d", got, total)
	}
	if got := observed.Load(); got != completes.Load() {
		t.Fatalf("observer fired %d times, want %d", got, completes.Load())
	}
	if c.QueueLen() != 0 {
		t.Fatalf("outstanding %d after drain", c.QueueLen())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Epoch batches under concurrency: with contended lanes the number of
// publishes must not exceed the number of resolutions (and usually sits
// far below it — each epoch covers a batch).
func TestEpochCountBounded(t *testing.T) {
	c := NewWithShape(0, 2, 32)
	const n = 200
	hs := make([]vc.Handle, n)
	for i := range hs {
		if i >= 32 {
			c.Complete(hs[i-32])
		}
		hs[i] = c.Register()
	}
	for i := n - 32; i < n; i++ {
		c.Complete(hs[i])
	}
	if e := c.Epoch(); e == 0 || e > n {
		t.Fatalf("epoch count %d outside (0, %d]", e, n)
	}
}

func TestUnsafeCompleteEagerExposesYoung(t *testing.T) {
	c := NewWithShape(0, 2, 4)
	h1 := c.Register()
	h2 := c.Register()
	c.UnsafeCompleteEager(h2)
	// The ablation publishes tn 2 with tn 1 still outstanding — the
	// Transaction Visibility Property is deliberately broken.
	if c.VTNC() != 2 {
		t.Fatalf("vtnc %d after eager complete, want 2", c.VTNC())
	}
	c.Complete(h1)
	if c.VTNC() != 2 {
		t.Fatalf("vtnc %d, want 2", c.VTNC())
	}
	if c.QueueLen() != 0 {
		t.Fatalf("outstanding %d", c.QueueLen())
	}
}

func TestMode(t *testing.T) {
	if New(0).Mode() != vc.ModeEpoch {
		t.Fatal("Mode != epoch")
	}
	var _ vc.Controller = New(0)
}
