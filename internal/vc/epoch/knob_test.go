package epoch

import (
	"sync"
	"testing"

	"mvdb/internal/vc"
)

// TestPublishEveryLiveness certifies the coalescing knob's safety rule:
// with publishEvery > 1 the final completion must still publish the
// full watermark (no stranded visibility), sequentially and under
// concurrency.
func TestPublishEveryLiveness(t *testing.T) {
	c := New(0)
	c.SetPublishEvery(4)
	if got := c.PublishEvery(); got != 4 {
		t.Fatalf("PublishEvery = %d, want 4", got)
	}
	const n = 100
	handles := make([]vc.Handle, n)
	for i := range handles {
		handles[i] = c.Register()
	}
	for _, h := range handles {
		c.Complete(h)
	}
	if got, want := c.VTNC(), c.TNC()-1; got != want {
		t.Fatalf("after full drain VTNC = %d, want %d", got, want)
	}

	// Concurrent drain: two goroutines race the final completions.
	c2 := New(0)
	c2.SetPublishEvery(8)
	hs := make([]vc.Handle, 64)
	for i := range hs {
		hs[i] = c2.Register()
	}
	var wg sync.WaitGroup
	for half := 0; half < 2; half++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(hs); i += 2 {
				c2.Complete(hs[i])
			}
		}(half)
	}
	wg.Wait()
	if got, want := c2.VTNC(), c2.TNC()-1; got != want {
		t.Fatalf("concurrent drain VTNC = %d, want %d", got, want)
	}
}

// TestPublishEveryWaiters: a WaitVisible waiter disables coalescing, so
// waits complete promptly even mid-stream.
func TestPublishEveryWaiters(t *testing.T) {
	c := New(0)
	c.SetPublishEvery(64)
	h1 := c.Register()
	h2 := c.Register()
	done := make(chan struct{})
	go func() {
		c.WaitVisible(h1.TN())
		close(done)
	}()
	c.Complete(h1)
	<-done // must not hang: waiters force every publish through
	c.Complete(h2)
	if got, want := c.VTNC(), c.TNC()-1; got != want {
		t.Fatalf("VTNC = %d, want %d", got, want)
	}
}

// TestLaneFrontiers: the stalled lane is the one with the minimum
// frontier.
func TestLaneFrontiers(t *testing.T) {
	c := NewWithShape(0, 4, 16)
	hs := make([]vc.Handle, 8)
	for i := range hs {
		hs[i] = c.Register()
	}
	// Complete everything except tn=3: its lane's frontier stays behind.
	var heldLane int
	for _, h := range hs {
		if h.TN() == 3 {
			heldLane = int(h.TN() & 3)
			continue
		}
		c.Complete(h)
	}
	fr := c.LaneFrontiers()
	if len(fr) != 4 {
		t.Fatalf("frontiers = %v, want 4 lanes", fr)
	}
	minLane := 0
	for i, f := range fr {
		if f < fr[minLane] {
			minLane = i
		}
	}
	if minLane != heldLane {
		t.Fatalf("min-frontier lane = %d, want %d (frontiers %v)", minLane, heldLane, fr)
	}
}
