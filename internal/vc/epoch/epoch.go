// Package epoch implements the Version Control module's contract
// (internal/vc.Controller) with decentralized, batched visibility, after
// the epoch/watermark designs of Faleiro & Abadi ("Rethinking
// serializable multiversion concurrency control") and "Decentralizing
// Multiversion Concurrency Control by Leveraging Visibility".
//
// The strict controller funnels every register, complete, and discard
// through one mutex, one ordered queue, and one condition-variable
// broadcast — the paper's Figure 1, and (per EXPERIMENTS O3) the hard
// ceiling on multi-core commit throughput. This implementation keeps the
// module's two properties while removing that funnel:
//
//   - Assignment stays *globally ordered* through a single wait-free
//     atomic fetch-add on tnc. This is deliberate, and weaker than the
//     fully per-worker tn blocks of the cited designs: the 2PL engine
//     registers at the lock-point and the OCC engine inside its
//     validation critical section, and both rely on conflicting
//     transactions' tn order agreeing with their registration order. tn
//     blocks handed out per worker would let a later lock-point receive
//     a smaller tn and break serializability (the MVSG checkers catch
//     exactly this). One uncontended fetch-add is the minimum global
//     coordination that preserves the Transaction Ordering Property for
//     all three protocols; everything *after* assignment is
//     decentralized.
//
//   - Completion tracking is per-lane. tn space is interleaved across P
//     lanes (lane = tn mod P, P a power of two); each lane owns a fixed
//     ring of slots and a *frontier*, the smallest tn in its residue
//     class not yet known resolved. Completing or discarding flips one
//     slot and drains only its own lane under that lane's short mutex —
//     completions in different lanes never touch the same cache lines.
//
//   - Visibility advances by watermark. The visible horizon is
//     min(lane frontiers) - 1: every transaction at or below it has
//     resolved, which is precisely the Transaction Visibility Property.
//     A lane that advances its frontier recomputes the minimum and
//     publishes it to vtnc with a CAS-max; one publish can make a whole
//     batch of transactions visible at once (the "epoch" — the publish
//     generation counter — counts these batches). Read-only
//     transactions anchor on the published watermark with a single
//     atomic load, exactly as strict's Start does, so snapshot reads
//     stay non-blocking.
//
// Why the published watermark never stalls: when two lanes advance their
// frontiers concurrently, each publishes min over *its own* reads of all
// frontiers. Because Go's atomics are sequentially consistent, the two
// store→load pairs (store own frontier, load the other's) cannot both
// miss — at least one publisher observes both new frontiers and
// publishes the true minimum. And driven sequentially, the watermark
// here equals strict's vtnc after every operation — both advance to
// (oldest unresolved tn)-1, or tnc-1 when everything has resolved — a
// determinism the differential fuzz target FuzzVisibilityEquivalence
// checks step by step.
package epoch

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/vc"
)

// Slot states. A slot is empty until the registration that owns its tn
// stores outstanding; resolution CASes outstanding→complete/discarded;
// the lane drain clears it back to empty as the frontier passes.
const (
	slotEmpty uint32 = iota
	slotOutstanding
	slotComplete
	slotDiscarded
)

// DefaultSlots is the per-lane ring size. Lanes × slots bounds the
// number of registered-but-unvisible transactions; Register blocks on
// the capacity guard beyond it (in practice unreachable: it would need
// that many concurrently uncommitted transactions).
const DefaultSlots = 1024

type slot struct {
	state atomic.Uint32
	// regAt is the registration stamp (unix ns), written before the
	// outstanding store and read after the resolved load — the atomic
	// state transitions order it. Stamped only when an observer is
	// installed, mirroring strict's register-path economy.
	regAt int64
}

type lane struct {
	mu sync.Mutex
	// frontier is the smallest tn ≡ lane (mod P) not yet known
	// resolved; written only under mu, read lock-free by publishers.
	frontier atomic.Uint64
	slots    []slot
	// pad keeps hot per-lane state off shared cache lines.
	_ [64]byte
}

// Controller is the epoch-watermark implementation of vc.Controller.
// Call New; the zero value is not usable.
type Controller struct {
	// tnc is the next transaction number to assign; vtnc the published
	// watermark; epoch the publish generation.
	tnc   atomic.Uint64
	vtnc  atomic.Uint64
	epoch atomic.Uint64

	lanes    []lane
	laneMask uint64 // P-1
	laneBits uint   // log2 P
	slotMask uint64 // R-1
	capacity uint64 // P*R: max distance tn may run ahead of vtnc
	initial  uint64 // bootstrap snapshot; tns start at initial+1

	completions atomic.Uint64
	discards    atomic.Uint64

	// publishEvery (adaptive knob): when > 1, watermark publish attempts
	// are coalesced 1-in-n — but only when nobody is waiting on
	// visibility and other outstanding registrations remain to carry the
	// next attempt, so the final completion always publishes and
	// WaitVisible never stalls. pubTick counts the coalesced attempts.
	publishEvery atomic.Int64
	pubTick      atomic.Uint64

	// waitMu/cond serve WaitVisible and the Register capacity guard;
	// waiters gates the publish-side broadcast so the uncontended case
	// never locks.
	waitMu  sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int64

	// pendMu guards pendingVisible: completed (tn, regAt) pairs drained
	// past a frontier but not yet published. The sweep after a
	// successful publish fires the observer for everything at or below
	// the new watermark. Only populated while an observer is installed.
	pendMu         sync.Mutex
	onVisible      func(tn uint64, d time.Duration)
	observing      atomic.Bool
	pendingVisible []pending
}

type pending struct {
	tn    uint64
	regAt int64
}

// handle is the vc.Handle issued by this controller. It carries the tn;
// the slot holds all mutable state.
type handle struct {
	c  *Controller
	tn uint64
}

func (h *handle) TN() uint64 { return h.tn }

// New returns an epoch controller bootstrapped at snapshot `initial`,
// with one lane per GOMAXPROCS rounded up to a power of two (clamped to
// [1, 64]) and DefaultSlots ring slots per lane.
func New(initial uint64) *Controller {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	if p > 64 {
		p = 64
	}
	lanes := 1
	for lanes < p {
		lanes <<= 1
	}
	return NewWithShape(initial, lanes, DefaultSlots)
}

// NewWithShape returns an epoch controller with an explicit lane count
// (power of two) and per-lane ring size (power of two). Tests use small
// shapes to exercise slot reuse and the capacity guard.
func NewWithShape(initial uint64, lanes, slots int) *Controller {
	if lanes < 1 || lanes&(lanes-1) != 0 {
		panic("epoch: lane count must be a power of two")
	}
	if slots < 1 || slots&(slots-1) != 0 {
		panic("epoch: slot count must be a power of two")
	}
	c := &Controller{
		lanes:    make([]lane, lanes),
		laneMask: uint64(lanes - 1),
		laneBits: uint(bits.TrailingZeros64(uint64(lanes))),
		slotMask: uint64(slots - 1),
		capacity: uint64(lanes) * uint64(slots),
		initial:  initial,
	}
	c.tnc.Store(initial + 1)
	c.vtnc.Store(initial)
	c.cond = sync.NewCond(&c.waitMu)
	base := initial + 1
	for l := range c.lanes {
		c.lanes[l].slots = make([]slot, slots)
		// The lane's first owned tn at or after base.
		off := (uint64(l) + uint64(lanes) - base&c.laneMask) & c.laneMask
		c.lanes[l].frontier.Store(base + off)
	}
	return c
}

func (c *Controller) laneOf(tn uint64) *lane { return &c.lanes[tn&c.laneMask] }

func (c *Controller) slotOf(tn uint64) *slot {
	ln := c.laneOf(tn)
	return &ln.slots[(tn>>c.laneBits)&c.slotMask]
}

// Start implements VCstart(): the read-only snapshot anchor is the
// published watermark. One atomic load — non-blocking by construction.
func (c *Controller) Start() uint64 { return c.vtnc.Load() }

// Register assigns the next transaction number with a wait-free
// fetch-add and marks its slot outstanding. The capacity guard keeps tn
// within lanes×slots of the watermark so the slot's previous tenant
// (tn - capacity) has provably drained before the slot is rewritten.
func (c *Controller) Register() vc.Handle {
	tn := c.tnc.Add(1) - 1
	if tn > c.capacity && c.vtnc.Load() < tn-c.capacity {
		// Same recovery protocol as WaitVisible: close the coalescing
		// gate, then replay any publish skipped before we arrived.
		c.waiters.Add(1)
		if c.publishNow() < tn-c.capacity {
			c.waitMu.Lock()
			for c.vtnc.Load() < tn-c.capacity {
				c.cond.Wait()
			}
			c.waitMu.Unlock()
		}
		c.waiters.Add(-1)
	}
	s := c.slotOf(tn)
	if c.observing.Load() {
		s.regAt = time.Now().UnixNano()
	} else {
		s.regAt = 0
	}
	if !s.state.CompareAndSwap(slotEmpty, slotOutstanding) {
		panic("epoch: slot not drained at register (capacity guard broken)")
	}
	return &handle{c: c, tn: tn}
}

// resolve CASes the slot out of outstanding and drains the lane. It
// returns the published watermark after any advance this resolution
// unlocked.
func (c *Controller) resolve(h vc.Handle, to uint32) uint64 {
	hh, ok := h.(*handle)
	if !ok || hh.c != c {
		panic("epoch: handle was not issued by this controller")
	}
	s := c.slotOf(hh.tn)
	if !s.state.CompareAndSwap(slotOutstanding, to) {
		panic("vc: resolve of resolved entry")
	}
	if to == slotComplete {
		c.completions.Add(1)
	} else {
		c.discards.Add(1)
	}
	// Drain unconditionally under the lane mutex. A cheaper "only if tn
	// == frontier" check is unsound: a concurrent drainer can scan our
	// slot just before our CAS lands and then move the frontier past
	// the stale read, while we observe the pre-advance frontier and
	// skip — stranding a completed slot forever. Taking the mutex
	// serializes the two, so one of us always sees the other's work.
	ln := c.laneOf(hh.tn)
	ln.mu.Lock()
	advanced := c.drainLaneLocked(ln)
	ln.mu.Unlock()
	if advanced {
		return c.publish()
	}
	return c.vtnc.Load()
}

// drainLaneLocked walks the lane's frontier over resolved slots,
// clearing each for reuse and stashing completed ones for the observer
// sweep. Caller holds ln.mu.
func (c *Controller) drainLaneLocked(ln *lane) bool {
	f := ln.frontier.Load()
	advanced := false
	observing := c.observing.Load()
	for {
		s := &ln.slots[(f>>c.laneBits)&c.slotMask]
		st := s.state.Load()
		if st != slotComplete && st != slotDiscarded {
			break
		}
		if observing && st == slotComplete && s.regAt != 0 {
			c.pendMu.Lock()
			c.pendingVisible = append(c.pendingVisible, pending{tn: f, regAt: s.regAt})
			c.pendMu.Unlock()
		}
		s.state.Store(slotEmpty)
		f += c.laneMask + 1
		advanced = true
	}
	if advanced {
		ln.frontier.Store(f)
	}
	return advanced
}

// publish recomputes the watermark — min over lane frontiers, minus one
// — and CAS-maxes it into vtnc. A successful raise bumps the epoch,
// wakes waiters, and fires the observer for the newly visible batch.
func (c *Controller) publish() uint64 {
	// Coalescing knob: skip 1-in-n attempts when it is provably safe to
	// defer — no visibility waiters, and at least one registration still
	// outstanding (its own resolution will reach here again). Two racing
	// final completions cannot both skip: each increments its resolution
	// counter before reading QueueLen, and sequentially consistent
	// atomics guarantee at least one observes the other's resolution.
	if n := c.publishEvery.Load(); n > 1 && c.waiters.Load() == 0 && c.QueueLen() > 0 {
		if c.pubTick.Add(1)%uint64(n) != 0 {
			return c.vtnc.Load()
		}
	}
	return c.publishNow()
}

// publishNow is publish without the coalescing gate. Waiters call it
// directly after registering themselves: once waiters > 0 the gate is
// closed for every concurrent completion, so one ungated publish here
// recovers any attempt that was coalesced away before the waiter
// arrived — without it a late waiter could sleep forever behind a
// skipped publish that no future completion replays.
func (c *Controller) publishNow() uint64 {
	min := c.lanes[0].frontier.Load()
	for l := 1; l < len(c.lanes); l++ {
		if f := c.lanes[l].frontier.Load(); f < min {
			min = f
		}
	}
	target := min - 1
	for {
		cur := c.vtnc.Load()
		if target <= cur {
			return cur
		}
		if c.vtnc.CompareAndSwap(cur, target) {
			break
		}
	}
	c.epoch.Add(1)
	if c.waiters.Load() > 0 {
		// Empty critical section: serializes with waiters between their
		// vtnc check and cond.Wait, so the broadcast cannot be lost.
		c.waitMu.Lock()
		c.waitMu.Unlock() //nolint:staticcheck
		c.cond.Broadcast()
	}
	if c.observing.Load() {
		c.sweepVisible(target)
	}
	return target
}

// sweepVisible fires the observer for stashed completions at or below
// the watermark, in tn order (matching strict's drain order).
func (c *Controller) sweepVisible(vtnc uint64) {
	c.pendMu.Lock()
	fn := c.onVisible
	if fn == nil || len(c.pendingVisible) == 0 {
		c.pendMu.Unlock()
		return
	}
	var fire []pending
	keep := c.pendingVisible[:0]
	for _, p := range c.pendingVisible {
		if p.tn <= vtnc {
			fire = append(fire, p)
		} else {
			keep = append(keep, p)
		}
	}
	c.pendingVisible = keep
	nowNS := time.Now().UnixNano()
	sort.Slice(fire, func(i, j int) bool { return fire[i].tn < fire[j].tn })
	for _, p := range fire {
		fn(p.tn, time.Duration(nowNS-p.regAt))
	}
	c.pendMu.Unlock()
}

// Complete implements VCcomplete(T).
func (c *Controller) Complete(h vc.Handle) { c.resolve(h, slotComplete) }

// Discard implements VCdiscard(T).
func (c *Controller) Discard(h vc.Handle) { c.resolve(h, slotDiscarded) }

// CompleteObserved is Complete plus the queued-behind probe: if the
// watermark is still below tn after this completion's own drain and
// publish, an older transaction is holding the horizon back; fn gets the
// oldest unresolved tn, the watermark distance, and the epoch.
func (c *Controller) CompleteObserved(h vc.Handle, fn func(vc.Obstruction)) {
	tn := h.TN()
	vtnc := c.resolve(h, slotComplete)
	if fn == nil || vtnc >= tn {
		return
	}
	min := c.lanes[0].frontier.Load()
	for l := 1; l < len(c.lanes); l++ {
		if f := c.lanes[l].frontier.Load(); f < min {
			min = f
		}
	}
	if min > tn {
		// A concurrent drain already moved the horizon past us between
		// the publish and this scan — no obstruction left to report.
		return
	}
	fn(vc.Obstruction{
		HeadTN:    min,
		Depth:     int(tn - vtnc - 1),
		Watermark: vtnc,
		Epoch:     c.epoch.Load(),
	})
}

// UnsafeCompleteEager is ablation A2: publish tn immediately, in
// completion order, deliberately violating the Transaction Visibility
// Property. Invariants are forfeited from the first call. Test-only.
func (c *Controller) UnsafeCompleteEager(h vc.Handle) {
	tn := h.TN()
	for {
		cur := c.vtnc.Load()
		if tn <= cur {
			break
		}
		if c.vtnc.CompareAndSwap(cur, tn) {
			c.epoch.Add(1)
			if c.waiters.Load() > 0 {
				c.waitMu.Lock()
				c.waitMu.Unlock() //nolint:staticcheck
				c.cond.Broadcast()
			}
			break
		}
	}
	c.resolve(h, slotComplete)
}

// WaitVisible blocks until the watermark reaches n.
func (c *Controller) WaitVisible(n uint64) {
	if c.vtnc.Load() >= n {
		return
	}
	// Register as a waiter before the recovery publish: from this point
	// the coalescing gate (waiters == 0) is closed to every concurrent
	// completion, and the ungated publishNow replays any attempt that
	// was coalesced away before we arrived. publishNow must run outside
	// waitMu — its broadcast path takes that lock.
	c.waiters.Add(1)
	if c.publishNow() < n {
		c.waitMu.Lock()
		for c.vtnc.Load() < n {
			c.cond.Wait()
		}
		c.waitMu.Unlock()
	}
	c.waiters.Add(-1)
}

// SetVisibleObserver installs fn; see vc.Controller. Install before
// concurrent use; nil uninstalls.
func (c *Controller) SetVisibleObserver(fn func(tn uint64, d time.Duration)) {
	c.pendMu.Lock()
	c.onVisible = fn
	c.observing.Store(fn != nil)
	c.pendMu.Unlock()
}

// TNC is the next transaction number to assign.
func (c *Controller) TNC() uint64 { return c.tnc.Load() }

// VTNC is the published watermark.
func (c *Controller) VTNC() uint64 { return c.vtnc.Load() }

// Epoch is the publish generation: how many watermark advances have
// been published. Each publish makes a batch of >= 1 transactions
// visible at once.
func (c *Controller) Epoch() uint64 { return c.epoch.Load() }

// Lag is tnc-1-vtnc: assigned positions not yet visible — the watermark
// lag surfaced by the obs gauges.
func (c *Controller) Lag() uint64 {
	// vtnc before tnc: both only grow, so the difference can only be
	// over-reported, never negative.
	v := c.vtnc.Load()
	t := c.tnc.Load()
	return t - 1 - v
}

// SetPublishEvery retunes the publish-coalescing knob online (the
// adaptive controller's epoch lever). n <= 1 publishes on every lane
// advance — the default, semantically identical to the pre-knob
// behavior; larger n trades visibility latency for fewer CAS publishes
// and observer sweeps under write-heavy load.
func (c *Controller) SetPublishEvery(n int) {
	if n < 1 {
		n = 1
	}
	c.publishEvery.Store(int64(n))
}

// PublishEvery reports the current publish-coalescing factor.
func (c *Controller) PublishEvery() int {
	if n := c.publishEvery.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// LaneFrontiers snapshots every lane's completion frontier — the
// hotspot profiler's lane-occupancy tap. The lane with the smallest
// frontier is the one currently holding the watermark back.
func (c *Controller) LaneFrontiers() []uint64 {
	out := make([]uint64, len(c.lanes))
	for i := range c.lanes {
		out[i] = c.lanes[i].frontier.Load()
	}
	return out
}

// QueueLen is the number of unresolved registrations. There is no
// queue; the count is derived from the counters.
func (c *Controller) QueueLen() int {
	// Resolutions before registrations: a racing Register can only make
	// the outstanding count read high, never negative.
	res := c.completions.Load() + c.discards.Load()
	reg := c.tnc.Load() - 1 - c.initial
	return int(reg - res)
}

// Mode identifies this implementation.
func (c *Controller) Mode() vc.Mode { return vc.ModeEpoch }

// Completions returns the number of Complete calls observed.
func (c *Controller) Completions() uint64 { return c.completions.Load() }

// Discards returns the number of Discard calls observed.
func (c *Controller) Discards() uint64 { return c.discards.Load() }

// CheckInvariants validates: vtnc < tnc; the watermark never passes any
// lane frontier; every frontier stays in its residue class with its
// slot unresolved. Meaningless after UnsafeCompleteEager.
func (c *Controller) CheckInvariants() error {
	vtnc := c.vtnc.Load()
	tnc := c.tnc.Load()
	if vtnc >= tnc {
		return fmt.Errorf("epoch: vtnc (%d) >= tnc (%d)", vtnc, tnc)
	}
	for l := range c.lanes {
		f := c.lanes[l].frontier.Load()
		if f&c.laneMask != uint64(l) {
			return fmt.Errorf("epoch: lane %d frontier %d outside residue class", l, f)
		}
		if f <= vtnc {
			return fmt.Errorf("epoch: lane %d frontier %d at or below vtnc %d", l, f, vtnc)
		}
		if f < tnc {
			st := c.slotOf(f).state.Load()
			if st == slotComplete || st == slotDiscarded {
				// Transient between a concurrent resolve's CAS and its
				// drain; impossible in the quiesced states tests check.
				return fmt.Errorf("epoch: lane %d frontier %d parked on resolved slot", l, f)
			}
		}
	}
	if res, reg := c.completions.Load()+c.discards.Load(), tnc-1-c.initial; res > reg {
		return fmt.Errorf("epoch: %d resolutions exceed %d registrations", res, reg)
	}
	return nil
}

var _ vc.Controller = (*Controller)(nil)
