package vc

import (
	"testing"
)

// FuzzVCLifecycle drives the Strict controller through a random register
// / complete / discard sequence decoded from the fuzz input and checks
// the Controller contract's invariants after every step:
//
//   - vtnc <= tnc-1 (visibility never runs ahead of assignment),
//   - vtnc is monotonically non-decreasing,
//   - VCstart (the read-only start number) is never above vtnc,
//   - the unresolved count is bounded by the live handles,
//
// and, at the end, that completing every remaining transaction resolves
// everything and catches vtnc all the way up to tnc-1.
//
// The queue-shape checks (sortedness, head-is-oldest) live in
// CheckInvariants because they are Strict implementation details, not
// part of the Controller contract; the cross-implementation contract is
// fuzzed by FuzzVisibilityEquivalence in internal/vc/epoch, which runs
// the same sequence against Strict and the epoch controller and demands
// identical vtnc at every step.
func FuzzVCLifecycle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0})                   // register, complete it
	f.Add([]byte{0, 0, 2, 0})                   // register, discard it
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 0, 1, 0}) // out-of-order resolution
	f.Add([]byte{3, 2, 0, 0, 1, 0, 1, 0})       // number-skipping registration
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(0)
		var live []Handle
		lastVTNC := c.VTNC()
		resolved := uint64(0)
		registered := 0
		discarded := 0
		for i := 0; i < len(data); i++ {
			op := data[i] % 4
			arg := 0
			if i+1 < len(data) {
				i++
				arg = int(data[i])
			}
			switch op {
			case 0:
				live = append(live, c.Register())
				registered++
			case 1:
				if len(live) > 0 {
					j := arg % len(live)
					c.Complete(live[j])
					live = append(live[:j], live[j+1:]...)
					resolved++
				}
			case 2:
				if len(live) > 0 {
					j := arg % len(live)
					c.Discard(live[j])
					live = append(live[:j], live[j+1:]...)
					resolved++
					discarded++
				}
			case 3:
				// Distributed-style registration that may skip numbers
				// (skipped numbers never hold back visibility).
				live = append(live, c.RegisterAtLeast(c.Reserve()+uint64(arg%3)))
				registered++
			}

			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			start := c.Start()
			vtnc := c.VTNC()
			tnc := c.TNC()
			if start > vtnc {
				t.Fatalf("step %d: VCstart %d above vtnc %d", i, start, vtnc)
			}
			if vtnc > tnc-1 {
				t.Fatalf("step %d: vtnc %d > tnc-1 %d", i, vtnc, tnc-1)
			}
			if vtnc < lastVTNC {
				t.Fatalf("step %d: vtnc regressed %d -> %d", i, lastVTNC, vtnc)
			}
			lastVTNC = vtnc
			// The queue holds every live entry plus completed entries not
			// yet drained past the head; discarded entries leave at once.
			if got := c.QueueLen(); got < len(live) || got > registered-discarded {
				t.Fatalf("step %d: queue length %d outside [%d, %d]", i, got, len(live), registered-discarded)
			}
			if got := c.Completions() + c.Discards(); got != resolved {
				t.Fatalf("step %d: completions+discards %d, resolved %d", i, got, resolved)
			}
		}

		// Completing everything left must make every assigned number
		// visible: queue empty, vtnc caught up to tnc-1.
		for _, e := range live {
			c.Complete(e)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("after final drain: %v", err)
		}
		if c.QueueLen() != 0 {
			t.Fatalf("after final drain: queue length %d", c.QueueLen())
		}
		if vtnc, tnc := c.VTNC(), c.TNC(); vtnc != tnc-1 {
			t.Fatalf("after final drain: vtnc %d, want tnc-1 = %d", vtnc, tnc-1)
		}
	})
}
