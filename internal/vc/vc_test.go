package vc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestStartInitial(t *testing.T) {
	c := New(0)
	if got := c.Start(); got != 0 {
		t.Fatalf("Start() = %d, want 0", got)
	}
	if got := c.TNC(); got != 1 {
		t.Fatalf("TNC() = %d, want 1", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAssignsSequentialNumbers(t *testing.T) {
	c := New(0)
	for want := uint64(1); want <= 10; want++ {
		e := c.Register()
		if e.TN() != want {
			t.Fatalf("Register() tn = %d, want %d", e.TN(), want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteInOrderAdvancesVTNC(t *testing.T) {
	c := New(0)
	e1, e2, e3 := c.Register(), c.Register(), c.Register()
	c.Complete(e1)
	if got := c.VTNC(); got != 1 {
		t.Fatalf("after complete(1): vtnc = %d, want 1", got)
	}
	c.Complete(e2)
	c.Complete(e3)
	if got := c.VTNC(); got != 3 {
		t.Fatalf("after complete(1,2,3): vtnc = %d, want 3", got)
	}
	if got := c.QueueLen(); got != 0 {
		t.Fatalf("queue len = %d, want 0", got)
	}
}

// The heart of the Transaction Visibility Property: a younger transaction
// completing before an older one must not become visible until the older
// one resolves (paper Section 4.1).
func TestOutOfOrderCompletionDelaysVisibility(t *testing.T) {
	c := New(0)
	e1, e2 := c.Register(), c.Register()

	c.Complete(e2)
	if got := c.VTNC(); got != 0 {
		t.Fatalf("vtnc = %d after completing only younger txn, want 0", got)
	}
	if got := c.Start(); got != 0 {
		t.Fatalf("Start() = %d, want 0: T2's updates must stay invisible", got)
	}

	c.Complete(e1)
	if got := c.VTNC(); got != 2 {
		t.Fatalf("vtnc = %d, want 2 after both completed", got)
	}
}

func TestDiscardUnblocksVisibility(t *testing.T) {
	c := New(0)
	e1, e2, e3 := c.Register(), c.Register(), c.Register()
	c.Complete(e2)
	c.Complete(e3)
	if got := c.VTNC(); got != 0 {
		t.Fatalf("vtnc = %d, want 0 while T1 active", got)
	}
	c.Discard(e1) // T1 aborts: visibility may skip its number
	if got := c.VTNC(); got != 3 {
		t.Fatalf("vtnc = %d, want 3 after head discard", got)
	}
}

func TestDiscardMiddleLeavesVisibilityAlone(t *testing.T) {
	c := New(0)
	e1, e2, e3 := c.Register(), c.Register(), c.Register()
	c.Discard(e2)
	if got := c.VTNC(); got != 0 {
		t.Fatalf("vtnc = %d, want 0", got)
	}
	c.Complete(e1)
	// Gap rule: position 2 was discarded and can never be reassigned, so
	// visibility advances through it up to the next active entry.
	if got := c.VTNC(); got != 2 {
		t.Fatalf("vtnc = %d, want 2", got)
	}
	c.Complete(e3)
	if got := c.VTNC(); got != 3 {
		t.Fatalf("vtnc = %d, want 3", got)
	}
}

func TestVTNCSkipsDiscardedNumbers(t *testing.T) {
	c := New(0)
	e1 := c.Register()
	e2 := c.Register()
	e3 := c.Register()
	c.Complete(e1)
	c.Discard(e2)
	c.Complete(e3)
	// 2 was never a committed transaction; vtnc=3 asserts "all tn<=3
	// completed", which is vacuously true for the discarded 2.
	if got := c.VTNC(); got != 3 {
		t.Fatalf("vtnc = %d, want 3", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAtLeastSkipsNumbers(t *testing.T) {
	c := New(0)
	e := c.RegisterAtLeast(10)
	if e.TN() != 10 {
		t.Fatalf("tn = %d, want 10", e.TN())
	}
	e2 := c.Register()
	if e2.TN() != 11 {
		t.Fatalf("tn = %d, want 11", e2.TN())
	}
	c.Complete(e)
	if got := c.VTNC(); got != 10 {
		t.Fatalf("vtnc = %d, want 10", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAtLeastLowerThanTNC(t *testing.T) {
	c := New(0)
	c.Register() // tn 1
	e := c.RegisterAtLeast(1)
	if e.TN() != 2 {
		t.Fatalf("tn = %d, want 2 (must not reuse numbers)", e.TN())
	}
}

func TestReserve(t *testing.T) {
	c := New(5)
	if got := c.Reserve(); got != 6 {
		t.Fatalf("Reserve() = %d, want 6", got)
	}
	if e := c.Register(); e.TN() != 6 {
		t.Fatalf("Register() after Reserve = %d, want 6", e.TN())
	}
}

func TestLag(t *testing.T) {
	c := New(0)
	if got := c.Lag(); got != 0 {
		t.Fatalf("Lag() = %d, want 0", got)
	}
	e1 := c.Register()
	e2 := c.Register()
	c.Complete(e2)
	if got := c.Lag(); got != 2 {
		t.Fatalf("Lag() = %d, want 2 (positions 1,2 invisible)", got)
	}
	c.Complete(e1)
	if got := c.Lag(); got != 0 {
		t.Fatalf("Lag() = %d, want 0", got)
	}
}

func TestWaitVisible(t *testing.T) {
	c := New(0)
	e1 := c.Register()
	done := make(chan uint64)
	go func() {
		c.WaitVisible(1)
		done <- c.Start()
	}()
	select {
	case <-done:
		t.Fatal("WaitVisible returned before completion")
	case <-time.After(10 * time.Millisecond):
	}
	c.Complete(e1)
	select {
	case sn := <-done:
		if sn != 1 {
			t.Fatalf("start after WaitVisible = %d, want 1", sn)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitVisible never woke")
	}
}

func TestWaitVisibleAlreadyVisible(t *testing.T) {
	c := New(7)
	donec := make(chan struct{})
	go func() { c.WaitVisible(3); close(donec) }()
	select {
	case <-donec:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitVisible(3) blocked although vtnc=7")
	}
}

func TestResolveTwicePanics(t *testing.T) {
	c := New(0)
	e := c.Register()
	c.Complete(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double resolve")
		}
	}()
	c.Discard(e)
}

func TestCompletionsAndDiscardsCounters(t *testing.T) {
	c := New(0)
	e1, e2 := c.Register(), c.Register()
	c.Complete(e1)
	c.Discard(e2)
	if got := c.Completions(); got != 1 {
		t.Fatalf("Completions = %d, want 1", got)
	}
	if got := c.Discards(); got != 1 {
		t.Fatalf("Discards = %d, want 1", got)
	}
}

// Property: under any interleaving of register/complete/discard, the two
// paper properties hold: vtnc is the largest fully-completed prefix
// position, and vtnc < tnc.
func TestPropertyRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(0)
		type st struct {
			e        Handle
			resolved bool
			aborted  bool
		}
		var txns []*st
		resolvedState := make(map[uint64]bool) // tn -> committed?

		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				txns = append(txns, &st{e: c.Register()})
			default:
				// resolve a random unresolved txn
				var open []*st
				for _, s := range txns {
					if !s.resolved {
						open = append(open, s)
					}
				}
				if len(open) == 0 {
					continue
				}
				s := open[rng.Intn(len(open))]
				s.resolved = true
				if rng.Intn(4) == 0 {
					s.aborted = true
					c.Discard(s.e)
					resolvedState[s.e.TN()] = false
				} else {
					c.Complete(s.e)
					resolvedState[s.e.TN()] = true
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			// Model check: expected vtnc = largest n such that every
			// tn in [1, n] is resolved (committed or aborted) and at
			// least... per Figure 1 vtnc is set to the tn of completed
			// head entries only; aborted entries are skipped over.
			expected := uint64(0)
			for n := uint64(1); ; n++ {
				done, assigned := resolvedState[n]
				_ = done
				if !assigned {
					// n unassigned or unresolved
					inUse := false
					for _, s := range txns {
						if s.e.TN() == n && !s.resolved {
							inUse = true
						}
					}
					if inUse {
						break
					}
					if n >= c.TNC() {
						break
					}
					// assigned+resolved map miss cannot happen; defensive
					break
				}
				expected = n
			}
			// expected counts a maximal resolved prefix, but Figure 1 only
			// advances vtnc onto *completed* entries; if the prefix ends in
			// aborted entries, vtnc may lag behind `expected`. Accept
			// vtnc <= expected, and require vtnc >= last committed tn in
			// the prefix.
			lastCommitted := uint64(0)
			for n := uint64(1); n <= expected; n++ {
				if resolvedState[n] {
					lastCommitted = n
				}
			}
			got := c.VTNC()
			if got > expected || got < lastCommitted {
				t.Logf("seed %d step %d: vtnc=%d, want in [%d,%d]", seed, step, got, lastCommitted, expected)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: visibility never regresses and never exposes an incomplete
// transaction, even under heavy concurrency.
func TestConcurrentRegisterComplete(t *testing.T) {
	c := New(0)
	const workers = 8
	const perWorker = 500

	// completedUpTo[tn] set before Complete(tn) is invoked.
	var mu sync.Mutex
	completed := make(map[uint64]bool)
	var maxCommitted uint64

	var workersWG, obsWG sync.WaitGroup
	stop := make(chan struct{})
	// Observer: every Start() snapshot must only cover completed txns.
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := c.Start()
			mu.Lock()
			for n := uint64(1); n <= sn; n++ {
				if !completed[n] {
					mu.Unlock()
					panic("visibility property violated")
				}
			}
			mu.Unlock()
		}
	}()

	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				e := c.Register()
				if rng.Intn(8) == 0 {
					mu.Lock()
					completed[e.TN()] = true // discarded: vacuously complete
					mu.Unlock()
					c.Discard(e)
					continue
				}
				// simulate some work
				if rng.Intn(4) == 0 {
					time.Sleep(time.Microsecond)
				}
				mu.Lock()
				completed[e.TN()] = true
				if e.TN() > maxCommitted {
					maxCommitted = e.TN()
				}
				mu.Unlock()
				c.Complete(e)
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	obsWG.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.QueueLen(); got != 0 {
		t.Fatalf("final queue len = %d, want 0", got)
	}
	if got := c.VTNC(); got < maxCommitted || got > uint64(workers*perWorker) {
		t.Fatalf("final vtnc = %d, want in [%d,%d]", got, maxCommitted, workers*perWorker)
	}
}

func TestStartIsMonotone(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := c.Start()
			if sn < last {
				panic("Start regressed")
			}
			last = sn
		}
	}()
	for i := 0; i < 2000; i++ {
		e := c.Register()
		c.Complete(e)
	}
	close(stop)
	wg.Wait()
}

func TestStridedRegister(t *testing.T) {
	c := NewStrided(0, 2, 4)
	if got := c.TNC(); got != 2 {
		t.Fatalf("initial tnc = %d, want 2", got)
	}
	e1, e2 := c.Register(), c.Register()
	if e1.TN() != 2 || e2.TN() != 6 {
		t.Fatalf("tns = %d,%d, want 2,6", e1.TN(), e2.TN())
	}
	c.Complete(e1)
	// Gap rule: stride gaps (3..5) are unassignable, so vtnc runs up to
	// just below the still-active e2.
	if got := c.VTNC(); got != 5 {
		t.Fatalf("vtnc = %d, want 5", got)
	}
	c.Complete(e2)
	// Queue empty: vtnc = tnc-1 (tnc is 10 after e2's stride bump).
	if got := c.VTNC(); got != 9 {
		t.Fatalf("vtnc = %d, want 9", got)
	}
}

func TestStridedOffsetZero(t *testing.T) {
	c := NewStrided(0, 0, 4)
	if e := c.Register(); e.TN() != 4 {
		t.Fatalf("tn = %d, want 4 (first aligned value past 0)", e.TN())
	}
}

func TestRegisterExact(t *testing.T) {
	c := NewStrided(0, 1, 3) // local numbers 1, 4, 7, ...
	e1 := c.Register()       // 1
	adopted, err := c.RegisterExact(5)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.TN() != 5 {
		t.Fatalf("adopted tn = %d, want 5", adopted.TN())
	}
	// Local assignment resumes at the next residue-1 value past 5.
	e2 := c.Register()
	if e2.TN() != 7 {
		t.Fatalf("post-adopt tn = %d, want 7", e2.TN())
	}
	// Stale decisions are rejected.
	if _, err := c.RegisterExact(3); err == nil {
		t.Fatal("RegisterExact(3) accepted behind tnc")
	}
	c.Complete(e1)
	c.Complete(adopted)
	c.Complete(e2)
	// Queue empty: vtnc = tnc-1 = 9 (gap rule; tnc realigned to 10).
	if got := c.VTNC(); got != 9 {
		t.Fatalf("vtnc = %d, want 9", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNextAligned(t *testing.T) {
	tests := []struct {
		after, offset, step, want uint64
	}{
		{0, 0, 1, 1},
		{5, 0, 1, 6},
		{0, 1, 4, 1},
		{1, 1, 4, 5},
		{2, 1, 4, 5},
		{4, 1, 4, 5},
		{5, 1, 4, 9},
		{0, 0, 4, 4},
		{7, 3, 4, 11},
		{6, 3, 4, 7},
	}
	for _, tc := range tests {
		if got := nextAligned(tc.after, tc.offset, tc.step); got != tc.want {
			t.Errorf("nextAligned(%d,%d,%d) = %d, want %d", tc.after, tc.offset, tc.step, got, tc.want)
		}
	}
}

func TestUnsafeCompleteEagerExposesYoung(t *testing.T) {
	c := New(0)
	e1, e2 := c.Register(), c.Register()
	c.UnsafeCompleteEager(e2)
	if got := c.VTNC(); got != 2 {
		t.Fatalf("eager vtnc = %d, want 2 (the whole point of the ablation)", got)
	}
	// The stranded older entry still drains without regressing vtnc.
	c.Complete(e1)
	if got := c.VTNC(); got != 2 {
		t.Fatalf("vtnc regressed to %d", got)
	}
	if got := c.QueueLen(); got != 0 {
		t.Fatalf("queue len = %d", got)
	}
}

func TestNewStridedValidation(t *testing.T) {
	for _, tc := range []struct{ off, step uint64 }{{0, 0}, {4, 4}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStrided(0,%d,%d) did not panic", tc.off, tc.step)
				}
			}()
			NewStrided(0, tc.off, tc.step)
		}()
	}
}

func TestWaitVisibleManyWaiters(t *testing.T) {
	c := New(0)
	e := c.Register()
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.WaitVisible(1)
		}()
	}
	time.Sleep(5 * time.Millisecond)
	c.Complete(e)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters not all released")
	}
}

func TestGapAdvanceOnEmptyQueue(t *testing.T) {
	c := NewStrided(0, 2, 5) // local numbers 2, 7, 12, ...
	e := c.Register()        // tn 2
	c.Complete(e)
	// tnc is now 7; positions 3..6 are unassignable, so vtnc = 6.
	if got := c.VTNC(); got != 6 {
		t.Fatalf("vtnc = %d, want 6 (gap rule)", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
