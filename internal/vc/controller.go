// Controller interface: the Version Control module's contract, extracted
// so the engine can select between interchangeable visibility
// implementations.
//
// The paper defines the module by three pieces of state (tnc, vtnc,
// VCQueue) and two properties (Transaction Ordering, Transaction
// Visibility). The *contract* below is only the properties plus the
// operations Figure 1 names — how an implementation tracks the
// in-between state is its own business:
//
//   - Strict (this package) is the paper's literal data structure: a
//     mutex-guarded ordered queue drained one transaction at a time, so
//     vtnc advances on every head completion.
//   - epoch.Controller (package internal/vc/epoch) decentralizes the
//     same contract: completions publish into per-lane frontiers and
//     vtnc advances in batches to a low-water watermark, trading
//     per-completion visibility for an uncontended completion path.
//
// Every implementation must preserve, at all times:
//
//   - vtnc < tnc (visibility never runs ahead of assignment);
//   - vtnc is monotonically non-decreasing;
//   - every transaction with tn <= vtnc has resolved (completed or
//     discarded) — the Transaction Visibility Property;
//   - Register hands out strictly increasing numbers, so a register
//     that happens-after another register receives a larger tn — the
//     Transaction Ordering Property. The 2PL and OCC engines depend on
//     this: they register at the lock-point / inside the validation
//     critical section, where conflicting registrations are already
//     serialized, and the assigned tn order must agree with that
//     serialization order.
package vc

import (
	"fmt"
	"time"
)

// Mode selects a Controller implementation.
type Mode int

const (
	// ModeStrict is the paper's Figure 1 queue: visibility advances one
	// transaction at a time, strictly in serialization order. The default.
	ModeStrict Mode = iota
	// ModeEpoch is the decentralized watermark design (internal/vc/epoch):
	// per-lane completion frontiers, batched vtnc advancement.
	ModeEpoch
)

func (m Mode) String() string {
	switch m {
	case ModeEpoch:
		return "epoch"
	default:
		return "strict"
	}
}

// ParseMode parses "strict" or "epoch" (the -vc flag vocabulary).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "strict", "":
		return ModeStrict, nil
	case "epoch":
		return ModeEpoch, nil
	}
	return ModeStrict, fmt.Errorf("vc: unknown visibility mode %q (want strict or epoch)", s)
}

// Handle identifies one registered read-write transaction to the
// controller that issued it. A handle must be resolved exactly once, by
// Complete or Discard, on the controller that created it.
type Handle interface {
	// TN is the transaction number assigned at registration.
	TN() uint64
}

// Obstruction describes why a completing transaction's visibility is
// deferred: an older registered-but-unresolved transaction still holds
// the horizon back. It is the evidence behind the queued-behind trace
// blame edge.
type Obstruction struct {
	// HeadTN is the oldest unresolved transaction number — the one the
	// completer is queued behind.
	HeadTN uint64
	// Depth is how far the completer sits above the visibility horizon:
	// for Strict the VCQueue length at the completion instant, for the
	// epoch controller the watermark distance tn - vtnc - 1.
	Depth int
	// Watermark is the visibility horizon (vtnc) at the completion
	// instant.
	Watermark uint64
	// Epoch is the visibility-advance generation (0 under Strict, which
	// has no epochs; under the epoch controller, the number of watermark
	// publishes so far).
	Epoch uint64
}

// Controller is the Version Control module behind an interface. All
// methods are safe for concurrent use. Start must be wait-free (the
// read-only begin path is the paper's "almost negligible overhead"
// claim), and WaitVisible(n) must return once VTNC() >= n.
type Controller interface {
	// Start implements VCstart(): the snapshot number for a read-only
	// transaction. Equal to VTNC; wait-free.
	Start() uint64
	// Register implements VCregister(T, "active"): assign the next
	// transaction number. Call only once the transaction's serial order
	// is fixed (lock-point, begin under T/O, inside OCC validation).
	Register() Handle
	// Complete implements VCcomplete(T). Visibility advances when (and
	// only when) every older registration has also resolved.
	Complete(Handle)
	// CompleteObserved is Complete plus a causal probe: when the
	// completing transaction's visibility is deferred behind an older
	// unresolved one, fn receives the obstruction. fn runs inside the
	// controller's critical section — it must be cheap and must not call
	// back into the controller.
	CompleteObserved(Handle, func(Obstruction))
	// Discard implements VCdiscard(T): remove an aborted registration.
	Discard(Handle)
	// UnsafeCompleteEager is ablation A2: advance vtnc in completion
	// order, deliberately violating the Transaction Visibility Property.
	// Test-only; see DESIGN.md.
	UnsafeCompleteEager(Handle)
	// WaitVisible blocks until VTNC() >= n (Section 6 recency
	// rectification).
	WaitVisible(n uint64)
	// TNC is the next transaction number to be assigned.
	TNC() uint64
	// VTNC is the visibility horizon: the largest n with every tn <= n
	// resolved. Wait-free.
	VTNC() uint64
	// Lag is tnc-1-vtnc: assigned positions not yet visible.
	Lag() uint64
	// QueueLen is the number of unresolved registrations (for the epoch
	// controller, the outstanding count — there is no queue).
	QueueLen() int
	// Completions and Discards count resolutions by kind.
	Completions() uint64
	Discards() uint64
	// SetVisibleObserver installs fn, called exactly once per completed
	// registration when its number becomes visible, with the
	// register→visible lag. Install before concurrent use; nil
	// uninstalls. fn runs inside a controller critical section.
	SetVisibleObserver(fn func(tn uint64, d time.Duration))
	// Mode names the implementation ("strict", "epoch") for gauges.
	Mode() Mode
	// CheckInvariants validates internal consistency (tests).
	CheckInvariants() error
}
