// Package vc implements the Version Control module of Sengupta & Agrawal
// (CUCS-426-89, Figure 1): the component that decouples version visibility
// from concurrency control in a multiversion database.
//
// The module owns exactly three pieces of state:
//
//   - tnc, the transaction number counter: the next serialization number
//     that will be handed to a read-write transaction.
//   - vtnc, the visible transaction number counter: the largest number n
//     such that every read-write transaction with tn <= n has completed.
//   - VCQueue, the ordered list of transactions that have been assigned a
//     transaction number (their serial position is fixed) but whose updates
//     are not yet visible, either because they are still active or because
//     an older transaction is.
//
// Two invariants are maintained at all times (paper, Section 4.1):
//
//   - Transaction Ordering Property: every transaction that is active and
//     unassigned, or that arrives later, receives tn >= tnc.
//   - Transaction Visibility Property: vtnc is the largest number such
//     that all transactions T with tn(T) <= vtnc have completed.
//
// Together with vtnc < tnc, these guarantee that a read-only transaction
// that snapshots vtnc at start observes a committed prefix of the serial
// order that can never be perturbed by active or future transactions.
//
// Since the interface split, this package holds the module's *contract*
// (the Controller interface, Handle, Mode — see controller.go) plus the
// paper-literal Strict implementation below. The VCQueue is a Strict
// detail, not part of the contract: the epoch implementation
// (internal/vc/epoch) maintains the same two properties with per-lane
// completion frontiers and a batched watermark instead of a queue.
package vc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Entry is a VCQueue node for one registered read-write transaction.
// Entries are created by Register and must be resolved exactly once, by
// either Complete (commit) or Discard (abort).
type Entry struct {
	tn       uint64
	complete bool
	resolved bool  // fully removed from the queue (or discarded)
	regAt    int64 // registration time (unix ns); stamped only when a visible observer is installed
	prev     *Entry
	next     *Entry
}

// TN returns the transaction number assigned at registration time.
func (e *Entry) TN() uint64 { return e.tn }

// Strict is the paper's Version Control module, exactly as in Figure 1: a
// mutex-guarded VCQueue drained one transaction at a time, so vtnc
// advances on every head completion. It is the reference implementation
// of the Controller interface (see controller.go); the epoch-watermark
// alternative lives in internal/vc/epoch. The zero value is not usable;
// call New.
//
// Strict is safe for concurrent use. Start is wait-free (a single
// atomic load), matching the paper's claim that read-only transactions
// have "almost negligible overhead": they interact with this module once,
// and that interaction does not contend with read-write registration.
type Strict struct {
	mu   sync.Mutex
	cond *sync.Cond

	// vtnc is stored atomically so Start never takes the mutex.
	vtnc atomic.Uint64

	tnc    uint64
	step   uint64 // Register stride (1 = centralized; >1 = one residue class per site)
	offset uint64 // residue of numbers this controller hands out locally
	head   *Entry
	tail   *Entry
	size   int

	// completions counts Complete calls; discards counts Discard calls.
	completions atomic.Uint64
	discards    atomic.Uint64

	// onVisible, when set, observes each entry's register→visible lag
	// (paper Section 6's delayed visibility, measured per transaction).
	// Guarded by mu; see SetVisibleObserver.
	onVisible func(tn uint64, d time.Duration)
}

// New returns a Strict controller whose visible state is the bootstrap
// snapshot `initial`. Data loaded before transaction processing begins
// should be versioned with a number <= initial (conventionally 0). The
// first registered read-write transaction receives tn = initial+1.
func New(initial uint64) *Strict {
	return NewStrided(initial, 0, 1)
}

// NewStrided returns a Strict controller whose locally assigned transaction
// numbers all satisfy tn ≡ offset (mod step). The distributed extension
// (Section 6; internal/dist) gives each site one residue class, making
// locally assigned numbers globally unique without coordination; numbers
// outside the class can still be adopted via RegisterExact when a
// two-phase-commit vote forces one global number onto all participants.
func NewStrided(initial, offset, step uint64) *Strict {
	if step == 0 {
		panic("vc: step must be >= 1")
	}
	if offset >= step {
		panic("vc: offset must be < step")
	}
	c := &Strict{step: step, offset: offset}
	c.tnc = nextAligned(initial, offset, step)
	c.vtnc.Store(initial)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// nextAligned returns the smallest value > after with ≡ offset (mod step).
func nextAligned(after, offset, step uint64) uint64 {
	n := after + 1
	rem := n % step
	if rem == offset {
		return n
	}
	if rem < offset {
		return n + (offset - rem)
	}
	return n + step - rem + offset
}

// Start implements VCstart() (paper Figure 1): it returns the start number
// for a read-only transaction, i.e. the current value of vtnc. The caller
// then serves every read from the largest version <= the returned number.
func (c *Strict) Start() uint64 {
	return c.vtnc.Load()
}

// Register implements VCregister(T, "active"): it assigns the next
// transaction number and appends the transaction to VCQueue. It must be
// called at the moment the transaction's serial order becomes fixed —
// at begin for timestamp ordering, at the lock-point for two-phase
// locking, during validation for optimistic schemes.
func (c *Strict) Register() Handle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registerLocked()
}

// entry recovers the concrete queue node behind a Handle. Resolving a
// handle issued by a different implementation is a programming error.
func entry(h Handle) *Entry {
	e, ok := h.(*Entry)
	if !ok || e == nil {
		panic("vc: handle was not issued by a Strict controller")
	}
	return e
}

func (c *Strict) registerLocked() *Entry {
	e := c.newEntryLocked(c.tnc)
	c.tnc += c.step
	c.pushBack(e)
	return e
}

// newEntryLocked builds an entry, stamping the registration time only
// when someone is watching — the stamp is the one extra cost on the
// register path and it is skipped entirely when phase timing is off.
func (c *Strict) newEntryLocked(tn uint64) *Entry {
	e := &Entry{tn: tn}
	if c.onVisible != nil {
		e.regAt = time.Now().UnixNano()
	}
	return e
}

// SetVisibleObserver installs fn, called once per registered entry when
// the drain pops it and its number becomes visible, with the entry's
// register→visible lag. It runs with the controller's mutex held — it
// must be cheap and must not call back into the controller. Install
// before concurrent use; nil uninstalls.
func (c *Strict) SetVisibleObserver(fn func(tn uint64, d time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onVisible = fn
}

// RegisterExact assigns exactly the transaction number tn, which must not
// precede the next local assignment (otherwise ordering would be
// violated); the error reports a stale coordinator decision. It is the
// commit-side half of the distributed max-vote: every participant of a
// distributed transaction adopts the same globally chosen number. Local
// assignment resumes at the next stride point past tn.
func (c *Strict) RegisterExact(tn uint64) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tn < c.tnc {
		return nil, fmt.Errorf("vc: RegisterExact(%d) behind tnc %d", tn, c.tnc)
	}
	e := c.newEntryLocked(tn)
	c.tnc = nextAligned(tn, c.offset, c.step)
	c.pushBack(e)
	return e, nil
}

// RegisterAtLeast assigns a transaction number >= min, advancing tnc past
// min if necessary. It is used by the distributed extension, where a
// coordinator's max-vote may force a site to skip numbers so that one
// global transaction carries the same number at every participant.
// Skipped numbers never correspond to a transaction, so the Transaction
// Visibility Property is unaffected.
func (c *Strict) RegisterAtLeast(min uint64) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	tn := c.tnc
	if tn < min {
		tn = min
	}
	e := c.newEntryLocked(tn)
	c.tnc = nextAligned(tn, c.offset, c.step)
	c.pushBack(e)
	return e
}

// Reserve returns the transaction number the next Register call would
// assign, without assigning it. It is the "proposal" half of the
// distributed max-vote: the coordinator gathers Reserve values from all
// participants and registers the maximum everywhere via RegisterAtLeast.
func (c *Strict) Reserve() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tnc
}

// Discard implements VCdiscard(T): it removes an aborted transaction from
// VCQueue. If the aborted transaction was the only obstacle holding vtnc
// back, visibility advances over the completed transactions behind it.
func (c *Strict) Discard(h Handle) {
	e := entry(h)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.resolved {
		panic("vc: Discard of resolved entry")
	}
	atHead := e == c.head
	c.unlink(e)
	e.resolved = true
	c.discards.Add(1)
	if atHead {
		c.drainLocked()
	}
}

// Complete implements VCcomplete(T): it marks the transaction complete
// and, while the head of VCQueue is complete, removes the head and
// advances vtnc to its transaction number. This is the only place vtnc
// changes, which is exactly how the Transaction Visibility Property is
// enforced: visibility follows serialization order, not completion order.
func (c *Strict) Complete(h Handle) {
	e := entry(h)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.resolved {
		panic("vc: Complete of resolved entry")
	}
	e.complete = true
	c.completions.Add(1)
	c.drainLocked()
}

// CompleteObserved is Complete plus a causal probe: when the completing
// transaction is not at the head of VCQueue — its visibility is being
// deferred behind an older registered-but-incomplete transaction — fn
// reports the obstruction: the head's transaction number, the queue
// length, and the visibility horizon at that instant. fn runs under the
// controller mutex, before the drain (after it the evidence is gone: if
// the head completes first, the drain can make this very entry visible
// and fire the visibility observer synchronously), so it must not call
// back into the controller.
func (c *Strict) CompleteObserved(h Handle, fn func(Obstruction)) {
	e := entry(h)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.resolved {
		panic("vc: Complete of resolved entry")
	}
	e.complete = true
	c.completions.Add(1)
	if fn != nil && c.head != nil && c.head != e {
		fn(Obstruction{
			HeadTN:    c.head.tn,
			Depth:     c.size,
			Watermark: c.vtnc.Load(),
		})
	}
	c.drainLocked()
}

// UnsafeCompleteEager is ablation A2 (see DESIGN.md): it advances vtnc to
// the completing transaction's number immediately, in completion order
// rather than serialization order, deliberately violating the Transaction
// Visibility Property. It exists only so tests can demonstrate that the
// property is necessary — the history checker finds MVSG cycles when an
// engine completes through this path. Never use it outside ablations.
func (c *Strict) UnsafeCompleteEager(h Handle) {
	e := entry(h)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.resolved {
		panic("vc: Complete of resolved entry")
	}
	e.complete = true
	c.completions.Add(1)
	if c.vtnc.Load() < e.tn {
		c.vtnc.Store(e.tn)
		c.cond.Broadcast()
	}
	e.resolved = true
	c.unlink(e)
	// Entries stranded behind an eagerly-advanced vtnc are drained so the
	// queue does not leak; correctness is already forfeited.
	c.drainLocked()
}

// drainLocked pops completed entries from the head, advancing vtnc, and
// then advances vtnc over the gap of unassigned numbers up to (but not
// including) the next registered transaction — or up to tnc-1 if the
// queue is empty. Unassigned numbers below tnc can never be assigned
// later (tnc and RegisterExact only move forward), so "all transactions
// with tn <= vtnc have completed" holds vacuously across the gap. Figure 1
// stops at the last completed entry's number; this refinement is what
// keeps per-site visibility from stranding below a remote snapshot in the
// distributed extension, where the stride and max-vote rules leave gaps.
func (c *Strict) drainLocked() {
	advanced := false
	var nowNS int64
	if c.onVisible != nil {
		nowNS = time.Now().UnixNano()
	}
	for c.head != nil && c.head.complete {
		h := c.head
		if h.tn > c.vtnc.Load() { // the guard only matters after UnsafeCompleteEager
			c.vtnc.Store(h.tn)
		}
		h.resolved = true
		c.unlink(h)
		advanced = true
		if h.regAt != 0 && c.onVisible != nil {
			c.onVisible(h.tn, time.Duration(nowNS-h.regAt))
		}
	}
	target := c.tnc - 1
	if c.head != nil {
		target = c.head.tn - 1
	}
	if target > c.vtnc.Load() {
		c.vtnc.Store(target)
		advanced = true
	}
	if advanced {
		c.cond.Broadcast()
	}
}

// WaitVisible blocks until vtnc >= n. It implements the Section 6
// rectification of delayed visibility: a read-only transaction that must
// observe a particular read-write transaction T waits until tn(T) is
// visible before taking its start number.
func (c *Strict) WaitVisible(n uint64) {
	if c.vtnc.Load() >= n {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.vtnc.Load() < n {
		c.cond.Wait()
	}
}

// TNC returns the current transaction number counter (the next number to
// be assigned).
func (c *Strict) TNC() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tnc
}

// VTNC returns the current visible transaction number counter.
func (c *Strict) VTNC() uint64 { return c.vtnc.Load() }

// Lag returns tnc-1-vtnc: how many assigned serialization positions are
// not yet visible. Under the paper's delayed-visibility discussion this
// is the staleness bound observed by read-only transactions.
func (c *Strict) Lag() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tnc - 1 - c.vtnc.Load()
}

// QueueLen returns the number of unresolved entries in VCQueue.
func (c *Strict) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Mode identifies this implementation for gauges and matrices.
func (c *Strict) Mode() Mode { return ModeStrict }

// Completions returns the number of Complete calls observed.
func (c *Strict) Completions() uint64 { return c.completions.Load() }

// Discards returns the number of Discard calls observed.
func (c *Strict) Discards() uint64 { return c.discards.Load() }

// CheckInvariants verifies the module's internal consistency. It is meant
// for tests: it validates vtnc < tnc, queue ordering, and that the queue
// head (if any) is the oldest invisible transaction.
func (c *Strict) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	vtnc := c.vtnc.Load()
	if vtnc >= c.tnc {
		return fmt.Errorf("vc: vtnc (%d) >= tnc (%d)", vtnc, c.tnc)
	}
	n := 0
	last := uint64(0)
	for e := c.head; e != nil; e = e.next {
		n++
		if e.tn <= vtnc {
			return fmt.Errorf("vc: queued entry tn %d <= vtnc %d", e.tn, vtnc)
		}
		if e.tn >= c.tnc {
			return fmt.Errorf("vc: queued entry tn %d >= tnc %d", e.tn, c.tnc)
		}
		if e.tn <= last {
			return fmt.Errorf("vc: queue out of order: %d after %d", e.tn, last)
		}
		if e.resolved {
			return errors.New("vc: resolved entry still queued")
		}
		last = e.tn
	}
	if n != c.size {
		return fmt.Errorf("vc: size %d != counted %d", c.size, n)
	}
	if c.head != nil && c.head.complete {
		return errors.New("vc: completed entry stuck at queue head")
	}
	return nil
}

// Strict is the reference Controller implementation.
var _ Controller = (*Strict)(nil)

func (c *Strict) pushBack(e *Entry) {
	if c.tail == nil {
		c.head, c.tail = e, e
	} else {
		c.tail.next = e
		e.prev = c.tail
		c.tail = e
	}
	c.size++
}

func (c *Strict) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.size--
}
