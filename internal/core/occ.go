package core

import (
	"fmt"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
)

// occTx is a read-write transaction under VC+OCC, the integration the
// paper attributes to the authors' earlier multiversion optimistic
// protocol (Section 4: "appears in [1, 2] and, hence, is not presented").
//
// Read phase: reads observe the latest committed version and record its
// number; writes are buffered locally. Validation (backward, serial): in
// a critical section the engine checks that every version read is still
// the latest — i.e. no transaction that committed after our reads wrote
// our read set — then registers with version control (the validation
// order IS the serial order, so this is the lock-point analogue), installs
// the write set with the assigned tn, and leaves the critical section.
// VCcomplete runs after the updates are in place, as in Figures 3 and 4.
type occTx struct {
	e       *Engine
	id      uint64
	readSet map[string]uint64 // key -> version TN observed
	buf     map[string]bufWrite
	done    bool
	tn      uint64
	tr      *trace.Active // nil unless head-sampled
}

func (e *Engine) beginOptimistic(id uint64) *occTx {
	t := &occTx{e: e, id: id, readSet: make(map[string]uint64), buf: make(map[string]bufWrite)}
	if e.traces != nil {
		t.tr = e.traces.Start(id, obs.ProtoOCC.String())
	}
	e.rec.RecordBegin(id, engine.ReadWrite)
	return t
}

// Get implements engine.Tx: optimistic read of the latest committed
// version, with no synchronization.
func (t *occTx) Get(key string) ([]byte, error) {
	ph := t.e.phases
	if ph == nil && t.tr == nil {
		return t.get(key)
	}
	ph.PprofEnter(obs.ProtoOCC, obs.PhaseRead)
	start := time.Now()
	v, err := t.get(key)
	d := time.Since(start)
	ph.Record(obs.ProtoOCC, obs.PhaseRead, t.id, d)
	ph.PprofExit()
	t.tr.Span(obs.PhaseRead.String(), start, d)
	return v, err
}

func (t *occTx) get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if w, ok := t.buf[key]; ok {
		if w.tombstone {
			return nil, engine.ErrNotFound
		}
		return w.data, nil
	}
	var v storage.Version
	ok := false
	if o := t.e.store.Get(key); o != nil {
		v, ok = o.LatestCommitted()
	}
	if !ok {
		v = storage.Version{TN: 0, Tombstone: true}
	}
	if prev, seen := t.readSet[key]; seen && prev != v.TN {
		// The object moved under us between two reads; the transaction
		// can no longer validate, so fail fast.
		t.e.stats.AbortsConflict.Inc()
		t.e.hot.RecordConflict("occ-read", key)
		t.abortInternal()
		return nil, engine.ErrConflict
	}
	t.e.hot.TouchRead(key)
	t.readSet[key] = v.TN
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx: buffer the write until validation.
func (t *occTx) Put(key string, value []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	t.e.hot.TouchWrite(key)
	t.buf[key] = bufWrite{data: value}
	return nil
}

// Delete implements engine.Tx: buffer a tombstone.
func (t *occTx) Delete(key string) error {
	if t.done {
		return engine.ErrTxDone
	}
	t.e.hot.TouchWrite(key)
	t.buf[key] = bufWrite{tombstone: true}
	return nil
}

// Commit implements engine.Tx: validate, register, install, complete.
func (t *occTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true

	e := t.e
	ph := e.phases
	// The validate span covers entering the critical section (waiting
	// out other validators), the read-set check, and registration — the
	// serial-order-fixing stretch that Larson et al. identify as OCC's
	// throughput ceiling.
	var tVal time.Time
	if ph != nil || t.tr != nil {
		ph.PprofEnter(obs.ProtoOCC, obs.PhaseValidate)
		tVal = time.Now()
	}
	e.valMu.Lock()
	for key, seenTN := range t.readSet {
		cur := uint64(0)
		if o := e.store.Get(key); o != nil {
			cur = o.LatestTN()
		}
		if cur != seenTN {
			e.valMu.Unlock()
			if ph != nil || t.tr != nil {
				d := time.Since(tVal)
				ph.Record(obs.ProtoOCC, obs.PhaseValidate, t.id, d)
				ph.PprofExit()
				t.tr.Span(obs.PhaseValidate.String(), tVal, d)
			}
			e.hot.RecordConflict("occ-validate", key)
			e.stats.AbortsConflict.Inc()
			e.rec.RecordAbort(t.id)
			t.tr.FinishAbort()
			return engine.ErrConflict
		}
	}
	entry := e.vc.Register()
	t.tn = entry.TN()
	t.tr.CommitTN(t.tn)
	if ph != nil || t.tr != nil {
		d := time.Since(tVal)
		ph.Record(obs.ProtoOCC, obs.PhaseValidate, t.id, d)
		ph.PprofExit()
		t.tr.Span(obs.PhaseValidate.String(), tVal, d)
	}
	if err := e.appendWAL(obs.ProtoOCC, t.id, t.tn, t.buf, t.tr); err != nil {
		e.vc.Discard(entry)
		e.valMu.Unlock()
		e.rec.RecordAbort(t.id)
		t.tr.FinishAbort()
		return fmt.Errorf("core: commit log: %w", err)
	}
	var tIns time.Time
	if ph != nil || t.tr != nil {
		ph.PprofEnter(obs.ProtoOCC, obs.PhaseInstall)
		tIns = time.Now()
	}
	for key, w := range t.buf {
		o := e.store.GetOrCreate(key)
		o.InstallCommitted(storage.Version{TN: t.tn, Data: w.data, Tombstone: w.tombstone})
		e.rec.RecordWrite(t.id, key, t.tn)
	}
	if ph != nil || t.tr != nil {
		d := time.Since(tIns)
		ph.Record(obs.ProtoOCC, obs.PhaseInstall, t.id, d)
		ph.PprofExit()
		t.tr.Span(obs.PhaseInstall.String(), tIns, d)
	}
	e.valMu.Unlock()

	e.rec.RecordCommit(t.id, t.tn)
	e.complete(entry, t.tr)
	e.stats.CommitsRW.Inc()
	return nil
}

// Abort implements engine.Tx. An optimistic transaction holds nothing, so
// abort is pure bookkeeping.
func (t *occTx) Abort() {
	if t.done {
		return
	}
	t.e.stats.AbortsUser.Inc()
	t.abortInternal()
}

func (t *occTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	t.e.rec.RecordAbort(t.id)
	t.tr.FinishAbort()
}

// ID implements engine.Tx.
func (t *occTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *occTx) Class() engine.Class { return engine.ReadWrite }

// SN implements engine.Tx: assigned at validation.
func (t *occTx) SN() (uint64, bool) {
	if t.tn != 0 {
		return t.tn, true
	}
	return 0, false
}
