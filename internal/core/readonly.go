package core

import (
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
)

// roTx is a read-only transaction (paper Figure 2). It is shared by all
// three engines: begin obtains sn(T) = VCstart(); every read returns the
// version with the largest number <= sn(T); end is a no-op. It never
// interacts with the concurrency control component, never blocks, and
// never aborts.
type roTx struct {
	e       *Engine
	id      uint64
	sn      uint64
	token   uint64 // roRegistry token (0 = untracked)
	done    bool
	tracked bool
	tr      *trace.Active // nil unless head-sampled
}

func (e *Engine) beginReadOnly(id, pinSN uint64) *roTx {
	e.stats.BeginsRO.Inc()
	var sn uint64
	if pinSN > 0 {
		// Pinned snapshot (BeginReadOnlyAt): read exactly at position
		// pinSN — time travel into history, or read-your-writes when
		// pinSN is a just-committed transaction's number. WaitVisible
		// already ran in BeginReadOnlyAt; re-check to keep the guarantee
		// local rather than racy.
		e.vc.WaitVisible(pinSN)
		sn = pinSN
	} else {
		sn = e.vc.Start()
	}
	t := &roTx{e: e, id: id, sn: sn}
	if e.traces != nil {
		t.tr = e.traces.Start(id, obs.ProtoRO.String())
	}
	if e.opts.TrackReadOnly {
		t.token = e.roActive.add(sn)
		t.tracked = true
	}
	e.rec.RecordBegin(id, engine.ReadOnly)
	engine.RecordSnapshot(e.rec, id, sn)
	return t
}

// Get implements engine.Tx: "return x_j with largest version <= sn(T)".
// Every version at or below sn is committed (Transaction Visibility
// Property), so the read requires no synchronization whatsoever. The
// phase timer's RO read row exists to prove exactly that: its samples
// should sit at memory-access latency regardless of write load.
func (t *roTx) Get(key string) ([]byte, error) {
	ph := t.e.phases
	if ph == nil && t.tr == nil {
		return t.get(key)
	}
	ph.PprofEnter(obs.ProtoRO, obs.PhaseRead)
	start := time.Now()
	v, err := t.get(key)
	d := time.Since(start)
	ph.Record(obs.ProtoRO, obs.PhaseRead, t.id, d)
	ph.PprofExit()
	t.tr.Span(obs.PhaseRead.String(), start, d)
	return v, err
}

func (t *roTx) get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	o := t.e.store.Get(key)
	if o == nil {
		return nil, engine.ErrNotFound
	}
	v, ok := o.ReadVisible(t.sn)
	if !ok {
		// The key exists but was created after our snapshot: record a
		// read of the bootstrap state so the checker can order us before
		// the creator.
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.hot.TouchRead(key)
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx; read-only transactions cannot write.
func (t *roTx) Put(string, []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Delete implements engine.Tx; read-only transactions cannot write.
func (t *roTx) Delete(string) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Commit implements engine.Tx. For a read-only transaction end(T) is
// empty (Figure 2): nothing to synchronize, nothing to make visible.
func (t *roTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.finish()
	t.e.rec.RecordCommit(t.id, t.sn)
	t.e.stats.CommitsRO.Inc()
	// No visibility callback will ever name a read-only transaction
	// (it registers nothing), so its trace finalizes here.
	t.tr.FinishCommit()
	return nil
}

// Abort implements engine.Tx. Aborting a read-only transaction is
// indistinguishable from committing it, except for bookkeeping.
func (t *roTx) Abort() {
	if t.done {
		return
	}
	t.finish()
	t.e.rec.RecordAbort(t.id)
	t.e.stats.AbortsUser.Inc()
	t.tr.FinishAbort()
}

func (t *roTx) finish() {
	t.done = true
	if t.tracked {
		t.e.roActive.remove(t.token)
	}
}

// ID implements engine.Tx.
func (t *roTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *roTx) Class() engine.Class { return engine.ReadOnly }

// SN implements engine.Tx.
func (t *roTx) SN() (uint64, bool) { return t.sn, true }

// Scan implements engine.Scanner: an ordered prefix scan over the
// transaction's snapshot. Because every version at or below sn is
// committed and immutable, the scan needs no synchronization — it is the
// long-running analytical read the paper's introduction motivates,
// running concurrently with updates at zero interference.
func (t *roTx) Scan(prefix string, fn func(key string, value []byte) bool) error {
	if t.done {
		return engine.ErrTxDone
	}
	t.e.store.RangeOrdered(prefix, func(key string, o *storage.Object) bool {
		v, ok := o.ReadVisible(t.sn)
		if !ok {
			return true
		}
		t.e.rec.RecordRead(t.id, key, v.TN)
		if v.Tombstone {
			return true
		}
		return fn(key, v.Data)
	})
	return nil
}
