package core

import (
	"errors"
	"fmt"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
)

// tsoTx is a read-write transaction under VC+T/O (paper Figure 3).
//
// Timestamp ordering fixes the serial order a priori, so begin(T)
// registers with version control immediately and sn(T) = tn(T). Reads
// raise r-ts and may wait for older pending writes; writes are rejected
// when a younger transaction has already read or written the object
// (abort + VCdiscard), and otherwise install a pending version that
// becomes committed at end(T), followed by VCcomplete.
type tsoTx struct {
	e       *Engine
	id      uint64
	entry   vc.Handle
	tn      uint64
	pending map[string]struct{} // keys holding our pending write
	writes  map[string]bufWrite // retained write set (commit log)
	done    bool
	tr      *trace.Active // nil unless head-sampled
}

func (e *Engine) beginTimestamp(id uint64) *tsoTx {
	entry := e.vc.Register()
	t := &tsoTx{
		e:       e,
		id:      id,
		entry:   entry,
		tn:      entry.TN(),
		pending: make(map[string]struct{}),
		writes:  make(map[string]bufWrite),
	}
	if e.traces != nil {
		// The serial order is fixed at begin, so the TN index is too.
		t.tr = e.traces.Start(id, obs.ProtoTO.String())
		t.tr.CommitTN(t.tn)
	}
	e.rec.RecordBegin(id, engine.ReadWrite)
	return t
}

// Get implements engine.Tx per Figure 3's read action: raise r-ts(x),
// then return the version with the largest number <= sn(T), possibly
// delayed by pending writes of older transactions. With phase timing
// on the whole read — including the object rule's wait inside TORead —
// is attributed to the T/O read phase.
func (t *tsoTx) Get(key string) ([]byte, error) {
	ph := t.e.phases
	if ph == nil && t.tr == nil {
		return t.get(key)
	}
	ph.PprofEnter(obs.ProtoTO, obs.PhaseRead)
	start := time.Now()
	v, err := t.get(key)
	d := time.Since(start)
	ph.Record(obs.ProtoTO, obs.PhaseRead, t.id, d)
	ph.PprofExit()
	t.tr.Span(obs.PhaseRead.String(), start, d)
	return v, err
}

func (t *tsoTx) get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	o := t.e.store.Get(key)
	if o == nil {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	v, ok := o.TORead(t.tn)
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.hot.TouchRead(key)
	if _, own := t.pending[key]; !(own && v.TN == t.tn) {
		t.e.rec.RecordRead(t.id, key, v.TN)
	}
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx per Figure 3's write action: abort if a
// younger transaction already read or overwrote the object, otherwise
// create a pending version numbered tn(T).
func (t *tsoTx) Put(key string, value []byte) error {
	return t.write(key, value, false)
}

// Delete implements engine.Tx (a tombstone write).
func (t *tsoTx) Delete(key string) error {
	return t.write(key, nil, true)
}

func (t *tsoTx) write(key string, value []byte, tombstone bool) error {
	if t.done {
		return engine.ErrTxDone
	}
	o := t.e.store.GetOrCreate(key)
	if err := o.TOWrite(t.tn, value, tombstone); err != nil {
		t.e.hot.RecordConflict("to-write", key)
		t.e.stats.AbortsConflict.Inc()
		if errors.Is(err, storage.ErrConflictRO) {
			// Structurally unreachable in this engine: read-only
			// transactions never raise r-ts here. Counted anyway so the
			// claim is measured, not assumed (experiment E2).
			t.e.stats.RWAbortsByRO.Inc()
		}
		t.abortInternal()
		return engine.ErrConflict
	}
	t.e.hot.TouchWrite(key)
	t.pending[key] = struct{}{}
	t.writes[key] = bufWrite{data: value, tombstone: tombstone}
	return nil
}

// Commit implements engine.Tx: perform the database updates (promote
// pending versions), then VCcomplete.
func (t *tsoTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.e.appendWAL(obs.ProtoTO, t.id, t.tn, t.writes, t.tr); err != nil {
		t.abortInternal()
		return fmt.Errorf("core: commit log: %w", err)
	}
	t.done = true
	ph := t.e.phases
	var tIns time.Time
	if ph != nil || t.tr != nil {
		ph.PprofEnter(obs.ProtoTO, obs.PhaseInstall)
		tIns = time.Now()
	}
	for key := range t.pending {
		t.e.store.GetOrCreate(key).ResolvePending(t.tn, true)
		t.e.rec.RecordWrite(t.id, key, t.tn)
	}
	if ph != nil || t.tr != nil {
		d := time.Since(tIns)
		ph.Record(obs.ProtoTO, obs.PhaseInstall, t.id, d)
		ph.PprofExit()
		t.tr.Span(obs.PhaseInstall.String(), tIns, d)
	}
	t.e.rec.RecordCommit(t.id, t.tn)
	t.e.complete(t.entry, t.tr)
	t.e.stats.CommitsRW.Inc()
	return nil
}

// Abort implements engine.Tx: destroy pending versions and VCdiscard.
func (t *tsoTx) Abort() {
	if t.done {
		return
	}
	t.e.stats.AbortsUser.Inc()
	t.abortInternal()
}

func (t *tsoTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	for key := range t.pending {
		t.e.store.GetOrCreate(key).ResolvePending(t.tn, false)
	}
	t.e.vc.Discard(t.entry)
	t.e.rec.RecordAbort(t.id)
	t.tr.FinishAbort()
}

// ID implements engine.Tx.
func (t *tsoTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *tsoTx) Class() engine.Class { return engine.ReadWrite }

// SN implements engine.Tx: sn(T) = tn(T) under timestamp ordering.
func (t *tsoTx) SN() (uint64, bool) { return t.tn, true }
