package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mvdb/internal/faultfs"
	"mvdb/internal/wal"
)

// openFS opens an engine over dir's commit log through fsys, failing the
// test on error.
func openFS(t *testing.T, fsys faultfs.FS, walPath string, p Protocol) (*Engine, *wal.Writer) {
	t.Helper()
	e, w, err := OpenDurable(walPath, Options{Protocol: p}, DurableOptions{
		FS:  fsys,
		WAL: wal.Options{Policy: wal.SyncEveryCommit},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

// expectState recovers from walPath with a clean filesystem and asserts
// every key maps to its expected latest value.
func expectState(t *testing.T, walPath string, p Protocol, want map[string]string) {
	t.Helper()
	e, w, err := OpenDurable(walPath, Options{Protocol: p}, DurableOptions{
		FS:  faultfs.New(faultfs.Plan{}),
		WAL: wal.Options{Policy: wal.SyncEveryCommit},
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer w.Close()
	defer e.Close()
	for k, v := range want {
		ver, ok := e.Store().GetOrCreate(k).LatestCommitted()
		if !ok {
			t.Fatalf("key %q lost after recovery", k)
		}
		if string(ver.Data) != v {
			t.Fatalf("key %q = %q after recovery, want %q", k, ver.Data, v)
		}
	}
}

// Crash windows of the snapshot write: at the temp file's data write, at
// its fsync, at the rename (with and without the dirent surviving), and
// at the directory fsync after the rename. In every one, recovery must
// see the full committed state — the log still covers whatever the
// snapshot does not.
func TestWriteSnapshotCrashAtomic(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		{"write-tmp", faultfs.Rule{Op: faultfs.OpWrite, Path: ".snap.tmp", Fault: faultfs.Fault{Crash: true}}},
		{"sync-tmp", faultfs.Rule{Op: faultfs.OpSync, Path: ".snap.tmp", Fault: faultfs.Fault{Crash: true}}},
		{"rename-lost", faultfs.Rule{Op: faultfs.OpRename, Path: ".snap", Fault: faultfs.Fault{Crash: true}}},
		{"rename-kept", faultfs.Rule{Op: faultfs.OpRename, Path: ".snap", Fault: faultfs.Fault{Crash: true, KeepRename: true}}},
		{"syncdir-after-rename", faultfs.Rule{Op: faultfs.OpSyncDir, Nth: 3, Fault: faultfs.Fault{Crash: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			walPath := filepath.Join(t.TempDir(), "commit.log")
			want := map[string]string{}

			// A first, fully successful checkpoint so the crash in the
			// second one must also preserve the old snapshot.
			setup := faultfs.New(faultfs.Plan{})
			e, w := openFS(t, setup, walPath, TwoPhaseLocking)
			for i := 0; i < 3; i++ {
				k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
				mustCommitWrite(t, e, map[string]string{k: v})
				want[k] = v
			}
			if err := e.WriteSnapshot(setup, walPath); err != nil {
				t.Fatal(err)
			}
			mustCommitWrite(t, e, map[string]string{"k1": "v1b", "extra": "x"})
			want["k1"], want["extra"] = "v1b", "x"
			w.Close()
			e.Close()

			// The doomed checkpoint. The syncdir rule needs Nth: the
			// sequence under a FaultFS here is tmp-create syncdir (1),
			// log-open syncdir (2) from OpenDurable... so count a fresh
			// trace instead: open + one checkpoint attempt.
			fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{tc.rule}})
			e2, w2 := openFS(t, fs, walPath, TwoPhaseLocking)
			err := e2.WriteSnapshot(fs, walPath)
			if err == nil {
				t.Fatal("WriteSnapshot succeeded despite scripted crash")
			}
			w2.Close()
			e2.Close()
			if err := fs.ApplyCrash(); err != nil {
				t.Fatal(err)
			}
			expectState(t, walPath, TwoPhaseLocking, want)
		})
	}
}

// Crash windows of log compaction: whichever instant the power cut
// hits, recovery sees either the full old log or the compacted one —
// both of which, combined with the snapshot, reproduce the complete
// committed state.
func TestCompactCrashAtomic(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		{"write-tmp", faultfs.Rule{Op: faultfs.OpWrite, Path: ".compact.tmp", Fault: faultfs.Fault{Crash: true}}},
		{"rename-lost", faultfs.Rule{Op: faultfs.OpRename, Path: "commit.log", Fault: faultfs.Fault{Crash: true}}},
		{"rename-kept", faultfs.Rule{Op: faultfs.OpRename, Path: "commit.log", Fault: faultfs.Fault{Crash: true, KeepRename: true}}},
		{"syncdir-after-rename", faultfs.Rule{Op: faultfs.OpSyncDir, Nth: 2, Fault: faultfs.Fault{Crash: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			walPath := filepath.Join(t.TempDir(), "commit.log")
			want := map[string]string{}

			setup := faultfs.New(faultfs.Plan{})
			e, w := openFS(t, setup, walPath, TwoPhaseLocking)
			for i := 0; i < 4; i++ {
				k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
				mustCommitWrite(t, e, map[string]string{k: v})
				want[k] = v
			}
			if err := e.WriteSnapshot(setup, walPath); err != nil {
				t.Fatal(err)
			}
			// Post-snapshot suffix the compaction must keep.
			mustCommitWrite(t, e, map[string]string{"k0": "v0b"})
			want["k0"] = "v0b"
			w.Close()
			e.Close()

			fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{tc.rule}})
			if err := Compact(fs, walPath); err == nil {
				t.Fatal("Compact succeeded despite scripted crash")
			}
			if err := fs.ApplyCrash(); err != nil {
				t.Fatal(err)
			}
			expectState(t, walPath, TwoPhaseLocking, want)
		})
	}
}

// A completed compaction followed by recovery reproduces the exact
// pre-compaction state, and a crash mid-compaction leaves a stale temp
// file that the next open removes.
func TestCompactAndStaleTempCleanup(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "commit.log")
	want := map[string]string{}

	fsys := faultfs.New(faultfs.Plan{})
	e, w := openFS(t, fsys, walPath, TwoPhaseLocking)
	for i := 0; i < 5; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		mustCommitWrite(t, e, map[string]string{k: v})
		want[k] = v
	}
	if err := e.WriteSnapshot(fsys, walPath); err != nil {
		t.Fatal(err)
	}
	w.Close()
	e.Close()
	if err := Compact(fsys, walPath); err != nil {
		t.Fatal(err)
	}
	expectState(t, walPath, TwoPhaseLocking, want)

	// Plant stale temp files as an interrupted checkpoint/compaction
	// would leave them; the next open must remove both.
	for _, tmp := range []string{snapTmpPath(walPath), compactTmpPath(walPath)} {
		if err := os.WriteFile(tmp, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2, w2 := openFS(t, faultfs.New(faultfs.Plan{}), walPath, TwoPhaseLocking)
	w2.Close()
	e2.Close()
	for _, tmp := range []string{snapTmpPath(walPath), compactTmpPath(walPath)} {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s survived open", tmp)
		}
	}
}

// A snapshot with a torn tail cannot be one of ours (they are installed
// whole, by rename); recovery must refuse it rather than restore a
// partial key set.
func TestTornSnapshotRefused(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "commit.log")
	fsys := faultfs.New(faultfs.Plan{})
	e, w := openFS(t, fsys, walPath, TwoPhaseLocking)
	mustCommitWrite(t, e, map[string]string{"a": "1", "b": "2"})
	if err := e.WriteSnapshot(fsys, walPath); err != nil {
		t.Fatal(err)
	}
	w.Close()
	e.Close()

	snap, err := os.ReadFile(SnapPath(walPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(SnapPath(walPath), snap[:len(snap)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenDurable(walPath, Options{}, DurableOptions{FS: faultfs.New(faultfs.Plan{})})
	if err == nil {
		t.Fatal("OpenDurable accepted a torn snapshot")
	}
}
