package core

import (
	"errors"
	"fmt"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
)

// twoPhaseTx is a read-write transaction under VC+2PL (paper Figure 4).
//
// During execution it behaves exactly like a single-version strict-2PL
// transaction: reads take shared locks and return the latest committed
// version; writes take exclusive locks and are buffered ("create y_j with
// version phi" — the version number is unknown until the lock-point).
//
// At end(T) — by which time every lock is held, so the lock-point has been
// passed — the transaction registers with version control, receives
// tn(T), installs its buffered writes as versions numbered tn(T), releases
// its locks, and finally calls VCcomplete. The version-control module
// therefore only ever sees transactions that can no longer block, which is
// why (Section 4.4) it is immune to deadlocks.
type twoPhaseTx struct {
	e     *Engine
	id    uint64
	entry vc.Handle // ablation A1 only: registered at begin
	buf   map[string]bufWrite
	done  bool
	tn    uint64        // assigned at commit
	tr    *trace.Active // nil unless this transaction was head-sampled
	// lockedAt is the wall-clock instant of the first lock acquisition;
	// zero unless the hotspot profiler is on. The release paths charge
	// the full first-lock→release span to every held key's stripe as
	// hold time — the 2PL growing+shrinking window the heatmap wants.
	lockedAt time.Time
}

type bufWrite struct {
	data      []byte
	tombstone bool
}

func (e *Engine) beginTwoPhase(id uint64) *twoPhaseTx {
	e.locks.Begin(id, e.ages.Add(1))
	t := &twoPhaseTx{e: e, id: id, buf: make(map[string]bufWrite)}
	if e.traces != nil {
		t.tr = e.traces.Start(id, obs.Proto2PL.String())
	}
	if e.opts.UnsafeEarlyRegister2PL {
		t.entry = e.vc.Register() // A1: serial order NOT yet fixed — wrong on purpose
	}
	e.rec.RecordBegin(id, engine.ReadWrite)
	return t
}

// Get implements engine.Tx: r-lock(x), then read the latest version
// (sn(T) = infinity in Figure 4).
func (t *twoPhaseTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if w, ok := t.buf[key]; ok {
		if w.tombstone {
			return nil, engine.ErrNotFound
		}
		return w.data, nil
	}
	if err := t.acquire(key, lock.Shared); err != nil {
		return nil, err
	}
	t.e.hot.TouchRead(key)
	o := t.e.store.Get(key)
	if o == nil {
		// Absent key: the shared lock still guards against a concurrent
		// creator, and the read is recorded against the bootstrap state.
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	v, ok := o.LatestCommitted()
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx: w-lock(y), then buffer the write; the version
// number is assigned at commit ("create y_j with version phi").
func (t *twoPhaseTx) Put(key string, value []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.acquire(key, lock.Exclusive); err != nil {
		return err
	}
	t.e.hot.TouchWrite(key)
	t.buf[key] = bufWrite{data: value}
	return nil
}

// Delete implements engine.Tx: an exclusive lock plus a buffered
// tombstone.
func (t *twoPhaseTx) Delete(key string) error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.acquire(key, lock.Exclusive); err != nil {
		return err
	}
	t.e.hot.TouchWrite(key)
	t.buf[key] = bufWrite{tombstone: true}
	return nil
}

// acquire maps lock-manager failures to engine errors and aborts the
// transaction on failure (the victim must release everything it holds).
func (t *twoPhaseTx) acquire(key string, mode lock.Mode) error {
	err := t.e.locks.Acquire(t.id, key, mode)
	if err == nil {
		if t.e.hot != nil && t.lockedAt.IsZero() {
			t.lockedAt = time.Now()
		}
		return nil
	}
	var mapped error
	var cause string
	switch {
	case errors.Is(err, lock.ErrDeadlock):
		t.e.stats.AbortsDeadlock.Inc()
		mapped, cause = engine.ErrDeadlock, "deadlock"
	case errors.Is(err, lock.ErrWounded):
		t.e.stats.AbortsWounded.Inc()
		mapped, cause = engine.ErrWounded, "wounded"
		t.e.hot.RecordWound(t.e.locks.StripeOf(key))
	case errors.Is(err, lock.ErrTimeout):
		// Counted as its own cause; still surfaced as ErrDeadlock because
		// a timeout is the timeout policy's deadlock presumption.
		t.e.stats.AbortsTimeout.Inc()
		mapped = fmt.Errorf("%w (lock wait timeout)", engine.ErrDeadlock)
		cause = "timeout"
	default:
		t.e.stats.AbortsConflict.Inc()
		mapped, cause = engine.ErrConflict, "conflict"
	}
	t.e.hot.RecordConflict(cause, key)
	t.abortInternal()
	return mapped
}

// recordHolds charges the first-lock→release span as hold time to every
// buffered write key's stripe (read-lock-only keys are not retained by
// the transaction and are skipped). Called on both release paths, only
// when the profiler is on.
func (t *twoPhaseTx) recordHolds() {
	if t.e.hot == nil || t.lockedAt.IsZero() {
		return
	}
	held := time.Since(t.lockedAt)
	for key := range t.buf {
		t.e.hot.RecordHold(t.e.locks.StripeOf(key), held)
	}
}

// Commit implements engine.Tx, following Figure 4's end(T) sequence:
// VCregister; perform database updates with version number tn(T); clear
// locks; VCcomplete.
func (t *twoPhaseTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	// Under wound-wait a running transaction may have been wounded while
	// it held locks; it must not commit.
	if t.e.locks.Wounded(t.id) {
		t.e.stats.AbortsWounded.Inc()
		t.abortInternal()
		return engine.ErrWounded
	}
	t.done = true

	entry := t.entry
	if entry == nil {
		entry = t.e.vc.Register() // the lock-point has been passed
	}
	t.tn = entry.TN()
	t.tr.CommitTN(t.tn)

	if err := t.e.appendWAL(obs.Proto2PL, t.id, t.tn, t.buf, t.tr); err != nil {
		t.e.vc.Discard(entry)
		t.recordHolds()
		t.e.locks.ReleaseAll(t.id)
		t.e.rec.RecordAbort(t.id)
		t.tr.FinishAbort()
		return fmt.Errorf("core: commit log: %w", err)
	}
	ph := t.e.phases
	var tIns time.Time
	if ph != nil || t.tr != nil {
		ph.PprofEnter(obs.Proto2PL, obs.PhaseInstall)
		tIns = time.Now()
	}
	for key, w := range t.buf {
		o := t.e.store.GetOrCreate(key)
		o.InstallCommitted(storage.Version{TN: t.tn, Data: w.data, Tombstone: w.tombstone})
		t.e.rec.RecordWrite(t.id, key, t.tn)
	}
	if ph != nil || t.tr != nil {
		d := time.Since(tIns)
		ph.Record(obs.Proto2PL, obs.PhaseInstall, t.id, d)
		ph.PprofExit()
		t.tr.Span(obs.PhaseInstall.String(), tIns, d)
	}
	t.e.rec.RecordCommit(t.id, t.tn)

	t.recordHolds()
	t.e.locks.ReleaseAll(t.id)
	t.e.complete(entry, t.tr)
	t.e.stats.CommitsRW.Inc()
	return nil
}

// Abort implements engine.Tx.
func (t *twoPhaseTx) Abort() {
	if t.done {
		return
	}
	t.e.stats.AbortsUser.Inc()
	t.abortInternal()
}

func (t *twoPhaseTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	t.recordHolds()
	t.e.locks.ReleaseAll(t.id)
	if t.entry != nil {
		t.e.vc.Discard(t.entry)
	}
	t.e.rec.RecordAbort(t.id)
	t.tr.FinishAbort()
}

// ID implements engine.Tx.
func (t *twoPhaseTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *twoPhaseTx) Class() engine.Class { return engine.ReadWrite }

// SN implements engine.Tx. A 2PL read-write transaction has no snapshot
// position until it commits ("sn(T) = infinity for uniformity").
func (t *twoPhaseTx) SN() (uint64, bool) {
	if t.tn != 0 {
		return t.tn, true
	}
	return 0, false
}
