// Package core implements the paper's primary contribution: multiversion
// transaction engines in which synchronization is split into a version
// control module (internal/vc) and a pluggable conflict-based concurrency
// control component.
//
// Three engines are provided, corresponding to the paper's Section 4:
//
//   - VC+2PL  (Figure 4): two-phase locking; transactions register with
//     version control at their lock-point (here: at end of execution,
//     when all locks are held).
//   - VC+T/O  (Figure 3): timestamp ordering; transactions register at
//     begin, since their serial position is fixed a priori.
//   - VC+OCC  (Section 4, referencing the authors' earlier work):
//     optimistic execution with backward validation; transactions
//     register inside the validation critical section.
//
// Read-only transactions are identical under all three engines — one call
// to VCstart, then snapshot reads (Figure 2) — which is precisely the
// modularity the paper advertises: their execution is "completely
// independent of the underlying concurrency control implementation".
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/hotspot"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
	"mvdb/internal/vc/epoch"
	"mvdb/internal/wal"
)

// Protocol selects the concurrency-control component for read-write
// transactions.
type Protocol int

const (
	// TwoPhaseLocking is the VC+2PL engine (paper Figure 4).
	TwoPhaseLocking Protocol = iota
	// TimestampOrdering is the VC+T/O engine (paper Figure 3).
	TimestampOrdering
	// Optimistic is the VC+OCC engine.
	Optimistic
)

func (p Protocol) String() string {
	switch p {
	case TwoPhaseLocking:
		return "vc+2pl"
	case TimestampOrdering:
		return "vc+to"
	case Optimistic:
		return "vc+occ"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Options configures an Engine.
type Options struct {
	// Protocol selects the read-write concurrency control. Default: 2PL.
	Protocol Protocol
	// LockPolicy selects deadlock handling for 2PL (default: Detect).
	LockPolicy lock.Policy
	// LockTimeout applies when LockPolicy is lock.TimeoutPolicy.
	LockTimeout time.Duration
	// LockStripes sets the lock table's stripe count (rounded up to a
	// power of two; 0 = lock.DefaultStripes, 1 = a single global table).
	LockStripes int
	// Shards is the store shard count (0 = default).
	Shards int
	// Visibility selects the version-control implementation: the
	// paper's strict drain queue (default) or the epoch watermark
	// (internal/vc/epoch), which decentralizes completion tracking and
	// advances visibility in batches. Both preserve the Transaction
	// Ordering and Visibility Properties; the mode changes scalability,
	// not semantics.
	Visibility vc.Mode
	// Recorder receives history events for offline checking (tests).
	Recorder engine.Recorder
	// TrackReadOnly registers active read-only transactions so garbage
	// collection can compute a safe watermark. It adds a small cost to
	// the read-only begin/end path and is therefore optional.
	TrackReadOnly bool
	// WAL, when non-nil, makes commits durable: each read-write commit
	// appends one record (transaction number + write set) to the log
	// before its versions are installed. Use Recover to rebuild an
	// engine from such a log.
	WAL *wal.Writer
	// Trace, when non-nil, receives begin/read/write/commit/abort
	// events (via a production obs.Recorder attached alongside any
	// Recorder above) plus lock-wait events from the lock manager. Nil
	// disables event tracing at zero cost; counters are always on.
	Trace *obs.Tracer
	// PhaseTiming enables per-transaction latency attribution: each
	// protocol's separable phases (lock wait, reads, validation, WAL
	// enqueue vs fsync wait, version install, register→visible lag)
	// are timed into per-protocol histograms exposed via Snapshot.
	// When false (the default) no phase state is allocated and every
	// timing site reduces to one nil test — the disabled path keeps
	// the seed's allocation profile.
	PhaseTiming bool
	// Traces, when non-nil, enables causal per-transaction tracing
	// (internal/trace): sampled transactions record per-phase span
	// trees with blame edges from the lock manager, the WAL group
	// commit, and the VC drain. Nil keeps the hot path at one pointer
	// test and zero allocations.
	Traces *trace.Tracer
	// Hotspot, when non-nil, enables the workload profiler
	// (internal/hotspot): sampled per-key read/write touches, a
	// per-stripe lock-contention heatmap, abort-cause × key conflict
	// pairs, and epoch-lane occupancy, all surfaced through Snapshot.
	// Nil keeps every hot-path hook at one pointer test and zero
	// allocations.
	Hotspot *hotspot.Profiler

	// UnsafeEarlyRegister2PL is ablation A1: it makes the 2PL engine
	// register transactions with version control at begin instead of at
	// the lock-point. The paper requires registration only once the
	// serial order is fixed; this flag deliberately violates that and is
	// used by tests to show the history checker catches the violation.
	UnsafeEarlyRegister2PL bool
	// UnsafeEagerVisibility is ablation A2: vtnc advances in completion
	// order rather than serialization order, violating the Transaction
	// Visibility Property. Test-only.
	UnsafeEagerVisibility bool
}

// Engine is a multiversion engine with modular version control. It
// implements engine.Engine.
type Engine struct {
	opts     Options
	protocol atomic.Int32 // current Protocol; swappable via SetProtocol
	store    *storage.Store
	vc       vc.Controller
	locks    *lock.Manager // 2PL only
	valMu    sync.Mutex    // OCC validation critical section
	rec      engine.Recorder

	ids  atomic.Uint64 // transaction id allocator (diagnostics, lock owner)
	ages atomic.Uint64 // begin-order sequence for wound-wait

	roActive roRegistry

	// stats is the engine-wide observability registry (internal/obs):
	// every lifecycle counter lives there, shared with the public
	// Stats API and the /debug/mvdb endpoint.
	stats *obs.Stats
	// phases is the latency-attribution matrix; nil unless
	// Options.PhaseTiming (nil keeps every timing site to one nil test).
	phases *obs.PhaseStats
	// traces is the causal span tracer; nil unless Options.Traces.
	traces *trace.Tracer
	// hot is the workload profiler; nil unless Options.Hotspot (nil
	// keeps every touch/conflict hook to one nil test).
	hot             *hotspot.Profiler
	closed          atomic.Bool
	bootstrapSealed atomic.Bool
}

// newController builds the version-control module for a mode and
// bootstrap snapshot. It lives here rather than in package vc because
// the epoch implementation imports vc for the contract types.
func newController(mode vc.Mode, initial uint64) vc.Controller {
	if mode == vc.ModeEpoch {
		return epoch.New(initial)
	}
	return vc.New(initial)
}

// New creates an engine.
func New(opts Options) *Engine {
	var tracerRec engine.Recorder
	if opts.Trace != nil {
		tracerRec = obs.Recorder{T: opts.Trace}
	}
	e := &Engine{
		opts:  opts,
		store: storage.NewStore(opts.Shards),
		vc:    newController(opts.Visibility, 0),
		rec:   engine.Multi(opts.Recorder, tracerRec),
		stats: obs.NewStats(),
	}
	// The lock manager exists regardless of the initial protocol so that
	// SetProtocol can swap to two-phase locking later. Its wait observer
	// feeds the wait-time histogram and (when tracing) lock-wait events.
	e.locks = lock.NewManagerStriped(opts.LockPolicy, opts.LockTimeout, opts.LockStripes)
	e.traces = opts.Traces
	e.hot = opts.Hotspot
	e.locks.SetWaitObserver(func(txID uint64, key string, stripe int, blocker uint64, wait time.Duration) {
		e.stats.LockWaitNanos.Record(wait.Nanoseconds())
		// phases.Record, traces.OnLockWait, and hot.RecordStripeWait are
		// nil-safe; only 2PL transactions reach the lock manager, so the
		// attribution row is fixed.
		e.phases.Record(obs.Proto2PL, obs.PhaseLockWait, txID, wait)
		e.traces.OnLockWait(txID, key, stripe, blocker, wait)
		e.hot.RecordStripeWait(stripe, wait)
		opts.Trace.Record(obs.Event{Type: obs.EvLockWait, Tx: txID, Key: key, Dur: wait.Nanoseconds()})
	})
	if e.hot != nil {
		e.hot.BindStripes(e.locks.Stripes())
		e.bindHotVC()
	}
	if opts.PhaseTiming {
		e.phases = obs.NewPhaseStats(opts.Trace)
	}
	if opts.PhaseTiming || opts.Traces != nil {
		e.observeVC()
	}
	e.protocol.Store(int32(opts.Protocol))
	e.roActive.init()
	if opts.WAL != nil {
		e.attachWALObserver(opts.WAL)
	}
	return e
}

// attachWALObserver feeds the log's group-commit batch sizes into the
// stats registry (a no-op stream unless the log runs under SyncBatch).
func (e *Engine) attachWALObserver(w *wal.Writer) {
	w.SetBatchObserver(func(records int) {
		e.stats.WALBatchSize.Record(int64(records))
	})
}

// observeVC wires the version-control module's register→visible lag
// into the phase matrix and the span tracer. Called at construction and
// again whenever the controller is replaced (recovery). The entry is
// attributed to the protocol in force when it becomes visible — exact
// except across an adaptive protocol switch, where a straggler may land
// one row over.
func (e *Engine) observeVC() {
	if e.phases == nil && e.traces == nil {
		return
	}
	e.vc.SetVisibleObserver(func(tn uint64, d time.Duration) {
		e.phases.Record(e.protoIdx(), obs.PhaseVisibleWait, tn, d)
		e.traces.OnVisible(tn, d)
	})
}

// bindHotVC points the workload profiler's visibility taps at the
// current controller. Called at construction and again whenever the
// controller is replaced (recovery). Lane frontiers exist only under
// epoch visibility; the watermark tap works in both modes.
func (e *Engine) bindHotVC() {
	if e.hot == nil {
		return
	}
	if ec, ok := e.vc.(*epoch.Controller); ok {
		e.hot.BindVC(ec.LaneFrontiers, ec.Epoch, ec.VTNC)
	} else {
		e.hot.BindVC(nil, nil, e.vc.VTNC)
	}
}

// protoIdx maps the current protocol onto the phase matrix's row. The
// first three obs.ProtoIdx values mirror Protocol's ordering, asserted
// at init below.
func (e *Engine) protoIdx() obs.ProtoIdx { return obs.ProtoIdx(e.protocol.Load()) }

func init() {
	if obs.Proto2PL != obs.ProtoIdx(TwoPhaseLocking) ||
		obs.ProtoTO != obs.ProtoIdx(TimestampOrdering) ||
		obs.ProtoOCC != obs.ProtoIdx(Optimistic) {
		panic("core: obs.ProtoIdx ordering diverged from core.Protocol")
	}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.Protocol().String() }

// Protocol returns the concurrency control currently in force for new
// read-write transactions.
func (e *Engine) Protocol() Protocol { return Protocol(e.protocol.Load()) }

// SetProtocol swaps the concurrency control used by SUBSEQUENT read-write
// transactions. The caller must guarantee that no read-write transaction
// is active (internal/adaptive enforces this with an epoch barrier);
// read-only transactions need no quiescence at all — their execution is
// independent of the concurrency control component, which is exactly the
// modularity the paper advertises (Section 1: "more experimentation ...
// in areas such as ... adaptive concurrency control schemes without
// introducing major modifications to the entire protocol").
func (e *Engine) SetProtocol(p Protocol) {
	e.protocol.Store(int32(p))
}

// Store exposes the underlying store (garbage collection, tools).
func (e *Engine) Store() *storage.Store { return e.store }

// VC exposes the version control module (experiments, garbage collection).
func (e *Engine) VC() vc.Controller { return e.vc }

// VTNC returns the current visibility horizon (it satisfies gc.Source).
func (e *Engine) VTNC() uint64 { return e.vc.VTNC() }

// Bootstrap loads key/value pairs as version 0, before any transactions.
func (e *Engine) Bootstrap(data map[string][]byte) error {
	if e.bootstrapSealed.Load() {
		return errors.New("core: Bootstrap after first transaction")
	}
	for k, v := range data {
		e.store.Bootstrap(k, v)
	}
	return nil
}

// Begin implements engine.Engine.
func (e *Engine) Begin(class engine.Class) (engine.Tx, error) {
	if e.closed.Load() {
		return nil, errors.New("core: engine closed")
	}
	e.bootstrapSealed.Store(true)
	id := e.ids.Add(1)
	if class == engine.ReadOnly {
		return e.beginReadOnly(id, 0), nil
	}
	e.stats.BeginsRW.Inc()
	switch p := e.Protocol(); p {
	case TwoPhaseLocking:
		return e.beginTwoPhase(id), nil
	case TimestampOrdering:
		return e.beginTimestamp(id), nil
	case Optimistic:
		return e.beginOptimistic(id), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %v", p)
	}
}

// BeginReadOnlyRecent starts a read-only transaction that is guaranteed to
// observe every read-write transaction serialized before the call. This is
// the first rectification of delayed visibility from Section 6 of the
// paper: the start number is forced to be at least the most recently
// assigned transaction number, waiting for visibility to catch up.
func (e *Engine) BeginReadOnlyRecent() (engine.Tx, error) {
	return e.BeginReadOnlyAt(e.vc.TNC() - 1)
}

// BeginReadOnlyAt starts a read-only transaction whose snapshot is pinned
// at exactly serialization position sn, waiting until that position
// becomes visible if it is in the future (Section 6: "ensuring that R be
// executed with a value of sn(R) which is at least as large as tn(T)").
// Two uses: pass the TN of a committed transaction (Tx.SN after Commit)
// for read-your-writes, or a historical position for time travel — any
// position whose versions have not been garbage-collected reads
// consistently.
func (e *Engine) BeginReadOnlyAt(sn uint64) (engine.Tx, error) {
	if e.closed.Load() {
		return nil, errors.New("core: engine closed")
	}
	e.bootstrapSealed.Store(true)
	if e.vc.VTNC() < sn {
		e.stats.RecencyWaits.Inc()
		if ph := e.phases; ph != nil {
			start := time.Now()
			e.vc.WaitVisible(sn)
			// The RO row's visible-wait is the Section 6 recency wait:
			// how long a pinned read-only begin stalled for visibility.
			ph.Record(obs.ProtoRO, obs.PhaseVisibleWait, 0, time.Since(start))
		} else {
			e.vc.WaitVisible(sn)
		}
	}
	return e.beginReadOnly(e.ids.Add(1), sn), nil
}

// Obs exposes the engine's observability registry so wrappers (the
// public API, the adaptive engine) can count events that happen above
// this layer — Update retries, GC passes — into the same snapshot.
func (e *Engine) Obs() *obs.Stats { return e.stats }

// Phases exposes the latency-attribution matrix (nil unless
// Options.PhaseTiming).
func (e *Engine) Phases() *obs.PhaseStats { return e.phases }

// Traces exposes the causal span tracer (nil unless Options.Traces).
func (e *Engine) Traces() *trace.Tracer { return e.traces }

// LockWaitGraph exports the lock manager's current waits-for graph (the
// flight recorder's postmortem bundles include it).
func (e *Engine) LockWaitGraph() lock.WaitGraph { return e.locks.WaitGraph() }

// Snapshot assembles the full observability snapshot: registry
// counters, lock-manager and WAL substrate counters, version-control
// gauges, and storage-shape gauges. Gauges are read in an order that
// preserves the paper's invariants within one snapshot (vtnc before
// tnc, commits before begins); the storage walk makes this O(keys), so
// it is meant for periodic polling, not per-transaction calls.
func (e *Engine) Snapshot() obs.Snapshot {
	sn := e.stats.Snapshot()
	sn.Protocol = e.Protocol().String()
	if e.locks != nil {
		sn.LockWaits = int64(e.locks.Waits())
		sn.LockDeadlocks = int64(e.locks.Deadlocks())
		sn.LockWounds = int64(e.locks.Wounds())
		sn.LockTimeouts = int64(e.locks.Timeouts())
		sn.LockStripes = e.locks.Stripes()
		sn.LockStripeCollisions = int64(e.locks.StripeCollisions())
	}
	// vtnc first, then tnc: both only grow, so vtnc <= tnc-1 holds for
	// the pair even while commits race the snapshot.
	vtnc := e.vc.VTNC()
	tnc := e.vc.TNC()
	sn.VisibilityMode = e.vc.Mode().String()
	sn.VTNC = vtnc
	sn.TNC = tnc
	sn.VisibilityLag = tnc - 1 - vtnc
	sn.VCQueueLen = e.vc.QueueLen()
	var keys int
	var versions int64
	var maxChain int
	e.store.Range(func(_ string, o *storage.Object) bool {
		keys++
		n := o.VersionCount()
		versions += int64(n)
		if n > maxChain {
			maxChain = n
		}
		return true
	})
	sn.Keys = keys
	sn.Versions = versions
	sn.MaxVersionChain = maxChain
	if keys > 0 {
		sn.MeanVersionChain = float64(versions) / float64(keys)
	}
	sn.StoreWaits = int64(e.store.TotalWaits())
	sn.Phases = e.phases.Summaries()
	sn.Hotspot = e.hot.Report() // nil-safe: nil profiler, nil section
	if e.opts.WAL != nil {
		a, f, b := e.opts.WAL.Counters()
		sn.WALAppends = int64(a)
		sn.WALFsyncs = int64(f)
		sn.WALBytes = int64(b)
		sn.WALBatches = int64(e.opts.WAL.Batches())
		if a > 0 {
			sn.WALFsyncPerAppend = float64(f) / float64(a)
		}
		sn.WALSizeBytes = e.opts.WAL.Size()
	}
	return sn
}

// Stats implements engine.Engine: the snapshot flattened into the
// legacy counter vocabulary the harness understands.
func (e *Engine) Stats() map[string]int64 {
	return e.Snapshot().Map()
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	e.closed.Store(true)
	return nil
}

// MinActiveReadOnlySN returns the smallest start number among active
// read-only transactions and whether any are active. Valid only with
// Options.TrackReadOnly; the garbage collector combines it with vtnc to
// compute its watermark.
func (e *Engine) MinActiveReadOnlySN() (uint64, bool) {
	return e.roActive.min()
}

// appendWAL logs a committed write set ahead of installation. A log
// failure is returned to the caller, whose transaction must abort: a
// commit that is not durable must not become visible. With phase timing
// on, the append is split into its two separable costs — getting the
// record into the log buffer vs waiting for fsync coverage (the
// group-commit ticket wait under SyncBatch) — attributed to proto/txID.
func (e *Engine) appendWAL(proto obs.ProtoIdx, txID, tn uint64, buf map[string]bufWrite, tr *trace.Active) error {
	if e.opts.WAL == nil {
		return nil
	}
	rec := wal.Record{TN: tn, Writes: make([]wal.Write, 0, len(buf))}
	for k, w := range buf {
		rec.Writes = append(rec.Writes, wal.Write{Key: k, Value: w.data, Tombstone: w.tombstone})
	}
	ph := e.phases
	if ph == nil && tr == nil {
		return e.opts.WAL.Append(rec)
	}
	ph.PprofEnter(proto, obs.PhaseFsyncWait)
	var info wal.BatchInfo
	var enq, syncWait int64
	var err error
	var start time.Time
	if tr != nil {
		start = time.Now()
		info, enq, syncWait, err = e.opts.WAL.AppendTraced(rec)
	} else {
		enq, syncWait, err = e.opts.WAL.AppendTimed(rec)
	}
	ph.PprofExit()
	ph.Record(proto, obs.PhaseWALEnqueue, txID, time.Duration(enq))
	ph.Record(proto, obs.PhaseFsyncWait, txID, time.Duration(syncWait))
	if tr != nil {
		ns := start.UnixNano()
		tr.SpanAt(obs.PhaseWALEnqueue.String(), -1, ns, enq)
		tr.SpanAt(obs.PhaseFsyncWait.String(), -1, ns+enq, syncWait)
		if err == nil && info.Batch != 0 {
			tr.Blame(trace.Blame{
				Kind:    trace.BlameJoinedBatch,
				Phase:   obs.PhaseFsyncWait.String(),
				Tx:      info.LeaderTN,
				Batch:   info.Batch,
				Records: info.Records,
				DurNS:   syncWait,
			})
		}
	}
	return err
}

// Recover rebuilds an engine from a write-ahead log: every intact commit
// record is replayed into the version store, and the version control
// module resumes with tnc just past the largest recovered transaction
// number (everything recovered is immediately visible). It returns the
// engine and the valid log length to pass to wal.OpenAppend. opts.WAL is
// typically set afterwards, once the log is reopened for appending.
func Recover(path string, opts Options) (*Engine, int64, error) {
	return Restore(nil, 0, path, opts)
}

// Restore rebuilds an engine from a base state (e.g. a checkpoint
// snapshot) plus a write-ahead log. Log records with TN <= horizon are
// skipped: they are already reflected in the base. The base records are
// installed verbatim (their TNs must not exceed horizon unless horizon is
// zero).
func Restore(base []wal.Record, horizon uint64, path string, opts Options) (*Engine, int64, error) {
	return RestoreFS(nil, base, horizon, path, opts)
}

// SetWAL attaches a log writer (used after Recover + OpenAppend). It must
// be called before the first transaction.
func (e *Engine) SetWAL(w *wal.Writer) error {
	if e.bootstrapSealed.Load() {
		return errors.New("core: SetWAL after first transaction")
	}
	e.opts.WAL = w
	e.attachWALObserver(w)
	return nil
}

// complete routes a completion through either the correct Figure 1 path
// or the ablated (A2) eager path. A traced completion observes the VC
// queue at the completion instant: if an older registered-but-incomplete
// transaction heads the queue, visibility is deferred to it, and that is
// the queued-behind blame edge. The eager path bypasses the drain (no
// visibility callback will ever fire), so its trace finalizes here.
func (e *Engine) complete(entry vc.Handle, tr *trace.Active) {
	if e.opts.UnsafeEagerVisibility {
		e.vc.UnsafeCompleteEager(entry)
		tr.FinishCommit()
		return
	}
	if tr == nil {
		e.vc.Complete(entry)
		return
	}
	e.vc.CompleteObserved(entry, func(o vc.Obstruction) {
		tr.Blame(trace.Blame{
			Kind:      trace.BlameQueuedBehind,
			Phase:     obs.PhaseVisibleWait.String(),
			Tx:        o.HeadTN,
			Depth:     o.Depth,
			Watermark: o.Watermark,
			Epoch:     o.Epoch,
		})
	})
}

// roRegistry tracks active read-only transactions for GC watermarks.
// It is sharded to keep the (optional) cost off the read-only fast path
// as much as possible.
type roRegistry struct {
	enabled bool
	shards  [16]roShard
	ctr     atomic.Uint64
}

type roShard struct {
	mu sync.Mutex
	m  map[uint64]uint64 // token -> sn
}

func (r *roRegistry) init() {
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]uint64)
	}
}

func (r *roRegistry) add(sn uint64) (token uint64) {
	token = r.ctr.Add(1)
	sh := &r.shards[token%uint64(len(r.shards))]
	sh.mu.Lock()
	sh.m[token] = sn
	sh.mu.Unlock()
	return token
}

func (r *roRegistry) remove(token uint64) {
	sh := &r.shards[token%uint64(len(r.shards))]
	sh.mu.Lock()
	delete(sh.m, token)
	sh.mu.Unlock()
}

func (r *roRegistry) min() (uint64, bool) {
	var m uint64
	found := false
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, sn := range sh.m {
			if !found || sn < m {
				m, found = sn, true
			}
		}
		sh.mu.Unlock()
	}
	return m, found
}
