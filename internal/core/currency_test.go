package core

import (
	"fmt"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/history"
)

// Section 6: "some applications may not be willing to sacrifice currency
// ... such transactions can be dealt with by executing them as pseudo
// read-write transactions." A read-write transaction that never writes
// reads the LATEST committed state (bypassing the visibility lag), at the
// cost of going through concurrency control.
func TestPseudoReadWriteSeesLatest(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"k": "0"})

			// Create a visibility lag: an older registered transaction is
			// still active while a younger one commits (T/O only; for the
			// others the lag window is empty but the test still verifies
			// currency).
			var older engine.Tx
			if p == TimestampOrdering {
				older, _ = e.Begin(engine.ReadWrite)
				if err := older.Put("unrelated", []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			mustCommitWrite(t, e, map[string]string{"k": "latest"})

			if p == TimestampOrdering {
				// The plain read-only transaction is stale...
				ro, _ := e.Begin(engine.ReadOnly)
				if got, _ := ro.Get("k"); string(got) == "latest" {
					t.Fatal("expected stale snapshot while older txn active")
				}
				ro.Commit()
			}

			// ...but the pseudo read-write transaction shows currency.
			prw, _ := e.Begin(engine.ReadWrite)
			got, err := prw.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if p == TimestampOrdering {
				// Under T/O a pseudo-rw reader is serialized at its own
				// timestamp, which is younger than the committed write.
				if string(got) != "latest" {
					t.Fatalf("pseudo-rw read %q, want latest", got)
				}
			} else if string(got) != "latest" {
				t.Fatalf("pseudo-rw read %q, want latest", got)
			}
			if err := prw.Commit(); err != nil {
				t.Fatal(err)
			}
			if older != nil {
				if err := older.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// A pure-reader read-write transaction still occupies a serialization
// position (the paper's default for transactions of unknown class), and
// histories that include it check out.
func TestUnknownClassDefaultsToSerializedReader(t *testing.T) {
	rec := history.NewRecorder()
	e := New(Options{Protocol: TwoPhaseLocking, Recorder: rec})
	defer e.Close()
	mustCommitWrite(t, e, map[string]string{"a": "1", "b": "2"})

	r, _ := e.Begin(engine.ReadWrite) // class unknown -> read-write
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.SN(); !ok {
		t.Fatal("pure reader did not get a serialization position")
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

// Snapshot scans participate in the history check: a torn scan would be
// caught as an MVSG cycle. Run a scan concurrently with multi-key writers
// and verify the recorded history stays serializable.
func TestScanHistoryChecked(t *testing.T) {
	rec := history.NewRecorder()
	e := New(Options{Protocol: TwoPhaseLocking, Recorder: rec})
	defer e.Close()
	boot := map[string][]byte{}
	for i := 0; i < 8; i++ {
		boot[fmt.Sprintf("s%d", i)] = []byte{0}
	}
	if err := e.Bootstrap(boot); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := byte(1); round <= 20; round++ {
			tx, _ := e.Begin(engine.ReadWrite)
			for i := 0; i < 8; i++ {
				if err := tx.Put(fmt.Sprintf("s%d", i), []byte{round}); err != nil {
					panic(err)
				}
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		ro, _ := e.Begin(engine.ReadOnly)
		var first []byte
		sc := ro.(engine.Scanner)
		if err := sc.Scan("s", func(k string, v []byte) bool {
			if first == nil {
				first = v
			} else if v[0] != first[0] {
				t.Errorf("torn scan: %q saw %d, first saw %d", k, v[0], first[0])
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		ro.Commit()
	}
	<-done
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRecreateAfterDelete(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"k": "v1"})
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			mustCommitWrite(t, e, map[string]string{"k": "v2"})
			ro, _ := e.Begin(engine.ReadOnly)
			if got, err := ro.Get("k"); err != nil || string(got) != "v2" {
				t.Fatalf("Get = (%q,%v), want v2", got, err)
			}
			ro.Commit()
		})
	}
}

// Deep version chains: binary search must find the right version at every
// historical snapshot.
func TestDeepVersionChainSnapshots(t *testing.T) {
	e := newEngine(t, TimestampOrdering, nil)
	var tns []uint64
	for i := 0; i < 200; i++ {
		tx, _ := e.Begin(engine.ReadWrite)
		if err := tx.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tn, _ := tx.SN()
		tns = append(tns, tn)
	}
	for i, tn := range tns {
		ro, err := e.BeginReadOnlyAt(tn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ro.Get("k")
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("snapshot %d: got (%q,%v), want v%d", tn, got, err, i)
		}
		ro.Commit()
	}
}
