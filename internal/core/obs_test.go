package core

import (
	"sync"
	"testing"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
)

// TestSnapshotFields checks the engine-level snapshot assembly: counter
// registry, protocol name, vc gauges and storage-shape gauges.
func TestSnapshotFields(t *testing.T) {
	e := newEngine(t, TimestampOrdering, nil)
	mustCommitWrite(t, e, map[string]string{"a": "1", "b": "1"})
	mustCommitWrite(t, e, map[string]string{"a": "2"})
	ro, _ := e.Begin(engine.ReadOnly)
	ro.Get("a")
	ro.Commit()

	sn := e.Snapshot()
	if sn.Protocol != "vc+to" {
		t.Fatalf("protocol = %q", sn.Protocol)
	}
	if sn.CommitsRW != 2 || sn.BeginsRW != 2 || sn.CommitsRO != 1 || sn.BeginsRO != 1 {
		t.Fatalf("lifecycle counters = %+v", sn)
	}
	if sn.VTNC != sn.TNC-1 || sn.VisibilityLag != 0 {
		t.Fatalf("vc gauges = tnc=%d vtnc=%d lag=%d", sn.TNC, sn.VTNC, sn.VisibilityLag)
	}
	if sn.Keys != 2 || sn.Versions != 3 || sn.MaxVersionChain != 2 {
		t.Fatalf("storage gauges = keys=%d versions=%d max=%d", sn.Keys, sn.Versions, sn.MaxVersionChain)
	}
	if sn.MeanVersionChain != 1.5 {
		t.Fatalf("mean chain = %v", sn.MeanVersionChain)
	}
	m := sn.Map()
	if m["commits.rw"] != 2 || m["vc.tnc"] != int64(sn.TNC) {
		t.Fatalf("legacy map = %v", m)
	}
}

// TestLockWaitHistogram makes one transaction block behind another and
// checks the wait lands in the snapshot's lock-wait summary.
func TestLockWaitHistogram(t *testing.T) {
	e := newEngine(t, TwoPhaseLocking, nil)
	tx1, _ := e.Begin(engine.ReadWrite)
	if err := tx1.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx2, _ := e.Begin(engine.ReadWrite)
		if err := tx2.Put("x", []byte("2")); err != nil {
			t.Error(err)
			return
		}
		tx2.Commit()
	}()
	time.Sleep(20 * time.Millisecond) // let tx2 block on x
	tx1.Commit()
	wg.Wait()
	sn := e.Snapshot()
	if sn.LockWait.Count == 0 {
		t.Fatal("no lock waits recorded in histogram")
	}
	if sn.LockWait.Max < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("max lock wait %s implausibly small for a 20ms hold", time.Duration(sn.LockWait.Max))
	}
	if sn.LockWaits == 0 {
		t.Fatal("lock manager wait counter is zero")
	}
}

// TestAbortCauseCounters: each abort cause increments its own counter —
// including the timeout split (previously folded into deadlocks).
func TestAbortCauseCounters(t *testing.T) {
	e := New(Options{Protocol: TwoPhaseLocking, LockPolicy: lock.TimeoutPolicy, LockTimeout: 5 * time.Millisecond})
	defer e.Close()
	tx1, _ := e.Begin(engine.ReadWrite)
	tx1.Put("x", []byte("1"))
	tx2, _ := e.Begin(engine.ReadWrite)
	if err := tx2.Put("x", []byte("2")); err == nil {
		t.Fatal("expected a lock timeout")
	}
	tx1.Commit()
	sn := e.Snapshot()
	if sn.AbortsTimeout != 1 {
		t.Fatalf("aborts.timeout = %d, want 1", sn.AbortsTimeout)
	}
	if sn.AbortsDeadlock != 0 {
		t.Fatalf("timeout abort leaked into aborts.deadlock (%d)", sn.AbortsDeadlock)
	}
}

// TestTraceOptionRecordsEngineEvents wires a tracer through Options and
// checks lifecycle plus lock-wait events appear.
func TestTraceOptionRecordsEngineEvents(t *testing.T) {
	tr := obs.NewTracer(256)
	e := New(Options{Protocol: TwoPhaseLocking, Trace: tr})
	defer e.Close()

	tx1, _ := e.Begin(engine.ReadWrite)
	tx1.Put("x", []byte("1"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx2, _ := e.Begin(engine.ReadWrite)
		if tx2.Put("x", []byte("2")) == nil {
			tx2.Commit()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	tx1.Commit()
	wg.Wait()

	seen := map[obs.EventType]int{}
	for _, ev := range tr.Dump() {
		seen[ev.Type]++
	}
	for _, ty := range []obs.EventType{obs.EvBegin, obs.EvWrite, obs.EvCommit, obs.EvLockWait} {
		if seen[ty] == 0 {
			t.Errorf("no %s events traced (saw %v)", ty, seen)
		}
	}
}
