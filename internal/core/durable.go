// Durable open/checkpoint/compaction paths: everything in this file
// replaces a precious file only by the crash-atomic sequence
//
//	write temp file -> fsync temp -> rename over final -> fsync directory
//
// and reads it back through the same faultfs shim it was written
// through, so the crash-torture harness (internal/crashtest) can cut
// power at every one of these operations and recovery still satisfies
// the dual oracle: acknowledged commits survive, recovered state is a
// committed prefix.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mvdb/internal/faultfs"
	"mvdb/internal/storage"
	"mvdb/internal/wal"
)

// SnapPath returns the snapshot file companion to a commit log.
func SnapPath(walPath string) string { return walPath + ".snap" }

// snapTmpPath and compactTmpPath are the scratch files of the two
// atomic-replace sequences; OpenDurable removes stale ones (a crash
// between their creation and the rename leaves them behind).
func snapTmpPath(walPath string) string    { return SnapPath(walPath) + ".tmp" }
func compactTmpPath(walPath string) string { return walPath + ".compact.tmp" }

// DurableOptions configures OpenDurable beyond the engine options.
type DurableOptions struct {
	// FS is the filesystem every durability-path operation goes through.
	// Nil selects the production passthrough (faultfs.OS); the crash
	// harness injects a faultfs.FaultFS.
	FS faultfs.FS
	// WAL configures the reopened commit log (sync policy, group-commit
	// batching). WAL.FS is overridden with FS above.
	WAL wal.Options
}

// OpenDurable recovers an engine from the commit log at walPath (plus
// its snapshot, if one exists) and reopens the log for appending, with
// the log writer already attached to the engine. This is the one
// recovery entry point: mvdb.Open and the crash harness both use it, so
// the code path the torture tests exercise is the production one.
//
// Recovery is idempotent: stale temp files from an interrupted
// checkpoint or compaction are removed, the torn log tail (if any) is
// truncated and the truncation fsynced before the first new append is
// accepted.
func OpenDurable(walPath string, coreOpts Options, d DurableOptions) (*Engine, *wal.Writer, error) {
	fsys := d.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	// A crash between temp-file creation and rename leaves the temp
	// behind; it is garbage by construction (the rename never happened,
	// so the final file is still authoritative).
	for _, tmp := range []string{snapTmpPath(walPath), compactTmpPath(walPath)} {
		if _, err := fsys.Stat(tmp); err == nil {
			if err := fsys.Remove(tmp); err != nil {
				return nil, nil, fmt.Errorf("core: remove stale %s: %w", tmp, err)
			}
		}
	}
	horizon, snapRecs, err := LoadSnapshot(fsys, SnapPath(walPath))
	if err != nil {
		return nil, nil, fmt.Errorf("core: read snapshot: %w", err)
	}
	e, validLen, err := RestoreFS(fsys, snapRecs, horizon, walPath, coreOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: %w", err)
	}
	walOpts := d.WAL
	walOpts.FS = fsys
	log, err := wal.OpenAppendWith(walPath, validLen, walOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: open log: %w", err)
	}
	if err := e.SetWAL(log); err != nil {
		log.Close()
		return nil, nil, err
	}
	return e, log, nil
}

// LoadSnapshot reads a snapshot file through fsys (nil = faultfs.OS),
// returning its horizon and per-key versions, or (0, nil, nil) if none
// exists.
func LoadSnapshot(fsys faultfs.FS, path string) (horizon uint64, recs []wal.Record, err error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	first := true
	validLen, err := wal.ReplayFS(fsys, path, func(r wal.Record) error {
		if first {
			first = false
			horizon = r.TN
			return nil
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	// Snapshots are only ever produced whole (temp + fsync + rename +
	// dir fsync), so a torn tail here means the file is damaged in a way
	// our own crash windows cannot produce. Refusing it is the only safe
	// answer: silently restoring a partial snapshot would drop keys the
	// compacted log no longer carries.
	if fi, serr := fsys.Stat(path); serr == nil && fi.Size() != validLen {
		return 0, nil, fmt.Errorf("core: snapshot %s torn or corrupt (%d of %d bytes intact)", path, validLen, fi.Size())
	}
	return horizon, recs, nil
}

// RestoreFS is Restore reading the log through an explicit filesystem —
// crash recovery replays through the same shim the writer wrote through.
func RestoreFS(fsys faultfs.FS, base []wal.Record, horizon uint64, path string, opts Options) (*Engine, int64, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	e := New(opts)
	maxTN := horizon
	install := func(r wal.Record) {
		for _, w := range r.Writes {
			e.store.GetOrCreate(w.Key).InstallCommitted(storage.Version{
				TN: r.TN, Data: w.Value, Tombstone: w.Tombstone,
			})
		}
		if r.TN > maxTN {
			maxTN = r.TN
		}
	}
	for _, r := range base {
		install(r)
	}
	validLen, err := wal.ReplayFS(fsys, path, func(r wal.Record) error {
		if r.TN <= horizon {
			return nil // covered by the base snapshot
		}
		install(r)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	e.vc = newController(e.opts.Visibility, maxTN)
	e.observeVC() // the replaced controller needs the phase observer rewired
	e.bindHotVC() // ... and the hotspot profiler's visibility taps
	return e, validLen, nil
}

// WriteSnapshot writes a consistent snapshot of the engine's committed
// state at the current visibility horizon (vtnc) to SnapPath(walPath),
// crash-atomically: the snapshot content is fsynced in a temp file
// before a rename installs it, and the parent directory is fsynced
// after, so at every instant exactly one intact snapshot (the old or
// the new) is durable. The horizon is a fully committed prefix of the
// serial order by the Transaction Visibility Property, so this runs
// safely under any concurrent transaction load.
func (e *Engine) WriteSnapshot(fsys faultfs.FS, walPath string) error {
	start := time.Now()
	if fsys == nil {
		fsys = faultfs.OS
	}
	if e.opts.WAL != nil {
		// The log must durably cover everything the snapshot claims
		// (records <= horizon are skipped on restore only when the
		// snapshot supplies them).
		if err := e.opts.WAL.Flush(); err != nil {
			return err
		}
	}
	sn := e.vc.VTNC()
	final := SnapPath(walPath)
	tmp := snapTmpPath(walPath)
	recs := make([]wal.Record, 0, 64)
	recs = append(recs, wal.Record{TN: sn}) // first record: the horizon
	e.store.Range(func(key string, o *storage.Object) bool {
		v, ok := o.ReadVisible(sn)
		if !ok {
			return true
		}
		recs = append(recs, wal.Record{TN: v.TN, Writes: []wal.Write{{
			Key: key, Value: v.Data, Tombstone: v.Tombstone,
		}}})
		return true
	})
	if err := atomicWriteLog(fsys, tmp, final, recs); err != nil {
		return err
	}
	end := time.Now()
	e.stats.CheckpointDurationNanos.Set(end.Sub(start).Nanoseconds())
	e.stats.CheckpointLastUnixNanos.Set(end.UnixNano())
	return nil
}

// Compact rewrites the commit log at walPath through fsys (nil =
// faultfs.OS), dropping every record already covered by its snapshot
// (TN <= the snapshot horizon). It must run offline — no engine open on
// the log — and is a no-op without a snapshot. The replacement is
// crash-atomic by the same temp+fsync+rename+dirsync sequence as
// WriteSnapshot: a crash anywhere leaves either the full old log or the
// compacted one, never a hybrid.
func Compact(fsys faultfs.FS, walPath string) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	horizon, _, err := LoadSnapshot(fsys, SnapPath(walPath))
	if err != nil {
		return fmt.Errorf("core: compact: read snapshot: %w", err)
	}
	if horizon == 0 {
		return nil
	}
	var keep []wal.Record
	if _, err := wal.ReplayFS(fsys, walPath, func(r wal.Record) error {
		if r.TN > horizon {
			keep = append(keep, r)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("core: compact: read log: %w", err)
	}
	return atomicWriteLog(fsys, compactTmpPath(walPath), walPath, keep)
}

// AtomicReplace writes data to final through fsys (nil = faultfs.OS)
// via the same crash-atomic replace sequence as the checkpoint path:
// write a temp file, fsync it, rename over final, fsync the parent
// directory. At every instant either the old file or the whole new one
// is durable under the final name — never a hybrid. The flight
// recorder writes its postmortem bundles through this.
func AtomicReplace(fsys faultfs.FS, final string, data []byte) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(final))
}

// atomicWriteLog writes recs as a log file at final via the
// crash-atomic replace sequence: create tmp, append, fsync (the log
// writer's Close), rename over final, fsync the parent directory. On
// any error the temp file is removed best-effort.
func atomicWriteLog(fsys faultfs.FS, tmp, final string, recs []wal.Record) error {
	w, err := wal.CreateWith(tmp, wal.Options{Policy: wal.SyncNever, FS: fsys})
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = fsys.Remove(tmp)
		return err
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			w.Close()
			return fail(err)
		}
	}
	// Close flushes and fsyncs: the content is durable before the rename
	// can make it reachable under the final name.
	if err := w.Close(); err != nil {
		return fail(err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fail(err)
	}
	// Without this, the rename's directory entry may not survive a power
	// cut — the file would silently revert to the old version.
	if err := fsys.SyncDir(filepath.Dir(final)); err != nil {
		return err
	}
	return nil
}
