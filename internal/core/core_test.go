package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/lock"
)

func allProtocols() []Protocol {
	return []Protocol{TwoPhaseLocking, TimestampOrdering, Optimistic}
}

func newEngine(t *testing.T, p Protocol, rec engine.Recorder) *Engine {
	t.Helper()
	e := New(Options{Protocol: p, Recorder: rec})
	t.Cleanup(func() { e.Close() })
	return e
}

func mustCommitWrite(t *testing.T, e *Engine, kv map[string]string) uint64 {
	t.Helper()
	for {
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for k, v := range kv {
			if err := tx.Put(k, []byte(v)); err != nil {
				if engine.Retryable(err) {
					ok = false
					break
				}
				t.Fatal(err)
			}
		}
		if !ok {
			continue
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		tn, _ := tx.SN()
		return tn
	}
}

func TestBasicReadWriteCycle(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"a": "1"})

			tx, err := e.Begin(engine.ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tx.Get("a")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "1" {
				t.Fatalf("Get(a) = %q, want 1", got)
			}
			if err := tx.Put("a", []byte("2")); err != nil {
				t.Fatal(err)
			}
			// read-own-write
			got, err = tx.Get("a")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "2" {
				t.Fatalf("read-own-write = %q, want 2", got)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			ro, err := e.Begin(engine.ReadOnly)
			if err != nil {
				t.Fatal(err)
			}
			got, err = ro.Get("a")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "2" {
				t.Fatalf("snapshot Get(a) = %q, want 2", got)
			}
			if err := ro.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGetAbsentKey(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			tx, _ := e.Begin(engine.ReadWrite)
			if _, err := tx.Get("nope"); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
			tx.Abort()
			ro, _ := e.Begin(engine.ReadOnly)
			if _, err := ro.Get("nope"); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("ro err = %v, want ErrNotFound", err)
			}
			ro.Commit()
		})
	}
}

func TestDeleteBecomesTombstone(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"k": "v"})
			roBefore, _ := e.Begin(engine.ReadOnly)

			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// The old snapshot still sees the value (time travel).
			if got, err := roBefore.Get("k"); err != nil || string(got) != "v" {
				t.Fatalf("old snapshot Get = (%q,%v), want v", got, err)
			}
			roBefore.Commit()

			roAfter, _ := e.Begin(engine.ReadOnly)
			if _, err := roAfter.Get("k"); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("post-delete Get err = %v, want ErrNotFound", err)
			}
			roAfter.Commit()
		})
	}
}

func TestReadOnlyCannotWrite(t *testing.T) {
	e := newEngine(t, TwoPhaseLocking, nil)
	ro, _ := e.Begin(engine.ReadOnly)
	if err := ro.Put("a", nil); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("Put err = %v, want ErrReadOnly", err)
	}
	if err := ro.Delete("a"); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("Delete err = %v, want ErrReadOnly", err)
	}
	ro.Commit()
}

func TestUseAfterFinish(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Get("a"); !errors.Is(err, engine.ErrTxDone) {
				t.Fatalf("Get err = %v, want ErrTxDone", err)
			}
			if err := tx.Put("a", nil); !errors.Is(err, engine.ErrTxDone) {
				t.Fatalf("Put err = %v, want ErrTxDone", err)
			}
			if err := tx.Commit(); !errors.Is(err, engine.ErrTxDone) {
				t.Fatalf("second Commit err = %v, want ErrTxDone", err)
			}
			tx.Abort() // idempotent no-op
		})
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"k": "old"})
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Put("k", []byte("new")); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
			ro, _ := e.Begin(engine.ReadOnly)
			got, err := ro.Get("k")
			if err != nil || string(got) != "old" {
				t.Fatalf("Get = (%q,%v), want old", got, err)
			}
			ro.Commit()
		})
	}
}

// A read-only transaction's snapshot is fixed at begin: writes that commit
// later are invisible (repeatable reads without any locks).
func TestSnapshotStability(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"x": "1", "y": "1"})
			ro, _ := e.Begin(engine.ReadOnly)
			if got, _ := ro.Get("x"); string(got) != "1" {
				t.Fatalf("x = %q", got)
			}
			mustCommitWrite(t, e, map[string]string{"x": "2", "y": "2"})
			// Old snapshot must keep seeing 1 for both keys.
			if got, _ := ro.Get("x"); string(got) != "1" {
				t.Fatalf("x after overwrite = %q, want 1", got)
			}
			if got, _ := ro.Get("y"); string(got) != "1" {
				t.Fatalf("y after overwrite = %q, want 1", got)
			}
			ro.Commit()
			ro2, _ := e.Begin(engine.ReadOnly)
			if got, _ := ro2.Get("x"); string(got) != "2" {
				t.Fatalf("fresh snapshot x = %q, want 2", got)
			}
			ro2.Commit()
		})
	}
}

// Delayed visibility (paper Section 6): while an older registered
// transaction is active, a younger one's commit stays invisible; the
// recency rectification (BeginReadOnlyAt) waits it out.
func TestDelayedVisibilityAndRecencyRectification(t *testing.T) {
	e := newEngine(t, TimestampOrdering, nil)
	mustCommitWrite(t, e, map[string]string{"k": "0"})

	older, _ := e.Begin(engine.ReadWrite) // registers first, stays active
	if err := older.Put("unrelated", []byte("x")); err != nil {
		t.Fatal(err)
	}

	younger, _ := e.Begin(engine.ReadWrite)
	if err := younger.Put("k", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	youngerTN, _ := younger.SN()

	// Plain read-only txn: must still see the old value.
	ro, _ := e.Begin(engine.ReadOnly)
	if got, _ := ro.Get("k"); string(got) != "0" {
		t.Fatalf("delayed visibility broken: got %q, want 0", got)
	}
	ro.Commit()
	if lag := e.VC().Lag(); lag == 0 {
		t.Fatal("expected a visibility lag while older txn active")
	}

	// Recency-rectified reader blocks until the older txn resolves.
	done := make(chan string)
	go func() {
		roRecent, err := e.BeginReadOnlyAt(youngerTN)
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		got, _ := roRecent.Get("k")
		roRecent.Commit()
		done <- string(got)
	}()
	select {
	case v := <-done:
		t.Fatalf("recent reader returned %q before older txn finished", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "1" {
			t.Fatalf("recent reader saw %q, want 1", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recent reader never unblocked")
	}
}

// The headline claim (Sections 1, 4.2): read-only transactions are never
// blocked by read-write transactions — even ones holding exclusive locks
// or pending writes on the very keys being read.
func TestReadOnlyNeverBlocks(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			e := newEngine(t, p, nil)
			mustCommitWrite(t, e, map[string]string{"hot": "committed"})

			rw, _ := e.Begin(engine.ReadWrite)
			if err := rw.Put("hot", []byte("uncommitted")); err != nil {
				t.Fatal(err)
			}

			done := make(chan string)
			go func() {
				ro, _ := e.Begin(engine.ReadOnly)
				v, _ := ro.Get("hot")
				ro.Commit()
				done <- string(v)
			}()
			select {
			case v := <-done:
				if v != "committed" {
					t.Fatalf("ro read %q, want committed", v)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("read-only transaction blocked behind a writer")
			}
			if err := rw.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// 2PL-specific: conflicting writers deadlock and one is aborted; retry
// succeeds.
func TestTwoPhaseDeadlockVictimRetries(t *testing.T) {
	e := newEngine(t, TwoPhaseLocking, nil)
	mustCommitWrite(t, e, map[string]string{"a": "0", "b": "0"})

	var wg sync.WaitGroup
	run := func(k1, k2 string) {
		defer wg.Done()
		for {
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Put(k1, []byte("x")); err != nil {
				continue
			}
			time.Sleep(5 * time.Millisecond)
			if err := tx.Put(k2, []byte("y")); err != nil {
				continue
			}
			if err := tx.Commit(); err == nil {
				return
			}
		}
	}
	wg.Add(2)
	go run("a", "b")
	go run("b", "a")
	donec := make(chan struct{})
	go func() { wg.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock not resolved")
	}
}

// T/O-specific: a write that arrives after a younger read aborts
// (write-rejection, Figure 3).
func TestTimestampWriteRejection(t *testing.T) {
	e := newEngine(t, TimestampOrdering, nil)
	mustCommitWrite(t, e, map[string]string{"k": "0"})

	older, _ := e.Begin(engine.ReadWrite)
	younger, _ := e.Begin(engine.ReadWrite)
	if _, err := younger.Get("k"); err != nil {
		t.Fatal(err)
	}
	err := older.Put("k", []byte("late"))
	if !errors.Is(err, engine.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.Stats()["aborts.conflict"] != 1 {
		t.Fatalf("aborts.conflict = %d, want 1", e.Stats()["aborts.conflict"])
	}
}

// OCC-specific: validation fails when a read object changed.
func TestOptimisticValidationFailure(t *testing.T) {
	e := newEngine(t, Optimistic, nil)
	mustCommitWrite(t, e, map[string]string{"k": "0"})

	reader, _ := e.Begin(engine.ReadWrite)
	if _, err := reader.Get("k"); err != nil {
		t.Fatal(err)
	}
	mustCommitWrite(t, e, map[string]string{"k": "1"})
	if err := reader.Put("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := reader.Commit(); !errors.Is(err, engine.ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
}

func TestWoundWaitPolicy(t *testing.T) {
	e := New(Options{Protocol: TwoPhaseLocking, LockPolicy: lock.WoundWait})
	defer e.Close()
	mustCommitWrite(t, e, map[string]string{"k": "0"})

	older, _ := e.Begin(engine.ReadWrite) // begun first => smaller age
	younger, _ := e.Begin(engine.ReadWrite)
	if err := younger.Put("k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// The older transaction requests the lock: it wounds the younger
	// holder (synchronously, inside Acquire) and waits.
	errc := make(chan error, 1)
	go func() { errc <- older.Put("k", []byte("o")) }()
	// Wait until the wound has landed, then the younger commit must fail.
	deadline := time.Now().Add(5 * time.Second)
	for !e.locks.Wounded(younger.ID()) {
		if time.Now().After(deadline) {
			t.Fatal("younger transaction never wounded")
		}
		time.Sleep(time.Millisecond)
	}
	if err := younger.Commit(); !errors.Is(err, engine.ErrWounded) {
		t.Fatalf("younger Commit err = %v, want ErrWounded", err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapAfterBeginFails(t *testing.T) {
	e := newEngine(t, TwoPhaseLocking, nil)
	tx, _ := e.Begin(engine.ReadWrite)
	tx.Abort()
	if err := e.Bootstrap(map[string][]byte{"a": nil}); err == nil {
		t.Fatal("Bootstrap after Begin should fail")
	}
}

func TestMinActiveReadOnlySN(t *testing.T) {
	e := New(Options{Protocol: TwoPhaseLocking, TrackReadOnly: true})
	defer e.Close()
	if _, ok := e.MinActiveReadOnlySN(); ok {
		t.Fatal("expected no active read-only txns")
	}
	mustCommitWrite(t, e, map[string]string{"a": "1"})
	ro1, _ := e.Begin(engine.ReadOnly)
	sn1, _ := ro1.SN()
	mustCommitWrite(t, e, map[string]string{"a": "2"})
	ro2, _ := e.Begin(engine.ReadOnly)
	min, ok := e.MinActiveReadOnlySN()
	if !ok || min != sn1 {
		t.Fatalf("min = (%d,%v), want (%d,true)", min, ok, sn1)
	}
	ro1.Commit()
	sn2, _ := ro2.SN()
	min, ok = e.MinActiveReadOnlySN()
	if !ok || min != sn2 {
		t.Fatalf("min = (%d,%v), want (%d,true)", min, ok, sn2)
	}
	ro2.Abort()
	if _, ok := e.MinActiveReadOnlySN(); ok {
		t.Fatal("registry not drained")
	}
}

// --- Ablation A1: registering 2PL transactions before the lock-point is
// incorrect, and the history checker proves it on a deterministic
// interleaving (DESIGN.md experiment A1).
func TestAblationEarlyRegister2PL(t *testing.T) {
	rec := history.NewRecorder()
	e := New(Options{Protocol: TwoPhaseLocking, Recorder: rec, UnsafeEarlyRegister2PL: true})
	defer e.Close()
	mustCommitWrite(t, e, map[string]string{"x": "0"})

	t1, _ := e.Begin(engine.ReadWrite) // registers now: tn fixed too early
	t2, _ := e.Begin(engine.ReadWrite)
	if err := t2.Put("x", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// T1 now reads T2's write and overwrites it — with a SMALLER tn.
	if _, err := t1.Get("x"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("x", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// A read-only observer: with T1 registered early, tn(T1) < tn(T2), so
	// the snapshot resolves to T2's version even though T1 overwrote it —
	// its read closes the MVSG cycle.
	obs, _ := e.Begin(engine.ReadOnly)
	if got, _ := obs.Get("x"); string(got) != "t2" {
		t.Fatalf("ablated engine snapshot = %q; expected the anomalous t2", got)
	}
	obs.Commit()
	if err := rec.Check(); err == nil {
		t.Fatal("checker accepted the early-register history; expected an MVSG cycle")
	} else {
		t.Logf("checker correctly rejected: %v", err)
	}

	// Control: same interleaving on the correct engine is accepted.
	rec2 := history.NewRecorder()
	e2 := New(Options{Protocol: TwoPhaseLocking, Recorder: rec2})
	defer e2.Close()
	mustCommitWrite(t, e2, map[string]string{"x": "0"})
	u1, _ := e2.Begin(engine.ReadWrite)
	u2, _ := e2.Begin(engine.ReadWrite)
	if err := u2.Put("x", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := u2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := u1.Get("x"); err != nil {
		t.Fatal(err)
	}
	if err := u1.Put("x", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := u1.Commit(); err != nil {
		t.Fatal(err)
	}
	obs2, _ := e2.Begin(engine.ReadOnly)
	if got, _ := obs2.Get("x"); string(got) != "t1" {
		t.Fatalf("correct engine snapshot = %q, want t1", got)
	}
	obs2.Commit()
	if err := rec2.Check(); err != nil {
		t.Fatalf("correct engine produced a bad history: %v", err)
	}
}

// --- Ablation A2: advancing vtnc in completion order exposes an
// inconsistent snapshot to read-only transactions (DESIGN.md A2).
func TestAblationEagerVisibility(t *testing.T) {
	rec := history.NewRecorder()
	e := New(Options{Protocol: TimestampOrdering, Recorder: rec, UnsafeEagerVisibility: true})
	defer e.Close()
	e.Bootstrap(map[string][]byte{"y": []byte("0"), "z": []byte("0")})

	// T1 (older) reads z and writes y; T2 (younger) overwrites z and
	// completes first. The anti-dependency T1 -> T2 on z, combined with an
	// eager snapshot that sees T2's z but not T1's y, is non-serializable.
	t1, _ := e.Begin(engine.ReadWrite)
	t2, _ := e.Begin(engine.ReadWrite)
	if _, err := t1.Get("z"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("y", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("z", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if got, _ := ro.Get("z"); string(got) != "t2" {
		t.Fatalf("ablated engine hid t2's write (got %q); test setup broken", got)
	}
	if got, _ := ro.Get("y"); string(got) != "0" {
		t.Fatalf("ro saw y=%q, want bootstrap 0", got)
	}
	ro.Commit()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Check(); err == nil {
		t.Fatal("checker accepted the eager-visibility history; expected an MVSG cycle")
	} else {
		t.Logf("checker correctly rejected: %v", err)
	}
}

// Randomized concurrent stress for every protocol, validated by the MVSG
// checker and a bank-style conservation invariant.
func TestStressSerializability(t *testing.T) {
	const (
		nKeys    = 16
		nWorkers = 8
		nTxns    = 120
		initBal  = 100
	)
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			rec := history.NewRecorder()
			e := New(Options{Protocol: p, Recorder: rec})
			defer e.Close()

			boot := make(map[string][]byte)
			for i := 0; i < nKeys; i++ {
				boot[fmt.Sprintf("acct%02d", i)] = []byte{initBal}
			}
			if err := e.Bootstrap(boot); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for w := 0; w < nWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < nTxns; i++ {
						if rng.Intn(3) == 0 {
							// read-only audit of a few accounts
							ro, _ := e.Begin(engine.ReadOnly)
							for j := 0; j < 3; j++ {
								k := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
								if _, err := ro.Get(k); err != nil && !errors.Is(err, engine.ErrNotFound) {
									t.Errorf("ro get: %v", err)
								}
							}
							ro.Commit()
							continue
						}
						// transfer 1 unit between two random accounts
						for attempt := 0; attempt < 50; attempt++ {
							from := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
							to := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
							if from == to {
								continue
							}
							tx, _ := e.Begin(engine.ReadWrite)
							fv, err := tx.Get(from)
							if err != nil {
								tx.Abort()
								continue
							}
							tv, err := tx.Get(to)
							if err != nil {
								tx.Abort()
								continue
							}
							if fv[0] == 0 {
								tx.Abort()
								break
							}
							if err := tx.Put(from, []byte{fv[0] - 1}); err != nil {
								continue
							}
							if err := tx.Put(to, []byte{tv[0] + 1}); err != nil {
								continue
							}
							if err := tx.Commit(); err == nil {
								break
							}
						}
					}
				}(w)
			}
			wg.Wait()

			// Conservation: total balance unchanged.
			ro, _ := e.Begin(engine.ReadOnly)
			total := 0
			for i := 0; i < nKeys; i++ {
				v, err := ro.Get(fmt.Sprintf("acct%02d", i))
				if err != nil {
					t.Fatal(err)
				}
				total += int(v[0])
			}
			ro.Commit()
			if total != nKeys*initBal {
				t.Fatalf("balance not conserved: %d != %d", total, nKeys*initBal)
			}

			if err := rec.Check(); err != nil {
				t.Fatalf("history not one-copy serializable: %v", err)
			}
			if got := e.Stats()["rw.aborts.by_ro"]; got != 0 {
				t.Fatalf("VC engine recorded %d rw aborts caused by read-only txns; paper says 0", got)
			}
			if n := rec.CommittedCount(); n < nWorkers*nTxns/2 {
				t.Fatalf("suspiciously few commits: %d", n)
			}
			if err := e.VC().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
