package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/wal"
)

// Commit through the WAL, "crash" (drop the engine without closing), and
// recover: every committed transaction must be visible, with the version
// control module resuming past the recovered horizon.
func TestWALRecoveryRoundTrip(t *testing.T) {
	for _, p := range allProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "commit.log")
			w, err := wal.Create(path, wal.SyncEveryCommit)
			if err != nil {
				t.Fatal(err)
			}
			e := New(Options{Protocol: p, WAL: w})
			for i := 0; i < 10; i++ {
				mustCommitWrite(t, e, map[string]string{
					"k":                     fmt.Sprintf("v%d", i),
					fmt.Sprintf("key%d", i): "x",
				})
			}
			// Delete one key so tombstones are exercised through recovery.
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Delete("key3"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			// Crash: no Close, engine dropped.

			re, validLen, err := Recover(path, Options{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if fi, _ := os.Stat(path); fi.Size() != validLen {
				t.Fatalf("validLen %d != size %d (log was cleanly flushed)", validLen, fi.Size())
			}
			w2, err := wal.OpenAppend(path, validLen, wal.SyncEveryCommit)
			if err != nil {
				t.Fatal(err)
			}
			if err := re.SetWAL(w2); err != nil {
				t.Fatal(err)
			}
			ro, _ := re.Begin(engine.ReadOnly)
			if got, err := ro.Get("k"); err != nil || string(got) != "v9" {
				t.Fatalf("recovered Get(k) = (%q,%v), want v9", got, err)
			}
			if _, err := ro.Get("key3"); err != engine.ErrNotFound {
				t.Fatalf("recovered Get(key3) err = %v, want ErrNotFound", err)
			}
			if got, err := ro.Get("key7"); err != nil || string(got) != "x" {
				t.Fatalf("recovered Get(key7) = (%q,%v)", got, err)
			}
			ro.Commit()

			// New transactions must receive numbers past the recovered max.
			tx2, _ := re.Begin(engine.ReadWrite)
			if err := tx2.Put("k", []byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			tn, _ := tx2.SN()
			if tn <= 11 {
				t.Fatalf("post-recovery tn = %d, want > 11", tn)
			}
			w2.Close()
		})
	}
}

// A torn tail (partial final record) is discarded on recovery; everything
// before it survives.
func TestRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	w, err := wal.Create(path, wal.SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Protocol: TwoPhaseLocking, WAL: w})
	mustCommitWrite(t, e, map[string]string{"a": "1"})
	mustCommitWrite(t, e, map[string]string{"a": "2"})
	mustCommitWrite(t, e, map[string]string{"a": "torn"})
	w.Close()

	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	re, _, err := Recover(path, Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ro, _ := re.Begin(engine.ReadOnly)
	got, err := ro.Get("a")
	if err != nil || string(got) != "2" {
		t.Fatalf("Get(a) = (%q,%v), want 2 (torn commit dropped)", got, err)
	}
	ro.Commit()
}

// SetWAL is rejected once transactions have started.
func TestSetWALAfterBegin(t *testing.T) {
	e := New(Options{Protocol: TwoPhaseLocking})
	defer e.Close()
	tx, _ := e.Begin(engine.ReadWrite)
	tx.Abort()
	if err := e.SetWAL(nil); err == nil {
		t.Fatal("SetWAL after Begin succeeded")
	}
}
