package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("Keys=0 accepted")
	}
	if err := (Config{Keys: 10, ReadOnlyFraction: 1.5}).Validate(); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	if err := (Config{Keys: 10, Zipf: 0.5}).Validate(); err == nil {
		t.Fatal("zipf 0.5 accepted")
	}
	if err := (Config{Keys: 10, Zipf: 1.3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Keys: 100, ReadOnlyFraction: 0.3, Seed: 42, Zipf: 1.2}
	a, err := NewSource(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSource(cfg, 7)
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(a.Next(), b.Next()) {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	// Different client -> different stream (statistically certain to
	// differ within 200 txns).
	c, _ := NewSource(cfg, 8)
	same := true
	a2, _ := NewSource(cfg, 7)
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(a2.Next(), c.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different clients produced identical streams")
	}
}

func TestReadOnlyFraction(t *testing.T) {
	cfg := Config{Keys: 10, ReadOnlyFraction: 0.5, Seed: 1}
	s, _ := NewSource(cfg, 0)
	ro := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if s.Next().ReadOnly {
			ro++
		}
	}
	if ro < n*4/10 || ro > n*6/10 {
		t.Fatalf("read-only share = %d/%d, want ~50%%", ro, n)
	}
}

func TestTxnShapes(t *testing.T) {
	cfg := Config{Keys: 10, ROReads: 3, RWReads: 2, RWWrites: 4, ReadOnlyFraction: 0.5, Seed: 3}
	s, _ := NewSource(cfg, 0)
	for i := 0; i < 100; i++ {
		spec := s.Next()
		if spec.ReadOnly {
			if len(spec.Ops) != 3 {
				t.Fatalf("ro ops = %d", len(spec.Ops))
			}
			for _, op := range spec.Ops {
				if op.Write {
					t.Fatal("write in read-only spec")
				}
			}
		} else {
			reads, writes := 0, 0
			for _, op := range spec.Ops {
				if op.Write {
					writes++
					if len(op.Value) == 0 {
						t.Fatal("write without value")
					}
				} else {
					reads++
				}
			}
			if reads != 2 || writes != 4 {
				t.Fatalf("rw shape = %d reads, %d writes", reads, writes)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	uni, _ := NewSource(Config{Keys: 1000, Seed: 5}, 0)
	hot, _ := NewSource(Config{Keys: 1000, Seed: 5, Zipf: 1.5}, 0)
	countTop := func(s *Source) int {
		freq := map[string]int{}
		for i := 0; i < 4000; i++ {
			for _, op := range s.Next().Ops {
				freq[op.Key]++
			}
		}
		max := 0
		for _, n := range freq {
			if n > max {
				max = n
			}
		}
		return max
	}
	u, h := countTop(uni), countTop(hot)
	if h < u*3 {
		t.Fatalf("zipf top-key frequency %d not much hotter than uniform %d", h, u)
	}
}

func TestBootstrapCoversKeySpace(t *testing.T) {
	cfg := Config{Keys: 50, KeyPrefix: "acct"}
	boot := cfg.Bootstrap()
	if len(boot) != 50 {
		t.Fatalf("bootstrap size = %d", len(boot))
	}
	s, _ := NewSource(cfg, 0)
	for i := 0; i < 500; i++ {
		for _, op := range s.Next().Ops {
			if _, ok := boot[op.Key]; !ok {
				t.Fatalf("generated key %q not bootstrapped", op.Key)
			}
			if !strings.HasPrefix(op.Key, "acct") {
				t.Fatalf("key %q missing prefix", op.Key)
			}
		}
	}
}

func TestReadModifyWriteShape(t *testing.T) {
	cfg := Config{Keys: 16, RWReads: 3, ReadModifyWrite: true, Seed: 5}
	s, _ := NewSource(cfg, 0)
	for i := 0; i < 200; i++ {
		spec := s.Next()
		if spec.ReadOnly {
			t.Fatal("unexpected read-only spec")
		}
		if len(spec.Ops)%2 != 0 {
			t.Fatalf("odd op count %d", len(spec.Ops))
		}
		n := len(spec.Ops) / 2
		readKeys := map[string]bool{}
		for j := 0; j < n; j++ {
			op := spec.Ops[j]
			if op.Write {
				t.Fatal("write in read half")
			}
			readKeys[op.Key] = true
		}
		for j := n; j < 2*n; j++ {
			op := spec.Ops[j]
			if !op.Write || len(op.Value) == 0 {
				t.Fatal("bad write half")
			}
			if !readKeys[op.Key] {
				t.Fatalf("write to unread key %q", op.Key)
			}
		}
	}
}
