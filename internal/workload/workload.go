// Package workload generates the transaction mixes used by the experiment
// harness: configurable read-only fraction, transaction shapes, key-space
// size and skew (uniform or Zipf-distributed hot keys), with deterministic
// per-client streams so every engine sees an identical workload.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is a single read or write step inside a transaction spec.
type Op struct {
	Key   string
	Write bool
	Value []byte
}

// TxnSpec is one generated transaction: a class and an ordered op list.
type TxnSpec struct {
	ReadOnly bool
	Ops      []Op
}

// Config describes a workload.
type Config struct {
	// Keys is the key-space size (required, > 0).
	Keys int
	// KeyPrefix prefixes every generated key (default "key").
	KeyPrefix string
	// ReadOnlyFraction in [0,1] selects the share of read-only
	// transactions.
	ReadOnlyFraction float64
	// ROReads is the number of reads per read-only transaction
	// (default 4).
	ROReads int
	// RWReads and RWWrites shape read-write transactions (defaults 2, 2).
	RWReads  int
	RWWrites int
	// ReadModifyWrite makes each read-write transaction read and then
	// overwrite the SAME keys (RWWrites is ignored; RWReads keys are
	// chosen). This is the classic counter/balance update shape and the
	// most conflict-prone pattern under every protocol.
	ReadModifyWrite bool
	// ValueSize is the payload size in bytes (default 8).
	ValueSize int
	// Zipf > 1 selects Zipf-skewed key popularity with that s parameter
	// (e.g. 1.2 mild, 1.6 hot); 0 selects uniform.
	Zipf float64
	// Seed makes generation deterministic across engines.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.KeyPrefix == "" {
		c.KeyPrefix = "key"
	}
	if c.ROReads <= 0 {
		c.ROReads = 4
	}
	if c.RWReads < 0 {
		c.RWReads = 0
	}
	if c.RWReads == 0 && c.RWWrites == 0 {
		c.RWReads, c.RWWrites = 2, 2
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 8
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Keys <= 0 {
		return fmt.Errorf("workload: Keys must be > 0, got %d", c.Keys)
	}
	if c.ReadOnlyFraction < 0 || c.ReadOnlyFraction > 1 {
		return fmt.Errorf("workload: ReadOnlyFraction %v outside [0,1]", c.ReadOnlyFraction)
	}
	if c.Zipf != 0 && c.Zipf <= 1 {
		return fmt.Errorf("workload: Zipf parameter must be > 1 (or 0 for uniform), got %v", c.Zipf)
	}
	return nil
}

// Source generates a deterministic transaction stream. Not safe for
// concurrent use: create one per client with NewSource(cfg, clientID).
type Source struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewSource creates the stream for one client. Streams with the same
// (cfg.Seed, client) are identical run to run and engine to engine.
func NewSource(cfg Config, client int) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(client)))
	s := &Source{cfg: cfg, rng: rng}
	if cfg.Zipf > 1 {
		s.zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(cfg.Keys-1))
	}
	return s, nil
}

func (s *Source) key() string {
	var i uint64
	if s.zipf != nil {
		i = s.zipf.Uint64()
	} else {
		i = uint64(s.rng.Intn(s.cfg.Keys))
	}
	return fmt.Sprintf("%s%06d", s.cfg.KeyPrefix, i)
}

func (s *Source) value() []byte {
	v := make([]byte, s.cfg.ValueSize)
	for i := range v {
		v[i] = byte(s.rng.Intn(256))
	}
	return v
}

// Next generates the next transaction spec.
func (s *Source) Next() TxnSpec {
	if s.rng.Float64() < s.cfg.ReadOnlyFraction {
		ops := make([]Op, s.cfg.ROReads)
		for i := range ops {
			ops[i] = Op{Key: s.key()}
		}
		return TxnSpec{ReadOnly: true, Ops: ops}
	}
	if s.cfg.ReadModifyWrite {
		ops := make([]Op, 0, 2*s.cfg.RWReads)
		seen := map[string]bool{}
		for i := 0; i < s.cfg.RWReads; i++ {
			k := s.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			ops = append(ops, Op{Key: k})
		}
		n := len(ops)
		for i := 0; i < n; i++ {
			ops = append(ops, Op{Key: ops[i].Key, Write: true, Value: s.value()})
		}
		return TxnSpec{Ops: ops}
	}
	ops := make([]Op, 0, s.cfg.RWReads+s.cfg.RWWrites)
	for i := 0; i < s.cfg.RWReads; i++ {
		ops = append(ops, Op{Key: s.key()})
	}
	for i := 0; i < s.cfg.RWWrites; i++ {
		ops = append(ops, Op{Key: s.key(), Write: true, Value: s.value()})
	}
	return TxnSpec{Ops: ops}
}

// Bootstrap returns initial values for the whole key space, for
// Engine.Bootstrap, so reads never miss.
func (c Config) Bootstrap() map[string][]byte {
	c = c.withDefaults()
	m := make(map[string][]byte, c.Keys)
	for i := 0; i < c.Keys; i++ {
		v := make([]byte, c.ValueSize)
		m[fmt.Sprintf("%s%06d", c.KeyPrefix, i)] = v
	}
	return m
}
