package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/history"
)

func newCluster(t *testing.T, sites int, rec engine.Recorder) *Cluster {
	t.Helper()
	c, err := New(Options{Sites: sites, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// keyAt constructs a key that partitions to the wanted site (brute-force
// over a suffix; deterministic given the default partitioner).
func keyAt(c *Cluster, site int, hint string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d", hint, i)
		if c.opts.Partition(k) == site {
			return k
		}
	}
}

func TestSingleSiteBasics(t *testing.T) {
	c := newCluster(t, 1, nil)
	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := c.Begin(engine.ReadOnly)
	if v, err := ro.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("Get = (%q,%v)", v, err)
	}
	ro.Commit()
}

func TestCrossSiteTransactionSameTNEverywhere(t *testing.T) {
	c := newCluster(t, 3, nil)
	kA := keyAt(c, 0, "a")
	kB := keyAt(c, 2, "b")

	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Put(kA, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(kB, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tn, ok := tx.(*DTx).SN()
	if !ok {
		t.Fatal("committed DTx has no tn")
	}
	vA := c.sites[0].store.Get(kA).Versions()
	vB := c.sites[2].store.Get(kB).Versions()
	if len(vA) != 1 || len(vB) != 1 || vA[0].TN != tn || vB[0].TN != tn {
		t.Fatalf("versions: A=%+v B=%+v, want both tn=%d", vA, vB, tn)
	}
}

func TestLocalNumbersAreDisjointAcrossSites(t *testing.T) {
	c := newCluster(t, 4, nil)
	seen := map[uint64]int{}
	for site := 0; site < 4; site++ {
		for i := 0; i < 5; i++ {
			k := keyAt(c, site, fmt.Sprintf("s%d-%d", site, i))
			tx, _ := c.Begin(engine.ReadWrite)
			if err := tx.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tn, _ := tx.(*DTx).SN()
			if other, dup := seen[tn]; dup {
				t.Fatalf("tn %d assigned at sites %d and %d", tn, other, site)
			}
			seen[tn] = site
		}
	}
}

// A read-only transaction needs NO a-priori knowledge of its read sites:
// it fixes sn at its home site and lagging sites catch up via fillers.
func TestReadOnlyNoAPrioriSites(t *testing.T) {
	c := newCluster(t, 3, nil)
	k0 := keyAt(c, 0, "home")
	k2 := keyAt(c, 2, "remote")
	if err := c.Bootstrap(map[string][]byte{k0: []byte("h0"), k2: []byte("r0")}); err != nil {
		t.Fatal(err)
	}

	// Drive site 0 forward so its vtnc outruns idle site 2.
	for i := 0; i < 5; i++ {
		tx, _ := c.Begin(engine.ReadWrite)
		if err := tx.Put(k0, []byte(fmt.Sprintf("h%d", i+1))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if c.sites[0].vc.VTNC() <= c.sites[2].vc.VTNC() {
		t.Fatal("test setup: site 0 not ahead")
	}

	ro, err := c.BeginReadOnlyAtHome(0)
	if err != nil {
		t.Fatal(err)
	}
	// The remote site was never named in advance; the read must succeed
	// and observe a consistent snapshot.
	if v, err := ro.Get(k2); err != nil || string(v) != "r0" {
		t.Fatalf("remote Get = (%q,%v)", v, err)
	}
	if v, err := ro.Get(k0); err != nil || string(v) != "h5" {
		t.Fatalf("home Get = (%q,%v), want h5", v, err)
	}
	ro.Commit()
	if c.sites[2].Fillers() == 0 {
		t.Fatal("expected a filler registration at the lagging site")
	}
	if c.Stats()["ro.waits"] == 0 {
		t.Fatal("ro.waits not counted")
	}
}

// A lagging site with an ACTIVE older transaction makes the read-only
// transaction wait (not skip): visibility must not jump over it.
func TestReadOnlyWaitsForActiveOlderTxnAtRemoteSite(t *testing.T) {
	c := newCluster(t, 2, nil)
	k0 := keyAt(c, 0, "a")
	k1 := keyAt(c, 1, "b")
	c.Bootstrap(map[string][]byte{k0: []byte("0"), k1: []byte("0")})

	// Open a transaction at site 1 and park it mid-commit by holding its
	// registration gate via a half-done prepare... simpler: start a
	// cross-site txn that registers at site 1 but delay its completion
	// using a lock conflict is fragile. Instead: register directly.
	s1 := c.sites[1]
	s1.regMu.Lock()
	entry, err := s1.vc.RegisterExact(s1.vc.Reserve())
	s1.regMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	// Advance site 0 well past site 1.
	for i := 0; i < 4; i++ {
		tx, _ := c.Begin(engine.ReadWrite)
		tx.Put(k0, []byte("x"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	ro, _ := c.BeginReadOnlyAtHome(0)
	got := make(chan string)
	go func() {
		v, _ := ro.Get(k1)
		ro.Commit()
		got <- string(v)
	}()
	select {
	case v := <-got:
		t.Fatalf("read-only returned %q although an older txn was active at site 1", v)
	case <-time.After(30 * time.Millisecond):
	}
	s1.vc.Complete(entry)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("read-only never unblocked")
	}
}

func TestBusLatencyAndMessages(t *testing.T) {
	c, err := New(Options{Sites: 2, Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k0, k1 := keyAt(c, 0, "m"), keyAt(c, 1, "m")
	start := time.Now()
	tx, _ := c.Begin(engine.ReadWrite)
	tx.Put(k0, []byte("1"))
	tx.Put(k1, []byte("2"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// 2 writes + 2 prepares + 2 adopts + 2 installs = 8 exchanges minimum.
	if got := c.Bus().Messages(); got < 8 {
		t.Fatalf("messages = %d, want >= 8", got)
	}
	if elapsed := time.Since(start); elapsed < 16*time.Millisecond {
		t.Fatalf("elapsed %v; latency not simulated", elapsed)
	}
}

func TestAbortReleasesEverything(t *testing.T) {
	c := newCluster(t, 2, nil)
	k := keyAt(c, 1, "k")
	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	tx2, _ := c.Begin(engine.ReadWrite)
	if err := tx2.Put(k, []byte("y")); err != nil {
		t.Fatalf("lock leaked after abort: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// A snapshot anchored at the writing site sees the committed value
	// (a snapshot from idle site 0 would be consistent-but-stale: its
	// vtnc never advanced, which is exactly the delayed-visibility
	// trade-off of Section 6).
	ro, _ := c.BeginReadOnlyAtHome(1)
	if v, err := ro.Get(k); err != nil || string(v) != "y" {
		t.Fatalf("Get = (%q,%v)", v, err)
	}
	ro.Commit()
}

func TestLockConflictTimesOutAndRetries(t *testing.T) {
	c, err := New(Options{Sites: 2, LockTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := keyAt(c, 0, "hot")

	t1, _ := c.Begin(engine.ReadWrite)
	if err := t1.Put(k, []byte("held")); err != nil {
		t.Fatal(err)
	}
	t2, _ := c.Begin(engine.ReadWrite)
	if err := t2.Put(k, []byte("blocked")); !errors.Is(err, engine.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock (timeout)", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

// Distributed bank: transfers across sites with concurrent global
// read-only audits; conservation plus global one-copy serializability.
func TestStressDistributedSerializability(t *testing.T) {
	const (
		nSites   = 3
		nKeys    = 12
		nWorkers = 6
		nTxns    = 60
		initBal  = 100
	)
	rec := history.NewRecorder()
	c, err := New(Options{Sites: nSites, Recorder: rec, LockTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]string, nKeys)
	bootKV := map[string][]byte{}
	for i := range keys {
		keys[i] = fmt.Sprintf("acct%02d", i)
		bootKV[keys[i]] = []byte{initBal}
	}
	if err := c.Bootstrap(bootKV); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < nTxns; i++ {
				if rng.Intn(3) == 0 {
					ro, err := c.BeginReadOnlyAtHome(rng.Intn(nSites))
					if err != nil {
						t.Error(err)
						return
					}
					for j := 0; j < 3; j++ {
						if _, err := ro.Get(keys[rng.Intn(nKeys)]); err != nil && !errors.Is(err, engine.ErrNotFound) {
							t.Errorf("ro get: %v", err)
						}
					}
					ro.Commit()
					continue
				}
				for attempt := 0; attempt < 60; attempt++ {
					from := keys[rng.Intn(nKeys)]
					to := keys[rng.Intn(nKeys)]
					if from == to {
						continue
					}
					tx, _ := c.Begin(engine.ReadWrite)
					fv, err := tx.Get(from)
					if err != nil {
						tx.Abort()
						continue
					}
					tv, err := tx.Get(to)
					if err != nil {
						tx.Abort()
						continue
					}
					if fv[0] == 0 {
						tx.Abort()
						break
					}
					if err := tx.Put(from, []byte{fv[0] - 1}); err != nil {
						continue
					}
					if err := tx.Put(to, []byte{tv[0] + 1}); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	ro, _ := c.Begin(engine.ReadOnly)
	total := 0
	for _, k := range keys {
		v, err := ro.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		total += int(v[0])
	}
	ro.Commit()
	if total != nKeys*initBal {
		t.Fatalf("balance not conserved: %d != %d", total, nKeys*initBal)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("global history not one-copy serializable: %v", err)
	}
	for _, s := range c.Sites() {
		if err := s.VC().CheckInvariants(); err != nil {
			t.Fatalf("site %d: %v", s.ID(), err)
		}
	}
}

func TestDistributedScan(t *testing.T) {
	c := newCluster(t, 3, nil)
	boot := map[string][]byte{}
	for i := 0; i < 20; i++ {
		boot[fmt.Sprintf("item%02d", i)] = []byte{byte(i)}
	}
	if err := c.Bootstrap(boot); err != nil {
		t.Fatal(err)
	}
	ro, _ := c.Begin(engine.ReadOnly)
	scanner, ok := ro.(engine.Scanner)
	if !ok {
		t.Fatal("distributed ro tx is not a Scanner")
	}
	var keys []string
	if err := scanner.Scan("item", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	ro.Commit()
	if len(keys) != 20 {
		t.Fatalf("scanned %d, want 20", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("not ordered: %v", keys)
		}
	}
}

// Default read-only transactions snapshot at the cluster high-water mark:
// a commit at ANY site is visible to a subsequent Begin(ReadOnly),
// regardless of which sites are involved. The anchored variant stays
// cheap and possibly stale.
func TestReadAfterCommitAcrossSites(t *testing.T) {
	c := newCluster(t, 3, nil)
	k := keyAt(c, 2, "probe")

	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ro, _ := c.Begin(engine.ReadOnly)
	if v, err := ro.Get(k); err != nil || string(v) != "v" {
		t.Fatalf("fresh snapshot Get = (%q,%v), want v", v, err)
	}
	ro.Commit()

	// Anchored at an uninvolved idle site: stale but consistent.
	stale, _ := c.BeginReadOnlyAtHome(0)
	if _, err := stale.Get(k); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("anchored-stale Get err = %v, want ErrNotFound", err)
	}
	stale.Commit()
}

func TestCustomPartitioner(t *testing.T) {
	c, err := New(Options{Sites: 2, Partition: func(key string) int {
		if len(key) > 0 && key[0] == 'a' {
			return 0
		}
		return 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SiteFor("apple").ID() != 0 || c.SiteFor("banana").ID() != 1 {
		t.Fatal("partitioner not honored")
	}
	tx, _ := c.Begin(engine.ReadWrite)
	tx.Put("alpha", []byte("1"))
	tx.Put("beta", []byte("2"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.sites[0].store.Get("alpha") == nil || c.sites[1].store.Get("beta") == nil {
		t.Fatal("keys landed on wrong sites")
	}
}

func TestBusJitterStillCorrect(t *testing.T) {
	rec := history.NewRecorder()
	c, err := New(Options{Sites: 2, Jitter: 300 * time.Microsecond, Recorder: rec,
		LockTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Bootstrap(map[string][]byte{"a": {50}, "b": {50}})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for attempt := 0; attempt < 50; attempt++ {
					tx, _ := c.Begin(engine.ReadWrite)
					av, err := tx.Get("a")
					if err != nil {
						tx.Abort()
						continue
					}
					bv, err := tx.Get("b")
					if err != nil {
						tx.Abort()
						continue
					}
					if av[0] == 0 {
						tx.Abort()
						break
					}
					if tx.Put("a", []byte{av[0] - 1}) != nil {
						continue
					}
					if tx.Put("b", []byte{bv[0] + 1}) != nil {
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ro, _ := c.Begin(engine.ReadOnly)
	av, err := ro.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	bv, err := ro.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	ro.Commit()
	if int(av[0])+int(bv[0]) != 100 {
		t.Fatalf("sum = %d", int(av[0])+int(bv[0]))
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}
