// Package dist implements the distributed version control extension
// sketched in Section 6 of the paper (the full treatment is in the
// authors' unavailable report [3]; DESIGN.md documents this
// reconstruction).
//
// Each site keeps its own counters (tnc, vtnc) and its own VCQueue,
// exactly as the paper prescribes. The two requirements the paper states —
// "there is only one start number associated with a read-only transaction
// and only one transaction number for every read-write transaction" — are
// met as follows:
//
//   - Read-write transactions run strict two-phase locking at the sites
//     they touch and commit with two-phase commit. During the prepare
//     phase every participant (visited in site order, which makes the
//     prepare windows deadlock-free) locks its registration gate and votes
//     its next local transaction number; the coordinator picks the
//     maximum, and every participant adopts exactly that number
//     (vc.RegisterExact). Sites hand out local numbers from disjoint
//     residue classes (vc.NewStrided), so the adopted maximum — and every
//     local number — is globally unique.
//
//   - Read-only transactions take a single start number sn = vtnc at
//     their home site and read the largest version <= sn everywhere. At a
//     site whose visibility lags (vtnc < sn), the transaction first waits
//     for visibility to catch up; if the site simply has not consumed
//     position sn yet, it registers-and-completes a filler entry to jump
//     its horizon forward. This gives global one-copy serializability
//     with NO a-priori knowledge of the read set — the paper's complaint
//     about the Chan et al. distributed variant — at the price of
//     occasional read-only waiting.
//
// Keys are partitioned across sites; the message bus simulates RPC
// latency so the cost model (messages, waiting) is observable in
// benchmarks (experiment E8).
package dist

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
	"mvdb/internal/storage"
	"mvdb/internal/trace"
	"mvdb/internal/vc"
	"mvdb/internal/wal"
)

// Bus simulates the network: every inter-site call pays a latency (plus
// optional random jitter, which perturbs interleavings the way a real
// network would) and is counted. Zero latency degenerates to function
// calls (unit tests).
type Bus struct {
	latency  time.Duration
	jitter   time.Duration
	state    atomic.Uint64 // xorshift state for lock-free jitter draws
	messages atomic.Uint64
}

// NewBus creates a bus with the given one-way message latency.
func NewBus(latency time.Duration) *Bus {
	return NewBusJitter(latency, 0)
}

// NewBusJitter creates a bus whose per-message delay is latency plus a
// uniform draw from [0, jitter).
func NewBusJitter(latency, jitter time.Duration) *Bus {
	b := &Bus{latency: latency, jitter: jitter}
	b.state.Store(0x9E3779B97F4A7C15)
	return b
}

// call simulates one request/response exchange with a site.
func (b *Bus) call(fn func()) {
	b.messages.Add(1)
	d := b.latency
	if b.jitter > 0 {
		// xorshift64*: cheap thread-safe pseudo-randomness.
		for {
			old := b.state.Load()
			x := old
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if b.state.CompareAndSwap(old, x) {
				d += time.Duration(x % uint64(b.jitter))
				break
			}
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
	fn()
}

// Messages returns the number of simulated exchanges.
func (b *Bus) Messages() uint64 { return b.messages.Load() }

// Site is one database node: its own store, version control counters,
// queue, and lock manager.
type Site struct {
	id    int
	store *storage.Store
	vc    *vc.Strict
	locks *lock.Manager

	// regMu is the registration gate: held by a distributed transaction
	// from its prepare vote until it adopts the chosen number, so the
	// vote cannot be invalidated by an interleaving registration.
	regMu sync.Mutex

	wal     *wal.Writer // per-site commit log (durable sites only)
	crashed atomic.Bool

	fillers atomic.Uint64 // visibility filler registrations (RO catch-up)
}

// ID returns the site's identifier.
func (s *Site) ID() int { return s.id }

// VC exposes the site's version control module (tests, experiments).
func (s *Site) VC() *vc.Strict { return s.vc }

// Store exposes the site's store.
func (s *Site) Store() *storage.Store { return s.store }

// Fillers returns how many filler registrations the site performed to
// advance visibility for lagging read-only transactions.
func (s *Site) Fillers() uint64 { return s.fillers.Load() }

// ensureVisible advances the site's horizon to at least sn and waits for
// it, implementing the read-only catch-up rule described in the package
// comment.
func (s *Site) ensureVisible(sn uint64) {
	if s.vc.VTNC() >= sn {
		return
	}
	s.regMu.Lock()
	if s.vc.Reserve() <= sn {
		// Position sn is unconsumed here: burn it (and everything up to
		// it) with a completed filler so vtnc can reach sn once older
		// registrations drain.
		if e, err := s.vc.RegisterExact(sn); err == nil {
			s.vc.Complete(e)
			s.fillers.Add(1)
		}
	}
	s.regMu.Unlock()
	s.vc.WaitVisible(sn)
}

// Options configures a Cluster.
type Options struct {
	// Sites is the number of sites (required, >= 1).
	Sites int
	// Latency is the simulated one-way message latency.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per message,
	// perturbing interleavings (poor-man's network failure injection).
	Jitter time.Duration
	// LockTimeout bounds lock waits at each site. Distributed deadlocks
	// span sites, where a local waits-for graph cannot see the cycle, so
	// sites use timeout-based resolution (default 50ms).
	LockTimeout time.Duration
	// Partition maps a key to a site (default: FNV hash mod Sites).
	Partition func(key string) int
	// WALDir, when non-empty, makes every site durable: each appends a
	// per-site commit log under this directory, and CrashSite/RecoverSite
	// model fail-stop site failures (see durability.go for the model's
	// limits).
	WALDir string
	// Recorder receives history events (global transaction ids and
	// globally unique version numbers), for the MVSG checker.
	Recorder engine.Recorder
	// Trace, when non-nil, receives coordinator-side
	// begin/read/write/commit/abort events (alongside any Recorder). Nil
	// disables tracing at zero cost.
	Trace *obs.Tracer
	// Traces, when non-nil, samples distributed read-write transactions
	// into causal span trees: the coordinator mints one trace ID and
	// every 2PC prepare/commit exchange contributes a span attributed to
	// its participant site, so a cross-site commit renders as a single
	// waterfall. Nil disables span tracing at zero cost.
	Traces *trace.Tracer
	// Shards per site store.
	Shards int
}

// Cluster is a set of sites plus the coordinator-side logic.
type Cluster struct {
	opts  Options
	sites []*Site
	bus   *Bus
	rec   engine.Recorder
	ids   atomic.Uint64

	hwm        atomic.Uint64 // highest committed global transaction number
	commitsRO  atomic.Uint64
	commitsRW  atomic.Uint64
	aborts     atomic.Uint64
	roWaits    atomic.Uint64
	closed     atomic.Bool
	bootSealed atomic.Bool
}

// New creates a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Sites < 1 {
		return nil, errors.New("dist: Sites must be >= 1")
	}
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = 50 * time.Millisecond
	}
	c := &Cluster{opts: opts, bus: NewBusJitter(opts.Latency, opts.Jitter)}
	var tracerRec engine.Recorder
	if opts.Trace != nil {
		tracerRec = obs.Recorder{T: opts.Trace}
	}
	c.rec = engine.Multi(opts.Recorder, tracerRec)
	if c.opts.Partition == nil {
		n := opts.Sites
		c.opts.Partition = func(key string) int {
			h := uint32(2166136261)
			for i := 0; i < len(key); i++ {
				h = (h ^ uint32(key[i])) * 16777619
			}
			return int(h % uint32(n))
		}
	}
	if err := ensureWALDir(opts.WALDir); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Sites; i++ {
		s := &Site{
			id:    i,
			store: storage.NewStore(opts.Shards),
			vc:    vc.NewStrided(0, uint64(i), uint64(opts.Sites)),
			locks: lock.NewManager(lock.TimeoutPolicy, opts.LockTimeout),
		}
		if opts.WALDir != "" {
			if err := c.openSiteLog(s); err != nil {
				return nil, err
			}
			// Resume counters from a pre-existing log (cluster restart).
			var maxTN uint64
			if _, err := replaySiteLog(siteLogPath(opts.WALDir, i), func(r wal.Record) {
				for _, w := range r.Writes {
					s.store.GetOrCreate(w.Key).InstallCommitted(storage.Version{
						TN: r.TN, Data: w.Value, Tombstone: w.Tombstone,
					})
				}
				if r.TN > maxTN {
					maxTN = r.TN
				}
			}); err != nil {
				return nil, err
			}
			if maxTN > 0 {
				s.vc = vc.NewStrided(maxTN, uint64(i), uint64(opts.Sites))
				if maxTN > c.hwm.Load() {
					c.hwm.Store(maxTN)
				}
			}
		}
		c.sites = append(c.sites, s)
	}
	return c, nil
}

// Sites returns the cluster's sites.
func (c *Cluster) Sites() []*Site { return c.sites }

// Bus returns the message bus (stats).
func (c *Cluster) Bus() *Bus { return c.bus }

// SiteFor returns the site owning key.
func (c *Cluster) SiteFor(key string) *Site {
	return c.sites[c.opts.Partition(key)]
}

// Bootstrap loads initial data (version 0) into the owning sites,
// logging it when sites are durable.
func (c *Cluster) Bootstrap(data map[string][]byte) error {
	if c.bootSealed.Load() {
		return errors.New("dist: Bootstrap after transactions started")
	}
	for k, v := range data {
		s := c.SiteFor(k)
		s.store.Bootstrap(k, v)
		if err := s.logBootstrap(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns cluster counters, including the aggregate Section 6
// version-control gauges across sites: total visibility lag and queue
// depth, and the worst single-site lag (the site a fresh read-only
// transaction would have to wait for).
func (c *Cluster) Stats() map[string]int64 {
	m := map[string]int64{
		"commits.ro":   int64(c.commitsRO.Load()),
		"commits.rw":   int64(c.commitsRW.Load()),
		"aborts":       int64(c.aborts.Load()),
		"ro.waits":     int64(c.roWaits.Load()),
		"bus.messages": int64(c.bus.Messages()),
	}
	var fillers, lagSum, lagMax, queue int64
	for _, s := range c.sites {
		fillers += int64(s.Fillers())
		lag := int64(s.vc.Lag())
		lagSum += lag
		if lag > lagMax {
			lagMax = lag
		}
		queue += int64(s.vc.QueueLen())
	}
	m["ro.fillers"] = fillers
	m["vc.lag"] = lagSum
	m["vc.lag.max_site"] = lagMax
	m["vc.queue"] = queue
	return m
}

// Close shuts the cluster down, flushing any site logs.
func (c *Cluster) Close() error {
	c.closed.Store(true)
	var err error
	for _, s := range c.sites {
		if s.wal != nil {
			if cerr := s.wal.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Name identifies the engine in reports.
func (c *Cluster) Name() string {
	return fmt.Sprintf("dist-vc2pl(%d sites)", len(c.sites))
}

// Begin implements the engine.Engine transaction entry point. Read-only
// transactions take the cluster-wide high-water mark as their single
// start number: the coordinator remembers the largest committed global
// transaction number, so the snapshot observes every transaction that
// committed before Begin — read-after-commit freshness with zero
// messages. Lagging sites catch up on first contact (ensureVisible),
// which is the waiting trade-off Section 6 describes; for the cheapest
// possible (possibly stale) snapshot, anchor at a site instead with
// BeginReadOnlyAtHome.
func (c *Cluster) Begin(class engine.Class) (engine.Tx, error) {
	if c.closed.Load() {
		return nil, errors.New("dist: cluster closed")
	}
	c.bootSealed.Store(true)
	id := c.ids.Add(1)
	if class == engine.ReadOnly {
		t := &roTx{c: c, id: id, sn: c.hwm.Load()}
		c.rec.RecordBegin(id, engine.ReadOnly)
		return t, nil
	}
	t := &DTx{c: c, id: id, parts: make(map[int]*participant)}
	if c.opts.Traces != nil {
		t.tr = c.opts.Traces.Start(id, "dist-2pc")
	}
	c.rec.RecordBegin(id, engine.ReadWrite)
	return t, nil
}

// BeginReadOnlyAtHome starts a read-only transaction whose start number
// is the given site's visibility horizon — "one start number associated
// with a read-only transaction" (Section 6). The snapshot is as fresh as
// the home site and never waits there; reads at other sites may observe
// that same (possibly stale, always consistent) position.
func (c *Cluster) BeginReadOnlyAtHome(home int) (engine.Tx, error) {
	if home < 0 || home >= len(c.sites) {
		return nil, fmt.Errorf("dist: no site %d", home)
	}
	c.bootSealed.Store(true)
	id := c.ids.Add(1)
	var sn uint64
	c.bus.call(func() { sn = c.sites[home].vc.Start() })
	t := &roTx{c: c, id: id, sn: sn}
	c.rec.RecordBegin(id, engine.ReadOnly)
	return t, nil
}

// participant tracks one site's involvement in a distributed read-write
// transaction.
type participant struct {
	site   *Site
	writes map[string]bufWrite
}

type bufWrite struct {
	data      []byte
	tombstone bool
}

// DTx is a distributed read-write transaction (strict 2PL + 2PC with
// max-vote transaction numbers).
type DTx struct {
	c     *Cluster
	id    uint64
	parts map[int]*participant
	done  bool
	tn    uint64
	tr    *trace.Active // nil unless sampled; one trace ID across all sites
}

func (t *DTx) part(siteID int) *participant {
	p := t.parts[siteID]
	if p == nil {
		s := t.c.sites[siteID]
		s.locks.Begin(t.id, t.id) // id doubles as age; unused under timeouts
		p = &participant{site: s, writes: make(map[string]bufWrite)}
		t.parts[siteID] = p
	}
	return p
}

// Get implements engine.Tx.
func (t *DTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	sid := t.c.opts.Partition(key)
	p := t.part(sid)
	if w, ok := p.writes[key]; ok {
		if w.tombstone {
			return nil, engine.ErrNotFound
		}
		return w.data, nil
	}
	var v storage.Version
	var found bool
	var lockErr error
	t.c.bus.call(func() {
		if lockErr = p.site.locks.Acquire(t.id, key, lock.Shared); lockErr != nil {
			return
		}
		if o := p.site.store.Get(key); o != nil {
			v, found = o.LatestCommitted()
		}
	})
	if lockErr != nil {
		t.abortInternal()
		t.c.aborts.Add(1)
		return nil, engine.ErrDeadlock
	}
	if !found {
		t.c.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.c.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx.
func (t *DTx) Put(key string, value []byte) error {
	return t.write(key, bufWrite{data: value})
}

// Delete implements engine.Tx.
func (t *DTx) Delete(key string) error {
	return t.write(key, bufWrite{tombstone: true})
}

func (t *DTx) write(key string, w bufWrite) error {
	if t.done {
		return engine.ErrTxDone
	}
	sid := t.c.opts.Partition(key)
	p := t.part(sid)
	var lockErr error
	t.c.bus.call(func() {
		lockErr = p.site.locks.Acquire(t.id, key, lock.Exclusive)
	})
	if lockErr != nil {
		t.abortInternal()
		t.c.aborts.Add(1)
		return engine.ErrDeadlock
	}
	p.writes[key] = w
	return nil
}

// Commit implements engine.Tx: two-phase commit with max-vote transaction
// numbers (see the package comment).
func (t *DTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true

	// Sorted participant order keeps concurrent prepare phases from
	// deadlocking on the registration gates.
	sids := make([]int, 0, len(t.parts))
	for sid := range t.parts {
		sids = append(sids, sid)
	}
	sort.Ints(sids)

	if len(sids) == 0 { // empty transaction
		t.c.rec.RecordCommit(t.id, 0)
		t.c.commitsRW.Add(1)
		t.tr.FinishCommit()
		return nil
	}

	// Phase 1: lock registration gates in order, gather votes. Each
	// exchange is a span attributed to the participant site, under the
	// coordinator's single trace ID — cross-site causal propagation.
	var chosen uint64
	for _, sid := range sids {
		s := t.parts[sid].site
		var tPrep time.Time
		if t.tr != nil {
			tPrep = time.Now()
		}
		t.c.bus.call(func() {
			s.regMu.Lock()
			if v := s.vc.Reserve(); v > chosen {
				chosen = v
			}
		})
		if t.tr != nil {
			t.tr.SpanSite("prepare", sid, tPrep)
		}
	}
	t.tn = chosen
	t.tr.CommitTN(chosen)

	// Phase 2: adopt the chosen number everywhere, install, release.
	entries := make(map[int]*vc.Entry, len(sids))
	for _, sid := range sids {
		p := t.parts[sid]
		var err error
		var e *vc.Entry
		var tAdopt time.Time
		if t.tr != nil {
			tAdopt = time.Now()
		}
		t.c.bus.call(func() {
			e, err = p.site.vc.RegisterExact(chosen)
			p.site.regMu.Unlock()
		})
		if t.tr != nil {
			t.tr.SpanSite("adopt", sid, tAdopt)
		}
		if err != nil {
			// Unreachable by construction (the gate is held); treat as a
			// fatal protocol error rather than limping on.
			panic(fmt.Sprintf("dist: vote adoption failed: %v", err))
		}
		entries[sid] = e
	}
	for _, sid := range sids {
		p := t.parts[sid]
		var tCommit time.Time
		if t.tr != nil {
			tCommit = time.Now()
		}
		t.c.bus.call(func() {
			// Write-ahead: the site's commit record (even if its local
			// write set is empty — the number consumption is durable
			// state) precedes installation.
			if err := p.site.logCommit(chosen, p.writes); err != nil {
				panic(fmt.Sprintf("dist: site %d commit log: %v (fail-stop)", sid, err))
			}
			for key, w := range p.writes {
				p.site.store.GetOrCreate(key).InstallCommitted(storage.Version{
					TN: chosen, Data: w.data, Tombstone: w.tombstone,
				})
				t.c.rec.RecordWrite(t.id, key, chosen)
			}
			p.site.locks.ReleaseAll(t.id)
			p.site.vc.Complete(entries[sid])
		})
		if t.tr != nil {
			t.tr.SpanSite("commit", sid, tCommit)
		}
	}
	for {
		cur := t.c.hwm.Load()
		if chosen <= cur || t.c.hwm.CompareAndSwap(cur, chosen) {
			break
		}
	}
	t.c.rec.RecordCommit(t.id, chosen)
	t.c.commitsRW.Add(1)
	t.tr.FinishCommit()
	return nil
}

// Abort implements engine.Tx.
func (t *DTx) Abort() {
	if t.done {
		return
	}
	t.c.aborts.Add(1)
	t.abortInternal()
}

func (t *DTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	for _, p := range t.parts {
		p := p
		t.c.bus.call(func() {
			p.site.locks.ReleaseAll(t.id)
		})
	}
	t.c.rec.RecordAbort(t.id)
	t.tr.FinishAbort()
}

// ID implements engine.Tx.
func (t *DTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *DTx) Class() engine.Class { return engine.ReadWrite }

// SN implements engine.Tx.
func (t *DTx) SN() (uint64, bool) {
	if t.tn != 0 {
		return t.tn, true
	}
	return 0, false
}

// roTx is a distributed read-only transaction: one start number, snapshot
// reads everywhere, no locks, no votes, no two-phase commit — the paper's
// headline claim carried into the distributed setting.
type roTx struct {
	c    *Cluster
	id   uint64
	sn   uint64
	done bool
}

// Get implements engine.Tx.
func (t *roTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	s := t.c.SiteFor(key)
	var v storage.Version
	var ok bool
	t.c.bus.call(func() {
		if s.vc.VTNC() < t.sn {
			t.c.roWaits.Add(1)
			s.ensureVisible(t.sn)
		}
		if o := s.store.Get(key); o != nil {
			v, ok = o.ReadVisible(t.sn)
		}
	})
	if !ok {
		t.c.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.c.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Scan implements engine.Scanner: an ordered prefix scan across ALL
// sites at the transaction's single snapshot position — a globally
// consistent analytical read with no locks and no a-priori site set.
func (t *roTx) Scan(prefix string, fn func(key string, value []byte) bool) error {
	if t.done {
		return engine.ErrTxDone
	}
	type hit struct {
		key string
		val []byte
	}
	var hits []hit
	for _, s := range t.c.sites {
		s := s
		t.c.bus.call(func() {
			if s.vc.VTNC() < t.sn {
				t.c.roWaits.Add(1)
				s.ensureVisible(t.sn)
			}
			s.store.RangeOrdered(prefix, func(key string, o *storage.Object) bool {
				v, ok := o.ReadVisible(t.sn)
				if !ok {
					return true
				}
				t.c.rec.RecordRead(t.id, key, v.TN)
				if v.Tombstone {
					return true
				}
				hits = append(hits, hit{key, v.Data})
				return true
			})
		})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].key < hits[j].key })
	for _, h := range hits {
		if !fn(h.key, h.val) {
			break
		}
	}
	return nil
}

// Put implements engine.Tx.
func (t *roTx) Put(string, []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Delete implements engine.Tx.
func (t *roTx) Delete(string) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Commit implements engine.Tx.
func (t *roTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.c.rec.RecordCommit(t.id, t.sn)
	t.c.commitsRO.Add(1)
	return nil
}

// Abort implements engine.Tx.
func (t *roTx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.c.rec.RecordAbort(t.id)
}

// ID implements engine.Tx.
func (t *roTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *roTx) Class() engine.Class { return engine.ReadOnly }

// SN implements engine.Tx.
func (t *roTx) SN() (uint64, bool) { return t.sn, true }
