package dist

import (
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/trace"
)

// TestDistTraceOneIDAcrossSites pins the cross-site propagation
// contract: a distributed commit produces ONE trace whose spans name
// every participant site — the coordinator does not mint per-site trace
// IDs, it attributes per-site spans under its own.
func TestDistTraceOneIDAcrossSites(t *testing.T) {
	spans := trace.New(trace.Options{Sample: 1, SlowNS: 1})
	c, err := New(Options{Sites: 3, Traces: spans})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tx, err := c.Begin(engine.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k0 := keyAt(c, 0, "a")
	k1 := keyAt(c, 1, "b")
	k2 := keyAt(c, 2, "c")
	for _, k := range []string{k0, k1, k2} {
		if err := tx.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tn, _ := tx.SN()

	prom := spans.Promoted()
	if len(prom) != 1 {
		t.Fatalf("promoted %d traces, want exactly 1 (one ID per distributed tx)", len(prom))
	}
	tr := prom[0]
	if tr.ID == 0 {
		t.Fatal("trace has no ID")
	}
	if tr.Proto != "dist-2pc" {
		t.Fatalf("proto = %q", tr.Proto)
	}
	if tr.TN != tn {
		t.Fatalf("trace TN = %d, commit TN = %d", tr.TN, tn)
	}
	// Every site contributed prepare, adopt and commit spans, all under
	// this single trace.
	seen := map[int]map[string]bool{}
	for _, s := range tr.Spans {
		if seen[s.Site] == nil {
			seen[s.Site] = map[string]bool{}
		}
		seen[s.Site][s.Name] = true
	}
	for site := 0; site < 3; site++ {
		for _, phase := range []string{"prepare", "adopt", "commit"} {
			if !seen[site][phase] {
				t.Fatalf("site %d missing %q span; spans: %+v", site, phase, tr.Spans)
			}
		}
	}

	// Aborted distributed transactions finalize (and promote) too.
	tx2, _ := c.Begin(engine.ReadWrite)
	if err := tx2.Put(keyAt(c, 1, "d"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	prom = spans.Promoted()
	if len(prom) != 2 || prom[1].Outcome != "abort" {
		t.Fatalf("aborted dist trace not retained: %+v", prom)
	}
}
