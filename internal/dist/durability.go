package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mvdb/internal/lock"
	"mvdb/internal/storage"
	"mvdb/internal/vc"
	"mvdb/internal/wal"
)

// Per-site durability: when Options.WALDir is set, every site appends one
// commit record per transaction it participates in — including an empty
// record when the transaction wrote nothing locally, because the record
// also persists the consumption of the transaction number, which must
// never be handed out again after a restart. Bootstrap data is logged as
// version-0 records. CrashSite/RecoverSite then model a fail-stop site:
// all in-memory state (store, counters, queue, locks) is discarded and
// rebuilt from the log.
//
// Model limits, stated honestly: crashes are taken at quiescent points
// (no transaction in flight at the crashing site). Crash-during-2PC needs
// a coordinator log and presumed-abort machinery that reference [3] might
// have specified but Section 6 does not sketch; it is out of scope and
// guarded against in tests rather than handled.

// siteLogPath names a site's commit log.
func siteLogPath(dir string, site int) string {
	return filepath.Join(dir, fmt.Sprintf("site-%d.log", site))
}

// openSiteLog attaches (creating or resuming) the log for one site.
func (c *Cluster) openSiteLog(s *Site) error {
	path := siteLogPath(c.opts.WALDir, s.id)
	validLen, err := replaySiteLog(path, nil)
	if err != nil {
		return err
	}
	w, err := wal.OpenAppend(path, validLen, wal.SyncNever)
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

// replaySiteLog replays the site log, invoking apply per record when it
// is non-nil, and returns the valid length.
func replaySiteLog(path string, apply func(wal.Record)) (int64, error) {
	return wal.Replay(path, func(r wal.Record) error {
		if apply != nil {
			apply(r)
		}
		return nil
	})
}

// logCommit appends a site-local commit record (possibly with an empty
// write set: the number consumption itself must be durable).
func (s *Site) logCommit(tn uint64, writes map[string]bufWrite) error {
	if s.wal == nil {
		return nil
	}
	rec := wal.Record{TN: tn, Writes: make([]wal.Write, 0, len(writes))}
	for k, w := range writes {
		rec.Writes = append(rec.Writes, wal.Write{Key: k, Value: w.data, Tombstone: w.tombstone})
	}
	return s.wal.Append(rec)
}

// logBootstrap persists a site's bootstrap key as a version-0 record.
func (s *Site) logBootstrap(key string, value []byte) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Append(wal.Record{TN: 0, Writes: []wal.Write{{Key: key, Value: value}}})
}

// CrashSite models a fail-stop crash of one site: its volatile state is
// destroyed. The site rejects work until RecoverSite. It is the caller's
// responsibility that no transaction is in flight at the site (see the
// model limits above).
func (c *Cluster) CrashSite(id int) error {
	if c.opts.WALDir == "" {
		return errors.New("dist: CrashSite requires Options.WALDir (durable sites)")
	}
	if id < 0 || id >= len(c.sites) {
		return fmt.Errorf("dist: no site %d", id)
	}
	s := c.sites[id]
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.wal != nil {
		s.wal.Close() // flush, then "lose power"
		s.wal = nil
	}
	s.store = nil
	s.vc = nil
	s.locks = nil
	s.crashed.Store(true)
	return nil
}

// RecoverSite rebuilds a crashed site from its commit log: every logged
// version is reinstalled and the version-control counters resume past the
// largest logged transaction number, so no number is ever reissued.
func (c *Cluster) RecoverSite(id int) error {
	if id < 0 || id >= len(c.sites) {
		return fmt.Errorf("dist: no site %d", id)
	}
	s := c.sites[id]
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if !s.crashed.Load() {
		return fmt.Errorf("dist: site %d is not crashed", id)
	}
	store := storage.NewStore(c.opts.Shards)
	var maxTN uint64
	path := siteLogPath(c.opts.WALDir, id)
	validLen, err := replaySiteLog(path, func(r wal.Record) {
		for _, w := range r.Writes {
			store.GetOrCreate(w.Key).InstallCommitted(storage.Version{
				TN: r.TN, Data: w.Value, Tombstone: w.Tombstone,
			})
		}
		if r.TN > maxTN {
			maxTN = r.TN
		}
	})
	if err != nil {
		return err
	}
	w, err := wal.OpenAppend(path, validLen, wal.SyncNever)
	if err != nil {
		return err
	}
	s.store = store
	s.vc = vc.NewStrided(maxTN, uint64(id), uint64(len(c.sites)))
	s.locks = lock.NewManager(lock.TimeoutPolicy, c.opts.LockTimeout)
	s.wal = w
	s.crashed.Store(false)
	return nil
}

// ensureWALDir prepares the durability directory.
func ensureWALDir(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}
