package dist

import (
	"errors"
	"fmt"
	"testing"

	"mvdb/internal/engine"
	"mvdb/internal/history"
)

func newDurableCluster(t *testing.T, sites int, dir string, rec engine.Recorder) *Cluster {
	t.Helper()
	c, err := New(Options{Sites: sites, WALDir: dir, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCrashRequiresDurability(t *testing.T) {
	c := newCluster(t, 2, nil)
	if err := c.CrashSite(0); err == nil {
		t.Fatal("CrashSite without WALDir succeeded")
	}
}

func TestCrashSiteValidation(t *testing.T) {
	c := newDurableCluster(t, 2, t.TempDir(), nil)
	if err := c.CrashSite(7); err == nil {
		t.Fatal("CrashSite(7) accepted")
	}
	if err := c.RecoverSite(0); err == nil {
		t.Fatal("RecoverSite of a healthy site accepted")
	}
}

func TestSiteCrashRecoveryPreservesState(t *testing.T) {
	rec := history.NewRecorder()
	c := newDurableCluster(t, 3, t.TempDir(), rec)
	k0 := keyAt(c, 0, "dur")
	k1 := keyAt(c, 1, "dur")
	if err := c.Bootstrap(map[string][]byte{k0: []byte("b0"), k1: []byte("b1")}); err != nil {
		t.Fatal(err)
	}

	// Cross-site transactions touching the soon-to-crash site 1.
	var lastTN uint64
	for i := 0; i < 5; i++ {
		tx, _ := c.Begin(engine.ReadWrite)
		if err := tx.Put(k0, []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(k1, []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		lastTN, _ = tx.(*DTx).SN()
	}
	preVTNC := c.sites[1].VC().VTNC()

	if err := c.CrashSite(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverSite(1); err != nil {
		t.Fatal(err)
	}

	// The recovered site serves the same committed state.
	ro, _ := c.Begin(engine.ReadOnly)
	if v, err := ro.Get(k1); err != nil || string(v) != "v1-4" {
		t.Fatalf("recovered Get = (%q,%v), want v1-4", v, err)
	}
	if v, err := ro.Get(k0); err != nil || string(v) != "v0-4" {
		t.Fatalf("healthy-site Get = (%q,%v)", v, err)
	}
	ro.Commit()

	// Counters resumed: new transactions get numbers past everything.
	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Put(k1, []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tn, _ := tx.(*DTx).SN()
	if tn <= lastTN {
		t.Fatalf("post-recovery tn %d <= pre-crash tn %d (number reuse!)", tn, lastTN)
	}
	_ = preVTNC

	// The complete cross-crash history is still one-copy serializable.
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sites() {
		if err := s.VC().CheckInvariants(); err != nil {
			t.Fatalf("site %d: %v", s.ID(), err)
		}
	}
}

func TestClusterRestartFromLogs(t *testing.T) {
	dir := t.TempDir()
	var k string
	var wantTN uint64
	{
		c := newDurableCluster(t, 2, dir, nil)
		k = keyAt(c, 1, "persist")
		if err := c.Bootstrap(map[string][]byte{k: []byte("orig")}); err != nil {
			t.Fatal(err)
		}
		tx, _ := c.Begin(engine.ReadWrite)
		if err := tx.Put(k, []byte("committed")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		wantTN, _ = tx.(*DTx).SN()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A brand-new cluster over the same directory resumes.
	c2 := newDurableCluster(t, 2, dir, nil)
	ro, _ := c2.Begin(engine.ReadOnly)
	if v, err := ro.Get(k); err != nil || string(v) != "committed" {
		t.Fatalf("restarted Get = (%q,%v)", v, err)
	}
	ro.Commit()
	tx, _ := c2.Begin(engine.ReadWrite)
	if err := tx.Put(k, []byte("after-restart")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tn, _ := tx.(*DTx).SN(); tn <= wantTN {
		t.Fatalf("restart reused numbers: %d <= %d", tn, wantTN)
	}
}

func TestCrashedSiteTombstonesSurvive(t *testing.T) {
	c := newDurableCluster(t, 2, t.TempDir(), nil)
	k := keyAt(c, 0, "tomb")
	c.Bootstrap(map[string][]byte{k: []byte("x")})
	tx, _ := c.Begin(engine.ReadWrite)
	if err := tx.Delete(k); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashSite(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverSite(0); err != nil {
		t.Fatal(err)
	}
	ro, _ := c.Begin(engine.ReadOnly)
	if _, err := ro.Get(k); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("tombstone lost across crash: err = %v", err)
	}
	ro.Commit()
}
