// Package metrics provides the measurement substrate for the experiment
// harness: lock-free log-bucketed latency histograms, summaries with
// percentiles, and plain-text table rendering for the report tables in
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// subBuckets is the per-octave resolution: each power-of-two range is
// split into this many linear sub-buckets, bounding the relative error of
// a recorded value by 1/subBuckets (~6%).
const subBuckets = 16

// maxOctaves covers values up to ~2^47 ns (~1.6 days) — far beyond any
// latency this harness records.
const maxOctaves = 48

// Histogram records int64 samples (by convention: nanoseconds). All
// methods are safe for concurrent use and Record is a single atomic add.
type Histogram struct {
	counts [maxOctaves * subBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	oct := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= 4 here
	shift := oct - 4                 // map the octave onto 16 sub-buckets
	idx := (oct-3)*subBuckets + int((uint64(v)>>shift)&(subBuckets-1))
	if idx >= maxOctaves*subBuckets {
		idx = maxOctaves*subBuckets - 1
	}
	return idx
}

// bucketUpper returns a representative (upper-bound) value for bucket i —
// the inverse of bucketOf up to quantization.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	oct := i/subBuckets + 3
	sub := i % subBuckets
	shift := oct - 4
	return (1 << oct) + int64(sub+1)<<shift - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(time.Since(start).Nanoseconds())
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// Summary is an immutable snapshot of a histogram.
type Summary struct {
	Count            uint64
	Mean             float64
	P50, P90, P99    int64
	Max              int64
	TotalNanoseconds int64
}

// Summarize snapshots the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:            h.Count(),
		Mean:             h.Mean(),
		P50:              h.Percentile(50),
		P90:              h.Percentile(90),
		P99:              h.Percentile(99),
		Max:              h.Max(),
		TotalNanoseconds: h.sum.Load(),
	}
}

// String formats the summary with duration units.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, Dur(int64(s.Mean)), Dur(s.P50), Dur(s.P90), Dur(s.P99), Dur(s.Max))
}

// Dur renders nanoseconds compactly.
func Dur(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Table renders rows as an aligned plain-text table (the output format of
// cmd/mvbench, mirrored into EXPERIMENTS.md).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, hdr := range t.Headers {
		sep[i] = strings.Repeat("-", len(hdr))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// F formats a float with sensible precision for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
