// Package metrics provides the measurement substrate for the experiment
// harness: lock-free log-bucketed latency histograms, summaries with
// percentiles, and plain-text table rendering for the report tables in
// EXPERIMENTS.md.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// subBuckets is the per-octave resolution: each power-of-two range is
// split into this many linear sub-buckets, bounding the relative error of
// a recorded value by 1/subBuckets (~6%).
const subBuckets = 16

// maxOctaves covers values up to ~2^47 ns (~1.6 days) — far beyond any
// latency this harness records.
const maxOctaves = 48

// Histogram records int64 samples (by convention: nanoseconds). All
// methods are safe for concurrent use and Record is a single atomic add.
type Histogram struct {
	counts [maxOctaves * subBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	oct := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= 4 here
	shift := oct - 4                 // map the octave onto 16 sub-buckets
	idx := (oct-3)*subBuckets + int((uint64(v)>>shift)&(subBuckets-1))
	if idx >= maxOctaves*subBuckets {
		idx = maxOctaves*subBuckets - 1
	}
	return idx
}

// bucketUpper returns a representative (upper-bound) value for bucket i —
// the inverse of bucketOf up to quantization.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	oct := i/subBuckets + 3
	sub := i % subBuckets
	shift := oct - 4
	return (1 << oct) + int64(sub+1)<<shift - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(time.Since(start).Nanoseconds())
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// rankOf maps a percentile to its 1-based sample rank among n samples,
// using the nearest-rank definition ceil(p/100 * n). Out-of-range
// percentiles are clamped: p <= 0 selects the smallest sample (rank 1)
// and p > 100 the largest (rank n).
func rankOf(p float64, n uint64) uint64 {
	if p <= 0 {
		return 1
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank == 0 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Percentile returns an upper bound on the p-th percentile. p is
// clamped to (0, 100] as described at rankOf.
func (h *Histogram) Percentile(p float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := rankOf(p, n)
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// Quantiles returns upper bounds for every requested percentile,
// aligned with ps, walking the buckets once regardless of how many
// percentiles are asked for (snapshots ask for several at a time).
// Each percentile is clamped as described at rankOf.
func (h *Histogram) Quantiles(ps []float64) []int64 {
	out := make([]int64, len(ps))
	n := h.total.Load()
	if n == 0 || len(ps) == 0 {
		return out
	}
	// Resolve ranks in ascending order so one pass over the buckets
	// answers all of them; order tracks each rank's slot in ps.
	order := make([]int, len(ps))
	ranks := make([]uint64, len(ps))
	for i, p := range ps {
		order[i] = i
		ranks[i] = rankOf(p, n)
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })
	var seen uint64
	next := 0
	for i := range h.counts {
		if next >= len(order) {
			break
		}
		seen += h.counts[i].Load()
		for next < len(order) && seen >= ranks[order[next]] {
			out[order[next]] = bucketUpper(i)
			next++
		}
	}
	// Samples recorded concurrently with the walk can leave trailing
	// ranks unresolved; they are bounded by the recorded maximum.
	for ; next < len(order); next++ {
		out[order[next]] = h.max.Load()
	}
	return out
}

// BucketCounts is a point-in-time copy of a histogram's raw buckets.
// Two copies taken at different times can be subtracted to read the
// distribution of ONLY the samples recorded in between — the interval
// percentiles a windowed health timeline needs, which the cumulative
// Summary cannot provide (its percentiles never forget old samples).
type BucketCounts struct {
	counts [maxOctaves * subBuckets]uint64
	total  uint64
}

// Buckets snapshots the histogram's buckets. The copy is consistent
// enough for interval math: concurrent records may straddle the walk,
// but each sample is counted at most once per bucket and the total is
// read last, so a later snapshot minus an earlier one never goes
// negative by more than in-flight records (clamped by DeltaQuantiles).
func (h *Histogram) Buckets() BucketCounts {
	var b BucketCounts
	for i := range h.counts {
		b.counts[i] = h.counts[i].Load()
	}
	b.total = h.total.Load()
	return b
}

// Total returns the sample count the snapshot saw.
func (b *BucketCounts) Total() uint64 { return b.total }

// DeltaQuantiles returns upper bounds for the requested percentiles of
// the samples recorded between prev and b (both from the same
// histogram, prev taken earlier), aligned with ps. With no samples in
// the interval every answer is 0.
func (b *BucketCounts) DeltaQuantiles(prev *BucketCounts, ps []float64) []int64 {
	out := make([]int64, len(ps))
	var n uint64
	if b.total > prev.total {
		n = b.total - prev.total
	}
	if n == 0 || len(ps) == 0 {
		return out
	}
	order := make([]int, len(ps))
	ranks := make([]uint64, len(ps))
	for i, p := range ps {
		order[i] = i
		ranks[i] = rankOf(p, n)
	}
	sort.Slice(order, func(a, c int) bool { return ranks[order[a]] < ranks[order[c]] })
	var seen uint64
	next := 0
	last := int64(0)
	for i := range b.counts {
		if next >= len(order) {
			break
		}
		if d := b.counts[i] - prev.counts[i]; b.counts[i] > prev.counts[i] {
			seen += d
			last = bucketUpper(i)
		}
		for next < len(order) && seen >= ranks[order[next]] {
			out[order[next]] = bucketUpper(i)
			next++
		}
	}
	// Records racing the two snapshots can leave trailing ranks
	// unresolved; bound them by the largest interval bucket seen.
	for ; next < len(order); next++ {
		out[order[next]] = last
	}
	return out
}

// Summary is an immutable snapshot of a histogram. All durations are
// nanoseconds; the JSON field names say so because the same document is
// served by the /debug/mvdb endpoint and mirrored into harness output.
type Summary struct {
	Count            uint64  `json:"count"`
	Mean             float64 `json:"mean_ns"`
	P50              int64   `json:"p50_ns"`
	P90              int64   `json:"p90_ns"`
	P99              int64   `json:"p99_ns"`
	Max              int64   `json:"max_ns"`
	TotalNanoseconds int64   `json:"total_ns"`
}

// Summarize snapshots the histogram (one bucket walk for all three
// percentiles).
func (h *Histogram) Summarize() Summary {
	qs := h.Quantiles([]float64{50, 90, 99})
	return Summary{
		Count:            h.Count(),
		Mean:             h.Mean(),
		P50:              qs[0],
		P90:              qs[1],
		P99:              qs[2],
		Max:              h.Max(),
		TotalNanoseconds: h.sum.Load(),
	}
}

// String formats the summary with duration units.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, Dur(int64(s.Mean)), Dur(s.P50), Dur(s.P90), Dur(s.P99), Dur(s.Max))
}

// MarshalJSON emits the tagged nanosecond fields plus a pre-rendered
// human-readable form, so every JSON consumer (harness reports, the
// /debug/mvdb endpoint, mvinspect -live) shares one serialization.
func (s Summary) MarshalJSON() ([]byte, error) {
	type plain Summary // shed the method to avoid recursion
	return json.Marshal(struct {
		plain
		Human string `json:"human"`
	}{plain(s), s.String()})
}

// Dur renders nanoseconds compactly.
func Dur(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Table renders rows as an aligned plain-text table (the output format of
// cmd/mvbench, mirrored into EXPERIMENTS.md).
type Table struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, hdr := range t.Headers {
		sep[i] = strings.Repeat("-", len(hdr))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// F formats a float with sensible precision for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
