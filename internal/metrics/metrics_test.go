package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestBucketRoundTripMonotone(t *testing.T) {
	last := -1
	for v := int64(0); v < 1<<20; v = v*2 + 1 {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		last = b
		if up := bucketUpper(b); up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", b, up, v)
		}
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var vals []int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1_000_000))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := vals[int(p/100*float64(len(vals)))-1]
		got := h.Percentile(p)
		// log-bucketed: within ~12.5% above the exact value
		if got < exact || float64(got) > float64(exact)*1.15+16 {
			t.Fatalf("p%v = %d, exact %d", p, got, exact)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("max = %d, want %d", h.Max(), vals[len(vals)-1])
	}
}

func TestMeanAndCount(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30} {
		h.Record(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
	s := h.Summarize()
	if s.Count != 3 || s.TotalNanoseconds != 60 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("summary string: %q", s.String())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestPropertyPercentileNeverBelowMedianSample(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		var vals []int64
		for _, r := range raw {
			v := int64(r % 1_000_000)
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		med := vals[(len(vals)-1)/2]
		return h.Percentile(50) >= med || med == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDur(t *testing.T) {
	tests := []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2_500_000, "2.50ms"},
		{3_000_000_000, "3.00s"},
	}
	for _, tc := range tests {
		if got := Dur(tc.ns); got != tc.want {
			t.Errorf("Dur(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"engine", "tps"}}
	tb.AddRow("vc+2pl", "123")
	tb.AddRow("sv2pl", "45")
	out := tb.String()
	for _, want := range []string{"== demo ==", "engine", "vc+2pl", "45"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestF(t *testing.T) {
	if F(0) != "0" {
		t.Fatal(F(0))
	}
	if F(12345.6) != "12346" {
		t.Fatal(F(12345.6))
	}
	if F(12.34) != "12.3" {
		t.Fatal(F(12.34))
	}
	if F(1.2345) != "1.234" && F(1.2345) != "1.235" {
		t.Fatal(F(1.2345))
	}
}

func TestBucketClampAtMaxOctave(t *testing.T) {
	h := NewHistogram()
	h.Record(1 << 62) // far beyond the covered range: must clamp, not panic
	if h.Count() != 1 {
		t.Fatal("sample lost")
	}
	if h.Percentile(100) <= 0 {
		t.Fatal("clamped percentile broken")
	}
}

func TestRecordNegativeClampsToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if got := h.Percentile(100); got != 0 {
		t.Fatalf("p100 = %d, want 0", got)
	}
}

func TestPercentileClamps(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Record(v * 1000)
	}
	if got, min := h.Percentile(-5), h.Percentile(0.0001); got != min {
		t.Errorf("p<=0 should clamp to the smallest sample: %d vs %d", got, min)
	}
	if got, max := h.Percentile(200), h.Percentile(100); got != max {
		t.Errorf("p>100 should clamp to the largest sample: %d vs %d", got, max)
	}
	if h.Percentile(100) < 100000 {
		t.Errorf("p100 = %d, want >= 100000", h.Percentile(100))
	}
	// Nearest-rank: p50 of 100 samples is the 50th sample (50000), not
	// the 51st bucket boundary's neighborhood above it by a full step.
	if p50 := h.Percentile(50); p50 < 50000 || p50 > 50000*1.07 {
		t.Errorf("p50 = %d, want ~50000 (nearest-rank, <=7%% bucket error)", p50)
	}
}

func TestQuantilesMatchPercentile(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		h.Record(rng.Int63n(10_000_000))
	}
	ps := []float64{99, 1, 50, 90, 25, 99.9, 0, 150} // deliberately unsorted, with clamps
	qs := h.Quantiles(ps)
	if len(qs) != len(ps) {
		t.Fatalf("Quantiles returned %d values for %d percentiles", len(qs), len(ps))
	}
	for i, p := range ps {
		if want := h.Percentile(p); qs[i] != want {
			t.Errorf("Quantiles[%d] (p=%v) = %d, want Percentile = %d", i, p, qs[i], want)
		}
	}
}

func TestQuantilesEmpty(t *testing.T) {
	h := NewHistogram()
	qs := h.Quantiles([]float64{50, 99})
	if qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("empty histogram quantiles = %v", qs)
	}
	if got := h.Quantiles(nil); len(got) != 0 {
		t.Fatalf("nil percentiles should yield empty result, got %v", got)
	}
}

func TestSummaryJSON(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v * 1000)
	}
	b, err := json.Marshal(h.Summarize())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns", "total_ns", "human"} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary JSON missing %q: %s", key, b)
		}
	}
	if m["count"].(float64) != 1000 {
		t.Errorf("count = %v", m["count"])
	}
	if !strings.Contains(m["human"].(string), "n=1000") {
		t.Errorf("human = %v", m["human"])
	}
}

func TestTableJSON(t *testing.T) {
	tb := Table{Title: "t", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"t","headers":["a","b"],"rows":[["1","2"]]}`
	if string(b) != want {
		t.Fatalf("table JSON = %s, want %s", b, want)
	}
}
