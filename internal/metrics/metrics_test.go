package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestBucketRoundTripMonotone(t *testing.T) {
	last := -1
	for v := int64(0); v < 1<<20; v = v*2 + 1 {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		last = b
		if up := bucketUpper(b); up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", b, up, v)
		}
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var vals []int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1_000_000))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := vals[int(p/100*float64(len(vals)))-1]
		got := h.Percentile(p)
		// log-bucketed: within ~12.5% above the exact value
		if got < exact || float64(got) > float64(exact)*1.15+16 {
			t.Fatalf("p%v = %d, exact %d", p, got, exact)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("max = %d, want %d", h.Max(), vals[len(vals)-1])
	}
}

func TestMeanAndCount(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30} {
		h.Record(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
	s := h.Summarize()
	if s.Count != 3 || s.TotalNanoseconds != 60 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("summary string: %q", s.String())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestPropertyPercentileNeverBelowMedianSample(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		var vals []int64
		for _, r := range raw {
			v := int64(r % 1_000_000)
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		med := vals[(len(vals)-1)/2]
		return h.Percentile(50) >= med || med == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDur(t *testing.T) {
	tests := []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2_500_000, "2.50ms"},
		{3_000_000_000, "3.00s"},
	}
	for _, tc := range tests {
		if got := Dur(tc.ns); got != tc.want {
			t.Errorf("Dur(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"engine", "tps"}}
	tb.AddRow("vc+2pl", "123")
	tb.AddRow("sv2pl", "45")
	out := tb.String()
	for _, want := range []string{"== demo ==", "engine", "vc+2pl", "45"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestF(t *testing.T) {
	if F(0) != "0" {
		t.Fatal(F(0))
	}
	if F(12345.6) != "12346" {
		t.Fatal(F(12345.6))
	}
	if F(12.34) != "12.3" {
		t.Fatal(F(12.34))
	}
	if F(1.2345) != "1.234" && F(1.2345) != "1.235" {
		t.Fatal(F(1.2345))
	}
}

func TestBucketClampAtMaxOctave(t *testing.T) {
	h := NewHistogram()
	h.Record(1 << 62) // far beyond the covered range: must clamp, not panic
	if h.Count() != 1 {
		t.Fatal("sample lost")
	}
	if h.Percentile(100) <= 0 {
		t.Fatal("clamped percentile broken")
	}
}

func TestRecordNegativeClampsToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if got := h.Percentile(100); got != 0 {
		t.Fatalf("p100 = %d, want 0", got)
	}
}
