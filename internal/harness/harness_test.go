package harness

import (
	"testing"
	"time"

	"mvdb/internal/baseline"
	"mvdb/internal/core"
	"mvdb/internal/history"
	"mvdb/internal/lock"
	"mvdb/internal/workload"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	e := core.New(core.Options{})
	defer e.Close()
	if _, err := Run(Config{Engine: e, Workload: workload.Config{}}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRunAllCoreEngines(t *testing.T) {
	wl := workload.Config{Keys: 64, ReadOnlyFraction: 0.4, Seed: 11}
	for _, p := range []core.Protocol{core.TwoPhaseLocking, core.TimestampOrdering, core.Optimistic} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			rec := history.NewRecorder()
			e := core.New(core.Options{Protocol: p, Recorder: rec})
			defer e.Close()
			if err := e.Bootstrap(wl.Bootstrap()); err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Engine:        e,
				Clients:       6,
				TxnsPerClient: 150,
				Workload:      wl,
				LagSample:     e.VC().Lag,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.CommittedRO == 0 || res.CommittedRW == 0 {
				t.Fatalf("no commits: %+v", res)
			}
			if res.CommittedRO+res.CommittedRW+res.Abandoned != 6*150 {
				t.Fatalf("txn accounting off: %+v", res)
			}
			if res.Throughput() <= 0 {
				t.Fatal("zero throughput")
			}
			if res.Stats["rw.aborts.by_ro"] != 0 {
				t.Fatalf("VC engine blamed read-only txns for %d aborts", res.Stats["rw.aborts.by_ro"])
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("harness workload not 1SR on %s: %v", p, err)
			}
		})
	}
}

func TestRunBaselines(t *testing.T) {
	wl := workload.Config{Keys: 64, ReadOnlyFraction: 0.4, Seed: 11, Zipf: 1.2}
	rec1 := history.NewRecorder()
	mvto := baseline.NewMVTO(0, rec1)
	defer mvto.Close()
	mvto.Bootstrap(wl.Bootstrap())
	res, err := Run(Config{Engine: mvto, Clients: 4, TxnsPerClient: 100, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedRW == 0 {
		t.Fatal("mvto: no rw commits")
	}
	if err := rec1.Check(); err != nil {
		t.Fatalf("mvto history: %v", err)
	}

	rec2 := history.NewRecorder()
	ctl := baseline.NewMV2PLCTL(0, lock.Detect, 0, rec2)
	defer ctl.Close()
	ctl.Bootstrap(wl.Bootstrap())
	if _, err := Run(Config{Engine: ctl, Clients: 4, TxnsPerClient: 100, Workload: wl}); err != nil {
		t.Fatal(err)
	}
	if err := rec2.Check(); err != nil {
		t.Fatalf("mv2plctl history: %v", err)
	}

	rec3 := history.NewRecorder()
	sv := baseline.NewSV2PL(0, lock.Detect, 0, rec3)
	defer sv.Close()
	sv.Bootstrap(wl.Bootstrap())
	if _, err := Run(Config{Engine: sv, Clients: 4, TxnsPerClient: 100, Workload: wl}); err != nil {
		t.Fatal(err)
	}
	if err := rec3.Check(); err != nil {
		t.Fatalf("sv2pl history: %v", err)
	}
}

// The harness must count retries under contention. Optimistic validation
// on a 2-key space with many clients conflicts essentially always.
func TestRetriesCounted(t *testing.T) {
	e := core.New(core.Options{Protocol: core.Optimistic})
	defer e.Close()
	wl := workload.Config{Keys: 2, RWReads: 2, RWWrites: 2, Seed: 9}
	if err := e.Bootstrap(wl.Bootstrap()); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Engine: e, Clients: 8, TxnsPerClient: 100, Workload: wl, OpDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("expected retries on a 2-key OCC workload")
	}
	if res.Stats["aborts.conflict"] == 0 {
		t.Fatal("expected conflict aborts in engine stats")
	}
}
