// Package harness drives identical workloads against any engine.Engine
// and measures what the paper claims qualitatively: per-class throughput
// and latency, abort counts by cause, read-only blocking, and visibility
// lag. Every table in EXPERIMENTS.md is produced by a Run of this harness
// under a different Config (see cmd/mvbench and bench_test.go).
package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/metrics"
	"mvdb/internal/workload"
)

// Config describes one harness run.
type Config struct {
	// Engine under test (required). The harness does not close it.
	Engine engine.Engine
	// Clients is the number of concurrent client goroutines (default 4).
	Clients int
	// TxnsPerClient is how many transactions each client executes
	// (default 1000). A retried transaction counts once.
	TxnsPerClient int
	// Workload shapes the generated transactions.
	Workload workload.Config
	// RetryLimit bounds retries of an aborted read-write transaction
	// before it is abandoned (default 50).
	RetryLimit int
	// LagSample, if non-nil, is sampled every millisecond into the
	// result's visibility-lag summary (e.g. engine.VC().Lag).
	LagSample func() uint64
	// OpDelay injects think time before every operation. Besides modeling
	// clients that compute between accesses, it forces transaction
	// interleaving on machines with few cores, where back-to-back
	// microsecond transactions would otherwise serialize by accident.
	OpDelay time.Duration
}

// Result is one run's measurements.
type Result struct {
	Engine  string
	Elapsed time.Duration

	CommittedRO uint64
	CommittedRW uint64
	Retries     uint64
	RORetries   uint64 // read-only aborts+retries (baselines only: the
	// paper's engines never abort a read-only transaction)
	ROAbandoned uint64 // read-only transactions starved past RetryLimit
	Abandoned   uint64 // rw transactions dropped after RetryLimit

	ROLatency metrics.Summary // per committed read-only txn
	RWLatency metrics.Summary // per committed read-write txn (incl. retries)

	LagMean float64
	LagMax  uint64

	Stats map[string]int64 // engine counters after the run
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.CommittedRO+r.CommittedRW) / r.Elapsed.Seconds()
}

// Run executes the workload and collects measurements.
func Run(cfg Config) (Result, error) {
	if cfg.Engine == nil {
		return Result{}, errors.New("harness: Engine is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.TxnsPerClient <= 0 {
		cfg.TxnsPerClient = 1000
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 50
	}
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}

	roLat := metrics.NewHistogram()
	rwLat := metrics.NewHistogram()
	var committedRO, committedRW, retries, roRetries, roAbandoned, abandoned atomic.Uint64

	// Optional visibility-lag sampler.
	var lagSum, lagN, lagMax uint64
	stopLag := make(chan struct{})
	var lagWG sync.WaitGroup
	if cfg.LagSample != nil {
		lagWG.Add(1)
		go func() {
			defer lagWG.Done()
			t := time.NewTicker(time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopLag:
					return
				case <-t.C:
					l := cfg.LagSample()
					lagSum += l
					lagN++
					if l > lagMax {
						lagMax = l
					}
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src, err := workload.NewSource(cfg.Workload, c)
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < cfg.TxnsPerClient; i++ {
				spec := src.Next()
				t0 := time.Now()
				if spec.ReadOnly {
					ok, nRetries, err := runRO(cfg.Engine, spec, cfg.RetryLimit, cfg.OpDelay)
					if err != nil {
						errc <- err
						return
					}
					roRetries.Add(nRetries)
					if ok {
						roLat.RecordSince(t0)
						committedRO.Add(1)
					} else {
						roAbandoned.Add(1)
					}
					continue
				}
				ok, nRetries, err := runRW(cfg.Engine, spec, cfg.RetryLimit, cfg.OpDelay)
				if err != nil {
					errc <- err
					return
				}
				retries.Add(nRetries)
				if ok {
					rwLat.RecordSince(t0)
					committedRW.Add(1)
				} else {
					abandoned.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopLag)
	lagWG.Wait()
	select {
	case err := <-errc:
		return Result{}, err
	default:
	}

	res := Result{
		Engine:      cfg.Engine.Name(),
		Elapsed:     elapsed,
		CommittedRO: committedRO.Load(),
		CommittedRW: committedRW.Load(),
		Retries:     retries.Load(),
		RORetries:   roRetries.Load(),
		ROAbandoned: roAbandoned.Load(),
		Abandoned:   abandoned.Load(),
		ROLatency:   roLat.Summarize(),
		RWLatency:   rwLat.Summarize(),
		Stats:       cfg.Engine.Stats(),
		LagMax:      lagMax,
	}
	if lagN > 0 {
		res.LagMean = float64(lagSum) / float64(lagN)
	}
	return res, nil
}

// runRO executes a read-only spec. Under the paper's engines this can
// never fail; under the baselines a read-only transaction may itself be a
// deadlock victim (single-version 2PL) and must retry — which is part of
// what the experiments measure.
func runRO(e engine.Engine, spec workload.TxnSpec, retryLimit int, delay time.Duration) (committed bool, retries uint64, err error) {
attempt:
	for a := 0; a <= retryLimit; a++ {
		tx, err := e.Begin(engine.ReadOnly)
		if err != nil {
			return false, retries, err
		}
		for _, op := range spec.Ops {
			think(delay)
			if _, gerr := tx.Get(op.Key); gerr != nil && !errors.Is(gerr, engine.ErrNotFound) {
				tx.Abort()
				if engine.Retryable(gerr) {
					retries++
					continue attempt
				}
				return false, retries, fmt.Errorf("harness: read-only Get(%s): %w", op.Key, gerr)
			}
		}
		if cerr := tx.Commit(); cerr != nil {
			if engine.Retryable(cerr) {
				retries++
				continue
			}
			return false, retries, cerr
		}
		return true, retries, nil
	}
	// Starvation is a measured outcome, not an error: single-version
	// locking can starve long read-only transactions indefinitely, which
	// is one of the phenomena the experiments exist to show.
	return false, retries, nil
}

func runRW(e engine.Engine, spec workload.TxnSpec, retryLimit int, delay time.Duration) (committed bool, retries uint64, err error) {
	for attempt := 0; attempt <= retryLimit; attempt++ {
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			return false, retries, err
		}
		ok, err := applyOps(tx, spec, delay)
		if err != nil {
			return false, retries, err
		}
		if !ok {
			retries++
			continue
		}
		cerr := tx.Commit()
		if cerr == nil {
			return true, retries, nil
		}
		if engine.Retryable(cerr) {
			retries++
			continue
		}
		return false, retries, cerr
	}
	return false, retries, nil
}

// applyOps runs the spec's operations; ok=false means a retryable abort.
func applyOps(tx engine.Tx, spec workload.TxnSpec, delay time.Duration) (ok bool, err error) {
	for _, op := range spec.Ops {
		think(delay)
		if op.Write {
			if werr := tx.Put(op.Key, op.Value); werr != nil {
				if engine.Retryable(werr) {
					return false, nil // engine already aborted the txn
				}
				tx.Abort()
				return false, werr
			}
			continue
		}
		if _, gerr := tx.Get(op.Key); gerr != nil {
			if errors.Is(gerr, engine.ErrNotFound) {
				continue
			}
			if engine.Retryable(gerr) {
				return false, nil
			}
			tx.Abort()
			return false, gerr
		}
	}
	return true, nil
}

// think sleeps for the configured per-op delay (yielding the processor so
// concurrent transactions interleave even on a single core).
func think(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
