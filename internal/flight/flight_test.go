package flight_test

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/audit"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/flight"
	"mvdb/internal/obs"
)

// newEngineRecorder builds a phase-timed core engine plus a flight
// recorder tapped into all four sources.
func newEngineRecorder(t *testing.T, opts core.Options, fopts flight.Options) (*core.Engine, *flight.Recorder) {
	t.Helper()
	tracer := obs.NewTracer(512)
	opts.Trace = tracer
	opts.PhaseTiming = true
	e := core.New(opts)
	t.Cleanup(func() { e.Close() })
	if fopts.Dir == "" {
		fopts.Dir = t.TempDir()
	}
	r, err := flight.New(flight.Sources{
		Stats:     e.Snapshot,
		Trace:     tracer.Dump,
		WaitGraph: e.LockWaitGraph,
	}, fopts)
	if err != nil {
		t.Fatalf("flight.New: %v", err)
	}
	t.Cleanup(r.Close)
	return e, r
}

// TestConcurrentTriggers runs committers on a live engine while many
// goroutines trigger bundles — the -race workout the recorder must
// survive, since production triggers (audit alarms, HTTP dumps) arrive
// from arbitrary goroutines mid-load.
func TestConcurrentTriggers(t *testing.T) {
	dir := t.TempDir()
	e, r := newEngineRecorder(t, core.Options{Protocol: core.TwoPhaseLocking},
		flight.Options{Dir: dir, Interval: time.Millisecond, MinGap: time.Nanosecond})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.Begin(engine.ReadWrite)
				if err != nil {
					t.Error(err)
					return
				}
				k := keys[(w+i)%len(keys)]
				tx.Get(k)
				if err := tx.Put(k, []byte{byte(i)}); err == nil {
					tx.Commit()
				} else {
					tx.Abort()
				}
			}
		}(w)
	}

	var trig sync.WaitGroup
	for g := 0; g < 8; g++ {
		trig.Add(1)
		go func(g int) {
			defer trig.Done()
			for i := 0; i < 5; i++ {
				if g%2 == 0 {
					if _, err := r.Trigger("race", "concurrent trigger"); err != nil {
						t.Errorf("Trigger: %v", err)
					}
				} else {
					r.TriggerAsync("race-async", "concurrent async trigger")
				}
			}
		}(g)
	}
	trig.Wait()
	close(stop)
	wg.Wait()

	if r.Bundles() < 20 {
		t.Fatalf("expected >= 20 bundles from explicit triggers, got %d", r.Bundles())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		b, err := flight.Load(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatalf("Load(%s): %v", ent.Name(), err)
		}
		if b.Schema != flight.SchemaVersion {
			t.Fatalf("schema = %q, want %q", b.Schema, flight.SchemaVersion)
		}
		if len(b.Ring) == 0 {
			t.Fatalf("%s: bundle carries no sampled history", ent.Name())
		}
		flight.Render(b, io.Discard)
		checked++
	}
	if checked == 0 {
		t.Fatal("no bundle files written")
	}
}

// TestAuditAlarmWritesBundle provokes a real serializability violation
// (the eager-visibility ablation, same interleaving as the core A2
// test) and checks the alarm → OnAlarm → TriggerAsync chain lands a
// readable bundle on disk carrying the alarm that caused it.
func TestAuditAlarmWritesBundle(t *testing.T) {
	dir := t.TempDir()
	var rec *flight.Recorder
	var recMu sync.Mutex
	aud := audit.New(audit.Options{
		Window: 64,
		Queue:  1 << 12,
		Alarms: 16,
		Logger: slog.New(slog.DiscardHandler),
		OnAlarm: func(al audit.Alarm) {
			recMu.Lock()
			r := rec
			recMu.Unlock()
			if r != nil {
				r.TriggerAsync("audit-alarm", al.Kind+": "+al.Message)
			}
		},
	})
	defer aud.Close()

	tracer := obs.NewTracer(512)
	e := core.New(core.Options{
		Protocol:              core.TimestampOrdering,
		UnsafeEagerVisibility: true,
		Recorder:              aud,
		Trace:                 tracer,
		PhaseTiming:           true,
	})
	defer e.Close()

	r, err := flight.New(flight.Sources{
		Stats: e.Snapshot,
		Trace: tracer.Dump,
		Audit: aud.Snapshot,
	}, flight.Options{Dir: dir, Interval: time.Hour, MinGap: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recMu.Lock()
	rec = r
	recMu.Unlock()

	if err := e.Bootstrap(map[string][]byte{"y": {0}, "z": {0}}); err != nil {
		t.Fatal(err)
	}

	// T1 (older) reads z and writes y; T2 (younger) overwrites z and
	// completes first; an RO snapshot in the eager-visibility gap sees
	// T2's z but not T1's y — an MVSG cycle the auditor must flag.
	t1, err := e.Begin(engine.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Begin(engine.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Get("z"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("y", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("z", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, err := e.Begin(engine.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Get("z"); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Get("y"); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	aud.Drain()
	if aud.AlarmsTotal() == 0 {
		t.Fatal("ablation did not trip a live alarm")
	}

	// The bundle write is asynchronous (sampler goroutine); wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for r.Bundles() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alarm fired but no bundle was written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for r.LastBundle() == "" && !time.Now().After(deadline) {
		time.Sleep(time.Millisecond)
	}

	b, err := flight.Load(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "audit-alarm" {
		t.Fatalf("reason = %q, want audit-alarm", b.Reason)
	}
	if b.Audit == nil || len(b.Audit.Alarms) == 0 {
		t.Fatal("bundle carries no audit alarms")
	}
	var sb strings.Builder
	flight.Render(b, &sb)
	if !strings.Contains(sb.String(), "== audit ==") {
		t.Fatalf("render missing audit section:\n%s", sb.String())
	}
}

// TestHTTPHandlerDump exercises the /debug/mvdb/dump path: one GET, one
// bundle, path echoed back as JSON.
func TestHTTPHandlerDump(t *testing.T) {
	dir := t.TempDir()
	_, r := newEngineRecorder(t, core.Options{Protocol: core.Optimistic},
		flight.Options{Dir: dir, Interval: time.Hour})

	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["bundle"] == "" {
		t.Fatalf("no bundle path in response: %v", out)
	}
	if _, err := flight.Load(out["bundle"]); err != nil {
		t.Fatalf("dumped bundle unreadable: %v", err)
	}
}

// TestCaptureOneShot is the crashtest path: no long-lived recorder,
// just a snapshot-now helper.
func TestCaptureOneShot(t *testing.T) {
	dir := t.TempDir()
	stats := func() obs.Snapshot { return obs.Snapshot{Protocol: "vc+2pl"} }
	path, err := flight.Capture(flight.Sources{Stats: stats}, nil, dir, "oracle-violation", "details here")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "oracle-violation" || b.Detail != "details here" {
		t.Fatalf("unexpected bundle header: %+v", b)
	}
}

// TestCloseSemantics: Trigger fails after Close, TriggerAsync is a
// no-op, double Close is safe.
func TestCloseSemantics(t *testing.T) {
	_, r := newEngineRecorder(t, core.Options{}, flight.Options{Dir: t.TempDir(), Interval: time.Hour})
	r.Close()
	r.Close()
	if _, err := r.Trigger("x", ""); err == nil {
		t.Fatal("Trigger after Close should fail")
	}
	r.TriggerAsync("x", "")
}
